module multiverse

go 1.22
