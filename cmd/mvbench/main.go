// mvbench regenerates the paper's evaluation tables and figures from the
// simulated systems.
//
// Usage:
//
//	mvbench -figure all
//	mvbench -figure 13
//	mvbench -figure 2 -runs 25
//	mvbench -figure primitives
//	mvbench -figure ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"multiverse/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 2, 8, 9, 10, 11, 12, 13, primitives, hpcg, incremental, router, merger, scheduler, faults, obsv, exitless, density, grid, ablations, all")
	runs := flag.Int("runs", 10, "measurement repetitions for latency figures (the paper averages 10 runs)")
	flag.Parse()

	type job struct {
		name string
		run  func() (*bench.Table, error)
	}
	jobs := []job{
		{"2", func() (*bench.Table, error) { return bench.Figure2(*runs) }},
		{"8", bench.Figure8},
		{"9", func() (*bench.Table, error) { return bench.Figure9(*runs) }},
		{"10", bench.Figure10},
		{"11", bench.Figure11},
		{"12", bench.Figure12},
		{"13", bench.Figure13},
		{"primitives", func() (*bench.Table, error) { return bench.PrimitivesTable(*runs) }},
		{"hpcg", func() (*bench.Table, error) { return bench.FigureHPCG(4) }},
		{"incremental", func() (*bench.Table, error) { return bench.FigureIncremental("binary-tree-2") }},
		{"router", bench.FigureRouter},
		{"merger", bench.FigureMerger},
		{"scheduler", bench.FigureScheduler},
		{"faults", bench.FigureFaults},
		{"obsv", bench.FigureObsv},
		{"exitless", bench.FigureExitless},
		{"density", bench.FigureDensity},
		{"grid", bench.FigureGrid},
		{"ablations", nil}, // expanded below
	}

	ablations := []job{
		{"ablation:symbol-cache", func() (*bench.Table, error) { return bench.AblationSymbolCache(*runs * 5) }},
		{"ablation:remerge", bench.AblationRemerge},
		{"ablation:pinning", bench.AblationPinning},
		{"ablation:channel-kind", func() (*bench.Table, error) { return bench.AblationChannelKind(*runs) }},
		{"ablation:sync-syscalls", func() (*bench.Table, error) { return bench.AblationSyncSyscalls(*runs) }},
	}

	var selected []job
	for _, j := range jobs {
		if *figure != "all" && *figure != j.name {
			continue
		}
		if j.name == "ablations" {
			selected = append(selected, ablations...)
			continue
		}
		selected = append(selected, j)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "mvbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}

	failed := false
	for _, j := range selected {
		t, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvbench: figure %s: %v\n", j.name, err)
			failed = true
			continue
		}
		fmt.Println(t)
	}
	if failed {
		os.Exit(1)
	}
}
