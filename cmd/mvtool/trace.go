package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// traceEvent is the subset of a Chrome trace event the summarizer and
// the request-timeline reconstruction read back.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   json.Number    `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args traceEventArgs `json:"args"`
}

type traceEventArgs struct {
	Cycles  uint64 `json:"cycles"`
	Req     uint64 `json:"req"`
	Seq     uint64 `json:"seq"`
	Attempt uint64 `json:"attempt"`
}

// traceCmd summarizes a Chrome trace-event JSON produced by
// `mvrun -trace`: top spans by cumulative cycles, and per-event-kind
// latency percentiles for the boundary-crossing spans. With -req it
// instead reconstructs the end-to-end timeline of one forwarded
// request by its causal trace ID.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	top := fs.Int("top", 15, "how many span names to list")
	req := fs.Uint64("req", 0, "reconstruct the timeline of this request ID (as printed in span req attrs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mvtool trace [-top N] [-req ID] FILE.json")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("parsing trace: %w", err)
	}
	if *req != 0 {
		return traceRequest(doc.TraceEvents, *req)
	}

	type agg struct {
		name   string
		cat    string
		count  uint64
		cycles uint64
		each   []uint64
	}
	byName := make(map[string]*agg)
	events := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		events++
		a := byName[ev.Name]
		if a == nil {
			a = &agg{name: ev.Name, cat: ev.Cat}
			byName[ev.Name] = a
		}
		a.count++
		a.cycles += ev.Args.Cycles
		a.each = append(a.each, ev.Args.Cycles)
	}
	if events == 0 {
		return fmt.Errorf("no span events in %s", fs.Arg(0))
	}

	all := make([]*agg, 0, len(byName))
	for _, a := range byName {
		all = append(all, a)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cycles != all[j].cycles {
			return all[i].cycles > all[j].cycles
		}
		return all[i].name < all[j].name
	})

	fmt.Printf("%d spans, %d distinct names\n\n", events, len(all))
	fmt.Printf("top spans by cumulative cycles:\n")
	fmt.Printf("  %-28s %-10s %8s %14s %12s\n", "span", "cat", "count", "cycles", "mean")
	for i, a := range all {
		if i >= *top {
			break
		}
		fmt.Printf("  %-28s %-10s %8d %14d %12d\n", a.name, a.cat, a.count, a.cycles, a.cycles/a.count)
	}

	fmt.Printf("\nper-event-kind latency percentiles (cycles):\n")
	fmt.Printf("  %-28s %8s %10s %10s %10s\n", "kind", "count", "p50", "p90", "p99")
	for _, a := range all {
		if !strings.HasPrefix(a.name, "forward:") && !strings.HasPrefix(a.name, "sync-") &&
			a.name != "merger" && a.name != "gc-pause" && a.name != "async-call" {
			continue
		}
		sort.Slice(a.each, func(i, j int) bool { return a.each[i] < a.each[j] })
		fmt.Printf("  %-28s %8d %10d %10d %10d\n", a.name, a.count,
			pct(a.each, 0.50), pct(a.each, 0.90), pct(a.each, 0.99))
	}
	return nil
}

// traceRequest prints every event carrying the request ID in timestamp
// order: the end-to-end causal timeline of one forwarded syscall or
// fault, across the HRT doorbell, router tier decisions, retransmission
// attempts, service spans, and recovery markers.
func traceRequest(events []traceEvent, req uint64) error {
	var hits []traceEvent
	for _, ev := range events {
		if ev.Args.Req == req {
			hits = append(hits, ev)
		}
	}
	if len(hits) == 0 {
		return fmt.Errorf("no events carry req=%#x (run mvrun with -trace and look for req attrs)", req)
	}
	sort.SliceStable(hits, func(i, j int) bool {
		ti, _ := hits[i].Ts.Float64()
		tj, _ := hits[j].Ts.Float64()
		return ti < tj
	})
	fmt.Printf("timeline of request %#x: %d events\n\n", req, len(hits))
	fmt.Printf("  %-14s %-6s %-6s %-24s %-10s %s\n", "ts(us)", "core", "tid", "event", "cat", "detail")
	for _, ev := range hits {
		kind := "span"
		if ev.Ph == "i" {
			kind = "marker"
		}
		detail := fmt.Sprintf("%s cycles=%d", kind, ev.Args.Cycles)
		if ev.Args.Seq != 0 {
			detail += fmt.Sprintf(" seq=%d", ev.Args.Seq)
		}
		if ev.Args.Attempt != 0 {
			detail += fmt.Sprintf(" attempt=%d", ev.Args.Attempt)
		}
		fmt.Printf("  %-14s %-6d %-6d %-24s %-10s %s\n",
			ev.Ts.String(), ev.Pid, ev.Tid, ev.Name, ev.Cat, detail)
	}
	return nil
}

// pct returns the p-th percentile of sorted values (nearest-rank).
func pct(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
