// mvtool is the Multiverse toolchain front-end: it performs the fat-binary
// link step — embed an AeroKernel image and an override configuration into
// an application image — and can inspect the result.
//
// Usage:
//
//	mvtool build -app myapp -overrides overrides.conf -o myapp.fat
//	mvtool inspect myapp.fat
//	mvtool trace out.json
//	mvtool bench -json -o BENCH_pr2.json
//	mvtool bench -suite merger -json -o BENCH_pr3.json
//	mvtool bench -suite scheduler -json -o BENCH_pr4.json
//	mvtool bench -suite faults -json -o BENCH_pr5.json
//	mvtool bench -suite obsv -json -o BENCH_pr6.json
//	mvtool bench -suite exitless -json -o BENCH_pr7.json
//	mvtool bench -suite density -json -o BENCH_pr9.json
//	mvtool bench -suite grid -json -o BENCH_pr10.json
//	mvtool slo -in metrics.json -check slo.json
//	mvtool flight flight.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/image"
	"multiverse/internal/profiling"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = build(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "bench":
		err = benchCmd(os.Args[2:])
	case "slo":
		err = sloCmd(os.Args[2:])
	case "flight":
		err = flightCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mvtool build -app NAME [-overrides FILE] -o OUT.fat")
	fmt.Fprintln(os.Stderr, "       mvtool inspect FILE.fat")
	fmt.Fprintln(os.Stderr, "       mvtool trace [-top N] [-req ID] FILE.json")
	fmt.Fprintln(os.Stderr, "       mvtool bench [-suite router|merger|scheduler|faults|obsv|exitless|simspeed|density|grid] [-json] [-o FILE] [-compare BENCH_pr8.json] [-cpuprofile FILE]")
	fmt.Fprintln(os.Stderr, "       mvtool slo -in METRICS.json [-report] [-check SPEC.json]")
	fmt.Fprintln(os.Stderr, "       mvtool flight [-code NAME] [-site N] [-summary] FILE.txt")
	os.Exit(2)
}

// benchCmd runs one of the deterministic benchmark suites in the
// multiverse world: "router" compares the adaptive boundary router,
// "merger" the incremental state-superposition merger, "scheduler"
// sweeps the work-stealing scheduler's HPCG + places scaling ladder, and
// "faults" measures the fault-injection/recovery configurations, and
// "exitless" compares the router with and without the tier-3 polled
// SPSC rings. With -json it emits the corresponding baseline document
// (BENCH_pr2.json / BENCH_pr3.json / BENCH_pr4.json / BENCH_pr5.json /
// BENCH_pr7.json); otherwise it prints the table.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	suite := fs.String("suite", "router", "suite: router (BENCH_pr2), merger (BENCH_pr3), scheduler (BENCH_pr4), faults (BENCH_pr5), obsv (BENCH_pr6), exitless (BENCH_pr7), simspeed (BENCH_pr8), density (BENCH_pr9), or grid (BENCH_pr10)")
	asJSON := fs.Bool("json", false, "emit the baseline JSON document")
	out := fs.String("o", "", "write output to this file instead of stdout")
	compare := fs.String("compare", "", "simspeed only: collect a fresh baseline and compare it against this pinned BENCH_pr8.json (cycles exact, wall ±tolerance)")
	tol := fs.Float64("tol", 0.2, "wall-clock tolerance for -compare, as a ratio (0.2 = ±20%)")
	cpuProfile := fs.String("cpuprofile", "", "write a host pprof CPU profile of the suite to this file")
	memProfile := fs.String("memprofile", "", "write a host pprof heap profile at exit to this file")
	blockProfile := fs.String("blockprofile", "", "write a host pprof blocking profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(profiling.Flags{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile})
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "mvtool: %v\n", err)
		}
	}()
	if *compare != "" {
		if *suite != "simspeed" {
			return fmt.Errorf("-compare applies to -suite simspeed only")
		}
		return compareSimspeed(*compare, *tol)
	}
	var blob []byte
	switch {
	case *suite == "grid" && *asJSON:
		base, err := bench.CollectGridBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "grid":
		t, err := bench.FigureGrid()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "density" && *asJSON:
		base, err := bench.CollectDensityBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "density":
		t, err := bench.FigureDensity()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "simspeed" && *asJSON:
		base, err := bench.CollectSimspeedBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "simspeed":
		t, err := bench.FigureSimspeed()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "router" && *asJSON:
		base, err := bench.CollectRouterBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "merger" && *asJSON:
		base, err := bench.CollectMergerBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "scheduler" && *asJSON:
		base, err := bench.CollectSchedulerBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "faults" && *asJSON:
		base, err := bench.CollectFaultsBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "exitless" && *asJSON:
		base, err := bench.CollectExitlessBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "exitless":
		t, err := bench.FigureExitless()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "obsv" && *asJSON:
		base, err := bench.CollectObsvBaseline()
		if err != nil {
			return err
		}
		if blob, err = base.MarshalIndent(); err != nil {
			return err
		}
	case *suite == "obsv":
		t, err := bench.FigureObsv()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "faults":
		t, err := bench.FigureFaults()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "scheduler":
		t, err := bench.FigureScheduler()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "router":
		t, err := bench.FigureRouter()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	case *suite == "merger":
		t, err := bench.FigureMerger()
		if err != nil {
			return err
		}
		blob = []byte(t.String() + "\n")
	default:
		return fmt.Errorf("unknown suite %q (want router, merger, scheduler, faults, obsv, exitless, simspeed, density, or grid)", *suite)
	}
	if *out != "" {
		return os.WriteFile(*out, blob, 0o644)
	}
	_, err = os.Stdout.Write(blob)
	return err
}

// compareSimspeed is the CI regression gate for the simspeed suite: the
// deterministic virtual-cycle fields must match the pinned document
// exactly, the wall-clock figures within the tolerance band.
func compareSimspeed(pinnedPath string, tol float64) error {
	data, err := os.ReadFile(pinnedPath)
	if err != nil {
		return err
	}
	var pinned bench.SimspeedBaseline
	if err := json.Unmarshal(data, &pinned); err != nil {
		return fmt.Errorf("parsing %s: %w", pinnedPath, err)
	}
	fresh, err := bench.CollectSimspeedBaseline()
	if err != nil {
		return err
	}
	if err := bench.CompareSimspeed(&pinned, fresh, tol); err != nil {
		return err
	}
	fmt.Printf("simspeed ok: %d cycles exact, %.3g cyc/s host-parallel (pinned %.3g, ±%.0f%%), %.2fx vs pre-PR\n",
		fresh.TotalCycles, fresh.Simspeed, pinned.Simspeed, tol*100, fresh.Speedup)
	return nil
}

func build(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	app := fs.String("app", "app", "application name for the synthesized image")
	overridesPath := fs.String("overrides", "", "override configuration file")
	out := fs.String("o", "app.fat", "output path for the fat binary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var specs []core.OverrideSpec
	if *overridesPath != "" {
		data, err := os.ReadFile(*overridesPath)
		if err != nil {
			return err
		}
		specs, err = core.ParseOverrides(data)
		if err != nil {
			return err
		}
	}
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage(*app),
		AeroKernel: core.NewAeroKernelImage(),
		Overrides:  specs,
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, fat.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote fat binary %s: %d bytes, %d sections, %d symbols\n",
		*out, len(fat.Encode()), len(fat.Sections), len(fat.Symbols))
	return nil
}

func inspect(args []string) error {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	fat, err := image.Decode(data)
	if err != nil {
		return err
	}
	fmt.Printf("image %s: entry %#x\n", fat.Name, fat.Entry)
	for _, s := range fat.Sections {
		fmt.Printf("  section %-18s kind=%-18s vaddr=%#x size=%d\n", s.Name, s.Kind, s.VAddr, len(s.Data))
	}
	if ak, err := image.ExtractAeroKernel(fat); err == nil {
		fmt.Printf("  embedded AeroKernel %s: entry %#x, %d symbols\n", ak.Name, ak.Entry, len(ak.Symbols))
		for _, sym := range ak.Symbols {
			fmt.Printf("    %#016x %6d %s\n", sym.Addr, sym.Size, sym.Name)
		}
	}
	if ovr := image.ExtractOverrides(fat); ovr != nil {
		fmt.Printf("  override configuration:\n%s", ovr)
	}
	return nil
}
