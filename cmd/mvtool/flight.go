package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// flightCmd decodes a flight-recorder dump (written by `mvrun -flight
// FILE`, the /flight endpoint, or an auto-dump on stderr) back into an
// annotated causal timeline: the Site/A/B integers of every event are
// expanded per event code, so a migration reads as
//
//	checkpoint        group=3  delta-slots=12 inflight-seqnos=1
//	restore           group=3  from-node=1 to-node=0
//	migrate-complete  group=3  latency-cycles=2273960 target-node=0
//
// instead of three rows of bare integers. -summary prints per-code
// counts only; -code / -site filter the timeline.
func flightCmd(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	codeFilter := fs.String("code", "", "show only events with this code name (e.g. checkpoint, node-kill)")
	siteFilter := fs.Int64("site", -1, "show only events at this site id (group/node/channel, per code)")
	summary := fs.Bool("summary", false, "print per-code event counts instead of the timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader
	switch fs.NArg() {
	case 0:
		in = os.Stdin
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("flight takes at most one dump file (stdin when omitted)")
	}

	events, header, err := parseFlightDump(in)
	if err != nil {
		return err
	}
	if header != "" {
		fmt.Println(header)
	}
	if *summary {
		counts := map[string]int{}
		for _, e := range events {
			counts[e.code]++
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-18s %d\n", n, counts[n])
		}
		return nil
	}
	shown := 0
	for _, e := range events {
		if *codeFilter != "" && e.code != *codeFilter {
			continue
		}
		if *siteFilter >= 0 && e.site != uint64(*siteFilter) {
			continue
		}
		fmt.Printf("vt=%-12d %-18s %s\n", e.vt, e.code, decodeFlightEvent(e))
		shown++
	}
	if shown == 0 {
		fmt.Println("(no events matched)")
	}
	return nil
}

// flightEvent is one parsed dump row.
type flightEvent struct {
	vt   uint64
	code string
	site uint64
	req  uint64
	a, b uint64
}

// parseFlightDump reads a rendered recorder dump. Lines that are not
// event rows (the === framing, the retained/total line, stray log
// output around an auto-dump) pass through as context: the dump reason
// line is returned as the header, everything else is skipped.
func parseFlightDump(r io.Reader) ([]flightEvent, string, error) {
	var events []flightEvent
	var header string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "=== flight recorder dump:") {
			header = strings.TrimSuffix(strings.TrimPrefix(line, "=== "), " ===")
			continue
		}
		e, ok := parseFlightLine(line)
		if !ok {
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if len(events) == 0 && header == "" {
		return nil, "", fmt.Errorf("no flight-recorder events found (expecting a dump from mvrun -flight or /flight)")
	}
	return events, header, nil
}

// parseFlightLine parses one event row:
//
//	vt=12345        checkpoint       site=3      req=0x2a               a=12       b=1
func parseFlightLine(line string) (flightEvent, bool) {
	fields := strings.Fields(line)
	if len(fields) != 6 || !strings.HasPrefix(fields[0], "vt=") {
		return flightEvent{}, false
	}
	var e flightEvent
	var err error
	if e.vt, err = strconv.ParseUint(fields[0][len("vt="):], 10, 64); err != nil {
		return flightEvent{}, false
	}
	e.code = fields[1]
	for _, kv := range []struct {
		prefix string
		dst    *uint64
	}{
		{"site=", &e.site}, {"req=", &e.req}, {"a=", &e.a}, {"b=", &e.b},
	} {
		var raw string
		for _, f := range fields[2:] {
			if strings.HasPrefix(f, kv.prefix) {
				raw = f[len(kv.prefix):]
			}
		}
		if raw == "" {
			return flightEvent{}, false
		}
		// req renders as %#x; ParseUint with base 0 accepts both forms.
		if *kv.dst, err = strconv.ParseUint(raw, 0, 64); err != nil {
			return flightEvent{}, false
		}
	}
	return e, true
}

// decodeFlightEvent expands Site/A/B per event code. The grid and
// migration codes get full decoding; channel/router codes get their
// common shape; anything unrecognized falls back to raw fields so new
// codes degrade gracefully instead of hiding data.
func decodeFlightEvent(e flightEvent) string {
	req := ""
	if e.req != 0 {
		req = fmt.Sprintf(" req=%#x", e.req)
	}
	switch e.code {
	case "checkpoint":
		return fmt.Sprintf("group=%d delta-slots=%d inflight-seqnos=%d%s", e.site, e.a, e.b, req)
	case "restore":
		return fmt.Sprintf("group=%d from-node=%d to-node=%d%s", e.site, e.a, e.b, req)
	case "drain":
		return fmt.Sprintf("node=%d groups-migrated-off=%d%s", e.site, e.a, req)
	case "node-kill":
		return fmt.Sprintf("node=%d victim-groups=%d%s", e.site, e.a, req)
	case "migrate-complete":
		return fmt.Sprintf("group=%d latency-cycles=%d target-node=%d%s", e.site, e.a, e.b, req)
	case "wedged":
		return fmt.Sprintf("group=%d%s", e.site, req)
	case "respawn":
		return fmt.Sprintf("group=%d generation=%d replayed=%d%s", e.site, e.a, e.b, req)
	case "degrade":
		return fmt.Sprintf("group=%d recoveries=%d%s", e.site, e.a, req)
	case "requeue":
		return fmt.Sprintf("channel=%d seq=%d%s", e.site, e.a, req)
	case "doorbell", "deliver", "complete", "dedup", "corrupt-drop":
		return fmt.Sprintf("channel=%d seq=%d%s", e.site, e.a, req)
	case "retransmit":
		return fmt.Sprintf("channel=%d seq=%d attempt=%d%s", e.site, e.a, e.b, req)
	case "sync-call", "ring-call":
		return fmt.Sprintf("channel=%d seq=%d retransmits=%d%s", e.site, e.a, e.b, req)
	case "merge-delta":
		return fmt.Sprintf("core=%d entries=%d%s", e.site, e.a, req)
	case "fault-roll":
		return fmt.Sprintf("roll-site=%d kind=%d seq=%d%s", e.site, e.a, e.b, req)
	case "tier-local", "tier-cache":
		return fmt.Sprintf("core=%d syscall=%d%s", e.site, e.a, req)
	default:
		return fmt.Sprintf("site=%d a=%d b=%d%s", e.site, e.a, e.b, req)
	}
}
