package main

import (
	"flag"
	"fmt"
	"os"

	"multiverse/internal/telemetry"
)

// sloCmd evaluates SLO targets against a metrics snapshot written by
// `mvrun -metrics-json`. With -check it exits nonzero when any target's
// quantile is violated (the CI gate); with -report it prints the
// per-group per-syscall latency table.
//
//	mvtool slo -in metrics.json -report
//	mvtool slo -in metrics.json -check slo.json
func sloCmd(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	in := fs.String("in", "", "metrics snapshot file (from mvrun -metrics-json)")
	check := fs.String("check", "", "SLO spec file: JSON array of {metric, quantile, max_cycles}; '*' suffix in metric is a prefix match")
	report := fs.Bool("report", false, "print the SLO latency report (p50/p99/p999 per histogram)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("usage: mvtool slo -in METRICS.json [-report] [-check SPEC.json]")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	snap, err := telemetry.ParseMetricsSnapshot(data)
	if err != nil {
		return err
	}

	if *report || *check == "" {
		if r := telemetry.SLOReport(snap); r != "" {
			fmt.Print(r)
		} else {
			fmt.Println("no SLO histograms in the snapshot (hybrid runs record slo.g<group>.<syscall>)")
		}
	}

	if *check != "" {
		specData, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		spec, err := telemetry.ParseSLOSpec(specData)
		if err != nil {
			return err
		}
		violations := telemetry.CheckSLOs(snap, spec)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		if len(violations) > 0 {
			return fmt.Errorf("%d SLO violation(s)", len(violations))
		}
		fmt.Printf("all %d SLO target(s) satisfied\n", len(spec))
	}
	return nil
}
