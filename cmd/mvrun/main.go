// mvrun runs a Scheme program (or a REPL) on the simulated stack in any of
// the three worlds — the user-facing face of Multiverse: "It can be run
// from a Linux command line and interact with the user just like any other
// executable ... but internally, it executes in kernel mode as an HRT."
//
// Usage:
//
//	mvrun -world multiverse -e '(display (+ 1 2)) (newline)'
//	mvrun -world native program.scm
//	echo '(+ 1 2)' | mvrun -world multiverse -repl
//	mvrun -bench binary-tree-2 -world multiverse
//	mvrun -bench fasta -world multiverse -trace=out.json -metrics
//	mvrun -bench fasta -world multiverse -exitless -stats
//	mvrun -bench fasta -world multiverse -listen :8080
//	mvrun -bench fasta -world multiverse -metrics-json metrics.json -slo
//	mvrun -nodes 4 -groups 64 -chaos 42:0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/profiling"
	"multiverse/internal/scheme"
	"multiverse/internal/telemetry"
	"multiverse/internal/vcode"
	"multiverse/internal/vfs"
)

func main() {
	world := flag.String("world", "multiverse", "execution world: native, virtual, multiverse")
	runtimeName := flag.String("runtime", "scheme", "guest runtime: scheme or vcode")
	expr := flag.String("e", "", "evaluate this expression instead of a file")
	repl := flag.Bool("repl", false, "run the interactive REPL over stdin")
	benchName := flag.String("bench", "", "run a named paper benchmark instead of a file")
	stats := flag.Bool("stats", false, "print run statistics afterwards")
	router := flag.Bool("router", false, "enable the adaptive boundary-crossing router (multiverse world only)")
	exitless := flag.Bool("exitless", false, "enable tier-3 exitless forwarding over polled SPSC rings (implies -router; multiverse world only)")
	merger := flag.Bool("merger", false, "enable the incremental state-superposition merger (multiverse world only)")
	scheduler := flag.Bool("scheduler", false, "enable the AeroKernel per-core run-queue scheduler (multiverse world only)")
	hrtCores := flag.Int("hrtcores", 0, "size of the HRT core partition (cores 1..N; 0 = default single core)")
	workers := flag.Int("workers", 8, "legion worker count for the hpcg benchmark")
	hotspots := flag.Bool("hotspots", false, "print the legacy-interface hotspot report (multiverse world only)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "dump the run's metrics registry to stderr afterwards")
	groups := flag.Int("groups", 0, "spawn N concurrent execution groups as a density workload before the program runs (multiverse world only; ignored with -bench)")
	warmPool := flag.Int("warm-pool", 0, "keep up to M pre-booted AeroKernel contexts for warm group spawns (multiverse world only)")
	maxGroups := flag.Int("max-groups", 0, "admission control: reject spawns beyond N live groups with ErrAdmissionRejected (0 = uncapped)")
	tenantBudget := flag.String("tenant-budget", "", "per-group boundary budget as <membytes>:<cycles>, e.g. 1048576:5000000 (either side 0 = unbounded)")
	nodes := flag.Int("nodes", 0, "run a grid of N single-machine fault domains instead of a program; -groups sets the tenant count (multiverse world only)")
	chaos := flag.String("chaos", "", "grid chaos as <seed>:<rate>: the PR-5 transport fault menu plus a node kill; summary stays byte-identical to a clean run (requires -nodes)")
	faultsArg := flag.String("faults", "", "arm random fault injection as <seed>:<rate>, e.g. 42:0.01 (multiverse world only)")
	faultSpec := flag.String("fault-spec", "", "arm a scripted fault scenario from this JSON file (multiverse world only)")
	metricsJSON := flag.String("metrics-json", "", "write the run's metrics registry to this file as sorted JSON")
	listen := flag.String("listen", "", "serve /metrics, /metrics.json, /healthz, /trace, and /flight on this address and keep serving after the run")
	flight := flag.String("flight", "", "write the flight-recorder contents to this file at exit (auto-dumps also land here instead of stderr)")
	sloReport := flag.Bool("slo", false, "print the per-group per-syscall SLO latency report to stderr afterwards")
	cpuProfile := flag.String("cpuprofile", "", "write a host pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a host pprof heap profile at exit to this file")
	blockProfile := flag.String("blockprofile", "", "write a host pprof blocking profile at exit to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(profiling.Flags{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
		os.Exit(1)
	}

	knobs := runKnobs{router: *router || *exitless, exitless: *exitless, merger: *merger, scheduler: *scheduler, hrtCores: *hrtCores, workers: *workers}
	knobs.obs = obsKnobs{metricsJSON: *metricsJSON, listen: *listen, flight: *flight, slo: *sloReport}
	plan, err := parseFaultFlags(*faultsArg, *faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
		os.Exit(1)
	}
	knobs.faults = plan
	knobs.groups, knobs.warmPool, knobs.maxGroups = *groups, *warmPool, *maxGroups
	knobs.nodes, knobs.chaos = *nodes, *chaos
	budget, err := parseTenantBudget(*tenantBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
		os.Exit(1)
	}
	knobs.budget = budget
	runErr := run(*world, *runtimeName, *expr, *repl, *benchName, *stats, knobs, *hotspots, *tracePath, *metrics, flag.Args())
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "mvrun: %v\n", runErr)
		os.Exit(1)
	}
}

func parseWorld(s string) (core.World, error) {
	switch s {
	case "native":
		return core.WorldNative, nil
	case "virtual":
		return core.WorldVirtual, nil
	case "multiverse", "hrt":
		return core.WorldHRT, nil
	default:
		return 0, fmt.Errorf("unknown world %q (want native, virtual, or multiverse)", s)
	}
}

// runKnobs bundles the optional subsystem switches.
type runKnobs struct {
	router    bool
	exitless  bool
	merger    bool
	scheduler bool
	hrtCores  int
	workers   int
	faults    *faults.Plan
	groups    int
	warmPool  int
	maxGroups int
	nodes     int
	chaos     string
	budget    *core.TenantBudget
	obs       obsKnobs
}

// parseTenantBudget parses -tenant-budget <membytes>:<cycles>. Either
// side may be 0 (that bound disabled).
func parseTenantBudget(s string) (*core.TenantBudget, error) {
	if s == "" {
		return nil, nil
	}
	var mem, cyc uint64
	if _, err := fmt.Sscanf(s, "%d:%d", &mem, &cyc); err != nil {
		return nil, fmt.Errorf("bad -tenant-budget %q (want <membytes>:<cycles>): %w", s, err)
	}
	return &core.TenantBudget{MemBytes: mem, Cycles: cycles.Cycles(cyc)}, nil
}

// obsKnobs bundles the exposition-plane switches.
type obsKnobs struct {
	metricsJSON string
	listen      string
	flight      string
	slo         bool
}

// startExposition binds the live endpoint before the run starts, so a
// scraper can watch the run in flight.
func startExposition(addr string, reg *telemetry.Registry, tracer *telemetry.Tracer, rec *telemetry.Recorder) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv := &http.Server{Addr: addr, Handler: telemetry.ExpositionHandler(reg, tracer, rec)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mvrun: serving /metrics, /metrics.json, /healthz, /trace, /flight on %s\n", addr)
	// block parks forever after the run so the endpoint outlives it
	// (interrupt to exit); a listen failure surfaces instead of hanging.
	block := func() {
		fmt.Fprintf(os.Stderr, "mvrun: run finished; still serving on %s (interrupt to exit)\n", addr)
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "mvrun: %v\n", err)
			os.Exit(1)
		}
	}
	return block, nil
}

// finishObservability emits the post-run artifacts: the metrics JSON
// file, the SLO report, and the flight-recorder file.
func finishObservability(obs obsKnobs, reg *telemetry.Registry, rec *telemetry.Recorder) error {
	if obs.metricsJSON != "" {
		blob, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(obs.metricsJSON, blob, 0o644); err != nil {
			return err
		}
	}
	if obs.slo {
		if report := telemetry.SLOReport(reg.Snapshot()); report != "" {
			fmt.Fprint(os.Stderr, report)
		} else {
			fmt.Fprintln(os.Stderr, "mvrun: no SLO histograms recorded (hybrid world only)")
		}
	}
	if obs.flight != "" {
		f, err := os.Create(obs.flight)
		if err != nil {
			return err
		}
		reason := "end of run"
		if why, text := rec.LastDump(); why != "" {
			// An auto-dump fired mid-run; preserve that snapshot verbatim
			// rather than the (later) final ring state.
			if _, err := f.WriteString(text); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		if err := rec.DumpTo(f, reason); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// parseFaultFlags combines -faults <seed>:<rate> and -fault-spec <file>
// into one plan: the scripted scenario composes with (and can run
// without) the random rates.
func parseFaultFlags(seedRate, specPath string) (*faults.Plan, error) {
	if seedRate == "" && specPath == "" {
		return nil, nil
	}
	var plan faults.Plan
	if seedRate != "" {
		p, err := faults.ParseSeedRate(seedRate)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		spec, err := faults.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		plan.Spec = spec
	}
	return &plan, nil
}

func run(worldName, runtimeName, expr string, repl bool, benchName string, stats bool, knobs runKnobs, hotspots bool, tracePath string, metrics bool, args []string) error {
	router, merger := knobs.router, knobs.merger
	w, err := parseWorld(worldName)
	if err != nil {
		return err
	}
	if runtimeName != "scheme" && runtimeName != "vcode" {
		return fmt.Errorf("unknown runtime %q (want scheme or vcode)", runtimeName)
	}
	if knobs.nodes > 0 || knobs.chaos != "" {
		if w != core.WorldHRT {
			return fmt.Errorf("-nodes/-chaos run the multi-node grid; they require -world multiverse")
		}
		return runGrid(knobs)
	}

	// Telemetry: tracing costs only when requested; the metrics registry
	// and the flight recorder always exist (counters are near-free and
	// the ring records in host time only). Both are created up front so
	// the live endpoint can serve them while the run is in flight.
	var tracer *telemetry.Tracer
	if tracePath != "" || knobs.obs.listen != "" {
		tracer = telemetry.New()
	}
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(telemetry.DefaultRecorderSize)
	if knobs.obs.flight == "" {
		// Post-mortem auto-dumps (contained panics, budget exhaustion,
		// wedged groups) land on stderr unless routed to a file.
		rec.SetAutoDumpWriter(os.Stderr)
	}
	block, err := startExposition(knobs.obs.listen, reg, tracer, rec)
	if err != nil {
		return err
	}
	finish := func() error {
		if err := finishObservability(knobs.obs, reg, rec); err != nil {
			return err
		}
		if err := writeTrace(tracer, tracePath); err != nil {
			return err
		}
		block()
		return nil
	}

	cfg := bench.RunConfig{
		Tracer: tracer, Metrics: reg, Recorder: rec,
		Router: router, Exitless: knobs.exitless, Merger: merger,
		Scheduler: knobs.scheduler, HRTCoreCount: knobs.hrtCores,
		Faults:   knobs.faults,
		WarmPool: knobs.warmPool, MaxGroups: knobs.maxGroups, TenantBudget: knobs.budget,
	}
	if knobs.faults != nil && w != core.WorldHRT {
		return fmt.Errorf("fault injection targets the hybrid boundary; it requires -world multiverse")
	}
	if (knobs.groups > 0 || knobs.warmPool > 0 || knobs.maxGroups > 0 || knobs.budget != nil) && w != core.WorldHRT {
		return fmt.Errorf("-groups/-warm-pool/-max-groups/-tenant-budget configure the multi-tenant hybrid host; they require -world multiverse")
	}

	if benchName == "hpcg" {
		// The legion HPCG workload is not a Scheme program; it runs the
		// task-parallel runtime directly so the partition and worker count
		// can be varied from the command line.
		t, err := bench.HPCGWorkloadTable(knobs.scheduler, knobs.hrtCores, knobs.workers)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}
	if benchName != "" {
		prog, ok := bench.ProgramByName(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", benchName)
		}
		res, err := bench.RunBenchmarkCfg(prog, w, cfg)
		if err != nil {
			return err
		}
		os.Stdout.Write(res.Output)
		if stats {
			printStats(res, router, knobs.exitless, merger, knobs.faults != nil)
		}
		if metrics {
			fmt.Fprint(os.Stderr, res.Metrics.Dump())
		}
		return finish()
	}

	// Assemble the program source.
	var src string
	switch {
	case expr != "":
		src = expr
	case repl:
		// handled below
	case len(args) == 1:
		data, rerr := os.ReadFile(args[0])
		if rerr != nil {
			return rerr
		}
		src = string(data)
	default:
		return fmt.Errorf("need a program file, -e expression, -repl, or -bench name")
	}

	fs := vfs.New()
	if err := scheme.InstallPrelude(fs); err != nil {
		return err
	}
	sys, err := bench.NewSystemForWorldCfg(w, fs, "mvrun", cfg)
	if err != nil {
		return err
	}
	if knobs.groups > 0 {
		// The density workload runs before the program: N tenants spawn
		// concurrently, sit live together (so the peak gauge reflects true
		// density), issue forwarded calls, and join — then the program gets
		// the same system, warm pool included.
		if err := bench.DensityWorkload(sys, knobs.groups); err != nil {
			return err
		}
	}
	if repl {
		stdin, rerr := io.ReadAll(os.Stdin)
		if rerr != nil {
			return rerr
		}
		sys.Proc.SetStdin(stdin)
	}

	var runErr error
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		if runtimeName == "vcode" {
			prog, perr := vcode.Parse(src)
			if perr != nil {
				runErr = perr
				return 1
			}
			vm := vcode.NewVM(env)
			runErr = vm.Run(prog)
			if runErr != nil {
				return 1
			}
			return 0
		}
		eng, eerr := scheme.NewEngine(env)
		if eerr != nil {
			runErr = eerr
			return 1
		}
		if repl {
			runErr = eng.REPL()
		} else {
			_, runErr = eng.RunString(src)
		}
		eng.Shutdown()
		if runErr != nil {
			return 1
		}
		return 0
	}); err != nil {
		return err
	}
	os.Stdout.Write(sys.Proc.Stdout())
	if runErr != nil {
		return runErr
	}
	if stats {
		st := sys.Proc.Stats()
		fmt.Fprintf(os.Stderr, "\n[%s] %.4f virtual seconds, %d syscalls, %d faults, %d ctx switches\n",
			w, sys.Main.Clock.Now().Seconds(), st.TotalSyscalls(),
			st.MinorFaults+st.MajorFaults, st.VoluntaryCS+st.InvoluntaryCS)
		// The boundary line prints in every world: the baselines simply
		// have an empty boundary (all zeros), which is itself informative.
		var fwdSys, fwdFaults uint64
		var merges int
		if sys.AK != nil {
			fwdSys, fwdFaults, merges = sys.AK.ForwardedSyscalls(), sys.AK.ForwardedFaults(), sys.AK.MergeCount()
		}
		fmt.Fprintf(os.Stderr, "[%s] forwarded: %d syscalls, %d page faults; merges: %d\n",
			w, fwdSys, fwdFaults, merges)
		if router {
			m := sys.Metrics()
			fmt.Fprintf(os.Stderr, "[%s] router: local=%d cache=%d/%d inval=%d promo=%d/%d\n",
				w, m.Counter("router.local_hits").Value(),
				m.Counter("router.cache_hits").Value(), m.Counter("router.cache_misses").Value(),
				m.Counter("router.cache_invalidations").Value(),
				m.Counter("router.promotions").Value(), m.Counter("router.demotions").Value())
		}
		if knobs.exitless {
			m := sys.Metrics()
			fmt.Fprintf(os.Stderr, "[%s] ring: calls=%d promo=%d/%d fault-demo=%d repromo=%d exits=%d\n",
				w, m.Counter("ring.syscalls").Value(),
				m.Counter("router.tier3.promotions").Value(), m.Counter("router.tier3.demotions").Value(),
				m.Counter("router.tier3.fault_demotions").Value(),
				m.Counter("router.tier3.repromotions").Value(),
				m.Counter("exits.ring").Value())
		}
		if knobs.scheduler {
			m := sys.Metrics()
			fmt.Fprintf(os.Stderr, "[%s] sched: placements=%d steals=%d halts=%d queue-delay=%d\n",
				w, m.Counter("sched.place").Value(), m.Counter("sched.steal").Value(),
				m.Counter("sched.idle.halt").Value(),
				uint64(m.LatencyHistogram("sched.queue.delay").Sum()))
		}
		if merger {
			m := sys.Metrics()
			fmt.Fprintf(os.Stderr, "[%s] merger: entries=%d delta=%d shootdowns=%d/%d local-faults=%d\n",
				w, m.Counter("paging.pml4_entries_copied").Value(),
				m.Counter("merger.delta.entries").Value(),
				m.Counter("merger.shootdown.targeted").Value(),
				m.Counter("merger.shootdown.broadcast").Value(),
				m.Counter("fault.local").Value())
		}
		if knobs.groups > 0 || knobs.warmPool > 0 || knobs.maxGroups > 0 || knobs.budget != nil {
			m := sys.Metrics()
			fmt.Fprintf(os.Stderr, "[%s] density: spawned=%d live=%d peak=%d warm=%d hits=%d misses=%d returns=%d drops=%d adm-rejected=%d budget-rejected=%d\n",
				w, m.Counter("density.groups.spawned").Value(),
				m.Gauge("density.groups.live").Value(),
				m.Gauge("density.groups.peak").Value(),
				m.Gauge("density.warm.size").Value(),
				m.Counter("density.warm.hits").Value(),
				m.Counter("density.warm.misses").Value(),
				m.Counter("density.warm.returns").Value(),
				m.Counter("density.warm.drops").Value(),
				m.Counter("density.admission.rejected").Value(),
				m.Counter("density.budget.rejected").Value())
		}
		if knobs.faults != nil {
			m := sys.Metrics()
			var injected uint64
			for _, k := range []string{"drop-notify", "dup-notify", "delay-inject",
				"corrupt-frame", "partner-stall", "partner-kill", "hrt-panic"} {
				injected += m.Counter("faults.injected." + k).Value()
			}
			fmt.Fprintf(os.Stderr, "[%s] faults: injected=%d retransmits=%d dedups=%d recoveries=%d degraded=%d recovery-cycles=%d\n",
				w, injected, m.Counter("faults.retransmit").Value(),
				m.Counter("faults.dedup").Value(), m.Counter("faults.recovery").Value(),
				m.Counter("faults.degraded").Value(),
				uint64(m.LatencyHistogram("faults.recovery.latency").Sum()))
		}
	}
	if metrics {
		fmt.Fprint(os.Stderr, sys.Metrics().Dump())
	}
	if hotspots && sys.AK != nil {
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, sys.Hotspots().Report())
	}
	return finish()
}

// runGrid runs the grid workload: N nodes as independent fault domains,
// -groups tenants spread across them, and — with -chaos — the PR-5
// transport fault menu plus a deterministic node kill. The stdout
// summary is byte-identical between a chaotic and a clean run of the
// same seed: that byte-identity IS the recovery claim, so everything
// chaos-specific (kill count, rate) prints on stderr, outside the
// comparable bytes.
func runGrid(knobs runKnobs) error {
	if knobs.nodes < 2 {
		return fmt.Errorf("-nodes %d: a grid needs at least 2 nodes (a kill must leave a survivor)", knobs.nodes)
	}
	plan := faults.Plan{Seed: 1}
	if knobs.chaos != "" {
		p, err := faults.ParseChaos(knobs.chaos)
		if err != nil {
			return err
		}
		plan = p
	}
	groups := knobs.groups
	if groups <= 0 {
		groups = 64
	}
	// The grid records into the usual telemetry so -metrics-json,
	// -flight, and -listen work here too: the flight ring holds the
	// checkpoint / restore / drain / node-kill / migrate-complete
	// timeline for `mvtool flight`.
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(telemetry.DefaultRecorderSize)
	if knobs.obs.flight == "" {
		rec.SetAutoDumpWriter(os.Stderr)
	}
	block, err := startExposition(knobs.obs.listen, reg, nil, rec)
	if err != nil {
		return err
	}
	summary, err := bench.RunGridChaosObserved(knobs.nodes, groups, plan, reg, rec)
	if err != nil {
		return err
	}
	os.Stdout.Write(summary)
	if err := finishObservability(knobs.obs, reg, rec); err != nil {
		return err
	}
	defer block()
	if knobs.chaos != "" {
		fmt.Fprintf(os.Stderr, "mvrun: grid chaos seed=%d rate=%g node-kills=%d over %d nodes / %d groups; stdout is byte-identical to the same seed with the faults off (-chaos %d:0)\n",
			plan.Seed, plan.Rate, plan.NodeKills, knobs.nodes, groups, plan.Seed)
	}
	return nil
}

// writeTrace exports the recorded spans as Chrome trace-event JSON.
func writeTrace(tracer *telemetry.Tracer, path string) error {
	if tracer == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

func printStats(res *bench.RunResult, router, exitless, merger, faulted bool) {
	fmt.Fprintf(os.Stderr, "\n[%s] %s: %.4f virtual seconds\n", res.World, res.Program, res.Seconds)
	fmt.Fprintf(os.Stderr, "  syscalls=%d faults=%d maxrss=%dKb ctxsw=%d\n",
		res.Stats.TotalSyscalls(), res.Stats.MinorFaults+res.Stats.MajorFaults,
		res.Stats.MaxRSSKb(), res.Stats.VoluntaryCS+res.Stats.InvoluntaryCS)
	// Uniform across worlds: the baselines report an empty boundary
	// rather than omitting the line.
	fmt.Fprintf(os.Stderr, "  forwarded: syscalls=%d faults=%d merges=%d\n",
		res.ForwardedSyscalls, res.ForwardedFaults, res.Merges)
	fmt.Fprintf(os.Stderr, "  gc: collections=%d barrier-faults=%d reductions=%d\n",
		res.GCCollections, res.BarrierFaults, res.Reductions)
	if router {
		fmt.Fprintf(os.Stderr, "  router: local=%d cache=%d/%d inval=%d promo=%d/%d fwd-cycles=%d\n",
			res.RouterLocalHits, res.RouterCacheHits, res.RouterCacheMisses,
			res.RouterInvalidations, res.RouterPromotions, res.RouterDemotions,
			uint64(res.ForwardedSyscallCycles))
	}
	if exitless {
		fmt.Fprintf(os.Stderr, "  ring: calls=%d promo=%d/%d fault-demo=%d repromo=%d exits=%d\n",
			res.RingCalls, res.RingPromotions, res.RingDemotions,
			res.RingFaultDrops, res.RingRepromotions, res.RingExits)
	}
	if merger {
		fmt.Fprintf(os.Stderr, "  merger: entries=%d delta=%d remerges=%d shootdowns=%d/%d local-faults=%d\n",
			res.PML4EntriesCopied, res.MergerDeltaEntries, res.Remerges,
			res.MergerTargeted, res.MergerBroadcast, res.LocalFaults)
	}
	if faulted {
		m := res.Metrics
		var injected uint64
		for _, k := range []string{"drop-notify", "dup-notify", "delay-inject",
			"corrupt-frame", "partner-stall", "partner-kill", "hrt-panic"} {
			injected += m.Counter("faults.injected." + k).Value()
		}
		fmt.Fprintf(os.Stderr, "  faults: injected=%d retransmits=%d dedups=%d recoveries=%d degraded=%d recovery-cycles=%d\n",
			injected, m.Counter("faults.retransmit").Value(),
			m.Counter("faults.dedup").Value(), m.Counter("faults.recovery").Value(),
			m.Counter("faults.degraded").Value(),
			uint64(m.LatencyHistogram("faults.recovery.latency").Sum()))
	}
}
