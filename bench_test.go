// Package multiverse_test holds the repository-level benchmark harness:
// one testing.B benchmark per table and figure in the paper's evaluation,
// plus the ablation benches DESIGN.md calls out.
//
// Simulated latencies are reported as "vcycles" (virtual cycles at the
// simulated 2.2 GHz) via b.ReportMetric; Go-level ns/op measures the
// simulator itself, not the modelled system.
//
// Run: go test -bench=. -benchmem
package multiverse_test

import (
	"fmt"
	"testing"

	"multiverse/internal/aerokernel"
	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/legion"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/ros"
	"multiverse/internal/scheme"
	"multiverse/internal/telemetry"
	"multiverse/internal/vfs"
)

// newHybrid builds an initialized hybrid system for microbenchmarks.
func newHybrid(b *testing.B, hrtCore machine.CoreID) *core.System {
	b.Helper()
	sys, err := newHybridOpts(hrtCore, nil)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func newHybridOpts(hrtCore machine.CoreID, tracer *telemetry.Tracer) (*core.System, error) {
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage("bench"),
		AeroKernel: core.NewAeroKernelImage(),
	})
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(fat, core.Options{
		Hybrid:   true,
		AppName:  "bench",
		HRTCores: []machine.CoreID{hrtCore},
		Tracer:   tracer,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.InitRuntime(); err != nil {
		return nil, err
	}
	return sys, nil
}

// TestFig2TelemetryInvariance pins the telemetry layer's core contract:
// recording spans and metrics never advances a virtual clock, so every
// Figure 2 latency is identical — not merely close — with tracing on.
func TestFig2TelemetryInvariance(t *testing.T) {
	measure := func(tracer *telemetry.Tracer) map[string]cycles.Cycles {
		sys, err := newHybridOpts(1, tracer)
		if err != nil {
			t.Fatal(err)
		}
		clk := sys.Main.Clock
		out := make(map[string]cycles.Cycles)

		start := clk.Now()
		if err := sys.HVM.MergeAddressSpace(clk, sys.Proc.CR3()); err != nil {
			t.Fatal(err)
		}
		out["merger"] = clk.Now() - start

		noop := sys.AK.RegisterFunc("inv_noop", func(*aerokernel.Thread, []uint64) uint64 { return 0 })
		start = clk.Now()
		if _, err := sys.HVM.AsyncCall(clk, noop); err != nil {
			t.Fatal(err)
		}
		out["async"] = clk.Now() - start

		s, err := sys.HVM.SetupSync(clk, 0x7f55_0000_0000, sys.Kernel.BootCore(), 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		pollClk := cycles.NewClock(clk.Now())
		go func() {
			for s.Poll(pollClk, func(fn uint64, args []uint64) uint64 { return 0 }) {
			}
		}()
		start = clk.Now()
		if _, err := s.Invoke(clk, noop); err != nil {
			t.Fatal(err)
		}
		out["sync"] = clk.Now() - start
		return out
	}

	off := measure(nil)
	on := measure(telemetry.New())
	for name, want := range off {
		if got := on[name]; got != want {
			t.Errorf("%s latency changed with tracing on: %d vs %d cycles (delta %d)",
				name, got, want, int64(got)-int64(want))
		}
	}
}

func reportVCycles(b *testing.B, total cycles.Cycles) {
	b.ReportMetric(float64(total)/float64(b.N), "vcycles/op")
}

// ---- Figure 2: ROS<->HRT round-trip latencies ---------------------------

func BenchmarkFig2_AddressSpaceMerger(b *testing.B) {
	sys := newHybrid(b, 1)
	clk := sys.Main.Clock
	start := clk.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.HVM.MergeAddressSpace(clk, sys.Proc.CR3()); err != nil {
			b.Fatal(err)
		}
	}
	reportVCycles(b, clk.Now()-start)
}

func BenchmarkFig2_AsynchronousCall(b *testing.B) {
	sys := newHybrid(b, 1)
	clk := sys.Main.Clock
	noop := sys.AK.RegisterFunc("bench_noop", func(*aerokernel.Thread, []uint64) uint64 { return 0 })
	start := clk.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.HVM.AsyncCall(clk, noop); err != nil {
			b.Fatal(err)
		}
	}
	reportVCycles(b, clk.Now()-start)
}

func benchSyncCall(b *testing.B, hrtCore machine.CoreID) {
	sys := newHybrid(b, hrtCore)
	clk := sys.Main.Clock
	s, err := sys.HVM.SetupSync(clk, 0x7f77_0000_0000, sys.Kernel.BootCore(), hrtCore)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	pollClk := cycles.NewClock(clk.Now())
	go func() {
		for s.Poll(pollClk, func(fn uint64, args []uint64) uint64 { return 0 }) {
		}
	}()
	start := clk.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(clk, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportVCycles(b, clk.Now()-start)
}

func BenchmarkFig2_SynchronousCallSameSocket(b *testing.B)  { benchSyncCall(b, 1) }
func BenchmarkFig2_SynchronousCallCrossSocket(b *testing.B) { benchSyncCall(b, 4) }

// ---- Figure 9: system call latency, Virtual vs Multiverse ---------------

// fig9Op issues one instance of the named call against env.
func fig9Op(b *testing.B, env core.Env, name string, fd uint64, buf uint64, payload []byte) {
	switch name {
	case "getpid":
		env.VDSO(linuxabi.SysGetpid)
	case "gettimeofday":
		env.VDSO(linuxabi.SysGettimeofday)
	case "fwrite":
		env.Syscall(linuxabi.Call{Num: linuxabi.SysWrite, Args: [6]uint64{fd, buf, uint64(len(payload))}, Data: payload})
	case "stat":
		env.Syscall(linuxabi.Call{Num: linuxabi.SysStat, Path: "/fig9/in.dat"})
	case "read":
		env.Syscall(linuxabi.Call{Num: linuxabi.SysLseek, Args: [6]uint64{fd, 0, 0}})
		env.Syscall(linuxabi.Call{Num: linuxabi.SysRead, Args: [6]uint64{fd, buf, 1 << 20}})
	case "getcwd":
		env.Syscall(linuxabi.Call{Num: linuxabi.SysGetcwd})
	case "open":
		r := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/fig9/in.dat", Args: [6]uint64{0, linuxabi.ORdonly}})
		env.Syscall(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{r.Ret}})
	case "mmap":
		r := env.Syscall(linuxabi.Call{Num: linuxabi.SysMmap, Args: [6]uint64{0, 1 << 20, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous}})
		env.Syscall(linuxabi.Call{Num: linuxabi.SysMunmap, Args: [6]uint64{r.Ret, 1 << 20}})
	default:
		b.Fatalf("unknown fig9 op %q", name)
	}
}

func fig9Setup(b *testing.B, env core.Env) (fd, buf uint64, payload []byte) {
	mres := env.Syscall(linuxabi.Call{Num: linuxabi.SysMmap, Args: [6]uint64{0, 1 << 20, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous}})
	for off := uint64(0); off < 1<<20; off += 4096 {
		if err := env.Touch(mres.Ret+off, true); err != nil {
			b.Fatal(err)
		}
	}
	o := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/fig9/in.dat", Args: [6]uint64{0, linuxabi.ORdwr}})
	return o.Ret, mres.Ret, make([]byte, 1<<20)
}

func fig9FS(b *testing.B, sys *core.System) {
	b.Helper()
	if err := sys.Kernel.FS().MkdirAll("/fig9"); err != nil {
		b.Fatal(err)
	}
	if err := sys.Kernel.FS().WriteFile("/fig9/in.dat", make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig9_Virtual(b *testing.B) {
	calls := []string{"getpid", "gettimeofday", "fwrite", "stat", "read", "getcwd", "open", "close", "mmap"}
	for _, name := range calls {
		if name == "close" {
			continue // folded into open
		}
		b.Run(name, func(b *testing.B) {
			sys, err := core.NewSystem(nil, core.Options{Virtual: true, AppName: "fig9"})
			if err != nil {
				b.Fatal(err)
			}
			fig9FS(b, sys)
			env := sys.NativeEnv()
			fd, buf, payload := fig9Setup(b, env)
			clk := env.Clock()
			start := clk.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fig9Op(b, env, name, fd, buf, payload)
			}
			reportVCycles(b, clk.Now()-start)
		})
	}
}

func BenchmarkFig9_Multiverse(b *testing.B) {
	calls := []string{"getpid", "gettimeofday", "fwrite", "stat", "read", "getcwd", "open", "mmap"}
	for _, name := range calls {
		b.Run(name, func(b *testing.B) {
			sys := newHybrid(b, 1)
			fig9FS(b, sys)
			var total cycles.Cycles
			if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
				fd, buf, payload := fig9Setup(b, env)
				clk := env.Clock()
				start := clk.Now()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fig9Op(b, env, name, fd, buf, payload)
				}
				total = clk.Now() - start
				return 0
			}); err != nil {
				b.Fatal(err)
			}
			reportVCycles(b, total)
		})
	}
}

// ---- Figures 10-13: the Racket-stand-in benchmarks ----------------------

// BenchmarkFig13 runs each workload in each world; one op = one complete
// benchmark process execution. vcycles/op is the end-to-end virtual
// runtime Figure 13 plots.
func BenchmarkFig13(b *testing.B) {
	worlds := []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT}
	for _, p := range bench.Programs() {
		for _, w := range worlds {
			p, w := p, w
			b.Run(fmt.Sprintf("%s/%s", p.Name, w), func(b *testing.B) {
				var total cycles.Cycles
				for i := 0; i < b.N; i++ {
					res, err := bench.RunBenchmark(p, w)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Cycles
				}
				reportVCycles(b, total)
			})
		}
	}
}

// BenchmarkIncrementalPort runs the GC benchmark in the three incremental-
// porting configurations (native, initial hybridization, AK memory port).
func BenchmarkIncrementalPort(b *testing.B) {
	p, _ := bench.ProgramByName("binary-tree-2")
	cfgs := []struct {
		name string
		w    core.World
		ak   bool
	}{
		{"Native", core.WorldNative, false},
		{"Multiverse", core.WorldHRT, false},
		{"Multiverse+AKMemory", core.WorldHRT, true},
	}
	for _, c := range cfgs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var total cycles.Cycles
			for i := 0; i < b.N; i++ {
				res, err := bench.RunBenchmarkEx(p, c.w, c.ak)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Cycles
			}
			reportVCycles(b, total)
		})
	}
}

// BenchmarkHPCG runs the mini-Legion CG solve in each world.
func BenchmarkHPCG(b *testing.B) {
	for _, w := range []core.World{core.WorldNative, core.WorldHRT} {
		w := w
		b.Run(w.String(), func(b *testing.B) {
			var total cycles.Cycles
			for i := 0; i < b.N; i++ {
				sys, err := bench.NewSystemForWorld(w, vfs.New(), "hpcg")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.RunMain(func(env core.Env) uint64 {
					rt, rerr := legion.New(env, 4)
					if rerr != nil {
						b.Error(rerr)
						return 1
					}
					defer rt.Shutdown()
					res, rerr := legion.RunHPCG(rt, env, 16384, 50)
					if rerr != nil {
						b.Error(rerr)
						return 1
					}
					total += res.Cycles
					return 0
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportVCycles(b, total)
		})
	}
}

// BenchmarkFig11_Startup measures runtime startup (Figure 11's workload).
func BenchmarkFig11_Startup(b *testing.B) {
	var total cycles.Cycles
	for i := 0; i < b.N; i++ {
		res, err := bench.RunStartup(core.WorldNative)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Cycles
	}
	reportVCycles(b, total)
}

// ---- Nautilus primitives vs Linux (section 2) ---------------------------

func BenchmarkPrimitives_ROSThreadCreateJoin(b *testing.B) {
	sys, err := core.NewSystem(nil, core.Options{AppName: "prim"})
	if err != nil {
		b.Fatal(err)
	}
	clk := sys.Main.Clock
	start := clk.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sys.Proc.NewThread(sys.Kernel.BootCore())
		t.Start(clk, func(*ros.Thread) {})
		t.Join(sys.Main)
	}
	reportVCycles(b, clk.Now()-start)
}

func BenchmarkPrimitives_AKThreadCreateJoin(b *testing.B) {
	sys := newHybrid(b, 1)
	var total cycles.Cycles
	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		clk := env.Clock()
		start := clk.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := sys.AK.CreateThread(clk, sys.Opts.HRTCores[0], aerokernel.Superposition{}, nil, nil)
			t.Start(func(*aerokernel.Thread) uint64 { return 0 })
			t.Join(clk)
		}
		total = clk.Now() - start
		return 0
	}); err != nil {
		b.Fatal(err)
	}
	reportVCycles(b, total)
}

// ---- Ablations (DESIGN.md) ----------------------------------------------

func BenchmarkAblation_SymbolCache(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			sys := newHybrid(b, 1)
			set := core.NewOverrideSet([]core.OverrideSpec{{Legacy: "f", AKSymbol: "nk_sched_yield"}}, cached)
			w, _ := set.Lookup("f")
			var total cycles.Cycles
			if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
				t := env.(interface {
					HRTThreadForBench() *aerokernel.Thread
				}).HRTThreadForBench()
				if _, err := w.Invoke(t); err != nil { // warm
					b.Fatal(err)
				}
				clk := env.Clock()
				start := clk.Now()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Invoke(t); err != nil {
						b.Fatal(err)
					}
				}
				total = clk.Now() - start
				return 0
			}); err != nil {
				b.Fatal(err)
			}
			reportVCycles(b, total)
		})
	}
}

func BenchmarkAblation_Remerge(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "duplicate-fault"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			var total cycles.Cycles
			for i := 0; i < b.N; i++ {
				sys := newHybrid(b, 1)
				sys.AK.SetEagerRemerge(eager)
				start := sys.Main.Clock.Now()
				if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
					r := env.Syscall(linuxabi.Call{Num: linuxabi.SysMmap, Args: [6]uint64{0, 64 * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous}})
					for off := uint64(0); off < 64*4096; off += 4096 {
						if err := env.Touch(r.Ret+off, true); err != nil {
							panic(err)
						}
					}
					return 0
				}); err != nil {
					b.Fatal(err)
				}
				total += sys.Main.Clock.Now() - start
			}
			reportVCycles(b, total)
		})
	}
}

func BenchmarkAblation_Pinning(b *testing.B) {
	for _, pin := range []bool{false, true} {
		name := "demand-fault"
		if pin {
			name = "pinned"
		}
		b.Run(name, func(b *testing.B) {
			var total cycles.Cycles
			for i := 0; i < b.N; i++ {
				sys := newHybrid(b, 1)
				r := sys.Proc.Syscall(sys.Main, linuxabi.Call{Num: linuxabi.SysMmap, Args: [6]uint64{0, 64 * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous}})
				if pin {
					for off := uint64(0); off < 64*4096; off += 4096 {
						sys.Proc.Touch(sys.Main, r.Ret+off, true)
					}
				}
				if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
					clk := env.Clock()
					start := clk.Now()
					for off := uint64(0); off < 64*4096; off += 4096 {
						if err := env.Touch(r.Ret+off, true); err != nil {
							panic(err)
						}
					}
					total += clk.Now() - start
					return 0
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportVCycles(b, total)
		})
	}
}

func BenchmarkAblation_ChannelKind(b *testing.B) {
	b.Run("async", BenchmarkFig2_AsynchronousCall)
	b.Run("sync", func(b *testing.B) { benchSyncCall(b, 1) })
}

// ---- The interpreter itself (Go-level performance) ----------------------

func BenchmarkInterpreter_Fib(b *testing.B) {
	sys, err := core.NewSystem(nil, core.Options{AppName: "interp", FS: preludeFS(b)})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := scheme.NewEngine(sys.NativeEnv())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunString("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunString("(fib 15)"); err != nil {
			b.Fatal(err)
		}
	}
}

func preludeFS(b *testing.B) *vfs.FS {
	b.Helper()
	fs := vfs.New()
	if err := scheme.InstallPrelude(fs); err != nil {
		b.Fatal(err)
	}
	return fs
}
