package hvm

// flowSeqBits is how much of a flow id the per-channel sequence number
// occupies; the channel id lives above it. 40 bits of seqno means a
// single channel can forward ~10^12 requests before the encoding wraps
// — effectively never at simulation scale — while still leaving 24 bits
// of channel id, far beyond any plausible channel count.
const flowSeqBits = 40

// flowID is the deterministic cross-track trace link id stitching a
// sender span to the partner span that services it. It must be unique
// per (channel, request): an earlier encoding used a 20-bit seqno
// split, so after 2^20 forwards on one channel the sequence overflowed
// into the channel-id bits and Perfetto flow arrows cross-linked
// unrelated requests.
func flowID(id, seq uint64) uint64 {
	return id<<flowSeqBits | seq
}
