package hvm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// EventKind classifies what an execution group is converging on.
type EventKind int

const (
	// EvSyscall forwards a system call from the HRT to the ROS.
	EvSyscall EventKind = iota + 1
	// EvPageFault forwards a page fault in the ROS portion of the virtual
	// address space; the ROS-side library replicates the access so the
	// same exception occurs on the ROS core and is handled normally.
	EvPageFault
	// EvThreadExit notifies the ROS side that the HRT thread exited (the
	// partner thread then runs its cleanup and exits, unblocking join).
	EvThreadExit

	numEventKinds
)

// eventNames is indexed by EventKind — the String() hot path is an array
// load, not a map lookup.
var eventNames = [numEventKinds]string{
	EvSyscall:    "syscall",
	EvPageFault:  "page-fault",
	EvThreadExit: "thread-exit",
}

// String names the event kind.
func (k EventKind) String() string {
	if k > 0 && int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Precomputed span names keep the per-forward tracing calls concat-free
// (the arguments are evaluated even when tracing is off).
var forwardSpanNames, serviceSpanNames [numEventKinds]string

func init() {
	for k := EventKind(1); k < numEventKinds; k++ {
		forwardSpanNames[k] = "forward:" + k.String()
		serviceSpanNames[k] = "service:" + k.String()
	}
}

func forwardSpanName(k EventKind) string {
	if k > 0 && k < numEventKinds {
		return forwardSpanNames[k]
	}
	return "forward:" + k.String()
}

func serviceSpanName(k EventKind) string {
	if k > 0 && k < numEventKinds {
		return serviceSpanNames[k]
	}
	return "service:" + k.String()
}

// Envelope is one request crossing an event channel from HRT to ROS.
type Envelope struct {
	Kind EventKind

	// Syscall payload.
	Call linuxabi.Call

	// Page-fault payload (x86 error-code information).
	FaultAddr  uint64
	FaultWrite bool

	// ExitCode accompanies EvThreadExit.
	ExitCode uint64

	// Arrival is the virtual time at which the request reaches the ROS
	// partner thread.
	Arrival cycles.Cycles

	// Seq is this channel's sequence number for the request; the ROS side
	// coalesces duplicate deliveries by it. Zero until Forward stamps it.
	Seq uint64
	// Checksum is the per-frame integrity word (faults.Checksum over the
	// identifying fields); zero means "no checksum on the wire" (fault
	// plane disabled).
	Checksum uint64
	// Retransmits counts how many times the poll deadline expired and the
	// request was resent before this Forward returned.
	Retransmits int

	// ReqID is the causal request id allocated at the AeroKernel syscall
	// (or fault) entry and carried across every hop, retry, and replay of
	// this request; 0 when the origin predates id allocation (boot-time
	// control traffic).
	ReqID uint64

	reply chan Reply
	// pooled marks an envelope acquired from its channel's free list, so
	// only those are recycled (caller-constructed envelopes are left
	// alone).
	pooled bool

	// flow is the deterministic cross-track link id stitching the HRT
	// forward span to the ROS service span; span is the open service
	// span between Recv and Complete.
	flow uint64
	span *telemetry.Span
}

// Reply is the ROS side's completion of an Envelope.
type Reply struct {
	Res linuxabi.Result
	// FaultOK reports that a forwarded fault was resolved (page now
	// mapped / handler ran); false means the access is genuinely invalid
	// and the HRT should treat it as fatal.
	FaultOK bool
	// Departure is the virtual time the reply left the ROS side.
	Departure cycles.Cycles
}

// EventChannel is the VMM-mediated communication path of one execution
// group: the HRT thread on one end, its ROS partner thread on the other.
// The VMM "only expects that the execution group adheres to a strict
// protocol for event requests and completion" (section 3.2).
type EventChannel struct {
	hvm     *HVM
	id      uint64
	hrtCore machine.CoreID
	rosCore machine.CoreID
	// svcName is the partner-side trace track name, formatted once.
	svcName string

	mu      sync.Mutex
	pending chan *Envelope
	closed  bool

	// seq numbers this channel's forwards; combined with the channel id
	// it yields flow ids that depend only on program order, never on
	// goroutine scheduling.
	seq atomic.Uint64

	// reliable suppresses fault injection on this channel: set when the
	// group degrades to ROS-only execution, so the residual control
	// traffic (thread exit) cannot be lost again.
	reliable atomic.Bool

	// Receiver-side recovery state, present only when the fault plane is
	// armed. completed records serviced seqnos for duplicate coalescing;
	// inflight tracks envelopes received but not yet completed (what a
	// dead partner leaves behind); redeliver is the watchdog's replay
	// queue, drained before pending.
	rmu       sync.Mutex
	completed map[uint64]bool
	inflight  map[uint64]*Envelope
	redeliver []*Envelope
	// replayScratch is Requeue's reusable staging slice: respawn storms
	// rebuild the redelivery queue without allocating a fresh slice per
	// respawn.
	replayScratch []*Envelope

	// Clean-path envelope recycling: one Forward is outstanding per
	// channel in the steady state, so a one-slot free list (with the
	// envelope's reply channel riding along) makes the round trip
	// allocation-free. Fault-armed forwards never recycle — inflight and
	// redeliver can hold references past Forward's return.
	fmu     sync.Mutex
	freeEnv *Envelope

	// Cached per-kind metric handles, resolved once at channel creation
	// instead of a registry lookup (and two string concats) per Forward.
	fwdCtr [numEventKinds]*telemetry.Counter
	fwdLat [numEventKinds]*telemetry.Histogram
	// retransDepth gauges the retransmission window (redeliver queue +
	// in-flight set); resolved once when the fault plane is armed.
	retransDepth *telemetry.Gauge

	// Partner-interrupt plumbing for grid migration. halt, when armed,
	// lets the grid stop the partner's Recv loop without closing the
	// channel: the channel object — pending queue, seqno counter, and
	// the whole retransmission window — survives the move, and the
	// restored partner on the target node keeps serving it. halt is nil
	// on non-grid groups, so the ordinary receive path stays a plain
	// channel receive.
	hltMu sync.Mutex
	halt  chan struct{}
}

// NewEventChannel creates the channel for an execution group whose HRT
// thread runs on hrtCore and whose partner runs on rosCore.
func (h *HVM) NewEventChannel(hrtCore, rosCore machine.CoreID) *EventChannel {
	c := &EventChannel{
		hvm:     h,
		id:      atomic.AddUint64(&h.channelSeq, 1),
		hrtCore: hrtCore,
		rosCore: rosCore,
		pending: make(chan *Envelope, 1),
	}
	c.svcName = fmt.Sprintf("ros:svc:%d", c.id)
	if h.faults != nil {
		// Duplicate deliveries and partner-death windows can park several
		// envelopes at once; a deeper queue keeps the sender from blocking
		// on a frame the dead partner will never drain.
		c.pending = make(chan *Envelope, 64)
		c.completed = make(map[uint64]bool)
		c.inflight = make(map[uint64]*Envelope)
	}
	for k := EventKind(1); k < numEventKinds; k++ {
		c.fwdCtr[k] = h.metrics.Counter("forward." + k.String())
		c.fwdLat[k] = h.metrics.LatencyHistogram("forward." + k.String() + ".latency")
	}
	if h.faults != nil {
		c.retransDepth = h.metrics.Gauge("faults.retransmit.depth")
	}
	return c
}

// NewEnvelope returns a zeroed envelope for the next Forward on this
// channel, recycling the clean-path scratch envelope (and its reply
// channel) when one is free.
func (c *EventChannel) NewEnvelope() *Envelope {
	c.fmu.Lock()
	env := c.freeEnv
	c.freeEnv = nil
	c.fmu.Unlock()
	if env == nil {
		return &Envelope{pooled: true}
	}
	reply := env.reply
	*env = Envelope{reply: reply, pooled: true}
	return env
}

// releaseEnv returns a pooled envelope to the free list once its round
// trip has fully completed.
func (c *EventChannel) releaseEnv(env *Envelope) {
	if !env.pooled {
		return
	}
	c.fmu.Lock()
	if c.freeEnv == nil {
		c.freeEnv = env
	}
	c.fmu.Unlock()
}

// ID returns the channel's deterministic id (fault-injection site key).
func (c *EventChannel) ID() uint64 { return c.id }

// ArmPartnerInterrupt arms (or re-arms, after a restore) the halt line
// that InterruptPartner closes. Grid-hosted groups arm it at spawn; a
// restored group re-arms it before its new partner starts serving.
func (c *EventChannel) ArmPartnerInterrupt() {
	c.hltMu.Lock()
	if c.halt == nil {
		c.halt = make(chan struct{})
	}
	c.hltMu.Unlock()
}

// InterruptPartner stops the partner's receive loop without closing the
// channel: the blocked Recv returns nil, the serve loop exits without
// running its teardown (the group is relocating, not dying), and every
// envelope still queued or in flight survives for the restored partner
// on the target node. Callers must only interrupt a quiesced partner
// (nothing pending on the wire) — the quiesce-point invariant — so the
// pending-vs-halt select below can never race a live delivery.
func (c *EventChannel) InterruptPartner() {
	c.hltMu.Lock()
	h := c.halt
	c.halt = nil
	c.hltMu.Unlock()
	if h != nil {
		close(h)
	}
}

func (c *EventChannel) haltChan() chan struct{} {
	c.hltMu.Lock()
	h := c.halt
	c.hltMu.Unlock()
	return h
}

// recvPending blocks for the next wire delivery, honoring the partner
// interrupt when one is armed. Non-grid channels take the plain receive.
func (c *EventChannel) recvPending() (*Envelope, bool) {
	h := c.haltChan()
	if h == nil {
		env, ok := <-c.pending
		return env, ok
	}
	select {
	case env, ok := <-c.pending:
		return env, ok
	case <-h:
		return nil, false
	}
}

// hrtTrack is the trace track of the HRT thread driving this channel.
func (c *EventChannel) hrtTrack() telemetry.Track {
	return telemetry.Track{Core: int(c.hrtCore), Name: "hrt"}
}

// svcTrack is the trace track of the ROS partner thread servicing this
// channel. Naming it per channel keeps each partner's span stack private,
// so parent/child inference never depends on goroutine interleaving.
func (c *EventChannel) svcTrack() telemetry.Track {
	return telemetry.Track{Core: int(c.rosCore), Name: c.svcName}
}

// Forward sends an envelope from the HRT side and blocks until the ROS
// side completes it. clk is the HRT thread's clock; it pays the full
// request leg and is synchronized to the reply's arrival.
//
// Cost structure of one round trip (the ~25K-cycle asynchronous path of
// Figure 2): post to the shared page, hypercall, VMM records the raise and
// waits for a user-mode injection window in the ROS, frame injection into
// the partner thread, partner wakeup; then on completion a post, a
// hypercall, injection back into the HRT, and guest re-entry.
func (c *EventChannel) Forward(clk *cycles.Clock, env *Envelope) (Reply, error) {
	cost := c.hvm.cost
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Reply{}, fmt.Errorf("hvm: event channel closed")
	}
	c.mu.Unlock()
	seq := c.seq.Add(1)
	env.Seq = seq
	env.flow = flowID(c.id, seq)

	tr := c.hvm.tracer
	start := clk.Now()
	// Attr-carrying span starts are guarded: building the variadic attr
	// slice costs a heap allocation even when tracing is off.
	var sp *telemetry.Span
	if tr.Enabled() {
		sp = tr.Begin(c.hrtTrack(), "evtchan", forwardSpanName(env.Kind), start,
			telemetry.Attr{Key: "req", Val: env.ReqID})
		sp.LinkOut(env.flow)
	}
	if env.reply == nil {
		env.reply = make(chan Reply, 1)
	}
	c.hvm.recorder.Record(start, telemetry.RecDoorbell, c.id, env.ReqID, seq, uint64(env.Kind))

	var r Reply
	clean := c.hvm.faults == nil
	if !clean {
		r = c.sendFaulted(clk, env, c.hvm.faults)
	} else {
		leg := tr.Begin(c.hrtTrack(), "evtchan", "request-leg", clk.Now())
		clk.Advance(cost.EventChannelPost)
		clk.Advance(cost.HypercallRoundTrip())
		clk.Advance(cost.VMMRecord)
		c.hvm.countExit("evtchan")
		env.Arrival = clk.Now() + cost.InjectWindowROS + cost.SignalInjectROS
		leg.EndAt(env.Arrival)
		c.pending <- env
		r = <-env.reply
	}
	// Reply leg: injection back into the HRT plus guest re-entry.
	inj := tr.Begin(c.hrtTrack(), "evtchan", "reply-inject", r.Departure)
	clk.SyncTo(r.Departure + cost.InterruptInject + cost.VMEntry)
	inj.EndAt(clk.Now())
	sp.EndAt(clk.Now())

	kind := env.Kind
	if clean {
		// The partner's Complete has run (it released the reply), so the
		// envelope's round trip is over and it can be recycled.
		c.releaseEnv(env)
	}
	if kind > 0 && kind < numEventKinds {
		c.fwdCtr[kind].Inc()
		c.fwdLat[kind].Observe(clk.Now() - start)
	} else {
		m := c.hvm.metrics
		m.Counter("forward." + kind.String()).Inc()
		m.LatencyHistogram("forward." + kind.String() + ".latency").Observe(clk.Now() - start)
	}
	return r, nil
}

// frameChecksum is the integrity word written with a request frame.
func frameChecksum(c *EventChannel, env *Envelope) uint64 {
	return faults.Checksum(
		c.id, env.Seq, uint64(env.Kind),
		uint64(env.Call.Num),
		env.Call.Args[0], env.Call.Args[1], env.Call.Args[2],
		env.Call.Args[3], env.Call.Args[4], env.Call.Args[5],
		faults.HashString(env.Call.Path),
		env.FaultAddr, boolWord(env.FaultWrite), env.ExitCode)
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// sendFaulted is the request leg under an armed fault plane: the same
// per-attempt virtual costs as the clean leg, plus a retransmission loop
// driven by sender-side rolls. The sender learns of a lost or corrupted
// delivery the way real hardware does — its virtual poll deadline expires
// with no completion — and resends with exponential backoff. The final
// attempt is forced clean so a request always terminates.
func (c *EventChannel) sendFaulted(clk *cycles.Clock, env *Envelope, fi *faults.Injector) Reply {
	cost := c.hvm.cost
	tr := c.hvm.tracer
	timeout := fi.RetryTimeout()
	max := fi.MaxAttempts()
	quiet := c.reliable.Load() // degraded mode: no further transport faults
	for attempt := 0; ; attempt++ {
		last := quiet || attempt >= max-1
		leg := tr.Begin(c.hrtTrack(), "evtchan", "request-leg", clk.Now())
		clk.Advance(cost.EventChannelPost)
		clk.Advance(cost.HypercallRoundTrip())
		clk.Advance(cost.VMMRecord)
		c.hvm.countExit("evtchan")
		arrival := clk.Now() + cost.InjectWindowROS + cost.SignalInjectROS
		if !quiet && fi.Roll(faults.DelayInject, c.id, env.Seq, attempt, clk.Now()) {
			arrival += fi.Delay()
		}
		env.Arrival = arrival
		env.Checksum = frameChecksum(c, env)
		leg.EndAt(arrival)

		dropped := !last && fi.Roll(faults.DropNotify, c.id, env.Seq, attempt, clk.Now())
		corrupted := !last && fi.Roll(faults.CorruptFrame, c.id, env.Seq, attempt, clk.Now())
		switch {
		case dropped:
			// The VMM lost the notification: nothing reaches the partner.
		case corrupted:
			// The frame arrives damaged; the partner's checksum catches it
			// and discards, so this attempt also goes unanswered.
			bad := *env
			bad.Checksum ^= 0xbad
			c.pending <- &bad
		default:
			if !quiet && fi.Roll(faults.DupNotify, c.id, env.Seq, attempt, clk.Now()) {
				// Second delivery of the same frame; the receiver coalesces
				// by seqno. It rides the redeliver queue rather than the
				// wire so a completed request (which may close the channel)
				// never races a still-in-flight duplicate send.
				c.rmu.Lock()
				depth := len(c.redeliver) + len(c.inflight)
				if bound := fi.RetransmitBound(); bound > 0 && depth >= bound {
					// A stalled partner must not grow the window without
					// limit: drop the duplicate (dedup would discard it
					// anyway) and degrade the channel to reliable
					// transport — the existing graceful path — so no
					// further injected faults can push it past the bound.
					c.rmu.Unlock()
					c.hvm.metrics.Counter("faults.retransmit.rejected").Inc()
					c.ForceReliable()
					quiet = true
				} else {
					c.redeliver = append(c.redeliver, env)
					depth++
					c.rmu.Unlock()
					c.noteWindowDepth(depth)
				}
			}
			c.pending <- env
			return <-env.reply
		}
		// Unanswered attempt: wait out the poll deadline, then retransmit.
		clk.Advance(timeout)
		timeout *= 2
		env.Retransmits++
		c.hvm.metrics.Counter("faults.retransmit").Inc()
		// The retransmit re-emits the envelope's flow id, so Perfetto draws
		// the arrow from this marker to the service span that finally
		// accepts the frame.
		tr.InstantFlow(c.hrtTrack(), "evtchan", "retransmit", clk.Now(), 0, env.flow,
			telemetry.Attr{Key: "seq", Val: env.Seq},
			telemetry.Attr{Key: "req", Val: env.ReqID},
			telemetry.Attr{Key: "attempt", Val: uint64(env.Retransmits)})
		c.hvm.recorder.Record(clk.Now(), telemetry.RecRetransmit, c.id, env.ReqID,
			env.Seq, uint64(env.Retransmits))
	}
}

// Recv blocks the ROS partner thread until a request arrives, then
// synchronizes the partner's clock to the arrival time plus its own wakeup
// cost. It returns nil when the channel is closed.
func (c *EventChannel) Recv(clk *cycles.Clock) *Envelope {
	if fi := c.hvm.faults; fi != nil {
		return c.recvFaulted(clk, fi)
	}
	env, ok := c.recvPending()
	if !ok {
		return nil
	}
	clk.SyncTo(env.Arrival)
	if tr := c.hvm.tracer; tr.Enabled() {
		env.span = tr.Begin(c.svcTrack(), "evtchan", serviceSpanName(env.Kind), env.Arrival,
			telemetry.Attr{Key: "req", Val: env.ReqID})
		env.span.LinkIn(env.flow)
	}
	c.hvm.recorder.Record(env.Arrival, telemetry.RecDeliver, c.id, env.ReqID, env.Seq, 0)
	clk.Advance(c.hvm.cost.ContextSwitch) // partner wakes from its wait
	clk.Advance(c.hvm.cost.EventChannelPost)
	return env
}

// recvFaulted receives under an armed fault plane: redelivered envelopes
// (watchdog replay) drain before fresh ones, corrupted frames are caught
// by their checksum and discarded, and duplicate deliveries of an
// already-completed seqno are coalesced. Accepted envelopes are tracked
// as in-flight until Complete, so a partner death between the two is
// recoverable.
func (c *EventChannel) recvFaulted(clk *cycles.Clock, fi *faults.Injector) *Envelope {
	m := c.hvm.metrics
	for {
		env := c.take()
		if env == nil {
			return nil
		}
		clk.SyncTo(env.Arrival)
		if env.Checksum != 0 && env.Checksum != frameChecksum(c, env) {
			// Reading the damaged frame costs the partner one post; the
			// sender's deadline handles the rest.
			clk.Advance(c.hvm.cost.EventChannelPost)
			m.Counter("faults.corrupt.detected").Inc()
			c.hvm.recorder.Record(clk.Now(), telemetry.RecCorrupt, c.id, env.ReqID, env.Seq, 0)
			continue
		}
		c.rmu.Lock()
		if c.completed[env.Seq] {
			c.rmu.Unlock()
			m.Counter("faults.dedup").Inc()
			c.hvm.recorder.Record(clk.Now(), telemetry.RecDedup, c.id, env.ReqID, env.Seq, 0)
			continue
		}
		c.inflight[env.Seq] = env
		depth := len(c.redeliver) + len(c.inflight)
		c.rmu.Unlock()
		c.noteWindowDepth(depth)
		if tr := c.hvm.tracer; tr.Enabled() {
			env.span = tr.Begin(c.svcTrack(), "evtchan", serviceSpanName(env.Kind), env.Arrival,
				telemetry.Attr{Key: "req", Val: env.ReqID})
			env.span.LinkIn(env.flow)
		}
		c.hvm.recorder.Record(env.Arrival, telemetry.RecDeliver, c.id, env.ReqID, env.Seq, 0)
		clk.Advance(c.hvm.cost.ContextSwitch)
		clk.Advance(c.hvm.cost.EventChannelPost)
		if !c.reliable.Load() && fi.Roll(faults.PartnerStall, c.id, env.Seq, 0, clk.Now()) {
			clk.Advance(fi.Stall())
		}
		return env
	}
}

// noteWindowDepth publishes the retransmission-window occupancy
// (redeliver queue + in-flight set) to the faults.retransmit.depth
// gauge. Called outside rmu with a depth computed under it.
func (c *EventChannel) noteWindowDepth(depth int) {
	if c.retransDepth != nil {
		c.retransDepth.Set(uint64(depth))
	}
}

// take pops the next delivery: replayed envelopes first, then the wire.
func (c *EventChannel) take() *Envelope {
	c.rmu.Lock()
	if len(c.redeliver) > 0 {
		env := c.redeliver[0]
		c.redeliver = c.redeliver[1:]
		depth := len(c.redeliver) + len(c.inflight)
		c.rmu.Unlock()
		c.noteWindowDepth(depth)
		return env
	}
	c.rmu.Unlock()
	env, ok := c.recvPending()
	if !ok {
		return nil
	}
	return env
}

// Complete finishes a received envelope: the partner posts the result,
// pays its completion hypercall, and stamps the departure time.
func (c *EventChannel) Complete(clk *cycles.Clock, env *Envelope, r Reply) {
	cost := c.hvm.cost
	clk.Advance(cost.EventChannelPost)
	clk.Advance(cost.HypercallRoundTrip())
	c.hvm.countExit("evtchan-complete")
	r.Departure = clk.Now()
	env.span.EndAt(clk.Now())
	env.span = nil
	c.hvm.recorder.Record(clk.Now(), telemetry.RecComplete, c.id, env.ReqID, env.Seq, 0)
	if c.hvm.faults != nil {
		// Mark the seqno served *before* releasing the sender, so a
		// duplicate delivery can never race past the dedup check.
		c.rmu.Lock()
		c.completed[env.Seq] = true
		delete(c.inflight, env.Seq)
		depth := len(c.redeliver) + len(c.inflight)
		c.rmu.Unlock()
		c.noteWindowDepth(depth)
	}
	env.reply <- r
}

// Replayed describes one envelope Requeue put back for redelivery: its
// seqno, the causal request id it carries, and its cross-track flow id,
// so the watchdog can record the replay and flow-link its respawn
// marker back to the original forward.
type Replayed struct {
	Seq   uint64
	ReqID uint64
	Flow  uint64
}

// Requeue moves every envelope a dead partner left in flight (received
// but never completed) onto the redelivery queue, ordered by seqno so
// replay preserves program order. The watchdog calls this after a respawn
// and before the new partner starts serving; `at` is the respawn's
// virtual time, used only to stamp the flight-recorder replay events.
// Returns the replayed envelopes' identifying ids in replay order.
func (c *EventChannel) Requeue(at cycles.Cycles) []Replayed {
	c.rmu.Lock()
	if len(c.inflight) == 0 {
		c.rmu.Unlock()
		return nil
	}
	// Stage the replay set in the reusable scratch slice, then append the
	// existing queue behind it and swap the two slices: a respawn storm
	// recycles the same two backing arrays instead of allocating a fresh
	// queue per respawn. The inflight map is cleared, not re-made, for the
	// same reason.
	replay := c.replayScratch[:0]
	for _, env := range c.inflight {
		replay = append(replay, env)
	}
	clear(c.inflight)
	sort.Slice(replay, func(i, j int) bool { return replay[i].Seq < replay[j].Seq })
	nreplay := len(replay)
	replay = append(replay, c.redeliver...)
	c.replayScratch = c.redeliver[:0]
	c.redeliver = replay
	out := make([]Replayed, nreplay)
	for i, env := range replay[:nreplay] {
		out[i] = Replayed{Seq: env.Seq, ReqID: env.ReqID, Flow: env.flow}
	}
	c.rmu.Unlock()
	for _, r := range out {
		c.hvm.recorder.Record(at, telemetry.RecRequeue, c.id, r.ReqID, r.Seq, 0)
	}
	return out
}

// ChannelWindow is the checkpointed seqno/retransmission window of one
// event channel: everything a restored partner needs to know about the
// channel's delivery state. The envelopes themselves live in the channel
// object, which survives a migration as-is — the window is recorded for
// checkpoint fidelity (costing, flight events, and the restore-side
// replay accounting), not to rebuild the queues.
type ChannelWindow struct {
	// NextSeq is the sequence number the next Forward will be stamped
	// with (last issued + 1).
	NextSeq uint64
	// Completed counts seqnos already serviced (the dedup set size).
	Completed int
	// Inflight lists seqnos received but not completed at checkpoint
	// time; the restore replays them in ascending order via Requeue.
	Inflight []uint64
	// Redeliver is the depth of the duplicate-redelivery queue.
	Redeliver int
}

// Window snapshots the channel's retransmission window for a checkpoint.
func (c *EventChannel) Window() ChannelWindow {
	w := ChannelWindow{NextSeq: c.seq.Load() + 1}
	c.rmu.Lock()
	w.Completed = len(c.completed)
	w.Redeliver = len(c.redeliver)
	for seq := range c.inflight {
		w.Inflight = append(w.Inflight, seq)
	}
	c.rmu.Unlock()
	sort.Slice(w.Inflight, func(i, j int) bool { return w.Inflight[i] < w.Inflight[j] })
	return w
}

// ForceReliable suppresses further fault injection on this channel; the
// degraded ROS-only mode uses it so residual control traffic (the thread
// exit notification) cannot be lost after the recovery budget is spent.
func (c *EventChannel) ForceReliable() { c.reliable.Store(true) }

// Close tears the channel down (HRT thread exited and the partner
// finished its cleanup).
func (c *EventChannel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.pending)
	}
}

// Cores returns the two endpoints' cores.
func (c *EventChannel) Cores() (hrt, ros machine.CoreID) { return c.hrtCore, c.rosCore }

// SyncChannel is the post-merger synchronous path: a cacheline-sized
// protocol word at a user virtual address both worlds can see, polled by
// the HRT, requiring no VMM intervention per call (section 4.3). Its
// round-trip cost depends only on whether the two cores share a socket
// (Figure 2's two synchronous rows).
type SyncChannel struct {
	hvm        *HVM
	id         uint64
	va         uint64
	rosCore    machine.CoreID
	hrtCore    machine.CoreID
	sameSocket bool

	mu     sync.Mutex
	serve  chan syncReq
	closed bool
	// replyFree recycles the one-slot reply channel between invocations
	// (one call is outstanding per channel in the steady state).
	replyFree chan syncRep
	// calls is atomic, like EventChannel.forwarded: the caller invokes
	// while the evaluation harness reads mid-run.
	calls atomic.Uint64

	// Metric handles resolved once at setup, not per invocation.
	invokeCtr *telemetry.Counter
	invokeLat *telemetry.Histogram
}

type syncReq struct {
	fn    uint64
	args  []uint64
	stamp cycles.Cycles
	flow  uint64
	reply chan syncRep
}

type syncRep struct {
	ret   uint64
	stamp cycles.Cycles
}

// SetupSync is the single hypercall that initiates synchronous operation
// after a merger: it tells the HRT which virtual address will be used for
// future synchronization. Subsequent invocations bypass the VMM entirely.
func (h *HVM) SetupSync(clk *cycles.Clock, va uint64, rosCore, hrtCore machine.CoreID) (*SyncChannel, error) {
	if !h.Booted() {
		return nil, fmt.Errorf("hvm: cannot set up sync channel before HRT boot")
	}
	h.hypercall(clk, "sync-setup")
	return &SyncChannel{
		hvm:        h,
		id:         atomic.AddUint64(&h.channelSeq, 1),
		va:         va,
		rosCore:    rosCore,
		hrtCore:    hrtCore,
		sameSocket: h.machine.SameSocket(rosCore, hrtCore),
		serve:      make(chan syncReq),
		invokeCtr:  h.metrics.Counter("sync.invokes"),
		invokeLat:  h.metrics.LatencyHistogram("sync.invoke.latency"),
	}, nil
}

// VA returns the synchronization address registered at setup.
func (s *SyncChannel) VA() uint64 { return s.va }

// Invoke calls function fn in the HRT synchronously from the ROS side:
// the caller writes the request into the shared cacheline and spins; the
// HRT's poller picks it up, runs the function, and writes the result back.
// No hypercalls, no VMM exits.
func (s *SyncChannel) Invoke(clk *cycles.Clock, fn uint64, args ...uint64) (uint64, error) {
	cost := s.hvm.cost
	line := cost.CachelineCrossSocket
	if s.sameSocket {
		line = cost.CachelineSameSocket
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("hvm: sync channel closed")
	}
	rc := s.replyFree
	s.replyFree = nil
	s.mu.Unlock()
	if rc == nil {
		rc = make(chan syncRep, 1)
	}
	seq := s.calls.Add(1)

	start := clk.Now()
	flow := flowID(s.id, seq)
	var sp *telemetry.Span
	if tr := s.hvm.tracer; tr.Enabled() {
		sp = tr.Begin(telemetry.Track{Core: int(s.rosCore), Name: "ros:main"},
			"sync", "sync-invoke", start, telemetry.Attr{Key: "fn", Val: fn})
		sp.LinkOut(flow)
	}

	// Request leg: half the fixed protocol overhead plus one cacheline
	// transfer to the polling core. If no poller is waiting yet, the
	// request simply sits in the line until one arrives.
	clk.Advance(cost.SyncProtocolOverhead / 2)
	req := syncReq{fn: fn, args: args, stamp: clk.Now() + line, flow: flow, reply: rc}
	s.serve <- req
	rep := <-req.reply
	clk.SyncTo(rep.stamp + line)
	clk.Advance(cost.SyncProtocolOverhead - cost.SyncProtocolOverhead/2)
	sp.EndAt(clk.Now())
	s.mu.Lock()
	if s.replyFree == nil {
		s.replyFree = rc
	}
	s.mu.Unlock()
	s.invokeCtr.Inc()
	s.invokeLat.Observe(clk.Now() - start)
	return rep.ret, nil
}

// Poll services one synchronous invocation on the HRT side using fns to
// resolve function pointers; it blocks until a request arrives or the
// channel closes (returning false).
func (s *SyncChannel) Poll(clk *cycles.Clock, fns func(fn uint64, args []uint64) uint64) bool {
	req, ok := <-s.serve
	if !ok {
		return false
	}
	clk.SyncTo(req.stamp)
	var sp *telemetry.Span
	if tr := s.hvm.tracer; tr.Enabled() {
		sp = tr.Begin(telemetry.Track{Core: int(s.hrtCore), Name: "hrt"},
			"sync", "sync-poll", req.stamp, telemetry.Attr{Key: "fn", Val: req.fn})
		sp.LinkIn(req.flow)
	}
	ret := fns(req.fn, req.args)
	sp.EndAt(clk.Now())
	req.reply <- syncRep{ret: ret, stamp: clk.Now()}
	return true
}

// Close shuts the channel down.
func (s *SyncChannel) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.serve)
	}
}

// Calls reports how many synchronous invocations have been issued. It is
// race-free against concurrent Invoke calls.
func (s *SyncChannel) Calls() uint64 { return s.calls.Load() }
