package hvm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// EventKind classifies what an execution group is converging on.
type EventKind int

const (
	// EvSyscall forwards a system call from the HRT to the ROS.
	EvSyscall EventKind = iota + 1
	// EvPageFault forwards a page fault in the ROS portion of the virtual
	// address space; the ROS-side library replicates the access so the
	// same exception occurs on the ROS core and is handled normally.
	EvPageFault
	// EvThreadExit notifies the ROS side that the HRT thread exited (the
	// partner thread then runs its cleanup and exits, unblocking join).
	EvThreadExit

	numEventKinds
)

var eventNames = map[EventKind]string{
	EvSyscall:    "syscall",
	EvPageFault:  "page-fault",
	EvThreadExit: "thread-exit",
}

// String names the event kind.
func (k EventKind) String() string {
	if n, ok := eventNames[k]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Envelope is one request crossing an event channel from HRT to ROS.
type Envelope struct {
	Kind EventKind

	// Syscall payload.
	Call linuxabi.Call

	// Page-fault payload (x86 error-code information).
	FaultAddr  uint64
	FaultWrite bool

	// ExitCode accompanies EvThreadExit.
	ExitCode uint64

	// Arrival is the virtual time at which the request reaches the ROS
	// partner thread.
	Arrival cycles.Cycles

	reply chan Reply

	// flow is the deterministic cross-track link id stitching the HRT
	// forward span to the ROS service span; span is the open service
	// span between Recv and Complete.
	flow uint64
	span *telemetry.Span
}

// Reply is the ROS side's completion of an Envelope.
type Reply struct {
	Res linuxabi.Result
	// FaultOK reports that a forwarded fault was resolved (page now
	// mapped / handler ran); false means the access is genuinely invalid
	// and the HRT should treat it as fatal.
	FaultOK bool
	// Departure is the virtual time the reply left the ROS side.
	Departure cycles.Cycles
}

// EventChannel is the VMM-mediated communication path of one execution
// group: the HRT thread on one end, its ROS partner thread on the other.
// The VMM "only expects that the execution group adheres to a strict
// protocol for event requests and completion" (section 3.2).
type EventChannel struct {
	hvm     *HVM
	id      uint64
	hrtCore machine.CoreID
	rosCore machine.CoreID

	mu      sync.Mutex
	pending chan *Envelope
	closed  bool

	// Per-kind forward counts, indexed by EventKind. Atomics, because the
	// HRT thread forwards while the evaluation harness reads.
	forwarded [numEventKinds]atomic.Uint64

	// seq numbers this channel's forwards; combined with the channel id
	// it yields flow ids that depend only on program order, never on
	// goroutine scheduling.
	seq atomic.Uint64
}

// NewEventChannel creates the channel for an execution group whose HRT
// thread runs on hrtCore and whose partner runs on rosCore.
func (h *HVM) NewEventChannel(hrtCore, rosCore machine.CoreID) *EventChannel {
	return &EventChannel{
		hvm:     h,
		id:      atomic.AddUint64(&h.channelSeq, 1),
		hrtCore: hrtCore,
		rosCore: rosCore,
		pending: make(chan *Envelope, 1),
	}
}

// hrtTrack is the trace track of the HRT thread driving this channel.
func (c *EventChannel) hrtTrack() telemetry.Track {
	return telemetry.Track{Core: int(c.hrtCore), Name: "hrt"}
}

// svcTrack is the trace track of the ROS partner thread servicing this
// channel. Naming it per channel keeps each partner's span stack private,
// so parent/child inference never depends on goroutine interleaving.
func (c *EventChannel) svcTrack() telemetry.Track {
	return telemetry.Track{Core: int(c.rosCore), Name: fmt.Sprintf("ros:svc:%d", c.id)}
}

// Forward sends an envelope from the HRT side and blocks until the ROS
// side completes it. clk is the HRT thread's clock; it pays the full
// request leg and is synchronized to the reply's arrival.
//
// Cost structure of one round trip (the ~25K-cycle asynchronous path of
// Figure 2): post to the shared page, hypercall, VMM records the raise and
// waits for a user-mode injection window in the ROS, frame injection into
// the partner thread, partner wakeup; then on completion a post, a
// hypercall, injection back into the HRT, and guest re-entry.
func (c *EventChannel) Forward(clk *cycles.Clock, env *Envelope) (Reply, error) {
	cost := c.hvm.cost
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Reply{}, fmt.Errorf("hvm: event channel closed")
	}
	c.mu.Unlock()
	if env.Kind > 0 && env.Kind < numEventKinds {
		c.forwarded[env.Kind].Add(1)
	}
	env.flow = c.id<<20 | c.seq.Add(1)

	tr := c.hvm.tracer
	start := clk.Now()
	sp := tr.Begin(c.hrtTrack(), "evtchan", "forward:"+env.Kind.String(), start)
	sp.LinkOut(env.flow)

	leg := tr.Begin(c.hrtTrack(), "evtchan", "request-leg", clk.Now())
	clk.Advance(cost.EventChannelPost)
	clk.Advance(cost.HypercallRoundTrip())
	clk.Advance(cost.VMMRecord)
	c.hvm.countExit("evtchan")
	env.Arrival = clk.Now() + cost.InjectWindowROS + cost.SignalInjectROS
	leg.EndAt(env.Arrival)
	env.reply = make(chan Reply, 1)
	c.pending <- env
	r := <-env.reply
	// Reply leg: injection back into the HRT plus guest re-entry.
	inj := tr.Begin(c.hrtTrack(), "evtchan", "reply-inject", r.Departure)
	clk.SyncTo(r.Departure + cost.InterruptInject + cost.VMEntry)
	inj.EndAt(clk.Now())
	sp.EndAt(clk.Now())

	m := c.hvm.metrics
	m.Counter("forward." + env.Kind.String()).Inc()
	m.LatencyHistogram("forward." + env.Kind.String() + ".latency").Observe(clk.Now() - start)
	return r, nil
}

// Recv blocks the ROS partner thread until a request arrives, then
// synchronizes the partner's clock to the arrival time plus its own wakeup
// cost. It returns nil when the channel is closed.
func (c *EventChannel) Recv(clk *cycles.Clock) *Envelope {
	env, ok := <-c.pending
	if !ok {
		return nil
	}
	clk.SyncTo(env.Arrival)
	env.span = c.hvm.tracer.Begin(c.svcTrack(), "evtchan", "service:"+env.Kind.String(), env.Arrival)
	env.span.LinkIn(env.flow)
	clk.Advance(c.hvm.cost.ContextSwitch) // partner wakes from its wait
	clk.Advance(c.hvm.cost.EventChannelPost)
	return env
}

// Complete finishes a received envelope: the partner posts the result,
// pays its completion hypercall, and stamps the departure time.
func (c *EventChannel) Complete(clk *cycles.Clock, env *Envelope, r Reply) {
	cost := c.hvm.cost
	clk.Advance(cost.EventChannelPost)
	clk.Advance(cost.HypercallRoundTrip())
	c.hvm.countExit("evtchan-complete")
	r.Departure = clk.Now()
	env.span.EndAt(clk.Now())
	env.span = nil
	env.reply <- r
}

// Close tears the channel down (HRT thread exited and the partner
// finished its cleanup).
func (c *EventChannel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.pending)
	}
}

// ForwardCount reports how many envelopes of a kind have crossed.
//
// Deprecated: the channel also records the same counts in the HVM's
// metrics registry as `forward.<kind>` counters, which aggregate across
// channels and appear in the --metrics dump. New code should read those.
func (c *EventChannel) ForwardCount(k EventKind) uint64 {
	if k <= 0 || k >= numEventKinds {
		return 0
	}
	return c.forwarded[k].Load()
}

// Cores returns the two endpoints' cores.
func (c *EventChannel) Cores() (hrt, ros machine.CoreID) { return c.hrtCore, c.rosCore }

// SyncChannel is the post-merger synchronous path: a cacheline-sized
// protocol word at a user virtual address both worlds can see, polled by
// the HRT, requiring no VMM intervention per call (section 4.3). Its
// round-trip cost depends only on whether the two cores share a socket
// (Figure 2's two synchronous rows).
type SyncChannel struct {
	hvm        *HVM
	id         uint64
	va         uint64
	rosCore    machine.CoreID
	hrtCore    machine.CoreID
	sameSocket bool

	mu     sync.Mutex
	serve  chan syncReq
	closed bool
	// calls is atomic, like EventChannel.forwarded: the caller invokes
	// while the evaluation harness reads mid-run.
	calls atomic.Uint64
}

type syncReq struct {
	fn    uint64
	args  []uint64
	stamp cycles.Cycles
	flow  uint64
	reply chan syncRep
}

type syncRep struct {
	ret   uint64
	stamp cycles.Cycles
}

// SetupSync is the single hypercall that initiates synchronous operation
// after a merger: it tells the HRT which virtual address will be used for
// future synchronization. Subsequent invocations bypass the VMM entirely.
func (h *HVM) SetupSync(clk *cycles.Clock, va uint64, rosCore, hrtCore machine.CoreID) (*SyncChannel, error) {
	if !h.Booted() {
		return nil, fmt.Errorf("hvm: cannot set up sync channel before HRT boot")
	}
	h.hypercall(clk, "sync-setup")
	return &SyncChannel{
		hvm:        h,
		id:         atomic.AddUint64(&h.channelSeq, 1),
		va:         va,
		rosCore:    rosCore,
		hrtCore:    hrtCore,
		sameSocket: h.machine.SameSocket(rosCore, hrtCore),
		serve:      make(chan syncReq),
	}, nil
}

// VA returns the synchronization address registered at setup.
func (s *SyncChannel) VA() uint64 { return s.va }

// Invoke calls function fn in the HRT synchronously from the ROS side:
// the caller writes the request into the shared cacheline and spins; the
// HRT's poller picks it up, runs the function, and writes the result back.
// No hypercalls, no VMM exits.
func (s *SyncChannel) Invoke(clk *cycles.Clock, fn uint64, args ...uint64) (uint64, error) {
	cost := s.hvm.cost
	line := cost.CachelineCrossSocket
	if s.sameSocket {
		line = cost.CachelineSameSocket
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("hvm: sync channel closed")
	}
	s.mu.Unlock()
	seq := s.calls.Add(1)

	start := clk.Now()
	flow := s.id<<20 | seq
	sp := s.hvm.tracer.Begin(telemetry.Track{Core: int(s.rosCore), Name: "ros:main"},
		"sync", "sync-invoke", start, telemetry.Attr{Key: "fn", Val: fn})
	sp.LinkOut(flow)

	// Request leg: half the fixed protocol overhead plus one cacheline
	// transfer to the polling core. If no poller is waiting yet, the
	// request simply sits in the line until one arrives.
	clk.Advance(cost.SyncProtocolOverhead / 2)
	req := syncReq{fn: fn, args: args, stamp: clk.Now() + line, flow: flow, reply: make(chan syncRep, 1)}
	s.serve <- req
	rep := <-req.reply
	clk.SyncTo(rep.stamp + line)
	clk.Advance(cost.SyncProtocolOverhead - cost.SyncProtocolOverhead/2)
	sp.EndAt(clk.Now())
	s.hvm.metrics.Counter("sync.invokes").Inc()
	s.hvm.metrics.LatencyHistogram("sync.invoke.latency").Observe(clk.Now() - start)
	return rep.ret, nil
}

// Poll services one synchronous invocation on the HRT side using fns to
// resolve function pointers; it blocks until a request arrives or the
// channel closes (returning false).
func (s *SyncChannel) Poll(clk *cycles.Clock, fns func(fn uint64, args []uint64) uint64) bool {
	req, ok := <-s.serve
	if !ok {
		return false
	}
	clk.SyncTo(req.stamp)
	sp := s.hvm.tracer.Begin(telemetry.Track{Core: int(s.hrtCore), Name: "hrt"},
		"sync", "sync-poll", req.stamp, telemetry.Attr{Key: "fn", Val: req.fn})
	sp.LinkIn(req.flow)
	ret := fns(req.fn, req.args)
	sp.EndAt(clk.Now())
	req.reply <- syncRep{ret: ret, stamp: clk.Now()}
	return true
}

// Close shuts the channel down.
func (s *SyncChannel) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.serve)
	}
}

// Calls reports how many synchronous invocations have been issued. It is
// race-free against concurrent Invoke calls.
func (s *SyncChannel) Calls() uint64 { return s.calls.Load() }
