package hvm

import (
	"fmt"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
)

// EventKind classifies what an execution group is converging on.
type EventKind int

const (
	// EvSyscall forwards a system call from the HRT to the ROS.
	EvSyscall EventKind = iota + 1
	// EvPageFault forwards a page fault in the ROS portion of the virtual
	// address space; the ROS-side library replicates the access so the
	// same exception occurs on the ROS core and is handled normally.
	EvPageFault
	// EvThreadExit notifies the ROS side that the HRT thread exited (the
	// partner thread then runs its cleanup and exits, unblocking join).
	EvThreadExit
)

var eventNames = map[EventKind]string{
	EvSyscall:    "syscall",
	EvPageFault:  "page-fault",
	EvThreadExit: "thread-exit",
}

// String names the event kind.
func (k EventKind) String() string {
	if n, ok := eventNames[k]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Envelope is one request crossing an event channel from HRT to ROS.
type Envelope struct {
	Kind EventKind

	// Syscall payload.
	Call linuxabi.Call

	// Page-fault payload (x86 error-code information).
	FaultAddr  uint64
	FaultWrite bool

	// ExitCode accompanies EvThreadExit.
	ExitCode uint64

	// Arrival is the virtual time at which the request reaches the ROS
	// partner thread.
	Arrival cycles.Cycles

	reply chan Reply
}

// Reply is the ROS side's completion of an Envelope.
type Reply struct {
	Res linuxabi.Result
	// FaultOK reports that a forwarded fault was resolved (page now
	// mapped / handler ran); false means the access is genuinely invalid
	// and the HRT should treat it as fatal.
	FaultOK bool
	// Departure is the virtual time the reply left the ROS side.
	Departure cycles.Cycles
}

// EventChannel is the VMM-mediated communication path of one execution
// group: the HRT thread on one end, its ROS partner thread on the other.
// The VMM "only expects that the execution group adheres to a strict
// protocol for event requests and completion" (section 3.2).
type EventChannel struct {
	hvm     *HVM
	hrtCore machine.CoreID
	rosCore machine.CoreID

	mu      sync.Mutex
	pending chan *Envelope
	closed  bool

	// Counters for the evaluation harness.
	forwarded map[EventKind]uint64
}

// NewEventChannel creates the channel for an execution group whose HRT
// thread runs on hrtCore and whose partner runs on rosCore.
func (h *HVM) NewEventChannel(hrtCore, rosCore machine.CoreID) *EventChannel {
	return &EventChannel{
		hvm:       h,
		hrtCore:   hrtCore,
		rosCore:   rosCore,
		pending:   make(chan *Envelope, 1),
		forwarded: make(map[EventKind]uint64),
	}
}

// Forward sends an envelope from the HRT side and blocks until the ROS
// side completes it. clk is the HRT thread's clock; it pays the full
// request leg and is synchronized to the reply's arrival.
//
// Cost structure of one round trip (the ~25K-cycle asynchronous path of
// Figure 2): post to the shared page, hypercall, VMM records the raise and
// waits for a user-mode injection window in the ROS, frame injection into
// the partner thread, partner wakeup; then on completion a post, a
// hypercall, injection back into the HRT, and guest re-entry.
func (c *EventChannel) Forward(clk *cycles.Clock, env *Envelope) (Reply, error) {
	cost := c.hvm.cost
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Reply{}, fmt.Errorf("hvm: event channel closed")
	}
	c.forwarded[env.Kind]++
	c.mu.Unlock()

	clk.Advance(cost.EventChannelPost)
	clk.Advance(cost.HypercallRoundTrip())
	clk.Advance(cost.VMMRecord)
	c.hvm.countExit("evtchan")
	env.Arrival = clk.Now() + cost.InjectWindowROS + cost.SignalInjectROS
	env.reply = make(chan Reply, 1)
	c.pending <- env
	r := <-env.reply
	// Reply leg: injection back into the HRT plus guest re-entry.
	clk.SyncTo(r.Departure + cost.InterruptInject + cost.VMEntry)
	return r, nil
}

// Recv blocks the ROS partner thread until a request arrives, then
// synchronizes the partner's clock to the arrival time plus its own wakeup
// cost. It returns nil when the channel is closed.
func (c *EventChannel) Recv(clk *cycles.Clock) *Envelope {
	env, ok := <-c.pending
	if !ok {
		return nil
	}
	clk.SyncTo(env.Arrival)
	clk.Advance(c.hvm.cost.ContextSwitch) // partner wakes from its wait
	clk.Advance(c.hvm.cost.EventChannelPost)
	return env
}

// Complete finishes a received envelope: the partner posts the result,
// pays its completion hypercall, and stamps the departure time.
func (c *EventChannel) Complete(clk *cycles.Clock, env *Envelope, r Reply) {
	cost := c.hvm.cost
	clk.Advance(cost.EventChannelPost)
	clk.Advance(cost.HypercallRoundTrip())
	c.hvm.countExit("evtchan-complete")
	r.Departure = clk.Now()
	env.reply <- r
}

// Close tears the channel down (HRT thread exited and the partner
// finished its cleanup).
func (c *EventChannel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.pending)
	}
}

// ForwardCount reports how many envelopes of a kind have crossed.
func (c *EventChannel) ForwardCount(k EventKind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.forwarded[k]
}

// Cores returns the two endpoints' cores.
func (c *EventChannel) Cores() (hrt, ros machine.CoreID) { return c.hrtCore, c.rosCore }

// SyncChannel is the post-merger synchronous path: a cacheline-sized
// protocol word at a user virtual address both worlds can see, polled by
// the HRT, requiring no VMM intervention per call (section 4.3). Its
// round-trip cost depends only on whether the two cores share a socket
// (Figure 2's two synchronous rows).
type SyncChannel struct {
	hvm        *HVM
	va         uint64
	sameSocket bool

	mu     sync.Mutex
	serve  chan syncReq
	closed bool
	calls  uint64
}

type syncReq struct {
	fn    uint64
	args  []uint64
	stamp cycles.Cycles
	reply chan syncRep
}

type syncRep struct {
	ret   uint64
	stamp cycles.Cycles
}

// SetupSync is the single hypercall that initiates synchronous operation
// after a merger: it tells the HRT which virtual address will be used for
// future synchronization. Subsequent invocations bypass the VMM entirely.
func (h *HVM) SetupSync(clk *cycles.Clock, va uint64, rosCore, hrtCore machine.CoreID) (*SyncChannel, error) {
	if !h.Booted() {
		return nil, fmt.Errorf("hvm: cannot set up sync channel before HRT boot")
	}
	h.hypercall(clk, "sync-setup")
	return &SyncChannel{
		hvm:        h,
		va:         va,
		sameSocket: h.machine.SameSocket(rosCore, hrtCore),
		serve:      make(chan syncReq),
	}, nil
}

// VA returns the synchronization address registered at setup.
func (s *SyncChannel) VA() uint64 { return s.va }

// Invoke calls function fn in the HRT synchronously from the ROS side:
// the caller writes the request into the shared cacheline and spins; the
// HRT's poller picks it up, runs the function, and writes the result back.
// No hypercalls, no VMM exits.
func (s *SyncChannel) Invoke(clk *cycles.Clock, fn uint64, args ...uint64) (uint64, error) {
	cost := s.hvm.cost
	line := cost.CachelineCrossSocket
	if s.sameSocket {
		line = cost.CachelineSameSocket
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("hvm: sync channel closed")
	}
	s.calls++
	s.mu.Unlock()

	// Request leg: half the fixed protocol overhead plus one cacheline
	// transfer to the polling core.
	clk.Advance(cost.SyncProtocolOverhead / 2)
	req := syncReq{fn: fn, args: args, stamp: clk.Now() + line, reply: make(chan syncRep, 1)}
	select {
	case s.serve <- req:
	default:
		// No poller: the request waits in the line until one arrives.
		s.serve <- req
	}
	rep := <-req.reply
	clk.SyncTo(rep.stamp + line)
	clk.Advance(cost.SyncProtocolOverhead - cost.SyncProtocolOverhead/2)
	return rep.ret, nil
}

// Poll services one synchronous invocation on the HRT side using fns to
// resolve function pointers; it blocks until a request arrives or the
// channel closes (returning false).
func (s *SyncChannel) Poll(clk *cycles.Clock, fns func(fn uint64, args []uint64) uint64) bool {
	req, ok := <-s.serve
	if !ok {
		return false
	}
	clk.SyncTo(req.stamp)
	ret := fns(req.fn, req.args)
	req.reply <- syncRep{ret: ret, stamp: clk.Now()}
	return true
}

// Close shuts the channel down.
func (s *SyncChannel) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.serve)
	}
}

// Calls reports how many synchronous invocations completed.
func (s *SyncChannel) Calls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}
