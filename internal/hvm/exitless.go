package hvm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// errRingDown reports that the exitless rings were torn down mid-call —
// a partner kill or a concurrent shutdown. The router catches it and
// falls back to the hypercall-mode transports.
var errRingDown = errors.New("hvm: exitless rings down")

// ExitlessChannel is the tier-3 transport ("Look Mum, no VM Exits!"):
// a pair of SPSC shared-memory rings — request and reply — with the ROS
// partner statically dedicated to a poll loop on the request ring and
// the HRT posting frames with plain stores. A steady-state round trip
// is RingPost + cacheline + RingPoll + service + RingPost + cacheline +
// RingReapBatch: no hypercalls, no injection window, zero VM exits.
// Hypercalls appear only at setup/teardown (SetupExitless /
// TeardownExitless) and as the overflow doorbell a full ring would
// need — which a healthy run never takes, so exits.ring pins to zero.
type ExitlessChannel struct {
	hvm        *HVM
	id         uint64
	va         uint64
	rosCore    machine.CoreID
	hrtCore    machine.CoreID
	sameSocket bool

	req *spscRing // HRT -> ROS request frames
	rep *spscRing // ROS -> HRT reply frames

	// mu serializes invokes: the rings are strictly single-producer/
	// single-consumer, and holding the lock across the round trip also
	// guarantees the reply popped is the caller's own.
	mu        sync.Mutex
	closeOnce sync.Once
	dead      atomic.Bool
	// calls is atomic, like SyncSyscallChannel.calls: the HRT thread
	// invokes while the evaluation harness reads mid-run.
	calls atomic.Uint64
}

// SetupExitless establishes the ring pair with a single hypercall: the
// VMM pins and zeroes the two shared ring pages at va and tells the HRT
// where they live. Every subsequent steady-state crossing bypasses the
// VMM entirely.
func (h *HVM) SetupExitless(clk *cycles.Clock, va uint64, rosCore, hrtCore machine.CoreID) (*ExitlessChannel, error) {
	if !h.Booted() {
		return nil, fmt.Errorf("hvm: cannot set up exitless rings before HRT boot")
	}
	h.hypercall(clk, "ring-setup")
	clk.Advance(2 * h.cost.PageZero)
	return &ExitlessChannel{
		hvm:        h,
		id:         atomic.AddUint64(&h.channelSeq, 1),
		va:         va,
		rosCore:    rosCore,
		hrtCore:    hrtCore,
		sameSocket: h.machine.SameSocket(rosCore, hrtCore),
		req:        newSPSCRing(ringCapacity),
		rep:        newSPSCRing(ringCapacity),
	}, nil
}

// TeardownExitless revokes the ring pages with a hypercall and closes
// the rings, releasing the dedicated poller (its Serve returns false).
// After a partner kill this same hypercall is the "hypercall-mode
// recovery" step the fallback path charges.
func (h *HVM) TeardownExitless(clk *cycles.Clock, x *ExitlessChannel) {
	h.hypercall(clk, "ring-teardown")
	x.Close()
}

func (x *ExitlessChannel) line() cycles.Cycles {
	if x.sameSocket {
		return x.hvm.cost.CachelineSameSocket
	}
	return x.hvm.cost.CachelineCrossSocket
}

// Invoke forwards one system call over the rings. reqID is the causal
// request id from the syscall entry (0 for control traffic).
func (x *ExitlessChannel) Invoke(clk *cycles.Clock, call linuxabi.Call, reqID uint64) (linuxabi.Result, error) {
	res, _, err := x.invoke(clk, call, reqID)
	return res, err
}

// invoke is Invoke plus the retransmission count for the router's fault
// policy. It returns errRingDown when the rings died mid-call; the
// caller still owns the request and must re-route it.
func (x *ExitlessChannel) invoke(clk *cycles.Clock, call linuxabi.Call, reqID uint64) (linuxabi.Result, int, error) {
	cost := x.hvm.cost
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.dead.Load() {
		return linuxabi.Result{}, 0, errRingDown
	}
	seq := x.calls.Add(1)

	start := clk.Now()
	flow := flowID(x.id, seq)
	sp := x.hvm.tracer.Begin(telemetry.Track{Core: int(x.hrtCore), Name: "hrt"},
		"ring", "ring-syscall", start,
		telemetry.Attr{Key: "num", Val: uint64(call.Num)},
		telemetry.Attr{Key: "req", Val: reqID})
	sp.LinkOut(flow)

	var rep ringFrame
	retx := 0
	if fi := x.hvm.faults; fi != nil {
		// Same poll-deadline policy as the sync channel: a dropped or
		// corrupted frame goes unanswered, the caller's virtual deadline
		// expires, and it reposts with backoff. The ring protocol cannot
		// duplicate a frame, so only drop and corrupt apply — plus
		// PartnerKill, which tears the rings down entirely and pushes
		// recovery up to the router.
		timeout := fi.RetryTimeout()
		max := fi.MaxAttempts()
	send:
		for attempt := 0; ; attempt++ {
			if fi.Roll(faults.PartnerKill, x.id, seq, attempt, clk.Now()) {
				x.killed(clk, seq, reqID)
				sp.EndAt(clk.Now())
				return linuxabi.Result{}, retx, errRingDown
			}
			last := attempt >= max-1
			clk.Advance(cost.RingPost)
			f := ringFrame{call: call, seq: seq, reqID: reqID, stamp: clk.Now() + x.line(), flow: flow}
			dropped := !last && fi.Roll(faults.DropNotify, x.id, seq, attempt, clk.Now())
			if !dropped {
				f.corrupt = !last && fi.Roll(faults.CorruptFrame, x.id, seq, attempt, clk.Now())
				if !x.post(clk, f) {
					sp.EndAt(clk.Now())
					return linuxabi.Result{}, retx, errRingDown
				}
				if !f.corrupt {
					r, ok := x.rep.Pop()
					if !ok {
						sp.EndAt(clk.Now())
						return linuxabi.Result{}, retx, errRingDown
					}
					rep = r
					break send
				}
			}
			clk.Advance(timeout)
			timeout *= 2
			retx++
			x.hvm.metrics.Counter("faults.retransmit").Inc()
			x.hvm.tracer.InstantFlow(telemetry.Track{Core: int(x.hrtCore), Name: "hrt"},
				"ring", "retransmit", clk.Now(), 0, flow,
				telemetry.Attr{Key: "seq", Val: seq},
				telemetry.Attr{Key: "req", Val: reqID},
				telemetry.Attr{Key: "attempt", Val: uint64(retx)})
			x.hvm.recorder.Record(clk.Now(), telemetry.RecRetransmit, x.id, reqID, seq, uint64(retx))
		}
	} else {
		clk.Advance(cost.RingPost)
		f := ringFrame{call: call, seq: seq, reqID: reqID, stamp: clk.Now() + x.line(), flow: flow}
		if !x.post(clk, f) {
			sp.EndAt(clk.Now())
			return linuxabi.Result{}, retx, errRingDown
		}
		r, ok := x.rep.Pop()
		if !ok {
			sp.EndAt(clk.Now())
			return linuxabi.Result{}, retx, errRingDown
		}
		rep = r
	}
	clk.SyncTo(rep.stamp + x.line())
	clk.Advance(cost.RingReapBatch)
	sp.EndAt(clk.Now())
	x.hvm.metrics.Counter("ring.syscalls").Inc()
	x.hvm.metrics.LatencyHistogram("ring.syscall.latency").Observe(clk.Now() - start)
	x.hvm.recorder.Record(clk.Now(), telemetry.RecRingCall, x.id, reqID, seq, uint64(retx))
	return rep.res, retx, nil
}

// post publishes a request frame. A full ring would need a doorbell
// hypercall to kick the partner — the only exit the steady-state path
// can take, and one it never takes by construction (at most one frame
// is outstanding per ring pair), so a healthy run keeps exits.ring at
// exactly zero.
func (x *ExitlessChannel) post(clk *cycles.Clock, f ringFrame) bool {
	for !x.req.Push(f) {
		if x.req.Closed() {
			return false
		}
		x.hvm.countExit("ring")
		clk.Advance(x.hvm.cost.HypercallRoundTrip())
	}
	return true
}

// killed tears the rings down after a PartnerKill roll: the dedicated
// poller's Pop drains and returns false, its thread exits, and every
// subsequent invoke fails fast with errRingDown until the router
// re-promotes onto a fresh channel.
func (x *ExitlessChannel) killed(clk *cycles.Clock, seq, reqID uint64) {
	x.hvm.metrics.Counter("ring.kills").Inc()
	x.hvm.recorder.Record(clk.Now(), telemetry.RecRingKill, x.id, reqID, seq, 0)
	x.Close()
}

// Serve handles one forwarded call on the dedicated ROS poller: one
// poll iteration that found a frame, the service itself, and the reply
// post. It blocks (host-level only) until a frame arrives and returns
// false when the rings close. Corrupt frames are discarded without an
// answer — the caller's poll deadline reposts them.
func (x *ExitlessChannel) Serve(clk *cycles.Clock, handler func(linuxabi.Call) linuxabi.Result) bool {
	cost := x.hvm.cost
	for {
		f, ok := x.req.Pop()
		if !ok {
			return false
		}
		clk.SyncTo(f.stamp)
		clk.Advance(cost.RingPoll)
		if f.corrupt {
			x.hvm.metrics.Counter("faults.corrupt.detected").Inc()
			continue
		}
		sp := x.hvm.tracer.Begin(telemetry.Track{Core: int(x.rosCore), Name: fmt.Sprintf("ros:ringsvc:%d", x.id)},
			"ring", "serve-syscall", f.stamp, telemetry.Attr{Key: "num", Val: uint64(f.call.Num)})
		sp.LinkIn(f.flow)
		res := handler(f.call)
		sp.EndAt(clk.Now())
		clk.Advance(cost.RingPost)
		x.rep.Push(ringFrame{seq: f.seq, reqID: f.reqID, res: res, stamp: clk.Now()})
		return true
	}
}

// Close tears both rings down; idempotent, callable from either side.
func (x *ExitlessChannel) Close() {
	x.closeOnce.Do(func() {
		x.dead.Store(true)
		x.req.Close()
		x.rep.Close()
	})
}

// Calls reports how many calls crossed the rings. Race-free mid-run.
func (x *ExitlessChannel) Calls() uint64 { return x.calls.Load() }

// VA returns the agreed ring-page address.
func (x *ExitlessChannel) VA() uint64 { return x.va }

// ID returns the channel's deterministic id (fault-injection site key).
func (x *ExitlessChannel) ID() uint64 { return x.id }
