// Package hvm models the Hybrid Virtual Machine: the Palacios VMM
// extension that partitions one virtual machine's cores, memory, and
// interrupt logic between a Regular OS (ROS) and a Hybrid Runtime (HRT).
//
// The HVM provides exactly the three facilities the paper says Multiverse
// needs from it (section 3.3): a resource partitioning, the ability to boot
// multiple kernels on distinct partitions, and shared memory plus
// communication between them — hypercalls, a shared data page, interrupt
// injection, and the asynchronous/synchronous channel protocols of
// section 4.3.
package hvm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/image"
	"multiverse/internal/machine"
	"multiverse/internal/mem"
	"multiverse/internal/telemetry"
)

// HRTOp is the operation code of a ROS->HRT request delivered by the VMM
// through exception injection.
type HRTOp uint32

const (
	// OpMerge asks the HRT to merge the ROS process's lower-half address
	// space (the shared page carries the ROS CR3).
	OpMerge HRTOp = iota + 1
	// OpCall asks the HRT to run a function (the shared page carries a
	// pointer to the function and its arguments).
	OpCall
	// OpSignal delivers a ROS-application signal to the HRT; these take
	// highest precedence within the HRT (section 2).
	OpSignal
)

// Shared-page layout offsets (section 4.3: "they share a data page in
// memory. For a function call request, the page contains a pointer to the
// function and its arguments at the start and the return code at
// completion. For an address space merger, the page contains the CR3 of
// the calling process.")
const (
	sharedOffOp     = 0x00
	sharedOffCR3    = 0x08
	sharedOffFn     = 0x10
	sharedOffArg0   = 0x18
	sharedOffRet    = 0x100
	sharedMaxArgs   = 6
	sharedOffStatus = 0x140
)

// HRTRequest is one injected ROS->HRT request as seen by the AeroKernel's
// event loop.
type HRTRequest struct {
	Op      HRTOp
	CR3     uint64   // OpMerge
	Fn      uint64   // OpCall: function pointer
	Args    []uint64 // OpCall
	Signal  int      // OpSignal
	Arrival cycles.Cycles

	hvm  *HVM
	done chan cycles.Cycles
}

// Complete is the HRT's completion hypercall for this request ("The HRT
// indicates to the VMM when it is finished with the current request via a
// hypercall"). clk is the HRT-side clock; ret is stored in the shared
// page's return slot.
func (r *HRTRequest) Complete(clk *cycles.Clock, ret uint64) {
	h := r.hvm
	_ = h.machine.Phys.WriteU64(h.sharedPage.Addr()+sharedOffRet, ret)
	at := clk.Advance(h.cost.HypercallRoundTrip())
	r.done <- at
}

// HRTSink receives injected requests; the AeroKernel registers one at
// boot. Inject must hand the request to the HRT event loop and return.
type HRTSink interface {
	Inject(req *HRTRequest)
}

// BootInfo is what the VMM passes to the AeroKernel entry point, modelled
// on the paper's multiboot2-extension protocol.
type BootInfo struct {
	Image    *image.Image
	Tags     []image.MultibootTag
	Core     machine.CoreID // boot core within the HRT partition
	HRTCores []machine.CoreID
	// SharedPage is the VMM<->HRT data page frame.
	SharedPage mem.Frame
	// Tracer/Metrics propagate the system's telemetry layer across the
	// boot protocol so HRT-side instrumentation lands in the same trace
	// as the ROS side. Tracer may be nil (tracing off); Metrics is
	// always usable.
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry
	// Recorder is the always-on flight recorder (nil-safe when absent).
	Recorder *telemetry.Recorder
	// Faults is the armed fault-injection plane (nil = disabled); the
	// AeroKernel uses it for HRT-panic injection.
	Faults *faults.Injector
}

// BootHandler is the AeroKernel's entry point: it brings the kernel up and
// returns the sink for injected requests. Registered before BootHRT runs.
type BootHandler func(info BootInfo) (HRTSink, error)

// ROSSignalHandler is the handler a ROS application registers for
// asynchronous HRT->ROS signals (the HVM "interrupt to user" construct).
type ROSSignalHandler func(sig int)

// HVM is the VMM-side state for one hybrid virtual machine.
type HVM struct {
	machine  *machine.Machine
	cost     *cycles.CostModel
	rosCores []machine.CoreID
	hrtCores []machine.CoreID

	mu          sync.Mutex
	installed   *image.Image
	imagePages  int
	sharedPage  mem.Frame
	sink        HRTSink
	bootHandler BootHandler
	booted      bool
	bootCount   int

	rosSignal      ROSSignalHandler
	rosSignalStack *machine.Stack
	rosSignalClock *cycles.Clock

	// Exit statistics per kind, for the "thinner virtualization layer"
	// analysis. Every VM exit from every group lands here, so at density
	// scale the per-kind stats are lock-free: a sync.Map of exitStat
	// entries whose count is an atomic and whose "exits.<kind>" metric
	// handle is resolved once, at first exit of that kind.
	exits sync.Map // string kind -> *exitStat

	// Telemetry: tracer may be nil (tracing off); metrics is always
	// non-nil. Channel ids make flow links deterministic.
	tracer     *telemetry.Tracer
	metrics    *telemetry.Registry
	recorder   *telemetry.Recorder
	channelSeq uint64

	// faults is the armed fault-injection plane; nil means every
	// channel and protocol runs the exact pre-fault fixed path.
	faults *faults.Injector
}

// Config partitions the machine.
type Config struct {
	ROSCores []machine.CoreID
	HRTCores []machine.CoreID
	// Tracer records spans for this HVM's protocols (nil = off).
	Tracer *telemetry.Tracer
	// Metrics receives the HVM's counters and histograms; nil allocates
	// a private registry.
	Metrics *telemetry.Registry
	// Recorder receives flight-recorder events from the HVM's channels
	// and protocols (nil = off; every Record call is nil-safe).
	Recorder *telemetry.Recorder
	// Faults arms deterministic fault injection on the HVM's channels
	// (nil = off; fixed paths unchanged).
	Faults *faults.Injector
}

// New creates an HVM over the machine with the given core partitioning.
// Core sets must be disjoint and non-empty.
func New(m *machine.Machine, cfg Config) (*HVM, error) {
	if len(cfg.ROSCores) == 0 || len(cfg.HRTCores) == 0 {
		return nil, fmt.Errorf("hvm: both partitions need at least one core")
	}
	seen := make(map[machine.CoreID]bool)
	for _, c := range append(append([]machine.CoreID(nil), cfg.ROSCores...), cfg.HRTCores...) {
		if int(c) < 0 || int(c) >= m.NumCores() {
			return nil, fmt.Errorf("hvm: core %d out of range", c)
		}
		if seen[c] {
			return nil, fmt.Errorf("hvm: core %d assigned to both partitions", c)
		}
		seen[c] = true
	}
	h := &HVM{
		machine:  m,
		cost:     m.Cost,
		rosCores: append([]machine.CoreID(nil), cfg.ROSCores...),
		hrtCores: append([]machine.CoreID(nil), cfg.HRTCores...),
		tracer:   cfg.Tracer,
		metrics:  cfg.Metrics,
		recorder: cfg.Recorder,
		faults:   cfg.Faults,
	}
	if h.metrics == nil {
		h.metrics = telemetry.NewRegistry()
	}
	// The VMM<->HRT shared data page lives in HRT-local memory.
	f, err := m.Phys.Alloc(m.ZoneOfCore(h.hrtCores[0]), "hvm:shared-page")
	if err != nil {
		return nil, fmt.Errorf("hvm: allocating shared data page: %w", err)
	}
	h.sharedPage = f
	return h, nil
}

// Machine returns the underlying machine.
func (h *HVM) Machine() *machine.Machine { return h.machine }

// Cost returns the cost model in force.
func (h *HVM) Cost() *cycles.CostModel { return h.cost }

// ROSCores returns the ROS partition.
func (h *HVM) ROSCores() []machine.CoreID {
	return append([]machine.CoreID(nil), h.rosCores...)
}

// HRTCores returns the HRT partition.
func (h *HVM) HRTCores() []machine.CoreID {
	return append([]machine.CoreID(nil), h.hrtCores...)
}

// SharedPage returns the VMM<->HRT data page frame.
func (h *HVM) SharedPage() mem.Frame { return h.sharedPage }

// Tracer returns the HVM's span tracer (nil when tracing is off).
func (h *HVM) Tracer() *telemetry.Tracer { return h.tracer }

// Metrics returns the HVM's metrics registry (never nil).
func (h *HVM) Metrics() *telemetry.Registry { return h.metrics }

// Recorder returns the HVM's flight recorder (nil when disabled).
func (h *HVM) Recorder() *telemetry.Recorder { return h.recorder }

// Faults returns the armed fault injector (nil when injection is off).
func (h *HVM) Faults() *faults.Injector { return h.faults }

// SeedChannelIDs advances the channel-id counter to at least base. A
// grid seeds each node into a disjoint range so channel ids — which key
// fault-injection sites and trace flow ids — stay unique across nodes.
// Must be called before the node creates channels; a no-op if the
// counter is already past base.
func (h *HVM) SeedChannelIDs(base uint64) {
	for {
		cur := atomic.LoadUint64(&h.channelSeq)
		if cur >= base || atomic.CompareAndSwapUint64(&h.channelSeq, cur, base) {
			return
		}
	}
}

// rosMainTrack is the trace track of the ROS-side thread driving the
// HVM protocol calls (merger, async call, channel setup): the ROS boot
// core's main context.
func (h *HVM) rosMainTrack() telemetry.Track {
	return telemetry.Track{Core: int(h.rosCores[0]), Name: "ros:main"}
}

// SameSocket reports whether a ROS core and an HRT core share a socket,
// the property behind the two synchronous-call rows of Figure 2.
func (h *HVM) SameSocket(a, b machine.CoreID) bool { return h.machine.SameSocket(a, b) }

// RegisterBootHandler installs the AeroKernel entry point. The Multiverse
// runtime does this once before requesting the first boot.
func (h *HVM) RegisterBootHandler(bh BootHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bootHandler = bh
}

// exitStat is one exit kind's lock-free record: its count and its
// pre-resolved metrics counter.
type exitStat struct {
	n   atomic.Uint64
	ctr *telemetry.Counter
}

// countExit records one VM exit, both in the per-kind stats (ExitCount)
// and as an "exits.<kind>" metrics counter so a run's exposition plane
// can prove transport-level claims — in particular that the tier-3
// exitless steady state really takes zero exits (exits.ring stays 0).
// The path is lock-free after a kind's first exit: it used to take the
// HVM mutex per exit, which serialized every group in the system.
func (h *HVM) countExit(kind string) {
	v, ok := h.exits.Load(kind)
	if !ok {
		v, _ = h.exits.LoadOrStore(kind, &exitStat{ctr: h.metrics.Counter("exits." + kind)})
	}
	st := v.(*exitStat)
	st.n.Add(1)
	st.ctr.Inc()
}

// ExitCount returns the number of VM exits recorded for a kind.
func (h *HVM) ExitCount(kind string) uint64 {
	if v, ok := h.exits.Load(kind); ok {
		return v.(*exitStat).n.Load()
	}
	return 0
}

// hypercall charges one guest->VMM->guest transition to the calling
// context and records the exit.
func (h *HVM) hypercall(clk *cycles.Clock, kind string) {
	clk.Advance(h.cost.HypercallRoundTrip())
	h.countExit("hypercall:" + kind)
}

// InstallImage is the hypercall through which the ROS application supplies
// the HRT image, "much like an exec()" (section 2). The VMM copies it into
// HRT physical memory.
func (h *HVM) InstallImage(clk *cycles.Clock, img *image.Image) error {
	if img == nil {
		return fmt.Errorf("hvm: nil HRT image")
	}
	h.hypercall(clk, "install")
	pages := (img.Size() + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	clk.Advance(cycles.Cycles(pages) * h.cost.MemCopyPerPage)
	h.mu.Lock()
	h.installed = img
	h.imagePages = pages
	h.mu.Unlock()
	return nil
}

// InstalledImage returns the currently installed HRT image.
func (h *HVM) InstalledImage() *image.Image {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.installed
}

// BootHRT boots (or, if already booted, reboots) the HRT on its partition,
// invoking the registered boot handler with multiboot-style tags. The
// caller's clock pays the millisecond-scale boot cost the paper reports.
func (h *HVM) BootHRT(clk *cycles.Clock) error {
	h.mu.Lock()
	bh := h.bootHandler
	img := h.installed
	h.mu.Unlock()
	if bh == nil {
		return fmt.Errorf("hvm: no boot handler registered")
	}
	if img == nil {
		return fmt.Errorf("hvm: no HRT image installed")
	}
	h.hypercall(clk, "boot")
	clk.Advance(h.cost.HRTBoot)
	info := BootInfo{
		Image:      img,
		Core:       h.hrtCores[0],
		HRTCores:   h.HRTCores(),
		SharedPage: h.sharedPage,
		Tracer:     h.tracer,
		Metrics:    h.metrics,
		Recorder:   h.recorder,
		Faults:     h.faults,
		Tags: []image.MultibootTag{
			{Type: image.TagHRTFlags, Data: image.HRTFlagMergeCapable | image.HRTFlagIdentityHigh},
			{Type: image.TagCommChan, Data: h.sharedPage.Addr()},
			{Type: image.TagAPICCount, Data: uint64(len(h.hrtCores))},
		},
	}
	sink, err := bh(info)
	if err != nil {
		return fmt.Errorf("hvm: HRT boot failed: %w", err)
	}
	h.mu.Lock()
	h.sink = sink
	h.booted = true
	h.bootCount++
	h.mu.Unlock()
	return nil
}

// Booted reports whether the HRT is up.
func (h *HVM) Booted() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.booted
}

// BootCount returns the number of boots/reboots performed.
func (h *HVM) BootCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bootCount
}

// inject delivers a request to the HRT event loop, charging VMM record +
// injection costs to the requester and stamping the arrival time.
func (h *HVM) inject(clk *cycles.Clock, req *HRTRequest) (chan cycles.Cycles, error) {
	h.mu.Lock()
	sink := h.sink
	h.mu.Unlock()
	if sink == nil {
		return nil, fmt.Errorf("hvm: HRT not booted")
	}
	clk.Advance(h.cost.VMMRecord)
	req.Arrival = clk.Advance(h.cost.InterruptInject)
	req.hvm = h
	req.done = make(chan cycles.Cycles, 1)
	h.countExit("inject")
	sink.Inject(req)
	return req.done, nil
}

// MergeAddressSpace is the hypercall sequence for a state-superposition
// merger: the ROS-side library passes the calling process's CR3; the VMM
// stores it in the shared page and injects an OpMerge request; the HRT
// copies the lower-half PML4 entries and completes with a hypercall. The
// caller blocks until completion (the measured Figure 2 row).
func (h *HVM) MergeAddressSpace(clk *cycles.Clock, rosCR3 uint64) error {
	sp := h.tracer.Begin(h.rosMainTrack(), "hvm", "merge-request", clk.Now(),
		telemetry.Attr{Key: "cr3", Val: rosCR3})
	defer func() { sp.EndAt(clk.Now()) }()
	start := clk.Now()
	h.hypercall(clk, "merge")
	if err := h.machine.Phys.WriteU64(h.sharedPage.Addr()+sharedOffCR3, rosCR3); err != nil {
		return err
	}
	if err := h.machine.Phys.WriteU64(h.sharedPage.Addr()+sharedOffOp, uint64(OpMerge)); err != nil {
		return err
	}
	done, err := h.inject(clk, &HRTRequest{Op: OpMerge, CR3: rosCR3})
	if err != nil {
		return err
	}
	clk.SyncTo(<-done)
	h.metrics.Counter("hvm.merge_requests").Inc()
	h.metrics.LatencyHistogram("hvm.merge_request.latency").Observe(clk.Now() - start)
	return nil
}

// AsyncCall is the hypercall sequence for an asynchronous function
// invocation in the HRT (hrt_invoke_func's transport, and the Figure 2
// "Asynchronous Call" row). fn is the function pointer the HRT resolves;
// the call returns when the HRT signals completion, yielding the value the
// HRT stored in the shared page's return slot.
func (h *HVM) AsyncCall(clk *cycles.Clock, fn uint64, args ...uint64) (uint64, error) {
	if len(args) > sharedMaxArgs {
		return 0, fmt.Errorf("hvm: async call with %d args (max %d)", len(args), sharedMaxArgs)
	}
	sp := h.tracer.Begin(h.rosMainTrack(), "hvm", "async-call", clk.Now(),
		telemetry.Attr{Key: "fn", Val: fn})
	defer func() { sp.EndAt(clk.Now()) }()
	start := clk.Now()
	h.hypercall(clk, "asynccall")
	pa := h.sharedPage.Addr()
	if err := h.machine.Phys.WriteU64(pa+sharedOffFn, fn); err != nil {
		return 0, err
	}
	for i, a := range args {
		if err := h.machine.Phys.WriteU64(pa+sharedOffArg0+uint64(i)*8, a); err != nil {
			return 0, err
		}
	}
	if err := h.machine.Phys.WriteU64(pa+sharedOffOp, uint64(OpCall)); err != nil {
		return 0, err
	}
	done, err := h.inject(clk, &HRTRequest{Op: OpCall, Fn: fn, Args: append([]uint64(nil), args...)})
	if err != nil {
		return 0, err
	}
	clk.SyncTo(<-done)
	// Completion reaches the ROS caller the way all HRT->ROS signaling
	// does: the VMM records the completion and waits for a user-mode
	// window to inject the wakeup into the calling thread.
	clk.Advance(h.cost.VMMRecord + h.cost.InjectWindowROS + h.cost.SignalInjectROS + h.cost.VMEntry)
	ret, err := h.machine.Phys.ReadU64(pa + sharedOffRet)
	if err != nil {
		return 0, err
	}
	h.metrics.Counter("hvm.async_calls").Inc()
	h.metrics.LatencyHistogram("hvm.async_call.latency").Observe(clk.Now() - start)
	return ret, nil
}

// SignalHRT injects a ROS-application signal into the HRT via exception
// injection; it "takes highest precedence within the HRT" (section 2).
// It does not wait for completion.
func (h *HVM) SignalHRT(clk *cycles.Clock, sig int) error {
	h.hypercall(clk, "signal-hrt")
	_, err := h.inject(clk, &HRTRequest{Op: OpSignal, Signal: sig})
	return err
}

// RegisterROSSignal is the hypercall by which the ROS application
// registers a signal handler function and stack for asynchronous
// HRT->ROS signaling, "similar to how the canonical signal() library
// function is used" (section 2). clk identifies the registering thread;
// deliveries synchronize against it.
func (h *HVM) RegisterROSSignal(clk *cycles.Clock, handler ROSSignalHandler, stack *machine.Stack) {
	h.hypercall(clk, "signal-register")
	h.mu.Lock()
	h.rosSignal = handler
	h.rosSignalStack = stack
	h.rosSignalClock = clk
	h.mu.Unlock()
}

// RaiseROSSignal is the HRT->ROS signal path: the HVM records the raise,
// waits for a user-mode injection window, builds an interrupt-like frame
// on the registered stack, and runs the handler. The raising HRT context
// does not block beyond the hypercall.
func (h *HVM) RaiseROSSignal(hrtClk *cycles.Clock, sig int) error {
	h.mu.Lock()
	handler := h.rosSignal
	stack := h.rosSignalStack
	rosClk := h.rosSignalClock
	h.mu.Unlock()
	if handler == nil {
		return fmt.Errorf("hvm: no ROS signal handler registered")
	}
	h.hypercall(hrtClk, "signal-ros")
	hrtClk.Advance(h.cost.VMMRecord)
	arrival := hrtClk.Now() + h.cost.InjectWindowROS + h.cost.SignalInjectROS
	if rosClk != nil {
		rosClk.SyncTo(arrival)
	}
	if stack != nil {
		frame := &machine.InterruptFrame{Vector: machine.VecHRTSignal}
		stack.PushFrame(frame)
		defer stack.PopFrame()
	}
	h.countExit("signal-ros")
	handler(sig)
	return nil
}
