package hvm

import (
	"testing"
	"testing/quick"
)

// TestFlowIDNoSeqOverflowCollision is the regression for the original
// 20-bit split: after 2^20 forwards on one channel, the seqno bled into
// the channel-id bits, so channel 1's request 2^21+7 collided with
// channel 3's request 7 and Perfetto drew flow arrows between unrelated
// requests.
func TestFlowIDNoSeqOverflowCollision(t *testing.T) {
	if flowID(1, (2<<20)+7) == flowID(3, 7) {
		t.Fatal("flow ids collide across channels after 2^20 forwards (seqno overflows into channel-id bits)")
	}
	// The old encoding is exactly what the widened one must not be.
	old := func(id, seq uint64) uint64 { return id<<20 | seq }
	if old(1, (2<<20)+7) != old(3, 7) {
		t.Fatal("regression premise wrong: the 20-bit encoding was expected to collide")
	}
}

// TestFlowIDRoundTrips checks the split is a clean bitfield: channel id
// and seqno decode back out for every realistic value.
func TestFlowIDRoundTrips(t *testing.T) {
	f := func(id uint32, seq uint64) bool {
		// Realistic ranges: channel ids are small sequential integers
		// (the top 24 bits hold them), seqnos stay below the split.
		cid := uint64(id) & ((1 << (64 - flowSeqBits)) - 1)
		seq &= (1 << flowSeqBits) - 1
		flow := flowID(cid, seq)
		return flow>>flowSeqBits == cid && flow&((1<<flowSeqBits)-1) == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
