package hvm

import (
	"testing"
	"time"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
)

// TestChannelInterruptReplaysInflight exercises the channel half of a
// migration: the partner is interrupted (not killed) with one envelope
// accepted but never completed, the channel object survives, Requeue
// replays the in-flight envelope, and a fresh partner completes it —
// the blocked Forward unblocks exactly once, with no duplicate service.
func TestChannelInterruptReplaysInflight(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{Seed: 9}) // armed, all rates zero
	c := h.NewEventChannel(1, 0)
	c.ArmPartnerInterrupt()

	type fwd struct {
		r   Reply
		err error
	}
	got := make(chan fwd, 1)
	go func() {
		clk := cycles.NewClock(0)
		r, err := c.Forward(clk, &Envelope{Kind: EvSyscall,
			Call: linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{77}}})
		got <- fwd{r, err}
	}()

	// Partner 1 accepts the envelope but never completes it, then parks
	// in Recv — the quiesced posture the grid interrupts at.
	taken := make(chan *Envelope, 1)
	p1done := make(chan struct{})
	go func() {
		defer close(p1done)
		clk := cycles.NewClock(0)
		taken <- c.Recv(clk)
		if e := c.Recv(clk); e != nil {
			t.Error("interrupted Recv delivered an envelope")
		}
	}()
	env := <-taken
	if env == nil {
		t.Fatal("partner 1 got no envelope")
	}
	// Let partner 1 park in its second Recv before interrupting; the
	// grid gets this for free from the quiesce-point invariant.
	time.Sleep(20 * time.Millisecond)
	c.InterruptPartner()
	<-p1done

	replayed := c.Requeue(cycles.Cycles(12_345))
	if len(replayed) != 1 || replayed[0].Seq != env.Seq {
		t.Fatalf("Requeue = %+v, want 1 entry with seq %d", replayed, env.Seq)
	}

	// Restored partner on the "target node": re-arm and serve.
	c.ArmPartnerInterrupt()
	done := serveChannel(c)
	res := <-got
	if res.err != nil {
		t.Fatalf("Forward: %v", res.err)
	}
	if res.r.Res.Ret != 77 {
		t.Errorf("reply = %d, want 77", res.r.Res.Ret)
	}
	w := c.Window()
	if w.Completed != 1 || len(w.Inflight) != 0 || w.Redeliver != 0 {
		t.Errorf("window = %+v, want 1 completed, nothing in flight", w)
	}
	if v := h.Metrics().Counter("faults.dedup").Value(); v != 0 {
		t.Errorf("dedup = %d, want 0 (envelope serviced twice?)", v)
	}
	c.Close()
	<-done
}

// TestChannelRetransmitBoundRejects pins the bounded retransmission
// window: with the duplicate rate forced on and a bound of one, the
// first forward's duplicate occupies the window, the second forward's
// duplicate is rejected — counted, and the channel degrades to
// reliable transport — and both calls still complete once a partner
// serves.
func TestChannelRetransmitBoundRejects(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{
		Seed: 11, MaxAttempts: 3, RetransmitBound: 1,
		Rates: map[faults.Kind]float64{faults.DupNotify: 1},
	})
	c := h.NewEventChannel(1, 0)

	type fwd struct {
		r   Reply
		err error
	}
	forward := func(arg uint64) chan fwd {
		out := make(chan fwd, 1)
		go func() {
			clk := cycles.NewClock(0)
			r, err := c.Forward(clk, &Envelope{Kind: EvSyscall,
				Call: linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{arg}}})
			out <- fwd{r, err}
		}()
		return out
	}
	depth := h.Metrics().Gauge("faults.retransmit.depth")
	rejected := h.Metrics().Counter("faults.retransmit.rejected")

	// Forward 1: its duplicate is appended to the redelivery queue
	// (window depth 1) before the wire post, so waiting on the gauge
	// fully orders the two forwards.
	got1 := forward(1)
	for depth.Value() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Forward 2: the window is at the bound, so its duplicate must be
	// rejected and the channel degraded instead of growing the queue.
	got2 := forward(2)
	for rejected.Value() != 1 {
		time.Sleep(time.Millisecond)
	}
	if d := depth.Value(); d != 1 {
		t.Errorf("depth after rejection = %d, want 1 (queue must not grow)", d)
	}

	// Graceful degradation: with a partner serving, both calls complete
	// exactly once — the surviving duplicate coalesces by seqno.
	done := serveChannel(c)
	r1, r2 := <-got1, <-got2
	if r1.err != nil || r2.err != nil {
		t.Fatalf("forwards errored: %v / %v", r1.err, r2.err)
	}
	if r1.r.Res.Ret != 1 || r2.r.Res.Ret != 2 {
		t.Errorf("replies = %d / %d, want 1 / 2", r1.r.Res.Ret, r2.r.Res.Ret)
	}
	if v := rejected.Value(); v != 1 {
		t.Errorf("rejected = %d, want 1", v)
	}
	if v := h.Metrics().Counter("faults.dedup").Value(); v != 1 {
		t.Errorf("dedup = %d, want 1 (forward 1's surviving duplicate)", v)
	}
	c.Close()
	<-done
}
