package hvm

import (
	"sync"
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/image"
	"multiverse/internal/linuxabi"
)

// The exitless ring and the sync channel are the tightest loops the
// forwarding planes have; the raw-speed pass made their steady states
// allocation-free (pooled reply channels, value-only ring frames, cached
// metric handles). These tests pin that property.

func TestSPSCRingRoundTripAllocationFree(t *testing.T) {
	r := newSPSCRing(ringCapacity)
	f := ringFrame{seq: 1, reqID: 7, call: linuxabi.Call{Num: linuxabi.SysGetpid}}
	// One warm lap so any lazily-initialized state exists.
	if !r.Push(f) {
		t.Fatal("warm push failed")
	}
	if _, ok := r.Pop(); !ok {
		t.Fatal("warm pop failed")
	}

	if n := testing.AllocsPerRun(500, func() {
		if !r.Push(f) {
			t.Fatal("push failed")
		}
		if _, ok := r.Pop(); !ok {
			t.Fatal("pop failed")
		}
	}); n != 0 {
		t.Errorf("ring post/poll allocates %.1f per round trip, want 0", n)
	}
}

func TestSyncInvokeSteadyStateAllocationFree(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)

	s, err := h.SetupSync(clk, 0x7fff_0000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pollClk := cycles.NewClock(clk.Now())
	go func() {
		for s.Poll(pollClk, func(fn uint64, args []uint64) uint64 { return fn }) {
		}
	}()

	// Warm: the first invocation allocates the pooled reply channel.
	for i := 0; i < 4; i++ {
		if _, err := s.Invoke(clk, 42); err != nil {
			t.Fatal(err)
		}
	}

	if n := testing.AllocsPerRun(500, func() {
		if _, err := s.Invoke(clk, 42); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("sync invoke allocates %.1f per round trip, want 0", n)
	}
}

// TestRequeueStormBoundedAllocs drives a respawn storm: the same eight
// envelopes are received (never completed) and requeued over and over,
// as a crash-looping partner would leave them. Each Requeue must reuse
// its staging slices — cost per respawn is a small constant, independent
// of how long the storm has been running.
func TestRequeueStormBoundedAllocs(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{Seed: 9}) // armed, all rates zero
	c := h.NewEventChannel(1, 0)
	const depth = 8

	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(arg uint64) {
			defer wg.Done()
			clk := cycles.NewClock(0)
			r, err := c.Forward(clk, &Envelope{Kind: EvSyscall,
				Call: linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{arg}}})
			if err != nil {
				t.Error(err)
				return
			}
			if r.Res.Ret != arg {
				t.Errorf("reply = %d, want %d", r.Res.Ret, arg)
			}
		}(uint64(i))
	}

	svc := cycles.NewClock(0)
	recvAll := func() {
		for i := 0; i < depth; i++ {
			if env := c.Recv(svc); env == nil {
				t.Fatal("channel closed mid-storm")
			}
		}
	}
	recvAll() // all eight now in flight, partner "dies"

	storm := func() {
		if n := len(c.Requeue(svc.Now())); n != depth {
			t.Fatalf("requeued %d, want %d", n, depth)
		}
		recvAll()
	}
	storm() // warm the scratch slices

	n := testing.AllocsPerRun(100, storm)
	// A respawn cycle pays a handful of fixed allocations (the Replayed
	// result slice, sort machinery) but nothing proportional to storm
	// length; before the scratch slices it was a fresh queue per respawn.
	if n > 8 {
		t.Errorf("respawn cycle allocates %.1f, want a small constant (<= 8)", n)
	}

	// Let the storm end: serve the final deliveries for real.
	if got := len(c.Requeue(svc.Now())); got != depth {
		t.Fatalf("final requeue = %d, want %d", got, depth)
	}
	for i := 0; i < depth; i++ {
		env := c.Recv(svc)
		if env == nil {
			t.Fatal("channel closed before completion")
		}
		c.Complete(svc, env, Reply{Res: linuxabi.Result{Ret: env.Call.Args[0]}})
	}
	wg.Wait()
	c.Close()
}
