package hvm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// SyncSyscallChannel applies the post-merger synchronous protocol
// (section 4.3: "a simple memory-based protocol to communicate ...
// without VMM intervention") to system-call forwarding: the HRT writes a
// request descriptor at the agreed virtual address and spins; a dedicated
// ROS thread polls, executes the call against the kernel, and writes the
// result back. Per call this costs two cacheline transfers plus protocol
// overhead (~790/1060 cycles) instead of the ~25K-cycle asynchronous
// event-channel round trip — in exchange for burning a ROS thread on
// polling.
type SyncSyscallChannel struct {
	hvm        *HVM
	id         uint64
	va         uint64
	rosCore    machine.CoreID
	hrtCore    machine.CoreID
	sameSocket bool

	mu     sync.Mutex
	serve  chan syncSysReq
	closed bool
	// calls is atomic, like EventChannel.forwarded: the HRT thread
	// invokes while the evaluation harness reads mid-run.
	calls atomic.Uint64
}

type syncSysReq struct {
	call  linuxabi.Call
	stamp cycles.Cycles
	flow  uint64
	reply chan syncSysRep
	// corrupt marks a request word damaged in flight; the poller detects
	// it (bad checksum) and keeps polling without answering.
	corrupt bool
}

type syncSysRep struct {
	res   linuxabi.Result
	stamp cycles.Cycles
}

// SetupSyncSyscalls establishes the channel with a single hypercall, like
// SetupSync. va is the agreed synchronization address in the merged
// address space.
func (h *HVM) SetupSyncSyscalls(clk *cycles.Clock, va uint64, rosCore, hrtCore machine.CoreID) (*SyncSyscallChannel, error) {
	if !h.Booted() {
		return nil, fmt.Errorf("hvm: cannot set up sync syscall channel before HRT boot")
	}
	h.hypercall(clk, "sync-syscall-setup")
	return &SyncSyscallChannel{
		hvm:        h,
		id:         atomic.AddUint64(&h.channelSeq, 1),
		va:         va,
		rosCore:    rosCore,
		hrtCore:    hrtCore,
		sameSocket: h.machine.SameSocket(rosCore, hrtCore),
		serve:      make(chan syncSysReq),
	}, nil
}

func (s *SyncSyscallChannel) line() cycles.Cycles {
	if s.sameSocket {
		return s.hvm.cost.CachelineSameSocket
	}
	return s.hvm.cost.CachelineCrossSocket
}

// Invoke forwards one system call from the HRT side, spinning until the
// polling partner completes it. reqID is the causal request id from the
// syscall entry (0 for control traffic without one).
func (s *SyncSyscallChannel) Invoke(clk *cycles.Clock, call linuxabi.Call, reqID uint64) (linuxabi.Result, error) {
	res, _, err := s.invoke(clk, call, reqID)
	return res, err
}

// invoke is Invoke plus the retransmission count, which the router's
// fault policy reads to detect a lossy period.
func (s *SyncSyscallChannel) invoke(clk *cycles.Clock, call linuxabi.Call, reqID uint64) (linuxabi.Result, int, error) {
	cost := s.hvm.cost
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return linuxabi.Result{}, 0, fmt.Errorf("hvm: sync syscall channel closed")
	}
	s.mu.Unlock()
	seq := s.calls.Add(1)

	start := clk.Now()
	flow := flowID(s.id, seq)
	sp := s.hvm.tracer.Begin(telemetry.Track{Core: int(s.hrtCore), Name: "hrt"},
		"sync", "sync-syscall", start,
		telemetry.Attr{Key: "num", Val: uint64(call.Num)},
		telemetry.Attr{Key: "req", Val: reqID})
	sp.LinkOut(flow)

	var rep syncSysRep
	retx := 0
	if fi := s.hvm.faults; fi != nil {
		// Poll-deadline policy, same as the event channel: a dropped or
		// corrupted request word goes unanswered, the caller's virtual
		// deadline expires, and it rewrites the line with backoff. The
		// cacheline protocol cannot duplicate a request, so only drop and
		// corrupt apply here.
		timeout := fi.RetryTimeout()
		max := fi.MaxAttempts()
	send:
		for attempt := 0; ; attempt++ {
			last := attempt >= max-1
			clk.Advance(cost.SyncProtocolOverhead / 2)
			req := syncSysReq{call: call, stamp: clk.Now() + s.line(), flow: flow, reply: make(chan syncSysRep, 1)}
			dropped := !last && fi.Roll(faults.DropNotify, s.id, seq, attempt, clk.Now())
			if !dropped {
				req.corrupt = !last && fi.Roll(faults.CorruptFrame, s.id, seq, attempt, clk.Now())
				s.serve <- req
				if !req.corrupt {
					rep = <-req.reply
					break send
				}
			}
			clk.Advance(timeout)
			timeout *= 2
			retx++
			s.hvm.metrics.Counter("faults.retransmit").Inc()
			s.hvm.tracer.InstantFlow(telemetry.Track{Core: int(s.hrtCore), Name: "hrt"},
				"sync", "retransmit", clk.Now(), 0, flow,
				telemetry.Attr{Key: "seq", Val: seq},
				telemetry.Attr{Key: "req", Val: reqID},
				telemetry.Attr{Key: "attempt", Val: uint64(retx)})
			s.hvm.recorder.Record(clk.Now(), telemetry.RecRetransmit, s.id, reqID, seq, uint64(retx))
		}
	} else {
		clk.Advance(cost.SyncProtocolOverhead / 2)
		req := syncSysReq{call: call, stamp: clk.Now() + s.line(), flow: flow, reply: make(chan syncSysRep, 1)}
		s.serve <- req
		rep = <-req.reply
	}
	clk.SyncTo(rep.stamp + s.line())
	clk.Advance(cost.SyncProtocolOverhead - cost.SyncProtocolOverhead/2)
	sp.EndAt(clk.Now())
	s.hvm.metrics.Counter("sync.syscalls").Inc()
	s.hvm.metrics.LatencyHistogram("sync.syscall.latency").Observe(clk.Now() - start)
	s.hvm.recorder.Record(clk.Now(), telemetry.RecSyncCall, s.id, reqID, seq, uint64(retx))
	return rep.res, retx, nil
}

// Serve handles one forwarded call on the polling ROS thread; it blocks
// until a request arrives and returns false when the channel closes.
// Requests that arrived damaged are discarded without an answer — the
// caller's poll deadline resends them.
func (s *SyncSyscallChannel) Serve(clk *cycles.Clock, handler func(linuxabi.Call) linuxabi.Result) bool {
	for {
		req, ok := <-s.serve
		if !ok {
			return false
		}
		clk.SyncTo(req.stamp)
		if req.corrupt {
			s.hvm.metrics.Counter("faults.corrupt.detected").Inc()
			continue
		}
		sp := s.hvm.tracer.Begin(telemetry.Track{Core: int(s.rosCore), Name: fmt.Sprintf("ros:syncsvc:%d", s.id)},
			"sync", "serve-syscall", req.stamp, telemetry.Attr{Key: "num", Val: uint64(req.call.Num)})
		sp.LinkIn(req.flow)
		res := handler(req.call)
		sp.EndAt(clk.Now())
		req.reply <- syncSysRep{res: res, stamp: clk.Now()}
		return true
	}
}

// Close shuts the channel down; the poller's Serve returns false.
func (s *SyncSyscallChannel) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.serve)
	}
}

// Calls reports how many calls crossed. It is race-free against
// concurrent Invoke calls.
func (s *SyncSyscallChannel) Calls() uint64 { return s.calls.Load() }

// VA returns the agreed synchronization address.
func (s *SyncSyscallChannel) VA() uint64 { return s.va }
