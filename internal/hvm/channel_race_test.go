package hvm

import (
	"sync"
	"testing"

	"multiverse/internal/cycles"
)

// TestForwardCountersConcurrent hammers one channel with concurrent
// forwards while a reader polls the per-kind metrics counters (which
// replaced the racy ForwardCount shim). Under `go test -race` this fails
// if the counters are not atomic.
func TestForwardCountersConcurrent(t *testing.T) {
	_, h := newHVM(t)
	c := h.NewEventChannel(1, 0)

	const workers = 4
	const perWorker = 64

	// Service loop: drain and complete every envelope.
	svcDone := make(chan struct{})
	go func() {
		defer close(svcDone)
		clk := cycles.NewClock(0)
		for {
			env := c.Recv(clk)
			if env == nil {
				return
			}
			c.Complete(clk, env, Reply{})
		}
	}()

	// Concurrent reader of the counters.
	readerStop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-readerStop:
				return
			default:
				_ = h.Metrics().Counter("forward.syscall").Value()
				_ = h.Metrics().Counter("forward.page-fault").Value()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := cycles.NewClock(0)
			kind := EvSyscall
			if w%2 == 1 {
				kind = EvPageFault
			}
			for i := 0; i < perWorker; i++ {
				if _, err := c.Forward(clk, &Envelope{Kind: kind}); err != nil {
					t.Errorf("forward: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(readerStop)
	<-readerDone
	c.Close()
	<-svcDone

	want := uint64(workers / 2 * perWorker)
	if got := h.Metrics().Counter("forward.syscall").Value(); got != want {
		t.Errorf("forward.syscall counter = %d, want %d", got, want)
	}
	if got := h.Metrics().Counter("forward.page-fault").Value(); got != want {
		t.Errorf("forward.page-fault counter = %d, want %d", got, want)
	}
	if got := h.Metrics().LatencyHistogram("forward.page-fault.latency").Count(); got != want {
		t.Errorf("forward.page-fault.latency count = %d, want %d", got, want)
	}
}
