package hvm

import (
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
)

// ringFrame is one slot of an exitless SPSC ring: a request descriptor
// on the way out, a result on the way back. All payload travels by
// value — the simulated shared pages never hold pointers, so a torn or
// replayed frame can never alias live state.
type ringFrame struct {
	call  linuxabi.Call
	seq   uint64
	reqID uint64
	stamp cycles.Cycles
	flow  uint64
	// corrupt marks a frame damaged in flight; the poller detects it
	// (bad checksum) and keeps polling without answering.
	corrupt bool

	res linuxabi.Result
}

// ringCapacity is the default slot count of one ring. The exitless
// protocol has at most one request outstanding per ring pair (the
// caller spins for its reply before posting again), so capacity only
// absorbs discarded corrupt frames; 64 slots is one page of frames.
const ringCapacity = 64

// spscRing is a lock-free single-producer/single-consumer ring: the
// producer publishes a slot with a plain write followed by an atomic
// tail store; the consumer observes the tail, reads the slot, and
// retires it with an atomic head store. Those two atomics are the whole
// protocol — no lock, no syscall, and in the simulated machine no VM
// exit, which is the entire point of tier 3.
//
// The notify channel is host-level blocking only (so an idle poller
// does not burn a host CPU); it carries no simulated cost and no
// information — virtual time on both sides is governed entirely by the
// frame stamps, exactly like the sync channel's serve queue.
type spscRing struct {
	slots []ringFrame
	mask  uint64

	head atomic.Uint64 // next slot the consumer will read
	tail atomic.Uint64 // next slot the producer will write

	notify    chan struct{}
	done      chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once
}

// newSPSCRing builds a ring with capacity rounded up to a power of two.
func newSPSCRing(capacity int) *spscRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spscRing{
		slots:  make([]ringFrame, n),
		mask:   uint64(n - 1),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// Push publishes one frame. It returns false without publishing when
// the ring is full or closed; the caller distinguishes the two with
// Closed. Producer-side only.
func (r *spscRing) Push(f ringFrame) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = f
	r.tail.Store(t + 1)
	select {
	case r.notify <- struct{}{}:
	default:
	}
	return true
}

// Pop returns the next published frame, blocking (host-level only)
// until one arrives or the ring closes. After a close it drains frames
// published before the close, then reports false. Consumer-side only.
func (r *spscRing) Pop() (ringFrame, bool) {
	for {
		h := r.head.Load()
		if r.tail.Load() > h {
			f := r.slots[h&r.mask]
			r.head.Store(h + 1)
			return f, true
		}
		select {
		case <-r.notify:
		case <-r.done:
			if r.tail.Load() > r.head.Load() {
				continue
			}
			return ringFrame{}, false
		}
	}
}

// Close marks the ring dead and wakes a blocked consumer. Idempotent
// and safe from either side.
func (r *spscRing) Close() {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		close(r.done)
	})
}

// Closed reports whether the ring has been closed.
func (r *spscRing) Closed() bool { return r.closed.Load() }
