package hvm

import (
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/image"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
)

// newFaultedHVM builds an HVM with the fault plane armed under plan.
func newFaultedHVM(t *testing.T, plan faults.Plan) *HVM {
	t.Helper()
	m, err := machine.New(machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	fi, err := faults.New(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(m, Config{
		ROSCores: []machine.CoreID{0},
		HRTCores: []machine.CoreID{1, 4},
		Faults:   fi,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// serveChannel runs a service loop completing every accepted envelope.
func serveChannel(c *EventChannel) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		clk := cycles.NewClock(0)
		for {
			env := c.Recv(clk)
			if env == nil {
				return
			}
			c.Complete(clk, env, Reply{Res: linuxabi.Result{Ret: env.Call.Args[0]}})
		}
	}()
	return done
}

// TestChannelDropRetransmits drops the first delivery of every request:
// the sender's virtual poll deadline must expire and the retransmission
// must complete the call, with the backoff visible in virtual time.
func TestChannelDropRetransmits(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{
		Seed: 2, MaxAttempts: 2,
		Rates: map[faults.Kind]float64{faults.DropNotify: 1},
	})
	c := h.NewEventChannel(1, 0)
	done := serveChannel(c)

	clean := newFaultedHVM(t, faults.Plan{Seed: 2}) // armed, all rates zero
	cc := clean.NewEventChannel(1, 0)
	cleanDone := serveChannel(cc)

	clk := cycles.NewClock(0)
	cleanClk := cycles.NewClock(0)
	r, err := c.Forward(clk, &Envelope{Kind: EvSyscall, Call: linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{42}}})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cc.Forward(cleanClk, &Envelope{Kind: EvSyscall, Call: linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{42}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Res.Ret != 42 || rc.Res.Ret != 42 {
		t.Errorf("replies = %+v / %+v", r, rc)
	}
	if got := h.Metrics().Counter("faults.retransmit").Value(); got != 1 {
		t.Errorf("retransmits = %d, want 1", got)
	}
	// The lossy call must cost at least the initial poll deadline more
	// than the identically-plumbed clean call.
	if clk.Now() < cleanClk.Now()+60_000 {
		t.Errorf("lossy %d vs clean %d: no deadline charged", clk.Now(), cleanClk.Now())
	}
	c.Close()
	cc.Close()
	<-done
	<-cleanDone
}

// TestChannelCorruptDetected corrupts the first delivery: the receiver's
// frame checksum must catch it (never servicing the damaged frame) and
// the retransmission completes the call.
func TestChannelCorruptDetected(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{
		Seed: 4, MaxAttempts: 2,
		Rates: map[faults.Kind]float64{faults.CorruptFrame: 1},
	})
	c := h.NewEventChannel(1, 0)
	done := serveChannel(c)

	clk := cycles.NewClock(0)
	r, err := c.Forward(clk, &Envelope{Kind: EvSyscall, Call: linuxabi.Call{Num: linuxabi.SysWrite, Args: [6]uint64{7}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Res.Ret != 7 {
		t.Errorf("reply = %+v", r)
	}
	m := h.Metrics()
	if got := m.Counter("faults.corrupt.detected").Value(); got != 1 {
		t.Errorf("corrupt.detected = %d, want 1", got)
	}
	if got := m.Counter("faults.retransmit").Value(); got != 1 {
		t.Errorf("retransmits = %d, want 1", got)
	}
	c.Close()
	<-done
}

// TestChannelDupCoalesced duplicates every delivery: exactly one copy may
// be serviced; the other must be discarded by seqno dedup.
func TestChannelDupCoalesced(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{
		Seed:  6,
		Rates: map[faults.Kind]float64{faults.DupNotify: 1},
	})
	c := h.NewEventChannel(1, 0)

	served := 0
	clkSvc := cycles.NewClock(0)
	svcDone := make(chan struct{})
	go func() {
		defer close(svcDone)
		for {
			env := c.Recv(clkSvc)
			if env == nil {
				return
			}
			served++
			c.Complete(clkSvc, env, Reply{})
		}
	}()

	clk := cycles.NewClock(0)
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := c.Forward(clk, &Envelope{Kind: EvSyscall, Call: linuxabi.Call{Num: linuxabi.SysGetpid}}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	<-svcDone

	if served != calls {
		t.Errorf("served %d envelopes, want %d (duplicates double-applied)", served, calls)
	}
	if got := h.Metrics().Counter("faults.dedup").Value(); got == 0 {
		t.Error("no duplicates coalesced")
	}
}

// TestChannelRequeueRedelivers kills the service loop mid-request (after
// Recv, before Complete) and checks that Requeue hands the in-flight
// envelope to the next service generation, completing the blocked sender.
func TestChannelRequeueRedelivers(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{Seed: 8})
	c := h.NewEventChannel(1, 0)

	received := make(chan *Envelope, 1)
	clkSvc := cycles.NewClock(0)
	go func() {
		env := c.Recv(clkSvc)
		received <- env
		// Die without completing: the envelope stays in-flight.
	}()

	got := make(chan Reply, 1)
	clk := cycles.NewClock(0)
	go func() {
		r, err := c.Forward(clk, &Envelope{Kind: EvSyscall, Call: linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{9}}})
		if err != nil {
			return
		}
		got <- r
	}()

	env := <-received
	if env == nil {
		t.Fatal("service loop got no envelope")
	}
	if n := c.Requeue(clkSvc.Now()); len(n) != 1 {
		t.Fatalf("Requeue = %d, want 1", len(n))
	}
	// Second generation drains the redeliver queue and completes it.
	clk2 := cycles.NewClock(clkSvc.Now())
	env2 := c.Recv(clk2)
	if env2 == nil || env2.Seq != env.Seq {
		t.Fatalf("redelivered envelope = %+v", env2)
	}
	c.Complete(clk2, env2, Reply{Res: linuxabi.Result{Ret: 9}})
	r := <-got
	if r.Res.Ret != 9 {
		t.Errorf("reply = %+v", r)
	}
	c.Close()
}

// TestSyncChannelDropRetransmits applies the poll-deadline policy to the
// synchronous cacheline channel: a dropped request word goes unanswered
// and the rewrite completes the call.
func TestSyncChannelDropRetransmits(t *testing.T) {
	h := newFaultedHVM(t, faults.Plan{
		Seed: 10, MaxAttempts: 2,
		Rates: map[faults.Kind]float64{faults.DropNotify: 1},
	})
	clk := cycles.NewClock(0)
	h.RegisterBootHandler(func(info BootInfo) (HRTSink, error) {
		return &fakeSink{clk: cycles.NewClock(0)}, nil
	})
	if err := h.InstallImage(clk, &image.Image{Name: "nk"}); err != nil {
		t.Fatal(err)
	}
	if err := h.BootHRT(clk); err != nil {
		t.Fatal(err)
	}
	sc, err := h.SetupSyncSyscalls(clk, 0x7f50_0000_0000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	svcClk := cycles.NewClock(0)
	svcDone := make(chan struct{})
	go func() {
		defer close(svcDone)
		for sc.Serve(svcClk, func(call linuxabi.Call) linuxabi.Result {
			return linuxabi.Result{Ret: call.Args[0]}
		}) {
		}
	}()

	res, err := sc.Invoke(clk, linuxabi.Call{Num: linuxabi.SysGetpid, Args: [6]uint64{5}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 5 {
		t.Errorf("res = %+v", res)
	}
	if got := h.Metrics().Counter("faults.retransmit").Value(); got != 1 {
		t.Errorf("retransmits = %d, want 1", got)
	}
	sc.Close()
	<-svcDone
}
