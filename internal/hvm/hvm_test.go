package hvm

import (
	"sync"
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/image"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
)

func newHVM(t *testing.T) (*machine.Machine, *HVM) {
	t.Helper()
	m, err := machine.New(machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(m, Config{
		ROSCores: []machine.CoreID{0},
		HRTCores: []machine.CoreID{1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, h
}

// fakeSink records injected requests and completes them immediately.
type fakeSink struct {
	mu   sync.Mutex
	reqs []*HRTRequest
	clk  *cycles.Clock
	ret  uint64
}

func (s *fakeSink) Inject(req *HRTRequest) {
	s.mu.Lock()
	s.reqs = append(s.reqs, req)
	s.mu.Unlock()
	go req.Complete(s.clk, s.ret)
}

func (s *fakeSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reqs)
}

func TestPartitionValidation(t *testing.T) {
	m, _ := machine.New(machine.DefaultSpec())
	cases := []Config{
		{},                              // empty
		{ROSCores: []machine.CoreID{0}}, // no HRT
		{ROSCores: []machine.CoreID{0}, HRTCores: []machine.CoreID{0}},  // overlap
		{ROSCores: []machine.CoreID{0}, HRTCores: []machine.CoreID{99}}, // out of range
	}
	for i, cfg := range cases {
		if _, err := New(m, cfg); err == nil {
			t.Errorf("case %d: bad partition accepted", i)
		}
	}
}

func TestBootRequiresImageAndHandler(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	if err := h.BootHRT(clk); err == nil {
		t.Error("boot without handler should fail")
	}
	h.RegisterBootHandler(func(info BootInfo) (HRTSink, error) {
		return &fakeSink{clk: cycles.NewClock(0)}, nil
	})
	if err := h.BootHRT(clk); err == nil {
		t.Error("boot without image should fail")
	}
	if err := h.InstallImage(clk, &image.Image{Name: "nk"}); err != nil {
		t.Fatal(err)
	}
	if err := h.BootHRT(clk); err != nil {
		t.Fatalf("boot: %v", err)
	}
	if !h.Booted() || h.BootCount() != 1 {
		t.Error("boot state wrong")
	}
}

func TestBootCostIsMilliseconds(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	h.RegisterBootHandler(func(info BootInfo) (HRTSink, error) {
		return &fakeSink{clk: cycles.NewClock(0)}, nil
	})
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	before := clk.Now()
	_ = h.BootHRT(clk)
	bootMs := (clk.Now() - before).Nanoseconds() / 1e6
	if bootMs < 0.5 || bootMs > 10 {
		t.Errorf("boot took %v ms; paper says milliseconds", bootMs)
	}
}

func TestBootInfoTags(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	var got BootInfo
	h.RegisterBootHandler(func(info BootInfo) (HRTSink, error) {
		got = info
		return &fakeSink{clk: cycles.NewClock(0)}, nil
	})
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	if err := h.BootHRT(clk); err != nil {
		t.Fatal(err)
	}
	if got.Core != 1 || len(got.HRTCores) != 2 {
		t.Errorf("boot cores = %v", got)
	}
	tags := map[uint32]uint64{}
	for _, tag := range got.Tags {
		tags[tag.Type] = tag.Data
	}
	if tags[image.TagHRTFlags]&image.HRTFlagMergeCapable == 0 {
		t.Error("merge-capable flag missing")
	}
	if tags[image.TagCommChan] != h.SharedPage().Addr() {
		t.Error("comm channel tag wrong")
	}
	if tags[image.TagAPICCount] != 2 {
		t.Error("APIC count tag wrong")
	}
}

func TestMergeWritesSharedPageAndWaits(t *testing.T) {
	m, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)

	if err := h.MergeAddressSpace(clk, 0x1234000); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 || sink.reqs[0].Op != OpMerge || sink.reqs[0].CR3 != 0x1234000 {
		t.Errorf("reqs = %+v", sink.reqs)
	}
	// The shared page carries the CR3 (section 4.3).
	v, err := m.Phys.ReadU64(h.SharedPage().Addr() + 0x08)
	if err != nil || v != 0x1234000 {
		t.Errorf("shared page CR3 = %#x, %v", v, err)
	}
}

func TestAsyncCallCarriesArgsAndReturn(t *testing.T) {
	m, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0), ret: 99}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)

	ret, err := h.AsyncCall(clk, 0xFEED, 11, 22, 33)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 99 {
		t.Errorf("ret = %d", ret)
	}
	req := sink.reqs[0]
	if req.Op != OpCall || req.Fn != 0xFEED || len(req.Args) != 3 || req.Args[2] != 33 {
		t.Errorf("req = %+v", req)
	}
	// Function pointer and args written to the shared page.
	fn, _ := m.Phys.ReadU64(h.SharedPage().Addr() + 0x10)
	if fn != 0xFEED {
		t.Errorf("shared fn = %#x", fn)
	}
	a1, _ := m.Phys.ReadU64(h.SharedPage().Addr() + 0x18 + 8)
	if a1 != 22 {
		t.Errorf("shared arg1 = %d", a1)
	}
	if _, err := h.AsyncCall(clk, 1, 1, 2, 3, 4, 5, 6, 7); err == nil {
		t.Error("7 args should be rejected")
	}
}

func TestAsyncCallCostMatchesFigure2(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)

	before := clk.Now()
	if _, err := h.AsyncCall(clk, 1); err != nil {
		t.Fatal(err)
	}
	cost := clk.Now() - before
	if cost < 18_000 || cost > 32_000 {
		t.Errorf("async call = %d cycles, want ~25K (Figure 2)", cost)
	}
}

func TestSignalHRTInjects(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)
	if err := h.SignalHRT(clk, 7); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 || sink.reqs[0].Op != OpSignal || sink.reqs[0].Signal != 7 {
		t.Errorf("reqs = %+v", sink.reqs)
	}
}

func TestROSSignalPath(t *testing.T) {
	_, h := newHVM(t)
	rosClk := cycles.NewClock(0)
	hrtClk := cycles.NewClock(0)

	if err := h.RaiseROSSignal(hrtClk, 1); err == nil {
		t.Error("raise without registration should fail")
	}

	var got []int
	stack := machine.NewStack(4096)
	h.RegisterROSSignal(rosClk, func(sig int) { got = append(got, sig) }, stack)

	hrtClk.Advance(50_000)
	if err := h.RaiseROSSignal(hrtClk, int(linuxabi.SIGCHLD)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != int(linuxabi.SIGCHLD) {
		t.Errorf("handler got %v", got)
	}
	// The registered thread's clock synchronizes past the raise.
	if rosClk.Now() < 50_000 {
		t.Errorf("ROS clock = %d", rosClk.Now())
	}
}

func TestEventChannelRoundTrip(t *testing.T) {
	_, h := newHVM(t)
	ch := h.NewEventChannel(1, 0)
	hrtClk := cycles.NewClock(0)
	rosClk := cycles.NewClock(0)

	go func() {
		env := ch.Recv(rosClk)
		if env.Kind != EvSyscall || env.Call.Num != linuxabi.SysGetpid {
			t.Errorf("recv = %+v", env)
		}
		rosClk.Advance(500) // service time
		ch.Complete(rosClk, env, Reply{Res: linuxabi.Result{Ret: 321, Err: linuxabi.OK}})
	}()

	r, err := ch.Forward(hrtClk, &Envelope{Kind: EvSyscall, Call: linuxabi.Call{Num: linuxabi.SysGetpid}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Res.Ret != 321 {
		t.Errorf("reply = %+v", r)
	}
	if h.Metrics().Counter("forward.syscall").Value() != 1 {
		t.Error("forward count wrong")
	}
	// The HRT clock must land after the ROS completion stamp.
	if hrtClk.Now() <= rosClk.Now() {
		t.Errorf("hrt=%d ros=%d", hrtClk.Now(), rosClk.Now())
	}

	ch.Close()
	if _, err := ch.Forward(hrtClk, &Envelope{Kind: EvSyscall}); err == nil {
		t.Error("forward on closed channel should fail")
	}
	if env := ch.Recv(rosClk); env != nil {
		t.Error("recv on closed channel should return nil")
	}
	ch.Close() // idempotent
}

func TestSyncChannelSocketDistance(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)

	measure := func(hrtCore machine.CoreID) cycles.Cycles {
		s, err := h.SetupSync(clk, 0x7fff_0000, 0, hrtCore)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		pollClk := cycles.NewClock(clk.Now())
		go func() {
			for s.Poll(pollClk, func(fn uint64, args []uint64) uint64 { return fn }) {
			}
		}()
		before := clk.Now()
		if _, err := s.Invoke(clk, 42); err != nil {
			t.Fatal(err)
		}
		return clk.Now() - before
	}

	same := measure(1)  // core 1 shares socket 0 with ROS core 0
	cross := measure(4) // core 4 is socket 1
	if same != 790 {
		t.Errorf("same-socket sync = %d, want 790 (Figure 2)", same)
	}
	if cross != 1060 {
		t.Errorf("cross-socket sync = %d, want 1060 (Figure 2)", cross)
	}
}

func TestSyncChannelRequiresBoot(t *testing.T) {
	_, h := newHVM(t)
	if _, err := h.SetupSync(cycles.NewClock(0), 0x1000, 0, 1); err == nil {
		t.Error("sync setup before boot should fail")
	}
}

func TestExitAccounting(t *testing.T) {
	_, h := newHVM(t)
	clk := cycles.NewClock(0)
	sink := &fakeSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) { return sink, nil })
	_ = h.InstallImage(clk, &image.Image{Name: "nk"})
	_ = h.BootHRT(clk)
	if h.ExitCount("hypercall:install") != 1 {
		t.Error("install hypercall not counted")
	}
	if h.ExitCount("hypercall:boot") != 1 {
		t.Error("boot hypercall not counted")
	}
}
