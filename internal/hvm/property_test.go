package hvm

import (
	"reflect"
	"testing"
	"testing/quick"

	"multiverse/internal/cycles"
	"multiverse/internal/image"
	"multiverse/internal/machine"
)

// Property: arbitrary function pointers, argument vectors, and return
// values cross the shared data page intact through AsyncCall.
func TestAsyncCallRoundTripProperty(t *testing.T) {
	m, err := machine.New(machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(m, Config{ROSCores: []machine.CoreID{0}, HRTCores: []machine.CoreID{1}})
	if err != nil {
		t.Fatal(err)
	}

	// An echo sink: returns fn xor'd with every argument, read back from
	// the injected request (which itself was read from the shared page
	// layout by the HVM).
	type echoSink struct{ clk *cycles.Clock }
	sink := &echoSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) {
		return sinkFunc(func(req *HRTRequest) {
			ret := req.Fn
			for _, a := range req.Args {
				ret ^= a
			}
			go req.Complete(sink.clk, ret)
		}), nil
	})
	clk := cycles.NewClock(0)
	if err := h.InstallImage(clk, &image.Image{Name: "nk"}); err != nil {
		t.Fatal(err)
	}
	if err := h.BootHRT(clk); err != nil {
		t.Fatal(err)
	}

	prop := func(fn uint64, a1, a2, a3 uint64) bool {
		ret, err := h.AsyncCall(clk, fn, a1, a2, a3)
		return err == nil && ret == fn^a1^a2^a3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// sinkFunc adapts a function to HRTSink.
type sinkFunc func(*HRTRequest)

func (f sinkFunc) Inject(req *HRTRequest) { f(req) }

// Property: the router's tier-3 promotion/demotion policy is a pure
// function of the forward stream's virtual times. For any sequence of
// inter-arrival gaps, replaying the identical stream through a fresh
// router yields the identical transition sequence at identical virtual
// times — the determinism the seeded fault plane and the pinned bench
// baselines stand on. Promotions and demotions must also strictly
// alternate (the policy never double-promotes or double-demotes).
func TestRouterRingTransitionsReplayableProperty(t *testing.T) {
	type transition struct {
		What string
		At   cycles.Cycles
	}
	pol := RouterPolicy{RingCalls: 8, RingWindow: 400_000, RingIdle: 1_200_000}

	run := func(gaps []uint16) []transition {
		m, err := machine.New(machine.DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		h, err := New(m, Config{ROSCores: []machine.CoreID{0}, HRTCores: []machine.CoreID{1}})
		if err != nil {
			t.Fatal(err)
		}
		r := NewSyscallRouter(h, 1, RouterLocalState{}, pol)
		var evs []transition
		r.SetExitlessHooks(
			func(clk *cycles.Clock) (*ExitlessChannel, error) {
				clk.Advance(h.cost.HypercallRoundTrip())
				evs = append(evs, transition{"promote", clk.Now()})
				return &ExitlessChannel{hvm: h, req: newSPSCRing(ringCapacity), rep: newSPSCRing(ringCapacity)}, nil
			},
			func(clk *cycles.Clock, x *ExitlessChannel) {
				clk.Advance(h.cost.HypercallRoundTrip())
				evs = append(evs, transition{"demote", clk.Now()})
				x.Close()
			},
		)
		clk := cycles.NewClock(0)
		for _, g := range gaps {
			// Mostly sub-window gaps (promotable bursts) with occasional
			// idle stretches past the poll budget — both derived only
			// from the input, so the stream itself is deterministic.
			gap := cycles.Cycles(g&1023) * 97
			if g%31 == 0 {
				gap += pol.RingIdle
			}
			clk.Advance(gap)
			r.applyRingPolicy(clk)
		}
		return evs
	}

	prop := func(gaps []uint16) bool {
		a, b := run(gaps), run(gaps)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		for i, e := range a {
			want := "promote"
			if i%2 == 1 {
				want = "demote"
			}
			if e.What != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
