package hvm

import (
	"testing"
	"testing/quick"

	"multiverse/internal/cycles"
	"multiverse/internal/image"
	"multiverse/internal/machine"
)

// Property: arbitrary function pointers, argument vectors, and return
// values cross the shared data page intact through AsyncCall.
func TestAsyncCallRoundTripProperty(t *testing.T) {
	m, err := machine.New(machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(m, Config{ROSCores: []machine.CoreID{0}, HRTCores: []machine.CoreID{1}})
	if err != nil {
		t.Fatal(err)
	}

	// An echo sink: returns fn xor'd with every argument, read back from
	// the injected request (which itself was read from the shared page
	// layout by the HVM).
	type echoSink struct{ clk *cycles.Clock }
	sink := &echoSink{clk: cycles.NewClock(0)}
	h.RegisterBootHandler(func(BootInfo) (HRTSink, error) {
		return sinkFunc(func(req *HRTRequest) {
			ret := req.Fn
			for _, a := range req.Args {
				ret ^= a
			}
			go req.Complete(sink.clk, ret)
		}), nil
	})
	clk := cycles.NewClock(0)
	if err := h.InstallImage(clk, &image.Image{Name: "nk"}); err != nil {
		t.Fatal(err)
	}
	if err := h.BootHRT(clk); err != nil {
		t.Fatal(err)
	}

	prop := func(fn uint64, a1, a2, a3 uint64) bool {
		ret, err := h.AsyncCall(clk, fn, a1, a2, a3)
		return err == nil && ret == fn^a1^a2^a3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// sinkFunc adapts a function to HRTSink.
type sinkFunc func(*HRTRequest)

func (f sinkFunc) Inject(req *HRTRequest) { f(req) }
