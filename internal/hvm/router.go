package hvm

import (
	"strings"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// SyscallRouter is the adaptive boundary-crossing fast path of one
// execution group. The paper's Figure 2 prices the asynchronous
// event-channel round trip at ~25K cycles and the synchronous
// memory-polling path at ~790/1060 cycles, and section 4.3 frames sync
// forwarding as a stepping stone toward servicing events locally in the
// HRT. The router takes that step: instead of paying the worst-case
// forwarding path for every system call, it routes each call through the
// cheapest tier that can answer it correctly:
//
//	tier 0 (HRT-local): pure, process-invariant calls (getpid,
//	  clock_gettime, gettimeofday, uname, getcwd) are answered from
//	  state mirrored into the HRT at router creation — vDSO-style, zero
//	  boundary crossings.
//	tier 1 (result cache): idempotent read-only calls (stat, fstat,
//	  position-query lseek, brk(0)) are served from a result cache. The
//	  ROS kernel's mutating paths invalidate entries through hooks, so a
//	  cached stat never survives a write to the file it describes.
//	tier 2 (transport): everything else forwards — over the group's
//	  asynchronous event channel by default, or over a synchronous
//	  memory-polling channel while the group is promoted.
//	tier 3 (exitless): a sustained forward rate dedicates the partner to
//	  polling a pair of SPSC shared-memory rings, so steady-state
//	  forwarding takes zero VM exits ("Look Mum, no VM Exits!");
//	  hypercalls remain only for ring setup/teardown and kill recovery.
//
// Promotion is dynamic: the router tracks the group's forwarding rate in
// virtual time and promotes a hot group to a SyncSyscallChannel mid-run
// (burning a ROS polling core only while it pays for itself), demoting it
// again after an idle gap. All decisions depend only on virtual time and
// the call stream, so routing is as deterministic as the run itself.
type SyscallRouter struct {
	hvm     *HVM
	hrtCore machine.CoreID
	policy  RouterPolicy
	local   RouterLocalState

	// Promotion hooks, installed by the execution-group layer: promote
	// sets up a SyncSyscallChannel and its polling ROS thread; demote
	// tears the channel down. Nil hooks disable dynamic promotion.
	promote func(clk *cycles.Clock) (*SyncSyscallChannel, error)
	demote  func(clk *cycles.Clock, ch *SyncSyscallChannel)

	mu       sync.Mutex
	cache    map[routerCacheKey]linuxabi.Result
	cwdValid bool
	sync     *SyncSyscallChannel
	// recent holds the virtual times of the last PromoteCalls forwards
	// (oldest first); lastForward gates idle demotion.
	recent      []cycles.Cycles
	lastForward cycles.Cycles
	closed      bool

	// Fault-policy state (mu-guarded): lossRun counts consecutive lossy
	// async forwards, cleanRun consecutive clean sync calls, and lossSync
	// marks that the current sync channel exists for reliability — the
	// idle-demotion rule must not tear it down while losses may recur.
	lossRun  int
	cleanRun int
	lossSync bool

	// Tier-3 exitless hooks and state (mu-guarded): ringPromote sets up
	// an ExitlessChannel and its dedicated ROS poller, ringDemote tears
	// them down. Nil hooks disable tier 3 entirely — the dark path never
	// touches any of this state. ringHold latches after a fault-pressure
	// demotion: re-promotion waits for CleanStreak clean tier-2 forwards
	// (hypercall-mode recovery), and ringWasLossy makes that next
	// promotion count as a re-promotion.
	ringPromote  func(clk *cycles.Clock) (*ExitlessChannel, error)
	ringDemote   func(clk *cycles.Clock, x *ExitlessChannel)
	ring         *ExitlessChannel
	ringRecent   []cycles.Cycles
	lastRing     cycles.Cycles
	ringLossRun  int
	ringClean    int
	ringHold     bool
	ringWasLossy bool

	// crossings counts tier-2 forwards (calls that actually crossed the
	// boundary); atomic so the harness can read it mid-run.
	crossings atomic.Uint64
}

// RouterPolicy tunes the dynamic sync/async channel promotion.
type RouterPolicy struct {
	// PromoteCalls forwards within PromoteWindow of virtual time promote
	// the group to the synchronous channel.
	PromoteCalls  int
	PromoteWindow cycles.Cycles
	// DemoteIdle is the virtual-time gap since the last forward that
	// demotes the group back to the asynchronous channel (checked on the
	// next call, which is the first moment the HRT thread is active
	// again).
	DemoteIdle cycles.Cycles

	// Fault policy (active only when the fault plane is armed):
	// LossStreak consecutive lossy async forwards (at least one
	// retransmission each) demote the channel to the synchronous
	// memory-polling path, whose cacheline protocol rides out a flaky
	// notification plane; CleanStreak consecutive clean sync calls
	// re-promote it to the cheaper-per-idle async channel.
	LossStreak  int
	CleanStreak int

	// Tier-3 exitless policy: RingCalls forwards within RingWindow of
	// virtual time promote the group to the polled SPSC rings
	// (dedicating the partner to the poll loop); RingIdle of silence
	// exhausts the poll budget and demotes back to tier 2;
	// RingLossStreak consecutive lossy ring calls demote under fault
	// pressure. Re-promotion after a fault demotion reuses CleanStreak.
	RingCalls      int
	RingWindow     cycles.Cycles
	RingIdle       cycles.Cycles
	RingLossStreak int
}

// DefaultRouterPolicy promotes after a burst of 32 forwards inside ~1ms of
// virtual time and demotes after ~10ms of silence. At Figure 2's prices a
// promotion (one setup hypercall + one ROS thread creation, ~39K cycles)
// amortizes in two forwarded calls, so the threshold is deliberately
// conservative rather than tight.
func DefaultRouterPolicy() RouterPolicy {
	return RouterPolicy{
		PromoteCalls:  32,
		PromoteWindow: 2_200_000,  // 1 ms at 2.2 GHz
		DemoteIdle:    22_000_000, // 10 ms at 2.2 GHz
		LossStreak:    3,
		CleanStreak:   64,

		RingCalls:      64,         // sustained, not just hot: 2x the sync burst
		RingWindow:     13_200_000, // 6 ms at 2.2 GHz
		RingIdle:       11_000_000, // 5 ms poll budget at 2.2 GHz
		RingLossStreak: 2,
	}
}

func (p *RouterPolicy) fill() {
	d := DefaultRouterPolicy()
	if p.PromoteCalls <= 0 {
		p.PromoteCalls = d.PromoteCalls
	}
	if p.PromoteWindow <= 0 {
		p.PromoteWindow = d.PromoteWindow
	}
	if p.DemoteIdle <= 0 {
		p.DemoteIdle = d.DemoteIdle
	}
	if p.LossStreak <= 0 {
		p.LossStreak = d.LossStreak
	}
	if p.CleanStreak <= 0 {
		p.CleanStreak = d.CleanStreak
	}
	if p.RingCalls <= 0 {
		p.RingCalls = d.RingCalls
	}
	if p.RingWindow <= 0 {
		p.RingWindow = d.RingWindow
	}
	if p.RingIdle <= 0 {
		p.RingIdle = d.RingIdle
	}
	if p.RingLossStreak <= 0 {
		p.RingLossStreak = d.RingLossStreak
	}
}

// RouterLocalState is the ROS process state mirrored into the HRT when the
// router is created — the data page tier 0 reads instead of crossing. It
// is the same superposition idea the GDT/TLS mirroring uses: state that is
// process-invariant (or whose changes are hooked) can be replicated once
// and consulted locally forever after.
type RouterLocalState struct {
	PID   uint64
	Cwd   string
	Uname string
}

// routerCacheKey identifies one cached idempotent result.
type routerCacheKey struct {
	kind uint8
	fd   int
	path string
}

const (
	ckStat uint8 = iota + 1
	ckFstat
	ckLseek
	ckBrk
)

// NewSyscallRouter builds a router over the HVM's cost model and
// telemetry. local mirrors the owning process's state at creation time.
func NewSyscallRouter(h *HVM, hrtCore machine.CoreID, local RouterLocalState, policy RouterPolicy) *SyscallRouter {
	policy.fill()
	return &SyscallRouter{
		hvm:      h,
		hrtCore:  hrtCore,
		policy:   policy,
		local:    local,
		cache:    make(map[routerCacheKey]linuxabi.Result),
		cwdValid: true,
	}
}

// SetPromotionHooks installs the callbacks that set up and tear down the
// synchronous channel on promotion/demotion. Without hooks the router
// never promotes (it still serves tiers 0 and 1).
func (r *SyscallRouter) SetPromotionHooks(
	promote func(clk *cycles.Clock) (*SyncSyscallChannel, error),
	demote func(clk *cycles.Clock, ch *SyncSyscallChannel),
) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.promote = promote
	r.demote = demote
}

// SetExitlessHooks installs the callbacks that set up and tear down the
// tier-3 exitless ring pair (and its dedicated ROS poller) on
// promotion/demotion. Without hooks the router never reaches tier 3 and
// the tier-2 paths are bit-for-bit what they were.
func (r *SyscallRouter) SetExitlessHooks(
	promote func(clk *cycles.Clock) (*ExitlessChannel, error),
	demote func(clk *cycles.Clock, x *ExitlessChannel),
) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ringPromote = promote
	r.ringDemote = demote
}

// SetSyncChannel pins the router to an existing synchronous channel (the
// static Options.SyncSyscalls configuration). A pinned channel is never
// demoted unless demotion hooks are also installed.
func (r *SyscallRouter) SetSyncChannel(ch *SyncSyscallChannel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sync = ch
}

// Promoted reports whether the group currently forwards over the
// synchronous channel.
func (r *SyscallRouter) Promoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sync != nil
}

// RingPromoted reports whether the group currently forwards over the
// tier-3 exitless rings.
func (r *SyscallRouter) RingPromoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring != nil
}

// Crossings reports how many routed calls actually crossed the boundary
// (tier-2 forwards). Race-free mid-run.
func (r *SyscallRouter) Crossings() uint64 { return r.crossings.Load() }

// hrtTrack is the router's trace track: the HRT thread's timeline.
func (r *SyscallRouter) hrtTrack() telemetry.Track {
	return telemetry.Track{Core: int(r.hrtCore), Name: "hrt"}
}

// Dispatch routes one system call from the HRT thread. It returns the
// result, whether the call crossed the boundary, and a transport error (a
// closed channel) if any. clk is the HRT thread's clock; each tier charges
// its own virtual cost to it. reqID is the causal request id allocated at
// the syscall entry; it rides every hop the call takes (0 = untracked
// control traffic).
func (r *SyscallRouter) Dispatch(clk *cycles.Clock, ch *EventChannel, call linuxabi.Call, reqID uint64) (linuxabi.Result, bool, error) {
	cost := r.hvm.cost
	m := r.hvm.metrics
	rec := r.hvm.recorder

	// Tier 0: HRT-local service from mirrored state.
	if res, ok := r.serveLocal(clk, call); ok {
		m.Counter("router.local_hits").Inc()
		m.Counter("router.local." + call.Num.String()).Inc()
		m.LatencyHistogram("router.local.latency").Observe(cost.HRTLocalSyscall)
		rec.Record(clk.Now(), telemetry.RecTierLocal, uint64(r.hrtCore), reqID, uint64(call.Num), 0)
		return res, false, nil
	}

	// Tier 1: result cache for idempotent read-only calls.
	if key, cacheable := r.cacheKeyOf(call); cacheable {
		clk.Advance(cost.SyscallCacheProbe)
		r.mu.Lock()
		res, hit := r.cache[key]
		r.mu.Unlock()
		if hit {
			clk.Advance(cost.SyscallCacheHit)
			m.Counter("router.cache_hits").Inc()
			m.LatencyHistogram("router.cache_hit.latency").Observe(cost.SyscallCacheProbe + cost.SyscallCacheHit)
			rec.Record(clk.Now(), telemetry.RecTierCache, uint64(r.hrtCore), reqID, uint64(call.Num), 0)
			return res, false, nil
		}
		m.Counter("router.cache_misses").Inc()
		res, err := r.forward(clk, ch, call, reqID)
		if err == nil && res.Err == linuxabi.OK {
			r.mu.Lock()
			if !r.closed {
				r.cache[key] = res
			}
			r.mu.Unlock()
		}
		return res, true, err
	}

	// Tier 2: forward.
	res, err := r.forward(clk, ch, call, reqID)
	return res, true, err
}

// serveLocal answers tier-0 calls. getpid/uname/getcwd come from the
// mirrored state; the two time calls read the HRT thread's own virtual
// clock, exactly as a vdso page mapped into the merged address space
// would.
func (r *SyscallRouter) serveLocal(clk *cycles.Clock, call linuxabi.Call) (linuxabi.Result, bool) {
	serve := func(res linuxabi.Result) (linuxabi.Result, bool) {
		clk.Advance(r.hvm.cost.HRTLocalSyscall)
		return res, true
	}
	switch call.Num {
	case linuxabi.SysGetpid:
		return serve(linuxabi.Result{Ret: r.local.PID, Err: linuxabi.OK})
	case linuxabi.SysClockGettime:
		clk.Advance(r.hvm.cost.HRTLocalSyscall)
		return linuxabi.Result{Ret: uint64(clk.Now().Nanoseconds()), Err: linuxabi.OK}, true
	case linuxabi.SysGettimeofday:
		clk.Advance(r.hvm.cost.HRTLocalSyscall)
		return linuxabi.Result{Ret: uint64(clk.Now().Microseconds()), Err: linuxabi.OK}, true
	case linuxabi.SysUname:
		return serve(linuxabi.Result{Ret: 0, Err: linuxabi.OK, Data: []byte(r.local.Uname)})
	case linuxabi.SysGetcwd:
		r.mu.Lock()
		valid, cwd := r.cwdValid, r.local.Cwd
		r.mu.Unlock()
		if !valid {
			return linuxabi.Result{}, false // mirror stale: fall through to forwarding
		}
		return serve(linuxabi.Result{Ret: uint64(len(cwd)), Err: linuxabi.OK, Data: []byte(cwd)})
	}
	return linuxabi.Result{}, false
}

// cacheKeyOf classifies tier-1 calls. Only genuinely idempotent shapes
// cache: stat by path, fstat by fd, the position query lseek(fd, 0,
// SEEK_CUR), and the break query brk(0).
func (r *SyscallRouter) cacheKeyOf(call linuxabi.Call) (routerCacheKey, bool) {
	switch call.Num {
	case linuxabi.SysStat:
		return routerCacheKey{kind: ckStat, path: r.resolvePath(call.Path)}, true
	case linuxabi.SysFstat:
		return routerCacheKey{kind: ckFstat, fd: int(call.Args[0])}, true
	case linuxabi.SysLseek:
		if call.Args[1] == 0 && call.Args[2] == linuxabi.SeekCur {
			return routerCacheKey{kind: ckLseek, fd: int(call.Args[0])}, true
		}
	case linuxabi.SysBrk:
		if call.Args[0] == 0 {
			return routerCacheKey{kind: ckBrk}, true
		}
	}
	return routerCacheKey{}, false
}

// resolvePath canonicalizes a path against the mirrored cwd so cache keys
// match the absolute paths the ROS-side invalidation hooks report.
func (r *SyscallRouter) resolvePath(path string) string {
	if strings.HasPrefix(path, "/") {
		return path
	}
	if r.local.Cwd == "/" {
		return "/" + path
	}
	return r.local.Cwd + "/" + path
}

// forward crosses the boundary over the cheapest promoted transport:
// the tier-3 exitless rings when promoted, else tier 2 — the
// synchronous channel if promoted, the event channel otherwise.
func (r *SyscallRouter) forward(clk *cycles.Clock, ch *EventChannel, call linuxabi.Call, reqID uint64) (linuxabi.Result, error) {
	m := r.hvm.metrics
	if x := r.applyRingPolicy(clk); x != nil {
		res, retx, err := x.invoke(clk, call, reqID)
		if err == nil {
			r.crossings.Add(1)
			m.Counter("router.forward.ring").Inc()
			r.noteRingTransport(clk, retx)
			return res, nil
		}
		// The rings died mid-call (partner kill or shutdown): tear them
		// down via the recovery hypercall and re-route this call over
		// the hypercall-mode tier-2 transports.
		r.ringDown(clk)
	}
	sc := r.applyPolicy(clk)
	r.crossings.Add(1)
	if sc != nil {
		res, retx, err := sc.invoke(clk, call, reqID)
		if err != nil {
			return res, err
		}
		m.Counter("router.forward.sync").Inc()
		r.noteTransport(clk, retx, true)
		r.noteRingRecovery(retx)
		return res, nil
	}
	if ch == nil {
		return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.ENOSYS}, nil
	}
	env := ch.NewEnvelope()
	env.Kind = EvSyscall
	env.Call = call
	env.ReqID = reqID
	rep, err := ch.Forward(clk, env)
	if err != nil {
		return linuxabi.Result{}, err
	}
	m.Counter("router.forward.async").Inc()
	// Reading env after Forward is safe: the dispatcher is the channel's
	// only envelope producer, so the recycled envelope cannot be reused
	// before the next Dispatch on this thread.
	r.noteTransport(clk, env.Retransmits, false)
	r.noteRingRecovery(env.Retransmits)
	return rep.Res, nil
}

// applyRingPolicy runs the tier-3 promotion/demotion policy for one
// forward and returns the ring channel to use (nil = stay on tier 2).
// With no exitless hooks installed it returns immediately without
// touching any state, keeping the dark path byte-identical.
func (r *SyscallRouter) applyRingPolicy(clk *cycles.Clock) *ExitlessChannel {
	r.mu.Lock()
	if r.ringPromote == nil {
		r.mu.Unlock()
		return nil
	}
	now := clk.Now()

	// Poll-budget exhaustion: an idle gap means the dedicated poller
	// burned RingIdle cycles of its core finding nothing — give the
	// partner back to tier 2.
	if r.ring != nil && r.lastRing > 0 && now-r.lastRing >= r.policy.RingIdle {
		x := r.ring
		r.ring = nil
		r.ringRecent = r.ringRecent[:0]
		demote := r.ringDemote
		r.mu.Unlock()
		demote(clk, x)
		r.hvm.metrics.Counter("router.tier3.demotions").Inc()
		r.hvm.tracer.Instant(r.hrtTrack(), "router", "ring-demote", clk.Now())
		r.hvm.recorder.Record(clk.Now(), telemetry.RecRingDemote, uint64(r.hrtCore), 0, 0, 0)
		r.mu.Lock()
	}

	// Promote on a sustained forward rate. A recovery hold (fault
	// pressure tore the rings down) blocks promotion until a clean
	// tier-2 window clears it, and a reliability-demoted sync channel
	// (lossSync) keeps its transport.
	if r.ring == nil && !r.ringHold && !r.lossSync {
		r.ringRecent = append(r.ringRecent, now)
		if n := r.policy.RingCalls; len(r.ringRecent) > n {
			r.ringRecent = r.ringRecent[len(r.ringRecent)-n:]
		}
		if len(r.ringRecent) == r.policy.RingCalls && now-r.ringRecent[0] <= r.policy.RingWindow {
			promote := r.ringPromote
			r.ringRecent = r.ringRecent[:0]
			r.recent = r.recent[:0]
			// The ring poller takes over the partner: a promoted sync
			// channel gives its polling core back first.
			var sc *SyncSyscallChannel
			var scDemote func(*cycles.Clock, *SyncSyscallChannel)
			if r.sync != nil && r.demote != nil {
				sc, scDemote = r.sync, r.demote
				r.sync = nil
			}
			r.mu.Unlock()
			if sc != nil {
				scDemote(clk, sc)
				r.hvm.metrics.Counter("router.demotions").Inc()
				r.hvm.tracer.Instant(r.hrtTrack(), "router", "channel-demote", clk.Now())
				r.hvm.recorder.Record(clk.Now(), telemetry.RecDemote, uint64(r.hrtCore), 0, 0, 0)
			}
			x, err := promote(clk)
			r.mu.Lock()
			if err == nil && x != nil {
				r.ring = x
				r.ringLossRun = 0
				if r.ringWasLossy {
					r.ringWasLossy = false
					r.hvm.metrics.Counter("router.tier3.repromotions").Inc()
					r.hvm.tracer.Instant(r.hrtTrack(), "router", "ring-repromote", clk.Now())
					r.hvm.recorder.Record(clk.Now(), telemetry.RecRingRepromote, uint64(r.hrtCore), 0, 0, 0)
				} else {
					r.hvm.metrics.Counter("router.tier3.promotions").Inc()
					r.hvm.tracer.Instant(r.hrtTrack(), "router", "ring-promote", clk.Now())
					r.hvm.recorder.Record(clk.Now(), telemetry.RecRingPromote, uint64(r.hrtCore), 0, 0, 0)
				}
			}
		}
	}
	x := r.ring
	if x != nil {
		r.lastRing = now
	}
	r.mu.Unlock()
	return x
}

// noteRingTransport feeds the tier-3 fault policy with one ring call's
// transport quality: RingLossStreak consecutive lossy calls mean the
// retransmission layer is carrying the rings, so fault pressure demotes
// back to tier 2. A no-op while the fault plane is off.
func (r *SyscallRouter) noteRingTransport(clk *cycles.Clock, retx int) {
	if r.hvm.faults == nil {
		return
	}
	r.mu.Lock()
	if retx == 0 {
		r.ringLossRun = 0
		r.mu.Unlock()
		return
	}
	r.ringLossRun++
	if r.ringLossRun < r.policy.RingLossStreak {
		r.mu.Unlock()
		return
	}
	r.ringLossRun = 0
	r.mu.Unlock()
	r.ringDown(clk)
}

// ringDown tears down the tier-3 rings after fault pressure (a partner
// kill or a loss streak): the recovery path is hypercall-mode — the
// teardown hypercall now, tier-2 transports for subsequent forwards —
// and re-promotion waits for a clean tier-2 window (noteRingRecovery).
func (r *SyscallRouter) ringDown(clk *cycles.Clock) {
	r.mu.Lock()
	x := r.ring
	r.ring = nil
	r.ringRecent = r.ringRecent[:0]
	r.ringHold = true
	r.ringWasLossy = true
	r.ringClean = 0
	demote := r.ringDemote
	r.mu.Unlock()
	if x != nil && demote != nil {
		demote(clk, x)
	}
	r.hvm.metrics.Counter("router.tier3.fault_demotions").Inc()
	r.hvm.tracer.Instant(r.hrtTrack(), "router", "ring-demote-lossy", clk.Now())
	r.hvm.recorder.Record(clk.Now(), telemetry.RecRingDemoteLossy, uint64(r.hrtCore), 0, 0, 0)
}

// noteRingRecovery counts clean tier-2 forwards while a recovery hold
// is latched; CleanStreak of them in a row prove the transport healthy
// again and release the hold, letting applyRingPolicy re-promote. A
// no-op (no state touched) when exitless is off or no hold is latched.
func (r *SyscallRouter) noteRingRecovery(retx int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ringPromote == nil || !r.ringHold {
		return
	}
	if retx > 0 {
		r.ringClean = 0
		return
	}
	r.ringClean++
	if r.ringClean >= r.policy.CleanStreak {
		r.ringHold = false
		r.ringClean = 0
	}
}

// noteTransport feeds the fault policy with one forward's transport
// quality. It is a no-op while the fault plane is off, keeping the fixed
// path untouched.
func (r *SyscallRouter) noteTransport(clk *cycles.Clock, retx int, viaSync bool) {
	if r.hvm.faults == nil {
		return
	}
	if retx > 0 {
		r.mu.Lock()
		r.cleanRun = 0
		if viaSync || r.sync != nil || r.promote == nil || r.lossSync {
			r.mu.Unlock()
			return
		}
		r.lossRun++
		if r.lossRun < r.policy.LossStreak {
			r.mu.Unlock()
			return
		}
		// The async notification plane is flaky: fall back to the
		// synchronous cacheline protocol, which a lost interrupt cannot
		// touch.
		promote := r.promote
		r.lossRun = 0
		r.mu.Unlock()
		sc, err := promote(clk)
		r.mu.Lock()
		if err == nil && sc != nil {
			r.sync = sc
			r.lossSync = true
			r.hvm.metrics.Counter("router.fault_demotions").Inc()
			r.hvm.tracer.Instant(r.hrtTrack(), "router", "channel-demote-lossy", clk.Now())
			r.hvm.recorder.Record(clk.Now(), telemetry.RecDemoteLossy, uint64(r.hrtCore), 0, 0, 0)
		}
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	r.lossRun = 0
	if !viaSync || !r.lossSync || r.sync == nil || r.demote == nil {
		r.mu.Unlock()
		return
	}
	r.cleanRun++
	if r.cleanRun < r.policy.CleanStreak {
		r.mu.Unlock()
		return
	}
	// A clean window on the reliable path: give the polling core back.
	sc := r.sync
	r.sync = nil
	r.lossSync = false
	r.cleanRun = 0
	demote := r.demote
	r.mu.Unlock()
	demote(clk, sc)
	r.hvm.metrics.Counter("router.fault_repromotions").Inc()
	r.hvm.tracer.Instant(r.hrtTrack(), "router", "channel-repromote", clk.Now())
	r.hvm.recorder.Record(clk.Now(), telemetry.RecRepromote, uint64(r.hrtCore), 0, 0, 0)
}

// applyPolicy runs the promotion/demotion policy for one forward at the
// caller's current virtual time and returns the synchronous channel to
// use (nil = asynchronous). Only the owning HRT thread calls it, so
// decisions are serialized by construction; the lock only guards against
// concurrent invalidations and harness reads.
func (r *SyscallRouter) applyPolicy(clk *cycles.Clock) *SyncSyscallChannel {
	now := clk.Now()
	r.mu.Lock()
	// Demote after an idle gap: the polling core stopped paying for
	// itself somewhere in the silence. A reliability demotion (lossSync)
	// is exempt — only a clean window may undo it.
	if r.sync != nil && !r.lossSync && r.demote != nil && r.lastForward > 0 && now-r.lastForward >= r.policy.DemoteIdle {
		sc := r.sync
		r.sync = nil
		r.recent = r.recent[:0]
		demote := r.demote
		r.mu.Unlock()
		demote(clk, sc)
		r.hvm.metrics.Counter("router.demotions").Inc()
		r.hvm.tracer.Instant(r.hrtTrack(), "router", "channel-demote", clk.Now())
		r.hvm.recorder.Record(clk.Now(), telemetry.RecDemote, uint64(r.hrtCore), 0, 0, 0)
		r.mu.Lock()
	}

	// Track the forwarding rate and promote on a hot burst.
	if r.sync == nil && r.promote != nil {
		r.recent = append(r.recent, now)
		if n := r.policy.PromoteCalls; len(r.recent) > n {
			r.recent = r.recent[len(r.recent)-n:]
		}
		if len(r.recent) == r.policy.PromoteCalls && now-r.recent[0] <= r.policy.PromoteWindow {
			promote := r.promote
			r.recent = r.recent[:0]
			r.mu.Unlock()
			sc, err := promote(clk)
			r.mu.Lock()
			if err == nil && sc != nil {
				r.sync = sc
				r.hvm.metrics.Counter("router.promotions").Inc()
				r.hvm.tracer.Instant(r.hrtTrack(), "router", "channel-promote", clk.Now())
				r.hvm.recorder.Record(clk.Now(), telemetry.RecPromote, uint64(r.hrtCore), 0, 0, 0)
			}
		}
	}
	r.lastForward = now
	sc := r.sync
	r.mu.Unlock()
	return sc
}

// ---- Invalidation hooks -------------------------------------------------
//
// The ROS kernel's mutating syscall paths call these (through the
// execution-group wiring) whenever state a cached result might describe
// changes. Each method drops exactly the entries the mutation can affect.

// invalidate removes one key, counting it if present.
func (r *SyscallRouter) invalidate(keys ...routerCacheKey) {
	r.mu.Lock()
	dropped := 0
	for _, k := range keys {
		if _, ok := r.cache[k]; ok {
			delete(r.cache, k)
			dropped++
		}
	}
	r.mu.Unlock()
	if dropped > 0 {
		r.hvm.metrics.Counter("router.cache_invalidations").Add(uint64(dropped))
	}
}

// InvalidateFD drops results keyed to a file descriptor (fstat, lseek
// position) — a write, read, seek, or close changed them.
func (r *SyscallRouter) InvalidateFD(fd int) {
	r.invalidate(routerCacheKey{kind: ckFstat, fd: fd}, routerCacheKey{kind: ckLseek, fd: fd})
}

// InvalidatePath drops the stat result of an absolute path — a write or a
// (re)open may have changed the file's metadata.
func (r *SyscallRouter) InvalidatePath(path string) {
	if path == "" {
		return
	}
	r.invalidate(routerCacheKey{kind: ckStat, path: path})
}

// InvalidateBrk drops the cached break query after a mutating brk.
func (r *SyscallRouter) InvalidateBrk() {
	r.invalidate(routerCacheKey{kind: ckBrk})
}

// InvalidateCwd marks the mirrored working directory stale; getcwd
// forwards from then on. (The current ROS has no chdir, but the hook keeps
// the mirror honest if one appears.)
func (r *SyscallRouter) InvalidateCwd() {
	r.mu.Lock()
	r.cwdValid = false
	r.mu.Unlock()
	r.hvm.metrics.Counter("router.cache_invalidations").Inc()
}

// RouterCheckpoint is the router slice of a group checkpoint: the
// mirrored tier-0 state plus the fault-policy latches that survive a
// migration. The router object itself crosses with the group (the
// checkpoint records, it does not rebuild), so this is the serialized
// form a restore verifies and the flight recorder describes.
type RouterCheckpoint struct {
	// Local is the mirrored process state tier 0 serves from. It
	// deliberately migrates as-is: the group keeps observing its
	// original pid/cwd/uname, so tier-0 answers are byte-identical to
	// an unmigrated run.
	Local RouterLocalState
	// RingHold/RingWasLossy carry the tier-3 recovery latch: after the
	// checkpoint teardown, re-promotion on the target waits for the
	// same CleanStreak window as after a partner-kill demotion.
	RingHold     bool
	RingWasLossy bool
	// CacheEntries counts the tier-1 results dropped at checkpoint time
	// (fd and path identity is per-node, so the cache does not migrate).
	CacheEntries int
}

// Quiesce prepares the router for a checkpoint. Tier-3 rings are torn
// down to the tier-2 fallback exactly as in the partner-kill recovery
// path — teardown hypercall, recovery hold, clean-streak-gated
// re-promotion on the target. A promoted sync channel is demoted (its
// polling thread lives on the source node and cannot move), and the
// tier-1 result cache is dropped. clk is the migration clock: the
// teardown hypercalls are a cost of migrating, not of the group's own
// timeline, which must stay byte-identical to an unmigrated run.
func (r *SyscallRouter) Quiesce(clk *cycles.Clock) RouterCheckpoint {
	r.mu.Lock()
	hasRing := r.ring != nil
	r.mu.Unlock()
	if hasRing {
		r.ringDown(clk)
	}
	r.mu.Lock()
	sc := r.sync
	r.sync = nil
	r.lossSync = false
	r.cleanRun = 0
	r.recent = r.recent[:0]
	demote := r.demote
	dropped := len(r.cache)
	clear(r.cache)
	cp := RouterCheckpoint{
		Local:        r.local,
		RingHold:     r.ringHold,
		RingWasLossy: r.ringWasLossy,
		CacheEntries: dropped,
	}
	r.mu.Unlock()
	if sc != nil {
		if demote != nil {
			demote(clk, sc)
		} else {
			sc.Close()
		}
	}
	if dropped > 0 {
		r.hvm.metrics.Counter("router.cache_invalidations").Add(uint64(dropped))
	}
	return cp
}

// Shutdown closes any promoted channels (the group is tearing down) and
// freezes the cache.
func (r *SyscallRouter) Shutdown() {
	r.mu.Lock()
	sc := r.sync
	r.sync = nil
	x := r.ring
	r.ring = nil
	r.closed = true
	r.mu.Unlock()
	if sc != nil {
		sc.Close()
	}
	if x != nil {
		x.Close()
	}
}
