package linuxabi

import "encoding/binary"

// The simulated kernel returns structured results (stat buffers, rusage)
// as little-endian fixed layouts in Result.Data, standing in for the
// copy-out a real kernel performs into user memory. These helpers are the
// only encode/decode points, so both kernel and libc agree by
// construction.

// statEncodedSize is the wire size of an encoded Stat.
const statEncodedSize = 4 * 8

// EncodeStat serializes st.
func EncodeStat(st Stat) []byte {
	b := make([]byte, statEncodedSize)
	binary.LittleEndian.PutUint64(b[0:], st.Ino)
	binary.LittleEndian.PutUint64(b[8:], st.Size)
	binary.LittleEndian.PutUint64(b[16:], uint64(st.Mode))
	var d uint64
	if st.IsDir {
		d = 1
	}
	binary.LittleEndian.PutUint64(b[24:], d)
	return b
}

// DecodeStat parses an encoded Stat.
func DecodeStat(b []byte) (Stat, bool) {
	if len(b) < statEncodedSize {
		return Stat{}, false
	}
	return Stat{
		Ino:   binary.LittleEndian.Uint64(b[0:]),
		Size:  binary.LittleEndian.Uint64(b[8:]),
		Mode:  uint32(binary.LittleEndian.Uint64(b[16:])),
		IsDir: binary.LittleEndian.Uint64(b[24:]) != 0,
	}, true
}

// rusageEncodedSize is the wire size of an encoded Rusage.
const rusageEncodedSize = 10 * 8

// EncodeRusage serializes ru.
func EncodeRusage(ru Rusage) []byte {
	b := make([]byte, rusageEncodedSize)
	binary.LittleEndian.PutUint64(b[0:], uint64(ru.UserTime.Sec))
	binary.LittleEndian.PutUint64(b[8:], uint64(ru.UserTime.Usec))
	binary.LittleEndian.PutUint64(b[16:], uint64(ru.SysTime.Sec))
	binary.LittleEndian.PutUint64(b[24:], uint64(ru.SysTime.Usec))
	binary.LittleEndian.PutUint64(b[32:], ru.MaxRSSKb)
	binary.LittleEndian.PutUint64(b[40:], ru.MinorFault)
	binary.LittleEndian.PutUint64(b[48:], ru.MajorFault)
	binary.LittleEndian.PutUint64(b[56:], ru.NVCSw)
	binary.LittleEndian.PutUint64(b[64:], ru.NIvCSw)
	return b
}

// DecodeRusage parses an encoded Rusage.
func DecodeRusage(b []byte) (Rusage, bool) {
	if len(b) < rusageEncodedSize {
		return Rusage{}, false
	}
	return Rusage{
		UserTime:   Timeval{Sec: int64(binary.LittleEndian.Uint64(b[0:])), Usec: int64(binary.LittleEndian.Uint64(b[8:]))},
		SysTime:    Timeval{Sec: int64(binary.LittleEndian.Uint64(b[16:])), Usec: int64(binary.LittleEndian.Uint64(b[24:]))},
		MaxRSSKb:   binary.LittleEndian.Uint64(b[32:]),
		MinorFault: binary.LittleEndian.Uint64(b[40:]),
		MajorFault: binary.LittleEndian.Uint64(b[48:]),
		NVCSw:      binary.LittleEndian.Uint64(b[56:]),
		NIvCSw:     binary.LittleEndian.Uint64(b[64:]),
	}, true
}
