// Package linuxabi defines the Linux x86-64 ABI surface the simulation
// speaks: system call numbers, errno values, and the flag constants and
// structures used by the runtime systems under test.
//
// The values match the real Linux x86-64 ABI so that traces produced by the
// simulated ROS read like the paper's strace-derived tables (Figures 10-12).
package linuxabi

import "fmt"

// Sysno is a Linux x86-64 system call number.
type Sysno uint64

// System call numbers (x86-64). Only the calls the paper's evaluation
// exercises — plus the "disallowed functionality" set from section 4.2 —
// are defined.
const (
	SysRead         Sysno = 0
	SysWrite        Sysno = 1
	SysOpen         Sysno = 2
	SysClose        Sysno = 3
	SysStat         Sysno = 4
	SysFstat        Sysno = 5
	SysLseek        Sysno = 8
	SysMmap         Sysno = 9
	SysMprotect     Sysno = 10
	SysMunmap       Sysno = 11
	SysBrk          Sysno = 12
	SysRtSigaction  Sysno = 13
	SysRtSigreturn  Sysno = 15
	SysIoctl        Sysno = 16
	SysPoll         Sysno = 7
	SysSetitimer    Sysno = 38
	SysGetpid       Sysno = 39
	SysClone        Sysno = 56
	SysFork         Sysno = 57
	SysExecve       Sysno = 59
	SysExit         Sysno = 60
	SysUname        Sysno = 63
	SysFutex        Sysno = 202
	SysGetdents64   Sysno = 217
	SysGetcwd       Sysno = 79
	SysGettimeofday Sysno = 96
	SysGetrusage    Sysno = 98
	SysTimerCreate  Sysno = 222
	SysExitGroup    Sysno = 231
	SysNanosleep    Sysno = 35
	SysClockGettime Sysno = 228
)

var sysNames = map[Sysno]string{
	SysRead:         "read",
	SysWrite:        "write",
	SysOpen:         "open",
	SysClose:        "close",
	SysStat:         "stat",
	SysFstat:        "fstat",
	SysLseek:        "lseek",
	SysMmap:         "mmap",
	SysMprotect:     "mprotect",
	SysMunmap:       "munmap",
	SysBrk:          "brk",
	SysRtSigaction:  "rt_sigaction",
	SysRtSigreturn:  "rt_sigreturn",
	SysIoctl:        "ioctl",
	SysNanosleep:    "nanosleep",
	SysClockGettime: "clock_gettime",
	SysPoll:         "poll",
	SysSetitimer:    "setitimer",
	SysGetpid:       "getpid",
	SysClone:        "clone",
	SysFork:         "fork",
	SysExecve:       "execve",
	SysExit:         "exit",
	SysUname:        "uname",
	SysFutex:        "futex",
	SysGetdents64:   "getdents64",
	SysGetcwd:       "getcwd",
	SysGettimeofday: "gettimeofday",
	SysGetrusage:    "getrusage",
	SysTimerCreate:  "timer_create",
	SysExitGroup:    "exit_group",
}

// String returns the conventional name of the system call.
func (s Sysno) String() string {
	if n, ok := sysNames[s]; ok {
		return n
	}
	return fmt.Sprintf("sys_%d", uint64(s))
}

// Errno is a Linux error number. Zero means success.
type Errno uint64

// Errno values used by the simulation.
const (
	OK      Errno = 0
	EPERM   Errno = 1
	ENOENT  Errno = 2
	EINTR   Errno = 4
	EBADF   Errno = 9
	EAGAIN  Errno = 11
	ENOMEM  Errno = 12
	EACCES  Errno = 13
	EFAULT  Errno = 14
	EEXIST  Errno = 17
	ENOTDIR Errno = 20
	EISDIR  Errno = 21
	EINVAL  Errno = 22
	EMFILE  Errno = 24
	ENOSPC  Errno = 28
	ENOSYS  Errno = 38
)

var errNames = map[Errno]string{
	OK:      "OK",
	EPERM:   "EPERM",
	ENOENT:  "ENOENT",
	EINTR:   "EINTR",
	EBADF:   "EBADF",
	EAGAIN:  "EAGAIN",
	ENOMEM:  "ENOMEM",
	EACCES:  "EACCES",
	EFAULT:  "EFAULT",
	EEXIST:  "EEXIST",
	ENOTDIR: "ENOTDIR",
	EISDIR:  "EISDIR",
	EINVAL:  "EINVAL",
	EMFILE:  "EMFILE",
	ENOSPC:  "ENOSPC",
	ENOSYS:  "ENOSYS",
}

// Error implements the error interface so syscall implementations can
// return an Errno directly where convenient.
func (e Errno) Error() string {
	if n, ok := errNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", uint64(e))
}

// Memory protection bits for mmap/mprotect.
const (
	ProtNone  = 0x0
	ProtRead  = 0x1
	ProtWrite = 0x2
	ProtExec  = 0x4
)

// mmap flags.
const (
	MapShared    = 0x01
	MapPrivate   = 0x02
	MapFixed     = 0x10
	MapAnonymous = 0x20
)

// open flags.
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Signal numbers.
type Signal int

const (
	SIGINT    Signal = 2
	SIGKILL   Signal = 9
	SIGSEGV   Signal = 11
	SIGALRM   Signal = 14
	SIGTERM   Signal = 15
	SIGCHLD   Signal = 17
	SIGVTALRM Signal = 26
	SIGPROF   Signal = 27
)

var sigNames = map[Signal]string{
	SIGINT:    "SIGINT",
	SIGKILL:   "SIGKILL",
	SIGSEGV:   "SIGSEGV",
	SIGALRM:   "SIGALRM",
	SIGTERM:   "SIGTERM",
	SIGCHLD:   "SIGCHLD",
	SIGVTALRM: "SIGVTALRM",
	SIGPROF:   "SIGPROF",
}

// String returns the conventional signal name.
func (s Signal) String() string {
	if n, ok := sigNames[s]; ok {
		return n
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Stat is the subset of struct stat the simulation's programs consume.
type Stat struct {
	Ino   uint64
	Size  uint64
	Mode  uint32
	IsDir bool
}

// Timeval mirrors struct timeval.
type Timeval struct {
	Sec  int64
	Usec int64
}

// Rusage mirrors the fields of struct rusage that Figure 10 reports.
type Rusage struct {
	UserTime   Timeval
	SysTime    Timeval
	MaxRSSKb   uint64
	MinorFault uint64
	MajorFault uint64
	NVCSw      uint64 // voluntary context switches
	NIvCSw     uint64 // involuntary context switches
}

// SigactionFlags subset.
const (
	SAOnStack = 0x08000000
	SARestart = 0x10000000
	SASiginfo = 0x00000004
)

// ITimer kinds for setitimer.
const (
	ITimerReal    = 0
	ITimerVirtual = 1
	ITimerProf    = 2
)
