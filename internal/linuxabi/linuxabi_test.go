package linuxabi

import (
	"testing"
	"testing/quick"
)

func TestSysnoNames(t *testing.T) {
	// Numbers must match the real x86-64 ABI so traces read like the
	// paper's.
	cases := map[Sysno]string{
		0:   "read",
		1:   "write",
		2:   "open",
		9:   "mmap",
		10:  "mprotect",
		11:  "munmap",
		13:  "rt_sigaction",
		15:  "rt_sigreturn",
		39:  "getpid",
		96:  "gettimeofday",
		98:  "getrusage",
		231: "exit_group",
	}
	for num, want := range cases {
		if num.String() != want {
			t.Errorf("sysno %d = %q, want %q", uint64(num), num.String(), want)
		}
	}
	if Sysno(9999).String() != "sys_9999" {
		t.Errorf("unknown sysno renders %q", Sysno(9999).String())
	}
}

func TestErrnoError(t *testing.T) {
	if ENOENT.Error() != "ENOENT" {
		t.Errorf("ENOENT = %q", ENOENT.Error())
	}
	if Errno(999).Error() == "" {
		t.Error("unknown errno should render")
	}
	var err error = EINVAL // Errno satisfies error
	if err.Error() != "EINVAL" {
		t.Errorf("as error: %q", err.Error())
	}
}

func TestSignalString(t *testing.T) {
	if SIGSEGV.String() != "SIGSEGV" {
		t.Errorf("SIGSEGV = %q", SIGSEGV.String())
	}
	if SIGVTALRM.String() != "SIGVTALRM" {
		t.Errorf("SIGVTALRM = %q", SIGVTALRM.String())
	}
}

func TestResultOk(t *testing.T) {
	if !(Result{Err: OK}).Ok() {
		t.Error("OK result not ok")
	}
	if (Result{Err: ENOENT}).Ok() {
		t.Error("ENOENT result ok")
	}
}

func TestStatRoundTrip(t *testing.T) {
	st := Stat{Ino: 7, Size: 1234, Mode: 0o100644, IsDir: false}
	got, ok := DecodeStat(EncodeStat(st))
	if !ok || got != st {
		t.Errorf("round trip = %+v, %v", got, ok)
	}
	if _, ok := DecodeStat([]byte{1, 2}); ok {
		t.Error("short stat decoded")
	}
}

func TestRusageRoundTrip(t *testing.T) {
	ru := Rusage{
		UserTime:   Timeval{Sec: 1, Usec: 500000},
		SysTime:    Timeval{Sec: 0, Usec: 250},
		MaxRSSKb:   81920,
		MinorFault: 31082,
		NVCSw:      491,
		NIvCSw:     12,
	}
	got, ok := DecodeRusage(EncodeRusage(ru))
	if !ok || got != ru {
		t.Errorf("round trip = %+v", got)
	}
	if _, ok := DecodeRusage(nil); ok {
		t.Error("nil rusage decoded")
	}
}

// Properties: encode/decode round-trips for arbitrary values.
func TestEncodeProperties(t *testing.T) {
	statProp := func(ino, size uint64, mode uint32, dir bool) bool {
		st := Stat{Ino: ino, Size: size, Mode: mode, IsDir: dir}
		got, ok := DecodeStat(EncodeStat(st))
		return ok && got == st
	}
	if err := quick.Check(statProp, nil); err != nil {
		t.Error(err)
	}
	ruProp := func(us, ss int64, rss, minf, majf, nv, niv uint64) bool {
		ru := Rusage{
			UserTime:   Timeval{Sec: us % 1e6, Usec: us % 1e6},
			SysTime:    Timeval{Sec: ss % 1e6, Usec: ss % 1e6},
			MaxRSSKb:   rss,
			MinorFault: minf,
			MajorFault: majf,
			NVCSw:      nv,
			NIvCSw:     niv,
		}
		got, ok := DecodeRusage(EncodeRusage(ru))
		return ok && got == ru
	}
	if err := quick.Check(ruProp, nil); err != nil {
		t.Error(err)
	}
}
