package linuxabi

// Call is one system-call invocation in transportable form: the register
// image (number + up to six arguments) plus an out-of-band payload slice
// standing in for the bytes a real kernel would copy from user memory
// (write buffers, path strings).
//
// The same structure crosses the Multiverse event channel when the HRT
// forwards a system call to the ROS, which is why it lives in the ABI
// package rather than in the ROS kernel.
type Call struct {
	Num  Sysno
	Args [6]uint64
	// Path carries the pathname argument for path-taking calls
	// (open/stat/getcwd). A real kernel would read it from user memory at
	// Args[0]; the simulation transports it explicitly.
	Path string
	// Data carries outbound payload bytes (write). Its length must agree
	// with the size argument in Args.
	Data []byte
}

// Result is the completion of a Call: the return register, an errno, and
// any inbound payload bytes (read results) a real kernel would have copied
// into user memory.
type Result struct {
	Ret  uint64
	Err  Errno
	Data []byte
}

// Ok reports whether the call succeeded.
func (r Result) Ok() bool { return r.Err == OK }
