package legion

import (
	"fmt"
	"math"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
)

// HPCG-style workload: a preconditioner-free conjugate-gradient solve of a
// 27-point-stencil-like sparse symmetric positive definite system — the
// High Performance Conjugate Gradients benchmark the paper uses to
// evaluate hand-ported Legion (section 2), scaled to simulation size.
//
// CG's structure is what makes it a synchronization benchmark: every
// iteration is a chain of bulk-synchronous steps (SpMV, two dot products,
// three AXPYs) whose barriers put the runtime's wakeup primitive on the
// critical path.

// flopCost is the virtual cost of one fused multiply-add in the kernels.
const flopCost = 3

// SparseMatrix is a symmetric banded matrix in diagonal-offset form.
type SparseMatrix struct {
	N       int
	Offsets []int     // band offsets (0 = diagonal)
	Vals    []float64 // one value per band (Toeplitz-style), Vals[0] on the diagonal
}

// NewStencilMatrix builds a diagonally dominant SPD banded system of size
// n modelled on a 1D projection of the HPCG 27-point stencil: a strong
// diagonal with symmetric off-diagonal bands.
func NewStencilMatrix(n int) *SparseMatrix {
	return &SparseMatrix{
		N:       n,
		Offsets: []int{0, 1, -1, 16, -16},
		Vals:    []float64{4.0, -0.6, -0.6, -0.4, -0.4},
	}
}

// NNZRow returns the nonzeros per row (band count).
func (m *SparseMatrix) NNZRow() int { return len(m.Offsets) }

// HPCGResult is one solve's outcome.
type HPCGResult struct {
	Iterations  int
	Residual    float64
	X           []float64 // the computed solution (exact answer: all ones)
	Cycles      cycles.Cycles
	SyncOps     int
	Launches    int
	SyncBinding string
	Workers     int
}

// RunHPCG performs `iters` CG iterations of Ax=b (b = A·ones) on the
// runtime and reports the final residual and the master's elapsed virtual
// time.
func RunHPCG(rt *Runtime, env core.Env, n, iters int) (*HPCGResult, error) {
	if n < 64 {
		return nil, fmt.Errorf("legion: HPCG needs n >= 64, got %d", n)
	}
	a := NewStencilMatrix(n)

	// b = A * ones so the exact solution is all-ones (verifiable).
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	spmvSeq(a, ones, b)

	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)

	start := env.Clock().Now()
	rr := dot(rt, r, r)
	nnz := a.NNZRow()

	for it := 0; it < iters; it++ {
		// ap = A * p (parallel SpMV).
		rt.IndexLaunch(n, func(w core.Env, i int) {
			sum := 0.0
			for k, off := range a.Offsets {
				j := i + off
				if j >= 0 && j < n {
					sum += a.Vals[k] * p[j]
				}
			}
			ap[i] = sum
			w.Compute(cycles.Cycles(nnz * flopCost))
		})

		pap := dot(rt, p, ap)
		if pap == 0 {
			break
		}
		alpha := rr / pap

		// x += alpha p ; r -= alpha ap (fused parallel AXPY).
		rt.IndexLaunch(n, func(w core.Env, i int) {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			w.Compute(4 * flopCost)
		})

		rrNew := dot(rt, r, r)
		beta := rrNew / rr
		rr = rrNew

		// p = r + beta p.
		rt.IndexLaunch(n, func(w core.Env, i int) {
			p[i] = r[i] + beta*p[i]
			w.Compute(2 * flopCost)
		})
	}

	return &HPCGResult{
		Iterations:  iters,
		Residual:    math.Sqrt(rr),
		X:           x,
		Cycles:      env.Clock().Now() - start,
		SyncOps:     rt.SyncOps,
		Launches:    rt.Launches,
		SyncBinding: rt.SyncBinding(),
		Workers:     rt.Workers(),
	}, nil
}

// dot is a parallel dot product with reduction.
func dot(rt *Runtime, a, b []float64) float64 {
	return rt.Reduce(len(a), func(w core.Env, i int) float64 {
		w.Compute(flopCost)
		return a[i] * b[i]
	})
}

// spmvSeq is the sequential reference SpMV used for setup and checking.
func spmvSeq(m *SparseMatrix, in, out []float64) {
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for k, off := range m.Offsets {
			j := i + off
			if j >= 0 && j < m.N {
				sum += m.Vals[k] * in[j]
			}
		}
		out[i] = sum
	}
}

// VerifySolution checks that x approximates the all-ones solution.
func VerifySolution(x []float64, tol float64) error {
	for i, v := range x {
		if math.Abs(v-1) > tol {
			return fmt.Errorf("legion: x[%d] = %v, want 1±%v", i, v, tol)
		}
	}
	return nil
}
