package legion

import (
	"multiverse/internal/aerokernel"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/machine"
)

// Chunked partitioning replaces the static per-worker block split under the
// scheduler: [0, n) becomes up to maxChunks contiguous chunks of at least
// minChunk indices. The layout is a function of n ONLY — never of the
// worker count or of who runs what — so per-chunk partial sums land in the
// same accumulator slots whatever the steal pattern, and reductions are
// bit-identical between a 1-worker serial run and a stealing run.
const (
	minChunk  = 64
	maxChunks = 64
)

// chunk is one contiguous index range with its reduction accumulator slot.
type chunk struct {
	lo, hi int
	slot   int
}

// chunkRanges splits [0, n) into the canonical chunk decomposition.
func chunkRanges(n int) []chunk {
	if n <= 0 {
		return nil
	}
	nchunks := (n + minChunk - 1) / minChunk
	if nchunks > maxChunks {
		nchunks = maxChunks
	}
	out := make([]chunk, nchunks)
	for i := 0; i < nchunks; i++ {
		out[i] = chunk{lo: i * n / nchunks, hi: (i + 1) * n / nchunks, slot: i}
	}
	return out
}

// deque models a Chase–Lev work-stealing deque over a contiguous chunk
// run: the owner pops from the bottom, thieves take from the top. The
// executor drives every deque from one goroutine, so the model needs no
// atomics — the concurrency is in virtual time, where it belongs.
type deque struct {
	chunks []chunk
	top    int // next chunk a thief would take
	bot    int // one past the next chunk the owner would take
}

func (d *deque) reset(cs []chunk) { d.chunks = cs; d.top = 0; d.bot = len(cs) }
func (d *deque) size() int        { return d.bot - d.top }
func (d *deque) popBottom() chunk { d.bot--; return d.chunks[d.bot] }
func (d *deque) stealTop() chunk  { c := d.chunks[d.top]; d.top++; return c }

// stealWorker is one persistent scheduler-placed worker: a nested
// AeroKernel thread used as a placement and clock context, driven by the
// executor rather than by a goroutine of its own.
type stealWorker struct {
	id      int
	env     core.Env
	benv    *batchEnv // Compute-batching view of env for chunk bodies
	core    machine.CoreID
	tid     int // AeroKernel thread id, for core-occupancy bookkeeping
	release func()
	deque   deque
}

// hrtThreader recovers the AeroKernel thread behind a worker Env.
type hrtThreader interface {
	HRTThreadForBench() *aerokernel.Thread
}

// spawnStealWorkers builds the scheduler-mode worker pool.
func (rt *Runtime) spawnStealWorkers(host core.SchedulerHost, nworkers int) error {
	for i := 0; i < nworkers; i++ {
		wenv, coreID, release, err := host.SpawnWorkerEnv()
		if err != nil {
			for _, w := range rt.sworkers {
				w.release()
			}
			rt.sworkers = nil
			return err
		}
		w := &stealWorker{id: i, env: wenv, benv: &batchEnv{Env: wenv}, core: coreID, release: release}
		if ht, ok := wenv.(hrtThreader); ok {
			w.tid = ht.HRTThreadForBench().ID
		}
		rt.sworkers = append(rt.sworkers, w)
	}
	return nil
}

// stealLaunch executes one index launch under the work-stealing scheduler
// as a deterministic discrete-event simulation: chunks are dealt
// contiguously into per-worker deques, then the worker able to act at the
// earliest virtual time (ties to the lowest id) repeatedly pops its own
// bottom chunk — or, with an empty deque, steals the top chunk of the
// fullest victim, paying the Chase–Lev steal plus an IPI-class kick when
// the victim lives on another core. Each burst serializes on its core's
// free time through the scheduler, so same-core workers never overlap in
// virtual time, and the whole schedule depends only on clock arithmetic —
// host goroutine interleaving cannot touch it.
//
// The executor owns every burst on the worker cores for the duration of a
// launch, so the per-core free stamps are snapshot once, evolved locally
// (BurstStartAt/BurstEndAt), and published once at the end — zero
// scheduler lock round trips per event instead of the ~p+2 the unbatched
// loop paid. On top of that, after the chosen worker finishes a chunk it
// keeps draining in the same scan whenever it provably remains the
// argmin: every other worker's ready time is monotone during the launch,
// so "my new ready time beats the previous scan's runner-up (ties to the
// lower index)" guarantees a fresh scan would pick me again. Chunk order,
// steal decisions, per-chunk queue-delay observations, and halt/wake
// accounting are bit-identical to the one-event-per-scan loop.
//
// Exactly one of fn/red is non-nil; red accumulates each chunk into its
// own slot (slots[chunk.slot]), keeping reductions independent of which
// worker or core ran the chunk.
func (rt *Runtime) stealLaunch(n int, fn func(core.Env, int), red func(core.Env, int) float64, slots []float64) {
	chunks := chunkRanges(n)
	if len(chunks) == 0 {
		return
	}
	ws := rt.sworkers
	p := len(ws)
	for i, w := range ws {
		lo := i * len(chunks) / p
		hi := (i + 1) * len(chunks) / p
		w.deque.reset(chunks[lo:hi])
	}
	// The master pays one deque push per chunk, then publishes the launch.
	rt.sched.ChargeEnqueue(rt.env.Clock(), len(chunks))
	stamp := rt.env.Clock().Now()
	for _, w := range ws {
		w.env.Clock().SyncTo(stamp)
	}

	if rt.launchCores == nil {
		rt.launchCores = make([]machine.CoreID, p)
		rt.launchFrees = make([]cycles.Cycles, p)
		for i, w := range ws {
			rt.launchCores[i] = w.core
		}
	}
	frees := rt.launchFrees
	rt.sched.FreeSnapshot(rt.launchCores, frees)

	steals := 0
	remaining := len(chunks)
	for remaining > 0 {
		best, second := -1, -1
		var bestAt, secondAt cycles.Cycles
		for i, w := range ws {
			at := w.env.Clock().Now()
			if free := frees[i]; free > at {
				at = free
			}
			if best < 0 || at < bestAt {
				second, secondAt = best, bestAt
				best, bestAt = i, at
			} else if second < 0 || at < secondAt {
				second, secondAt = i, at
			}
		}
		w := ws[best]
		for {
			var c chunk
			if w.deque.size() > 0 {
				c = w.deque.popBottom()
			} else {
				v := rt.victimFor(best)
				c = v.deque.stealTop()
				rt.sched.ChargeSteal(w.env.Clock(), v.core != w.core)
				steals++
			}
			rt.sched.BurstStartAt(w.core, w.env.Clock(), w.tid, frees[best])
			rt.sched.ObserveQueueDelay(w.env.Clock().Now() - stamp)
			if red != nil {
				acc := 0.0
				for idx := c.lo; idx < c.hi; idx++ {
					acc += red(w.benv, idx)
				}
				slots[c.slot] = acc
			} else {
				for idx := c.lo; idx < c.hi; idx++ {
					fn(w.benv, idx)
				}
			}
			w.benv.flush()
			end := rt.sched.BurstEndAt(w.core, w.env.Clock())
			for j, other := range ws {
				if other.core == w.core && frees[j] < end {
					frees[j] = end
				}
			}
			remaining--
			if remaining == 0 {
				break
			}
			// Drain check: the whole point of batching. end is both w's
			// clock and its core's free stamp, so end is w's next ready
			// time.
			if second >= 0 && end > secondAt {
				break
			}
			if second >= 0 && end == secondAt && best > second {
				break
			}
		}
	}
	rt.sched.PublishFreeAt(rt.launchCores, frees)
	if steals > 0 {
		rt.mu.Lock()
		rt.Steals += steals
		rt.mu.Unlock()
	}

	// Completion barrier: the master observes one wake+wait pair per
	// worker and synchronizes past the slowest, exactly the semantics of
	// the mailbox pool's semaphore round.
	maxEnd := stamp
	for range ws {
		rt.coster.chargeWake(rt.env)
		rt.countSync()
		rt.coster.chargeWait(rt.env)
		rt.countSync()
	}
	for _, w := range ws {
		if now := w.env.Clock().Now(); now > maxEnd {
			maxEnd = now
		}
	}
	rt.env.Clock().SyncTo(maxEnd)
}

// victimFor picks the steal victim for thief: the worker with the most
// queued chunks, ties to the lowest id.
func (rt *Runtime) victimFor(thief int) *stealWorker {
	var victim *stealWorker
	for _, w := range rt.sworkers {
		if w.id == thief || w.deque.size() == 0 {
			continue
		}
		if victim == nil || w.deque.size() > victim.deque.size() {
			victim = w
		}
	}
	return victim
}
