package legion

import "testing"

func TestChunkRangesCanonical(t *testing.T) {
	if got := chunkRanges(0); got != nil {
		t.Errorf("chunkRanges(0) = %v, want nil", got)
	}
	if got := chunkRanges(-3); got != nil {
		t.Errorf("chunkRanges(-3) = %v, want nil", got)
	}
	for _, n := range []int{1, 63, 64, 65, 100, 4096, 8192, 1_000_000} {
		cs := chunkRanges(n)
		if len(cs) == 0 || len(cs) > maxChunks {
			t.Fatalf("n=%d: %d chunks, want 1..%d", n, len(cs), maxChunks)
		}
		// Chunks are contiguous, cover [0, n) exactly, and carry their own
		// slot index in order.
		next := 0
		for i, c := range cs {
			if c.lo != next || c.hi <= c.lo {
				t.Fatalf("n=%d chunk %d: [%d,%d) after %d", n, i, c.lo, c.hi, next)
			}
			if c.slot != i {
				t.Fatalf("n=%d chunk %d: slot %d", n, i, c.slot)
			}
			next = c.hi
		}
		if next != n {
			t.Fatalf("n=%d: chunks end at %d", n, next)
		}
		// No chunk smaller than minChunk unless n itself is.
		if n >= minChunk {
			for i, c := range cs {
				if c.hi-c.lo < minChunk/2 {
					t.Fatalf("n=%d chunk %d: size %d, degenerate", n, i, c.hi-c.lo)
				}
			}
		}
	}
	// The decomposition depends on n only — calling twice is identical.
	a, b := chunkRanges(7777), chunkRanges(7777)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("chunkRanges not a pure function of n")
		}
	}
}

func TestDequeOwnerAndThiefEnds(t *testing.T) {
	var d deque
	d.reset(chunkRanges(64 * 6)) // 6 chunks
	if d.size() != 6 {
		t.Fatalf("size = %d", d.size())
	}
	bottom := d.popBottom()
	if bottom.slot != 5 {
		t.Errorf("owner pops slot %d, want 5 (bottom)", bottom.slot)
	}
	top := d.stealTop()
	if top.slot != 0 {
		t.Errorf("thief takes slot %d, want 0 (top)", top.slot)
	}
	if d.size() != 4 {
		t.Errorf("size after pop+steal = %d, want 4", d.size())
	}
}
