package legion_test

import (
	"testing"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/legion"
	"multiverse/internal/vfs"
)

// withRuntime runs fn against a legion runtime in the given world.
func withRuntime(t *testing.T, world core.World, workers int, fn func(env core.Env, rt *legion.Runtime)) *core.System {
	t.Helper()
	sys, err := bench.NewSystemForWorld(world, vfs.New(), "legion")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		rt, rerr := legion.New(env, workers)
		if rerr != nil {
			t.Error(rerr)
			return 1
		}
		defer rt.Shutdown()
		fn(env, rt)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestIndexLaunchCoversRange(t *testing.T) {
	withRuntime(t, core.WorldNative, 3, func(env core.Env, rt *legion.Runtime) {
		n := 100
		seen := make([]int, n)
		rt.IndexLaunch(n, func(w core.Env, i int) { seen[i]++ })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d visited %d times", i, c)
			}
		}
		if rt.Launches != 1 {
			t.Errorf("launches = %d", rt.Launches)
		}
	})
}

func TestReduceSums(t *testing.T) {
	withRuntime(t, core.WorldNative, 4, func(env core.Env, rt *legion.Runtime) {
		got := rt.Reduce(1000, func(w core.Env, i int) float64 { return float64(i) })
		if got != 499500 {
			t.Errorf("reduce = %v", got)
		}
	})
}

func TestSyncBindingByWorld(t *testing.T) {
	withRuntime(t, core.WorldNative, 2, func(env core.Env, rt *legion.Runtime) {
		if rt.SyncBinding() != "futex" {
			t.Errorf("native binding = %s", rt.SyncBinding())
		}
	})
	withRuntime(t, core.WorldHRT, 2, func(env core.Env, rt *legion.Runtime) {
		if rt.SyncBinding() != "aerokernel-events" {
			t.Errorf("HRT binding = %s", rt.SyncBinding())
		}
	})
}

func TestHPCGConvergesEverywhere(t *testing.T) {
	for _, world := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
		world := world
		t.Run(world.String(), func(t *testing.T) {
			withRuntime(t, world, 4, func(env core.Env, rt *legion.Runtime) {
				res, err := legion.RunHPCG(rt, env, 32768, 60)
				if err != nil {
					t.Fatal(err)
				}
				if res.Residual > 1e-6 {
					t.Errorf("residual = %v after %d iterations", res.Residual, res.Iterations)
				}
				if err := legion.VerifySolution(res.X, 1e-6); err != nil {
					t.Error(err)
				}
				if res.SyncOps == 0 {
					t.Error("no synchronization recorded")
				}
				t.Logf("%s: %.3f ms virtual, %d sync ops, binding=%s",
					world, res.Cycles.Nanoseconds()/1e6, res.SyncOps, res.SyncBinding)
			})
		})
	}
}

// TestHPCGHRTBeatsNative reproduces the paper's section 2 claim: with
// synchronization bound to AeroKernel events, the parallel runtime
// outperforms its Linux self on the same workload.
func TestHPCGHRTBeatsNative(t *testing.T) {
	measure := func(world core.World) float64 {
		var secs float64
		withRuntime(t, world, 4, func(env core.Env, rt *legion.Runtime) {
			res, err := legion.RunHPCG(rt, env, 32768, 60)
			if err != nil {
				t.Fatal(err)
			}
			secs = res.Cycles.Seconds()
		})
		return secs
	}
	native := measure(core.WorldNative)
	hrt := measure(core.WorldHRT)
	speedup := native / hrt
	t.Logf("HPCG: native %.5fs, HRT %.5fs — speedup %.2fx", native, hrt, speedup)
	if speedup < 1.05 {
		t.Errorf("HRT speedup %.3fx; want visible improvement (paper: up to 1.2-1.4x)", speedup)
	}
	if speedup > 3.0 {
		t.Errorf("HRT speedup %.3fx implausibly large", speedup)
	}
}

func TestShutdownIdempotentAndJoins(t *testing.T) {
	withRuntime(t, core.WorldNative, 2, func(env core.Env, rt *legion.Runtime) {
		rt.IndexLaunch(10, func(core.Env, int) {})
		rt.Shutdown()
		rt.Shutdown() // second call is a no-op
	})
}

func TestNewRejectsZeroWorkers(t *testing.T) {
	sys, err := bench.NewSystemForWorld(core.WorldNative, vfs.New(), "legion0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		if _, rerr := legion.New(env, 0); rerr == nil {
			t.Error("zero workers accepted")
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
}
