package legion_test

import (
	"math"
	"testing"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/legion"
	"multiverse/internal/vfs"
)

// withStealRuntime runs fn against a scheduler-mode legion runtime (per-core
// run queues + Chase–Lev work stealing over 4 HRT cores).
func withStealRuntime(t *testing.T, name string, workers int, fn func(env core.Env, rt *legion.Runtime)) {
	t.Helper()
	sys, err := bench.NewSystemForWorldCfg(core.WorldHRT, vfs.New(), name, bench.RunConfig{
		Scheduler: true, HRTCoreCount: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		rt, rerr := legion.New(env, workers)
		if rerr != nil {
			t.Error(rerr)
			return 1
		}
		defer rt.Shutdown()
		fn(env, rt)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStealIndexLaunchCoversRange(t *testing.T) {
	withStealRuntime(t, "steal-cover", 6, func(env core.Env, rt *legion.Runtime) {
		n := 10_000
		seen := make([]int, n)
		rt.IndexLaunch(n, func(w core.Env, i int) { seen[i]++ })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d visited %d times", i, c)
			}
		}
	})
}

// TestStealReduceMatchesSerial is the per-task accumulator-slot guarantee:
// the reduction is combined in slot order over a decomposition that depends
// only on n, so a stealing run with many workers is bit-identical to a
// serial 1-worker run — floating-point non-associativity cannot leak the
// steal pattern into the result.
func TestStealReduceMatchesSerial(t *testing.T) {
	// Harmonic-like terms: reassociating this sum changes its low bits.
	term := func(w core.Env, i int) float64 { return 1.0 / float64(i+1) }
	n := 50_000

	reduceWith := func(name string, workers int) float64 {
		var v float64
		withStealRuntime(t, name, workers, func(env core.Env, rt *legion.Runtime) {
			v = rt.Reduce(n, term)
		})
		return v
	}

	serial := reduceWith("steal-red-1", 1)
	parallel := reduceWith("steal-red-8", 8)
	if math.Float64bits(serial) != math.Float64bits(parallel) {
		t.Errorf("reduce differs: 1 worker %.17g (%#x), 8 workers %.17g (%#x)",
			serial, math.Float64bits(serial), parallel, math.Float64bits(parallel))
	}

	// And the value is actually the sum.
	want := 0.0
	for i := n - 1; i >= 0; i-- {
		want += 1.0 / float64(i+1)
	}
	if math.Abs(serial-want) > 1e-9 {
		t.Errorf("reduce = %v, want about %v", serial, want)
	}
}

func TestStealImbalancedWorkSteals(t *testing.T) {
	withStealRuntime(t, "steal-imbalance", 4, func(env core.Env, rt *legion.Runtime) {
		// Cost ramps with the index: the workers owning the tail deques
		// fall behind and the early finishers steal from them.
		for round := 0; round < 3; round++ {
			rt.IndexLaunch(4096, func(w core.Env, i int) {
				w.Compute(cycles.Cycles(20 + i/4))
			})
		}
		if rt.Steals == 0 {
			t.Error("imbalanced launch recorded no steals")
		}
	})
}
