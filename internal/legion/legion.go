// Package legion is a miniature task-parallel runtime in the mould of the
// Legion runtime the paper hand-ported to Nautilus (section 2): a master
// that launches data-parallel index tasks onto a pool of worker threads
// with barrier-style completion, whose synchronization primitives are the
// runtime's hot spot.
//
// The runtime is world-aware in exactly the way the HRT model encourages:
// on a legacy OS its synchronization costs futex system calls and context
// switches; inside an HRT the same operations bind to the AeroKernel's
// event primitives, which are orders of magnitude cheaper (the source of
// the paper's reported HPCG speedups — "up to 20% for the Intel Xeon Phi,
// and up to 40%" on x64).
package legion

import (
	"fmt"
	"sync"

	"multiverse/internal/aerokernel"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/scheme"
)

// syncCoster charges the cost of one blocking wait or one wakeup in
// whatever world the runtime landed in.
type syncCoster interface {
	chargeWait(env core.Env)
	chargeWake(env core.Env)
	name() string
}

// futexCoster is the legacy path: every wait and wake crosses the kernel.
type futexCoster struct{}

func (futexCoster) chargeWait(env core.Env) {
	env.Syscall(linuxabi.Call{Num: linuxabi.SysFutex})
}
func (futexCoster) chargeWake(env core.Env) {
	env.Syscall(linuxabi.Call{Num: linuxabi.SysFutex})
}
func (futexCoster) name() string { return "futex" }

// akEventCoster binds to the AeroKernel event functions through direct
// calls — no kernel/user crossing, no forwarding.
type akEventCoster struct {
	ak scheme.AKCaller
}

func (c akEventCoster) chargeWait(env core.Env) {
	if _, err := c.ak.AKCall("nk_event_wait"); err != nil {
		panic(fmt.Sprintf("legion: nk_event_wait: %v", err))
	}
}
func (c akEventCoster) chargeWake(env core.Env) {
	if _, err := c.ak.AKCall("nk_event_signal"); err != nil {
		panic(fmt.Sprintf("legion: nk_event_signal: %v", err))
	}
}
func (akEventCoster) name() string { return "aerokernel-events" }

// sem is a counting semaphore that carries virtual-time stamps: a Pend
// synchronizes the waiter's clock past the corresponding Post.
type sem struct {
	ch chan cycles.Cycles
}

func newSem(capacity int) *sem { return &sem{ch: make(chan cycles.Cycles, capacity)} }

func (s *sem) post(env core.Env, c syncCoster) {
	c.chargeWake(env)
	s.ch <- env.Clock().Now()
}

func (s *sem) pend(env core.Env, c syncCoster) {
	c.chargeWait(env)
	stamp := <-s.ch
	env.Clock().SyncTo(stamp)
}

// task is one contiguous index-range assignment.
type task struct {
	fn    func(env core.Env, index int)
	lo    int
	hi    int
	stamp cycles.Cycles
}

// batchEnv wraps a worker Env to defer Compute charges: tight per-element
// kernels (dot products, AXPYs) charge a few cycles per index, and paying
// two atomic adds per element dominates the host profile. Charges
// accumulate in a plain field and flush as one Compute at chunk end — and
// before anything that could observe the clock — so virtual time at every
// observation point is bit-identical to the unbatched schedule.
type batchEnv struct {
	core.Env
	pending cycles.Cycles
}

func (b *batchEnv) flush() {
	if b.pending > 0 {
		b.Env.Compute(b.pending)
		b.pending = 0
	}
}

func (b *batchEnv) Compute(c cycles.Cycles) { b.pending += c }

func (b *batchEnv) Clock() *cycles.Clock { b.flush(); return b.Env.Clock() }

func (b *batchEnv) Syscall(call linuxabi.Call) linuxabi.Result {
	b.flush()
	return b.Env.Syscall(call)
}

func (b *batchEnv) VDSO(num linuxabi.Sysno) (uint64, linuxabi.Errno) {
	b.flush()
	return b.Env.VDSO(num)
}

func (b *batchEnv) Touch(addr uint64, write bool) error {
	b.flush()
	return b.Env.Touch(addr, write)
}

func (b *batchEnv) CheckTimer() bool { b.flush(); return b.Env.CheckTimer() }

// worker is one runtime thread.
type worker struct {
	id   int
	mail chan task
	done *sem
	env  core.Env
	join core.PthreadJoin
}

// Runtime is the mini-Legion instance.
type Runtime struct {
	env     core.Env
	coster  syncCoster
	workers []*worker
	done    *sem
	mu      sync.Mutex
	closed  bool

	// Scheduler mode (core.Options.Scheduler): index tasks run on
	// persistent scheduler-placed worker contexts through the Chase–Lev
	// work-stealing executor (steal.go) instead of the mailbox pool.
	sched    *aerokernel.Scheduler
	sworkers []*stealWorker
	// Per-launch scratch for the batched executor: worker core ids and the
	// locally evolved per-core free stamps (indexed by worker, workers on
	// the same core share a value). Allocated once on first launch.
	launchCores []machine.CoreID
	launchFrees []cycles.Cycles

	// Launches counts index launches (for reporting).
	Launches int
	// SyncOps counts semaphore operations (the hot-spot metric).
	SyncOps int
	// Steals counts work-stealing events (scheduler mode only).
	Steals int
}

// New starts a runtime with the given number of worker threads, created
// through env's pthread surface (so under Multiverse each worker is an
// HRT thread in its own execution group). The synchronization binding is
// chosen by capability: AeroKernel events when available, futexes
// otherwise — the runtime-developer decision the accelerator model is
// about.
func New(env core.Env, nworkers int) (*Runtime, error) {
	if nworkers < 1 {
		return nil, fmt.Errorf("legion: need at least one worker")
	}
	rt := &Runtime{env: env, done: newSem(nworkers)}
	if ak, ok := env.(scheme.AKCaller); ok {
		rt.coster = akEventCoster{ak: ak}
	} else {
		rt.coster = futexCoster{}
	}

	// Under the AeroKernel scheduler the pool is nested scheduler-placed
	// threads driven by the work-stealing executor; no execution groups,
	// no mailbox goroutines.
	if host, ok := env.(core.SchedulerHost); ok && host.Scheduler() != nil {
		rt.sched = host.Scheduler()
		if err := rt.spawnStealWorkers(host, nworkers); err != nil {
			return nil, fmt.Errorf("legion: spawning scheduler workers: %w", err)
		}
		return rt, nil
	}

	ready := make(chan *worker, nworkers)
	for i := 0; i < nworkers; i++ {
		w := &worker{id: i, mail: make(chan task, 1), done: rt.done}
		join, err := env.PthreadCreate(func(wenv core.Env) {
			w.env = wenv
			ready <- w
			benv := &batchEnv{Env: wenv}
			for t := range w.mail {
				wenv.Clock().SyncTo(t.stamp)
				for idx := t.lo; idx < t.hi; idx++ {
					t.fn(benv, idx)
				}
				benv.flush()
				w.done.post(wenv, rt.coster)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("legion: spawning worker %d: %w", i, err)
		}
		w.join = join
		rt.workers = append(rt.workers, w)
	}
	for range rt.workers {
		<-ready
	}
	return rt, nil
}

// SyncBinding names the synchronization primitive in use.
func (rt *Runtime) SyncBinding() string { return rt.coster.name() }

// Workers returns the pool size.
func (rt *Runtime) Workers() int {
	if rt.sched != nil {
		return len(rt.sworkers)
	}
	return len(rt.workers)
}

// beginLaunch is the shared launch prologue: closed check + accounting.
func (rt *Runtime) beginLaunch() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		panic("legion: IndexLaunch after Shutdown")
	}
	rt.Launches++
	rt.mu.Unlock()
}

// IndexLaunch runs fn(i) for every i in [0, n), split contiguously across
// the workers, and blocks until all complete — one bulk-synchronous step.
// Under the scheduler the static split becomes chunked partitioning with
// work stealing.
func (rt *Runtime) IndexLaunch(n int, fn func(env core.Env, index int)) {
	rt.beginLaunch()
	if rt.sched != nil {
		rt.stealLaunch(n, fn, nil, nil)
		return
	}

	p := len(rt.workers)
	for i, w := range rt.workers {
		lo := i * n / p
		hi := (i + 1) * n / p
		rt.coster.chargeWake(rt.env)
		rt.countSync()
		w.mail <- task{fn: fn, lo: lo, hi: hi, stamp: rt.env.Clock().Now()}
	}
	for range rt.workers {
		rt.done.pend(rt.env, rt.coster)
		rt.countSync()
	}
}

func (rt *Runtime) countSync() {
	rt.mu.Lock()
	rt.SyncOps++
	rt.mu.Unlock()
}

// Reduce runs fn over [0, n) and returns the sum — the dot-product shape
// every CG iteration needs twice. Every task owns an explicit accumulator
// slot indexed by the *task*, never by the worker that happened to execute
// it: under stealing, worker identity no longer equals "who computed
// what". Slots are combined in slot order, so for a given decomposition
// the result is bit-identical regardless of which cores ran which tasks
// or in what order.
func (rt *Runtime) Reduce(n int, fn func(env core.Env, index int) float64) float64 {
	if rt.sched != nil {
		chunks := chunkRanges(n)
		slots := make([]float64, len(chunks))
		rt.beginLaunch()
		rt.stealLaunch(n, nil, fn, slots)
		total := 0.0
		for _, v := range slots {
			total += v
		}
		return total
	}
	// Static split: one task (and one slot) per worker index; the task id
	// doubles as the launch index.
	p := len(rt.workers)
	slots := make([]float64, p)
	rt.IndexLaunch(p, func(env core.Env, tidx int) {
		lo := tidx * n / p
		hi := (tidx + 1) * n / p
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += fn(env, i)
		}
		slots[tidx] = acc
	})
	total := 0.0
	for _, v := range slots {
		total += v
	}
	return total
}

// Shutdown stops the workers and joins them.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	for _, w := range rt.sworkers {
		w.release()
	}
	for _, w := range rt.workers {
		close(w.mail)
	}
	for _, w := range rt.workers {
		w.join()
	}
}
