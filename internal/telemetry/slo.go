package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SLOTarget is one latency objective: "quantile Q of the histograms
// matching Metric must not exceed MaxCycles". Metric matches histogram
// names exactly, or as a prefix when it ends in '*' — the per-group
// syscall histograms are named "slo.g<group>.<syscall>", so
// "slo.*.write" -style matching is spelled "slo.g" prefixes plus Call,
// and the common cases are:
//
//	{"metric": "slo.g1.write", "quantile": 0.99, "max_cycles": 50000}
//	{"metric": "slo.*", "quantile": 0.999, "max_cycles": 200000}
type SLOTarget struct {
	Metric    string  `json:"metric"`
	Quantile  float64 `json:"quantile"`
	MaxCycles uint64  `json:"max_cycles"`
}

// SLOViolation reports one histogram that missed its target.
type SLOViolation struct {
	Metric   string
	Target   SLOTarget
	Observed uint64
	Count    uint64
}

func (v SLOViolation) String() string {
	return fmt.Sprintf("SLO VIOLATION %s p%g=%d cycles > max %d (n=%d, spec %s)",
		v.Metric, v.Target.Quantile*100, v.Observed, v.Target.MaxCycles, v.Count, v.Target.Metric)
}

// ParseSLOSpec parses a JSON array of SLOTarget entries.
func ParseSLOSpec(data []byte) ([]SLOTarget, error) {
	var spec []SLOTarget
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("parse SLO spec: %w", err)
	}
	for i, t := range spec {
		if t.Metric == "" {
			return nil, fmt.Errorf("SLO spec entry %d: missing metric", i)
		}
		if t.Quantile <= 0 || t.Quantile > 1 {
			return nil, fmt.Errorf("SLO spec entry %d (%s): quantile %g out of (0,1]", i, t.Metric, t.Quantile)
		}
	}
	return spec, nil
}

// matchMetric reports whether pattern matches name. A trailing '*'
// makes the pattern a prefix match; otherwise it is exact.
func matchMetric(pattern, name string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == name
}

// CheckSLOs evaluates every target against the snapshot's histograms
// and returns the violations, metric-name-sorted. Empty histograms
// never violate (quantile 0); targets that match no histogram are
// silently satisfied — a spec can cover workloads that exercise only
// some syscalls.
func CheckSLOs(s *MetricsSnapshot, spec []SLOTarget) []SLOViolation {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []SLOViolation
	for _, t := range spec {
		for _, n := range names {
			if !matchMetric(t.Metric, n) {
				continue
			}
			h := s.Histograms[n]
			obs := h.Quantile(t.Quantile)
			if obs > t.MaxCycles {
				out = append(out, SLOViolation{Metric: n, Target: t, Observed: obs, Count: h.Count})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Target.Quantile < out[j].Target.Quantile
	})
	return out
}

// SLOPrefix is the histogram-name prefix of the per-group,
// per-syscall-kind latency histograms recorded at the HRT syscall
// boundary.
const SLOPrefix = "slo."

// SLOReport renders the per-group per-syscall latency histograms as a
// p50/p99/p999 table — the end-of-run report behind `mvrun -slo` and
// `mvtool slo -report`. Only histograms under SLOPrefix appear.
func SLOReport(s *MetricsSnapshot) string {
	if s == nil {
		return ""
	}
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		if strings.HasPrefix(n, SLOPrefix) {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %10s %10s %10s %10s %10s\n",
		"slo histogram", "n", "mean", "p50", "p99", "p999")
	for _, n := range names {
		h := s.Histograms[n]
		mean := uint64(0)
		if h.Count > 0 {
			mean = h.Sum / h.Count
		}
		fmt.Fprintf(&b, "%-40s %10d %10d %10d %10d %10d\n",
			n, h.Count, mean,
			h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999))
	}
	return b.String()
}
