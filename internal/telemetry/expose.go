package telemetry

import (
	"net/http"
)

// ExpositionHandler serves the live observability plane over HTTP — the
// first brick of mvserve. Routes:
//
//	/metrics  Prometheus text exposition of the registry
//	/healthz  liveness probe ("ok")
//	/trace    on-demand Chrome trace snapshot of completed spans
//	/flight   current flight-recorder ring as plain text
//
// Any argument may be nil; the corresponding route degrades to an
// empty-but-valid response so a probe never 500s just because a run
// was started without tracing armed.
func ExpositionHandler(reg *Registry, tr *Tracer, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !tr.Enabled() {
			// Valid, empty trace document: run started without -trace.
			w.Write([]byte("{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ns\"}\n"))
			return
		}
		tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rec == nil {
			w.Write([]byte("flight recorder disabled\n"))
			return
		}
		rec.DumpTo(w, "on-demand /flight snapshot")
	})
	return mux
}
