package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"multiverse/internal/cycles"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	tk := Track{Core: 1, Name: "hrt"}

	root := tr.Begin(tk, "test", "root", 100)
	child := tr.Begin(tk, "test", "child", 150)
	grand := tr.Begin(tk, "test", "grand", 160)

	if root.Depth != 0 || child.Depth != 1 || grand.Depth != 2 {
		t.Errorf("depths = %d/%d/%d, want 0/1/2", root.Depth, child.Depth, grand.Depth)
	}
	if child.Parent() != root || grand.Parent() != child {
		t.Error("parent chain broken")
	}

	grand.EndAt(170)
	child.EndAt(180)

	// A sibling opened after the child closed nests under root again.
	sib := tr.Begin(tk, "test", "sibling", 190)
	if sib.Depth != 1 || sib.Parent() != root {
		t.Errorf("sibling depth=%d parent=%v, want depth 1 under root", sib.Depth, sib.Parent())
	}
	sib.EndAt(200)
	root.EndAt(210)

	// Spans on another track do not nest under this one.
	other := tr.Begin(Track{Core: 2, Name: "ros:main"}, "test", "elsewhere", 105)
	if other.Depth != 0 || other.Parent() != nil {
		t.Error("tracks must have independent stacks")
	}
	other.EndAt(120)
}

func TestSpanOrderingCanonical(t *testing.T) {
	// Regardless of completion order, Spans() sorts by start time, then
	// track, then depth — the order exports depend on.
	tr := New()
	a := tr.Begin(Track{1, "hrt"}, "t", "outer", 100)
	b := tr.Begin(Track{1, "hrt"}, "t", "inner", 100) // same start, deeper
	c := tr.Begin(Track{0, "ros:main"}, "t", "early", 50)
	b.EndAt(150)
	a.EndAt(200)
	c.EndAt(60)

	got := tr.Spans()
	want := []string{"early", "outer", "inner"}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i, sp := range got {
		if sp.Name != want[i] {
			t.Errorf("span[%d] = %q, want %q", i, sp.Name, want[i])
		}
	}
}

func TestSpanEndOutOfOrder(t *testing.T) {
	// Ending an outer span before its inner one must not wedge the track.
	tr := New()
	tk := Track{0, "ros:main"}
	outer := tr.Begin(tk, "t", "outer", 10)
	inner := tr.Begin(tk, "t", "inner", 20)
	outer.EndAt(30)
	inner.EndAt(40)

	next := tr.Begin(tk, "t", "next", 50)
	if next.Depth != 0 {
		t.Errorf("track stack not drained: next.Depth = %d", next.Depth)
	}
	next.EndAt(60)

	// EndAt clamps to Start: a span can never have negative extent.
	back := tr.Begin(tk, "t", "back", 100)
	back.EndAt(90)
	if back.Duration() != 0 {
		t.Errorf("clamped duration = %d, want 0", back.Duration())
	}

	// Double-end is a no-op.
	back.EndAt(200)
	if back.End != 100 {
		t.Errorf("double EndAt moved End to %d", back.End)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Begin(Track{0, "x"}, "t", "n", 1)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All span methods must tolerate the nil result.
	sp.SetAttr("k", 1)
	sp.LinkOut(2)
	sp.LinkIn(3)
	sp.EndAt(4)
	if sp.Duration() != 0 || sp.Parent() != nil {
		t.Error("nil span accessors not zero")
	}
	if tr.Spans() != nil || tr.Tracks() != nil {
		t.Error("nil tracer yielded spans/tracks")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewRegistry().Histogram("h", []cycles.Cycles{10, 100, 1000})

	// A value equal to an upper edge lands in that bucket; one past it
	// lands in the next.
	h.Observe(10)   // bucket 0 (<=10)
	h.Observe(11)   // bucket 1
	h.Observe(100)  // bucket 1 (<=100)
	h.Observe(101)  // bucket 2
	h.Observe(1000) // bucket 2
	h.Observe(1001) // overflow
	h.Observe(0)    // bucket 0

	want := []uint64{2, 2, 2, 1}
	for i, n := range want {
		if got := h.BucketCount(i); got != n {
			t.Errorf("bucket[%d] = %d, want %d", i, got, n)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if h.Sum() != 10+11+100+101+1000+1001 {
		t.Errorf("Sum = %d", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q", []cycles.Cycles{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket 0
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // bucket 2
	}
	if got := h.Quantile(0.50); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000", got)
	}

	// Overflow observations report the last edge, deterministically.
	h2 := NewRegistry().Histogram("q2", []cycles.Cycles{10})
	h2.Observe(999)
	if got := h2.Quantile(0.5); got != 10 {
		t.Errorf("overflow quantile = %d, want last edge 10", got)
	}

	var empty *Histogram
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Error("nil histogram not zero")
	}
}

func TestRegistryNilAndDumpOrder(t *testing.T) {
	var r *Registry
	// Nil registries hand out nil instruments whose methods are no-ops.
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.LatencyHistogram("h").Observe(5)
	if r.Dump() != "" {
		t.Error("nil registry dumped output")
	}

	reg := NewRegistry()
	reg.Counter("zz.last").Inc()
	reg.Counter("aa.first").Add(3)
	reg.Gauge("mid").Set(7)
	reg.LatencyHistogram("lat").Observe(100)
	dump := reg.Dump()
	if strings.Index(dump, "aa.first") > strings.Index(dump, "zz.last") {
		t.Errorf("dump not name-sorted:\n%s", dump)
	}
	for _, want := range []string{"aa.first", "zz.last", "mid", "lat"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Same registry contents dump identically every time.
	if dump != reg.Dump() {
		t.Error("Dump not deterministic")
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := New()
	tk := Track{Core: 1, Name: "hrt"}
	root := tr.Begin(tk, "test", "outer", 2200) // 1 us at 2.2 GHz
	root.SetAttr("addr", 0xdead)
	root.LinkOut(42)
	root.EndAt(4400)
	svc := tr.Begin(Track{Core: 0, Name: "ros:main"}, "test", "service", 3300)
	svc.LinkIn(42)
	svc.EndAt(5500)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"ph":"X"`,                 // complete events
		`"ph":"M"`, "process_name", // track metadata
		`"ph":"s"`, `"ph":"f"`, // flow link
		`"name":"outer"`, `"name":"service"`,
		`"cycles":2200`, // exact value survives in args
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}

	// Byte-identical on re-export: nothing in the writer depends on map
	// order or wall-clock time.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-export differs")
	}
}
