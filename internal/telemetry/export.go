package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// HistogramSnapshot is the exported shape of one histogram: enough to
// recompute any bucket-edge quantile offline (mvtool slo works from
// this, not from a live registry).
type HistogramSnapshot struct {
	Edges  []uint64 `json:"edges"`
	Counts []uint64 `json:"counts"` // len(Edges)+1, last = overflow
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Quantile mirrors Histogram.Quantile over the exported buckets.
func (h *HistogramSnapshot) Quantile(p float64) uint64 {
	if h == nil || h.Count == 0 || len(h.Edges) == 0 {
		return 0
	}
	target := uint64(p * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Edges) {
				return h.Edges[i]
			}
			return h.Edges[len(h.Edges)-1]
		}
	}
	return h.Edges[len(h.Edges)-1]
}

// MetricsSnapshot is a point-in-time copy of a Registry in a stable,
// machine-readable shape. encoding/json sorts map keys, so marshalling
// a snapshot of a deterministic run is byte-stable.
type MetricsSnapshot struct {
	Counters   map[string]uint64             `json:"counters"`
	Gauges     map[string]uint64             `json:"gauges"`
	Histograms map[string]*HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Nil registries snapshot
// as empty (never nil maps, so the JSON shape is constant).
func (r *Registry) Snapshot() *MetricsSnapshot {
	s := &MetricsSnapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]uint64),
		Histograms: make(map[string]*HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.EachCounter(func(name string, v uint64) { s.Counters[name] = v })
	r.mu.Lock()
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	ghandles := make(map[string]*Gauge, len(gnames))
	for _, n := range gnames {
		ghandles[n] = r.gauges[n]
	}
	r.mu.Unlock()
	for _, n := range gnames {
		s.Gauges[n] = ghandles[n].Value()
	}
	r.EachHistogram(func(name string, h *Histogram) {
		edges := h.Edges()
		hs := &HistogramSnapshot{
			Edges:  make([]uint64, len(edges)),
			Counts: make([]uint64, len(edges)+1),
			Sum:    uint64(h.Sum()),
			Count:  h.Count(),
		}
		for i, e := range edges {
			hs.Edges[i] = uint64(e)
		}
		for i := range hs.Counts {
			hs.Counts[i] = h.BucketCount(i)
		}
		s.Histograms[name] = hs
	})
	return s
}

// MarshalIndent renders the snapshot as indented JSON with a trailing
// newline — the `mvrun -metrics-json` file format.
func (s *MetricsSnapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseMetricsSnapshot parses the `mvrun -metrics-json` format.
func ParseMetricsSnapshot(data []byte) (*MetricsSnapshot, error) {
	var s MetricsSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parse metrics snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]uint64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]*HistogramSnapshot)
	}
	return &s, nil
}

// promName rewrites a dotted metric name into the Prometheus charset
// and prefixes the exporter namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("mv_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as plain
// samples, histograms as cumulative `le` bucket series with _sum and
// _count. Output is name-sorted and deterministic for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder

	cnames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}

	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n])
	}

	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i, e := range h.Edges {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, e, cum)
		}
		cum += h.Counts[len(h.Edges)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
