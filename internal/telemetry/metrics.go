package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
)

// Registry is a named collection of counters, gauges, and histograms.
// Instrument lookup takes the registry lock; the instruments themselves
// are lock-free atomics, so recording on a hot path costs one atomic
// add once the handle is cached. A nil *Registry is the no-op default:
// it hands out nil instruments whose methods return immediately.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins value.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(n uint64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax ratchets the gauge up to n if n exceeds the stored value — the
// peak-tracking write (density.groups.peak). Lock-free CAS loop; lower
// values leave the gauge untouched.
func (g *Gauge) SetMax(n uint64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cycle histogram. An observation lands in
// the first bucket whose upper edge is >= the value; values above the
// last edge land in the overflow bucket. Buckets are fixed at creation
// so two runs always dump identical shapes.
type Histogram struct {
	edges  []cycles.Cycles // ascending upper edges
	counts []atomic.Uint64 // len(edges)+1, last = overflow
	sum    atomic.Uint64
	n      atomic.Uint64
}

// DefaultLatencyBuckets covers the repository's latency range: from the
// ~20-cycle wrapper prologue through the ~33K-cycle merger up to
// millisecond-scale boots, in powers of two.
func DefaultLatencyBuckets() []cycles.Cycles {
	return []cycles.Cycles{
		64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
		65536, 131072, 262144, 524288, 1048576, 4194304, 16777216,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v cycles.Cycles) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.edges), func(i int) bool { return h.edges[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(uint64(v))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observations, in cycles.
func (h *Histogram) Sum() cycles.Cycles {
	if h == nil {
		return 0
	}
	return cycles.Cycles(h.sum.Load())
}

// Mean returns the average observation, in cycles (0 when empty).
func (h *Histogram) Mean() cycles.Cycles {
	if h.Count() == 0 {
		return 0
	}
	return h.Sum() / cycles.Cycles(h.Count())
}

// Edges returns the bucket upper edges.
func (h *Histogram) Edges() []cycles.Cycles {
	if h == nil {
		return nil
	}
	return append([]cycles.Cycles(nil), h.edges...)
}

// BucketCount returns the count in bucket i (i == len(Edges()) is the
// overflow bucket).
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Quantile returns the upper edge of the bucket containing the p-th
// quantile (0 < p <= 1). Observations in the overflow bucket report the
// histogram's mean-capped maximum edge; an empty histogram reports 0.
// Bucket-edge quantiles are coarse but deterministic, which is the
// property the reports need.
func (h *Histogram) Quantile(p float64) cycles.Cycles {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := uint64(p * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.edges) {
				return h.edges[i]
			}
			// Overflow bucket: no upper edge; report the last edge so
			// the value is still deterministic.
			return h.edges[len(h.edges)-1]
		}
	}
	return h.edges[len(h.edges)-1]
}

// Counter returns (creating if needed) the named counter. Nil registries
// return nil, which is safe to use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The edges
// apply only on first creation; later callers share the existing
// instrument regardless of the edges they pass.
func (r *Registry) Histogram(name string, edges []cycles.Cycles) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if len(edges) == 0 {
			edges = DefaultLatencyBuckets()
		}
		h = &Histogram{
			edges:  append([]cycles.Cycles(nil), edges...),
			counts: make([]atomic.Uint64, len(edges)+1),
		}
		r.hists[name] = h
	}
	return h
}

// LatencyHistogram is Histogram with the default latency buckets.
func (r *Registry) LatencyHistogram(name string) *Histogram {
	return r.Histogram(name, nil)
}

// EachCounter visits the counters in name order.
func (r *Registry) EachCounter(fn func(name string, v uint64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counts))
	for n := range r.counts {
		names = append(names, n)
	}
	handles := make(map[string]*Counter, len(names))
	for _, n := range names {
		handles[n] = r.counts[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		fn(n, handles[n].Value())
	}
}

// EachHistogram visits the histograms in name order.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	handles := make(map[string]*Histogram, len(names))
	for _, n := range names {
		handles[n] = r.hists[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		fn(n, handles[n])
	}
}

// Dump renders the registry as sorted plain text, one instrument per
// line — the `mvrun --metrics` output.
func (r *Registry) Dump() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.EachCounter(func(name string, v uint64) {
		fmt.Fprintf(&b, "counter   %-40s %12d\n", name, v)
	})
	r.mu.Lock()
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	ghandles := make(map[string]*Gauge, len(gnames))
	for _, n := range gnames {
		ghandles[n] = r.gauges[n]
	}
	r.mu.Unlock()
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Fprintf(&b, "gauge     %-40s %12d\n", n, ghandles[n].Value())
	}
	r.EachHistogram(func(name string, h *Histogram) {
		fmt.Fprintf(&b, "histogram %-40s n=%d sum=%d mean=%d p50=%d p90=%d p99=%d\n",
			name, h.Count(), uint64(h.Sum()), uint64(h.Mean()),
			uint64(h.Quantile(0.50)), uint64(h.Quantile(0.90)), uint64(h.Quantile(0.99)))
	})
	return b.String()
}
