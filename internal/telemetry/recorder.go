package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"multiverse/internal/cycles"
)

// EventCode identifies one kind of flight-recorder event. Codes are
// stable small integers so a recorded ring is cheap to fill and the
// dump format is greppable.
type EventCode uint8

// Flight-recorder event codes. The Site/A/B meanings per code are
// documented next to each constant; Req is always the causal request id
// (0 when the event is not attributable to a single syscall).
const (
	RecNone            EventCode = iota
	RecDoorbell                  // channel forward posted; Site=channel, A=seq, B=event kind
	RecDeliver                   // partner picked up an envelope; Site=channel, A=seq
	RecComplete                  // envelope completed + reply sent; Site=channel, A=seq
	RecRetransmit                // sender timed out and re-sent; Site=channel, A=seq, B=attempt
	RecDedup                     // receiver dropped a duplicate; Site=channel, A=seq
	RecCorrupt                   // receiver dropped a corrupt frame; Site=channel, A=seq
	RecSyncCall                  // sync-channel invoke; Site=channel, A=seq, B=retransmits
	RecTierLocal                 // router served locally; Site=hrt core, A=syscall num
	RecTierCache                 // router cache hit; Site=hrt core, A=syscall num
	RecPromote                   // router promoted channel to async; Site=hrt core
	RecDemote                    // router demoted channel to sync; Site=hrt core
	RecDemoteLossy               // fault policy demoted a lossy channel; Site=hrt core
	RecRepromote                 // fault policy re-promoted after clean run; Site=hrt core
	RecFaultRoll                 // injector fired; Site=roll site id, A=fault kind, B=seq
	RecRequeue                   // respawn replayed an inflight envelope; Site=channel, A=seq
	RecRespawn                   // watchdog respawned a partner; Site=group, A=generation, B=replayed
	RecDegrade                   // recovery budget exhausted, ROS-only; Site=group, A=recoveries
	RecPanic                     // contained HRT panic; Site=thread, A=syscall count
	RecThreadPanic               // real host panic recovered in Thread.Run; Site=thread
	RecWedge                     // ErrGroupWedged fired; Site=group
	RecMergeDelta                // merger applied a delta; Site=core, A=entries
	RecRemerge                   // fault-path re-merge; Site=thread, A=fault address
	RecRingCall                  // exitless-ring invoke completed; Site=ring, A=seq, B=retransmits
	RecRingPromote               // router promoted to tier-3 exitless rings; Site=hrt core
	RecRingDemote                // router demoted tier 3 on poll-budget exhaustion; Site=hrt core
	RecRingDemoteLossy           // fault pressure demoted tier 3; Site=hrt core
	RecRingRepromote             // router re-promoted to tier 3 after clean run; Site=hrt core
	RecRingKill                  // partner kill tore the rings down mid-call; Site=ring, A=seq
	RecCheckpoint                // group state serialized for migration; Site=group, A=delta slots, B=inflight seqnos
	RecRestore                   // group restored on a grid node; Site=group, A=source node, B=target node
	RecDrain                     // node drained; Site=node, A=groups migrated off
	RecNodeKill                  // node-kill injected; Site=node, A=victim groups
	RecMigrateDone               // migration completed; Site=group, A=latency (virtual cycles), B=target node
)

var recNames = map[EventCode]string{
	RecDoorbell:    "doorbell",
	RecDeliver:     "deliver",
	RecComplete:    "complete",
	RecRetransmit:  "retransmit",
	RecDedup:       "dedup",
	RecCorrupt:     "corrupt-drop",
	RecSyncCall:    "sync-call",
	RecTierLocal:   "tier-local",
	RecTierCache:   "tier-cache",
	RecPromote:     "promote",
	RecDemote:      "demote",
	RecDemoteLossy: "demote-lossy",
	RecRepromote:   "repromote",
	RecFaultRoll:   "fault-roll",
	RecRequeue:     "requeue",
	RecRespawn:     "respawn",
	RecDegrade:     "degrade",
	RecPanic:       "panic-contained",
	RecThreadPanic: "thread-panic",
	RecWedge:       "wedged",
	RecMergeDelta:  "merge-delta",
	RecRemerge:     "remerge",

	RecRingCall:        "ring-call",
	RecRingPromote:     "ring-promote",
	RecRingDemote:      "ring-demote",
	RecRingDemoteLossy: "ring-demote-lossy",
	RecRingRepromote:   "ring-repromote",
	RecRingKill:        "ring-kill",

	RecCheckpoint:  "checkpoint",
	RecRestore:     "restore",
	RecDrain:       "drain",
	RecNodeKill:    "node-kill",
	RecMigrateDone: "migrate-complete",
}

// String returns the dump name of the code.
func (c EventCode) String() string {
	if n, ok := recNames[c]; ok {
		return n
	}
	return fmt.Sprintf("code-%d", uint8(c))
}

// Event is one flight-recorder entry. All fields are plain integers:
// recording is a struct copy under a mutex, no allocation, no
// formatting, and — critically — no virtual-clock interaction, so an
// armed recorder cannot perturb simulated results.
type Event struct {
	VTime cycles.Cycles
	Code  EventCode
	Site  uint64 // channel/thread/group/core id, per code
	Req   uint64 // causal request id, 0 if not attributable
	A, B  uint64 // per-code payload
}

// Recorder is the always-on flight recorder: a fixed-size ring of
// structured events. It keeps the most recent `size` events; Total()
// counts everything ever recorded. A nil *Recorder is the disabled
// default and every method is nil-safe.
//
// The ring is deliberately not lock-free: a single uncontended mutex
// acquisition per event is well under the wall-clock budget, and it
// keeps torn reads out of the dump path without atomics gymnastics.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   uint64

	dumpW    io.Writer
	dumped   bool
	lastWhy  string
	lastDump string
}

// DefaultRecorderSize is the ring capacity used when callers pass 0.
const DefaultRecorderSize = 8192

// NewRecorder returns a recorder holding the last `size` events
// (DefaultRecorderSize when size <= 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{buf: make([]Event, size)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Recorder) Record(at cycles.Cycles, code EventCode, site, req, a, b uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = Event{VTime: at, Code: code, Site: site, Req: req, A: a, B: b}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events sorted by virtual time (ties keep
// ring order, which is append order). Sorting by VTime makes the dump a
// causal timeline even when events were appended from different host
// goroutines.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	if r.wrapped {
		out = make([]Event, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.next]...)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].VTime < out[j].VTime })
	return out
}

// SetAutoDumpWriter directs automatic dumps (AutoDump) at w. When no
// writer is set the dump text is still rendered and retained for
// LastDump, so tests and post-mortem tooling can read it without the
// recorder spamming stderr during expected-failure runs.
func (r *Recorder) SetAutoDumpWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dumpW = w
	r.mu.Unlock()
}

// AutoDump renders the ring once per run on the first failure trigger
// (contained HRT panic, group wedge, recovery-budget exhaustion).
// Subsequent calls are no-ops: the first trigger is the interesting
// one, and a cascading failure must not dump the ring N times.
func (r *Recorder) AutoDump(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.dumped {
		r.mu.Unlock()
		return
	}
	r.dumped = true
	w := r.dumpW
	r.mu.Unlock()

	text := r.renderDump(reason)
	r.mu.Lock()
	r.lastWhy = reason
	r.lastDump = text
	r.mu.Unlock()
	if w != nil {
		io.WriteString(w, text)
	}
}

// LastDump returns the reason and text of the automatic dump, if one
// fired ("" otherwise).
func (r *Recorder) LastDump() (reason, text string) {
	if r == nil {
		return "", ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastWhy, r.lastDump
}

// DumpTo renders the ring to w unconditionally (the explicit
// `mvrun -flight` end-of-run path).
func (r *Recorder) DumpTo(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	_, err := io.WriteString(w, r.renderDump(reason))
	return err
}

func (r *Recorder) renderDump(reason string) string {
	evs := r.Events()
	total := r.Total()
	out := fmt.Sprintf("=== flight recorder dump: %s ===\n", reason)
	out += fmt.Sprintf("events retained=%d total=%d\n", len(evs), total)
	for _, e := range evs {
		out += fmt.Sprintf("vt=%-12d %-16s site=%-6d req=%#-18x a=%-8d b=%d\n",
			uint64(e.VTime), e.Code.String(), e.Site, e.Req, e.A, e.B)
	}
	out += "=== end flight recorder dump ===\n"
	return out
}
