package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"multiverse/internal/cycles"
)

// WriteChromeTrace renders the completed spans as Chrome trace-event
// JSON (the chrome://tracing / Perfetto "JSON Array with metadata"
// format). Simulated cores appear as trace processes and tracks as
// threads within them; spans become complete ("X") events carrying
// their exact cycle duration in args, and cross-track links become
// flow ("s"/"f") events.
//
// The output is deterministic: events are emitted in the canonical span
// order of Spans(), thread ids are assigned from the sorted track list,
// and timestamps are fixed-precision conversions of virtual cycles.
// Two runs of the same deterministic workload therefore produce
// byte-identical files.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	spans := tr.Spans()
	tracks := tr.Tracks()

	tids := make(map[Track]int, len(tracks))
	for i, tk := range tracks {
		tids[tk] = i + 1
	}

	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Metadata: name the processes (cores) and threads (tracks) so the
	// viewer labels the timeline the way the repo talks about it.
	lastCore := -1
	for _, tk := range tracks {
		if tk.Core != lastCore {
			lastCore = tk.Core
			emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"simulated core %d"}}`, tk.Core, tk.Core))
			emit(fmt.Sprintf(`{"ph":"M","name":"process_sort_index","pid":%d,"tid":0,"args":{"sort_index":%d}}`, tk.Core, tk.Core))
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`, tk.Core, tids[tk], strconv.Quote(tk.Name)))
	}

	for _, sp := range spans {
		tid := tids[sp.Track]
		ts := usec(sp.Start)
		dur := usec(sp.End - sp.Start)
		args := fmt.Sprintf(`"cycles":%d`, uint64(sp.End-sp.Start))
		for _, a := range sp.Attrs {
			args += fmt.Sprintf(",%s:%d", strconv.Quote(a.Key), a.Val)
		}
		if sp.Instant {
			// Thread-scoped instant event: a zero-duration marker. Flow
			// events still follow below so retransmission/recovery markers
			// join the causal arrows rather than floating disconnected.
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{%s}}`,
				strconv.Quote(sp.Name), strconv.Quote(sp.Cat), ts, sp.Track.Core, tid, args))
		} else {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{%s}}`,
				strconv.Quote(sp.Name), strconv.Quote(sp.Cat), ts, dur, sp.Track.Core, tid, args))
		}
		if sp.FlowOut != 0 {
			emit(fmt.Sprintf(`{"name":"flow","cat":%s,"ph":"s","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
				strconv.Quote(sp.Cat), sp.FlowOut, ts, sp.Track.Core, tid))
		}
		if sp.FlowIn != 0 {
			emit(fmt.Sprintf(`{"name":"flow","cat":%s,"ph":"f","bp":"e","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
				strconv.Quote(sp.Cat), sp.FlowIn, ts, sp.Track.Core, tid))
		}
	}

	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec renders a cycle count as trace microseconds at the simulated
// clock rate, with fixed precision so formatting is reproducible.
func usec(c cycles.Cycles) string {
	return strconv.FormatFloat(float64(c)*1e6/cycles.ClockHz, 'f', 4, 64)
}
