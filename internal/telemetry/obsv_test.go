package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"multiverse/internal/cycles"
)

// TestHistogramQuantileAtBucketEdges pins the bucket-edge semantics: an
// observation exactly on an edge lands in that edge's bucket, and the
// quantile reports the upper edge of the containing bucket.
func TestHistogramQuantileAtBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("edges")
	// Exactly on the first edge, one below, one above.
	h.Observe(64)
	h.Observe(63)
	h.Observe(65)
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("p50 = %d, want 64 (two of three observations in the first bucket)", got)
	}
	if got := h.Quantile(1.0); got != 128 {
		t.Errorf("p100 = %d, want 128 (65 lands in the second bucket)", got)
	}

	// Overflow: above the last edge reports the last edge.
	h2 := r.LatencyHistogram("overflow")
	h2.Observe(1 << 40)
	if got := h2.Quantile(0.5); got != 16777216 {
		t.Errorf("overflow p50 = %d, want last edge 16777216", got)
	}
}

// TestHistogramQuantileEmpty pins the empty-histogram contract: every
// quantile is 0, and an empty histogram never violates an SLO.
func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("empty")
	for _, p := range []float64{0.5, 0.99, 0.999, 1.0} {
		if got := h.Quantile(p); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", p, got)
		}
	}
	viol := CheckSLOs(r.Snapshot(), []SLOTarget{{Metric: "empty", Quantile: 0.99, MaxCycles: 0}})
	if len(viol) != 0 {
		t.Errorf("empty histogram violated an SLO: %v", viol)
	}
}

// TestHistogramP999Sparse pins p999 behaviour on sparse data: with few
// observations the 99.9th percentile degrades to the maximum bucket,
// not to garbage.
func TestHistogramP999Sparse(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("sparse")
	h.Observe(100) // bucket edge 128
	if got := h.Quantile(0.999); got != 128 {
		t.Errorf("single-observation p999 = %d, want 128", got)
	}
	h.Observe(100000) // bucket edge 131072
	// Two observations: the p999 target index floors to 1, which the
	// fast bucket already covers — sparse tails need p=1.0 to surface.
	if got := h.Quantile(0.999); got != 128 {
		t.Errorf("two-observation p999 = %d, want 128", got)
	}
	if got := h.Quantile(1.0); got != 131072 {
		t.Errorf("two-observation p100 = %d, want 131072", got)
	}
	// 999 fast observations and one slow one: p999 must still find the
	// slow tail (target index 999 of 1000 falls in the last bucket).
	h3 := r.LatencyHistogram("tail")
	for i := 0; i < 999; i++ {
		h3.Observe(64)
	}
	h3.Observe(1048576)
	if got := h3.Quantile(0.999); got != 64 {
		// target = floor(0.999*1000) = 999 <= cum(64)=999: the tail is
		// strictly beyond p999 with exactly 1000 observations.
		t.Errorf("p999 of 999x64+1 slow = %d, want 64", got)
	}
	if got := h3.Quantile(1.0); got != 1048576 {
		t.Errorf("p100 of 999x64+1 slow = %d, want 1048576", got)
	}
}

// TestRecorderRingWrap pins the fixed-size ring semantics: Total counts
// everything ever recorded, Events retains only the window, in
// virtual-time order.
func TestRecorderRingWrap(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Record(cycles.Cycles(100-i*10), RecDoorbell, uint64(i), 0, 0, 0)
	}
	if got := rec.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The last four records had descending vtimes 40,30,20,10; Events
	// must return them ascending.
	for i := 1; i < len(evs); i++ {
		if evs[i].VTime < evs[i-1].VTime {
			t.Errorf("events not time-sorted: %d before %d", evs[i-1].VTime, evs[i].VTime)
		}
	}
	if evs[0].VTime != 10 || evs[3].VTime != 40 {
		t.Errorf("window = [%d..%d], want [10..40]", evs[0].VTime, evs[3].VTime)
	}

	// Nil recorder: everything is a safe no-op.
	var nr *Recorder
	nr.Record(0, RecDoorbell, 0, 0, 0, 0)
	nr.AutoDump("nothing")
	if nr.Total() != 0 || nr.Events() != nil {
		t.Error("nil recorder retained state")
	}
}

// TestRecorderAutoDumpOnce pins the post-mortem contract: the first
// trigger wins, later triggers do not overwrite it, and the dump text
// renders every retained event with its code name.
func TestRecorderAutoDumpOnce(t *testing.T) {
	rec := NewRecorder(8)
	var sink bytes.Buffer
	rec.SetAutoDumpWriter(&sink)
	rec.Record(5, RecDoorbell, 1, 42, 7, 0)
	rec.Record(9, RecRespawn, 2, 42, 1, 3)
	rec.AutoDump("first trigger")
	rec.Record(11, RecWedge, 3, 0, 0, 0)
	rec.AutoDump("second trigger")

	why, text := rec.LastDump()
	if why != "first trigger" {
		t.Errorf("LastDump reason = %q, want the first trigger", why)
	}
	for _, want := range []string{"flight recorder dump: first trigger", "doorbell", "respawn", "req=0x2a"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "wedged") {
		t.Error("dump includes an event recorded after the trigger")
	}
	if !strings.Contains(sink.String(), "first trigger") || strings.Contains(sink.String(), "second trigger") {
		t.Errorf("auto-dump writer got %q", sink.String())
	}
}

// TestSLOSpecParseAndCheck covers the spec schema: exact and prefix
// matching, violation ordering, and rejection of malformed entries.
func TestSLOSpecParseAndCheck(t *testing.T) {
	r := NewRegistry()
	r.LatencyHistogram("slo.g1.write").Observe(100000)
	r.LatencyHistogram("slo.g1.read").Observe(100)
	r.LatencyHistogram("slo.g2.write").Observe(200000)
	s := r.Snapshot()

	spec, err := ParseSLOSpec([]byte(`[
		{"metric": "slo.g1.write", "quantile": 0.99, "max_cycles": 50000},
		{"metric": "slo.*", "quantile": 0.5, "max_cycles": 1000000},
		{"metric": "slo.g9.never", "quantile": 0.99, "max_cycles": 1}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	viol := CheckSLOs(s, spec)
	if len(viol) != 1 {
		t.Fatalf("violations = %v, want exactly the g1.write p99 miss", viol)
	}
	if viol[0].Metric != "slo.g1.write" || viol[0].Observed != 131072 {
		t.Errorf("violation = %+v", viol[0])
	}
	if !strings.Contains(viol[0].String(), "SLO VIOLATION") {
		t.Errorf("String() = %q", viol[0].String())
	}

	// Prefix match that does violate.
	viol = CheckSLOs(s, []SLOTarget{{Metric: "slo.g*", Quantile: 0.99, MaxCycles: 200}})
	if len(viol) != 2 { // g1.write and g2.write; g1.read fits in 256>200? 100 -> bucket 128 <= 200 ok
		t.Errorf("prefix violations = %v, want 2", viol)
	}

	if _, err := ParseSLOSpec([]byte(`[{"metric": "", "quantile": 0.5, "max_cycles": 1}]`)); err == nil {
		t.Error("empty metric accepted")
	}
	if _, err := ParseSLOSpec([]byte(`[{"metric": "x", "quantile": 1.5, "max_cycles": 1}]`)); err == nil {
		t.Error("quantile > 1 accepted")
	}

	report := SLOReport(s)
	for _, want := range []string{"slo.g1.read", "slo.g2.write", "p999"} {
		if !strings.Contains(report, want) {
			t.Errorf("SLO report missing %q:\n%s", want, report)
		}
	}
}

// TestSnapshotRoundTrip pins the -metrics-json format: marshal is
// byte-stable and parse inverts it exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Counter("a.count").Inc()
	r.Gauge("g.depth").Set(9)
	r.LatencyHistogram("slo.g1.write").Observe(300)

	s := r.Snapshot()
	blob1, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := r.Snapshot().MarshalIndent()
	if !bytes.Equal(blob1, blob2) {
		t.Error("snapshot marshalling is not byte-stable")
	}
	back, err := ParseMetricsSnapshot(blob1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Error("round trip lost data")
	}
	if back.Counters["a.count"] != 1 || back.Counters["b.count"] != 3 {
		t.Errorf("counters = %v", back.Counters)
	}
	if back.Histograms["slo.g1.write"].Quantile(0.5) != 512 {
		t.Errorf("histogram quantile after round trip = %d", back.Histograms["slo.g1.write"].Quantile(0.5))
	}

	// Nil registry: constant empty shape.
	var nilReg *Registry
	blob, _ := nilReg.Snapshot().MarshalIndent()
	if !strings.Contains(string(blob), `"counters": {}`) {
		t.Errorf("nil snapshot = %s", blob)
	}
}

// TestWritePrometheus pins the exposition text shape: namespaced names,
// cumulative le buckets, +Inf, _sum/_count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("faults.retransmit").Add(2)
	r.Gauge("sched.queue").Set(4)
	h := r.LatencyHistogram("slo.g1.write")
	h.Observe(100)
	h.Observe(100000)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mv_faults_retransmit counter\nmv_faults_retransmit 2",
		"# TYPE mv_sched_queue gauge\nmv_sched_queue 4",
		"# TYPE mv_slo_g1_write histogram",
		`mv_slo_g1_write_bucket{le="128"} 1`,
		`mv_slo_g1_write_bucket{le="131072"} 2`,
		`mv_slo_g1_write_bucket{le="+Inf"} 2`,
		"mv_slo_g1_write_sum 100100",
		"mv_slo_g1_write_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionHandler drives the four endpoints through httptest.
func TestExpositionHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Inc()
	tr := New()
	tr.Instant(Track{Core: 0, Name: "t"}, "cat", "mark", 10)
	rec := NewRecorder(8)
	rec.Record(3, RecDoorbell, 1, 1, 1, 0)
	h := ExpositionHandler(reg, tr, rec)

	get := func(path string) (int, string) {
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "mv_hits 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 {
		t.Errorf("/metrics.json = %d", code)
	} else {
		var s MetricsSnapshot
		if err := json.Unmarshal([]byte(body), &s); err != nil || s.Counters["hits"] != 1 {
			t.Errorf("/metrics.json body bad: %v %q", err, body)
		}
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/trace = %d %q", code, body)
	}
	if code, body := get("/flight"); code != 200 || !strings.Contains(body, "doorbell") {
		t.Errorf("/flight = %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}

	// Disabled planes still serve well-formed documents.
	dark := ExpositionHandler(reg, nil, nil)
	req := httptest.NewRequest("GET", "/trace", nil)
	w := httptest.NewRecorder()
	dark.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), `"traceEvents"`) {
		t.Errorf("dark /trace = %q", w.Body.String())
	}
	req = httptest.NewRequest("GET", "/flight", nil)
	w = httptest.NewRecorder()
	dark.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "disabled") {
		t.Errorf("dark /flight = %q", w.Body.String())
	}
}

// TestInstantFlowChrome pins the causality satellite: instants carrying
// flow ids produce "s"/"f" events in the Chrome export, so Perfetto
// renders arrows into and out of zero-duration markers.
func TestInstantFlowChrome(t *testing.T) {
	tr := New()
	tk := Track{Core: 1, Name: "hrt"}
	sp := tr.Begin(tk, "evtchan", "forward", 0)
	sp.LinkOut(77)
	sp.EndAt(10)
	tr.InstantFlow(Track{Core: 0, Name: "ros"}, "faults", "retransmit", 20, 77, 0,
		Attr{Key: "req", Val: 42})

	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"ph":"s","id":77`) {
		t.Errorf("flow start missing:\n%s", out)
	}
	if !strings.Contains(out, `"ph":"f","bp":"e","id":77`) {
		t.Errorf("flow finish (from the instant) missing:\n%s", out)
	}
	if !strings.Contains(out, `"ph":"i"`) || !strings.Contains(out, `"req":42`) {
		t.Errorf("instant with req attr missing:\n%s", out)
	}
	if !json.Valid(b.Bytes()) {
		t.Error("chrome trace is not valid JSON")
	}
}
