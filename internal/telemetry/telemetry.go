// Package telemetry is the deterministic observability layer of the
// Multiverse simulation: spans and metrics keyed to virtual time
// (cycles.Cycles), never wall clock, so a trace of a run is as
// reproducible as the run itself.
//
// Design constraints, in order:
//
//  1. Recording must never advance a virtual clock. Telemetry observes
//     the cost model; it is not part of it. Reported latencies are
//     therefore identical whether tracing is on or off.
//  2. The disabled path must be near-zero-cost. A nil *Tracer is the
//     no-op default: every method is nil-safe and returns before
//     allocating, so instrumentation sites can call unconditionally.
//  3. Exported artifacts must be byte-identical across runs. Everything
//     that reaches an exporter is either derived from virtual time
//     (deterministic by the repository's clock protocol) or sorted.
//
// Spans nest per track: a Track is one simulated execution context
// (a core plus a role such as "hrt" or "ros:main"), and Begin/End pairs
// on the same track form a stack, giving parent/child attribution
// without threading span handles through every call chain. Cross-context
// protocols (an event-channel forward serviced by a partner thread on
// another core) are stitched with flow links instead.
package telemetry

import (
	"sort"
	"sync"

	"multiverse/internal/cycles"
)

// Track identifies one timeline in the trace: a simulated core plus the
// execution context using it. The Chrome exporter maps Core to a trace
// "process" and Name to a "thread" within it, so per-core activity lines
// up visually the way the paper's figures discuss it.
type Track struct {
	Core int
	Name string
}

// Attr is one key/value annotation on a span. Values are uint64 because
// everything interesting in the simulation (addresses, counts, cycles)
// already is.
type Attr struct {
	Key string
	Val uint64
}

// Span is one timed region on a track. Fields are exported for the
// exporters and tests; instrumentation uses Begin/End/SetAttr.
type Span struct {
	Track Track
	Cat   string
	Name  string
	Start cycles.Cycles
	End   cycles.Cycles
	Attrs []Attr

	// Depth is the nesting level on the track at Begin time (0 = root).
	Depth int

	// Instant marks a zero-duration event (Start == End): a point in
	// virtual time rather than a region. The Chrome exporter renders it
	// as an instant ("i") event instead of a complete span.
	Instant bool

	// FlowOut/FlowIn carry cross-track link ids (0 = none): a span that
	// initiates work on another track sets FlowOut; the span servicing it
	// sets FlowIn with the same id.
	FlowOut uint64
	FlowIn  uint64

	tr     *Tracer
	parent *Span
	ended  bool
}

// Tracer collects spans. The zero value and nil are both valid disabled
// tracers; New returns an enabled one.
type Tracer struct {
	mu      sync.Mutex
	enabled bool
	spans   []*Span
	open    map[Track][]*Span
}

// New returns an enabled tracer.
func New() *Tracer {
	return &Tracer{enabled: true, open: make(map[Track][]*Span)}
}

// Enabled reports whether spans are being recorded. Instrumentation does
// not need to check it — every method is nil-safe — but hot paths that
// would otherwise format strings may want to.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.enabled }

// Begin opens a span on a track at virtual time `at`, nested under the
// track's innermost open span. It returns nil when the tracer is
// disabled; Span methods tolerate nil receivers.
func (tr *Tracer) Begin(tk Track, cat, name string, at cycles.Cycles, attrs ...Attr) *Span {
	if tr == nil || !tr.enabled {
		return nil
	}
	sp := &Span{Track: tk, Cat: cat, Name: name, Start: at, Attrs: attrs, tr: tr}
	tr.mu.Lock()
	stack := tr.open[tk]
	if n := len(stack); n > 0 {
		sp.parent = stack[n-1]
		sp.Depth = n
	}
	tr.open[tk] = append(stack, sp)
	tr.mu.Unlock()
	return sp
}

// Instant records a zero-duration marker event on a track at virtual time
// `at` — a state transition (a channel promotion, a mode switch) rather
// than a timed region. The event nests visually under the track's
// innermost open span but does not join the open-span stack.
func (tr *Tracer) Instant(tk Track, cat, name string, at cycles.Cycles, attrs ...Attr) {
	if tr == nil || !tr.enabled {
		return
	}
	sp := &Span{Track: tk, Cat: cat, Name: name, Start: at, End: at,
		Attrs: attrs, Instant: true, ended: true, tr: tr}
	tr.mu.Lock()
	if stack := tr.open[tk]; len(stack) > 0 {
		sp.parent = stack[len(stack)-1]
		sp.Depth = len(stack)
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

// InstantFlow records an instant that participates in cross-track flow
// links: flowIn draws an arrow into the marker, flowOut draws one out
// of it (either may be 0). Retransmissions and recovery actions use
// this so Perfetto renders the causal chain from the original forward
// through each retry to the respawn that replayed it, instead of
// disconnected dots.
func (tr *Tracer) InstantFlow(tk Track, cat, name string, at cycles.Cycles, flowIn, flowOut uint64, attrs ...Attr) {
	if tr == nil || !tr.enabled {
		return
	}
	sp := &Span{Track: tk, Cat: cat, Name: name, Start: at, End: at,
		Attrs: attrs, Instant: true, ended: true, tr: tr,
		FlowIn: flowIn, FlowOut: flowOut}
	tr.mu.Lock()
	if stack := tr.open[tk]; len(stack) > 0 {
		sp.parent = stack[len(stack)-1]
		sp.Depth = len(stack)
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

// EndAt closes the span at virtual time `at` and records it. Ending a
// span that is not the innermost on its track closes it anyway (the
// stack entry is removed wherever it is), so error paths cannot wedge
// the track.
func (sp *Span) EndAt(at cycles.Cycles) {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	if at < sp.Start {
		at = sp.Start
	}
	sp.End = at
	tr := sp.tr
	tr.mu.Lock()
	stack := tr.open[sp.Track]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == sp {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	tr.open[sp.Track] = stack
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

// SetAttr appends one annotation.
func (sp *Span) SetAttr(key string, val uint64) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: val})
}

// LinkOut marks this span as the source of cross-track flow id.
func (sp *Span) LinkOut(id uint64) {
	if sp != nil {
		sp.FlowOut = id
	}
}

// LinkIn marks this span as the sink of cross-track flow id.
func (sp *Span) LinkIn(id uint64) {
	if sp != nil {
		sp.FlowIn = id
	}
}

// Duration returns the span's extent in cycles.
func (sp *Span) Duration() cycles.Cycles {
	if sp == nil {
		return 0
	}
	return sp.End - sp.Start
}

// Parent returns the span this one nested under at Begin, or nil.
func (sp *Span) Parent() *Span {
	if sp == nil {
		return nil
	}
	return sp.parent
}

// Spans returns the completed spans in canonical order: by start time,
// then track, then end time descending (an enclosing span before the
// children that share its start), then name. The order depends only on
// virtual-time content, never on goroutine scheduling, which is what
// makes exports reproducible. Depth is deliberately not a sort key: when
// two simulated threads share a track (nested HRT threads forward over
// their ancestor's channel), depth reflects how their open spans
// interleaved in host time.
func (tr *Tracer) Spans() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]*Span, len(tr.spans))
	copy(out, tr.spans)
	tr.mu.Unlock()
	sortSpans(out)
	return out
}

func sortSpans(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track.Core != b.Track.Core {
			return a.Track.Core < b.Track.Core
		}
		if a.Track.Name != b.Track.Name {
			return a.Track.Name < b.Track.Name
		}
		if a.End != b.End {
			return a.End > b.End // longer (enclosing) span first
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.FlowOut != b.FlowOut {
			return a.FlowOut < b.FlowOut
		}
		return a.FlowIn < b.FlowIn
	})
}

// Tracks returns the distinct tracks of completed spans, sorted by
// (Core, Name). The exporter derives thread ids from this order.
func (tr *Tracer) Tracks() []Track {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	seen := make(map[Track]bool)
	for _, sp := range tr.spans {
		seen[sp.Track] = true
	}
	tr.mu.Unlock()
	out := make([]Track, 0, len(seen))
	for tk := range seen {
		out = append(out, tk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Scope bundles the instruments one execution context writes to: its
// tracer, its metrics registry, and the track its spans land on. A zero
// Scope is the fully disabled default.
type Scope struct {
	Tracer  *Tracer
	Metrics *Registry
	Track   Track
}
