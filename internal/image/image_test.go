package image

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleImage() *Image {
	return &Image{
		Name:  "sample",
		Entry: 0x401000,
		Sections: []Section{
			{Name: ".text", Kind: SecText, VAddr: 0x400000, Data: []byte{0x90, 0xC3}},
			{Name: ".data", Kind: SecData, VAddr: 0x600000, Data: []byte{1, 2, 3}},
		},
		Symbols: []Symbol{
			{Name: "main", Addr: 0x401000, Size: 64},
			{Name: "helper", Addr: 0x401100, Size: 32},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := sampleImage()
	dec, err := Decode(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(img, dec) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", img, dec)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
	// Truncations of a valid image must error, not panic.
	full := sampleImage().Encode()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
}

func TestSectionAndSymbolLookup(t *testing.T) {
	img := sampleImage()
	s, ok := img.Section(SecData)
	if !ok || s.Name != ".data" {
		t.Error("Section(SecData) failed")
	}
	if _, ok := img.Section(SecAeroKernel); ok {
		t.Error("found a section that does not exist")
	}
	sym, ok := img.Symbol("helper")
	if !ok || sym.Addr != 0x401100 {
		t.Error("Symbol lookup failed")
	}
	if _, ok := img.Symbol("nope"); ok {
		t.Error("found nonexistent symbol")
	}
}

func TestFatBinaryEmbedExtract(t *testing.T) {
	app := sampleImage()
	kernel := &Image{
		Name:  "nautilus.bin",
		Entry: 0xffff_8000_0010_0000,
		Symbols: []Symbol{
			{Name: "nk_thread_create", Addr: 0xffff_8000_0010_0200, Size: 512},
		},
	}
	overrides := []byte("override pthread_create => nk_thread_create\n")

	fat := EmbedAeroKernel(app, kernel, overrides)
	if len(fat.Sections) != len(app.Sections)+2 {
		t.Fatalf("fat sections = %d", len(fat.Sections))
	}
	// The original app must be untouched.
	if len(app.Sections) != 2 {
		t.Error("EmbedAeroKernel mutated the app image")
	}

	ak, err := ExtractAeroKernel(fat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ak, kernel) {
		t.Error("embedded kernel does not round-trip")
	}
	if got := ExtractOverrides(fat); !bytes.Equal(got, overrides) {
		t.Errorf("overrides = %q", got)
	}

	// A plain binary has neither.
	if _, err := ExtractAeroKernel(app); err == nil {
		t.Error("plain binary yielded an AeroKernel")
	}
	if ExtractOverrides(app) != nil {
		t.Error("plain binary yielded overrides")
	}
}

func TestSortSymbols(t *testing.T) {
	img := &Image{Symbols: []Symbol{{Name: "b", Addr: 30}, {Name: "a", Addr: 10}, {Name: "c", Addr: 20}}}
	img.SortSymbols()
	for i := 1; i < len(img.Symbols); i++ {
		if img.Symbols[i-1].Addr > img.Symbols[i].Addr {
			t.Fatal("not sorted by address")
		}
	}
}

func TestSize(t *testing.T) {
	if got := sampleImage().Size(); got != 5 {
		t.Errorf("Size = %d", got)
	}
}

func TestKindString(t *testing.T) {
	if SecAeroKernel.String() != ".hrt.aerokernel" {
		t.Errorf("kind name = %s", SecAeroKernel)
	}
	if SectionKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// Property: Encode/Decode round-trips arbitrary images.
func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(name string, entry uint64, secName string, data []byte, symName string, addr, size uint64) bool {
		img := &Image{
			Name:     name,
			Entry:    entry,
			Sections: []Section{{Name: secName, Kind: SecText, VAddr: entry, Data: data}},
			Symbols:  []Symbol{{Name: symName, Addr: addr, Size: size}},
		}
		dec, err := Decode(img.Encode())
		if err != nil {
			return false
		}
		// Empty slices decode as nil; normalize before comparing.
		if len(data) == 0 {
			img.Sections[0].Data = nil
			dec.Sections[0].Data = nil
		}
		return reflect.DeepEqual(img, dec)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
