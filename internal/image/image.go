// Package image models the executable images Multiverse manipulates: the
// user program's ELF-like binary, the AeroKernel kernel image, and the
// "fat binary" that embeds the latter inside the former (section 3.5).
//
// The format is a real byte-level encoding with magic numbers, section
// tables, and symbol tables, because the Multiverse runtime genuinely
// parses the embedded AeroKernel binary out of its own executable at
// startup before asking the HVM to install it.
package image

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Section kinds.
type SectionKind uint32

const (
	SecText SectionKind = iota
	SecData
	SecBSS
	SecSymtab
	// SecAeroKernel is the fat-binary section that carries the embedded
	// AeroKernel image.
	SecAeroKernel
	// SecOverrides carries the Multiverse override configuration compiled
	// into the binary by the toolchain.
	SecOverrides
)

var kindNames = map[SectionKind]string{
	SecText:       ".text",
	SecData:       ".data",
	SecBSS:        ".bss",
	SecSymtab:     ".symtab",
	SecAeroKernel: ".hrt.aerokernel",
	SecOverrides:  ".hrt.overrides",
}

// String returns the conventional section name for the kind.
func (k SectionKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("section(%d)", uint32(k))
}

// Section is one loadable or metadata section.
type Section struct {
	Name  string
	Kind  SectionKind
	VAddr uint64
	Data  []byte
}

// Symbol is one symbol-table entry. AeroKernel override resolution walks
// these.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
}

// Image is one executable image.
type Image struct {
	Name     string
	Entry    uint64
	Sections []Section
	Symbols  []Symbol
}

const (
	magic   = 0x4D564642 // "MVFB"
	version = 1
)

// Encode serializes the image.
func (im *Image) Encode() []byte {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	wb := func(b []byte) {
		w(uint32(len(b)))
		buf.Write(b)
	}
	w(uint32(magic))
	w(uint32(version))
	ws(im.Name)
	w(im.Entry)
	w(uint32(len(im.Sections)))
	for _, s := range im.Sections {
		ws(s.Name)
		w(uint32(s.Kind))
		w(s.VAddr)
		wb(s.Data)
	}
	w(uint32(len(im.Symbols)))
	for _, s := range im.Symbols {
		ws(s.Name)
		w(s.Addr)
		w(s.Size)
	}
	return buf.Bytes()
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.err = fmt.Errorf("image: truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.err = fmt.Errorf("image: truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = fmt.Errorf("image: bad string length %d at offset %d", n, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) blob() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = fmt.Errorf("image: bad blob length %d at offset %d", n, d.off)
		return nil
	}
	b := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return b
}

// Decode parses an encoded image.
func Decode(b []byte) (*Image, error) {
	d := &decoder{b: b}
	if m := d.u32(); d.err == nil && m != magic {
		return nil, fmt.Errorf("image: bad magic %#x", m)
	}
	if v := d.u32(); d.err == nil && v != version {
		return nil, fmt.Errorf("image: unsupported version %d", v)
	}
	im := &Image{}
	im.Name = d.str()
	im.Entry = d.u64()
	nsec := int(d.u32())
	for i := 0; i < nsec && d.err == nil; i++ {
		var s Section
		s.Name = d.str()
		s.Kind = SectionKind(d.u32())
		s.VAddr = d.u64()
		s.Data = d.blob()
		im.Sections = append(im.Sections, s)
	}
	nsym := int(d.u32())
	for i := 0; i < nsym && d.err == nil; i++ {
		var s Symbol
		s.Name = d.str()
		s.Addr = d.u64()
		s.Size = d.u64()
		im.Symbols = append(im.Symbols, s)
	}
	if d.err != nil {
		return nil, d.err
	}
	return im, nil
}

// Section returns the first section of the given kind.
func (im *Image) Section(kind SectionKind) (*Section, bool) {
	for i := range im.Sections {
		if im.Sections[i].Kind == kind {
			return &im.Sections[i], true
		}
	}
	return nil, false
}

// AddSection appends a section.
func (im *Image) AddSection(s Section) { im.Sections = append(im.Sections, s) }

// Symbol finds a symbol by name.
func (im *Image) Symbol(name string) (Symbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// SortSymbols orders the symbol table by address (what a linker emits and
// what a symbol cache can binary-search).
func (im *Image) SortSymbols() {
	sort.Slice(im.Symbols, func(i, j int) bool { return im.Symbols[i].Addr < im.Symbols[j].Addr })
}

// Size returns the total loadable byte size.
func (im *Image) Size() int {
	n := 0
	for _, s := range im.Sections {
		n += len(s.Data)
	}
	return n
}

// EmbedAeroKernel returns a fat binary: a copy of user with the encoded
// AeroKernel image and override configuration attached as extra sections —
// what the Multiverse toolchain's link step produces.
func EmbedAeroKernel(user, kernel *Image, overrides []byte) *Image {
	fat := &Image{
		Name:     user.Name,
		Entry:    user.Entry,
		Sections: append([]Section(nil), user.Sections...),
		Symbols:  append([]Symbol(nil), user.Symbols...),
	}
	fat.AddSection(Section{
		Name: SecAeroKernel.String(),
		Kind: SecAeroKernel,
		Data: kernel.Encode(),
	})
	if overrides != nil {
		fat.AddSection(Section{
			Name: SecOverrides.String(),
			Kind: SecOverrides,
			Data: append([]byte(nil), overrides...),
		})
	}
	return fat
}

// ExtractAeroKernel parses the embedded AeroKernel image back out of a fat
// binary — what the Multiverse runtime component does at program startup
// (section 3.5, "AeroKernel Boot").
func ExtractAeroKernel(fat *Image) (*Image, error) {
	sec, ok := fat.Section(SecAeroKernel)
	if !ok {
		return nil, fmt.Errorf("image: %s has no embedded AeroKernel (not a fat binary?)", fat.Name)
	}
	return Decode(sec.Data)
}

// ExtractOverrides returns the override configuration embedded in a fat
// binary, or nil if none was compiled in.
func ExtractOverrides(fat *Image) []byte {
	sec, ok := fat.Section(SecOverrides)
	if !ok {
		return nil
	}
	return append([]byte(nil), sec.Data...)
}

// MultibootTag mirrors the multiboot2-extension boot information the HVM
// hands the AeroKernel (the paper's boot protocol is "an extension of the
// multiboot2 standard").
type MultibootTag struct {
	Type uint32
	Data uint64
}

// Multiboot tag types used by the HRT boot protocol.
const (
	TagHRTFlags   uint32 = 0xF00D0001 // HRT capability flags
	TagFirstHRTPA uint32 = 0xF00D0002 // first physical address private to the HRT
	TagCommChan   uint32 = 0xF00D0003 // physical address of the VMM<->HRT shared data page
	TagAPICCount  uint32 = 0xF00D0004 // number of HRT cores
)

// HRT capability flags for TagHRTFlags.
const (
	HRTFlagMergeCapable uint64 = 1 << 0 // HRT supports address-space mergers
	HRTFlagIdentityHigh uint64 = 1 << 1 // HRT expects higher-half identity map
)
