package vfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"multiverse/internal/linuxabi"
)

func TestMkdirWriteRead(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c/f.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/c/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("read %q", data)
	}
}

func TestErrnos(t *testing.T) {
	fs := New()
	if _, err := fs.ReadFile("/nope"); err != linuxabi.ENOENT {
		t.Errorf("missing file: %v", err)
	}
	if err := fs.Mkdir("/a/b"); err != linuxabi.ENOENT {
		t.Errorf("mkdir without parent: %v", err)
	}
	_ = fs.Mkdir("/d")
	if err := fs.Mkdir("/d"); err != linuxabi.EEXIST {
		t.Errorf("mkdir existing: %v", err)
	}
	if _, err := fs.ReadFile("/d"); err != linuxabi.EISDIR {
		t.Errorf("read dir: %v", err)
	}
	_ = fs.WriteFile("/f", []byte("x"))
	if _, err := fs.Open("/f/child", linuxabi.ORdonly); err != linuxabi.ENOTDIR {
		t.Errorf("walk through file: %v", err)
	}
}

func TestStat(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/f", []byte("12345"))
	st, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 5 || st.IsDir {
		t.Errorf("stat = %+v", st)
	}
	root, err := fs.Stat("/")
	if err != nil || !root.IsDir {
		t.Errorf("root stat = %+v, %v", root, err)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/b", nil)
	_ = fs.WriteFile("/a", nil)
	_ = fs.Mkdir("/c")
	names, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestOpenCreateTruncAppend(t *testing.T) {
	fs := New()
	f, err := fs.Open("/new", linuxabi.OCreat|linuxabi.OWronly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}

	// O_TRUNC resets contents.
	f2, err := fs.Open("/new", linuxabi.OWronly|linuxabi.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 0 {
		t.Errorf("size after trunc = %d", f2.Size())
	}
	if _, err := f2.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}

	// O_APPEND writes at EOF regardless of position.
	f3, err := fs.Open("/new", linuxabi.OWronly|linuxabi.OAppend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.Seek(0, SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := f3.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/new")
	if string(data) != "xyz" {
		t.Errorf("contents = %q", data)
	}
}

func TestReadAtEOFReturnsZero(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/f", []byte("ab"))
	f, _ := fs.Open("/f", linuxabi.ORdonly)
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if err != nil || n != 2 {
		t.Fatalf("read = %d, %v", n, err)
	}
	n, err = f.Read(buf)
	if err != nil || n != 0 {
		t.Errorf("EOF read = %d, %v", n, err)
	}
}

func TestWriteWithoutWritePermission(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/f", []byte("x"))
	f, _ := fs.Open("/f", linuxabi.ORdonly)
	if _, err := f.Write([]byte("y")); err != linuxabi.EBADF {
		t.Errorf("write to O_RDONLY: %v", err)
	}
}

func TestSeekWhence(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/f", []byte("0123456789"))
	f, _ := fs.Open("/f", linuxabi.ORdonly)
	if pos, _ := f.Seek(4, SeekSet); pos != 4 {
		t.Errorf("SeekSet = %d", pos)
	}
	if pos, _ := f.Seek(2, SeekCur); pos != 6 {
		t.Errorf("SeekCur = %d", pos)
	}
	if pos, _ := f.Seek(-1, SeekEnd); pos != 9 {
		t.Errorf("SeekEnd = %d", pos)
	}
	if _, err := f.Seek(-100, SeekSet); err != linuxabi.EINVAL {
		t.Errorf("negative seek: %v", err)
	}
	if _, err := f.Seek(0, 42); err != linuxabi.EINVAL {
		t.Errorf("bad whence: %v", err)
	}
}

func TestWriteGrowsSparsely(t *testing.T) {
	fs := New()
	f, _ := fs.Open("/f", linuxabi.OCreat|linuxabi.ORdwr)
	if _, err := f.Seek(5, SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("end")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/f")
	if !bytes.Equal(data, []byte{0, 0, 0, 0, 0, 'e', 'n', 'd'}) {
		t.Errorf("contents = %v", data)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	_ = fs.Mkdir("/d")
	_ = fs.WriteFile("/d/f", nil)
	if err := fs.Remove("/d"); err != linuxabi.EINVAL {
		t.Errorf("removing non-empty dir: %v", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != linuxabi.ENOENT {
		t.Errorf("removing twice: %v", err)
	}
}

func TestRelativePathsNormalized(t *testing.T) {
	fs := New()
	_ = fs.WriteFile("/x", []byte("1"))
	if _, err := fs.ReadFile("x"); err != nil {
		t.Errorf("relative path: %v", err)
	}
	if _, err := fs.ReadFile("/./x"); err != nil {
		t.Errorf("dot path: %v", err)
	}
	if _, err := fs.ReadFile("/a/../x"); err != nil {
		t.Errorf("dotdot path: %v", err)
	}
}

// Property: WriteFile then ReadFile round-trips arbitrary contents, and
// rewrites replace rather than append.
func TestWriteReadProperty(t *testing.T) {
	fs := New()
	prop := func(a, b []byte) bool {
		if err := fs.WriteFile("/p", a); err != nil {
			return false
		}
		got, err := fs.ReadFile("/p")
		if err != nil || !bytes.Equal(got, a) {
			return false
		}
		if err := fs.WriteFile("/p", b); err != nil {
			return false
		}
		got, err = fs.ReadFile("/p")
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
