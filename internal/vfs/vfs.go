// Package vfs is the in-memory filesystem behind the simulated ROS. It
// gives the forwarded file system calls (open/read/write/stat/getcwd/close,
// Figure 9) real work to do and backs the Racket-stand-in's package loading.
package vfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"multiverse/internal/linuxabi"
)

// Mode bits (subset of POSIX).
const (
	ModeDir  uint32 = 0o040000
	ModeFile uint32 = 0o100000
)

type inode struct {
	ino      uint64
	mode     uint32
	data     []byte
	children map[string]*inode // directories only
}

func (n *inode) isDir() bool { return n.mode&ModeDir != 0 }

// FS is a tree of inodes rooted at "/".
type FS struct {
	mu      sync.Mutex
	root    *inode
	nextIno uint64
}

// New returns an empty filesystem containing only "/".
func New() *FS {
	fs := &FS{nextIno: 2}
	fs.root = &inode{ino: 1, mode: ModeDir | 0o755, children: make(map[string]*inode)}
	return fs
}

// clean normalizes a path to an absolute, slash-separated form.
func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

func (fs *FS) lookup(p string) (*inode, error) {
	p = clean(p)
	if p == "/" {
		return fs.root, nil
	}
	cur := fs.root
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if !cur.isDir() {
			return nil, linuxabi.ENOTDIR
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, linuxabi.ENOENT
		}
		cur = next
	}
	return cur, nil
}

func (fs *FS) parentOf(p string) (*inode, string, error) {
	p = clean(p)
	dir, base := path.Split(p)
	if base == "" {
		return nil, "", linuxabi.EINVAL
	}
	parent, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir() {
		return nil, "", linuxabi.ENOTDIR
	}
	return parent, base, nil
}

// Mkdir creates a directory; parents must exist.
func (fs *FS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return linuxabi.EEXIST
	}
	parent.children[base] = &inode{
		ino:      fs.nextIno,
		mode:     ModeDir | 0o755,
		children: make(map[string]*inode),
	}
	fs.nextIno++
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	p = clean(p)
	if p == "/" {
		return nil
	}
	partial := ""
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		partial += "/" + part
		if err := fs.Mkdir(partial); err != nil && err != linuxabi.EEXIST {
			return err
		}
	}
	return nil
}

// WriteFile creates or replaces a file with the given contents.
func (fs *FS) WriteFile(p string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if existing, ok := parent.children[base]; ok {
		if existing.isDir() {
			return linuxabi.EISDIR
		}
		existing.data = append(existing.data[:0], data...)
		return nil
	}
	parent.children[base] = &inode{
		ino:  fs.nextIno,
		mode: ModeFile | 0o644,
		data: append([]byte(nil), data...),
	}
	fs.nextIno++
	return nil
}

// ReadFile returns a copy of the file's contents.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.isDir() {
		return nil, linuxabi.EISDIR
	}
	return append([]byte(nil), n.data...), nil
}

// Stat fills st for the path.
func (fs *FS) Stat(p string) (linuxabi.Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err != nil {
		return linuxabi.Stat{}, err
	}
	return linuxabi.Stat{Ino: n.ino, Size: uint64(len(n.data)), Mode: n.mode, IsDir: n.isDir()}, nil
}

// ReadDir returns the sorted names in a directory.
func (fs *FS) ReadDir(p string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.isDir() {
		return nil, linuxabi.ENOTDIR
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return linuxabi.ENOENT
	}
	if n.isDir() && len(n.children) > 0 {
		return linuxabi.EINVAL
	}
	delete(parent.children, base)
	return nil
}

// File is an open file description (shared on dup, positioned).
type File struct {
	mu     sync.Mutex
	fs     *FS
	node   *inode
	pos    int64
	flags  int
	append bool
	path   string
}

// Open opens a path with linuxabi.O* flags.
func (fs *FS) Open(p string, flags int) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err == linuxabi.ENOENT && flags&linuxabi.OCreat != 0 {
		parent, base, perr := fs.parentOf(p)
		if perr != nil {
			return nil, perr
		}
		n = &inode{ino: fs.nextIno, mode: ModeFile | 0o644}
		fs.nextIno++
		parent.children[base] = n
	} else if err != nil {
		return nil, err
	}
	if n.isDir() && flags&(linuxabi.OWronly|linuxabi.ORdwr) != 0 {
		return nil, linuxabi.EISDIR
	}
	if flags&linuxabi.OTrunc != 0 && !n.isDir() {
		n.data = n.data[:0]
	}
	return &File{fs: fs, node: n, flags: flags, append: flags&linuxabi.OAppend != 0, path: clean(p)}, nil
}

// Path returns the path the file was opened with.
func (f *File) Path() string { return f.path }

// Read copies up to len(p) bytes from the current position.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.pos >= int64(len(f.node.data)) {
		return 0, nil // EOF by zero count, Linux-style
	}
	n := copy(p, f.node.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// Write stores p at the current position (or at EOF with O_APPEND).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.flags&(linuxabi.OWronly|linuxabi.ORdwr) == 0 {
		return 0, linuxabi.EBADF
	}
	if f.append {
		f.pos = int64(len(f.node.data))
	}
	end := f.pos + int64(len(p))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[f.pos:], p)
	f.pos = end
	return len(p), nil
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Seek repositions the file offset.
func (f *File) Seek(off int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	size := int64(len(f.node.data))
	f.fs.mu.Unlock()
	var next int64
	switch whence {
	case SeekSet:
		next = off
	case SeekCur:
		next = f.pos + off
	case SeekEnd:
		next = size + off
	default:
		return 0, linuxabi.EINVAL
	}
	if next < 0 {
		return 0, linuxabi.EINVAL
	}
	f.pos = next
	return next, nil
}

// Stat fills st for the open file.
func (f *File) Stat() linuxabi.Stat {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return linuxabi.Stat{
		Ino:   f.node.ino,
		Size:  uint64(len(f.node.data)),
		Mode:  f.node.mode,
		IsDir: f.node.isDir(),
	}
}

// Size returns the current file size.
func (f *File) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.node.data))
}

// String implements fmt.Stringer for diagnostics.
func (f *File) String() string { return fmt.Sprintf("file(%s)", f.path) }
