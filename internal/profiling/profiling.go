// Package profiling wires the standard pprof host profiles into the
// command-line tools. The profiles measure the simulator as a program —
// host CPU, host allocations, host blocking — which is the feedback loop
// behind the raw-speed work: every optimization in the hot paths started
// as a peak in one of these profiles.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags is the trio of profile destinations a command exposes. Empty
// strings disable the corresponding profile.
type Flags struct {
	CPU   string // -cpuprofile: pprof CPU profile
	Mem   string // -memprofile: heap allocation profile at exit
	Block string // -blockprofile: goroutine blocking profile at exit
}

// Enabled reports whether any profile was requested.
func (f Flags) Enabled() bool { return f.CPU != "" || f.Mem != "" || f.Block != "" }

// Start begins the requested profiles and returns a stop function that
// flushes them to disk. The stop function must run before the process
// exits (callers defer it around the measured region).
func Start(f Flags) (func() error, error) {
	var cpuFile *os.File
	if f.CPU != "" {
		fd, err := os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(fd); err != nil {
			fd.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
		cpuFile = fd
	}
	if f.Block != "" {
		// Rate 1 records every blocking event; the tools run short,
		// bounded workloads where full fidelity beats sampling.
		runtime.SetBlockProfileRate(1)
	}
	stop := func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.Mem != "" {
			// A GC first so the heap profile reflects live objects, not
			// collection timing.
			runtime.GC()
			if err := writeProfile("allocs", f.Mem); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.Block != "" {
			runtime.SetBlockProfileRate(0)
			if err := writeProfile("block", f.Block); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return stop, nil
}

func writeProfile(name, path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer fd.Close()
	if err := pprof.Lookup(name).WriteTo(fd, 0); err != nil {
		return fmt.Errorf("profiling: write %s profile: %w", name, err)
	}
	return nil
}
