package mem

import (
	"testing"
	"testing/quick"
)

func TestFrameAddr(t *testing.T) {
	if Frame(1).Addr() != 4096 {
		t.Errorf("frame 1 addr = %#x", Frame(1).Addr())
	}
	if FrameOf(0x5123) != 5 {
		t.Errorf("FrameOf(0x5123) = %d", FrameOf(0x5123))
	}
}

func TestAllocFree(t *testing.T) {
	pm := NewFlat(4)
	var frames []Frame
	for i := 0; i < 4; i++ {
		f, err := pm.Alloc(0, "test")
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		frames = append(frames, f)
	}
	if _, err := pm.Alloc(0, "test"); err == nil {
		t.Error("alloc on exhausted zone should fail")
	}
	if pm.InUse() != 4 {
		t.Errorf("InUse = %d", pm.InUse())
	}
	for _, f := range frames {
		if err := pm.Free(f); err != nil {
			t.Fatalf("free: %v", err)
		}
	}
	if pm.InUse() != 0 {
		t.Errorf("InUse after free = %d", pm.InUse())
	}
	if err := pm.Free(frames[0]); err == nil {
		t.Error("double free should fail")
	}
}

func TestAllocNRollsBack(t *testing.T) {
	pm := NewFlat(3)
	if _, err := pm.AllocN(0, 5, "big"); err == nil {
		t.Fatal("AllocN beyond capacity should fail")
	}
	if pm.InUse() != 0 {
		t.Errorf("failed AllocN leaked %d frames", pm.InUse())
	}
	fs, err := pm.AllocN(0, 3, "ok")
	if err != nil {
		t.Fatalf("AllocN: %v", err)
	}
	if len(fs) != 3 {
		t.Errorf("got %d frames", len(fs))
	}
}

func TestZones(t *testing.T) {
	pm := New(
		Zone{ID: 0, Start: 0, Count: 2},
		Zone{ID: 1, Start: 2, Count: 2},
	)
	f0, err := pm.Alloc(0, "z0")
	if err != nil {
		t.Fatal(err)
	}
	f1, err := pm.Alloc(1, "z1")
	if err != nil {
		t.Fatal(err)
	}
	z0, ok := pm.ZoneOf(f0)
	if !ok || z0.ID != 0 {
		t.Errorf("frame %d in zone %v", f0, z0.ID)
	}
	z1, ok := pm.ZoneOf(f1)
	if !ok || z1.ID != 1 {
		t.Errorf("frame %d in zone %v", f1, z1.ID)
	}
	if pm.FreeCount(0) != 1 || pm.FreeCount(1) != 1 {
		t.Errorf("free counts = %d, %d", pm.FreeCount(0), pm.FreeCount(1))
	}
}

func TestOverlappingZonesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping zones should panic")
		}
	}()
	New(Zone{ID: 0, Start: 0, Count: 4}, Zone{ID: 1, Start: 2, Count: 4})
}

func TestOwnerTag(t *testing.T) {
	pm := NewFlat(2)
	f, _ := pm.Alloc(0, "page-table")
	owner, ok := pm.Owner(f)
	if !ok || owner != "page-table" {
		t.Errorf("owner = %q, %v", owner, ok)
	}
}

func TestReadWriteU64(t *testing.T) {
	pm := NewFlat(2)
	f, _ := pm.Alloc(0, "data")
	pa := f.Addr() + 64
	if err := pm.WriteU64(pa, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := pm.ReadU64(pa)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Errorf("ReadU64 = %#x", v)
	}
	// Unallocated frame access fails.
	if _, err := pm.ReadU64(1 << 30); err == nil {
		t.Error("read of unallocated frame should fail")
	}
	// Cross-page access fails.
	if err := pm.WriteU64(f.Addr()+4090, 1); err == nil {
		t.Error("page-crossing write should fail")
	}
}

func TestFreeDropsContents(t *testing.T) {
	pm := NewFlat(1)
	f, _ := pm.Alloc(0, "a")
	if err := pm.WriteU64(f.Addr(), 42); err != nil {
		t.Fatal(err)
	}
	if err := pm.Free(f); err != nil {
		t.Fatal(err)
	}
	f2, _ := pm.Alloc(0, "b")
	if f2 != f {
		t.Fatalf("expected frame reuse")
	}
	v, err := pm.ReadU64(f2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("reallocated frame not zeroed: %#x", v)
	}
}

// Property: WriteU64 then ReadU64 round-trips for any aligned offset.
func TestReadWriteRoundTripProperty(t *testing.T) {
	pm := NewFlat(4)
	f, _ := pm.Alloc(0, "prop")
	prop := func(off uint16, v uint64) bool {
		o := uint64(off) % (PageSize - 8)
		pa := f.Addr() + o
		if err := pm.WriteU64(pa, v); err != nil {
			return false
		}
		got, err := pm.ReadU64(pa)
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
