// Package mem models the physical memory of the simulated machine.
//
// Physical memory is a set of 4 KiB frames grouped into NUMA zones. The HVM
// partitions frames between the ROS and the HRT (the HRT additionally sees
// all ROS frames, per the paper's HVM design), and the paging package builds
// page tables out of frames allocated here.
//
// Frame contents are materialized lazily: most frames in the simulation only
// need identity and accounting, not bytes. Frames that back page tables or
// shared protocol pages allocate real storage on first touch.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// PageSize is the only page size the simulation uses (4 KiB), matching the
// paging structures the paper manipulates (PML4 entries cover 512 GiB each;
// leaf mappings are 4 KiB).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Frame is a physical frame number. The physical address of a frame is
// Frame << PageShift.
type Frame uint64

// Addr returns the base physical address of the frame.
func (f Frame) Addr() uint64 { return uint64(f) << PageShift }

// FrameOf returns the frame containing the physical address.
func FrameOf(pa uint64) Frame { return Frame(pa >> PageShift) }

// NUMAZone identifies a NUMA zone (one per socket on the simulated
// machine).
type NUMAZone int

// Zone describes one contiguous physical memory region belonging to a NUMA
// zone.
type Zone struct {
	ID    NUMAZone
	Start Frame // first frame
	Count uint64
}

// End returns one past the last frame of the zone.
func (z Zone) End() Frame { return z.Start + Frame(z.Count) }

// PhysMem is the machine's physical memory: a frame allocator over a set of
// NUMA zones plus lazily materialized frame contents. Per-frame state lives
// in dense slices indexed by frame number — page-table walks and protocol
// pages read and write words through here, so the per-access cost is a
// bounds check and a slice load rather than a map probe.
type PhysMem struct {
	mu    sync.Mutex
	zones []Zone
	free  map[NUMAZone][]Frame
	limit Frame    // one past the highest frame of any zone
	owner []string // owner tag per allocated frame ("" = free)
	inUse []bool
	pages [][]byte // materialized contents (page tables, shared pages)
	nUsed int
}

// New builds physical memory with the given zones. Zones must not overlap;
// New panics on malformed configuration since it reflects a programming
// error in machine construction, not a runtime condition.
func New(zones ...Zone) *PhysMem {
	pm := &PhysMem{
		free: make(map[NUMAZone][]Frame),
	}
	for _, z := range zones {
		if z.Count == 0 {
			panic(fmt.Sprintf("mem: zone %d has zero frames", z.ID))
		}
		for _, prev := range pm.zones {
			if z.Start < prev.End() && prev.Start < z.End() {
				panic(fmt.Sprintf("mem: zones %d and %d overlap", prev.ID, z.ID))
			}
		}
		pm.zones = append(pm.zones, z)
		frames := make([]Frame, 0, z.Count)
		for f := z.Start; f < z.End(); f++ {
			frames = append(frames, f)
		}
		pm.free[z.ID] = frames
		if end := z.End(); end > pm.limit {
			pm.limit = end
		}
	}
	pm.owner = make([]string, pm.limit)
	pm.inUse = make([]bool, pm.limit)
	pm.pages = make([][]byte, pm.limit)
	return pm
}

// NewFlat builds a single-zone physical memory of n frames starting at
// frame 0, for tests and small fixtures.
func NewFlat(n uint64) *PhysMem {
	return New(Zone{ID: 0, Start: 0, Count: n})
}

// Zones returns a copy of the zone table.
func (pm *PhysMem) Zones() []Zone {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]Zone, len(pm.zones))
	copy(out, pm.zones)
	return out
}

// Alloc takes one free frame from the given zone, tagging it with owner.
func (pm *PhysMem) Alloc(zone NUMAZone, owner string) (Frame, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	frames := pm.free[zone]
	if len(frames) == 0 {
		return 0, fmt.Errorf("mem: zone %d exhausted (owner %q)", zone, owner)
	}
	f := frames[len(frames)-1]
	pm.free[zone] = frames[:len(frames)-1]
	pm.owner[f] = owner
	pm.inUse[f] = true
	pm.nUsed++
	return f, nil
}

// AllocN allocates n frames from the zone. On failure nothing is leaked.
func (pm *PhysMem) AllocN(zone NUMAZone, n int, owner string) ([]Frame, error) {
	out := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := pm.Alloc(zone, owner)
		if err != nil {
			pm.FreeAll(out)
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Free returns a frame to its zone's free list and drops its contents.
func (pm *PhysMem) Free(f Frame) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if f >= pm.limit || !pm.inUse[f] {
		return fmt.Errorf("mem: double free of frame %#x", uint64(f))
	}
	pm.inUse[f] = false
	pm.owner[f] = ""
	pm.pages[f] = nil
	pm.nUsed--
	z, ok := pm.zoneOf(f)
	if !ok {
		return fmt.Errorf("mem: frame %#x outside all zones", uint64(f))
	}
	pm.free[z.ID] = append(pm.free[z.ID], f)
	return nil
}

// FreeAll frees every frame in the slice, ignoring individual errors; used
// for cleanup paths.
func (pm *PhysMem) FreeAll(frames []Frame) {
	for _, f := range frames {
		_ = pm.Free(f)
	}
}

// Owner reports the owner tag of an allocated frame.
func (pm *PhysMem) Owner(f Frame) (string, bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if f >= pm.limit || !pm.inUse[f] {
		return "", false
	}
	return pm.owner[f], true
}

// InUse returns the number of allocated frames.
func (pm *PhysMem) InUse() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.nUsed
}

// FreeCount returns the number of free frames in the zone.
func (pm *PhysMem) FreeCount(zone NUMAZone) int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return len(pm.free[zone])
}

// Page returns the materialized 4 KiB contents of an allocated frame,
// allocating zeroed storage on first touch. The returned slice is shared
// with the frame; callers that access it concurrently must synchronize
// themselves (ReadU64/WriteU64 do, and are the right interface for
// protocol pages).
func (pm *PhysMem) Page(f Frame) ([]byte, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.pageLocked(f)
}

func (pm *PhysMem) pageLocked(f Frame) ([]byte, error) {
	if f >= pm.limit || !pm.inUse[f] {
		return nil, fmt.Errorf("mem: access to unallocated frame %#x", uint64(f))
	}
	p := pm.pages[f]
	if p == nil {
		p = make([]byte, PageSize)
		pm.pages[f] = p
	}
	return p, nil
}

// ReadU64 reads a 64-bit little-endian word at a physical address. The
// address must lie within an allocated frame.
func (pm *PhysMem) ReadU64(pa uint64) (uint64, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	p, off, err := pm.pageAtLocked(pa, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p[off:]), nil
}

// WriteU64 writes a 64-bit little-endian word at a physical address.
func (pm *PhysMem) WriteU64(pa uint64, v uint64) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	p, off, err := pm.pageAtLocked(pa, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(p[off:], v)
	return nil
}

func (pm *PhysMem) pageAtLocked(pa uint64, size int) ([]byte, int, error) {
	off := int(pa & (PageSize - 1))
	if off+size > PageSize {
		return nil, 0, fmt.Errorf("mem: %d-byte access at %#x crosses a page boundary", size, pa)
	}
	p, err := pm.pageLocked(FrameOf(pa))
	if err != nil {
		return nil, 0, err
	}
	return p, off, nil
}

func (pm *PhysMem) zoneOf(f Frame) (Zone, bool) {
	for _, z := range pm.zones {
		if f >= z.Start && f < z.End() {
			return z, true
		}
	}
	return Zone{}, false
}

// ZoneOf reports which zone a frame belongs to.
func (pm *PhysMem) ZoneOf(f Frame) (Zone, bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.zoneOf(f)
}
