package places_test

import (
	"strings"
	"testing"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/places"
	"multiverse/internal/scheme"
	"multiverse/internal/vfs"
)

func runWithPlaces(t *testing.T, world core.World, src string) (*core.System, *scheme.Obj) {
	t.Helper()
	fs := vfs.New()
	if err := scheme.InstallPrelude(fs); err != nil {
		t.Fatal(err)
	}
	sys, err := bench.NewSystemForWorld(world, fs, "places")
	if err != nil {
		t.Fatal(err)
	}
	var out *scheme.Obj
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := places.NewEngine(env)
		if eerr != nil {
			t.Error(eerr)
			return 1
		}
		out, eerr = eng.RunString(src)
		if eerr != nil {
			t.Error(eerr)
			return 1
		}
		eng.Shutdown()
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return sys, out
}

const placeProgram = `
(define p1 (place-spawn "(define (f n a) (if (= n 0) a (f (- n 1) (+ a 2)))) (f 20000 0)"))
(define p2 (place-spawn "(define (f n a) (if (= n 0) a (f (- n 1) (+ a 3)))) (f 20000 0)"))
(+ (place-wait p1) (place-wait p2))
`

func TestPlacesNative(t *testing.T) {
	_, out := runWithPlaces(t, core.WorldNative, placeProgram)
	if scheme.WriteString(out) != "100000" {
		t.Errorf("result = %s", scheme.WriteString(out))
	}
}

// TestPlacesMultiverse: each place becomes its own execution group; the
// Scheme program is unchanged.
func TestPlacesMultiverse(t *testing.T) {
	sys, out := runWithPlaces(t, core.WorldHRT, placeProgram)
	if scheme.WriteString(out) != "100000" {
		t.Errorf("result = %s", scheme.WriteString(out))
	}
	// The places' engines booted inside the HRT: their heap mmaps and
	// signal setup were forwarded.
	if sys.AK.ForwardedSyscalls() == 0 {
		t.Error("no forwarded syscalls — places did not run in the HRT")
	}
}

func TestPlaceValueMarshalling(t *testing.T) {
	_, out := runWithPlaces(t, core.WorldNative, `
		(define p (place-spawn "(list 1 2.5 \"s\" 'sym #(7 8))"))
		(place-wait p)`)
	if got := scheme.WriteString(out); got != `(1 2.5 "s" sym #(7 8))` {
		t.Errorf("marshalled = %s", got)
	}
}

func TestPlaceErrorsSurface(t *testing.T) {
	fs := vfs.New()
	_ = scheme.InstallPrelude(fs)
	sys, err := bench.NewSystemForWorld(core.WorldNative, fs, "placeerr")
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, _ := places.NewEngine(env)
		_, runErr = eng.RunString(`(place-wait (place-spawn "(car 5)"))`)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "place failed") {
		t.Errorf("place error not surfaced: %v", runErr)
	}
}

func TestPlacesUnavailableWithoutAttach(t *testing.T) {
	fs := vfs.New()
	_ = scheme.InstallPrelude(fs)
	sys, err := bench.NewSystemForWorld(core.WorldNative, fs, "noplaces")
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, _ := scheme.NewEngine(env) // no Attach
		_, runErr = eng.RunString(`(place-spawn "1")`)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Error("place-spawn worked without a spawner")
	}
}

// TestAKCallFromScheme: the incremental -> accelerator transition — the
// same source probes its world and calls into the AeroKernel when
// hybridized.
func TestAKCallFromScheme(t *testing.T) {
	const probe = `(if (running-as-hrt?) (aerokernel-call "nk_sysinfo") -1)`

	_, native := runWithPlaces(t, core.WorldNative, probe)
	if native.Int != -1 {
		t.Errorf("native probe = %s", scheme.WriteString(native))
	}
	_, hrt := runWithPlaces(t, core.WorldHRT, probe)
	if hrt.Int != 1 { // one HRT core
		t.Errorf("hrt probe = %s", scheme.WriteString(hrt))
	}
}

// TestPlacesRunInParallelVirtualTime: two places each burning W cycles
// finish in ~W of the parent's virtual time, not ~2W — they are threads,
// not a queue.
func TestPlacesRunInParallelVirtualTime(t *testing.T) {
	seq := `
	(define (burn n a) (if (= n 0) a (burn (- n 1) (+ a 1))))
	(burn 60000 0) (burn 60000 0)`
	par := `
	(define p1 (place-spawn "(define (burn n a) (if (= n 0) a (burn (- n 1) (+ a 1)))) (burn 60000 0)"))
	(define p2 (place-spawn "(define (burn n a) (if (= n 0) a (burn (- n 1) (+ a 1)))) (burn 60000 0)"))
	(place-wait p1) (place-wait p2)`

	run := func(src string) float64 {
		sys, _ := runWithPlaces(t, core.WorldNative, src)
		return sys.Main.Clock.Now().Seconds()
	}
	seqTime := run(seq)
	parTime := run(par)
	if parTime >= seqTime {
		t.Errorf("parallel (%.5fs) not faster than sequential (%.5fs)", parTime, seqTime)
	}
}
