// Package places glues the runtime's place parallelism to Multiverse
// execution environments: each place spawned from Scheme runs a fresh
// interpreter instance on a thread created through the environment's
// pthread surface — natively an ordinary Linux thread, under Multiverse a
// new execution group (top-level HRT thread + ROS partner) through the
// pthread_create override.
package places

import (
	"fmt"
	"sync"

	"multiverse/internal/core"
	"multiverse/internal/scheme"
	"multiverse/internal/telemetry"
)

// Attach enables (place-spawn ...) / (place-wait ...) in the engine,
// backed by env's thread creation. Each spawned place is counted on the
// run's metrics registry, tagged with the core the scheduler (or the
// default boot-core pinning) placed it on, so scaling figures can show
// where places actually ran.
func Attach(eng *scheme.Engine, env core.Env) {
	eng.SetPlaceSpawner(func(src string) (func() (string, error), error) {
		var (
			mu     sync.Mutex
			result string
			perr   error
		)
		join, err := env.PthreadCreate(func(child core.Env) {
			if ts, ok := child.(interface{ TelemetryScope() telemetry.Scope }); ok {
				scope := ts.TelemetryScope()
				if scope.Metrics != nil {
					scope.Metrics.Counter("places.spawned").Inc()
					scope.Metrics.Counter(fmt.Sprintf("places.core.%d", scope.Track.Core)).Inc()
				}
			}
			childEng, cerr := scheme.NewEngine(child)
			if cerr != nil {
				mu.Lock()
				perr = fmt.Errorf("place boot: %w", cerr)
				mu.Unlock()
				return
			}
			v, cerr := childEng.RunString(src)
			childEng.Shutdown()
			mu.Lock()
			defer mu.Unlock()
			if cerr != nil {
				perr = cerr
				return
			}
			result = scheme.WriteString(v)
		})
		if err != nil {
			return nil, err
		}
		return func() (string, error) {
			join()
			mu.Lock()
			defer mu.Unlock()
			return result, perr
		}, nil
	})
}

// NewEngine builds an engine with places attached — the standard entry
// point for hosts that want full runtime functionality.
func NewEngine(env core.Env) (*scheme.Engine, error) {
	eng, err := scheme.NewEngine(env)
	if err != nil {
		return nil, err
	}
	Attach(eng, env)
	return eng, nil
}
