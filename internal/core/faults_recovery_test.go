package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
)

// writeN issues n forwarded write() calls to stdout and returns code.
func writeN(t *testing.T, n int, code uint64) func(Env) uint64 {
	return func(env Env) uint64 {
		for i := 0; i < n; i++ {
			res := env.Syscall(linuxabi.Call{
				Num:  linuxabi.SysWrite,
				Args: [6]uint64{1},
				Data: []byte("x"),
			})
			if !res.Ok() {
				t.Errorf("write %d: %v", i, res.Err)
			}
		}
		return code
	}
}

// TestJoinWedgeDeadline is the satellite-1 audit: a group whose HRT
// thread never exits must surface ErrGroupWedged within the wedge
// deadline instead of hanging WaitExit/Join forever.
func TestJoinWedgeDeadline(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "wedge", WedgeTimeout: 200 * time.Millisecond})
	block := make(chan struct{})
	g, err := sys.SpawnGroup(sys.Main.Clock, func(env Env) uint64 {
		<-block
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, jerr := g.Join(sys.Main); !errors.Is(jerr, ErrGroupWedged) {
		t.Fatalf("Join on wedged group = %v, want ErrGroupWedged", jerr)
	}
	// Unblocking the thread lets the group finish; a fresh wait succeeds.
	close(block)
	code, werr := g.WaitExit(sys.Main.Clock)
	if werr != nil || code != 0 {
		t.Fatalf("WaitExit after unblock = (%d, %v)", code, werr)
	}
}

// TestPartnerDeathRecovery scripts one partner-kill: the watchdog must
// respawn the partner, replay the merge, redeliver the in-flight
// envelope, and the program must complete with its output intact.
func TestPartnerDeathRecovery(t *testing.T) {
	sys := buildTestSystem(t, Options{
		AppName: "pkill",
		Faults:  &faults.Plan{Seed: 1, Spec: []faults.Injection{{Kind: "partner-kill"}}},
	})
	code, err := sys.RunMain(writeN(t, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 {
		t.Errorf("code = %d, want 7", code)
	}
	if got := sys.Proc.Stdout(); !bytes.Equal(got, []byte("xxxx")) {
		t.Errorf("stdout = %q, want %q", got, "xxxx")
	}
	m := sys.Metrics()
	if got := m.Counter("faults.injected.partner-kill").Value(); got != 1 {
		t.Errorf("partner-kill injections = %d, want 1", got)
	}
	if got := m.Counter("faults.recovery").Value(); got != 1 {
		t.Errorf("faults.recovery = %d, want 1", got)
	}
	if m.Counter("faults.degraded").Value() != 0 {
		t.Error("scripted single kill must not degrade the group")
	}
	if m.LatencyHistogram("faults.recovery.latency").Count() != 1 {
		t.Error("recovery latency not observed")
	}
}

// TestRecoveryBudgetDegrade exhausts the respawn budget (every serviced
// envelope kills the partner) and checks the graceful ROS-only fallback:
// the run still completes correctly, with faults.degraded recorded.
func TestRecoveryBudgetDegrade(t *testing.T) {
	sys := buildTestSystem(t, Options{
		AppName: "degrade",
		Faults:  &faults.Plan{Seed: 3, KillRate: 1, RecoveryBudget: 1},
	})
	code, err := sys.RunMain(writeN(t, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d", code)
	}
	if got := sys.Proc.Stdout(); !bytes.Equal(got, []byte("xxxxxx")) {
		t.Errorf("stdout = %q, want %q", got, "xxxxxx")
	}
	m := sys.Metrics()
	if got := m.Counter("faults.degraded").Value(); got != 1 {
		t.Errorf("faults.degraded = %d, want 1", got)
	}
	if got := m.Counter("faults.recovery").Value(); got != 1 {
		t.Errorf("faults.recovery = %d, want 1 (budget)", got)
	}
	if m.Counter("faults.degraded.served").Value() == 0 {
		t.Error("no syscalls served through the degraded fallback")
	}
}

// TestSeqnoDedupBrkMutation is the satellite-3 regression: with every
// notification duplicated, sequence-number dedup must keep brk mutation
// hooks firing exactly as often as in a clean run — a double-applied brk
// would fire the hook twice per call.
func TestSeqnoDedupBrkMutation(t *testing.T) {
	brkCalls := func(t *testing.T, sys *System) (uint64, int) {
		t.Helper()
		hooks := 0
		sys.Proc.AddMutationHook(func(ev ros.MutationEvent) {
			if ev.Kind == ros.MutBrk {
				hooks++
			}
		})
		code, err := sys.RunMain(func(env Env) uint64 {
			cur := env.Syscall(linuxabi.Call{Num: linuxabi.SysBrk}).Ret
			for i := 0; i < 3; i++ {
				cur += 4096
				if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysBrk, Args: [6]uint64{cur}}); !res.Ok() {
					t.Errorf("brk: %v", res.Err)
				}
			}
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		return code, hooks
	}

	clean := buildTestSystem(t, Options{AppName: "brk"})
	cleanCode, cleanHooks := brkCalls(t, clean)

	dup := buildTestSystem(t, Options{
		AppName: "brk",
		Faults:  &faults.Plan{Seed: 5, Rates: map[faults.Kind]float64{faults.DupNotify: 1}},
	})
	dupCode, dupHooks := brkCalls(t, dup)

	if cleanCode != dupCode {
		t.Errorf("codes diverge: clean %d, dup %d", cleanCode, dupCode)
	}
	if cleanHooks != dupHooks {
		t.Errorf("MutBrk hooks: clean %d, dup %d — a duplicate was double-applied", cleanHooks, dupHooks)
	}
	if dup.Metrics().Counter("faults.dedup").Value() == 0 {
		t.Error("no duplicates coalesced — DupNotify never fired?")
	}
}

// TestRouterLossDemotion scripts three consecutive notification losses
// through the router's async path: the fault policy must demote the
// channel to sync mode, then re-promote it after a clean window.
func TestRouterLossDemotion(t *testing.T) {
	sys := buildTestSystem(t, Options{
		AppName:      "lossy",
		Router:       true,
		RouterPolicy: hvm.RouterPolicy{LossStreak: 3, CleanStreak: 4},
		Faults: &faults.Plan{
			Seed:        11,
			MaxAttempts: 2, // one drop per forward, then forced clean
			Spec: []faults.Injection{
				{Kind: "drop-notify"}, {Kind: "drop-notify"}, {Kind: "drop-notify"},
			},
		},
	})
	code, err := sys.RunMain(writeN(t, 12, 0))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d", code)
	}
	if got := sys.Proc.Stdout(); len(got) != 12 {
		t.Errorf("stdout = %q, want 12 bytes", got)
	}
	m := sys.Metrics()
	if got := m.Counter("faults.retransmit").Value(); got != 3 {
		t.Errorf("faults.retransmit = %d, want 3", got)
	}
	if got := m.Counter("router.fault_demotions").Value(); got != 1 {
		t.Errorf("router.fault_demotions = %d, want 1", got)
	}
	if got := m.Counter("router.fault_repromotions").Value(); got != 1 {
		t.Errorf("router.fault_repromotions = %d, want 1", got)
	}
}

// TestHRTPanicContained injects a panic on every HRT syscall: the
// AeroKernel must contain each one on the IST stack and the program's
// output must be unaffected.
func TestHRTPanicContained(t *testing.T) {
	sys := buildTestSystem(t, Options{
		AppName: "panic",
		Faults:  &faults.Plan{Seed: 9, PanicRate: 1},
	})
	code, err := sys.RunMain(writeN(t, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d", code)
	}
	if got := sys.Proc.Stdout(); !bytes.Equal(got, []byte("xxx")) {
		t.Errorf("stdout = %q", got)
	}
	if sys.Metrics().Counter("ak.panic.contained").Value() == 0 {
		t.Error("no contained panics recorded")
	}
}
