package core

import (
	"testing"

	"multiverse/internal/aerokernel"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
)

func TestInitRuntimeSequence(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "init"})
	if sys.AK == nil {
		t.Fatal("AeroKernel not booted")
	}
	if !sys.AK.Merged() {
		t.Error("address spaces not merged at init")
	}
	if sys.Overrides == nil {
		t.Fatal("override set not built")
	}
	if _, ok := sys.Overrides.Lookup("pthread_create"); !ok {
		t.Error("default overrides not linked")
	}
	if !sys.HVM.Booted() {
		t.Error("HVM does not consider HRT booted")
	}
	if sys.HVM.InstalledImage() == nil {
		t.Error("no image installed")
	}
	// The embedded AeroKernel image round-tripped through the fat binary.
	if sys.HVM.InstalledImage().Name != "nautilus.bin" {
		t.Errorf("installed image = %q", sys.HVM.InstalledImage().Name)
	}
}

func TestInitRuntimeRequiresFatBinary(t *testing.T) {
	sys, err := NewSystem(nil, Options{Hybrid: true, AppName: "nofat"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InitRuntime(); err == nil {
		t.Error("init without fat binary accepted")
	}
}

func TestInitRuntimeNonHybridNoop(t *testing.T) {
	sys, err := NewSystem(nil, Options{AppName: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InitRuntime(); err != nil {
		t.Errorf("non-hybrid init: %v", err)
	}
	if sys.AK != nil {
		t.Error("baseline grew an AeroKernel")
	}
}

func TestHRTInvokeFuncAccelerator(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "accel"})
	ret, err := sys.HRTInvokeFunc(func(env Env) uint64 {
		hrt := env.(HRTExtras)
		v, err := hrt.AKCall("nk_sysinfo")
		if err != nil {
			t.Errorf("AKCall: %v", err)
		}
		return v + 100
	})
	if err != nil {
		t.Fatal(err)
	}
	if ret != 101 { // 1 HRT core + 100
		t.Errorf("ret = %d", ret)
	}
}

func TestPartnerOutlivesHRTThread(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "join"})
	g, err := sys.SpawnGroup(sys.Main.Clock, func(env Env) uint64 {
		env.Clock().Advance(1000)
		return 5
	})
	if err != nil {
		t.Fatal(err)
	}
	code, err := g.Join(sys.Main)
	if err != nil {
		t.Fatal(err)
	}
	if code != 5 {
		t.Errorf("join code = %d", code)
	}
	// Partner must be done by now (join semantics guarantee).
	select {
	case <-g.Partner().Done():
	default:
		t.Error("partner still running after join returned")
	}
	if sys.Groups() != 0 {
		t.Errorf("groups leaked: %d", sys.Groups())
	}
}

func TestExitHookRuns(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "hook"})
	ran := false
	sys.AddExitHook(func() { ran = true })
	if _, err := sys.RunMain(func(Env) uint64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("exit hook did not run")
	}
	if exited, _ := sys.Proc.Exited(); !exited {
		t.Error("process not exited")
	}
}

func TestVDSOOnHRTCoreCheaper(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "vdso"})

	// Measure vdso getpid from the ROS main thread.
	clk := sys.Main.Clock
	before := clk.Now()
	if _, errno := sys.Proc.VDSO(sys.Main, linuxabi.SysGetpid); errno != linuxabi.OK {
		t.Fatal(errno)
	}
	rosCost := clk.Now() - before

	var hrtCost uint64
	if _, err := sys.HRTInvokeFunc(func(env Env) uint64 {
		c := env.Clock()
		b := c.Now()
		if _, errno := env.VDSO(linuxabi.SysGetpid); errno != linuxabi.OK {
			t.Errorf("hrt vdso: %v", errno)
		}
		hrtCost = uint64(c.Now() - b)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if hrtCost >= uint64(rosCost) {
		t.Errorf("HRT vdso (%d) not cheaper than ROS vdso (%d) — Figure 9's effect missing", hrtCost, rosCost)
	}
}

func TestWorldString(t *testing.T) {
	if WorldNative.String() != "Native" || WorldVirtual.String() != "Virtual" || WorldHRT.String() != "Multiverse" {
		t.Error("world names must match the paper's figure labels")
	}
}

func TestCustomPartition(t *testing.T) {
	fat, err := Build(BuildInput{App: NewAppImage("p"), AeroKernel: NewAeroKernelImage()})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(fat, Options{
		Hybrid:   true,
		AppName:  "p",
		ROSCores: []machine.CoreID{0, 1},
		HRTCores: []machine.CoreID{4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InitRuntime(); err != nil {
		t.Fatal(err)
	}
	if got := sys.AK.Cores(); len(got) != 2 || got[0] != 4 {
		t.Errorf("HRT cores = %v", got)
	}
	// Cross-socket group still works.
	ret, err := sys.HRTInvokeFunc(func(env Env) uint64 { return 9 })
	if err != nil || ret != 9 {
		t.Errorf("cross-socket invoke = %d, %v", ret, err)
	}
}

func TestDisallowedCallsFromHRT(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "disallowed"})
	if _, err := sys.RunMain(func(env Env) uint64 {
		for _, num := range []linuxabi.Sysno{linuxabi.SysExecve, linuxabi.SysClone, linuxabi.SysFutex} {
			if res := env.Syscall(linuxabi.Call{Num: num}); res.Err != linuxabi.ENOSYS {
				t.Errorf("%v from HRT: %v, want ENOSYS", num, res.Err)
			}
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNestedThreadForwardsThroughParentPartner: a nested HRT thread has
// no partner of its own; its events reach the top-level thread's partner
// (section 4.2, Figure 7 step 5).
func TestNestedThreadForwardsThroughParentPartner(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "nested"})
	if _, err := sys.RunMain(func(env Env) uint64 {
		top := env.(*hrtEnv).t
		nested := top.CreateNested()
		done := make(chan linuxabi.Result, 1)
		nested.Start(func(nt *aerokernel.Thread) uint64 {
			done <- nt.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
			return 0
		})
		res := <-done
		if !res.Ok() || int(res.Ret) != sys.Proc.Pid() {
			t.Errorf("nested getpid = %+v", res)
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
}
