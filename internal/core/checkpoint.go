package core

import (
	"errors"

	"multiverse/internal/aerokernel"
	"multiverse/internal/cycles"
	"multiverse/internal/hvm"
	"multiverse/internal/telemetry"
)

// This file is the checkpoint/restore half of live migration: the
// serialized image of one quiesced execution group (GroupCheckpoint),
// the group-side Checkpoint/RestoreGroup building blocks, and the
// voluntary-migration syscall gate. The Grid (grid.go) is the safe
// driver for all of it — it owns the quiesce protocol, the dedicated
// migration clock, and the lifeMu serialization against the watchdog.

// ErrNotMigratable reports that a group cannot be checkpointed or
// migrated: it is not grid-hosted, already dead, or running degraded
// (a degraded group's channel state is entangled with its fallback
// service context and does not move).
var ErrNotMigratable = errors.New("multiverse: group not migratable (dead, degraded, or not grid-hosted)")

// DeltaSlot is one touched top-level page-table slot in a checkpoint
// image. The PR-3 per-PML4-slot generation stamps make the serialized
// address space a delta — only the slots the group's process actually
// mutated are carried, and the stamp lets the target detect staleness.
type DeltaSlot struct {
	Slot int
	Gen  uint64
}

// GroupCheckpoint is the full superposed state of one quiesced
// execution group, sufficient to resume it on another grid node:
// the HRT thread context, the partner's exact virtual time (the new
// partner resumes at it, which is what makes migration virtually
// transparent), the address-space delta, the event-channel
// seqno/retransmission window (in-flight calls replay idempotently
// after restore), and the router tier state (rings torn down to the
// tier-2 fallback, exactly as in partner-kill recovery).
type GroupCheckpoint struct {
	GroupID    uint64
	SourceNode int

	// HRT execution context. Restore does not rebuild the context from
	// these fields — the simulation re-homes the live thread object —
	// but they are what a real image would carry, they size the
	// transfer costs, and tests assert them against the live state.
	HRTThreadID int
	HRTClock    cycles.Cycles
	StackSP     uint64
	StackBytes  uint64
	FSBase      uint64

	// Partner context: the clock the restored partner resumes at and
	// the TID whose per-thread ROS state (timers, handlers) was live.
	PartnerClock cycles.Cycles
	PartnerTID   int

	// Delta is the merged-address-space delta (PML4 slots with nonzero
	// generation stamps).
	Delta []DeltaSlot

	// Window is the event channel's seqno/retransmission window at the
	// quiesce point.
	Window hvm.ChannelWindow

	// Router is the quiesced router state (nil when the router is off):
	// tier-3 hold flags for clean-streak re-promotion and the local
	// process-invariant state, which migrates as-is so tier-0 answers
	// stay byte-identical.
	Router *hvm.RouterCheckpoint

	ExitRequested bool
}

// Checkpoint serializes the group's superposed state. The caller (the
// Grid) must have quiesced the group first: partner interrupted and
// exited, no forwarded call in flight on the HRT side, lifeMu held.
// All costs charge migClk — the dedicated migration clock — never a
// group clock, so the workload's virtual times match an unmigrated run.
func (g *ExecutionGroup) Checkpoint(migClk *cycles.Clock) *GroupCheckpoint {
	src := g.sys()
	cost := src.Machine.Cost
	p := g.partnerRef()

	var delta []DeltaSlot
	for slot, gen := range src.Proc.PML4Generations() {
		if gen > 0 {
			delta = append(delta, DeltaSlot{Slot: slot, Gen: gen})
		}
	}
	var rcp *hvm.RouterCheckpoint
	if g.router != nil {
		r := g.router.Quiesce(migClk)
		rcp = &r
	}
	var stackBytes, stackSP uint64
	if g.akStack != nil {
		stackBytes = uint64(g.akStack.Size())
		stackSP = uint64(g.akStack.SP())
	}
	cp := &GroupCheckpoint{
		GroupID:       g.id,
		SourceNode:    src.gridNode,
		HRTThreadID:   g.hrt.ID,
		HRTClock:      g.hrt.Clock.Now(),
		StackSP:       stackSP,
		StackBytes:    stackBytes,
		FSBase:        g.hrt.FSBase,
		PartnerClock:  p.Clock.Now(),
		PartnerTID:    p.TID,
		Delta:         delta,
		Window:        g.channel.Window(),
		Router:        rcp,
		ExitRequested: g.exitRequested.Load(),
	}
	migClk.Advance(cost.CheckpointBase +
		cycles.Cycles(len(delta))*cost.CheckpointPerSlot)
	src.recorder.Record(migClk.Now(), telemetry.RecCheckpoint, g.id, 0,
		uint64(len(delta)), uint64(len(cp.Window.Inflight)))
	return cp
}

// RestoreGroup resumes a checkpointed group on this System (the target
// node): a fresh partner thread at the source partner's exact virtual
// time, the mirrored-state merge replayed (delta-cheap under the
// incremental merger), the registry and live-count accounting moved
// between fault domains, the channel window requeued so in-flight and
// pending envelopes redeliver exactly once, and the router hooks
// rebound to this node's Proc and HVM. Transfer and rebuild costs
// charge migClk. The caller holds the group's lifeMu with relocating
// set and the old partner already exited; the AK-thread re-home is the
// caller's job (inline for a voluntary migration, deferred to the next
// boundary crossing for a forced restore).
func (s *System) RestoreGroup(g *ExecutionGroup, cp *GroupCheckpoint, migClk *cycles.Clock) {
	src := g.sys()
	cost := s.Machine.Cost
	pages := (cp.StackBytes + 4095) / 4096
	migClk.Advance(cost.GridTransferBase +
		cycles.Cycles(pages)*cost.GridTransferPerPage +
		cost.RestoreBase + cost.ROSThreadCreate)

	// Fresh partner on the target, synced to the source partner's final
	// time: Reply.Departure after the move is bit-for-bit what an
	// unmigrated run would have produced.
	pt := s.Proc.NewThread(g.rosCore)
	pt.Clock.SyncTo(cp.PartnerClock)

	// Replay the mirrored-state merge on the target node, best-effort
	// exactly as in watchdog respawn.
	if err := s.HVM.MergeAddressSpace(migClk, s.Proc.CR3()); err != nil {
		_ = err
	}

	// Move the group between fault domains: registry entry, live-count
	// accounting, and the hosting-System pointer.
	src.groups.delete(g.id)
	src.noteGroupDead()
	s.groups.store(g.id, g)
	s.noteGroupMigratedIn()
	g.sysv.Store(s)

	// In-flight and pending envelopes redeliver through the new partner;
	// completed seqnos stay deduplicated in the window, so the replay is
	// exactly-once — zero lost, zero duplicated syscalls.
	g.channel.Requeue(pt.Clock.Now())
	g.gen.Add(1) // kill rolls re-key, as in respawn
	g.channel.ArmPartnerInterrupt()
	g.setPartner(pt)

	if g.router != nil {
		// The quiesced router survives the move (tier state, hold
		// flags, local mirror); only its hooks must re-target this
		// node's Proc/HVM.
		g.bindRouterHooks(s, g.rosCore, g.hrt.Core)
	}

	s.recorder.Record(migClk.Now(), telemetry.RecRestore, g.id, 0,
		uint64(cp.SourceNode), uint64(s.gridNode))
	if s.faults != nil {
		// The source watchdog stood down when the partner it watched
		// was replaced under relocating; arm a fresh one here.
		go g.watch()
	}
	pt.Start(nil, g.serve)
}

// migrateRequest is an armed voluntary migration, claimed by the
// syscall gate at the group's next boundary crossing past afterCalls.
type migrateRequest struct {
	gr         *Grid
	target     *System
	targetNode int
	afterCalls uint64
	done       chan struct{}
	err        error
}

// syscallGate runs at every boundary crossing of a grid-hosted group,
// on the HRT goroutine itself, at zero virtual cost. It retires a
// deferred AK-thread re-home (the first provably quiescent point after
// a forced restore) and fires an armed voluntary migration.
func (g *ExecutionGroup) syscallGate(t *aerokernel.Thread) {
	if g.rehomePending.CompareAndSwap(true, false) {
		if ak := g.sys().AK; ak != nil {
			t.Rehome(ak)
		}
	}
	n := g.gateCalls.Add(1)
	req := g.gateReq.Load()
	if req == nil || n <= req.afterCalls {
		return
	}
	if !g.gateReq.CompareAndSwap(req, nil) {
		return
	}
	req.err = req.gr.migrateNow(g, t, req.target, req.targetNode)
	close(req.done)
}
