package core

import (
	"errors"
	"sync"
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
)

// holdFn is a group body that checks in on arrived and then blocks until
// the gate releases — how these tests hold many groups live at once.
func holdFn(arrived chan<- struct{}, gate <-chan struct{}) func(Env) uint64 {
	return func(Env) uint64 {
		arrived <- struct{}{}
		<-gate
		return 0
	}
}

// TestGroupMapLeakRegression is the unbounded-growth fix pinned as a
// regression: spawning and joining 10k groups must leave the registry
// empty and keep it from accumulating along the way. Before this PR,
// exited groups stayed in System.groups forever.
func TestGroupMapLeakRegression(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "leak", WarmPool: 2})
	const total = 10_000
	clk := cycles.NewClock(0)
	for i := 0; i < total; i++ {
		g, err := sys.SpawnGroup(clk, func(Env) uint64 { return 0 })
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		if _, jerr := g.WaitExit(clk); jerr != nil {
			t.Fatalf("join %d: %v", i, jerr)
		}
		if i%1000 == 999 {
			if n := sys.GroupTableSize(); n > 1 {
				t.Fatalf("after %d spawn+join cycles the registry holds %d entries", i+1, n)
			}
		}
	}
	if n := sys.GroupTableSize(); n != 0 {
		t.Errorf("registry holds %d entries after all joins, want 0", n)
	}
	if live := sys.LiveGroups(); live != 0 {
		t.Errorf("live-group count = %d after all joins, want 0", live)
	}
}

// TestSpawnFailureLeavesNoResidue pins the other leak: a spawn that fails
// (AeroKernel halted) must unregister the stillborn group and drop its
// pending-spawn entry instead of leaking both.
func TestSpawnFailureLeavesNoResidue(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "residue"})
	sys.AK.Halt()
	if _, err := sys.SpawnGroup(cycles.NewClock(0), func(Env) uint64 { return 0 }); err == nil {
		t.Fatal("spawn on a halted kernel succeeded")
	}
	if n := sys.GroupTableSize(); n != 0 {
		t.Errorf("failed spawn left %d registry entries", n)
	}
	if n := sys.pendingSpawns.size(); n != 0 {
		t.Errorf("failed spawn left %d pending-spawn entries", n)
	}
	if live := sys.LiveGroups(); live != 0 {
		t.Errorf("failed spawn left live-group count %d", live)
	}
}

// TestDensityConcurrentSpawnJoin drives concurrent SpawnGroup/WaitExit
// interleavings across the sharded registries from many host goroutines —
// the go test -race coverage of the sharding refactor.
func TestDensityConcurrentSpawnJoin(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "dense", WarmPool: 8})
	const spawners = 8
	const perSpawner = 16
	var wg sync.WaitGroup
	errs := make([]error, spawners)
	for si := 0; si < spawners; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			clk := cycles.NewClock(0)
			for k := 0; k < perSpawner; k++ {
				g, err := sys.SpawnGroup(clk, func(env Env) uint64 {
					res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
					if !res.Ok() {
						return 1
					}
					return 0
				})
				if err != nil {
					errs[si] = err
					return
				}
				code, jerr := g.WaitExit(clk)
				if jerr != nil {
					errs[si] = jerr
					return
				}
				if code != 0 {
					errs[si] = errors.New("nonzero exit code")
					return
				}
			}
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			t.Fatalf("spawner %d: %v", si, err)
		}
	}
	if n := sys.GroupTableSize(); n != 0 {
		t.Errorf("registry holds %d entries after all joins, want 0", n)
	}
}

// TestDensitySpawnDuringRespawn interleaves fresh spawns with a victim
// group's partner-kill recovery: the watchdog respawn must not disturb
// concurrent spawn traffic on other shards, and the scoped plan must not
// touch the bystanders.
func TestDensitySpawnDuringRespawn(t *testing.T) {
	sys := buildTestSystem(t, Options{
		AppName: "respawn-dense",
		Faults: &faults.Plan{
			Seed:   11,
			Groups: []uint64{1},
			Spec:   []faults.Injection{{Kind: "partner-kill"}},
		},
	})
	// Victim first, so it takes group id 1 (in the plan's scope).
	vclk := cycles.NewClock(0)
	victim, err := sys.SpawnGroup(vclk, func(env Env) uint64 {
		for i := 0; i < 4; i++ {
			if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
				return 1
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}

	const spawners = 4
	var wg sync.WaitGroup
	errs := make([]error, spawners)
	for si := 0; si < spawners; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			clk := cycles.NewClock(0)
			for k := 0; k < 8; k++ {
				g, serr := sys.SpawnGroup(clk, func(env Env) uint64 {
					if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
						return 1
					}
					return 0
				})
				if serr != nil {
					errs[si] = serr
					return
				}
				if code, jerr := g.WaitExit(clk); jerr != nil || code != 0 {
					errs[si] = errors.New("bystander group failed")
					return
				}
			}
		}(si)
	}
	code, jerr := victim.WaitExit(vclk)
	wg.Wait()
	if jerr != nil || code != 0 {
		t.Fatalf("victim WaitExit = (%d, %v)", code, jerr)
	}
	for si, serr := range errs {
		if serr != nil {
			t.Fatalf("spawner %d: %v", si, serr)
		}
	}
	if n := sys.metrics.Counter("faults.recovery").Value(); n != 1 {
		t.Errorf("faults.recovery = %d, want 1 (the scripted kill)", n)
	}
}

// TestDensityFaultIsolation is the multi-tenant isolation contract: a
// plan scoped to one group must leave every other group's program-visible
// behavior byte-identical to a run where no fault fires, and the victim's
// recovery replay must not duplicate its output. (Absolute virtual finish
// times are NOT compared: the AeroKernel event loop is a shared resource
// whose clock legitimately ratchets forward with the victim's
// retransmission traffic.)
func TestDensityFaultIsolation(t *testing.T) {
	// run executes one victim + three bystanders sequentially under the
	// given plan and returns the combined stdout plus the recovery count.
	run := func(plan *faults.Plan) (string, uint64) {
		sys := buildTestSystem(t, Options{AppName: "isolation", Faults: plan})
		clk := cycles.NewClock(0)
		for i, letter := range []string{"a", "b", "c", "d"} {
			data := []byte(letter)
			g, err := sys.SpawnGroup(clk, func(env Env) uint64 {
				for j := 0; j < 3; j++ {
					res := env.Syscall(linuxabi.Call{
						Num:  linuxabi.SysWrite,
						Args: [6]uint64{1},
						Data: data,
					})
					if !res.Ok() {
						return 1
					}
				}
				return 0
			})
			if err != nil {
				t.Fatal(err)
			}
			if code, jerr := g.WaitExit(clk); jerr != nil || code != 0 {
				t.Fatalf("group %d: code %d err %v", i, code, jerr)
			}
		}
		return string(sys.Proc.Stdout()), sys.metrics.Counter("faults.recovery").Value()
	}

	clean, cleanRecov := run(&faults.Plan{Seed: 7, Groups: []uint64{1}})
	faulted, faultedRecov := run(&faults.Plan{
		Seed:   7,
		Groups: []uint64{1},
		Spec:   []faults.Injection{{Kind: "partner-kill"}},
	})
	if cleanRecov != 0 {
		t.Fatalf("clean run recovered %d times, want 0", cleanRecov)
	}
	if faultedRecov != 1 {
		t.Fatalf("faulted run recovered %d times, want 1 (victim)", faultedRecov)
	}
	if clean != "aaabbbcccddd" {
		t.Fatalf("clean stdout = %q, want %q", clean, "aaabbbcccddd")
	}
	if faulted != clean {
		t.Errorf("stdout diverged under scoped fault: clean %q, victim-faulted %q", clean, faulted)
	}
}

// TestAdmissionMaxGroups pins the group cap: the cap-th+1 spawn is
// deterministically rejected with ErrAdmissionRejected, and capacity
// frees on join.
func TestAdmissionMaxGroups(t *testing.T) {
	const cap = 4
	sys := buildTestSystem(t, Options{AppName: "admission", MaxGroups: cap})
	gate := make(chan struct{})
	arrived := make(chan struct{}, cap)
	clk := cycles.NewClock(0)
	var held []*ExecutionGroup
	for i := 0; i < cap; i++ {
		g, err := sys.SpawnGroup(clk, holdFn(arrived, gate))
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		held = append(held, g)
	}
	for i := 0; i < cap; i++ {
		<-arrived
	}
	if _, err := sys.SpawnGroup(clk, func(Env) uint64 { return 0 }); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("over-cap spawn = %v, want ErrAdmissionRejected", err)
	}
	close(gate)
	for i, g := range held {
		if _, jerr := g.WaitExit(clk); jerr != nil {
			t.Fatalf("join %d: %v", i, jerr)
		}
	}
	// Capacity is free again.
	g, err := sys.SpawnGroup(clk, func(Env) uint64 { return 0 })
	if err != nil {
		t.Fatalf("post-join spawn: %v", err)
	}
	if _, jerr := g.WaitExit(clk); jerr != nil {
		t.Fatal(jerr)
	}
	if n := sys.metrics.Counter("density.admission.rejected").Value(); n != 1 {
		t.Errorf("density.admission.rejected = %d, want 1", n)
	}
}

// TestAdmissionBudget pins the boundary budgets: cycles exhaust into
// EAGAIN, memory reservations exhaust into ENOMEM, and both rejections
// are deterministic program-order decisions.
func TestAdmissionBudget(t *testing.T) {
	sys := buildTestSystem(t, Options{
		AppName:      "budget",
		TenantBudget: &TenantBudget{Cycles: 60_000, MemBytes: 8192},
	})
	clk := cycles.NewClock(0)

	var ok, again int
	g, err := sys.SpawnGroup(clk, func(env Env) uint64 {
		for i := 0; i < 10; i++ {
			switch res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); res.Err {
			case linuxabi.OK:
				ok++
			case linuxabi.EAGAIN:
				again++
			default:
				return 1
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, jerr := g.WaitExit(clk); jerr != nil || code != 0 {
		t.Fatalf("cycle-budget group: code %d err %v", code, jerr)
	}
	if ok == 0 || again == 0 || ok+again != 10 {
		t.Errorf("cycle budget split = %d issued / %d EAGAIN, want both nonzero summing to 10", ok, again)
	}

	var mok, enomem int
	g2, err := sys.SpawnGroup(clk, func(env Env) uint64 {
		for i := 0; i < 3; i++ {
			res := env.Syscall(linuxabi.Call{
				Num:  linuxabi.SysMmap,
				Args: [6]uint64{0, 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
			})
			switch res.Err {
			case linuxabi.OK:
				mok++
			case linuxabi.ENOMEM:
				enomem++
			default:
				return 1
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, jerr := g2.WaitExit(clk); jerr != nil || code != 0 {
		t.Fatalf("mem-budget group: code %d err %v", code, jerr)
	}
	if mok != 2 || enomem != 1 {
		t.Errorf("mem budget split = %d issued / %d ENOMEM, want 2 / 1", mok, enomem)
	}
}

// TestWarmPoolReuseCheaper pins the warm-spawn claim: a warm reuse must
// cost the creator at least 10x fewer virtual cycles than a cold boot.
func TestWarmPoolReuseCheaper(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "warm", WarmPool: 2})
	clk := cycles.NewClock(0)

	t0 := clk.Now()
	g1, err := sys.SpawnGroup(clk, func(Env) uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	cold := clk.Now() - t0
	if _, jerr := g1.WaitExit(clk); jerr != nil {
		t.Fatal(jerr)
	}

	t1 := clk.Now()
	g2, err := sys.SpawnGroup(clk, func(Env) uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	warm := clk.Now() - t1
	if _, jerr := g2.WaitExit(clk); jerr != nil {
		t.Fatal(jerr)
	}

	if hits := sys.metrics.Counter("density.warm.hits").Value(); hits != 1 {
		t.Fatalf("density.warm.hits = %d, want 1", hits)
	}
	if warm == 0 || cold < 10*warm {
		t.Errorf("warm spawn %d cycles vs cold %d: want >= 10x cheaper", warm, cold)
	}
}

// TestWarmPoolBounded pins the pool bound: exits beyond capacity drop
// their context instead of growing the pool.
func TestWarmPoolBounded(t *testing.T) {
	const poolMax = 2
	const groups = 5
	sys := buildTestSystem(t, Options{AppName: "bounded", WarmPool: poolMax})
	gate := make(chan struct{})
	arrived := make(chan struct{}, groups)
	clk := cycles.NewClock(0)
	var held []*ExecutionGroup
	for i := 0; i < groups; i++ {
		g, err := sys.SpawnGroup(clk, holdFn(arrived, gate))
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		held = append(held, g)
	}
	for i := 0; i < groups; i++ {
		<-arrived
	}
	close(gate)
	for i, g := range held {
		if _, jerr := g.WaitExit(clk); jerr != nil {
			t.Fatalf("join %d: %v", i, jerr)
		}
	}
	if n := sys.WarmPoolSize(); n != poolMax {
		t.Errorf("warm pool holds %d slots, want %d", n, poolMax)
	}
	m := sys.metrics
	if ret := m.Counter("density.warm.returns").Value(); ret != poolMax {
		t.Errorf("density.warm.returns = %d, want %d", ret, poolMax)
	}
	if drops := m.Counter("density.warm.drops").Value(); drops != groups-poolMax {
		t.Errorf("density.warm.drops = %d, want %d", drops, groups-poolMax)
	}
}
