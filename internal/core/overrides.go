package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"multiverse/internal/aerokernel"
	"multiverse/internal/cycles"
	"multiverse/internal/telemetry"
)

// OverrideSpec is one line of the override configuration file: which
// legacy function is interposed, which AeroKernel symbol replaces it, and
// how the legacy arguments map onto the AeroKernel variant's parameters
// ("specifies the function's attributes and argument mappings between the
// legacy function and the AeroKernel variant", section 4.2).
type OverrideSpec struct {
	Legacy   string
	AKSymbol string
	// ArgMap gives, for each AeroKernel parameter, the index of the
	// legacy argument it receives. Empty means identity.
	ArgMap []int
}

// ParseOverrides reads the override configuration format:
//
//	# comment
//	override <legacy-name> => <aerokernel-symbol> [args(<i>,<j>,...)]
//
// The toolchain compiles this file into the fat binary's .hrt.overrides
// section; the runtime parses it back at initialization and generates the
// wrappers.
func ParseOverrides(data []byte) ([]OverrideSpec, error) {
	var specs []OverrideSpec
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != "override" || fields[2] != "=>" {
			return nil, fmt.Errorf("overrides: line %d: want \"override <legacy> => <symbol> [args(...)]\", got %q", lineNo+1, line)
		}
		spec := OverrideSpec{Legacy: fields[1], AKSymbol: fields[3]}
		if len(fields) >= 5 {
			arg := fields[4]
			if !strings.HasPrefix(arg, "args(") || !strings.HasSuffix(arg, ")") {
				return nil, fmt.Errorf("overrides: line %d: malformed args clause %q", lineNo+1, arg)
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(arg, "args("), ")")
			if inner != "" {
				for _, part := range strings.Split(inner, ",") {
					idx, err := strconv.Atoi(strings.TrimSpace(part))
					if err != nil || idx < 0 {
						return nil, fmt.Errorf("overrides: line %d: bad argument index %q", lineNo+1, part)
					}
					spec.ArgMap = append(spec.ArgMap, idx)
				}
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// FormatOverrides renders specs back to the configuration format (the
// toolchain uses it to embed the config in the fat binary).
func FormatOverrides(specs []OverrideSpec) []byte {
	var b strings.Builder
	b.WriteString("# Multiverse AeroKernel override configuration\n")
	for _, s := range specs {
		fmt.Fprintf(&b, "override %s => %s", s.Legacy, s.AKSymbol)
		if len(s.ArgMap) > 0 {
			strs := make([]string, len(s.ArgMap))
			for i, v := range s.ArgMap {
				strs[i] = strconv.Itoa(v)
			}
			fmt.Fprintf(&b, " args(%s)", strings.Join(strs, ","))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Wrapper is one generated function wrapper. When the overridden function
// is invoked, the wrapper runs instead: it consults the stored mapping for
// the AeroKernel symbol name, performs a symbol lookup to find its HRT
// virtual address, and invokes the function directly (section 4.2).
//
// The lookup "currently occurs on every function invocation, so incurs a
// non-trivial overhead. A symbol cache ... could easily be added" — both
// behaviours are implemented; UseCache selects between them (the
// symbol-cache ablation).
type Wrapper struct {
	Spec     OverrideSpec
	UseCache bool

	mu         sync.Mutex
	cachedAddr uint64
	cacheValid bool

	invocations uint64
	lookups     uint64

	tracer  *telemetry.Tracer
	metrics *telemetry.Registry
}

// Invoke runs the wrapper on HRT thread t.
func (w *Wrapper) Invoke(t *aerokernel.Thread, args ...uint64) (uint64, error) {
	w.mu.Lock()
	w.invocations++
	addr := w.cachedAddr
	valid := w.UseCache && w.cacheValid
	w.mu.Unlock()

	sp := w.tracer.Begin(telemetry.Track{Core: int(t.Core), Name: "hrt"},
		"override", "override:"+w.Spec.Legacy, t.Clock.Now())
	defer func() { sp.EndAt(t.Clock.Now()) }()

	if valid {
		w.metrics.Counter("override.cache_hits").Inc()
	} else {
		w.metrics.Counter("override.cache_misses").Inc()
		lk := w.tracer.Begin(telemetry.Track{Core: int(t.Core), Name: "hrt"},
			"override", "symbol-lookup", t.Clock.Now())
		var ok bool
		addr, ok = t.Kernel().LookupSymbol(t.Clock, w.Spec.AKSymbol)
		lk.EndAt(t.Clock.Now())
		if !ok {
			return 0, fmt.Errorf("overrides: symbol %q not found in AeroKernel", w.Spec.AKSymbol)
		}
		w.mu.Lock()
		w.lookups++
		if w.UseCache {
			w.cachedAddr = addr
			w.cacheValid = true
		}
		w.mu.Unlock()
	}
	w.metrics.Counter("override.invocations").Inc()

	mapped := args
	if len(w.Spec.ArgMap) > 0 {
		mapped = make([]uint64, len(w.Spec.ArgMap))
		for i, src := range w.Spec.ArgMap {
			if src >= len(args) {
				return 0, fmt.Errorf("overrides: %s maps argument %d but call has %d", w.Spec.Legacy, src, len(args))
			}
			mapped[i] = args[src]
		}
	}
	// Already executing in HRT context with AeroKernel mappings: direct
	// call, no crossing.
	t.Clock.Advance(cycles.Cycles(20)) // wrapper prologue/indirect call
	return t.Kernel().CallByAddr(t, addr, mapped...)
}

// Stats reports invocation and lookup counts (equal when uncached).
func (w *Wrapper) Stats() (invocations, lookups uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.invocations, w.lookups
}

// OverrideSet is the linked wrapper table of one hybridized binary.
type OverrideSet struct {
	mu       sync.Mutex
	byLegacy map[string]*Wrapper
	useCache bool
}

// NewOverrideSet builds wrappers for the specs. useCache enables the
// symbol cache on every wrapper.
func NewOverrideSet(specs []OverrideSpec, useCache bool) *OverrideSet {
	s := &OverrideSet{byLegacy: make(map[string]*Wrapper), useCache: useCache}
	for _, spec := range specs {
		s.byLegacy[spec.Legacy] = &Wrapper{Spec: spec, UseCache: useCache}
	}
	return s
}

// SetTelemetry points every wrapper at the run's tracer and metrics.
// Called by the runtime after construction so NewOverrideSet's signature
// stays stable for existing callers; both arguments may be nil.
func (s *OverrideSet) SetTelemetry(tr *telemetry.Tracer, m *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.byLegacy {
		w.tracer = tr
		w.metrics = m
	}
}

// Lookup returns the wrapper interposing the legacy function, if any.
func (s *OverrideSet) Lookup(legacy string) (*Wrapper, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.byLegacy[legacy]
	return w, ok
}

// Names lists the interposed legacy functions.
func (s *OverrideSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byLegacy))
	for n := range s.byLegacy {
		out = append(out, n)
	}
	return out
}

// DefaultOverrides are the interpositions the Multiverse runtime always
// enforces: the pthread entry points map to AeroKernel threads so that
// legacy threading "automatically maps to the corresponding AeroKernel
// functionality with semantics matching those used in pthreads"
// (section 3.3, Incremental).
func DefaultOverrides() []OverrideSpec {
	return []OverrideSpec{
		{Legacy: "pthread_create", AKSymbol: "nk_thread_create"},
		{Legacy: "pthread_join", AKSymbol: "nk_thread_join"},
		{Legacy: "pthread_exit", AKSymbol: "nk_thread_exit"},
	}
}
