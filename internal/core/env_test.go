package core

import (
	"strings"
	"testing"

	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
)

func TestNativeEnvSurface(t *testing.T) {
	sys, err := NewSystem(nil, Options{AppName: "envsurf"})
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NativeEnv()

	if env.Process() != sys.Proc {
		t.Error("Process() mismatch")
	}
	before := env.Clock().Now()
	env.Compute(1234)
	if env.Clock().Now()-before != 1234 {
		t.Error("Compute did not advance the clock")
	}
	if st := sys.Proc.Stats(); st.UserCycles != 1234 {
		t.Errorf("user time = %d", st.UserCycles)
	}

	pid, errno := env.VDSO(linuxabi.SysGetpid)
	if errno != linuxabi.OK || int(pid) != sys.Proc.Pid() {
		t.Errorf("vdso getpid = %d, %v", pid, errno)
	}

	// CheckTimer with no timer armed is false.
	if env.CheckTimer() {
		t.Error("timer fired with none armed")
	}

	// RegisterSignalCode + rt_sigaction + delivery.
	fired := false
	env.RegisterSignalCode(0x7100_0000, func(*ros.SignalContext) { fired = true })
	env.Syscall(linuxabi.Call{Num: linuxabi.SysRtSigaction, Args: [6]uint64{uint64(linuxabi.SIGTERM), 0x7100_0000}})
	sys.Proc.SendSignal(env.Clock(), linuxabi.SIGTERM)
	if !fired {
		t.Error("registered handler did not run")
	}

	// Touch error formatting wraps the errno.
	if err := env.Touch(0xdead_0000, true); err == nil || !strings.Contains(err.Error(), "EFAULT") {
		t.Errorf("touch of unmapped address: %v", err)
	}
}

func TestNativeEnvVirtualWorldTag(t *testing.T) {
	sys, err := NewSystem(nil, Options{AppName: "tag", Virtual: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NativeEnv().World() != WorldVirtual {
		t.Error("virtual system not tagged WorldVirtual")
	}
}

func TestHotspotProfileUnit(t *testing.T) {
	hp := newHotspotProfile()
	hp.record("mmap", 1000)
	hp.record("mmap", 500)
	hp.record("page-fault", 9000)
	entries := hp.Entries()
	if len(entries) != 2 || entries[0].Name != "page-fault" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[1].Count != 2 || entries[1].Cycles != 1500 {
		t.Errorf("mmap entry = %+v", entries[1])
	}
	count, total := hp.Total()
	if count != 3 || total != 10500 {
		t.Errorf("total = %d, %d", count, total)
	}
	rep := hp.Report()
	for _, want := range []string{"page-fault", "mmap", "85.7%", "total forwarding time"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestWrapperStats(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "wstats"})
	if _, err := sys.RunMain(func(env Env) uint64 {
		join, err := env.PthreadCreate(func(Env) {})
		if err != nil {
			t.Error(err)
			return 1
		}
		join()
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	w, _ := sys.Overrides.Lookup("pthread_create")
	inv, lookups := w.Stats()
	if inv != 1 || lookups != 1 {
		t.Errorf("wrapper stats = %d invocations, %d lookups", inv, lookups)
	}
}
