package core

import (
	"strings"
	"testing"
	"testing/quick"

	"multiverse/internal/image"
)

func TestParseOverridesGood(t *testing.T) {
	src := `
# comment line

override pthread_create => nk_thread_create
override sum2 => demo_sum args(1,0)
override noargs => nk_thing args()
`
	specs, err := ParseOverrides([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Legacy != "pthread_create" || specs[0].AKSymbol != "nk_thread_create" || specs[0].ArgMap != nil {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if len(specs[1].ArgMap) != 2 || specs[1].ArgMap[0] != 1 || specs[1].ArgMap[1] != 0 {
		t.Errorf("spec 1 argmap = %v", specs[1].ArgMap)
	}
	if specs[2].ArgMap != nil {
		t.Errorf("empty args() should mean identity, got %v", specs[2].ArgMap)
	}
}

func TestParseOverridesBad(t *testing.T) {
	bad := []string{
		"override onlyname",
		"override a -> b",          // wrong arrow
		"override a => b args(x)",  // non-numeric index
		"override a => b args(-1)", // negative index
		"interpose a => b",         // wrong keyword
		"override a => b args(1,2", // unterminated
	}
	for _, src := range bad {
		if _, err := ParseOverrides([]byte(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	specs := []OverrideSpec{
		{Legacy: "a", AKSymbol: "nk_a"},
		{Legacy: "b", AKSymbol: "nk_b", ArgMap: []int{2, 0, 1}},
	}
	out, err := ParseOverrides(FormatOverrides(specs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].ArgMap[0] != 2 {
		t.Errorf("round trip = %+v", out)
	}
}

// Property: format/parse round-trips arbitrary well-formed specs.
func TestFormatParseProperty(t *testing.T) {
	sanitize := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
				return r
			}
			return 'x'
		}, s)
		if s == "" {
			s = "f"
		}
		return s
	}
	prop := func(legacy, symbol string, argmapRaw []uint8) bool {
		spec := OverrideSpec{Legacy: sanitize(legacy), AKSymbol: sanitize(symbol)}
		for _, a := range argmapRaw {
			spec.ArgMap = append(spec.ArgMap, int(a%6))
		}
		out, err := ParseOverrides(FormatOverrides([]OverrideSpec{spec}))
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0]
		if got.Legacy != spec.Legacy || got.AKSymbol != spec.AKSymbol || len(got.ArgMap) != len(spec.ArgMap) {
			return false
		}
		for i := range spec.ArgMap {
			if got.ArgMap[i] != spec.ArgMap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOverrideSetLookup(t *testing.T) {
	set := NewOverrideSet(DefaultOverrides(), false)
	if _, ok := set.Lookup("pthread_create"); !ok {
		t.Error("pthread_create missing")
	}
	if _, ok := set.Lookup("nonexistent"); ok {
		t.Error("found nonexistent override")
	}
	names := set.Names()
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
}

func TestToolchainBuild(t *testing.T) {
	fat, err := Build(BuildInput{
		App:        NewAppImage("x"),
		AeroKernel: NewAeroKernelImage(),
		Overrides:  []OverrideSpec{{Legacy: "custom", AKSymbol: "nk_custom"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseOverrides(image.ExtractOverrides(fat))
	if err != nil {
		t.Fatal(err)
	}
	// Defaults + the custom one.
	found := map[string]bool{}
	for _, s := range specs {
		found[s.Legacy] = true
	}
	for _, want := range []string{"pthread_create", "pthread_join", "pthread_exit", "custom"} {
		if !found[want] {
			t.Errorf("override %q missing from fat binary", want)
		}
	}
}

func TestToolchainUserOverrideReplacesDefault(t *testing.T) {
	fat, err := Build(BuildInput{
		App:        NewAppImage("x"),
		AeroKernel: NewAeroKernelImage(),
		Overrides:  []OverrideSpec{{Legacy: "pthread_create", AKSymbol: "my_custom_create"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := ParseOverrides(image.ExtractOverrides(fat))
	count := 0
	for _, s := range specs {
		if s.Legacy == "pthread_create" {
			count++
			if s.AKSymbol != "my_custom_create" {
				t.Errorf("pthread_create -> %s", s.AKSymbol)
			}
		}
	}
	if count != 1 {
		t.Errorf("pthread_create appears %d times", count)
	}
}

func TestToolchainRejectsMissingInputs(t *testing.T) {
	if _, err := Build(BuildInput{AeroKernel: NewAeroKernelImage()}); err == nil {
		t.Error("build without app accepted")
	}
	if _, err := Build(BuildInput{App: NewAppImage("x")}); err == nil {
		t.Error("build without AeroKernel accepted")
	}
	if _, err := Build(BuildInput{
		App:        NewAppImage("x"),
		AeroKernel: NewAeroKernelImage(),
		Overrides:  []OverrideSpec{{Legacy: "", AKSymbol: "y"}},
	}); err == nil {
		t.Error("empty override name accepted")
	}
}
