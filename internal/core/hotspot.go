package core

import (
	"fmt"
	"sort"
	"strings"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/telemetry"
)

// The hotspot profile operationalizes the paper's incremental methodology:
// "The runtime developer can then identify hot spots in the legacy
// interface and move their implementations (possibly even changing their
// interfaces) into the AeroKernel." Every event an execution group
// forwards is attributed here with its full round-trip cost, and the
// report ranks legacy dependencies by the cycles they burn — the porting
// worklist.
//
// The profile keeps no bookkeeping of its own: it is a read view over the
// system's telemetry registry, where each forwarded dependency is a pair
// of counters, `hotspot.<name>.count` and `hotspot.<name>.cycles`. The
// same numbers therefore appear in the --metrics dump.

// hotspotPrefix namespaces the profile's counters in the registry.
const hotspotPrefix = "hotspot."

// HotspotEntry is one legacy dependency's aggregate cost.
type HotspotEntry struct {
	Name   string // syscall name, or "page-fault"
	Count  uint64
	Cycles cycles.Cycles
}

// HotspotProfile reads forwarded-event costs out of a metrics registry.
type HotspotProfile struct {
	reg *telemetry.Registry
}

// newHotspotProfile returns a profile over a private registry (tests and
// standalone use; a System's profile shares the run's registry instead).
func newHotspotProfile() *HotspotProfile {
	return &HotspotProfile{reg: telemetry.NewRegistry()}
}

func (hp *HotspotProfile) record(name string, cost cycles.Cycles) {
	hp.reg.Counter(hotspotPrefix + name + ".count").Inc()
	hp.reg.Counter(hotspotPrefix + name + ".cycles").Add(uint64(cost))
}

// Entries returns the profile sorted by total cycles, descending.
func (hp *HotspotProfile) Entries() []HotspotEntry {
	byName := make(map[string]*HotspotEntry)
	hp.reg.EachCounter(func(name string, v uint64) {
		if !strings.HasPrefix(name, hotspotPrefix) {
			return
		}
		rest := strings.TrimPrefix(name, hotspotPrefix)
		var dep string
		var isCount bool
		switch {
		case strings.HasSuffix(rest, ".count"):
			dep, isCount = strings.TrimSuffix(rest, ".count"), true
		case strings.HasSuffix(rest, ".cycles"):
			dep = strings.TrimSuffix(rest, ".cycles")
		default:
			return
		}
		e := byName[dep]
		if e == nil {
			e = &HotspotEntry{Name: dep}
			byName[dep] = e
		}
		if isCount {
			e.Count = v
		} else {
			e.Cycles = cycles.Cycles(v)
		}
	})
	out := make([]HotspotEntry, 0, len(byName))
	for _, e := range byName {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Total returns the aggregate forwarded cost.
func (hp *HotspotProfile) Total() (count uint64, total cycles.Cycles) {
	for _, e := range hp.Entries() {
		count += e.Count
		total += e.Cycles
	}
	return count, total
}

// Report renders the porting worklist.
func (hp *HotspotProfile) Report() string {
	entries := hp.Entries()
	_, total := hp.Total()
	var b strings.Builder
	b.WriteString("Legacy-interface hotspots (port these to the AeroKernel first):\n")
	fmt.Fprintf(&b, "  %-14s %10s %14s %7s\n", "dependency", "count", "cycles", "share")
	for _, e := range entries {
		share := 0.0
		if total > 0 {
			share = 100 * float64(e.Cycles) / float64(total)
		}
		fmt.Fprintf(&b, "  %-14s %10d %14d %6.1f%%\n", e.Name, e.Count, uint64(e.Cycles), share)
	}
	fmt.Fprintf(&b, "  total forwarding time: %s\n", total)
	return b.String()
}

// Hotspots returns the system's forwarded-event profile (populated while
// hybridized code runs).
func (s *System) Hotspots() *HotspotProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hotspots == nil {
		s.hotspots = &HotspotProfile{reg: s.metrics}
	}
	return s.hotspots
}

// recordHotspot attributes one forwarded event.
func (s *System) recordHotspot(num linuxabi.Sysno, isFault bool, cost cycles.Cycles) {
	name := num.String()
	if isFault {
		name = "page-fault"
	}
	s.Hotspots().record(name, cost)
}
