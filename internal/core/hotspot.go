package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
)

// The hotspot profile operationalizes the paper's incremental methodology:
// "The runtime developer can then identify hot spots in the legacy
// interface and move their implementations (possibly even changing their
// interfaces) into the AeroKernel." Every event an execution group
// forwards is attributed here with its full round-trip cost, and the
// report ranks legacy dependencies by the cycles they burn — the porting
// worklist.

// HotspotEntry is one legacy dependency's aggregate cost.
type HotspotEntry struct {
	Name   string // syscall name, or "page-fault"
	Count  uint64
	Cycles cycles.Cycles
}

// HotspotProfile accumulates forwarded-event costs.
type HotspotProfile struct {
	mu      sync.Mutex
	entries map[string]*HotspotEntry
}

func newHotspotProfile() *HotspotProfile {
	return &HotspotProfile{entries: make(map[string]*HotspotEntry)}
}

func (hp *HotspotProfile) record(name string, cost cycles.Cycles) {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	e := hp.entries[name]
	if e == nil {
		e = &HotspotEntry{Name: name}
		hp.entries[name] = e
	}
	e.Count++
	e.Cycles += cost
}

// Entries returns the profile sorted by total cycles, descending.
func (hp *HotspotProfile) Entries() []HotspotEntry {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	out := make([]HotspotEntry, 0, len(hp.entries))
	for _, e := range hp.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Total returns the aggregate forwarded cost.
func (hp *HotspotProfile) Total() (count uint64, total cycles.Cycles) {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	for _, e := range hp.entries {
		count += e.Count
		total += e.Cycles
	}
	return count, total
}

// Report renders the porting worklist.
func (hp *HotspotProfile) Report() string {
	entries := hp.Entries()
	_, total := hp.Total()
	var b strings.Builder
	b.WriteString("Legacy-interface hotspots (port these to the AeroKernel first):\n")
	fmt.Fprintf(&b, "  %-14s %10s %14s %7s\n", "dependency", "count", "cycles", "share")
	for _, e := range entries {
		share := 0.0
		if total > 0 {
			share = 100 * float64(e.Cycles) / float64(total)
		}
		fmt.Fprintf(&b, "  %-14s %10d %14d %6.1f%%\n", e.Name, e.Count, uint64(e.Cycles), share)
	}
	fmt.Fprintf(&b, "  total forwarding time: %s\n", total)
	return b.String()
}

// Hotspots returns the system's forwarded-event profile (populated while
// hybridized code runs).
func (s *System) Hotspots() *HotspotProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hotspots == nil {
		s.hotspots = newHotspotProfile()
	}
	return s.hotspots
}

// recordHotspot attributes one forwarded event.
func (s *System) recordHotspot(num linuxabi.Sysno, isFault bool, cost cycles.Cycles) {
	name := num.String()
	if isFault {
		name = "page-fault"
	}
	s.Hotspots().record(name, cost)
}
