package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
	"multiverse/internal/telemetry"
)

// buildTestGrid assembles n identically-configured hybrid nodes sharing
// one metrics registry and flight recorder, and joins them into a Grid.
func buildTestGrid(t *testing.T, n int, opts Options) *Grid {
	t.Helper()
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(telemetry.DefaultRecorderSize)
	nodes := make([]*System, n)
	for i := range nodes {
		o := opts
		o.Hybrid = true
		o.Metrics = reg
		o.Recorder = rec
		fat, err := Build(BuildInput{
			App:        NewAppImage(o.AppName),
			AeroKernel: NewAeroKernelImage(),
		})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sys, err := NewSystem(fat, o)
		if err != nil {
			t.Fatalf("NewSystem node %d: %v", i, err)
		}
		if err := sys.InitRuntime(); err != nil {
			t.Fatalf("InitRuntime node %d: %v", i, err)
		}
		nodes[i] = sys
	}
	gr, err := NewGrid(nodes)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return gr
}

// corpusApp builds a deterministic random program from seed: `calls`
// boundary crossings drawn from {getpid, write, clock_gettime}, with
// random compute bursts interleaved. start gates execution so a test
// can arm a migration before the group's first crossing.
func corpusApp(seed uint64, calls int, start <-chan struct{}) func(Env) uint64 {
	return func(env Env) uint64 {
		if start != nil {
			<-start
		}
		r := rand.New(rand.NewSource(int64(seed)))
		sum := uint64(0)
		for i := 0; i < calls; i++ {
			if r.Intn(2) == 0 {
				env.Compute(cycles.Cycles(1000 + r.Intn(5)*700))
			}
			switch r.Intn(3) {
			case 0:
				res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
				sum += res.Ret
			case 1:
				res := env.Syscall(linuxabi.Call{
					Num:  linuxabi.SysWrite,
					Args: [6]uint64{1},
					Data: []byte(fmt.Sprintf("s%d.%d;", seed, i)),
				})
				sum += res.Ret
			case 2:
				res := env.Syscall(linuxabi.Call{Num: linuxabi.SysClockGettime})
				sum += res.Ret & 0xf
			}
		}
		return sum & 0xff
	}
}

// TestGridMigrateTransparency is the checkpoint→restore round-trip
// property: over a corpus of random programs and migration points, a
// migrated run produces byte-identical output (source stdout + target
// stdout), the same exit code, and the identical virtual-cycle total as
// an unmigrated run of the same program.
func TestGridMigrateTransparency(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		for _, migrateAt := range []uint64{1, 3, 7} {
			// Unmigrated reference on a standalone system.
			ref := buildTestSystem(t, Options{AppName: "grid"})
			refStart := make(chan struct{})
			close(refStart)
			rg, err := ref.SpawnGroup(ref.Main.Clock, corpusApp(seed, 12, refStart))
			if err != nil {
				t.Fatalf("ref spawn: %v", err)
			}
			refCode, err := rg.Join(ref.Main)
			if err != nil {
				t.Fatalf("ref join: %v", err)
			}
			refOut := ref.Proc.Stdout()
			refCycles := rg.HRTThread().Clock.Now()
			refDone := rg.Channel().Window().Completed

			// Grid run, migrating node 0 -> node 1 at crossing migrateAt.
			gr := buildTestGrid(t, 2, Options{AppName: "grid"})
			start := make(chan struct{})
			g, err := gr.SpawnGroupOn(0, corpusApp(seed, 12, start))
			if err != nil {
				t.Fatalf("grid spawn: %v", err)
			}
			req := &migrateRequest{
				gr:         gr,
				target:     gr.Node(1),
				targetNode: 1,
				afterCalls: migrateAt - 1,
				done:       make(chan struct{}),
			}
			g.gateReq.Store(req)
			close(start)
			<-req.done
			if req.err != nil {
				t.Fatalf("seed %d at %d: migrate: %v", seed, migrateAt, req.err)
			}
			if g.sys() != gr.Node(1) {
				t.Fatalf("seed %d at %d: group still on node %d", seed, migrateAt, g.sys().gridNode)
			}
			code, err := g.Join(gr.Node(0).Main)
			if err != nil {
				t.Fatalf("grid join: %v", err)
			}
			out := append(append([]byte{}, gr.Node(0).Proc.Stdout()...), gr.Node(1).Proc.Stdout()...)

			if code != refCode {
				t.Errorf("seed %d at %d: exit = %d, want %d", seed, migrateAt, code, refCode)
			}
			if !bytes.Equal(out, refOut) {
				t.Errorf("seed %d at %d: output %q, want %q", seed, migrateAt, out, refOut)
			}
			if got := g.HRTThread().Clock.Now(); got != refCycles {
				t.Errorf("seed %d at %d: HRT cycles = %d, want %d (migration leaked virtual cost)",
					seed, migrateAt, got, refCycles)
			}
			if got := g.Channel().Window().Completed; got != refDone {
				t.Errorf("seed %d at %d: completed = %d, want %d", seed, migrateAt, got, refDone)
			}
			if v := gr.metrics.Counter("grid.groups.migrated").Value(); v != 1 {
				t.Errorf("grid.groups.migrated = %d, want 1", v)
			}
		}
	}
}

// TestGridNodeKillRestoresAll kills one of two nodes while every group
// is quiesced at a workload barrier: all victims must restore on the
// survivor and finish with zero lost and zero duplicated syscalls.
func TestGridNodeKillRestoresAll(t *testing.T) {
	// A zero-rate fault plan: injects nothing, but arms the channel
	// seqno/retransmission window so completions are tracked — the
	// zero-lost/zero-duplicated assertion reads that window.
	gr := buildTestGrid(t, 2, Options{AppName: "grid", Faults: &faults.Plan{}})
	const perNode, k1, k2 = 8, 3, 4

	arrived := make(chan struct{}, 2*perNode)
	gate := make(chan struct{})
	app := func(env Env) uint64 {
		var pid uint64
		for i := 0; i < k1; i++ {
			pid = env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}).Ret
		}
		arrived <- struct{}{}
		<-gate
		for i := 0; i < k2; i++ {
			pid = env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}).Ret
		}
		return pid & 0xff
	}

	var gs []*ExecutionGroup
	var victims []uint64
	for n := 0; n < 2; n++ {
		for i := 0; i < perNode; i++ {
			g, err := gr.SpawnGroupOn(n, app)
			if err != nil {
				t.Fatalf("spawn node %d: %v", n, err)
			}
			gs = append(gs, g)
			if n == 1 {
				victims = append(victims, g.id)
			}
		}
	}
	for range gs {
		<-arrived
	}

	ids, err := gr.KillNode(1)
	if err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if len(ids) != perNode {
		t.Fatalf("restored %d groups, want %d", len(ids), perNode)
	}
	for i, id := range ids {
		if id != victims[i] {
			t.Errorf("restored[%d] = %d, want %d (ascending victim order)", i, id, victims[i])
		}
	}
	close(gate)

	wantPid := uint64(gr.Node(0).Proc.Pid()) & 0xff
	for _, g := range gs {
		code, err := g.Join(gr.Node(0).Main)
		if err != nil {
			t.Fatalf("join group %d: %v", g.id, err)
		}
		if code != wantPid {
			t.Errorf("group %d exit = %d, want %d (lost or corrupted reply)", g.id, code, wantPid)
		}
		// Exactly k1+k2 syscalls plus the exit notification completed —
		// a duplicate would overcount, a loss would have hung the join.
		if got := g.Channel().Window().Completed; got != k1+k2+1 {
			t.Errorf("group %d completed %d envelopes, want %d", g.id, got, k1+k2+1)
		}
		if g.sys() != gr.Node(0) {
			t.Errorf("group %d not hosted on survivor", g.id)
		}
	}
	if live := gr.NodesLive(); live != 1 {
		t.Errorf("NodesLive = %d, want 1", live)
	}
	if v := gr.metrics.Counter("grid.node_kills").Value(); v != 1 {
		t.Errorf("grid.node_kills = %d, want 1", v)
	}
	if v := gr.metrics.Counter("grid.groups.migrated").Value(); v != perNode {
		t.Errorf("grid.groups.migrated = %d, want %d", v, perNode)
	}
	if n := gr.metrics.LatencyHistogram("grid.restore.latency").Count(); n != perNode {
		t.Errorf("restore latency observations = %d, want %d", n, perNode)
	}
}

// TestGridDrainNode drains a node through the public API: every live
// group migrates off at its next boundary crossing and the node ends
// empty.
func TestGridDrainNode(t *testing.T) {
	gr := buildTestGrid(t, 2, Options{AppName: "grid"})
	const groups = 4

	gate := make(chan struct{})
	var gs []*ExecutionGroup
	for i := 0; i < groups; i++ {
		g, err := gr.SpawnGroupOn(0, func(env Env) uint64 {
			<-gate
			for j := 0; j < 200; j++ {
				env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
			}
			return 7
		})
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		gs = append(gs, g)
	}

	drained := make(chan struct{})
	var moved int
	var derr error
	go func() {
		moved, derr = gr.DrainNode(0)
		close(drained)
	}()
	close(gate)
	<-drained
	if derr != nil {
		t.Fatalf("DrainNode: %v", derr)
	}
	if moved != groups {
		t.Errorf("drained %d groups, want %d", moved, groups)
	}
	for _, g := range gs {
		code, err := g.Join(gr.Node(1).Main)
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		if code != 7 {
			t.Errorf("exit = %d, want 7", code)
		}
	}
	if n := gr.Node(0).LiveGroups(); n != 0 {
		t.Errorf("drained node still hosts %d live groups", n)
	}
}

// TestGridMigrateWedge pins the migration wedge path: a group that
// stops crossing the boundary can never complete an armed migration,
// so the caller gets ErrGroupWedged within the deadline, with a
// flight-recorder auto-dump for the post-mortem.
func TestGridMigrateWedge(t *testing.T) {
	gr := buildTestGrid(t, 2, Options{AppName: "grid", WedgeTimeout: 250 * time.Millisecond})
	release := make(chan struct{})
	g, err := gr.SpawnGroupOn(0, func(env Env) uint64 {
		env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
		<-release // never crosses the boundary again until released
		return 0
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	// Give the group time to make its only crossing, then arm.
	for g.gateCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := gr.MigrateGroup(g, 1); !errors.Is(err, ErrGroupWedged) {
		t.Fatalf("MigrateGroup = %v, want ErrGroupWedged", err)
	}
	if reason, text := gr.Node(0).Recorder().LastDump(); reason == "" || text == "" {
		t.Error("wedged migration produced no flight-recorder auto-dump")
	}
	close(release)
	if _, err := g.Join(gr.Node(0).Main); err != nil {
		t.Fatalf("join after release: %v", err)
	}
}

// TestGridValidation pins the NewGrid configuration contract.
func TestGridValidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(telemetry.DefaultRecorderSize)
	build := func(opts Options) *System {
		opts.Hybrid = true
		opts.AppName = "grid"
		fat, err := Build(BuildInput{App: NewAppImage("grid"), AeroKernel: NewAeroKernelImage()})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(fat, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.InitRuntime(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	if _, err := NewGrid(nil); err == nil {
		t.Error("NewGrid(nil) succeeded")
	}
	if _, err := NewGrid([]*System{build(Options{Metrics: reg, Recorder: rec, SyncSyscalls: true})}); err == nil {
		t.Error("NewGrid accepted a static-sync node")
	}
	if _, err := NewGrid([]*System{build(Options{Metrics: reg, Recorder: rec, Scheduler: true})}); err == nil {
		t.Error("NewGrid accepted a scheduler node")
	}
	if _, err := NewGrid([]*System{
		build(Options{Metrics: reg, Recorder: rec}),
		build(Options{Metrics: telemetry.NewRegistry(), Recorder: rec}),
	}); err == nil {
		t.Error("NewGrid accepted nodes with separate metric registries")
	}
	// A valid single-node grid works and seeds nothing on node 0.
	s := build(Options{Metrics: reg, Recorder: rec})
	gr, err := NewGrid([]*System{s})
	if err != nil {
		t.Fatalf("NewGrid(valid): %v", err)
	}
	if gr.Nodes() != 1 || gr.NodesLive() != 1 {
		t.Errorf("Nodes/NodesLive = %d/%d, want 1/1", gr.Nodes(), gr.NodesLive())
	}
	if _, err := gr.KillNode(0); err == nil {
		t.Error("KillNode killed the last live node")
	}
}
