// Package core implements Multiverse — the paper's contribution: automatic
// hybridization of runtime systems.
//
// A user package is rebuilt with the Multiverse toolchain (toolchain.go),
// producing a fat binary with an embedded AeroKernel image and override
// configuration. At startup the runtime component (multiverse.go) parses
// the embedded image, installs and boots it through the HVM, registers ROS
// signal handlers and exit hooks, merges the address spaces, and links the
// override wrappers. Execution then splits into execution groups
// (group.go): an HRT thread running the application in kernel mode paired
// with a ROS partner thread servicing its forwarded events.
package core

import (
	"fmt"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
	"multiverse/internal/telemetry"
)

// World identifies which of Figure 13's three configurations an Env
// executes in.
type World int

const (
	// WorldNative: user-level process on the bare-metal ROS.
	WorldNative World = iota
	// WorldVirtual: user-level process on the virtualized ROS.
	WorldVirtual
	// WorldHRT: kernel-mode thread in the hybridized runtime.
	WorldHRT
)

var worldNames = [...]string{"Native", "Virtual", "Multiverse"}

// String names the world as the paper's figures label it.
func (w World) String() string {
	if int(w) < len(worldNames) {
		return worldNames[w]
	}
	return fmt.Sprintf("world(%d)", int(w))
}

// PthreadJoin blocks until the created thread exits and returns its code.
type PthreadJoin func() uint64

// Env is everything an application or runtime system sees of its
// execution environment: the Linux ABI surface (system calls, vdso calls,
// memory access with demand paging and signals, pthreads) plus virtual
// time. A hybridized package runs against the same interface in all three
// worlds — which is the paper's point: "the user sees no difference
// between HRT execution and user-level execution."
type Env interface {
	// World reports which configuration this is.
	World() World
	// Clock is the executing context's virtual clock.
	Clock() *cycles.Clock
	// Compute charges user-mode work (the runtime's own instructions).
	Compute(c cycles.Cycles)
	// Syscall issues one system call.
	Syscall(call linuxabi.Call) linuxabi.Result
	// VDSO issues a user-mode fast call (getpid, gettimeofday).
	VDSO(num linuxabi.Sysno) (uint64, linuxabi.Errno)
	// Touch performs one data memory access, faulting and retrying as
	// the hardware would.
	Touch(addr uint64, write bool) error
	// CheckTimer polls the interval timer, delivering its signal if
	// expired; returns true if it fired.
	CheckTimer() bool
	// PthreadCreate starts a new thread running fn (interposed by the
	// default overrides under Multiverse).
	PthreadCreate(fn func(Env)) (PthreadJoin, error)
	// RegisterSignalCode associates handler code (a closure standing in
	// for a function in the program image) with an address, so a
	// subsequent rt_sigaction can name it.
	RegisterSignalCode(addr uint64, fn func(*ros.SignalContext))
	// Process exposes the owning ROS process (for accounting and signal
	// handler registration; the runtime's startup code uses it the way
	// real code uses its own symbols).
	Process() *ros.Process
}

// nativeEnv runs the application as an ordinary user-level process —
// Figure 13's Native and Virtual configurations (the kernel's World
// setting decides which).
type nativeEnv struct {
	proc   *ros.Process
	thread *ros.Thread
	world  World
	scope  telemetry.Scope
}

// TelemetryScope exposes the environment's instruments to runtime layers
// (the scheme GC) that discover telemetry by interface assertion.
func (e *nativeEnv) TelemetryScope() telemetry.Scope { return e.scope }

// NewNativeEnv wraps a ROS thread as an execution environment.
func NewNativeEnv(p *ros.Process, t *ros.Thread) Env {
	w := WorldNative
	if p.Kernel().World() == ros.Virtual {
		w = WorldVirtual
	}
	return &nativeEnv{proc: p, thread: t, world: w}
}

func (e *nativeEnv) World() World          { return e.world }
func (e *nativeEnv) Clock() *cycles.Clock  { return e.thread.Clock }
func (e *nativeEnv) Process() *ros.Process { return e.proc }

func (e *nativeEnv) Compute(c cycles.Cycles) {
	e.thread.Clock.Advance(c)
	e.proc.ChargeUser(c)
}

func (e *nativeEnv) Syscall(call linuxabi.Call) linuxabi.Result {
	return e.proc.Syscall(e.thread, call)
}

func (e *nativeEnv) VDSO(num linuxabi.Sysno) (uint64, linuxabi.Errno) {
	return e.proc.VDSO(e.thread, num)
}

func (e *nativeEnv) Touch(addr uint64, write bool) error {
	if errno := e.proc.Touch(e.thread, addr, write); errno != linuxabi.OK {
		return fmt.Errorf("core: native access at %#x: %w", addr, errno)
	}
	return nil
}

func (e *nativeEnv) CheckTimer() bool { return e.proc.CheckTimerFor(e.thread.TID, e.thread.Clock) }

func (e *nativeEnv) RegisterSignalCode(addr uint64, fn func(*ros.SignalContext)) {
	e.proc.RegisterHandlerFor(e.thread.TID, addr, fn)
}

func (e *nativeEnv) PthreadCreate(fn func(Env)) (PthreadJoin, error) {
	nt := e.proc.NewThread(e.thread.Core)
	child := &nativeEnv{proc: e.proc, thread: nt, world: e.world, scope: telemetry.Scope{
		Tracer:  e.scope.Tracer,
		Metrics: e.scope.Metrics,
		// Each thread gets its own track: span nesting stays per-context
		// even when sibling threads interleave on a core.
		Track: telemetry.Track{Core: int(nt.Core), Name: fmt.Sprintf("ros:thread:%d", nt.TID)},
	}}
	nt.Start(e.thread.Clock, func(t *ros.Thread) { fn(child) })
	self := e.thread
	return func() uint64 { return nt.Join(self) }, nil
}
