package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"multiverse/internal/aerokernel"
	"multiverse/internal/cycles"
	"multiverse/internal/telemetry"
)

// Grid hosts multiple Systems (machines) as independent fault domains
// with deterministic virtual-time placement, voluntary live migration
// (DrainNode / MigrateGroup), and node-kill recovery (KillNode): the
// killed node's groups are checkpointed and restored on survivors with
// zero lost and zero duplicated syscalls.
//
// Determinism contract: every migration cost — quiesce, checkpoint,
// transfer, restore — charges the grid's dedicated migration clock,
// never a group or partner clock, so a migrated group's virtual times
// (and therefore its output) are bit-for-bit what an unmigrated run
// produces. The quiesce-point invariant makes that safe: groups are
// only interrupted at syscall boundaries, where no forwarded call is
// in flight and the serve loop is parked in Recv.
//
// Grid nodes must be built alike: hybrid, booted (InitRuntime ran), no
// static sync forwarding, no scheduler, identical machine topologies,
// and a shared metrics registry / flight recorder / process PID so a
// group observes nothing node-specific across a move. NewGrid seeds
// each node's group/thread/channel id counters into disjoint ranges so
// cross-node moves cannot collide.
type Grid struct {
	nodes []*System

	mu    sync.Mutex
	down  []bool // killed nodes: no placement, no migration target
	drain []bool // draining nodes: no placement

	// migClk is the dedicated migration clock. Its deltas are the
	// pinned migration-latency and restore-latency figures.
	migClk *cycles.Clock

	metrics  *telemetry.Registry
	recorder *telemetry.Recorder

	nodesG   *telemetry.Gauge   // grid.nodes
	liveG    *telemetry.Gauge   // grid.nodes.live
	migrated *telemetry.Counter // grid.groups.migrated
	kills    *telemetry.Counter // grid.node_kills
	restoreH *telemetry.Histogram
	migrateH *telemetry.Histogram
}

// NewGrid assembles nodes into a grid. The caller builds each node with
// a shared telemetry registry and recorder (and fault injector, when
// armed); NewGrid validates the configuration, seeds the per-node id
// ranges, and marks each System grid-hosted before any group exists.
func NewGrid(nodes []*System) (*Grid, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("multiverse: grid needs at least one node")
	}
	base := nodes[0]
	for i, s := range nodes {
		if s == nil || !s.Opts.Hybrid {
			return nil, fmt.Errorf("multiverse: grid node %d is not a hybrid system", i)
		}
		if s.AK == nil {
			return nil, fmt.Errorf("multiverse: grid node %d not booted (run InitRuntime first)", i)
		}
		if s.Opts.Scheduler || s.AK.Scheduler() != nil {
			return nil, fmt.Errorf("multiverse: grid node %d runs the AK scheduler (migration requires boot-core pinning)", i)
		}
		if s.Opts.SyncSyscalls {
			return nil, fmt.Errorf("multiverse: grid node %d uses static sync forwarding (pinned channels do not migrate)", i)
		}
		if s.grid != nil {
			return nil, fmt.Errorf("multiverse: grid node %d already belongs to a grid", i)
		}
		if s.metrics != base.metrics || s.recorder != base.recorder {
			return nil, fmt.Errorf("multiverse: grid node %d must share the grid's metrics registry and recorder", i)
		}
		if s.Proc.Pid() != base.Proc.Pid() {
			return nil, fmt.Errorf("multiverse: grid node %d PID %d != node 0 PID %d (breaks migration transparency)", i, s.Proc.Pid(), base.Proc.Pid())
		}
		if s.GroupTableSize() != 0 {
			return nil, fmt.Errorf("multiverse: grid node %d already has groups", i)
		}
	}
	gr := &Grid{
		nodes:    nodes,
		down:     make([]bool, len(nodes)),
		drain:    make([]bool, len(nodes)),
		migClk:   cycles.NewClock(0),
		metrics:  base.metrics,
		recorder: base.recorder,
	}
	gr.nodesG = gr.metrics.Gauge("grid.nodes")
	gr.liveG = gr.metrics.Gauge("grid.nodes.live")
	gr.migrated = gr.metrics.Counter("grid.groups.migrated")
	gr.kills = gr.metrics.Counter("grid.node_kills")
	gr.restoreH = gr.metrics.LatencyHistogram("grid.restore.latency")
	gr.migrateH = gr.metrics.LatencyHistogram("grid.migrate.latency")
	for i, s := range nodes {
		// Disjoint id ranges per node (node 0 keeps the standalone
		// numbering): a restored group, its re-homed thread, and its
		// surviving channel stay unique on any node they land on.
		s.SeedGroupIDs(uint64(i) << 32)
		s.AK.SeedThreadIDs(int64(i) << 32)
		s.HVM.SeedChannelIDs(uint64(i) << 32)
		s.grid = gr
		s.gridNode = i
	}
	gr.nodesG.Set(uint64(len(nodes)))
	gr.liveG.Set(uint64(len(nodes)))
	return gr, nil
}

// Nodes returns the node count (live or not).
func (gr *Grid) Nodes() int { return len(gr.nodes) }

// Node returns node i's System.
func (gr *Grid) Node(i int) *System { return gr.nodes[i] }

// NodesLive returns the number of nodes not killed.
func (gr *Grid) NodesLive() int {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	n := 0
	for i := range gr.nodes {
		if !gr.down[i] {
			n++
		}
	}
	return n
}

// NodeDown reports whether node i has been killed.
func (gr *Grid) NodeDown(i int) bool {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	return gr.down[i]
}

// MigrationCycles returns the migration clock — the total virtual
// cycles spent on checkpoint/transfer/restore work grid-wide.
func (gr *Grid) MigrationCycles() cycles.Cycles { return gr.migClk.Now() }

// pickLocked returns the least-loaded live, non-draining node other
// than exclude (-1 for none); ties break to the lowest index, so the
// choice is deterministic given the live-group counts at the call.
func (gr *Grid) pickLocked(exclude int) (int, error) {
	best, bestLoad := -1, 0
	for i, s := range gr.nodes {
		if i == exclude || gr.down[i] || gr.drain[i] {
			continue
		}
		load := s.LiveGroups()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("multiverse: no live grid node available")
	}
	return best, nil
}

// SpawnGroup places fn on the least-loaded live node and spawns it
// there, charging the node's main thread as creator. Deterministic
// under a sequential driver; concurrent spawners should place
// explicitly with SpawnGroupOn.
func (gr *Grid) SpawnGroup(fn func(Env) uint64) (*ExecutionGroup, int, error) {
	gr.mu.Lock()
	i, err := gr.pickLocked(-1)
	gr.mu.Unlock()
	if err != nil {
		return nil, -1, err
	}
	g, err := gr.SpawnGroupOn(i, fn)
	return g, i, err
}

// SpawnGroupOn spawns fn on node i.
func (gr *Grid) SpawnGroupOn(i int, fn func(Env) uint64) (*ExecutionGroup, error) {
	if i < 0 || i >= len(gr.nodes) {
		return nil, fmt.Errorf("multiverse: no grid node %d", i)
	}
	if gr.NodeDown(i) {
		return nil, fmt.Errorf("multiverse: grid node %d is down", i)
	}
	s := gr.nodes[i]
	return s.SpawnGroup(s.Main.Clock, fn)
}

// MigrateGroup arms a voluntary migration of g to target, firing at the
// group's next boundary crossing, and waits for it to complete.
func (gr *Grid) MigrateGroup(g *ExecutionGroup, target int) error {
	return gr.MigrateGroupAfter(g, target, 0)
}

// MigrateGroupAfter arms a voluntary migration that fires at the
// group's first boundary crossing numbered past afterCalls (counted
// from the group's start), then waits for completion. A migration that
// never completes within Options.WedgeTimeout surfaces ErrGroupWedged
// with a flight-recorder auto-dump — a group that stops crossing the
// boundary (pure compute, or already exiting) cannot hang the caller.
func (gr *Grid) MigrateGroupAfter(g *ExecutionGroup, target int, afterCalls uint64) error {
	res, err := gr.ArmMigration(g, target, afterCalls)
	if err != nil {
		return err
	}
	return <-res
}

// ArmMigration arms a voluntary migration and returns without waiting:
// the result channel yields once, when the migration fires at the
// group's next eligible boundary crossing (nil if the group finishes
// first, ErrGroupWedged past the deadline). Arming is synchronous, so a
// caller holding the group at a barrier can arm, release the barrier,
// and know exactly which crossing the migration lands on — the
// deterministic driving the pinned migration-latency figure needs.
func (gr *Grid) ArmMigration(g *ExecutionGroup, target int, afterCalls uint64) (<-chan error, error) {
	if !g.gridHosted || g.degraded.Load() {
		return nil, ErrNotMigratable
	}
	if target < 0 || target >= len(gr.nodes) {
		return nil, fmt.Errorf("multiverse: no grid node %d", target)
	}
	if gr.NodeDown(target) {
		return nil, fmt.Errorf("multiverse: migration target node %d is down", target)
	}
	req := &migrateRequest{
		gr:         gr,
		target:     gr.nodes[target],
		targetNode: target,
		afterCalls: afterCalls,
		done:       make(chan struct{}),
	}
	if !g.gateReq.CompareAndSwap(nil, req) {
		return nil, fmt.Errorf("multiverse: migration already armed on group %d", g.id)
	}
	res := make(chan error, 1)
	go func() { res <- gr.awaitMigration(g, req) }()
	return res, nil
}

// awaitMigration waits for an armed request to fire, the group to
// finish on its own (nothing left to migrate), or the wedge deadline.
func (gr *Grid) awaitMigration(g *ExecutionGroup, req *migrateRequest) error {
	var timeout <-chan time.Time
	if d := g.sys().Opts.WedgeTimeout; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-req.done:
		return req.err
	case <-g.finished:
		g.gateReq.CompareAndSwap(req, nil)
		return nil
	case <-timeout:
		g.gateReq.CompareAndSwap(req, nil)
		return g.wedged()
	}
}

// migrateNow executes a claimed voluntary migration. It runs on the
// group's own HRT goroutine at a syscall boundary — the group is
// quiescent by construction — and under lifeMu so the watchdog cannot
// treat the interrupted partner as a fault.
func (gr *Grid) migrateNow(g *ExecutionGroup, t *aerokernel.Thread, target *System, targetNode int) error {
	src := g.sys()
	if target == src {
		return nil
	}
	g.lifeMu.Lock()
	defer g.lifeMu.Unlock()
	if g.dead.Load() || g.degraded.Load() {
		return ErrNotMigratable
	}
	g.relocating.Store(true)
	p := g.partnerRef()
	g.channel.InterruptPartner()
	<-p.Done()
	start := gr.migClk.Now()
	cp := g.Checkpoint(gr.migClk)
	target.RestoreGroup(g, cp, gr.migClk)
	// Voluntary path: this goroutine IS the HRT thread, so the re-home
	// is safe right here.
	t.Rehome(target.AK)
	g.relocating.Store(false)
	lat := gr.migClk.Now() - start
	gr.migrated.Inc()
	gr.migrateH.Observe(lat)
	gr.recorder.Record(gr.migClk.Now(), telemetry.RecMigrateDone, g.id, 0,
		uint64(lat), uint64(targetNode))
	return nil
}

// DrainNode stops placement on node i and migrates every live group off
// it (ascending group-id order, each at its next boundary crossing),
// returning how many moved. Groups that exit before crossing again
// count as drained; degraded groups stay (they do not migrate).
func (gr *Grid) DrainNode(i int) (int, error) {
	if i < 0 || i >= len(gr.nodes) {
		return 0, fmt.Errorf("multiverse: no grid node %d", i)
	}
	gr.mu.Lock()
	if gr.down[i] {
		gr.mu.Unlock()
		return 0, fmt.Errorf("multiverse: grid node %d is down", i)
	}
	gr.drain[i] = true
	gr.mu.Unlock()

	moved := 0
	for _, g := range gr.liveGroupsOn(i) {
		if g.degraded.Load() {
			continue
		}
		gr.mu.Lock()
		tgt, err := gr.pickLocked(i)
		gr.mu.Unlock()
		if err != nil {
			return moved, err
		}
		if err := gr.MigrateGroupAfter(g, tgt, 0); err != nil {
			return moved, err
		}
		moved++
	}
	gr.recorder.Record(gr.migClk.Now(), telemetry.RecDrain, uint64(i), 0,
		uint64(moved), 0)
	return moved, nil
}

// KillNode kills node i: every live group hosted there is checkpointed
// and restored on the least-loaded survivor, in ascending group-id
// order (the restore order is part of the determinism contract).
// Returns the restored group ids. The caller must drive kills at
// points where the victims are quiescent (the chaos driver kills at
// workload barriers); the recovery itself then loses and duplicates
// nothing — in-flight envelopes replay idempotently off the
// retransmission window.
func (gr *Grid) KillNode(i int) ([]uint64, error) {
	if i < 0 || i >= len(gr.nodes) {
		return nil, fmt.Errorf("multiverse: no grid node %d", i)
	}
	gr.mu.Lock()
	if gr.down[i] {
		gr.mu.Unlock()
		return nil, fmt.Errorf("multiverse: grid node %d already down", i)
	}
	alive := 0
	for n := range gr.nodes {
		if !gr.down[n] {
			alive++
		}
	}
	if alive <= 1 {
		gr.mu.Unlock()
		return nil, fmt.Errorf("multiverse: cannot kill the last live node")
	}
	gr.down[i] = true
	gr.mu.Unlock()

	victims := gr.liveGroupsOn(i)
	gr.kills.Inc()
	gr.liveG.Set(uint64(gr.NodesLive()))
	gr.recorder.Record(gr.migClk.Now(), telemetry.RecNodeKill, uint64(i), 0,
		uint64(len(victims)), 0)

	ids := make([]uint64, 0, len(victims))
	for _, g := range victims {
		if g.degraded.Load() {
			// A degraded group's state is entangled with its fallback
			// service context; it dies with the node.
			continue
		}
		gr.mu.Lock()
		tgt, err := gr.pickLocked(i)
		gr.mu.Unlock()
		if err != nil {
			return ids, err
		}
		if gr.restoreOnSurvivor(g, gr.nodes[tgt]) {
			ids = append(ids, g.id)
		}
	}
	return ids, nil
}

// restoreOnSurvivor force-restores one victim of a node kill onto
// target: interrupt the (quiesced) partner, checkpoint, restore. The
// AK-thread re-home is deferred to the group's next boundary crossing
// — the HRT goroutine is not ours to touch here. The source
// AeroKernel is deliberately not halted: the restored HRT context is
// the live thread object, which re-homes itself at that next crossing.
func (gr *Grid) restoreOnSurvivor(g *ExecutionGroup, target *System) bool {
	g.lifeMu.Lock()
	defer g.lifeMu.Unlock()
	if g.dead.Load() {
		return false
	}
	g.relocating.Store(true)
	p := g.partnerRef()
	g.channel.InterruptPartner()
	<-p.Done()
	start := gr.migClk.Now()
	cp := g.Checkpoint(gr.migClk)
	target.RestoreGroup(g, cp, gr.migClk)
	g.rehomePending.Store(true)
	g.relocating.Store(false)
	gr.migrated.Inc()
	gr.restoreH.Observe(gr.migClk.Now() - start)
	return true
}

// liveGroupsOn snapshots the live groups hosted on node i, ascending
// by group id.
func (gr *Grid) liveGroupsOn(i int) []*ExecutionGroup {
	src := gr.nodes[i]
	var gs []*ExecutionGroup
	src.groups.rangeAll(func(_ uint64, g *ExecutionGroup) {
		if !g.dead.Load() {
			gs = append(gs, g)
		}
	})
	sort.Slice(gs, func(a, b int) bool { return gs[a].id < gs[b].id })
	return gs
}
