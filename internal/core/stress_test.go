package core

import (
	"sync"
	"testing"

	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
)

// TestManyConcurrentGroups hammers the HVM with several execution groups
// forwarding syscalls and faults simultaneously — the protocol must hold
// under concurrency (run under -race in CI).
func TestManyConcurrentGroups(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "stress"})
	const groups = 6
	const callsPerGroup = 40

	var wg sync.WaitGroup
	errs := make(chan error, groups)
	_, err := sys.RunMain(func(env Env) uint64 {
		for g := 0; g < groups; g++ {
			wg.Add(1)
			join, err := env.PthreadCreate(func(child Env) {
				defer wg.Done()
				// Each group mmaps its own region and touches it.
				r := child.Syscall(linuxabi.Call{
					Num:  linuxabi.SysMmap,
					Args: [6]uint64{0, 8 * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
				})
				if !r.Ok() {
					errs <- r.Err
					return
				}
				for off := uint64(0); off < 8*4096; off += 4096 {
					if terr := child.Touch(r.Ret+off, true); terr != nil {
						errs <- linuxabi.EFAULT
						return
					}
				}
				for i := 0; i < callsPerGroup; i++ {
					if res := child.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
						errs <- res.Err
						return
					}
				}
			})
			if err != nil {
				t.Errorf("spawn %d: %v", g, err)
				wg.Done()
				continue
			}
			defer join()
		}
		wg.Wait()
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	close(errs)
	for e := range errs {
		t.Errorf("group error: %v", e)
	}
	if got := sys.AK.ForwardedSyscalls(); got < groups*callsPerGroup {
		t.Errorf("forwarded %d syscalls, want >= %d", got, groups*callsPerGroup)
	}
}

// TestMemoryExhaustionSurfacesENOMEM: with a tiny physical memory, demand
// paging runs out of frames and the access fails with a clean error, not
// a panic.
func TestMemoryExhaustionSurfacesENOMEM(t *testing.T) {
	spec := machine.DefaultSpec()
	spec.FramesPerZone = 192 // barely enough for page tables + a little heap
	sys, err := NewSystem(nil, Options{AppName: "oom", MachineSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NativeEnv()
	r := env.Syscall(linuxabi.Call{
		Num:  linuxabi.SysMmap,
		Args: [6]uint64{0, 4096 * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
	})
	if !r.Ok() {
		t.Fatalf("mmap itself failed: %v", r.Err) // lazy mmap should succeed
	}
	sawFailure := false
	for off := uint64(0); off < 4096*4096; off += 4096 {
		if err := env.Touch(r.Ret+off, true); err != nil {
			sawFailure = true
			break
		}
	}
	if !sawFailure {
		t.Fatal("touched 4096 pages with only 192 frames — exhaustion not modelled")
	}
}

// TestGroupSpawnAfterMainExit: spawning from a finished system must not
// wedge; the AK is halted by the exit hook.
func TestGroupSpawnAfterMainExit(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "late"})
	if _, err := sys.RunMain(func(Env) uint64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	// The exit hook halted the AK; a late spawn must fail cleanly (the
	// injected creation request completes with an error), not wedge.
	if _, err := sys.HRTInvokeFunc(func(env Env) uint64 { return 0 }); err == nil {
		t.Error("spawn against a halted AeroKernel succeeded")
	}
}
