package core

import (
	"fmt"

	"multiverse/internal/image"
)

// BuildInput is what the developer hands the Multiverse toolchain: their
// application/runtime, the AeroKernel binary provided by the AeroKernel
// developer, and an optional override configuration. "To leverage
// Multiverse, a user must simply integrate their application or runtime
// with the provided Makefile and rebuild it" (section 3.5).
type BuildInput struct {
	App        *image.Image
	AeroKernel *image.Image
	Overrides  []OverrideSpec
}

// Build is the toolchain's link step: it compiles the override
// configuration, appends the default overrides, embeds the AeroKernel
// binary into the application's binary, and marks the result as a fat
// binary whose startup hooks run Multiverse initialization before main().
func Build(in BuildInput) (*image.Image, error) {
	if in.App == nil {
		return nil, fmt.Errorf("toolchain: no application image")
	}
	if in.AeroKernel == nil {
		return nil, fmt.Errorf("toolchain: no AeroKernel image (the AeroKernel developer provides this binary)")
	}
	specs := append(DefaultOverrides(), in.Overrides...)
	seen := make(map[string]int)
	for i, s := range specs {
		if s.Legacy == "" || s.AKSymbol == "" {
			return nil, fmt.Errorf("toolchain: override %d has empty names", i)
		}
		if prev, dup := seen[s.Legacy]; dup {
			// Later (user) entries replace earlier (default) ones.
			specs[prev] = s
			specs = append(specs[:i], specs[i+1:]...)
		}
		seen[s.Legacy] = i
	}
	fat := image.EmbedAeroKernel(in.App, in.AeroKernel, FormatOverrides(specs))
	return fat, nil
}

// NewAppImage synthesizes a plain application image (what the compiler
// would emit for the user's program before the Multiverse link step).
func NewAppImage(name string) *image.Image {
	img := &image.Image{
		Name:  name,
		Entry: 0x400000,
		Sections: []image.Section{
			{Name: ".text", Kind: image.SecText, VAddr: 0x400000, Data: make([]byte, 8192)},
			{Name: ".data", Kind: image.SecData, VAddr: 0x600000, Data: make([]byte, 4096)},
		},
		Symbols: []image.Symbol{
			{Name: "main", Addr: 0x400100, Size: 512},
			{Name: "_mv_init", Addr: 0x400000, Size: 256}, // the injected init hook
		},
	}
	return img
}

// NewAeroKernelImage synthesizes the AeroKernel binary the AeroKernel
// developer ships with the toolchain: a Nautilus image whose symbol table
// exports the functions overrides can target. extra adds developer-
// provided symbols beyond the standard set.
func NewAeroKernelImage(extra ...image.Symbol) *image.Image {
	base := uint64(0xffff_8000_0010_0000)
	std := []string{
		"nk_thread_create", "nk_thread_join", "nk_thread_exit",
		"nk_thread_fork", "nk_event_create", "nk_event_wait",
		"nk_event_signal", "nk_tls_get", "nk_sched_yield",
		"nk_vc_printf", "nk_sysinfo",
	}
	img := &image.Image{
		Name:  "nautilus.bin",
		Entry: base,
		Sections: []image.Section{
			{Name: ".text", Kind: image.SecText, VAddr: base, Data: make([]byte, 16384)},
			{Name: ".data", Kind: image.SecData, VAddr: base + 0x100000, Data: make([]byte, 8192)},
		},
	}
	for i, name := range std {
		img.Symbols = append(img.Symbols, image.Symbol{
			Name: name,
			Addr: base + uint64(i+1)*0x200,
			Size: 0x200,
		})
	}
	img.Symbols = append(img.Symbols, extra...)
	img.SortSymbols()
	return img
}
