package core

import (
	"errors"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// This file is the multi-tenant face of core.System: admission control
// (group caps and per-tenant budgets), the warm AeroKernel pool that turns
// cold-boot spawns into near-constant-time reuse, and the density counters
// every piece of it reports through.

// ErrAdmissionRejected reports that a spawn was refused by admission
// control: the system is at its configured group cap (Options.MaxGroups)
// or the tenant's budget cannot cover the group. The rejection is
// deterministic — it depends only on the live-group count and budget
// arithmetic at the program point of the spawn, never on host timing.
var ErrAdmissionRejected = errors.New("multiverse: admission rejected (tenant over budget or group cap reached)")

// TenantBudget bounds what one execution group may consume. The zero
// value of either field disables that bound. Budgets are enforced at the
// forwarding boundary — the router/channel entry in hrtEnv.Syscall — so
// an over-budget tenant is rejected before its request crosses, with a
// deterministic errno (EAGAIN for cycles, ENOMEM for memory) and zero
// virtual-cycle charge.
type TenantBudget struct {
	// MemBytes caps the bytes a group may request through boundary mmap
	// calls. Reservations are charged at request time and not refunded by
	// munmap (conservative: a tenant cannot churn its way past the cap).
	MemBytes uint64
	// Cycles caps the virtual cycles a group may spend crossing the
	// boundary (the summed latency of its forwarded system calls). Once
	// spent, further boundary calls fail with EAGAIN.
	Cycles cycles.Cycles
}

// admitSyscall is the boundary-side budget gate, called before a system
// call is dispatched. It returns the rejection result and true when the
// call must not cross. Accounting is per group in that group's own
// program order, so the decision replays exactly.
func (g *ExecutionGroup) admitSyscall(b *TenantBudget, length uint64, isMmap bool) (linuxabi.Result, bool) {
	if b.Cycles > 0 && cycles.Cycles(g.boundarySpent.Load()) >= b.Cycles {
		g.sys().density.budgetRejected.Inc()
		return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.EAGAIN}, true
	}
	if b.MemBytes > 0 && isMmap {
		if g.memReserved.Load()+length > b.MemBytes {
			g.sys().density.budgetRejected.Inc()
			return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.ENOMEM}, true
		}
		g.memReserved.Add(length)
	}
	return linuxabi.Result{}, false
}

// chargeBudget accrues one boundary crossing's latency against the
// group's cycle budget.
func (g *ExecutionGroup) chargeBudget(lat cycles.Cycles) {
	g.boundarySpent.Add(uint64(lat))
}

// ---- Warm AeroKernel pool ----------------------------------------------

// warmSlot is one parked pre-booted context: the ROS-side stack of an
// exited group's HRT thread, kept warm for the next spawn. The slot
// carries no address-space state — group-private mappings die with the
// group's channel and ring teardown, and the claim path re-applies the
// GDT/FSBase superposition — so reuse needs only a stack reset.
type warmSlot struct {
	stack *machine.Stack
}

// warmPool is the bounded pool of warm slots (Options.WarmPool). Parking
// happens on the partner goroutine during group cleanup and charges zero
// virtual cycles (charging there would make a group's exit time depend on
// host-scheduled pool occupancy); the claimant pays the deterministic
// WarmPoolReuse cost instead.
type warmPool struct {
	mu    sync.Mutex
	slots []*warmSlot
	max   int
}

func newWarmPool(n int) *warmPool {
	return &warmPool{max: n}
}

// get claims a slot, or nil when the pool is empty.
func (p *warmPool) get() *warmSlot {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.slots) == 0 {
		return nil
	}
	s := p.slots[len(p.slots)-1]
	p.slots = p.slots[:len(p.slots)-1]
	return s
}

// put parks a slot, reporting false when the pool is full (the slot is
// dropped and its stack garbage-collected like a cold spawn's).
func (p *warmPool) put(s *warmSlot) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.slots) >= p.max {
		return false
	}
	p.slots = append(p.slots, s)
	return true
}

// size returns the current occupancy.
func (p *warmPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}

// ---- Density accounting --------------------------------------------------

// densityStats is the registry-backed instrument set behind the mvrun
// -stats density line and the /metrics.json density.* entries. Handles
// are resolved once at system construction so the spawn path pays no
// registry lookups.
type densityStats struct {
	spawned        *telemetry.Counter // density.groups.spawned
	live           *telemetry.Gauge   // density.groups.live
	peak           *telemetry.Gauge   // density.groups.peak
	warmSize       *telemetry.Gauge   // density.warm.size
	warmHits       *telemetry.Counter // density.warm.hits
	warmMisses     *telemetry.Counter // density.warm.misses
	warmReturns    *telemetry.Counter // density.warm.returns
	warmDrops      *telemetry.Counter // density.warm.drops
	admRejected    *telemetry.Counter // density.admission.rejected
	budgetRejected *telemetry.Counter // density.budget.rejected
}

func newDensityStats(m *telemetry.Registry) *densityStats {
	return &densityStats{
		spawned:        m.Counter("density.groups.spawned"),
		live:           m.Gauge("density.groups.live"),
		peak:           m.Gauge("density.groups.peak"),
		warmSize:       m.Gauge("density.warm.size"),
		warmHits:       m.Counter("density.warm.hits"),
		warmMisses:     m.Counter("density.warm.misses"),
		warmReturns:    m.Counter("density.warm.returns"),
		warmDrops:      m.Counter("density.warm.drops"),
		admRejected:    m.Counter("density.admission.rejected"),
		budgetRejected: m.Counter("density.budget.rejected"),
	}
}

// noteGroupLive records a successful registration: the live count rises
// and the peak gauge ratchets.
func (s *System) noteGroupLive() {
	live := s.liveGroups.Add(1)
	s.density.spawned.Inc()
	s.density.live.Set(uint64(live))
	s.density.peak.SetMax(uint64(live))
}

// noteGroupDead records a group leaving the live set (cleanup or spawn
// failure).
func (s *System) noteGroupDead() {
	live := s.liveGroups.Add(-1)
	if live < 0 {
		live = 0
	}
	s.density.live.Set(uint64(live))
}

// noteGroupMigratedIn records a group restored onto this node: the live
// count and peak move, but the spawned counter does not — the group was
// spawned (and counted) once, on its source node.
func (s *System) noteGroupMigratedIn() {
	live := s.liveGroups.Add(1)
	s.density.live.Set(uint64(live))
	s.density.peak.SetMax(uint64(live))
}

// takeWarmSlot claims a warm slot for a spawn. It returns nil — and the
// spawn falls back to the cold-boot path — when the pool is off, empty,
// or the AeroKernel has halted (a warm claim must not outlive the kernel
// the slots were booted on; the cold path fails with the proper error).
func (s *System) takeWarmSlot() *warmSlot {
	if s.pool == nil {
		return nil
	}
	if s.AK == nil || s.AK.Halted() {
		return nil
	}
	slot := s.pool.get()
	if slot == nil {
		s.density.warmMisses.Inc()
		return nil
	}
	s.density.warmHits.Inc()
	s.density.warmSize.Set(uint64(s.pool.size()))
	return slot
}

// parkWarmSlot returns an exiting group's context to the pool. Degraded
// groups are never parked (their stack may be mid-protocol with a dead
// partner); beyond-capacity returns are dropped and counted.
func (g *ExecutionGroup) parkWarmSlot() {
	s := g.sys()
	if s.pool == nil || g.degraded.Load() || g.akStack == nil {
		return
	}
	if s.pool.put(&warmSlot{stack: g.akStack}) {
		s.density.warmReturns.Inc()
		s.density.warmSize.Set(uint64(s.pool.size()))
	} else {
		s.density.warmDrops.Inc()
	}
}

// WarmPoolSize reports the current warm-pool occupancy (0 when off).
func (s *System) WarmPoolSize() int {
	if s.pool == nil {
		return 0
	}
	return s.pool.size()
}

// LiveGroups returns the number of currently live execution groups (the
// admission-control view; Groups() walks the registry instead).
func (s *System) LiveGroups() int { return int(s.liveGroups.Load()) }

// GroupTableSize returns the number of registry entries, live or dead —
// what the leak regression pins: spawn+join must not grow it.
func (s *System) GroupTableSize() int { return s.groups.size() }
