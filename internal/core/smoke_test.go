package core

import (
	"testing"

	"multiverse/internal/linuxabi"
)

// buildTestSystem assembles a hybrid system with a fat binary, ready for
// InitRuntime.
func buildTestSystem(t *testing.T, opts Options) *System {
	t.Helper()
	fat, err := Build(BuildInput{
		App:        NewAppImage("smoke"),
		AeroKernel: NewAeroKernelImage(),
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opts.Hybrid = true
	sys, err := NewSystem(fat, opts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.InitRuntime(); err != nil {
		t.Fatalf("InitRuntime: %v", err)
	}
	return sys
}

// TestSmokeIncremental runs an unmodified "application" through the
// Incremental model end to end: mmap a buffer in the HRT, touch it (page
// faults forward to the ROS), issue file system calls, and exit.
func TestSmokeIncremental(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "smoke"})
	if err := sys.Kernel.FS().MkdirAll("/etc"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := sys.Kernel.FS().WriteFile("/etc/motd", []byte("hello hybrid world")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	code, err := sys.RunMain(func(env Env) uint64 {
		if env.World() != WorldHRT {
			t.Errorf("World() = %v, want WorldHRT", env.World())
		}
		// getpid through the forwarded syscall path.
		res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
		if !res.Ok() {
			t.Errorf("getpid: %v", res.Err)
		}
		if int(res.Ret) != sys.Proc.Pid() {
			t.Errorf("getpid = %d, want %d", res.Ret, sys.Proc.Pid())
		}

		// mmap + touch: the fault must forward to the ROS, which
		// demand-maps the page in the shared lower half.
		mres := env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysMmap,
			Args: [6]uint64{0, 64 * 1024, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
		})
		if !mres.Ok() {
			t.Fatalf("mmap: %v", mres.Err)
		}
		for off := uint64(0); off < 64*1024; off += 4096 {
			if err := env.Touch(mres.Ret+off, true); err != nil {
				t.Fatalf("touch %#x: %v", mres.Ret+off, err)
			}
		}

		// open/read/close of a ROS file.
		ores := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/etc/motd", Args: [6]uint64{0, linuxabi.ORdonly}})
		if !ores.Ok() {
			t.Fatalf("open: %v", ores.Err)
		}
		rres := env.Syscall(linuxabi.Call{Num: linuxabi.SysRead, Args: [6]uint64{ores.Ret, 0, 64}})
		if !rres.Ok() {
			t.Fatalf("read: %v", rres.Err)
		}
		if string(rres.Data) != "hello hybrid world" {
			t.Errorf("read = %q", rres.Data)
		}
		cres := env.Syscall(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{ores.Ret}})
		if !cres.Ok() {
			t.Fatalf("close: %v", cres.Err)
		}
		return 42
	})
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if code != 42 {
		t.Errorf("exit code = %d, want 42", code)
	}

	// The package ran as a kernel: faults and syscalls crossed the
	// event channel.
	if sys.AK.ForwardedSyscalls() == 0 {
		t.Error("no syscalls forwarded — did the HRT path run?")
	}
	if sys.AK.ForwardedFaults() == 0 {
		t.Error("no page faults forwarded")
	}
	if !sys.AK.Merged() {
		t.Error("address spaces not merged")
	}
	st := sys.Proc.Stats()
	if st.MinorFaults < 16 {
		t.Errorf("minor faults = %d, want >= 16", st.MinorFaults)
	}
	if exited, ec := sys.Proc.Exited(); !exited || ec != 42 {
		t.Errorf("process exit = (%v, %d), want (true, 42)", exited, ec)
	}
}

// TestSmokePthreadOverride checks the incremental model's parallelism:
// pthread_create maps to nk_thread_create through the default override,
// creating a second execution group; join semantics hold.
func TestSmokePthreadOverride(t *testing.T) {
	sys := buildTestSystem(t, Options{AppName: "threads"})
	var childWorld World
	code, err := sys.RunMain(func(env Env) uint64 {
		join, err := env.PthreadCreate(func(child Env) {
			childWorld = child.World()
			res := child.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
			if !res.Ok() {
				t.Errorf("child getpid: %v", res.Err)
			}
		})
		if err != nil {
			t.Errorf("PthreadCreate: %v", err)
			return 1
		}
		join()
		return 7
	})
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if code != 7 {
		t.Errorf("exit code = %d, want 7", code)
	}
	if childWorld != WorldHRT {
		t.Errorf("child world = %v, want WorldHRT", childWorld)
	}
}

// TestSmokeNativeBaseline runs the same app natively (no HVM).
func TestSmokeNativeBaseline(t *testing.T) {
	sys, err := NewSystem(nil, Options{AppName: "native"})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	code, err := sys.RunMain(func(env Env) uint64 {
		if env.World() != WorldNative {
			t.Errorf("World() = %v", env.World())
		}
		res := env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysMmap,
			Args: [6]uint64{0, 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
		})
		if !res.Ok() {
			t.Fatalf("mmap: %v", res.Err)
		}
		if err := env.Touch(res.Ret, true); err != nil {
			t.Fatalf("touch: %v", err)
		}
		return 0
	})
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if code != 0 {
		t.Errorf("code = %d", code)
	}
}
