package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"multiverse/internal/aerokernel"
	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/image"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/ros"
	"multiverse/internal/telemetry"
	"multiverse/internal/vfs"
)

// Options configures a System.
type Options struct {
	// Hybrid selects the full HVM/HRT configuration. When false, the
	// system is a plain ROS machine (the Native/Virtual baselines).
	Hybrid bool
	// Virtual hosts the ROS as an HVM guest (ignored when Hybrid, which
	// is always virtualized).
	Virtual bool
	// MachineSpec overrides the default 2x4-core machine.
	MachineSpec *machine.Spec
	// ROSCores / HRTCores partition the machine under Hybrid. Defaults:
	// ROS on core 0, HRT on core 1 (one core each, like the paper's
	// two-core guest).
	ROSCores []machine.CoreID
	HRTCores []machine.CoreID
	// UseSymbolCache enables the override symbol cache (ablation; the
	// paper's implementation looks the symbol up on every invocation).
	UseSymbolCache bool
	// SyncSyscalls forwards HRT system calls over the post-merger
	// synchronous memory-polling channel (section 4.3) instead of the
	// asynchronous event channel, at the price of a dedicated ROS
	// polling thread per execution group.
	SyncSyscalls bool
	// Router enables the adaptive boundary-crossing fast path: HRT-local
	// service for process-invariant calls, a result cache for idempotent
	// calls, and dynamic promotion of hot groups to a synchronous
	// channel. Off (the default) preserves the fixed forwarding paths
	// byte for byte.
	Router bool
	// RouterPolicy tunes promotion/demotion; zero fields take the
	// defaults (hvm.DefaultRouterPolicy).
	RouterPolicy hvm.RouterPolicy
	// Exitless enables the router's tier-3 transport: sustained forward
	// rates dedicate the partner to polling SPSC shared-memory rings, so
	// steady-state forwarding takes zero VM exits ("Look Mum, no VM
	// Exits!") — hypercalls remain only for ring setup/teardown and
	// kill recovery. Requires Router (ignored without it, and in the
	// static SyncSyscalls configuration). Off (the default) leaves the
	// router's tier-2 paths byte for byte.
	Exitless bool
	// Merger enables the incremental state-superposition merger: re-merges
	// copy only PML4 slots whose ROS-side generation stamp changed, TLB
	// shootdowns target the changed slots when few, HRT cores run with
	// PCID-tagged TLBs, and protection faults on runtime-owned user pages
	// resolve HRT-locally. Off (the default) preserves the full-copy,
	// broadcast-flush merge paths byte for byte.
	Merger bool
	// Scheduler enables the AeroKernel's per-core run-queue scheduler:
	// least-loaded placement for top-level and nested threads over the
	// whole HRT partition, Chase–Lev-style work stealing for legion index
	// tasks, a spin-then-halt idle policy, and deterministic virtual-time
	// serialization of same-core threads. Off (the default) preserves the
	// boot-core pinning paths byte for byte.
	Scheduler bool
	// FS preloads a filesystem.
	FS *vfs.FS
	// AppName names the spawned process.
	AppName string
	// Faults arms the deterministic fault-injection plane: notification
	// drops/duplications, delayed injection windows, corrupted request
	// frames, partner-thread deaths, and HRT panics, all rolled from a
	// seeded virtual-time PRNG so a given seed replays exactly. nil (the
	// default) leaves every fixed path byte-identical to the unfaulted
	// build.
	Faults *faults.Plan
	// WedgeTimeout bounds WaitExit/Join in host real time: a group that
	// produces no exit notification within the deadline surfaces
	// ErrGroupWedged instead of hanging the joiner forever. Zero takes
	// the default (10 minutes); negative disables the deadline.
	WedgeTimeout time.Duration
	// Tracer records virtual-time spans for the run; nil (the default)
	// disables tracing at near-zero cost.
	Tracer *telemetry.Tracer
	// Metrics is the run's metrics registry; one is created when nil.
	Metrics *telemetry.Registry
	// Recorder is the always-on flight recorder. When nil one is created
	// with the default ring size, so every run retains its last window of
	// structured events for post-mortem dumps; set NoRecorder to run dark.
	Recorder *telemetry.Recorder
	// NoRecorder disables the flight recorder entirely (the observability
	// bench's dark baseline; also useful to measure the ring's wall cost).
	NoRecorder bool
	// MaxGroups caps the number of concurrently live execution groups; a
	// spawn past the cap fails with ErrAdmissionRejected. 0 (the default)
	// means unlimited.
	MaxGroups int
	// WarmPool bounds the pool of pre-booted AeroKernel contexts that
	// SpawnGroup draws from and group exit returns to: warm spawns skip
	// the partner clone() and the async creation round trip, paying
	// WarmPoolReuse + AKThreadCreate instead. 0 (the default) disables
	// the pool and preserves the cold-boot spawn path byte for byte.
	WarmPool int
	// TenantBudget arms per-group admission budgets enforced at the
	// forwarding boundary; nil (the default) disables them.
	TenantBudget *TenantBudget
}

func (o *Options) fill() {
	if o.AppName == "" {
		o.AppName = "app"
	}
	if len(o.ROSCores) == 0 {
		o.ROSCores = []machine.CoreID{0}
	}
	if len(o.HRTCores) == 0 {
		o.HRTCores = []machine.CoreID{1}
	}
	if o.WedgeTimeout == 0 {
		o.WedgeTimeout = 10 * time.Minute
	}
}

// System is one assembled Multiverse machine: hardware, VMM, ROS, the
// hybridized process, and (after InitRuntime) the booted AeroKernel.
type System struct {
	Opts Options

	Machine *machine.Machine
	HVM     *hvm.HVM // nil unless Hybrid
	Kernel  *ros.Kernel
	Proc    *ros.Process
	Main    *ros.Thread
	AK      *aerokernel.Kernel // nil until InitRuntime under Hybrid

	Fat       *image.Image
	Overrides *OverrideSet

	// The hot registries are sharded (shard.go): group registration,
	// spawn handoff, and join lookup from a thousand concurrent tenants
	// must not serialize on one lock. The ID counters are atomics for the
	// same reason. s.mu now guards only the cold paths (exit hooks, the
	// hotspot profile).
	fnRegistry    shardedMap[func(Env) uint64]
	nextFnID      atomic.Uint64
	pendingSpawns shardedMap[*spawnSpec]
	nextSpawnID   atomic.Uint64
	groups        shardedMap[*ExecutionGroup]
	nextGroupID   atomic.Uint64

	mu          sync.Mutex
	exitPending chan uint64 // group ids whose HRT thread exited
	exitHooks   []func()
	hotspots    *HotspotProfile

	// Multi-tenancy state (tenancy.go): the live-group count admission
	// control checks, the warm spawn pool, and the density instruments.
	liveGroups atomic.Int64
	pool       *warmPool
	density    *densityStats

	// Grid membership (grid.go): set by NewGrid before any spawn. grid is
	// nil for a standalone System, which keeps every non-grid path — the
	// spawn shape, the channel Recv shape, the syscall path — byte for
	// byte what it was.
	grid     *Grid
	gridNode int

	tracer   *telemetry.Tracer
	metrics  *telemetry.Registry
	recorder *telemetry.Recorder // nil only under Options.NoRecorder
	faults   *faults.Injector    // nil unless Options.Faults

	createThreadAddr uint64
}

// NewSystem builds the machine, VMM partitioning (when hybrid), ROS
// kernel, and the application process. fat is the toolchain's output; it
// may be nil for non-hybrid baselines.
func NewSystem(fat *image.Image, opts Options) (*System, error) {
	opts.fill()
	spec := machine.DefaultSpec()
	if opts.MachineSpec != nil {
		spec = *opts.MachineSpec
	}
	m, err := machine.New(spec)
	if err != nil {
		return nil, err
	}

	s := &System{
		Opts:        opts,
		Machine:     m,
		Fat:         fat,
		exitPending: make(chan uint64, 64),
		tracer:      opts.Tracer,
		metrics:     opts.Metrics,
		recorder:    opts.Recorder,
	}
	// Fabricated function pointers start in the canonical text-ish range;
	// group ids start at 1 (0 is "no group"). The counters are atomics:
	// registerFn/spawn allocate with a fetch-add, no lock.
	s.nextFnID.Store(0x7000_0000_0000)
	if s.metrics == nil {
		s.metrics = telemetry.NewRegistry()
	}
	s.density = newDensityStats(s.metrics)
	if opts.WarmPool > 0 {
		s.pool = newWarmPool(opts.WarmPool)
	}
	if s.recorder == nil && !opts.NoRecorder {
		s.recorder = telemetry.NewRecorder(telemetry.DefaultRecorderSize)
	}
	if opts.NoRecorder {
		s.recorder = nil
	}
	if opts.Faults != nil {
		fi, err := faults.New(*opts.Faults, s.metrics)
		if err != nil {
			return nil, err
		}
		fi.SetRecorder(s.recorder)
		s.faults = fi
	}

	world := ros.Native
	rosCores := m.Cores()
	var coreIDs []machine.CoreID
	if opts.Hybrid {
		world = ros.Virtual // the ROS inside an HVM is a guest
		h, err := hvm.New(m, hvm.Config{
			ROSCores: opts.ROSCores,
			HRTCores: opts.HRTCores,
			Tracer:   s.tracer,
			Metrics:  s.metrics,
			Recorder: s.recorder,
			Faults:   s.faults,
		})
		if err != nil {
			return nil, err
		}
		s.HVM = h
		coreIDs = opts.ROSCores
	} else {
		if opts.Virtual {
			world = ros.Virtual
		}
		for _, c := range rosCores {
			coreIDs = append(coreIDs, c.ID)
		}
	}

	kern, err := ros.NewKernel(m, world, coreIDs, opts.FS)
	if err != nil {
		return nil, err
	}
	s.Kernel = kern

	proc, err := kern.Spawn(opts.AppName)
	if err != nil {
		return nil, err
	}
	s.Proc = proc
	s.Main = proc.NewThread(kern.BootCore())
	return s, nil
}

// NativeEnv returns the environment of the process's main thread for
// user-level (Native/Virtual) execution.
func (s *System) NativeEnv() Env {
	e := NewNativeEnv(s.Proc, s.Main).(*nativeEnv)
	e.scope = telemetry.Scope{
		Tracer:  s.tracer,
		Metrics: s.metrics,
		Track:   telemetry.Track{Core: int(s.Main.Core), Name: "ros:main"},
	}
	return e
}

// Tracer returns the run's span tracer (nil when tracing is off).
func (s *System) Tracer() *telemetry.Tracer { return s.tracer }

// Metrics returns the run's metrics registry (never nil).
func (s *System) Metrics() *telemetry.Registry { return s.metrics }

// Recorder returns the run's flight recorder (nil under
// Options.NoRecorder).
func (s *System) Recorder() *telemetry.Recorder { return s.recorder }

// FaultInjector returns the run's fault injector (nil when the fault
// plane is unarmed).
func (s *System) FaultInjector() *faults.Injector { return s.faults }

// InitRuntime performs the initialization the toolchain's hooks run
// before main() (section 3.5): register ROS signal handlers, hook process
// exit, link AeroKernel functions, parse and install the embedded
// AeroKernel image, boot it, and merge the address spaces.
func (s *System) InitRuntime() error {
	if !s.Opts.Hybrid {
		return nil // nothing to do for the baselines
	}
	if s.Fat == nil {
		return fmt.Errorf("multiverse: no fat binary (run the toolchain first)")
	}

	// 1. Register ROS signal handlers: the HRT-exit notification path.
	s.HVM.RegisterROSSignal(s.Main.Clock, s.hrtExitSignal, s.Main.Stack)

	// 2. Hook process exit so HRT shutdown accompanies it.
	s.AddExitHook(func() {
		if s.AK != nil {
			s.AK.Halt()
		}
	})

	// 3. Parse the embedded AeroKernel binary out of our own executable.
	akImage, err := image.ExtractAeroKernel(s.Fat)
	if err != nil {
		return fmt.Errorf("multiverse: %w", err)
	}

	// 4. Install the image in HRT physical memory and boot it.
	if err := s.HVM.InstallImage(s.Main.Clock, akImage); err != nil {
		return err
	}
	s.HVM.RegisterBootHandler(func(info hvm.BootInfo) (hvm.HRTSink, error) {
		k, err := aerokernel.Boot(s.Machine, info)
		if err != nil {
			return nil, err
		}
		s.AK = k
		return k, nil
	})
	if err := s.HVM.BootHRT(s.Main.Clock); err != nil {
		return err
	}

	// 5. AeroKernel function linkage: bind the Multiverse support
	// functions and the override targets to their symbols.
	s.linkAKFunctions()

	// 6. Build the override wrapper table from the embedded config.
	specs, err := ParseOverrides(image.ExtractOverrides(s.Fat))
	if err != nil {
		return err
	}
	s.Overrides = NewOverrideSet(specs, s.Opts.UseSymbolCache)
	s.Overrides.SetTelemetry(s.tracer, s.metrics)

	// 7. Merge the ROS process's lower half into the HRT address space,
	// optionally with the incremental merger armed so later re-merges
	// copy deltas instead of the whole lower half.
	s.enableMerger()
	s.enableScheduler()
	if err := s.HVM.MergeAddressSpace(s.Main.Clock, s.Proc.CR3()); err != nil {
		return err
	}
	return nil
}

// enableScheduler arms the per-core run-queue scheduler on the booted
// AeroKernel (Options.Scheduler).
func (s *System) enableScheduler() {
	if !s.Opts.Scheduler || s.AK == nil {
		return
	}
	s.AK.EnableScheduler()
	// With threads genuinely overlapping across cores, address assignment
	// must not depend on which thread's mmap/brk won the race — switch the
	// ROS process to TID-keyed deterministic arenas.
	if s.Proc != nil {
		s.Proc.EnableDeterministicArenas()
	}
}

// enableMerger arms the incremental state-superposition merger on the
// booted AeroKernel: the ROS process publishes per-PML4-slot generation
// stamps for delta merges, and the HRT cores' TLBs become PCID-tagged so
// address-space loads need no flush.
func (s *System) enableMerger() {
	if !s.Opts.Merger || s.AK == nil {
		return
	}
	s.AK.EnableIncrementalMerger(s.Proc.PML4Generations)
	for _, c := range s.Opts.HRTCores {
		s.Machine.Core(c).MMU.EnablePCID(true)
	}
}

// AddExitHook registers a function run when the hybridized process exits.
func (s *System) AddExitHook(fn func()) {
	s.mu.Lock()
	s.exitHooks = append(s.exitHooks, fn)
	s.mu.Unlock()
}

// runExitHooks fires the exit hooks once (process teardown).
func (s *System) runExitHooks() {
	s.mu.Lock()
	hooks := s.exitHooks
	s.exitHooks = nil
	s.mu.Unlock()
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
}

// hrtExitSignal is the registered ROS signal handler: an HRT thread
// exited; flip the bit in the corresponding partner's data structure.
// Signals coalesce, so one delivery may stand for several exits: drain
// everything pending. The raise runs synchronously on the exiting HRT
// goroutine, after its own push and before its exit event is forwarded,
// so draining here guarantees each group's own bit is set by the time
// its partner services the exit notification — the partner's exit time
// does not depend on how concurrent exits interleave.
func (s *System) hrtExitSignal(sig int) {
	for {
		select {
		case gid := <-s.exitPending:
			if g, ok := s.groups.load(gid); ok {
				g.exitRequested.Store(true)
			}
		default:
			// Nothing (more) pending.
			return
		}
	}
}

// registerFn stores an application closure under a fabricated function
// pointer (the address the runtime would pass to pthread_create).
func (s *System) registerFn(fn func(Env) uint64) uint64 {
	id := s.nextFnID.Add(16) - 16
	s.fnRegistry.store(id, fn)
	return id
}

func (s *System) lookupFn(id uint64) func(Env) uint64 {
	fn, _ := s.fnRegistry.load(id)
	return fn
}

// linkAKFunctions binds the AeroKernel-side implementations Multiverse
// relies on: thread creation/join (the override targets) and the internal
// spawn entry the HVM async-call requests resolve to.
func (s *System) linkAKFunctions() {
	ak := s.AK

	// mv_create_thread: runs in the AeroKernel event loop in response to
	// a thread-creation request from a partner thread. It creates the
	// top-level HRT thread with the requested superposition and starts
	// it; the request completes when creation succeeded, returning the
	// Nautilus thread id ("thread data sent from the remote core after
	// creation succeeds").
	s.createThreadAddr = ak.RegisterFunc("mv_create_thread", func(t *aerokernel.Thread, args []uint64) uint64 {
		if len(args) < 1 {
			return ^uint64(0)
		}
		spec, _ := s.pendingSpawns.loadAndDelete(args[0])
		if spec == nil {
			return ^uint64(0)
		}
		ht := ak.CreateThread(t.Clock, spec.core, spec.super, spec.channel, spec.stack)
		if spec.syncSvc != nil {
			ht.SetSyncSyscalls(spec.syncSvc)
		}
		if spec.router != nil {
			ht.SetRouter(spec.router)
		}
		if spec.queue != nil {
			ht.AttachQueueEntry(spec.queue)
		}
		spec.group.hrt = ht
		s.allowFaultThread(spec.group, ht)
		ht.Start(func(ht *aerokernel.Thread) uint64 {
			return spec.group.runHRT(ht, spec.fn)
		})
		return uint64(ht.ID)
	})

	// nk_thread_create: the override target for pthread_create. The
	// argument is a registered function id; a new execution group is
	// spawned for it, per Figure 7.
	ak.RegisterFunc("nk_thread_create", func(t *aerokernel.Thread, args []uint64) uint64 {
		if len(args) < 1 {
			return ^uint64(0)
		}
		fn := s.lookupFn(args[0])
		if fn == nil {
			return ^uint64(0)
		}
		g, err := s.spawnGroupFrom(t.Clock, t, fn)
		if err != nil {
			return ^uint64(0)
		}
		return g.id
	})

	// nk_thread_join: the override target for pthread_join; joins the
	// group's partner thread, which by construction does not exit before
	// the HRT thread does.
	ak.RegisterFunc("nk_thread_join", func(t *aerokernel.Thread, args []uint64) uint64 {
		if len(args) < 1 {
			return ^uint64(0)
		}
		g, ok := s.groups.load(args[0])
		if !ok {
			return ^uint64(0)
		}
		code, err := g.WaitExit(t.Clock)
		if err != nil {
			return ^uint64(0)
		}
		g.retire()
		return code
	})

	ak.RegisterFunc("nk_thread_exit", func(t *aerokernel.Thread, args []uint64) uint64 {
		return 0
	})

	// A couple of genuinely useful AeroKernel services for accelerator-
	// model code to call directly.
	ak.RegisterFunc("nk_sched_yield", func(t *aerokernel.Thread, args []uint64) uint64 {
		t.Clock.Advance(s.Machine.Cost.AKEventSignal)
		return 0
	})
	ak.RegisterFunc("nk_sysinfo", func(t *aerokernel.Thread, args []uint64) uint64 {
		return uint64(len(s.AK.Cores()))
	})

	// Kernel-mode memory management (section 5's "next steps"): the
	// mmap/mprotect/munmap shapes the garbage collector depends on,
	// implemented as direct page-table edits in the AeroKernel.
	ak.RegisterFunc("nk_mmap", func(t *aerokernel.Thread, args []uint64) uint64 {
		if len(args) < 1 {
			return ^uint64(0)
		}
		addr, err := ak.MemMap(t, args[0])
		if err != nil {
			return ^uint64(0)
		}
		return addr
	})
	ak.RegisterFunc("nk_mprotect", func(t *aerokernel.Thread, args []uint64) uint64 {
		if len(args) < 3 {
			return ^uint64(0)
		}
		if err := ak.MemProtect(t, args[0], args[1], args[2] != 0); err != nil {
			return ^uint64(0)
		}
		return 0
	})
	ak.RegisterFunc("nk_munmap", func(t *aerokernel.Thread, args []uint64) uint64 {
		if len(args) < 2 {
			return ^uint64(0)
		}
		if err := ak.MemUnmap(t, args[0], args[1]); err != nil {
			return ^uint64(0)
		}
		return 0
	})

	// Kernel-mode event primitives: the fast path parallel runtimes bind
	// their synchronization to under the accelerator model (no
	// kernel/user crossing, no forwarding — just the AeroKernel's
	// wakeup costs).
	ak.RegisterFunc("nk_event_create", func(t *aerokernel.Thread, args []uint64) uint64 {
		t.Clock.Advance(s.Machine.Cost.AKThreadCreate / 4)
		return 1
	})
	ak.RegisterFunc("nk_event_wait", func(t *aerokernel.Thread, args []uint64) uint64 {
		t.Clock.Advance(s.Machine.Cost.AKEventWait)
		return 0
	})
	ak.RegisterFunc("nk_event_signal", func(t *aerokernel.Thread, args []uint64) uint64 {
		t.Clock.Advance(s.Machine.Cost.AKEventSignal)
		return 0
	})
}

// RelinkAfterReboot re-binds the Multiverse support functions after an
// HRT reboot (a fresh AeroKernel has an empty function registry and, when
// the incremental merger is on, empty generation state). The caller
// re-merges separately, as the boot protocol does.
func (s *System) RelinkAfterReboot() {
	s.linkAKFunctions()
	s.enableMerger()
	s.enableScheduler()
}

// SeedGroupIDs advances the group-id counter to at least base. A grid
// seeds each node into a disjoint range so a group keeps a unique id
// when a migration moves it into another node's registry. Advance-only;
// a no-op if the counter is already past base (node 0 keeps the
// standalone numbering).
func (s *System) SeedGroupIDs(base uint64) {
	for {
		cur := s.nextGroupID.Load()
		if cur >= base || s.nextGroupID.CompareAndSwap(cur, base) {
			return
		}
	}
}

// GridNode reports the grid this System belongs to (nil standalone) and
// its node index within it.
func (s *System) GridNode() (*Grid, int) { return s.grid, s.gridNode }

// Groups returns the live execution groups (diagnostics). Torn-down
// groups stay registered until joined (late joiners must still find
// them); they do not count as live.
func (s *System) Groups() int {
	n := 0
	s.groups.rangeAll(func(_ uint64, g *ExecutionGroup) {
		if !g.dead.Load() {
			n++
		}
	})
	return n
}

// allowFaultThread adds an HRT thread's panic-roll site to the scoped
// fault allowlist when the owning group is an injection target
// (faults.Plan.Groups).
func (s *System) allowFaultThread(g *ExecutionGroup, ht *aerokernel.Thread) {
	if fi := s.faults; fi != nil && fi.Scoped() && fi.GroupInScope(g.id) {
		fi.AllowSite("thread", uint64(ht.ID))
	}
}

// ExitProcess runs the hooked process exit: the exit_group system call
// plus HRT shutdown.
func (s *System) ExitProcess(code uint64) {
	_ = s.Proc.Syscall(s.Main, linuxabi.Call{Num: linuxabi.SysExitGroup, Args: [6]uint64{code}})
	s.runExitHooks()
}
