package core

import "sync"

// The System's hot registries — groups, pending spawns, registered
// functions — used to live behind the one System mutex. With a handful of
// execution groups that was invisible; with a thousand tenants spawning,
// dispatching, and joining concurrently, every registration and every
// nk_thread_join lookup serialized on the same lock. shardedMap is the
// replacement: a power-of-two array of independently locked uint64-keyed
// maps, so two groups touching different shards never contend.

// shardCount is the number of shards (power of two so the selector is a
// mask). 64 shards keep the per-shard collision rate negligible at the
// 1k-group density target while costing ~3 KiB per registry when idle.
const shardCount = 64

// mapShard is one lock + map pair.
type mapShard[V any] struct {
	mu sync.Mutex
	m  map[uint64]V
}

// shardedMap is a uint64-keyed map sharded by a multiplicative hash of
// the key. The zero value is ready to use.
type shardedMap[V any] struct {
	shards [shardCount]mapShard[V]
}

// shardOf selects the shard for a key. Keys are IDs handed out in fixed
// strides (group ids +1, function ids +16), so the raw low bits would
// cluster; the Fibonacci multiplier spreads any stride uniformly and the
// top bits select the shard.
func shardOf(key uint64) int {
	return int((key * 0x9e37_79b9_7f4a_7c15) >> (64 - 6)) // log2(shardCount) = 6
}

// store inserts or replaces the value for key.
func (s *shardedMap[V]) store(key uint64, v V) {
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]V)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// load returns the value for key, if present.
func (s *shardedMap[V]) load(key uint64) (V, bool) {
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

// loadAndDelete removes key, returning what was stored under it.
func (s *shardedMap[V]) loadAndDelete(key uint64) (V, bool) {
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	v, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	return v, ok
}

// delete removes key if present.
func (s *shardedMap[V]) delete(key uint64) {
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// rangeAll calls fn for every entry, one shard at a time. fn must not
// call back into the same shardedMap. Iteration order is unspecified.
func (s *shardedMap[V]) rangeAll(fn func(key uint64, v V)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			fn(k, v)
		}
		sh.mu.Unlock()
	}
}

// size returns the total number of entries across all shards.
func (s *shardedMap[V]) size() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
