package core

import (
	"fmt"
	"sync/atomic"

	"multiverse/internal/aerokernel"
	"multiverse/internal/cycles"
	"multiverse/internal/hvm"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/ros"
	"multiverse/internal/telemetry"
)

// spawnSpec is the pending thread-creation request a partner thread hands
// to the AeroKernel through the HVM.
type spawnSpec struct {
	fn      func(Env) uint64
	core    machine.CoreID
	super   aerokernel.Superposition
	channel *hvm.EventChannel
	stack   *machine.Stack
	syncSvc *hvm.SyncSyscallChannel
	router  *hvm.SyscallRouter
	queue   *aerokernel.QueueEntry // run-queue slot when scheduler-placed
	group   *ExecutionGroup
}

// ExecutionGroup is the pair the paper's split execution revolves around:
// one ROS partner thread and one top-level HRT thread, joined by an event
// channel (section 3.2). The partner exists to preserve join semantics and
// to provide the ROS-side context that initiates the state superposition
// and services forwarded events.
type ExecutionGroup struct {
	id      uint64
	sys     *System
	partner *ros.Thread
	hrt     *aerokernel.Thread
	channel *hvm.EventChannel

	// exitRequested is "a bit in the appropriate partner thread's data
	// structure" flipped by the ROS-side HRT-exit signal handler.
	exitRequested atomic.Bool

	// dead marks the group torn down. The group stays registered so a
	// joiner that arrives after cleanup still finds it and synchronizes
	// its clock against the partner's final time — whether the join lands
	// before or after cleanup is host-scheduling order, and it must not
	// change the joiner's virtual clock.
	dead atomic.Bool

	// syncSvc and its dedicated polling thread exist when the system
	// runs with synchronous syscall forwarding (Options.SyncSyscalls).
	syncSvc *hvm.SyncSyscallChannel
	poller  *ros.Thread

	// router is the group's adaptive boundary-crossing fast path
	// (Options.Router).
	router *hvm.SyscallRouter

	created  chan struct{}
	exitCode atomic.Uint64
}

// SpawnGroup creates an execution group running fn as a top-level HRT
// thread, following Figure 7: create the partner thread in the ROS (2);
// the partner allocates a ROS-side stack and invokes the HVM to request
// thread creation in the HRT with the GDT/TLS superposition (3); the
// request completes when the AeroKernel thread exists. creator pays the
// partner-creation cost (it is an ordinary Linux thread).
func (s *System) SpawnGroup(creator *cycles.Clock, fn func(Env) uint64) (*ExecutionGroup, error) {
	return s.spawnGroupFrom(creator, nil, fn)
}

// spawnGroupFrom is SpawnGroup with the creating HRT thread made explicit
// (nil for spawns initiated from the ROS side): under Options.Scheduler the
// new top-level thread is placed least-loaded over the whole HRT partition
// and queued behind the chosen core's current occupant, with the creator's
// own run-queue entry recorded so descendants never wait on an ancestor
// that is blocked joining them.
func (s *System) spawnGroupFrom(creator *cycles.Clock, creatorT *aerokernel.Thread, fn func(Env) uint64) (*ExecutionGroup, error) {
	if s.AK == nil {
		return nil, fmt.Errorf("multiverse: runtime not initialized (no AeroKernel)")
	}
	rosCore := s.Kernel.BootCore()
	hrtCore := s.Opts.HRTCores[0]
	var queue *aerokernel.QueueEntry
	sched := s.AK.Scheduler()
	if sched != nil {
		hrtCore, queue = sched.PlaceTopLevel(creator, creatorT)
	}

	g := &ExecutionGroup{
		sys:     s,
		channel: s.HVM.NewEventChannel(hrtCore, rosCore),
		created: make(chan struct{}),
	}
	s.mu.Lock()
	g.id = s.nextGroupID
	s.nextGroupID++
	s.groups[g.id] = g
	s.mu.Unlock()

	// Optional low-latency path: a dedicated ROS thread polls a
	// post-merger synchronous channel and services the HRT thread's
	// system calls at cacheline latency (section 4.3's memory-based
	// protocol), while faults and exit events stay on the event channel.
	if s.Opts.SyncSyscalls {
		svc, serr := s.HVM.SetupSyncSyscalls(creator, 0x7f50_0000_0000+g.id*4096, rosCore, hrtCore)
		if serr != nil {
			if sched != nil {
				sched.CancelEntry(queue)
			}
			return nil, serr
		}
		g.syncSvc = svc
		g.poller = s.Proc.NewThread(rosCore)
		g.poller.Start(creator, func(pt *ros.Thread) {
			for svc.Serve(pt.Clock, func(call linuxabi.Call) linuxabi.Result {
				return s.Proc.Syscall(pt, call)
			}) {
			}
		})
	}

	// Adaptive boundary router: mirror the process-invariant state into
	// the HRT, bridge the ROS kernel's mutation events to the cache
	// invalidation paths, and hand the router the hooks it needs to
	// promote a hot group to a synchronous channel mid-run.
	if s.Opts.Router {
		r := hvm.NewSyscallRouter(s.HVM, hrtCore, hvm.RouterLocalState{
			PID:   uint64(s.Proc.Pid()),
			Cwd:   s.Proc.Cwd(),
			Uname: ros.UnameString,
		}, s.Opts.RouterPolicy)
		g.router = r
		s.Proc.AddMutationHook(func(ev ros.MutationEvent) {
			switch ev.Kind {
			case ros.MutFD:
				r.InvalidateFD(ev.FD)
			case ros.MutPath:
				r.InvalidatePath(ev.Path)
			case ros.MutBrk:
				r.InvalidateBrk()
			case ros.MutCwd:
				r.InvalidateCwd()
			}
		})
		if g.syncSvc != nil {
			// Statically configured sync forwarding: the channel is pinned
			// and the promotion policy stays out of the way.
			r.SetSyncChannel(g.syncSvc)
		} else {
			gid := g.id
			r.SetPromotionHooks(
				func(clk *cycles.Clock) (*hvm.SyncSyscallChannel, error) {
					// Promotion: one setup hypercall plus one ROS thread
					// creation, both charged to the promoting HRT thread.
					svc, serr := s.HVM.SetupSyncSyscalls(clk, 0x7f60_0000_0000+gid*4096, rosCore, hrtCore)
					if serr != nil {
						return nil, serr
					}
					poller := s.Proc.NewThread(rosCore)
					poller.Start(clk, func(pt *ros.Thread) {
						for svc.Serve(pt.Clock, func(call linuxabi.Call) linuxabi.Result {
							return s.Proc.Syscall(pt, call)
						}) {
						}
					})
					return svc, nil
				},
				func(clk *cycles.Clock, ch *hvm.SyncSyscallChannel) {
					ch.Close() // the poller's Serve returns false and it exits
				},
			)
		}
	}

	g.partner = s.Proc.NewThread(rosCore)
	g.partner.Start(creator, func(pt *ros.Thread) {
		// The partner allocates the ROS-side stack for the HRT thread
		// and mirrors its own GDT/TLS state into the superposition.
		stack := machine.NewStack(256 * 1024)
		spec := &spawnSpec{
			fn:   fn,
			core: hrtCore,
			super: aerokernel.Superposition{
				GDT:    s.Kernel.ProcessGDT(),
				FSBase: pt.FSBase,
			},
			channel: g.channel,
			stack:   stack,
			syncSvc: g.syncSvc,
			router:  g.router,
			queue:   queue,
			group:   g,
		}
		s.mu.Lock()
		id := s.nextSpawnID
		s.nextSpawnID++
		s.pendingSpawns[id] = spec
		s.mu.Unlock()

		ret, err := s.HVM.AsyncCall(pt.Clock, s.createThreadAddr, id)
		if err != nil || ret == ^uint64(0) {
			close(g.created)
			g.channel.Close()
			return
		}
		close(g.created)
		g.serve(pt)
	})

	<-g.created
	if g.hrt == nil {
		// The HRT thread never started; release its run-queue slot so
		// threads queued behind it do not wait forever.
		if sched != nil {
			sched.CancelEntry(queue)
		}
		return nil, fmt.Errorf("multiverse: HRT thread creation failed")
	}
	return g, nil
}

// runHRT is the HRT thread's body: run the application function in the
// HRT environment, then execute the exit protocol — write the exit
// notification, raise the asynchronous HRT->ROS signal (which bypasses
// the ROS kernel and flips the partner's bit), and wake the partner
// through the event channel so it can clean up and exit.
func (g *ExecutionGroup) runHRT(t *aerokernel.Thread, fn func(Env) uint64) uint64 {
	env := &hrtEnv{sys: g.sys, t: t, group: g}
	code := fn(env)
	g.exitCode.Store(code)

	g.sys.exitPending <- g.id
	if err := g.sys.HVM.RaiseROSSignal(t.Clock, int(linuxabi.SIGCHLD)); err == nil {
		// Signal delivered; the partner's bit is set.
	}
	if _, err := g.channel.Forward(t.Clock, &hvm.Envelope{Kind: hvm.EvThreadExit, ExitCode: code}); err != nil {
		// Channel already down; nothing to wake.
	}
	return code
}

// serve is the partner thread's event loop: converge on each event the
// HRT side raises — forwarded system calls are executed against the ROS
// kernel, forwarded page faults are replicated so the ROS fault path runs
// — until the HRT thread exits.
func (g *ExecutionGroup) serve(pt *ros.Thread) {
	for {
		env := g.channel.Recv(pt.Clock)
		if env == nil {
			break
		}
		switch env.Kind {
		case hvm.EvSyscall:
			res := g.sys.Proc.Syscall(pt, env.Call)
			g.channel.Complete(pt.Clock, env, hvm.Reply{Res: res})
		case hvm.EvPageFault:
			// Replicate the access: the same exception occurs on the
			// ROS core and the ROS handles it as it would normally.
			errno := g.sys.Proc.Touch(pt, env.FaultAddr, env.FaultWrite)
			g.channel.Complete(pt.Clock, env, hvm.Reply{FaultOK: errno == linuxabi.OK})
		case hvm.EvThreadExit:
			g.channel.Complete(pt.Clock, env, hvm.Reply{})
			if g.exitRequested.Load() {
				g.cleanup(pt)
				return
			}
		default:
			g.channel.Complete(pt.Clock, env, hvm.Reply{Res: linuxabi.Result{Err: linuxabi.ENOSYS}})
		}
	}
	g.cleanup(pt)
}

// cleanup tears the group down on the partner side.
func (g *ExecutionGroup) cleanup(pt *ros.Thread) {
	if g.router != nil {
		g.router.Shutdown() // closes a promoted channel; its poller exits
	}
	if g.syncSvc != nil {
		g.syncSvc.Close() // the polling thread's Serve returns false
	}
	g.channel.Close()
	g.dead.Store(true)
}

// WaitExit blocks until the group's partner thread exits (which the
// protocol guarantees happens only after the HRT thread exits) and
// returns the HRT thread's exit code. It synchronizes the waiter's clock.
// It also waits for the HRT goroutine itself: the partner unblocks as
// soon as it completes the exit notification, while the HRT side is
// still finishing its half of that round trip (closing its forward
// spans), and observers run right after this returns.
func (g *ExecutionGroup) WaitExit(clk *cycles.Clock) uint64 {
	<-g.partner.Done()
	<-g.hrt.Done()
	clk.SyncTo(g.partner.Clock.Now())
	return g.exitCode.Load()
}

// Join joins the partner thread from a ROS thread — the main thread's
// join() path in the Incremental model.
func (g *ExecutionGroup) Join(joiner *ros.Thread) uint64 {
	g.partner.Join(joiner)
	<-g.hrt.Done()
	return g.exitCode.Load()
}

// Channel exposes the group's event channel (stats).
func (g *ExecutionGroup) Channel() *hvm.EventChannel { return g.channel }

// HRTThread exposes the group's HRT thread.
func (g *ExecutionGroup) HRTThread() *aerokernel.Thread { return g.hrt }

// Partner exposes the group's ROS partner thread.
func (g *ExecutionGroup) Partner() *ros.Thread { return g.partner }

// Router exposes the group's boundary router (nil unless Options.Router).
func (g *ExecutionGroup) Router() *hvm.SyscallRouter { return g.router }

// ---- The HRT execution environment -------------------------------------

// hrtEnv is the Env of code running inside the HRT: system calls go
// through the Nautilus stub and the event channel; memory accesses run in
// ring 0 against the merged address space; pthreads are interposed by the
// default overrides.
type hrtEnv struct {
	sys   *System
	t     *aerokernel.Thread
	group *ExecutionGroup
}

func (e *hrtEnv) World() World          { return WorldHRT }
func (e *hrtEnv) Clock() *cycles.Clock  { return e.t.Clock }
func (e *hrtEnv) Process() *ros.Process { return e.sys.Proc }

// TelemetryScope exposes the run's instruments on the HRT thread's track;
// layers above (the scheme GC) discover it by interface assertion.
func (e *hrtEnv) TelemetryScope() telemetry.Scope {
	return telemetry.Scope{
		Tracer:  e.sys.tracer,
		Metrics: e.sys.metrics,
		Track:   telemetry.Track{Core: int(e.t.Core), Name: "hrt"},
	}
}

func (e *hrtEnv) Compute(c cycles.Cycles) {
	e.t.Clock.Advance(c)
	e.sys.Proc.ChargeUser(c)
}

func (e *hrtEnv) Syscall(call linuxabi.Call) linuxabi.Result {
	start := e.t.Clock.Now()
	res := e.t.Syscall(call)
	e.sys.recordHotspot(call.Num, false, e.t.Clock.Now()-start)
	return res
}

func (e *hrtEnv) VDSO(num linuxabi.Sysno) (uint64, linuxabi.Errno) {
	// vdso functions execute in the merged address space on the HRT
	// core — a state superposition, no forwarding.
	return e.sys.Proc.VDSOAt(e.t.Clock, e.t.Core, num)
}

func (e *hrtEnv) Touch(addr uint64, write bool) error {
	before := e.sys.AK.ForwardedFaults()
	start := e.t.Clock.Now()
	err := e.t.Touch(addr, write)
	if e.sys.AK.ForwardedFaults() > before {
		e.sys.recordHotspot(0, true, e.t.Clock.Now()-start)
	}
	return err
}

func (e *hrtEnv) CheckTimer() bool {
	// The timer is keyed by the ROS thread that serviced the forwarded
	// setitimer — this group's partner.
	return e.sys.Proc.CheckTimerFor(e.group.partner.TID, e.t.Clock)
}

func (e *hrtEnv) RegisterSignalCode(addr uint64, fn func(*ros.SignalContext)) {
	// Scope the registration to this group's partner — the same ROS thread
	// that services the group's rt_sigaction — so concurrent engines using
	// the same fixed handler addresses cannot clobber each other.
	e.sys.Proc.RegisterHandlerFor(e.group.partner.TID, addr, fn)
}

// PthreadCreate goes through the generated wrapper for pthread_create,
// which resolves and calls nk_thread_create (Figure 5's flow).
func (e *hrtEnv) PthreadCreate(fn func(Env)) (PthreadJoin, error) {
	w, ok := e.sys.Overrides.Lookup("pthread_create")
	if !ok {
		return nil, fmt.Errorf("multiverse: pthread_create override missing")
	}
	fnID := e.sys.registerFn(func(env Env) uint64 { fn(env); return 0 })
	gid, err := w.Invoke(e.t, fnID)
	if err != nil {
		return nil, err
	}
	if gid == ^uint64(0) {
		return nil, fmt.Errorf("multiverse: nk_thread_create failed")
	}
	self := e.t
	return func() uint64 {
		jw, okj := e.sys.Overrides.Lookup("pthread_join")
		if !okj {
			return ^uint64(0)
		}
		ret, jerr := jw.Invoke(self, gid)
		if jerr != nil {
			return ^uint64(0)
		}
		return ret
	}, nil
}

// AKCall invokes an AeroKernel function directly by symbol — what
// accelerator-model code does (Figure 4's aerokernel_func()).
func (e *hrtEnv) AKCall(symbol string, args ...uint64) (uint64, error) {
	addr, ok := e.sys.AK.LookupSymbol(e.t.Clock, symbol)
	if !ok {
		return 0, fmt.Errorf("multiverse: AeroKernel symbol %q not found", symbol)
	}
	return e.sys.AK.CallByAddr(e.t, addr, args...)
}

// RegisterAKMemFaultHandler installs the runtime's handler for protection
// faults in the AeroKernel-managed memory region (the in-kernel GC
// write-barrier path).
func (e *hrtEnv) RegisterAKMemFaultHandler(h func(addr uint64, write bool) bool) {
	e.sys.AK.SetMemFaultHandler(aerokernel.MemFaultHandler(h))
}

// RegisterUserFaultHandler installs the runtime's handler for protection
// faults on merged lower-half user pages — the fault fast lane. It
// installs nothing and returns false unless the incremental merger is
// enabled; callers then keep the forwarded fault path.
func (e *hrtEnv) RegisterUserFaultHandler(h func(addr uint64, write bool) bool) bool {
	if !e.sys.Opts.Merger {
		return false
	}
	e.sys.AK.SetUserFaultHandler(aerokernel.MemFaultHandler(h))
	return true
}

// UserProtect rewrites the protection of merged user pages by direct PTE
// edit on the HRT core, reporting whether the edit succeeded. On false
// the caller must fall back to the forwarded mprotect path.
func (e *hrtEnv) UserProtect(addr, length uint64, writable bool) bool {
	return e.sys.AK.ProtectUser(e.t.Clock, e.t.Core, addr, length, writable) == nil
}

// OverrideInvoke calls a legacy function through its override wrapper.
func (e *hrtEnv) OverrideInvoke(legacy string, args ...uint64) (uint64, error) {
	w, ok := e.sys.Overrides.Lookup(legacy)
	if !ok {
		return 0, fmt.Errorf("multiverse: no override for %q", legacy)
	}
	return w.Invoke(e.t, args...)
}

// HRTThreadForBench exposes the backing AeroKernel thread; the benchmark
// harness measures primitives against it directly.
func (e *hrtEnv) HRTThreadForBench() *aerokernel.Thread { return e.t }

// Scheduler exposes the AeroKernel's run-queue scheduler; nil when
// Options.Scheduler is off.
func (e *hrtEnv) Scheduler() *aerokernel.Scheduler {
	if e.sys.AK == nil {
		return nil
	}
	return e.sys.AK.Scheduler()
}

// SpawnWorkerEnv creates a persistent scheduler-placed worker context: a
// nested AeroKernel thread (placed least-loaded over the HRT partition)
// wrapped in an Env that charges its clock. The worker never runs a
// goroutine of its own — legion's work-stealing executor drives it
// deterministically — so the release function just retires the thread and
// returns its placement load.
func (e *hrtEnv) SpawnWorkerEnv() (Env, machine.CoreID, func(), error) {
	if e.Scheduler() == nil {
		return nil, 0, nil, fmt.Errorf("multiverse: scheduler not enabled")
	}
	nt := e.t.CreateNested()
	wenv := &hrtEnv{sys: e.sys, t: nt, group: e.group}
	return wenv, nt.Core, nt.Release, nil
}

// SchedulerHost is the surface legion's work-stealing executor discovers by
// type assertion on an HRT Env. Scheduler returns nil when the option is
// off, in which case legion keeps its execution-group worker pool.
type SchedulerHost interface {
	Scheduler() *aerokernel.Scheduler
	SpawnWorkerEnv() (Env, machine.CoreID, func(), error)
}

var _ SchedulerHost = (*hrtEnv)(nil)

// HRTExtras is the additional surface hybrid (accelerator-model) code can
// reach: direct AeroKernel calls and override invocation. Obtain it by
// type-asserting an Env whose World is WorldHRT.
type HRTExtras interface {
	AKCall(symbol string, args ...uint64) (uint64, error)
	OverrideInvoke(legacy string, args ...uint64) (uint64, error)
}

var _ HRTExtras = (*hrtEnv)(nil)

// ---- Usage-model entry points ------------------------------------------

// RunMain executes app under the Incremental model: "Multiverse will
// create a new thread in the HRT corresponding to the program's main()
// routine", and the ROS main thread joins the partner. Returns the app's
// exit code.
func (s *System) RunMain(app func(Env) uint64) (uint64, error) {
	if !s.Opts.Hybrid {
		// Baseline worlds just run main() natively.
		env := s.NativeEnv()
		code := app(env)
		s.ExitProcess(code)
		return code, nil
	}
	g, err := s.SpawnGroup(s.Main.Clock, app)
	if err != nil {
		return 0, err
	}
	code := g.Join(s.Main)
	s.ExitProcess(code)
	return code, nil
}

// HRTInvokeFunc is the Accelerator model's hrt_invoke_func(): run routine
// in a new HRT thread and wait for it (Figure 4).
func (s *System) HRTInvokeFunc(routine func(Env) uint64) (uint64, error) {
	g, err := s.SpawnGroup(s.Main.Clock, routine)
	if err != nil {
		return 0, err
	}
	return g.Join(s.Main), nil
}
