package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multiverse/internal/aerokernel"
	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/ros"
	"multiverse/internal/telemetry"
)

// ErrGroupWedged reports that an execution group produced no exit
// notification within the wedge deadline: its HRT goroutine died (or
// hung) without signaling, a path that previously blocked WaitExit/Join
// forever.
var ErrGroupWedged = errors.New("multiverse: execution group wedged (no exit notification within deadline)")

// spawnSpec is the pending thread-creation request a partner thread hands
// to the AeroKernel through the HVM.
type spawnSpec struct {
	fn      func(Env) uint64
	core    machine.CoreID
	super   aerokernel.Superposition
	channel *hvm.EventChannel
	stack   *machine.Stack
	syncSvc *hvm.SyncSyscallChannel
	router  *hvm.SyscallRouter
	queue   *aerokernel.QueueEntry // run-queue slot when scheduler-placed
	group   *ExecutionGroup
}

// ExecutionGroup is the pair the paper's split execution revolves around:
// one ROS partner thread and one top-level HRT thread, joined by an event
// channel (section 3.2). The partner exists to preserve join semantics and
// to provide the ROS-side context that initiates the state superposition
// and services forwarded events.
type ExecutionGroup struct {
	id uint64
	// sysv is the hosting System (node). It is atomic because a grid
	// migration re-points a live group at the target node while other
	// goroutines — joiners, the HRT thread, telemetry — read it.
	sysv    atomic.Pointer[System]
	hrt     *aerokernel.Thread
	channel *hvm.EventChannel
	rosCore machine.CoreID

	// pmu guards partner, which the watchdog replaces on a respawn.
	pmu     sync.Mutex
	partner *ros.Thread

	// exitRequested is "a bit in the appropriate partner thread's data
	// structure" flipped by the ROS-side HRT-exit signal handler.
	exitRequested atomic.Bool

	// dead marks the group torn down. The group stays registered so a
	// joiner that arrives after cleanup still finds it and synchronizes
	// its clock against the partner's final time — whether the join lands
	// before or after cleanup is host-scheduling order, and it must not
	// change the joiner's virtual clock.
	dead atomic.Bool

	// syncSvc and its dedicated polling thread exist when the system
	// runs with synchronous syscall forwarding (Options.SyncSyscalls).
	syncSvc *hvm.SyncSyscallChannel
	poller  *ros.Thread

	// router is the group's adaptive boundary-crossing fast path
	// (Options.Router).
	router *hvm.SyscallRouter

	created  chan struct{}
	exitCode atomic.Uint64

	// finished closes when the serve loop has cleaned the group up;
	// finalTime is the partner clock at that moment — what joiners
	// synchronize to. (The partner clock does not advance between cleanup
	// and thread exit, so this equals the pre-watchdog join-time read.)
	finished  chan struct{}
	finalTime atomic.Uint64

	// Recovery state (fault plane only): gen counts partner generations
	// (salted into the kill roll so a respawned partner re-rolls the
	// redelivered seqno fresh); degraded marks ROS-only fallback mode;
	// fbMu serializes the degraded direct-service entries.
	gen      atomic.Uint64
	degraded atomic.Bool
	fbMu     sync.Mutex

	// akStack is the ROS-side stack backing the HRT thread — what the
	// warm pool recycles at exit (tenancy.go). Written once before the
	// partner starts serving.
	akStack *machine.Stack

	// retired marks the group removed from the System registry (first
	// successful join wins); boundarySpent/memReserved are the tenant-
	// budget accumulators, touched only when Options.TenantBudget is set.
	retired       atomic.Bool
	boundarySpent atomic.Uint64
	memReserved   atomic.Uint64

	// Grid state (grid.go / checkpoint.go), all zero outside a grid.
	// gridHosted marks the group migratable (set at spawn when the node
	// belongs to a Grid); relocating marks a checkpoint/restore in
	// progress — the serve loop returns without cleanup and the watchdog
	// stands down; lifeMu serializes watchdog recovery against migration
	// restore; gateCalls counts boundary crossings at the syscall gate;
	// gateReq holds an armed voluntary-migration request the gate claims;
	// rehomePending defers the AK-thread re-home of a force-restored
	// group to its next boundary crossing (the first point the HRT
	// goroutine is provably quiescent after a node kill).
	gridHosted    bool
	relocating    atomic.Bool
	lifeMu        sync.Mutex
	gateCalls     atomic.Uint64
	gateReq       atomic.Pointer[migrateRequest]
	rehomePending atomic.Bool
}

// sys returns the System currently hosting the group. Outside a grid it
// never changes; a migration restore re-points it at the target node.
func (g *ExecutionGroup) sys() *System { return g.sysv.Load() }

// retire removes a joined (or failed) group from the registry — the fix
// for the unbounded growth of System.groups: exited groups used to stay
// registered forever. The first retire wins; a lookup after that is a
// double join, which fails exactly as for pthreads.
func (g *ExecutionGroup) retire() {
	if g.retired.CompareAndSwap(false, true) {
		g.sys().groups.delete(g.id)
	}
}

// partnerRef returns the current partner thread (the watchdog may have
// replaced it).
func (g *ExecutionGroup) partnerRef() *ros.Thread {
	g.pmu.Lock()
	defer g.pmu.Unlock()
	return g.partner
}

func (g *ExecutionGroup) setPartner(p *ros.Thread) {
	g.pmu.Lock()
	g.partner = p
	g.pmu.Unlock()
}

// PartnerTID is the TID of the current partner thread — the key the ROS
// kernel scopes per-thread state (timers, signal handlers) to.
func (g *ExecutionGroup) PartnerTID() int { return g.partnerRef().TID }

// SpawnGroup creates an execution group running fn as a top-level HRT
// thread, following Figure 7: create the partner thread in the ROS (2);
// the partner allocates a ROS-side stack and invokes the HVM to request
// thread creation in the HRT with the GDT/TLS superposition (3); the
// request completes when the AeroKernel thread exists. creator pays the
// partner-creation cost (it is an ordinary Linux thread).
func (s *System) SpawnGroup(creator *cycles.Clock, fn func(Env) uint64) (*ExecutionGroup, error) {
	return s.spawnGroupFrom(creator, nil, fn)
}

// spawnGroupFrom is SpawnGroup with the creating HRT thread made explicit
// (nil for spawns initiated from the ROS side): under Options.Scheduler the
// new top-level thread is placed least-loaded over the whole HRT partition
// and queued behind the chosen core's current occupant, with the creator's
// own run-queue entry recorded so descendants never wait on an ancestor
// that is blocked joining them.
func (s *System) spawnGroupFrom(creator *cycles.Clock, creatorT *aerokernel.Thread, fn func(Env) uint64) (*ExecutionGroup, error) {
	if s.AK == nil {
		return nil, fmt.Errorf("multiverse: runtime not initialized (no AeroKernel)")
	}
	if max := s.Opts.MaxGroups; max > 0 && int(s.liveGroups.Load()) >= max {
		s.density.admRejected.Inc()
		return nil, ErrAdmissionRejected
	}
	rosCore := s.Kernel.BootCore()
	hrtCore := s.Opts.HRTCores[0]
	var queue *aerokernel.QueueEntry
	sched := s.AK.Scheduler()
	if sched != nil {
		hrtCore, queue = sched.PlaceTopLevel(creator, creatorT)
	}

	g := &ExecutionGroup{
		channel:  s.HVM.NewEventChannel(hrtCore, rosCore),
		rosCore:  rosCore,
		created:  make(chan struct{}),
		finished: make(chan struct{}),
	}
	g.sysv.Store(s)
	g.id = s.nextGroupID.Add(1)
	if s.grid != nil {
		// Grid-hosted: the partner may be interrupted at a quiesce point
		// and the group restored on another node. Arming the interrupt
		// before the partner ever serves keeps the Recv path shape fixed
		// for the group's whole life.
		g.gridHosted = true
		g.channel.ArmPartnerInterrupt()
	}
	s.groups.store(g.id, g)
	s.noteGroupLive()
	if fi := s.faults; fi != nil && fi.Scoped() && fi.GroupInScope(g.id) {
		fi.AllowSite("chan", g.channel.ID())
	}

	// Optional low-latency path: a dedicated ROS thread polls a
	// post-merger synchronous channel and services the HRT thread's
	// system calls at cacheline latency (section 4.3's memory-based
	// protocol), while faults and exit events stay on the event channel.
	if s.Opts.SyncSyscalls {
		svc, serr := s.HVM.SetupSyncSyscalls(creator, 0x7f50_0000_0000+g.id*4096, rosCore, hrtCore)
		if serr != nil {
			if sched != nil {
				sched.CancelEntry(queue)
			}
			s.noteGroupDead()
			g.retire()
			return nil, serr
		}
		g.syncSvc = svc
		g.poller = s.Proc.NewThread(rosCore)
		g.poller.Start(creator, func(pt *ros.Thread) {
			for svc.Serve(pt.Clock, func(call linuxabi.Call) linuxabi.Result {
				return s.Proc.Syscall(pt, call)
			}) {
			}
		})
	}

	// Adaptive boundary router: mirror the process-invariant state into
	// the HRT, bridge the ROS kernel's mutation events to the cache
	// invalidation paths, and hand the router the hooks it needs to
	// promote a hot group to a synchronous channel mid-run.
	if s.Opts.Router {
		g.router = hvm.NewSyscallRouter(s.HVM, hrtCore, hvm.RouterLocalState{
			PID:   uint64(s.Proc.Pid()),
			Cwd:   s.Proc.Cwd(),
			Uname: ros.UnameString,
		}, s.Opts.RouterPolicy)
		g.bindRouterHooks(s, rosCore, hrtCore)
	}

	if slot := s.takeWarmSlot(); slot != nil {
		// Warm reuse (the paper's HRT-reboot fast path, per-group): the
		// parked context already paid its clone() and its async creation
		// round trip when it was first cold-booted, so a warm spawn only
		// pays the reuse switch plus the AeroKernel thread creation. The
		// deterministic reset is explicit: the stack pointer rebases
		// (Reset), the clock rebases to the claimant (CreateThread syncs
		// it), and CreateThread re-applies the GDT/FSBase superposition —
		// the slot carries no address-space deltas because group-private
		// state died with the old group's channel/ring teardown.
		pt := s.Proc.NewThread(rosCore)
		g.setPartner(pt)
		creator.Advance(s.Machine.Cost.WarmPoolReuse)
		slot.stack.Reset()
		ht := s.AK.CreateThread(creator, hrtCore, aerokernel.Superposition{
			GDT:    s.Kernel.ProcessGDT(),
			FSBase: pt.FSBase,
		}, g.channel, slot.stack)
		pt.Clock.SyncTo(creator.Now())
		if g.syncSvc != nil {
			ht.SetSyncSyscalls(g.syncSvc)
		}
		if g.router != nil {
			ht.SetRouter(g.router)
		}
		if queue != nil {
			ht.AttachQueueEntry(queue)
		}
		g.hrt = ht
		g.akStack = slot.stack
		s.allowFaultThread(g, ht)
		close(g.created)
		ht.Start(func(ht *aerokernel.Thread) uint64 {
			return g.runHRT(ht, fn)
		})
		// The recycled service context restarts without a fresh clone()
		// — the nil creator charges nothing, exactly like a watchdog
		// respawn resuming an existing group.
		pt.Start(nil, g.serve)
	} else {
		// Cold boot: Figure 7's full protocol. The stack is allocated
		// here (host-side, no virtual cost) so the group can remember it
		// for warm-pool parking at exit.
		stack := machine.NewStack(256 * 1024)
		g.akStack = stack
		partner := s.Proc.NewThread(rosCore)
		g.setPartner(partner)
		partner.Start(creator, func(pt *ros.Thread) {
			// The partner owns the ROS-side stack for the HRT thread
			// and mirrors its own GDT/TLS state into the superposition.
			spec := &spawnSpec{
				fn:   fn,
				core: hrtCore,
				super: aerokernel.Superposition{
					GDT:    s.Kernel.ProcessGDT(),
					FSBase: pt.FSBase,
				},
				channel: g.channel,
				stack:   stack,
				syncSvc: g.syncSvc,
				router:  g.router,
				queue:   queue,
				group:   g,
			}
			id := s.nextSpawnID.Add(1) - 1
			s.pendingSpawns.store(id, spec)

			ret, err := s.HVM.AsyncCall(pt.Clock, s.createThreadAddr, id)
			if err != nil || ret == ^uint64(0) {
				// The AeroKernel may never have consumed the spec (halted
				// kernel, failed injection): drop it so failed spawns do
				// not leak pending entries.
				s.pendingSpawns.delete(id)
				close(g.created)
				g.channel.Close()
				return
			}
			close(g.created)
			g.serve(pt)
		})
	}

	<-g.created
	if g.hrt == nil {
		// The HRT thread never started; release its run-queue slot so
		// threads queued behind it do not wait forever, and unregister
		// the stillborn group so failures do not grow the registry.
		if sched != nil {
			sched.CancelEntry(queue)
		}
		s.noteGroupDead()
		g.retire()
		return nil, fmt.Errorf("multiverse: HRT thread creation failed")
	}
	if s.faults != nil {
		// Watchdog: only armed runs can lose a partner thread, and only
		// after a successful spawn is there anything to watch.
		go g.watch()
	}
	return g, nil
}

// bindRouterHooks wires the group's router to a hosting System: the ROS
// kernel's mutation events feed the cache-invalidation paths, and the
// promotion/exitless hooks capture the host's Proc and HVM. Called at
// spawn and again by a migration restore — after a move the hooks must
// create pollers and channels on the target node.
func (g *ExecutionGroup) bindRouterHooks(s *System, rosCore, hrtCore machine.CoreID) {
	r := g.router
	s.Proc.AddMutationHook(func(ev ros.MutationEvent) {
		switch ev.Kind {
		case ros.MutFD:
			r.InvalidateFD(ev.FD)
		case ros.MutPath:
			r.InvalidatePath(ev.Path)
		case ros.MutBrk:
			r.InvalidateBrk()
		case ros.MutCwd:
			r.InvalidateCwd()
		}
	})
	if g.syncSvc != nil {
		// Statically configured sync forwarding: the channel is pinned
		// and the promotion policy stays out of the way.
		r.SetSyncChannel(g.syncSvc)
		return
	}
	gid := g.id
	r.SetPromotionHooks(
		func(clk *cycles.Clock) (*hvm.SyncSyscallChannel, error) {
			// Promotion: one setup hypercall plus one ROS thread
			// creation, both charged to the promoting HRT thread.
			svc, serr := s.HVM.SetupSyncSyscalls(clk, 0x7f60_0000_0000+gid*4096, rosCore, hrtCore)
			if serr != nil {
				return nil, serr
			}
			poller := s.Proc.NewThread(rosCore)
			poller.Start(clk, func(pt *ros.Thread) {
				for svc.Serve(pt.Clock, func(call linuxabi.Call) linuxabi.Result {
					return s.Proc.Syscall(pt, call)
				}) {
				}
			})
			return svc, nil
		},
		func(clk *cycles.Clock, ch *hvm.SyncSyscallChannel) {
			ch.Close() // the poller's Serve returns false and it exits
		},
	)
	if s.Opts.Exitless {
		// Tier-3 exitless rings: promotion sets up the ring pair with
		// one hypercall and dedicates a fresh ROS thread to the poll
		// loop; demotion (idle, fault pressure, or kill recovery)
		// revokes the pages with the teardown hypercall, which also
		// releases the poller.
		r.SetExitlessHooks(
			func(clk *cycles.Clock) (*hvm.ExitlessChannel, error) {
				x, xerr := s.HVM.SetupExitless(clk, 0x7f70_0000_0000+gid*4096, rosCore, hrtCore)
				if xerr != nil {
					return nil, xerr
				}
				poller := s.Proc.NewThread(rosCore)
				poller.Start(clk, func(pt *ros.Thread) {
					for x.Serve(pt.Clock, func(call linuxabi.Call) linuxabi.Result {
						return s.Proc.Syscall(pt, call)
					}) {
					}
				})
				return x, nil
			},
			func(clk *cycles.Clock, x *hvm.ExitlessChannel) {
				s.HVM.TeardownExitless(clk, x)
			},
		)
	}
}

// watch is the group's watchdog goroutine: it observes partner-thread
// death and drives recovery — respawn within the budget, graceful
// ROS-only degradation beyond it. Recovery runs under lifeMu so it
// serializes against a concurrent migration restore: a partner that died
// because a migration quiesced it is not a fault, and the watchdog
// stands down (the restore starts a fresh watchdog on the target node).
func (g *ExecutionGroup) watch() {
	fi := g.sys().faults
	recoveries := 0
	for {
		p := g.partnerRef()
		<-p.Done()
		g.lifeMu.Lock()
		if g.dead.Load() {
			g.lifeMu.Unlock()
			return // normal teardown
		}
		if g.relocating.Load() || g.partnerRef() != p {
			// A migration interrupted this partner (or already replaced
			// it while we waited for lifeMu): not a death to recover.
			g.lifeMu.Unlock()
			return
		}
		recoveries++
		if recoveries > fi.RecoveryBudget() {
			g.degrade(p)
			g.lifeMu.Unlock()
			return
		}
		g.respawn(p, recoveries)
		g.lifeMu.Unlock()
	}
}

// respawn brings up a fresh partner thread after a death: create the
// thread at the dead partner's virtual time, replay the mirrored-state
// merge (the dead partner may have died mid-protocol; the PR-3 delta path
// makes the replay cheap), requeue every in-flight envelope, and resume
// serving from the retransmit queue.
func (g *ExecutionGroup) respawn(dead *ros.Thread, n int) {
	s := g.sys()
	start := dead.Clock.Now()
	pt := s.Proc.NewThread(g.rosCore)
	pt.Clock.SyncTo(start)
	pt.Clock.Advance(s.Machine.Cost.ROSThreadCreate)
	if err := s.HVM.MergeAddressSpace(pt.Clock, s.Proc.CR3()); err != nil {
		// The merge replay is best-effort: the shared lower-level tables
		// are still intact, so serving can resume regardless.
		_ = err
	}
	replayed := g.channel.Requeue(pt.Clock.Now())
	g.gen.Add(1) // kill rolls re-key: redelivered seqnos roll fresh
	g.setPartner(pt)
	s.metrics.Counter("faults.recovery").Inc()
	s.metrics.LatencyHistogram("faults.recovery.latency").Observe(pt.Clock.Now() - start)
	// Flow-link the respawn marker to the first replayed envelope's
	// forward span, so the trace draws the arrow from the stranded
	// request to the recovery that replayed it.
	var flowIn, firstReq uint64
	if len(replayed) > 0 {
		flowIn, firstReq = replayed[0].Flow, replayed[0].ReqID
	}
	s.tracer.InstantFlow(telemetry.Track{Core: int(g.rosCore), Name: "ros:watchdog"},
		"faults", "partner-respawn", pt.Clock.Now(), flowIn, 0,
		telemetry.Attr{Key: "generation", Val: g.gen.Load()},
		telemetry.Attr{Key: "replayed", Val: uint64(len(replayed))},
		telemetry.Attr{Key: "req", Val: firstReq})
	s.recorder.Record(pt.Clock.Now(), telemetry.RecRespawn, g.id, firstReq,
		g.gen.Load(), uint64(len(replayed)))
	_ = n
	pt.Start(nil, g.serve)
}

// degrade is the recovery-budget-exhausted path: instead of wedging (or
// burning respawns forever), the group falls back to ROS-only execution —
// the paper's Incremental model run in reverse. System calls and
// forwarded faults are served by direct ROS entries under a dedicated
// service context; the event channel goes force-reliable and a final
// serve loop handles the residual control traffic (thread exit, plus any
// requeued in-flight envelopes).
func (g *ExecutionGroup) degrade(dead *ros.Thread) {
	s := g.sys()
	cost := s.Machine.Cost
	g.degraded.Store(true)
	g.channel.ForceReliable()

	svc := s.Proc.NewThread(g.rosCore)
	svc.Clock.SyncTo(dead.Clock.Now())
	g.hrt.SetFallback(&aerokernel.Fallback{
		Syscall: func(t *aerokernel.Thread, call linuxabi.Call) linuxabi.Result {
			g.fbMu.Lock()
			defer g.fbMu.Unlock()
			svc.Clock.SyncTo(t.Clock.Now())
			svc.Clock.Advance(cost.SyscallEntry)
			res := s.Proc.Syscall(svc, call)
			svc.Clock.Advance(cost.SyscallExit)
			t.Clock.SyncTo(svc.Clock.Now())
			s.metrics.Counter("faults.degraded.served").Inc()
			return res
		},
		Fault: func(t *aerokernel.Thread, addr uint64, write bool) bool {
			g.fbMu.Lock()
			defer g.fbMu.Unlock()
			svc.Clock.SyncTo(t.Clock.Now())
			errno := s.Proc.Touch(svc, addr, write)
			t.Clock.SyncTo(svc.Clock.Now())
			s.metrics.Counter("faults.degraded.served").Inc()
			return errno == linuxabi.OK
		},
	})

	// Final partner generation for the residual channel traffic. The
	// degraded flag disarms the kill roll, so this one cannot die again.
	pt := s.Proc.NewThread(g.rosCore)
	pt.Clock.SyncTo(dead.Clock.Now())
	pt.Clock.Advance(cost.ROSThreadCreate)
	g.channel.Requeue(pt.Clock.Now())
	g.gen.Add(1)
	g.setPartner(pt)
	s.metrics.Counter("faults.degraded").Inc()
	s.tracer.Instant(telemetry.Track{Core: int(g.rosCore), Name: "ros:watchdog"},
		"faults", "degraded-ros-only", pt.Clock.Now(),
		telemetry.Attr{Key: "group", Val: g.id})
	s.recorder.Record(pt.Clock.Now(), telemetry.RecDegrade, g.id, 0, g.gen.Load(), 0)
	// Budget exhaustion is a post-mortem trigger: preserve the lead-up.
	s.recorder.AutoDump(fmt.Sprintf("recovery budget exhausted on group %d (degraded to ROS-only)", g.id))
	pt.Start(nil, g.serve)
}

// runHRT is the HRT thread's body: run the application function in the
// HRT environment, then execute the exit protocol — write the exit
// notification, raise the asynchronous HRT->ROS signal (which bypasses
// the ROS kernel and flips the partner's bit), and wake the partner
// through the event channel so it can clean up and exit.
func (g *ExecutionGroup) runHRT(t *aerokernel.Thread, fn func(Env) uint64) uint64 {
	env := &hrtEnv{t: t, group: g}
	code := fn(env)
	g.exitCode.Store(code)

	g.sys().exitPending <- g.id
	if err := g.sys().HVM.RaiseROSSignal(t.Clock, int(linuxabi.SIGCHLD)); err == nil {
		// Signal delivered; the partner's bit is set.
	}
	if _, err := g.channel.Forward(t.Clock, &hvm.Envelope{Kind: hvm.EvThreadExit, ExitCode: code}); err != nil {
		// Channel already down; nothing to wake.
	}
	return code
}

// serve is the partner thread's event loop: converge on each event the
// HRT side raises — forwarded system calls are executed against the ROS
// kernel, forwarded page faults are replicated so the ROS fault path runs
// — until the HRT thread exits.
func (g *ExecutionGroup) serve(pt *ros.Thread) {
	fi := g.sys().faults
	for {
		env := g.channel.Recv(pt.Clock)
		if env == nil {
			if g.relocating.Load() {
				// Migration interrupt, not channel close: return without
				// cleanup. The restored partner resumes serving on the
				// target node from the requeued window.
				return
			}
			break
		}
		if fi != nil && !g.degraded.Load() &&
			fi.Roll(faults.PartnerKill, g.channel.ID(), env.Seq, int(g.gen.Load()), pt.Clock.Now()) {
			// Injected partner death mid-service: return without cleanup.
			// The thread finishes, the watchdog notices, and the envelope —
			// still in the channel's in-flight set — is requeued for the
			// next generation.
			return
		}
		switch env.Kind {
		case hvm.EvSyscall:
			res := g.sys().Proc.Syscall(pt, env.Call)
			g.channel.Complete(pt.Clock, env, hvm.Reply{Res: res})
		case hvm.EvPageFault:
			// Replicate the access: the same exception occurs on the
			// ROS core and the ROS handles it as it would normally.
			errno := g.sys().Proc.Touch(pt, env.FaultAddr, env.FaultWrite)
			g.channel.Complete(pt.Clock, env, hvm.Reply{FaultOK: errno == linuxabi.OK})
		case hvm.EvThreadExit:
			g.channel.Complete(pt.Clock, env, hvm.Reply{})
			if g.exitRequested.Load() {
				g.cleanup(pt)
				return
			}
		default:
			g.channel.Complete(pt.Clock, env, hvm.Reply{Res: linuxabi.Result{Err: linuxabi.ENOSYS}})
		}
	}
	g.cleanup(pt)
}

// cleanup tears the group down on the partner side.
func (g *ExecutionGroup) cleanup(pt *ros.Thread) {
	if g.router != nil {
		g.router.Shutdown() // closes a promoted channel; its poller exits
	}
	if g.syncSvc != nil {
		g.syncSvc.Close() // the polling thread's Serve returns false
	}
	g.channel.Close()
	g.sys().noteGroupDead()
	// Park the context for warm reuse before finished closes, so a
	// spawn sequenced after this group's join deterministically sees the
	// slot. Parking charges no virtual cycles (tenancy.go).
	g.parkWarmSlot()
	g.finalTime.Store(uint64(pt.Clock.Now()))
	g.dead.Store(true) // dead before finished: the watchdog checks it on wake
	close(g.finished)
}

// awaitDone blocks until the group has finished cleanly (cleanup ran AND
// the HRT goroutine exited) or the wedge deadline expires. The deadline
// is host real time on purpose: a wedged group's virtual clocks stop
// advancing, so only wall time can flush the condition out.
func (g *ExecutionGroup) awaitDone() error {
	d := g.sys().Opts.WedgeTimeout
	if d <= 0 {
		<-g.finished
		<-g.hrt.Done()
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-g.finished:
	case <-timer.C:
		return g.wedged()
	}
	select {
	case <-g.hrt.Done():
	case <-timer.C:
		return g.wedged()
	}
	return nil
}

// wedged records the wedge in the flight recorder and dumps it: a group
// that never signals exit is exactly the post-mortem the ring exists for.
func (g *ExecutionGroup) wedged() error {
	// The group's virtual clocks are stalled; stamp with the last time
	// the partner side reached, which is 0 if cleanup never ran.
	g.sys().recorder.Record(cycles.Cycles(g.finalTime.Load()), telemetry.RecWedge, g.id, 0, 0, 0)
	g.sys().recorder.AutoDump(fmt.Sprintf("group %d wedged: no exit notification within deadline", g.id))
	return ErrGroupWedged
}

// WaitExit blocks until the group has finished — cleanup ran on the
// partner side (the protocol guarantees that happens only after the HRT
// thread wrote its exit notification) and the HRT goroutine itself exited
// (it may still be closing its half of the final round trip when the
// partner unblocks) — then synchronizes the waiter's clock to the
// partner's final time and returns the exit code. If the group wedges —
// no exit notification within Options.WedgeTimeout of host time — it
// returns ErrGroupWedged instead of blocking forever.
func (g *ExecutionGroup) WaitExit(clk *cycles.Clock) (uint64, error) {
	if err := g.awaitDone(); err != nil {
		return 0, err
	}
	g.retire()
	clk.SyncTo(cycles.Cycles(g.finalTime.Load()))
	return g.exitCode.Load(), nil
}

// Join joins the partner thread from a ROS thread — the main thread's
// join() path in the Incremental model. It charges the same costs as a
// direct ros.Thread.Join (a voluntary context switch plus the join
// syscall) but waits group-wise, so a watchdog-respawned partner does not
// strand the joiner on a dead thread handle, and a wedged group surfaces
// ErrGroupWedged instead of hanging.
func (g *ExecutionGroup) Join(joiner *ros.Thread) (uint64, error) {
	joiner.Proc.CountVoluntaryCS()
	joiner.Clock.Advance(g.sys().Machine.Cost.ROSThreadJoin)
	if err := g.awaitDone(); err != nil {
		return 0, err
	}
	g.retire()
	joiner.Clock.SyncTo(cycles.Cycles(g.finalTime.Load()))
	return g.exitCode.Load(), nil
}

// Channel exposes the group's event channel (stats).
func (g *ExecutionGroup) Channel() *hvm.EventChannel { return g.channel }

// HRTThread exposes the group's HRT thread.
func (g *ExecutionGroup) HRTThread() *aerokernel.Thread { return g.hrt }

// Partner exposes the group's current ROS partner thread (the watchdog
// may have replaced the original).
func (g *ExecutionGroup) Partner() *ros.Thread { return g.partnerRef() }

// Router exposes the group's boundary router (nil unless Options.Router).
func (g *ExecutionGroup) Router() *hvm.SyscallRouter { return g.router }

// ---- The HRT execution environment -------------------------------------

// hrtEnv is the Env of code running inside the HRT: system calls go
// through the Nautilus stub and the event channel; memory accesses run in
// ring 0 against the merged address space; pthreads are interposed by the
// default overrides.
type hrtEnv struct {
	t     *aerokernel.Thread
	group *ExecutionGroup
}

// sys resolves the hosting System through the group, so a migrated
// group's environment follows it to the target node.
func (e *hrtEnv) sys() *System { return e.group.sys() }

func (e *hrtEnv) World() World          { return WorldHRT }
func (e *hrtEnv) Clock() *cycles.Clock  { return e.t.Clock }
func (e *hrtEnv) Process() *ros.Process { return e.sys().Proc }

// TelemetryScope exposes the run's instruments on the HRT thread's track;
// layers above (the scheme GC) discover it by interface assertion.
func (e *hrtEnv) TelemetryScope() telemetry.Scope {
	return telemetry.Scope{
		Tracer:  e.sys().tracer,
		Metrics: e.sys().metrics,
		Track:   telemetry.Track{Core: int(e.t.Core), Name: "hrt"},
	}
}

func (e *hrtEnv) Compute(c cycles.Cycles) {
	e.t.Clock.Advance(c)
	e.sys().Proc.ChargeUser(c)
}

func (e *hrtEnv) Syscall(call linuxabi.Call) linuxabi.Result {
	if e.group.gridHosted {
		// The quiesce-point gate: every boundary crossing of a
		// grid-hosted group passes here at zero virtual cost, and an
		// armed voluntary migration fires synchronously on this (the
		// HRT) goroutine — which is exactly what makes the group
		// quiescent: no forwarded call is in flight and the serve loop
		// is parked in Recv.
		e.group.syscallGate(e.t)
	}
	if b := e.sys().Opts.TenantBudget; b != nil {
		// Admission at the boundary: an over-budget tenant is turned away
		// before the call crosses, at zero virtual cost, with a
		// deterministic errno (tenancy.go).
		if rej, rejected := e.group.admitSyscall(b, call.Args[1], call.Num == linuxabi.SysMmap); rejected {
			return rej
		}
	}
	start := e.t.Clock.Now()
	res := e.t.Syscall(call)
	lat := e.t.Clock.Now() - start
	if e.sys().Opts.TenantBudget != nil {
		e.group.chargeBudget(lat)
	}
	e.sys().recordHotspot(call.Num, false, lat)
	// Per-group, per-syscall-kind SLO distribution. Wall-only cost: the
	// histogram observes the already-computed virtual latency and never
	// advances a clock.
	e.sys().metrics.LatencyHistogram(telemetry.SLOPrefix + "g" +
		strconv.FormatUint(e.group.id, 10) + "." + call.Num.String()).Observe(lat)
	return res
}

func (e *hrtEnv) VDSO(num linuxabi.Sysno) (uint64, linuxabi.Errno) {
	// vdso functions execute in the merged address space on the HRT
	// core — a state superposition, no forwarding.
	return e.sys().Proc.VDSOAt(e.t.Clock, e.t.Core, num)
}

func (e *hrtEnv) Touch(addr uint64, write bool) error {
	before := e.sys().AK.ForwardedFaults()
	start := e.t.Clock.Now()
	err := e.t.Touch(addr, write)
	if e.sys().AK.ForwardedFaults() > before {
		e.sys().recordHotspot(0, true, e.t.Clock.Now()-start)
	}
	return err
}

func (e *hrtEnv) CheckTimer() bool {
	// The timer is keyed by the ROS thread that serviced the forwarded
	// setitimer — this group's partner.
	return e.sys().Proc.CheckTimerFor(e.group.PartnerTID(), e.t.Clock)
}

func (e *hrtEnv) RegisterSignalCode(addr uint64, fn func(*ros.SignalContext)) {
	// Scope the registration to this group's partner — the same ROS thread
	// that services the group's rt_sigaction — so concurrent engines using
	// the same fixed handler addresses cannot clobber each other.
	e.sys().Proc.RegisterHandlerFor(e.group.PartnerTID(), addr, fn)
}

// PthreadCreate goes through the generated wrapper for pthread_create,
// which resolves and calls nk_thread_create (Figure 5's flow).
func (e *hrtEnv) PthreadCreate(fn func(Env)) (PthreadJoin, error) {
	w, ok := e.sys().Overrides.Lookup("pthread_create")
	if !ok {
		return nil, fmt.Errorf("multiverse: pthread_create override missing")
	}
	fnID := e.sys().registerFn(func(env Env) uint64 { fn(env); return 0 })
	gid, err := w.Invoke(e.t, fnID)
	if err != nil {
		return nil, err
	}
	if gid == ^uint64(0) {
		return nil, fmt.Errorf("multiverse: nk_thread_create failed")
	}
	self := e.t
	return func() uint64 {
		jw, okj := e.sys().Overrides.Lookup("pthread_join")
		if !okj {
			return ^uint64(0)
		}
		ret, jerr := jw.Invoke(self, gid)
		if jerr != nil {
			return ^uint64(0)
		}
		return ret
	}, nil
}

// AKCall invokes an AeroKernel function directly by symbol — what
// accelerator-model code does (Figure 4's aerokernel_func()).
func (e *hrtEnv) AKCall(symbol string, args ...uint64) (uint64, error) {
	addr, ok := e.sys().AK.LookupSymbol(e.t.Clock, symbol)
	if !ok {
		return 0, fmt.Errorf("multiverse: AeroKernel symbol %q not found", symbol)
	}
	return e.sys().AK.CallByAddr(e.t, addr, args...)
}

// RegisterAKMemFaultHandler installs the runtime's handler for protection
// faults in the AeroKernel-managed memory region (the in-kernel GC
// write-barrier path).
func (e *hrtEnv) RegisterAKMemFaultHandler(h func(addr uint64, write bool) bool) {
	e.sys().AK.SetMemFaultHandler(aerokernel.MemFaultHandler(h))
}

// RegisterUserFaultHandler installs the runtime's handler for protection
// faults on merged lower-half user pages — the fault fast lane. It
// installs nothing and returns false unless the incremental merger is
// enabled; callers then keep the forwarded fault path.
func (e *hrtEnv) RegisterUserFaultHandler(h func(addr uint64, write bool) bool) bool {
	if !e.sys().Opts.Merger {
		return false
	}
	e.sys().AK.SetUserFaultHandler(aerokernel.MemFaultHandler(h))
	return true
}

// UserProtect rewrites the protection of merged user pages by direct PTE
// edit on the HRT core, reporting whether the edit succeeded. On false
// the caller must fall back to the forwarded mprotect path.
func (e *hrtEnv) UserProtect(addr, length uint64, writable bool) bool {
	return e.sys().AK.ProtectUser(e.t.Clock, e.t.Core, addr, length, writable) == nil
}

// OverrideInvoke calls a legacy function through its override wrapper.
func (e *hrtEnv) OverrideInvoke(legacy string, args ...uint64) (uint64, error) {
	w, ok := e.sys().Overrides.Lookup(legacy)
	if !ok {
		return 0, fmt.Errorf("multiverse: no override for %q", legacy)
	}
	return w.Invoke(e.t, args...)
}

// HRTThreadForBench exposes the backing AeroKernel thread; the benchmark
// harness measures primitives against it directly.
func (e *hrtEnv) HRTThreadForBench() *aerokernel.Thread { return e.t }

// Scheduler exposes the AeroKernel's run-queue scheduler; nil when
// Options.Scheduler is off.
func (e *hrtEnv) Scheduler() *aerokernel.Scheduler {
	if e.sys().AK == nil {
		return nil
	}
	return e.sys().AK.Scheduler()
}

// SpawnWorkerEnv creates a persistent scheduler-placed worker context: a
// nested AeroKernel thread (placed least-loaded over the HRT partition)
// wrapped in an Env that charges its clock. The worker never runs a
// goroutine of its own — legion's work-stealing executor drives it
// deterministically — so the release function just retires the thread and
// returns its placement load.
func (e *hrtEnv) SpawnWorkerEnv() (Env, machine.CoreID, func(), error) {
	if e.Scheduler() == nil {
		return nil, 0, nil, fmt.Errorf("multiverse: scheduler not enabled")
	}
	nt := e.t.CreateNested()
	wenv := &hrtEnv{t: nt, group: e.group}
	return wenv, nt.Core, nt.Release, nil
}

// SchedulerHost is the surface legion's work-stealing executor discovers by
// type assertion on an HRT Env. Scheduler returns nil when the option is
// off, in which case legion keeps its execution-group worker pool.
type SchedulerHost interface {
	Scheduler() *aerokernel.Scheduler
	SpawnWorkerEnv() (Env, machine.CoreID, func(), error)
}

var _ SchedulerHost = (*hrtEnv)(nil)

// HRTExtras is the additional surface hybrid (accelerator-model) code can
// reach: direct AeroKernel calls and override invocation. Obtain it by
// type-asserting an Env whose World is WorldHRT.
type HRTExtras interface {
	AKCall(symbol string, args ...uint64) (uint64, error)
	OverrideInvoke(legacy string, args ...uint64) (uint64, error)
}

var _ HRTExtras = (*hrtEnv)(nil)

// ---- Usage-model entry points ------------------------------------------

// RunMain executes app under the Incremental model: "Multiverse will
// create a new thread in the HRT corresponding to the program's main()
// routine", and the ROS main thread joins the partner. Returns the app's
// exit code.
func (s *System) RunMain(app func(Env) uint64) (uint64, error) {
	if !s.Opts.Hybrid {
		// Baseline worlds just run main() natively.
		env := s.NativeEnv()
		code := app(env)
		s.ExitProcess(code)
		return code, nil
	}
	g, err := s.SpawnGroup(s.Main.Clock, app)
	if err != nil {
		return 0, err
	}
	code, err := g.Join(s.Main)
	if err != nil {
		return 0, err
	}
	s.ExitProcess(code)
	return code, nil
}

// HRTInvokeFunc is the Accelerator model's hrt_invoke_func(): run routine
// in a new HRT thread and wait for it (Figure 4).
func (s *System) HRTInvokeFunc(routine func(Env) uint64) (uint64, error) {
	g, err := s.SpawnGroup(s.Main.Clock, routine)
	if err != nil {
		return 0, err
	}
	return g.Join(s.Main)
}
