package faults

import (
	"testing"

	"multiverse/internal/telemetry"
)

// Two injectors built from the same plan must agree on every roll — the
// decision is a pure function of (seed, kind, id, seq, attempt).
func TestRollDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Rate: 0.3, KillRate: 0.1, PanicRate: 0.05}
	a, err := New(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for kind := DropNotify; kind < numKinds; kind++ {
		for id := uint64(0); id < 4; id++ {
			for seq := uint64(1); seq < 64; seq++ {
				for attempt := 0; attempt < 3; attempt++ {
					ra := a.Roll(kind, id, seq, attempt, 0)
					rb := b.Roll(kind, id, seq, attempt, 0)
					if ra != rb {
						t.Fatalf("instances disagree at kind=%v id=%d seq=%d attempt=%d", kind, id, seq, attempt)
					}
					if ra {
						hits++
					}
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("rate 0.3 plan never injected anything")
	}
}

// Different seeds must produce different injection patterns (with
// overwhelming probability at these sample sizes).
func TestSeedChangesPattern(t *testing.T) {
	a, _ := New(Plan{Seed: 1, Rate: 0.5}, nil)
	b, _ := New(Plan{Seed: 2, Rate: 0.5}, nil)
	same := true
	for seq := uint64(1); seq < 256; seq++ {
		if a.Roll(DropNotify, 0, seq, 0, 0) != b.Roll(DropNotify, 0, seq, 0, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 255-roll patterns")
	}
}

// Per-kind Rates override the class rate.
func TestPerKindRates(t *testing.T) {
	inj, _ := New(Plan{
		Seed:  7,
		Rate:  0, // class transports off...
		Rates: map[Kind]float64{CorruptFrame: 1}, // ...but corruption always on
	}, nil)
	for seq := uint64(1); seq < 16; seq++ {
		if inj.Roll(DropNotify, 0, seq, 0, 0) {
			t.Fatal("DropNotify fired despite rate 0")
		}
		if !inj.Roll(CorruptFrame, 0, seq, 0, 0) {
			t.Fatal("CorruptFrame missed despite rate 1")
		}
	}
}

// Scenario entries fire at most once, only after their virtual time, and
// only at a matching target.
func TestSpecFireOnce(t *testing.T) {
	m := telemetry.NewRegistry()
	inj, err := New(Plan{
		Seed: 1,
		Spec: []Injection{
			{VTime: 100, Kind: "partner-kill", Target: "chan:3"},
			{VTime: 200, Kind: "drop-notify"},
		},
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Roll(PartnerKill, 3, 1, 0, 50) {
		t.Fatal("fired before vtime")
	}
	if inj.Roll(PartnerKill, 9, 1, 0, 150) {
		t.Fatal("fired at wrong target")
	}
	if !inj.Roll(PartnerKill, 3, 1, 0, 150) {
		t.Fatal("did not fire at matching site past vtime")
	}
	if inj.Roll(PartnerKill, 3, 2, 0, 300) {
		t.Fatal("fired twice")
	}
	if !inj.Roll(DropNotify, 0, 5, 0, 250) {
		t.Fatal("untargeted entry did not fire")
	}
	if got := m.Counter("faults.injected.partner-kill").Value(); got != 1 {
		t.Fatalf("partner-kill counter = %d, want 1", got)
	}
	if got := m.Counter("faults.injected.drop-notify").Value(); got != 1 {
		t.Fatalf("drop-notify counter = %d, want 1", got)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := New(Plan{Spec: []Injection{{Kind: "meteor-strike"}}}, nil); err == nil {
		t.Fatal("unknown spec kind accepted")
	}
}

func TestParseSeedRate(t *testing.T) {
	p, err := ParseSeedRate("42:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Rate != 0.25 {
		t.Fatalf("got %+v", p)
	}
	for _, bad := range []string{"", "x", "1:", "1:2.0", "1:-0.1"} {
		if _, err := ParseSeedRate(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(`[{"vtime": 10, "kind": "corrupt-frame", "target": "chan:1"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 1 || spec[0].Kind != "corrupt-frame" || spec[0].VTime != 10 {
		t.Fatalf("got %+v", spec)
	}
	if _, err := ParseSpec([]byte(`[{"kind": "nope"}]`)); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// Nil injector is fully inert — the disabled fixed path calls these
// unconditionally.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if inj.Roll(DropNotify, 0, 1, 0, 0) {
		t.Fatal("nil injector rolled true")
	}
	if inj.RetryTimeout() != 0 || inj.Delay() != 0 || inj.Stall() != 0 || inj.RecoveryBudget() != 0 {
		t.Fatal("nil injector leaked plan values")
	}
	if inj.MaxAttempts() != 1 {
		t.Fatal("nil injector MaxAttempts != 1")
	}
}

func TestChecksumDetectsChange(t *testing.T) {
	a := Checksum(1, 2, 3)
	b := Checksum(1, 2, 4)
	if a == b {
		t.Fatal("checksum collision on adjacent frames")
	}
	if a == 0 || b == 0 {
		t.Fatal("checksum produced the zero sentinel")
	}
	if Checksum(1, 2, 3) != a {
		t.Fatal("checksum not stable")
	}
	if HashString("brk") == HashString("mmap") {
		t.Fatal("string hash collision")
	}
}
