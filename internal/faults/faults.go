// Package faults is the deterministic fault-injection plane of the
// Multiverse simulation. The paper's split-execution protocol assumes the
// VMM, event channels, and partner threads never misbehave; this package
// lets a run arm the misbehavior on purpose — dropped, duplicated, or
// corrupted boundary notifications, delayed injection windows, stalled or
// killed partner threads, and HRT panics mid-syscall — so the recovery
// machinery in hvm/core can be exercised and measured.
//
// Determinism is the governing constraint, exactly as for the rest of the
// repository: every injection decision is a pure hash of
// (seed, kind, site id, sequence number, attempt) — never of goroutine
// interleaving, shared PRNG state, or wall-clock time — so a faulted run
// replays bit for bit under the same seed, and two injector instances
// built from the same Plan agree everywhere. A nil *Injector is the
// disabled default; every method is nil-safe, so the fixed paths can call
// unconditionally and stay byte-identical when no plan is armed.
package faults

import (
	"encoding/json"
	"fmt"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/telemetry"
)

// Kind classifies one injectable fault.
type Kind int

const (
	// DropNotify loses an HRT->ROS boundary notification in the VMM: the
	// frame is written but the partner is never signaled. The sender's
	// virtual-time poll deadline expires and it retransmits.
	DropNotify Kind = iota + 1
	// DupNotify delivers the same notification twice; the receiver must
	// coalesce by sequence number or double-apply the request.
	DupNotify
	// DelayInject widens the ROS user-mode injection window the VMM waits
	// for, delaying the request's arrival by Plan.DelayCycles.
	DelayInject
	// CorruptFrame flips bits in the shared-memory request frame; the
	// receiver detects the damage through the per-frame checksum and
	// discards it, forcing a retransmission.
	CorruptFrame
	// PartnerStall freezes the ROS partner thread for Plan.StallCycles
	// before it services a received request.
	PartnerStall
	// PartnerKill kills the ROS partner thread after it receives a request
	// but before it applies it; the group watchdog must respawn the
	// partner and redeliver the in-flight work.
	PartnerKill
	// HRTPanic panics the HRT thread mid-syscall; the AeroKernel contains
	// the panic on the IST stack and the syscall retries from the stub.
	HRTPanic

	numKinds
)

var kindNames = map[Kind]string{
	DropNotify:   "drop-notify",
	DupNotify:    "dup-notify",
	DelayInject:  "delay-inject",
	CorruptFrame: "corrupt-frame",
	PartnerStall: "partner-stall",
	PartnerKill:  "partner-kill",
	HRTPanic:     "hrt-panic",
}

// String names the kind the way counters and scenario files spell it.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// KindFromString parses a scenario-file kind name.
func KindFromString(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q", s)
}

// Injection is one scripted fault in a scenario file: at or after virtual
// time VTime, fire one fault of Kind at a matching site. Entries fire at
// most once, in file order. Target narrows the site: "" matches any,
// "chan:<id>" one channel, "thread:<id>" one HRT thread.
type Injection struct {
	VTime  uint64 `json:"vtime"`
	Kind   string `json:"kind"`
	Target string `json:"target,omitempty"`
}

// Plan is the armed configuration. The zero value with a Seed injects
// nothing (all rates zero, no scenario) but still runs the checksum and
// sequencing machinery — the "plumbed but clean" configuration the
// overhead benchmark measures.
type Plan struct {
	// Seed keys the injection hash; two runs with the same Seed (and the
	// same program) inject identically.
	Seed uint64 `json:"seed"`
	// Rate is the per-roll probability of the transport faults
	// (drop/dup/delay/corrupt/stall) unless overridden per kind.
	Rate float64 `json:"rate,omitempty"`
	// KillRate is the per-serviced-envelope probability of PartnerKill.
	KillRate float64 `json:"kill_rate,omitempty"`
	// PanicRate is the per-syscall probability of HRTPanic.
	PanicRate float64 `json:"panic_rate,omitempty"`
	// Rates overrides the probability of individual kinds.
	Rates map[Kind]float64 `json:"-"`

	// DelayCycles is the extra injection-window latency of DelayInject.
	DelayCycles cycles.Cycles `json:"delay_cycles,omitempty"`
	// StallCycles is the partner freeze of PartnerStall.
	StallCycles cycles.Cycles `json:"stall_cycles,omitempty"`
	// RetryTimeout is the initial virtual-time poll deadline after which
	// an unanswered boundary notification retransmits; it doubles per
	// attempt (exponential backoff).
	RetryTimeout cycles.Cycles `json:"retry_timeout,omitempty"`
	// MaxAttempts bounds retransmission; the final attempt is forced
	// clean so a request always completes.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RecoveryBudget is how many partner respawns a group performs before
	// degrading to ROS-only execution.
	RecoveryBudget int `json:"recovery_budget,omitempty"`
	// RetransmitBound caps the per-channel retransmission queue (pending
	// duplicate redeliveries + unacknowledged in-flight work). Past the
	// bound, further duplicate deliveries are rejected and the channel
	// degrades to reliable transport — the graceful path — instead of
	// growing without limit against a stalled partner.
	RetransmitBound int `json:"retransmit_bound,omitempty"`
	// NodeKills is how many whole-node failures a grid chaos run injects.
	// Victim selection is the same splitmix64 determinism as every other
	// roll: NodeKillVictim(Seed, event, nodes).
	NodeKills int `json:"node_kills,omitempty"`

	// Spec is the scripted scenario (ordered, fire-once injections); it
	// composes with the rate-based plan.
	Spec []Injection `json:"spec,omitempty"`

	// Groups scopes the whole plan to the listed execution-group IDs (the
	// multi-tenant isolation contract): when non-empty, rolls — rate-based
	// AND scripted — only fire at sites core has allowlisted for an
	// in-scope group (its event channel, its HRT threads). Every other
	// tenant runs byte-identical to an unfaulted run. Empty means
	// system-wide, the pre-tenancy behavior.
	Groups []uint64 `json:"groups,omitempty"`
}

func (p *Plan) fill() {
	if p.DelayCycles <= 0 {
		p.DelayCycles = 8_000
	}
	if p.StallCycles <= 0 {
		p.StallCycles = 20_000
	}
	if p.RetryTimeout <= 0 {
		// ~2.4x the asynchronous round trip: long enough that a serviced
		// request never falsely times out, short enough that recovery
		// latency stays visible at benchmark scale.
		p.RetryTimeout = 60_000
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.RecoveryBudget <= 0 {
		p.RecoveryBudget = 3
	}
	if p.RetransmitBound <= 0 {
		p.RetransmitBound = 256
	}
}

// rateOf returns the armed probability of a kind.
func (p *Plan) rateOf(k Kind) float64 {
	if r, ok := p.Rates[k]; ok {
		return r
	}
	switch k {
	case PartnerKill:
		return p.KillRate
	case HRTPanic:
		return p.PanicRate
	default:
		return p.Rate
	}
}

// specEntry is one compiled scenario injection.
type specEntry struct {
	vtime  cycles.Cycles
	kind   Kind
	target string
	fired  bool
}

// Injector draws injection decisions for one run. All state is
// per-instance (no package globals), so concurrent runs and repeated
// tests cannot leak seed state into each other.
type Injector struct {
	plan     Plan
	metrics  *telemetry.Registry
	recorder *telemetry.Recorder

	// scoped is set when the plan names Groups; allowed is then the site
	// allowlist core populates as in-scope groups register their channels
	// and threads. Sites not on the list never roll.
	scoped bool

	mu      sync.Mutex
	spec    []specEntry
	allowed map[faultSite]bool
}

// faultSite identifies one injection site for scope filtering.
type faultSite struct {
	class string // "chan" or "thread", as in siteClass
	id    uint64
}

// SetRecorder attaches the flight recorder; every fired roll is then
// recorded as a fault-roll event (site, kind, seq), which is what lets
// a post-mortem dump explain *why* a retransmission or respawn
// happened, not just that it did.
func (i *Injector) SetRecorder(rec *telemetry.Recorder) {
	if i != nil {
		i.recorder = rec
	}
}

// New compiles a plan. metrics receives the faults.injected.* counters
// (nil is tolerated: decisions still fire, uncounted).
func New(plan Plan, m *telemetry.Registry) (*Injector, error) {
	plan.fill()
	inj := &Injector{plan: plan, metrics: m, scoped: len(plan.Groups) > 0}
	for _, s := range plan.Spec {
		k, err := KindFromString(s.Kind)
		if err != nil {
			return nil, err
		}
		inj.spec = append(inj.spec, specEntry{
			vtime:  cycles.Cycles(s.VTime),
			kind:   k,
			target: s.Target,
		})
	}
	return inj, nil
}

// siteClass names the site type a kind rolls at, for Target matching.
func siteClass(k Kind) string {
	if k == HRTPanic {
		return "thread"
	}
	return "chan"
}

// Roll decides whether a fault of kind k fires at a site. id identifies
// the site (channel id, or thread id for HRTPanic), seq the request, and
// attempt the retransmission attempt (or delivery generation), so the
// decision depends only on program structure — never on host scheduling.
func (i *Injector) Roll(k Kind, id, seq uint64, attempt int, now cycles.Cycles) bool {
	if i == nil {
		return false
	}
	if i.scoped && !i.siteAllowed(siteClass(k), id) {
		// Scoped plan, out-of-scope site: absolute isolation — neither
		// rates nor scripted entries may touch another tenant.
		return false
	}
	if i.specFire(k, id, now) {
		i.count(k)
		i.recorder.Record(now, telemetry.RecFaultRoll, id, 0, uint64(k), seq)
		return true
	}
	r := i.plan.rateOf(k)
	if r <= 0 {
		return false
	}
	if chance(i.plan.Seed, k, id, seq, attempt) >= r {
		return false
	}
	i.count(k)
	i.recorder.Record(now, telemetry.RecFaultRoll, id, 0, uint64(k), seq)
	return true
}

// specFire consumes the first matching un-fired scenario entry whose
// virtual time has passed.
func (i *Injector) specFire(k Kind, id uint64, now cycles.Cycles) bool {
	if len(i.spec) == 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for idx := range i.spec {
		e := &i.spec[idx]
		if e.fired || e.kind != k || now < e.vtime {
			continue
		}
		if e.target != "" && e.target != fmt.Sprintf("%s:%d", siteClass(k), id) {
			continue
		}
		e.fired = true
		return true
	}
	return false
}

// Scoped reports whether the plan is restricted to named groups.
func (i *Injector) Scoped() bool { return i != nil && i.scoped }

// GroupInScope reports whether gid is one of the plan's named groups.
func (i *Injector) GroupInScope(gid uint64) bool {
	if i == nil {
		return false
	}
	for _, g := range i.plan.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// AllowSite allowlists one injection site ("chan" or "thread" class plus
// its id) for a scoped plan. core calls this as in-scope groups register
// their channels and HRT threads; it is a no-op on unscoped plans.
func (i *Injector) AllowSite(class string, id uint64) {
	if i == nil || !i.scoped {
		return
	}
	i.mu.Lock()
	if i.allowed == nil {
		i.allowed = make(map[faultSite]bool)
	}
	i.allowed[faultSite{class, id}] = true
	i.mu.Unlock()
}

func (i *Injector) siteAllowed(class string, id uint64) bool {
	i.mu.Lock()
	ok := i.allowed[faultSite{class, id}]
	i.mu.Unlock()
	return ok
}

func (i *Injector) count(k Kind) {
	if i.metrics != nil {
		i.metrics.Counter("faults.injected." + k.String()).Inc()
	}
}

// Delay is the extra arrival latency when DelayInject fires (already
// decided by Roll).
func (i *Injector) Delay() cycles.Cycles {
	if i == nil {
		return 0
	}
	return i.plan.DelayCycles
}

// Stall is the partner freeze when PartnerStall fires.
func (i *Injector) Stall() cycles.Cycles {
	if i == nil {
		return 0
	}
	return i.plan.StallCycles
}

// RetryTimeout is the initial retransmission deadline.
func (i *Injector) RetryTimeout() cycles.Cycles {
	if i == nil {
		return 0
	}
	return i.plan.RetryTimeout
}

// MaxAttempts bounds retransmission per request.
func (i *Injector) MaxAttempts() int {
	if i == nil {
		return 1
	}
	return i.plan.MaxAttempts
}

// RecoveryBudget is the respawn allowance before a group degrades.
func (i *Injector) RecoveryBudget() int {
	if i == nil {
		return 0
	}
	return i.plan.RecoveryBudget
}

// RetransmitBound is the per-channel retransmission-queue cap (0 when
// no plan is armed: the clean path never queues retransmissions).
func (i *Injector) RetransmitBound() int {
	if i == nil {
		return 0
	}
	return i.plan.RetransmitBound
}

// NodeKills is how many node-kill events a grid chaos run injects.
func (i *Injector) NodeKills() int {
	if i == nil {
		return 0
	}
	return i.plan.NodeKills
}

// Seed exposes the plan seed for grid-level decisions (node-kill victim
// selection) that must agree with the channel/thread-level rolls.
func (i *Injector) Seed() uint64 {
	if i == nil {
		return 0
	}
	return i.plan.Seed
}

// NodeKillVictim deterministically picks the victim node of node-kill
// event number `event` (0-based) on a grid of `nodes` nodes. It is a
// pure hash of (seed, event) — host scheduling can never change which
// node dies.
func NodeKillVictim(seed uint64, event, nodes int) int {
	if nodes <= 0 {
		return 0
	}
	h := splitmix64(seed ^ 0x6e6f_6465_6b69_6c6c) // "nodekill"
	h = fold(h, uint64(event))
	return int(h % uint64(nodes))
}

// ---- Deterministic hashing ----------------------------------------------

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-distributed bijection on uint64.
func splitmix64(x uint64) uint64 {
	x += 0x9e37_79b9_7f4a_7c15
	x = (x ^ (x >> 30)) * 0xbf58_476d_1ce4_e5b9
	x = (x ^ (x >> 27)) * 0x94d0_49bb_1331_11eb
	return x ^ (x >> 31)
}

func fold(acc, v uint64) uint64 {
	return splitmix64(acc ^ (v + 0x9e37_79b9_7f4a_7c15))
}

// chance maps an injection site to a uniform [0,1) value.
func chance(seed uint64, k Kind, id, seq uint64, attempt int) float64 {
	h := splitmix64(seed)
	h = fold(h, uint64(k))
	h = fold(h, id)
	h = fold(h, seq)
	h = fold(h, uint64(attempt))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Checksum folds the identifying words of a request frame into the
// per-frame integrity word a receiver verifies before servicing. It is a
// content hash, not a CRC: the simulation only needs corruption to be
// detectable and deterministic.
func Checksum(words ...uint64) uint64 {
	h := splitmix64(0x6d75_6c74_6976_7273) // "multivrs"
	for _, w := range words {
		h = fold(h, w)
	}
	if h == 0 {
		h = 1 // 0 is the "no checksum" sentinel on the wire
	}
	return h
}

// HashString folds a string into a word for inclusion in a Checksum.
func HashString(s string) uint64 {
	h := splitmix64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = fold(h, uint64(s[i]))
	}
	return h
}

// ---- Parsing -------------------------------------------------------------

// ParseSeedRate parses the mvrun -faults argument "<seed>:<rate>", e.g.
// "42:0.01".
func ParseSeedRate(s string) (Plan, error) {
	var seed uint64
	var rate float64
	if _, err := fmt.Sscanf(s, "%d:%g", &seed, &rate); err != nil {
		return Plan{}, fmt.Errorf("faults: want <seed>:<rate>, got %q: %v", s, err)
	}
	if rate < 0 || rate > 1 {
		return Plan{}, fmt.Errorf("faults: rate %g out of [0,1]", rate)
	}
	return Plan{Seed: seed, Rate: rate, KillRate: rate / 10, PanicRate: rate / 10}, nil
}

// ParseChaos parses the mvrun -chaos argument "<seed>:<rate>". It is
// the full PR-5 fault menu of ParseSeedRate plus one node-kill event,
// the grid chaos configuration.
func ParseChaos(s string) (Plan, error) {
	plan, err := ParseSeedRate(s)
	if err != nil {
		return Plan{}, err
	}
	plan.NodeKills = 1
	return plan, nil
}

// ParseSpec parses a scenario file: a JSON array of Injection objects,
// ordered by intended firing. Kinds are validated here so a bad file
// fails at load, not mid-run.
func ParseSpec(data []byte) ([]Injection, error) {
	var spec []Injection
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("faults: parsing scenario: %w", err)
	}
	for i, s := range spec {
		if _, err := KindFromString(s.Kind); err != nil {
			return nil, fmt.Errorf("faults: scenario entry %d: %w", i, err)
		}
	}
	return spec, nil
}
