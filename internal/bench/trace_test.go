package bench

import (
	"bytes"
	"strings"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/telemetry"
)

// traceRun executes one traced multiverse benchmark run and returns the
// exported Chrome trace JSON.
func traceRun(t *testing.T, progName string) []byte {
	t.Helper()
	p, ok := ProgramByName(progName)
	if !ok {
		t.Fatalf("unknown program %q", progName)
	}
	tr := telemetry.New()
	if _, err := RunBenchmarkCfg(p, core.WorldHRT, RunConfig{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenDeterminism extends the repository's reproducibility
// claim to the telemetry layer: the exported Chrome trace of a run is
// byte-identical across independent runs, and it contains the spans the
// paper's boundary-crossing story is told in.
func TestTraceGoldenDeterminism(t *testing.T) {
	a := traceRun(t, "fasta")
	b := traceRun(t, "fasta")
	if !bytes.Equal(a, b) {
		// Find the first differing line for a usable failure message.
		la, lb := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("trace differs across runs at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("trace differs across runs: %d vs %d bytes", len(a), len(b))
	}

	out := string(a)
	for _, span := range []string{
		`"name":"forward:syscall"`,
		`"name":"forward:page-fault"`,
		`"name":"merger"`,
		`"name":"gc-pause"`,
		`"name":"mark"`,
		`"name":"sweep"`,
	} {
		if !strings.Contains(out, span) {
			t.Errorf("trace missing %s", span)
		}
	}
	// Flow links stitch the HRT side to the ROS service side.
	if !strings.Contains(out, `"ph":"s"`) || !strings.Contains(out, `"ph":"f"`) {
		t.Error("trace has no flow events")
	}
}

// TestTracedRunMatchesUntraced is the no-observer-effect check at the
// system level: a traced run and an untraced run of the same program
// agree on every virtual-time outcome.
func TestTracedRunMatchesUntraced(t *testing.T) {
	p, _ := ProgramByName("fasta")
	plain, err := RunBenchmark(p, core.WorldHRT)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunBenchmarkCfg(p, core.WorldHRT, RunConfig{Tracer: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != traced.Cycles {
		t.Errorf("tracing changed runtime: %d vs %d cycles", plain.Cycles, traced.Cycles)
	}
	if plain.ForwardedSyscalls != traced.ForwardedSyscalls ||
		plain.ForwardedFaults != traced.ForwardedFaults ||
		plain.Merges != traced.Merges {
		t.Error("tracing changed boundary accounting")
	}
	if !bytes.Equal(plain.Output, traced.Output) {
		t.Error("tracing changed program output")
	}
}
