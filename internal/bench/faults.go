package bench

import (
	"bytes"
	"encoding/json"
	"fmt"

	"multiverse/internal/core"
	"multiverse/internal/faults"
)

// faultsProgram is the workload the faults suite measures: fasta is the
// heaviest write mix in the suite, so it crosses the boundary often
// enough for injected transport faults and partner deaths to land
// mid-protocol.
const faultsProgram = "fasta"

// FaultsRun is one configuration of the faults suite: end-to-end cycles,
// the injection/recovery activity, and whether the program's output was
// byte-identical to the clean run (the recovery correctness property).
type FaultsRun struct {
	Config string `json:"config"`
	Cycles uint64 `json:"cycles"`

	Injected    uint64 `json:"injected"`
	Retransmits uint64 `json:"retransmits"`
	Dedups      uint64 `json:"dedups"`
	Corrupt     uint64 `json:"corrupt_detected"`
	Recoveries  uint64 `json:"recoveries"`
	Degraded    uint64 `json:"degraded"`

	// RecoveryLatencyCycles is the summed virtual time from partner death
	// to the respawned partner resuming service.
	RecoveryLatencyCycles uint64 `json:"recovery_latency_cycles"`

	OutputMatchesClean bool `json:"output_matches_clean"`
}

// faultsConfigs are the suite's five configurations, in run order.
func faultsConfigs() []struct {
	Name string
	Plan *faults.Plan
} {
	return []struct {
		Name string
		Plan *faults.Plan
	}{
		{"clean", nil},
		// Plumbed but clean: the fault plane armed with every rate zero.
		// Sequencing, checksums, and watchdogs all run; the acceptance bar
		// is zero added virtual cycles against the clean run.
		{"plumbed", &faults.Plan{Seed: 1}},
		// Random transport faults plus rare partner deaths, with budget to
		// recover from all of them.
		{"faulted", &faults.Plan{Seed: 7, Rate: 0.02, KillRate: 0.001, RecoveryBudget: 64}},
		// Scripted single partner death at program start: the recovery-
		// latency measurement the baseline pins.
		{"scenario", &faults.Plan{Seed: 1, Spec: []faults.Injection{{Kind: "partner-kill"}}}},
		// Budget exhaustion: every serviced envelope kills the partner;
		// after one respawn the group degrades to ROS-only execution.
		{"degraded", &faults.Plan{Seed: 3, KillRate: 1, RecoveryBudget: 1}},
	}
}

// RunFaultsSuite executes the five-configuration faults suite on the
// fasta benchmark and returns one FaultsRun per configuration (clean
// first).
func RunFaultsSuite() ([]FaultsRun, error) {
	var prog *Program
	for _, p := range Programs() {
		if p.Name == faultsProgram {
			prog = &p
			break
		}
	}
	if prog == nil {
		return nil, fmt.Errorf("bench: %s program missing from the suite", faultsProgram)
	}

	var runs []FaultsRun
	var cleanOut []byte
	for _, cfg := range faultsConfigs() {
		res, err := RunBenchmarkCfg(*prog, core.WorldHRT, RunConfig{Faults: cfg.Plan})
		if err != nil {
			return nil, fmt.Errorf("bench: faults config %s: %w", cfg.Name, err)
		}
		if cfg.Name == "clean" {
			cleanOut = res.Output
		}
		m := res.Metrics
		injected := uint64(0)
		for _, k := range []string{"drop-notify", "dup-notify", "delay-inject",
			"corrupt-frame", "partner-stall", "partner-kill", "hrt-panic"} {
			injected += m.Counter("faults.injected." + k).Value()
		}
		runs = append(runs, FaultsRun{
			Config:                cfg.Name,
			Cycles:                uint64(res.Cycles),
			Injected:              injected,
			Retransmits:           m.Counter("faults.retransmit").Value(),
			Dedups:                m.Counter("faults.dedup").Value(),
			Corrupt:               m.Counter("faults.corrupt.detected").Value(),
			Recoveries:            m.Counter("faults.recovery").Value(),
			Degraded:              m.Counter("faults.degraded").Value(),
			RecoveryLatencyCycles: uint64(m.LatencyHistogram("faults.recovery.latency").Sum()),
			OutputMatchesClean:    bytes.Equal(res.Output, cleanOut),
		})
	}
	return runs, nil
}

// FaultsBaseline is the BENCH_pr5.json document: the deterministic
// injection/recovery activity and cycle totals the regression tests pin.
type FaultsBaseline struct {
	// Note documents how to regenerate the file.
	Note    string      `json:"note"`
	Program string      `json:"program"`
	Runs    []FaultsRun `json:"runs"`
}

// CollectFaultsBaseline runs the faults suite and validates its two
// structural invariants before returning: the plumbed run charges exactly
// the clean run's cycles (overhead-when-clean is zero, not merely <=1%),
// and every faulted configuration recovers to byte-identical output.
func CollectFaultsBaseline() (*FaultsBaseline, error) {
	runs, err := RunFaultsSuite()
	if err != nil {
		return nil, err
	}
	if runs[1].Cycles != runs[0].Cycles {
		return nil, fmt.Errorf("bench: plumbed run charges %d cycles vs clean %d — the unfired fault plane is not free",
			runs[1].Cycles, runs[0].Cycles)
	}
	for _, r := range runs {
		if !r.OutputMatchesClean {
			return nil, fmt.Errorf("bench: faults config %s diverged from the clean output", r.Config)
		}
	}
	return &FaultsBaseline{
		Note:    "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestFaultsBaseline (or mvtool bench -suite faults -json)",
		Program: faultsProgram,
		Runs:    runs,
	}, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr5.json.
func (b *FaultsBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// FigureFaults regenerates the fault-injection/recovery table: the five
// fasta configurations with their injection counts, recovery activity,
// and the output-correctness verdict.
func FigureFaults() (*Table, error) {
	runs, err := RunFaultsSuite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Faults figure: injection and recovery on fasta, WorldHRT",
		Header: []string{
			"Config", "Cycles", "Overhead", "Injected", "Retransmits",
			"Dedups", "Corrupt", "Recoveries", "Degraded", "Output",
		},
	}
	clean := runs[0].Cycles
	for _, r := range runs {
		verdict := "identical"
		if !r.OutputMatchesClean {
			verdict = "DIVERGED"
		}
		t.AddRow(
			r.Config,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%+.2f%%", 100*(float64(r.Cycles)/float64(clean)-1)),
			fmt.Sprintf("%d", r.Injected),
			fmt.Sprintf("%d", r.Retransmits),
			fmt.Sprintf("%d", r.Dedups),
			fmt.Sprintf("%d", r.Corrupt),
			fmt.Sprintf("%d", r.Recoveries),
			fmt.Sprintf("%d", r.Degraded),
			verdict,
		)
	}
	for _, r := range runs {
		if r.Recoveries > 0 && r.Config == "scenario" {
			t.AddNote("scripted partner death recovered in %d virtual cycles (respawn + merge replay + redelivery)", r.RecoveryLatencyCycles)
		}
	}
	t.AddNote("plumbed = fault plane armed with all rates zero; its overhead against clean is the suite's acceptance bar (0.00%%)")
	return t, nil
}
