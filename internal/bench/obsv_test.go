package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/faults"
	"multiverse/internal/telemetry"
)

// obsvBaselinePath locates BENCH_pr6.json at the repository root.
func obsvBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr6.json")
}

// TestObsvBaseline pins the observability suite against BENCH_pr6.json
// exactly. The interesting invariants are enforced inside
// CollectObsvBaseline itself: armed cycles/output byte-identical to
// dark, nonzero recorder and SLO activity, and armed wall-clock
// overhead under the 10% bound. Regenerate with MV_UPDATE_BASELINE=1
// after an intentional cost-model or instrumentation change.
func TestObsvBaseline(t *testing.T) {
	got, err := CollectObsvBaseline()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(obsvBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", obsvBaselinePath())
		return
	}

	want, err := os.ReadFile(obsvBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(blob)) {
		t.Errorf("benchmark baseline drifted from BENCH_pr6.json; regenerate with MV_UPDATE_BASELINE=1 if intentional")
	}
}

// TestCausalTimelineFromFlightDump is the PR's acceptance scenario: a
// scripted run with dropped notifications and partner kills must
// auto-dump the flight recorder when the recovery budget runs out, and
// the dump must let a reader reconstruct the full causal chain — a
// forwarded syscall's request ID from its doorbell through the fault
// roll, the retransmission, the requeue, and the watchdog respawn.
func TestCausalTimelineFromFlightDump(t *testing.T) {
	prog, ok := ProgramByName("fasta")
	if !ok {
		t.Fatal("fasta program missing")
	}
	res, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{
		Faults: &faults.Plan{Seed: 7, Rate: 0.05, KillRate: 1, RecoveryBudget: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	why, text := res.Recorder.LastDump()
	if !strings.Contains(why, "recovery budget exhausted") {
		t.Fatalf("auto-dump reason = %q, want budget exhaustion", why)
	}
	for _, marker := range []string{"doorbell", "fault-roll", "retransmit", "requeue", "respawn", "degrade"} {
		if !strings.Contains(text, marker) {
			t.Errorf("flight dump missing %q event:\n%s", marker, text)
		}
	}

	// Structural reconstruction from the ring itself: some requeued
	// request must trace back to its doorbell (same nonzero request ID,
	// doorbell first), and a respawn must follow a partner-kill roll.
	evs := res.Recorder.Events()
	doorbellAt := make(map[uint64]int)
	linked := false
	respawnIdx, killRollIdx := -1, -1
	for i, e := range evs {
		switch e.Code {
		case telemetry.RecDoorbell:
			if e.Req != 0 {
				if _, seen := doorbellAt[e.Req]; !seen {
					doorbellAt[e.Req] = i
				}
			}
		case telemetry.RecRequeue:
			if at, seen := doorbellAt[e.Req]; seen && e.Req != 0 && at < i {
				linked = true
			}
		case telemetry.RecFaultRoll:
			if killRollIdx < 0 && faults.Kind(e.A) == faults.PartnerKill {
				killRollIdx = i
			}
		case telemetry.RecRespawn:
			if respawnIdx < 0 {
				respawnIdx = i
			}
		}
	}
	if !linked {
		t.Error("no requeued request could be traced back to its doorbell by request ID")
	}
	if killRollIdx < 0 || respawnIdx < 0 || respawnIdx < killRollIdx {
		t.Errorf("kill roll at %d, respawn at %d — respawn must follow the roll that caused it",
			killRollIdx, respawnIdx)
	}

	// The perturbation rule holds even for the run that died twice.
	clean, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, clean.Output) {
		t.Error("faulted+observed run diverged from clean output")
	}
}

// TestTraceCarriesRequestIDs pins the causal-trace satellite at the span
// layer: a traced hybrid run's forward/service spans carry the "req"
// attribute, and retransmission markers reference the same IDs.
func TestTraceCarriesRequestIDs(t *testing.T) {
	prog, ok := ProgramByName("n-body")
	if !ok {
		t.Fatal("n-body program missing")
	}
	tr := telemetry.New()
	res, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	reqs := 0
	for _, sp := range res.Tracer.Spans() {
		for _, a := range sp.Attrs {
			if a.Key == "req" && a.Val != 0 {
				reqs++
			}
		}
	}
	if reqs == 0 {
		t.Error("no span carries a nonzero req attribute — request IDs are not propagating")
	}
}

// TestRegistryConcurrentAccess exercises Counter/Histogram handles from
// many goroutines while a scheduler-enabled hybrid run records into the
// same registry — the -race shard for the exposition plane, which reads
// snapshots of a live registry.
func TestRegistryConcurrentAccess(t *testing.T) {
	prog, ok := ProgramByName("spectral-norm")
	if !ok {
		t.Fatal("spectral-norm program missing")
	}
	reg := telemetry.NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("test.spin")
			h := reg.LatencyHistogram("test.lat")
			for {
				select {
				case <-done:
					return
				default:
				}
				c.Inc()
				h.Observe(128)
				_ = reg.Snapshot()
			}
		}()
	}
	_, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{
		Scheduler: true, HRTCoreCount: 4, Metrics: reg,
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Counter("test.spin").Value() == 0 {
		t.Error("spinners never ran")
	}
	// A final snapshot over the combined run + spinner state must parse.
	if _, err := telemetry.ParseMetricsSnapshot(mustMarshal(t, reg)); err != nil {
		t.Fatal(err)
	}
}

func mustMarshal(t *testing.T, reg *telemetry.Registry) []byte {
	t.Helper()
	blob, err := reg.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
