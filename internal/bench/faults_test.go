package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/faults"
)

// faultsBaselinePath locates BENCH_pr5.json at the repository root.
func faultsBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr5.json")
}

// TestFaultsBaseline pins the five-configuration faults suite against
// BENCH_pr5.json exactly, and holds the structural invariants regardless
// of the pinned numbers: the plumbed run is cycle-identical to clean, the
// scripted partner death recovers (with its latency recorded), and every
// configuration reproduces the clean output. Regenerate with
// MV_UPDATE_BASELINE=1 after an intentional cost-model or recovery
// change.
func TestFaultsBaseline(t *testing.T) {
	got, err := CollectFaultsBaseline()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]FaultsRun, len(got.Runs))
	for _, r := range got.Runs {
		byName[r.Config] = r
	}
	if f := byName["faulted"]; f.Injected == 0 || f.Retransmits == 0 {
		t.Errorf("faulted run injected %d faults, %d retransmits — the plane never fired", f.Injected, f.Retransmits)
	}
	if s := byName["scenario"]; s.Recoveries != 1 || s.RecoveryLatencyCycles == 0 {
		t.Errorf("scenario run: recoveries=%d latency=%d, want one measured recovery",
			s.Recoveries, s.RecoveryLatencyCycles)
	}
	if d := byName["degraded"]; d.Degraded != 1 {
		t.Errorf("degraded run: faults.degraded=%d, want 1", d.Degraded)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(faultsBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", faultsBaselinePath())
		return
	}

	want, err := os.ReadFile(faultsBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(blob)) {
		t.Errorf("benchmark baseline drifted from BENCH_pr5.json; regenerate with MV_UPDATE_BASELINE=1 if intentional")
	}
}

// TestFaultedOutputProperty is the recovery-correctness property over
// arbitrary seeds: a faulted run whose recovery budget covers every
// injected death must produce byte-identical program output to the clean
// run — injection perturbs timing, never results.
func TestFaultedOutputProperty(t *testing.T) {
	prog, ok := ProgramByName("n-body")
	if !ok {
		t.Fatal("n-body program missing")
	}
	clean, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{7, 21, 99, 12345} {
		res, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{
			Faults: &faults.Plan{Seed: seed, Rate: 0.05, KillRate: 0.002, RecoveryBudget: 128},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(res.Output, clean.Output) {
			t.Errorf("seed %d: faulted output diverged from clean", seed)
		}
		if res.Metrics.Counter("faults.degraded").Value() != 0 {
			t.Errorf("seed %d: group degraded despite ample budget", seed)
		}
	}
}

// TestFaultedRunReplays pins fixed-seed replay: the same seed must
// reproduce the identical trace of injections, retransmissions, and
// recoveries — and the identical virtual cycle total — across runs.
func TestFaultedRunReplays(t *testing.T) {
	prog, ok := ProgramByName("n-body")
	if !ok {
		t.Fatal("n-body program missing")
	}
	cfg := func() RunConfig {
		return RunConfig{Faults: &faults.Plan{
			Seed: 17, Rate: 0.05, KillRate: 0.005, RecoveryBudget: 128,
		}}
	}
	a, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycles diverge across identical faulted runs: %d vs %d", a.Cycles, b.Cycles)
	}
	if !bytes.Equal(a.Output, b.Output) {
		t.Error("output diverges across identical faulted runs")
	}
	for _, c := range []string{
		"faults.injected.drop-notify", "faults.injected.dup-notify",
		"faults.injected.corrupt-frame", "faults.injected.partner-kill",
		"faults.retransmit", "faults.dedup", "faults.recovery", "faults.degraded",
	} {
		if av, bv := a.Metrics.Counter(c).Value(), b.Metrics.Counter(c).Value(); av != bv {
			t.Errorf("%s diverges across identical faulted runs: %d vs %d", c, av, bv)
		}
	}
}
