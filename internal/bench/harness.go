package bench

import (
	"bytes"
	"fmt"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/machine"
	"multiverse/internal/ros"
	"multiverse/internal/scheme"
	"multiverse/internal/telemetry"
	"multiverse/internal/vfs"
)

// RunResult is everything one benchmark run yields.
type RunResult struct {
	Program string
	World   core.World

	// Cycles is the end-to-end virtual runtime observed by the process's
	// main thread (what `time` would report on the testbed).
	Cycles  cycles.Cycles
	Seconds float64

	Stats  ros.Stats
	Output []byte

	// Multiverse-only counters.
	ForwardedSyscalls uint64
	ForwardedFaults   uint64
	Merges            int

	// Boundary-router tier counters (all zero unless RunConfig.Router).
	RouterLocalHits     uint64
	RouterCacheHits     uint64
	RouterCacheMisses   uint64
	RouterInvalidations uint64
	RouterPromotions    uint64
	RouterDemotions     uint64
	// ForwardedSyscallCycles is the virtual time the HRT thread spent
	// crossing the boundary for system calls (async event-channel,
	// promoted synchronous-channel, and tier-3 ring round trips).
	ForwardedSyscallCycles cycles.Cycles

	// Tier-3 exitless counters (all zero unless RunConfig.Exitless).
	RingCalls        uint64
	RingPromotions   uint64
	RingDemotions    uint64
	RingFaultDrops   uint64
	RingRepromotions uint64
	// RingExits counts VM exits taken on the ring path itself (the
	// overflow doorbell); a healthy steady state keeps it at zero.
	RingExits uint64

	// Incremental-merger counters. Entries copied and broadcast shootdowns
	// accrue on every hybrid run (the fixed paths count too); the delta,
	// targeted, and local-fault counters are zero unless RunConfig.Merger.
	PML4EntriesCopied  uint64
	MergerDeltaEntries uint64
	MergerTargeted     uint64
	MergerBroadcast    uint64
	LocalFaults        uint64
	Remerges           int

	// Runtime-internal counters.
	GCCollections uint64
	BarrierFaults uint64
	Reductions    uint64

	// Telemetry of the run: Tracer is nil unless tracing was requested;
	// Metrics is always populated; Recorder is the flight recorder (nil
	// only when RunConfig.NoRecorder ran the system dark).
	Tracer   *telemetry.Tracer
	Metrics  *telemetry.Registry
	Recorder *telemetry.Recorder
}

// RunConfig carries the optional knobs of a benchmark run.
type RunConfig struct {
	// AKMemory switches the runtime's GC to AeroKernel memory management
	// (WorldHRT only).
	AKMemory bool
	// Router enables the adaptive boundary-crossing fast path
	// (core.Options.Router); only meaningful in WorldHRT.
	Router bool
	// RouterPolicy tunes promotion/demotion when Router is set; zero
	// fields take hvm.DefaultRouterPolicy.
	RouterPolicy hvm.RouterPolicy
	// Exitless enables the router's tier-3 polled SPSC rings
	// (core.Options.Exitless); requires Router, only meaningful in
	// WorldHRT.
	Exitless bool
	// Merger enables the incremental state-superposition merger
	// (core.Options.Merger); only meaningful in WorldHRT.
	Merger bool
	// Scheduler enables the AeroKernel per-core run-queue scheduler
	// (core.Options.Scheduler); only meaningful in WorldHRT.
	Scheduler bool
	// HRTCoreCount sizes the HRT partition (cores 1..N, with the machine
	// grown to fit when the default 2x4 topology is too small); 0 keeps
	// the default single HRT core. Only meaningful in WorldHRT.
	HRTCoreCount int
	// Faults arms the deterministic fault-injection plane
	// (core.Options.Faults); only meaningful in WorldHRT.
	Faults *faults.Plan
	// WarmPool bounds the warm AeroKernel context pool
	// (core.Options.WarmPool); 0 keeps the cold-boot-only spawn path.
	WarmPool int
	// MaxGroups caps concurrently live execution groups
	// (core.Options.MaxGroups); 0 = uncapped.
	MaxGroups int
	// TenantBudget arms per-group boundary budgets
	// (core.Options.TenantBudget); nil = off.
	TenantBudget *core.TenantBudget
	// Tracer records virtual-time spans for the run (nil = tracing off).
	Tracer *telemetry.Tracer
	// Metrics receives the run's counters; one is created when nil.
	Metrics *telemetry.Registry
	// Recorder supplies the flight recorder; one is created when nil
	// unless NoRecorder is set.
	Recorder *telemetry.Recorder
	// NoRecorder runs the system without a flight recorder (the
	// observability bench's dark baseline).
	NoRecorder bool
}

// BenchDir is where the harness installs program files.
const BenchDir = "/bench"

// provisionFS builds the ROS filesystem image: library collection plus the
// benchmark program.
func provisionFS(prog *Program) (*vfs.FS, error) {
	fs := vfs.New()
	if err := scheme.InstallPrelude(fs); err != nil {
		return nil, err
	}
	if prog != nil {
		if err := fs.MkdirAll(BenchDir); err != nil {
			return nil, err
		}
		if err := fs.WriteFile(BenchDir+"/"+prog.Name+".scm", []byte(prog.Source)); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// NewSystemForWorld assembles a system configured for one of Figure 13's
// three worlds. For WorldHRT the returned system is hybrid and already
// initialized (AeroKernel booted, address spaces merged).
func NewSystemForWorld(world core.World, fs *vfs.FS, name string) (*core.System, error) {
	return NewSystemForWorldCfg(world, fs, name, RunConfig{})
}

// NewSystemForWorldCfg is NewSystemForWorld with telemetry attached.
func NewSystemForWorldCfg(world core.World, fs *vfs.FS, name string, cfg RunConfig) (*core.System, error) {
	opts := core.Options{
		AppName: name, FS: fs, Tracer: cfg.Tracer, Metrics: cfg.Metrics,
		Recorder: cfg.Recorder, NoRecorder: cfg.NoRecorder,
		Router: cfg.Router, RouterPolicy: cfg.RouterPolicy, Exitless: cfg.Exitless,
		Merger: cfg.Merger, Scheduler: cfg.Scheduler,
		Faults: cfg.Faults,
		WarmPool: cfg.WarmPool, MaxGroups: cfg.MaxGroups, TenantBudget: cfg.TenantBudget,
	}
	switch world {
	case core.WorldNative:
	case core.WorldVirtual:
		opts.Virtual = true
	case core.WorldHRT:
		opts.Hybrid = true
		if cfg.HRTCoreCount > 0 {
			spec := machine.DefaultSpec()
			// Core 0 stays the ROS partition; grow the sockets evenly
			// until cores 1..N fit.
			for spec.Sockets*spec.CoresPerSocket < cfg.HRTCoreCount+1 {
				spec.CoresPerSocket++
			}
			opts.MachineSpec = &spec
			for i := 1; i <= cfg.HRTCoreCount; i++ {
				opts.HRTCores = append(opts.HRTCores, machine.CoreID(i))
			}
		}
	default:
		return nil, fmt.Errorf("bench: unknown world %v", world)
	}
	var sys *core.System
	var err error
	if opts.Hybrid {
		fatImg, berr := core.Build(core.BuildInput{
			App:        core.NewAppImage(name),
			AeroKernel: core.NewAeroKernelImage(),
		})
		if berr != nil {
			return nil, berr
		}
		sys, err = core.NewSystem(fatImg, opts)
		if err != nil {
			return nil, err
		}
		if err := sys.InitRuntime(); err != nil {
			return nil, err
		}
	} else {
		sys, err = core.NewSystem(nil, opts)
		if err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// RunBenchmark executes one program in one world and collects the result.
func RunBenchmark(prog Program, world core.World) (*RunResult, error) {
	return RunBenchmarkCfg(prog, world, RunConfig{})
}

// RunBenchmarkEx additionally supports the incrementally ported
// configuration: akMemory switches the runtime's GC to AeroKernel memory
// management (only meaningful — and only permitted — in WorldHRT).
func RunBenchmarkEx(prog Program, world core.World, akMemory bool) (*RunResult, error) {
	return RunBenchmarkCfg(prog, world, RunConfig{AKMemory: akMemory})
}

// RunBenchmarkCfg is the full-configuration entry point: AK memory plus
// telemetry.
func RunBenchmarkCfg(prog Program, world core.World, cfg RunConfig) (*RunResult, error) {
	akMemory := cfg.AKMemory
	if akMemory && world != core.WorldHRT {
		return nil, fmt.Errorf("bench: AK memory requires the Multiverse world")
	}
	fs, err := provisionFS(&prog)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystemForWorldCfg(world, fs, prog.Name, cfg)
	if err != nil {
		return nil, err
	}

	var engRef *scheme.Engine
	var runErr error
	_, err = sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := scheme.NewEngine(env)
		if eerr != nil {
			runErr = eerr
			return 1
		}
		engRef = eng
		if akMemory {
			if eerr := eng.EnableAKMemory(); eerr != nil {
				runErr = eerr
				return 1
			}
		}
		if _, eerr := eng.RunFile(BenchDir + "/" + prog.Name + ".scm"); eerr != nil {
			runErr = eerr
			return 1
		}
		eng.Shutdown()
		return 0
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, fmt.Errorf("bench: %s on %s: %w", prog.Name, world, runErr)
	}

	out := sys.Proc.Stdout()
	if prog.Check != "" && !bytes.Contains(out, []byte(prog.Check)) {
		return nil, fmt.Errorf("bench: %s on %s: output check %q failed (got %d bytes)",
			prog.Name, world, prog.Check, len(out))
	}

	res := &RunResult{
		Program:  prog.Name,
		World:    world,
		Cycles:   sys.Main.Clock.Now(),
		Stats:    sys.Proc.Stats(),
		Output:   out,
		Tracer:   sys.Tracer(),
		Metrics:  sys.Metrics(),
		Recorder: sys.Recorder(),
	}
	res.Seconds = res.Cycles.Seconds()
	if engRef != nil {
		res.GCCollections = engRef.Interp().GC().Collections
		res.BarrierFaults = engRef.Interp().GC().BarrierFaults
		res.Reductions = engRef.Interp().Reductions()
	}
	if sys.AK != nil {
		res.ForwardedSyscalls = sys.AK.ForwardedSyscalls()
		res.ForwardedFaults = sys.AK.ForwardedFaults()
		res.Merges = sys.AK.MergeCount()
		res.Remerges = sys.AK.RemergeCount()
	}
	m := res.Metrics
	res.RouterLocalHits = m.Counter("router.local_hits").Value()
	res.RouterCacheHits = m.Counter("router.cache_hits").Value()
	res.RouterCacheMisses = m.Counter("router.cache_misses").Value()
	res.RouterInvalidations = m.Counter("router.cache_invalidations").Value()
	res.RouterPromotions = m.Counter("router.promotions").Value()
	res.RouterDemotions = m.Counter("router.demotions").Value()
	res.ForwardedSyscallCycles = m.LatencyHistogram("forward.syscall.latency").Sum() +
		m.LatencyHistogram("sync.syscall.latency").Sum() +
		m.LatencyHistogram("ring.syscall.latency").Sum()
	res.RingCalls = m.Counter("ring.syscalls").Value()
	res.RingPromotions = m.Counter("router.tier3.promotions").Value()
	res.RingDemotions = m.Counter("router.tier3.demotions").Value()
	res.RingFaultDrops = m.Counter("router.tier3.fault_demotions").Value()
	res.RingRepromotions = m.Counter("router.tier3.repromotions").Value()
	res.RingExits = m.Counter("exits.ring").Value()
	res.PML4EntriesCopied = m.Counter("paging.pml4_entries_copied").Value()
	res.MergerDeltaEntries = m.Counter("merger.delta.entries").Value()
	res.MergerTargeted = m.Counter("merger.shootdown.targeted").Value()
	res.MergerBroadcast = m.Counter("merger.shootdown.broadcast").Value()
	res.LocalFaults = m.Counter("fault.local").Value()
	return res, nil
}

// RunStartup boots the engine (GC heap creation, prelude load, timer
// setup) without running any benchmark — the Figure 11 configuration
// ("utilization of system calls in the Racket runtime without any
// benchmark").
func RunStartup(world core.World) (*RunResult, error) {
	fs, err := provisionFS(nil)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystemForWorld(world, fs, "startup")
	if err != nil {
		return nil, err
	}
	var runErr error
	_, err = sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := scheme.NewEngine(env)
		if eerr != nil {
			runErr = eerr
			return 1
		}
		eng.Shutdown()
		return 0
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return &RunResult{
		Program: "startup",
		World:   world,
		Cycles:  sys.Main.Clock.Now(),
		Seconds: sys.Main.Clock.Now().Seconds(),
		Stats:   sys.Proc.Stats(),
		Output:  sys.Proc.Stdout(),
	}, nil
}
