package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
	"multiverse/internal/telemetry"
)

// The grid suite measures the checkpoint/restore + live-migration plane:
// what one voluntary migration costs on the dedicated migration clock,
// that a migrated run is byte-identical (output AND virtual-cycle
// totals) to an unmigrated one, restore latency when a node dies under
// a 1000-group load with the survivors absorbing its groups, and that
// the chaos suite — node kills plus the transport fault menu — leaves
// the workload's observable output byte-identical to a clean run.
// Every pinned figure is virtual; BENCH_pr10.json is byte-exact in CI.

const (
	// gridMigrateCallsBefore/After split the migration unit's boundary
	// crossings around the barrier where the migration is armed.
	gridMigrateCallsBefore = 6
	gridMigrateCallsAfter  = 10

	// gridKillNodes/Groups/Victims: the scripted node-kill scenario —
	// 1000 live groups, 8 of them on the doomed node.
	gridKillNodes   = 8
	gridKillGroups  = 1000
	gridKillVictims = 8
	// gridKillCalls1/2 are each group's crossings before and after the
	// kill barrier.
	gridKillCalls1 = 3
	gridKillCalls2 = 4

	// Chaos unit shape: per-seed clean-vs-chaos byte comparison.
	gridChaosNodes  = 4
	gridChaosGroups = 64
	gridChaosSeeds  = 3
	gridChaosRate   = 0.05
)

// GridBaseline is the BENCH_pr10.json document. Every field is
// deterministic: exact in CI under a byte-compare gate.
type GridBaseline struct {
	Note    string `json:"note"`
	ClockHz uint64 `json:"clock_hz"`

	// Migration unit: one group migrated mid-run between two nodes,
	// held against an unmigrated reference on a standalone system.
	MigrateNodes       int `json:"migrate_nodes"`
	MigrateCallsBefore int `json:"migrate_calls_before"`
	MigrateCallsAfter  int `json:"migrate_calls_after"`
	// MigrateLatencyCycles is the full quiesce+checkpoint+transfer+
	// restore cost of the one migration, in virtual cycles on the
	// dedicated migration clock.
	MigrateLatencyCycles uint64 `json:"migrate_latency_cycles"`
	// MigrateHRTCycles is the migrated group's final HRT-clock total —
	// identical to the unmigrated reference (the transparency pin).
	MigrateHRTCycles   uint64 `json:"migrate_hrt_cycles"`
	MigrateOutputMatch bool   `json:"migrate_output_match"`
	MigrateCycleMatch  bool   `json:"migrate_cycle_match"`

	// Node-kill unit: the scripted scenario at 1000 live groups.
	KillNodes            int    `json:"kill_nodes"`
	KillGroups           int    `json:"kill_groups"`
	KillVictimGroups     int    `json:"kill_victim_groups"`
	KillRestored         int    `json:"kill_restored"`
	KillRestoreP50Cycles uint64 `json:"kill_restore_p50_cycles"`
	KillRestoreP99Cycles uint64 `json:"kill_restore_p99_cycles"`
	// KillMigrationClockCycles is the grid migration clock after the 8
	// restores — total recovery work in virtual cycles.
	KillMigrationClockCycles uint64 `json:"kill_migration_clock_cycles"`
	// KillCompletedTotal sums every group's serviced-seqno count after
	// the joins: groups*(calls+exit), pinning zero lost and zero
	// duplicated syscalls at scale.
	KillCompletedTotal uint64 `json:"kill_completed_total"`
	// KillRepeatMatch records that a second full run (fresh grid, same
	// script) produced identical figures.
	KillRepeatMatch bool `json:"kill_repeat_match"`

	// Chaos unit: node kills + the transport fault menu against the
	// density-style workload, compared byte-for-byte against a clean
	// run of the same seed.
	ChaosNodes         int     `json:"chaos_nodes"`
	ChaosGroups        int     `json:"chaos_groups"`
	ChaosSeeds         int     `json:"chaos_seeds"`
	ChaosRate          float64 `json:"chaos_rate"`
	ChaosByteIdentical bool    `json:"chaos_byte_identical"`
}

// buildGridNodes assembles n identically-configured grid nodes sharing
// one metrics registry and flight recorder, plus the fault plan when
// one is armed, and joins them into a Grid.
func buildGridNodes(n int, plan *faults.Plan) (*core.Grid, *telemetry.Registry, error) {
	return buildGridNodesObserved(n, plan, nil, nil)
}

// buildGridNodesObserved builds the grid into caller-supplied telemetry
// (either may be nil for a fresh instance), so mvrun can serve the
// grid's metrics and flight recorder through its exposition plane.
func buildGridNodesObserved(n int, plan *faults.Plan, reg *telemetry.Registry, rec *telemetry.Recorder) (*core.Grid, *telemetry.Registry, error) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if rec == nil {
		rec = telemetry.NewRecorder(telemetry.DefaultRecorderSize)
	}
	nodes := make([]*core.System, n)
	for i := range nodes {
		fs, err := provisionFS(nil)
		if err != nil {
			return nil, nil, err
		}
		sys, err := NewSystemForWorldCfg(core.WorldHRT, fs, "grid", RunConfig{
			Metrics: reg, Recorder: rec, Faults: plan,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: grid node %d: %w", i, err)
		}
		nodes[i] = sys
	}
	gr, err := core.NewGrid(nodes)
	if err != nil {
		return nil, nil, err
	}
	return gr, reg, nil
}

// migrateBody is the migration unit's group body: deterministic
// getpid/write crossings folded into a checksum, split around a
// barrier so the driver can arm the migration while the group is
// provably quiescent at a known crossing count.
func migrateBody(arrived chan<- struct{}, gate <-chan struct{}) func(core.Env) uint64 {
	cross := func(env core.Env, i int, sum uint64) uint64 {
		if i%2 == 0 {
			return sum + env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}).Ret
		}
		return sum + env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysWrite,
			Args: [6]uint64{1},
			Data: []byte(fmt.Sprintf("m%02d;", i)),
		}).Ret
	}
	return func(env core.Env) uint64 {
		var sum uint64
		for i := 0; i < gridMigrateCallsBefore; i++ {
			sum = cross(env, i, sum)
		}
		arrived <- struct{}{}
		<-gate
		for i := 0; i < gridMigrateCallsAfter; i++ {
			sum = cross(env, gridMigrateCallsBefore+i, sum)
		}
		return sum & 0xffff
	}
}

// gridMigrateUnit pins one voluntary migration: latency on the
// migration clock, and byte/cycle transparency against an unmigrated
// reference run.
func gridMigrateUnit(b *GridBaseline) error {
	// Unmigrated reference on a standalone system.
	fs, err := provisionFS(nil)
	if err != nil {
		return err
	}
	ref, err := NewSystemForWorldCfg(core.WorldHRT, fs, "grid", RunConfig{})
	if err != nil {
		return err
	}
	// Spawn on Main's clock — the same creator SpawnGroupOn charges on
	// the grid side, so the two groups' virtual start times agree.
	refArrived, refGate := make(chan struct{}, 1), make(chan struct{})
	rg, err := ref.SpawnGroup(ref.Main.Clock, migrateBody(refArrived, refGate))
	if err != nil {
		return err
	}
	<-refArrived
	close(refGate)
	refCode, err := rg.Join(ref.Main)
	if err != nil {
		return fmt.Errorf("bench: grid migrate reference join: %w", err)
	}
	refOut := ref.Proc.Stdout()
	refCycles := rg.HRTThread().Clock.Now()

	// Migrated run on a two-node grid: arm at the barrier (the group has
	// made exactly gridMigrateCallsBefore crossings), release, and the
	// migration fires on the first crossing after it.
	gr, reg, err := buildGridNodes(2, nil)
	if err != nil {
		return err
	}
	arrived, gate := make(chan struct{}, 1), make(chan struct{})
	g, err := gr.SpawnGroupOn(0, migrateBody(arrived, gate))
	if err != nil {
		return err
	}
	<-arrived
	res, err := gr.ArmMigration(g, 1, gridMigrateCallsBefore)
	if err != nil {
		return err
	}
	close(gate)
	if merr := <-res; merr != nil {
		return fmt.Errorf("bench: grid migrate: %w", merr)
	}
	code, err := g.Join(gr.Node(0).Main)
	if err != nil {
		return fmt.Errorf("bench: grid migrate join: %w", err)
	}
	out := append(append([]byte{}, gr.Node(0).Proc.Stdout()...), gr.Node(1).Proc.Stdout()...)

	if code != refCode {
		return fmt.Errorf("bench: grid migrate exit %d != reference %d", code, refCode)
	}
	if !bytes.Equal(out, refOut) {
		return fmt.Errorf("bench: grid migrate output diverged from reference:\n%q\nvs\n%q", out, refOut)
	}
	gotCycles := g.HRTThread().Clock.Now()
	if gotCycles != refCycles {
		return fmt.Errorf("bench: grid migrate HRT cycles %d != reference %d (migration cost leaked)", gotCycles, refCycles)
	}
	b.MigrateNodes = 2
	b.MigrateCallsBefore = gridMigrateCallsBefore
	b.MigrateCallsAfter = gridMigrateCallsAfter
	b.MigrateLatencyCycles = uint64(reg.LatencyHistogram("grid.migrate.latency").Sum())
	b.MigrateHRTCycles = uint64(refCycles)
	b.MigrateOutputMatch = true
	b.MigrateCycleMatch = true
	if b.MigrateLatencyCycles == 0 {
		return fmt.Errorf("bench: grid migrate measured zero latency")
	}
	return nil
}

// gridKillFigures is one node-kill run's pinned numbers, comparable
// across the repeat run.
type gridKillFigures struct {
	Restored        int
	RestoreP50      uint64
	RestoreP99      uint64
	MigrationCycles uint64
	CompletedTotal  uint64
}

// runGridKill executes the scripted scenario once: 1000 live groups on
// 8 nodes (8 on the last), kill that node at the workload barrier, all
// 8 victims restore on survivors, everything joins clean.
func runGridKill() (*gridKillFigures, error) {
	// Zero-rate plan: injects nothing, arms the channel seqno window so
	// serviced calls are countable.
	gr, reg, err := buildGridNodes(gridKillNodes, &faults.Plan{Seed: 7})
	if err != nil {
		return nil, err
	}
	total := gridKillGroups
	gate := make(chan struct{})
	arrived := make(chan struct{}, total)
	fn := func(env core.Env) uint64 {
		for i := 0; i < gridKillCalls1; i++ {
			if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
				return 1
			}
		}
		arrived <- struct{}{}
		<-gate
		for i := 0; i < gridKillCalls2; i++ {
			if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
				return 1
			}
		}
		return 0
	}
	groups := make([]*core.ExecutionGroup, 0, total)
	for i := 0; i < total-gridKillVictims; i++ {
		g, serr := gr.SpawnGroupOn(i%(gridKillNodes-1), fn)
		if serr != nil {
			return nil, fmt.Errorf("bench: grid kill spawn %d: %w", i, serr)
		}
		groups = append(groups, g)
	}
	for i := 0; i < gridKillVictims; i++ {
		g, serr := gr.SpawnGroupOn(gridKillNodes-1, fn)
		if serr != nil {
			return nil, fmt.Errorf("bench: grid kill victim spawn %d: %w", i, serr)
		}
		groups = append(groups, g)
	}
	for range groups {
		<-arrived
	}
	// Every group is quiesced at the barrier — the node kill lands on a
	// grid with nothing in flight, the quiesce-point invariant.
	ids, err := gr.KillNode(gridKillNodes - 1)
	if err != nil {
		return nil, fmt.Errorf("bench: grid kill: %w", err)
	}
	if len(ids) != gridKillVictims {
		return nil, fmt.Errorf("bench: grid kill restored %d groups, want %d", len(ids), gridKillVictims)
	}
	close(gate)
	var completed uint64
	for i, g := range groups {
		code, jerr := g.Join(gr.Node(0).Main)
		if jerr != nil || code != 0 {
			return nil, fmt.Errorf("bench: grid kill join %d: code %d err %v", i, code, jerr)
		}
		completed += uint64(g.Channel().Window().Completed)
	}
	want := uint64(total) * uint64(gridKillCalls1+gridKillCalls2+1)
	if completed != want {
		return nil, fmt.Errorf("bench: grid kill completed %d syscalls, want %d (lost or duplicated)", completed, want)
	}
	h := reg.LatencyHistogram("grid.restore.latency")
	return &gridKillFigures{
		Restored:        len(ids),
		RestoreP50:      uint64(h.Quantile(0.50)),
		RestoreP99:      uint64(h.Quantile(0.99)),
		MigrationCycles: uint64(gr.MigrationCycles()),
		CompletedTotal:  completed,
	}, nil
}

// gridKillUnit runs the scripted scenario twice — figures must agree
// exactly, or host interleaving leaked into the virtual plane.
func gridKillUnit(b *GridBaseline) error {
	first, err := runGridKill()
	if err != nil {
		return err
	}
	second, err := runGridKill()
	if err != nil {
		return fmt.Errorf("bench: grid kill repeat run: %w", err)
	}
	if *first != *second {
		return fmt.Errorf("bench: grid kill figures diverged across runs: %+v vs %+v", first, second)
	}
	b.KillNodes = gridKillNodes
	b.KillGroups = gridKillGroups
	b.KillVictimGroups = gridKillVictims
	b.KillRestored = first.Restored
	b.KillRestoreP50Cycles = first.RestoreP50
	b.KillRestoreP99Cycles = first.RestoreP99
	b.KillMigrationClockCycles = first.MigrationCycles
	b.KillCompletedTotal = first.CompletedTotal
	b.KillRepeatMatch = true
	return nil
}

// RunGridChaos drives the chaos workload on a fresh grid and returns
// its deterministic summary: one line per group — spawn index, exit
// checksum, crossing count, serviced-envelope count — in spawn order.
// The summary contains nothing node- or time-dependent, so a chaos run
// (node kills + transport faults) is byte-identical to a clean run of
// the same seed: that equality IS the zero-lost/zero-duplicated/
// transparent-recovery claim.
//
// plan.Seed shapes the workload (per-group call counts); plan.NodeKills
// node-kill events fire at the workload barrier, victims chosen by
// faults.NodeKillVictim — a victim already down rolls forward to the
// next live node, and kills stop when one node remains. The transport
// menu (drop/corrupt/duplicate/delay/stall, partner kills) runs at the
// plan's rates. HRT panics are not part of the chaos menu: a panic
// legitimately changes the group's exit, so transparency cannot hold.
func RunGridChaos(nodes, groups int, plan faults.Plan) ([]byte, error) {
	return RunGridChaosObserved(nodes, groups, plan, nil, nil)
}

// RunGridChaosObserved is RunGridChaos recording into caller-supplied
// telemetry: reg collects the grid.* metrics, rec the flight-recorder
// events (checkpoint, restore, node-kill, migrate-complete), so mvrun
// can emit its usual post-run artifacts for a grid run. Either may be
// nil.
func RunGridChaosObserved(nodes, groups int, plan faults.Plan, reg *telemetry.Registry, rec *telemetry.Recorder) ([]byte, error) {
	plan.PanicRate = 0
	kills := plan.NodeKills
	plan.NodeKills = 0 // node kills are grid-driven, not channel-rolled
	gr, _, err := buildGridNodesObserved(nodes, &plan, reg, rec)
	if err != nil {
		return nil, err
	}

	// Workload shape from the seed: identical between a clean and a
	// chaotic run of the same seed.
	r := rand.New(rand.NewSource(int64(plan.Seed)))
	calls1 := make([]int, groups)
	calls2 := make([]int, groups)
	for i := range calls1 {
		calls1[i] = 2 + r.Intn(4)
		calls2[i] = 1 + r.Intn(4)
	}

	gate := make(chan struct{})
	arrived := make(chan struct{}, groups)
	body := func(idx int) func(core.Env) uint64 {
		return func(env core.Env) uint64 {
			var sum uint64
			cross := func(j int) {
				if j%2 == 0 {
					sum += env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}).Ret
				} else {
					sum += env.Syscall(linuxabi.Call{
						Num:  linuxabi.SysWrite,
						Args: [6]uint64{1},
						Data: []byte(fmt.Sprintf("g%04d.%d;", idx, j)),
					}).Ret
				}
			}
			for j := 0; j < calls1[idx]; j++ {
				cross(j)
			}
			arrived <- struct{}{}
			<-gate
			for j := 0; j < calls2[idx]; j++ {
				cross(calls1[idx] + j)
			}
			return sum & 0xffff
		}
	}
	gs := make([]*core.ExecutionGroup, groups)
	for i := 0; i < groups; i++ {
		g, serr := gr.SpawnGroupOn(i%nodes, body(i))
		if serr != nil {
			return nil, fmt.Errorf("bench: chaos spawn %d: %w", i, serr)
		}
		gs[i] = g
	}
	for range gs {
		<-arrived
	}
	// Node kills land at the barrier, where every group is quiesced.
	for k := 0; k < kills; k++ {
		if gr.NodesLive() <= 1 {
			break
		}
		v := faults.NodeKillVictim(plan.Seed, k, nodes)
		for gr.NodeDown(v) {
			v = (v + 1) % nodes
		}
		if _, kerr := gr.KillNode(v); kerr != nil {
			return nil, fmt.Errorf("bench: chaos node kill %d: %w", k, kerr)
		}
	}
	close(gate)

	var out bytes.Buffer
	var totalCalls int
	for i, g := range gs {
		code, jerr := g.Join(gr.Node(0).Main)
		if jerr != nil {
			return nil, fmt.Errorf("bench: chaos join %d: %w", i, jerr)
		}
		n := calls1[i] + calls2[i]
		totalCalls += n
		fmt.Fprintf(&out, "group %04d exit=%#04x calls=%d completed=%d\n",
			i, code, n, g.Channel().Window().Completed)
	}
	fmt.Fprintf(&out, "ok groups=%d calls=%d\n", groups, totalCalls)
	return out.Bytes(), nil
}

// gridChaosUnit compares chaos against clean across the pinned seeds.
func gridChaosUnit(b *GridBaseline) error {
	for seed := uint64(1); seed <= gridChaosSeeds; seed++ {
		clean, err := RunGridChaos(gridChaosNodes, gridChaosGroups, faults.Plan{Seed: seed})
		if err != nil {
			return fmt.Errorf("bench: chaos clean seed %d: %w", seed, err)
		}
		chaotic, err := RunGridChaos(gridChaosNodes, gridChaosGroups, faults.Plan{
			Seed: seed, Rate: gridChaosRate, KillRate: gridChaosRate / 10,
			NodeKills: 1,
		})
		if err != nil {
			return fmt.Errorf("bench: chaos seed %d: %w", seed, err)
		}
		if !bytes.Equal(clean, chaotic) {
			return fmt.Errorf("bench: chaos output diverged from clean at seed %d:\nclean:\n%schaos:\n%s", seed, clean, chaotic)
		}
	}
	b.ChaosNodes = gridChaosNodes
	b.ChaosGroups = gridChaosGroups
	b.ChaosSeeds = gridChaosSeeds
	b.ChaosRate = gridChaosRate
	b.ChaosByteIdentical = true
	return nil
}

// CollectGridBaseline runs the full suite and assembles the document.
func CollectGridBaseline() (*GridBaseline, error) {
	b := &GridBaseline{
		Note:    "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestGridBaseline (or mvtool bench -suite grid -json); all fields deterministic, byte-exact in CI",
		ClockHz: uint64(cycles.ClockHz),
	}
	for _, unit := range []struct {
		name string
		run  func(*GridBaseline) error
	}{
		{"migrate", gridMigrateUnit},
		{"kill", gridKillUnit},
		{"chaos", gridChaosUnit},
	} {
		if err := unit.run(b); err != nil {
			return nil, fmt.Errorf("bench: grid unit %s: %w", unit.name, err)
		}
	}
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr10.json.
func (b *GridBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareGrid checks a fresh collection against the pinned document.
func CompareGrid(pinned, fresh *GridBaseline) error {
	pb, err := pinned.MarshalIndent()
	if err != nil {
		return err
	}
	fb, err := fresh.MarshalIndent()
	if err != nil {
		return err
	}
	if !bytes.Equal(pb, fb) {
		return fmt.Errorf("grid: baseline diverged from pinned document:\npinned:\n%s\nfresh:\n%s", pb, fb)
	}
	return nil
}

// FigureGrid renders the grid suite as a table.
func FigureGrid() (*Table, error) {
	b, err := CollectGridBaseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Grid figure: live migration, node-kill recovery, chaos transparency",
		Header: []string{"Figure", "Value"},
	}
	t.AddRow("migration latency (cycles)", fmt.Sprintf("%d", b.MigrateLatencyCycles))
	t.AddRow("migrated run output/cycles match", fmt.Sprintf("%v / %v", b.MigrateOutputMatch, b.MigrateCycleMatch))
	t.AddRow("node-kill scenario", fmt.Sprintf("%d groups on %d nodes, %d victims",
		b.KillGroups, b.KillNodes, b.KillVictimGroups))
	t.AddRow("victims restored on survivors", fmt.Sprintf("%d", b.KillRestored))
	t.AddRow("restore latency p50/p99 (cycles)", fmt.Sprintf("%d / %d",
		b.KillRestoreP50Cycles, b.KillRestoreP99Cycles))
	t.AddRow("recovery total (migration clock)", fmt.Sprintf("%d", b.KillMigrationClockCycles))
	t.AddRow("syscalls completed (zero lost/dup)", fmt.Sprintf("%d", b.KillCompletedTotal))
	t.AddRow("chaos vs clean byte-identical", fmt.Sprintf("%v (%d seeds, rate %g, %d nodes, %d groups)",
		b.ChaosByteIdentical, b.ChaosSeeds, b.ChaosRate, b.ChaosNodes, b.ChaosGroups))
	t.AddNote("kill repeat match: %v; all figures virtual (cycles at %d Hz)",
		b.KillRepeatMatch, b.ClockHz)
	return t, nil
}
