package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSchedulerScalingRegression is the deterministic acceptance check of
// the work-stealing scheduler: with 4 HRT cores the HPCG solve must beat
// the 1-core run by at least 2.5x, scaling must be monotone over the
// 1/2/4/8 ladder, and the imbalanced ramp workload must actually steal.
func TestSchedulerScalingRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler scaling suite is long")
	}
	b, err := CollectSchedulerBaseline()
	if err != nil {
		t.Fatal(err)
	}
	byCores := make(map[int]SchedulerPoint, len(b.Points))
	for _, p := range b.Points {
		byCores[p.HRTCores] = p
	}
	one, four := byCores[1], byCores[4]
	if one.HPCGCycles == 0 || four.HPCGCycles == 0 {
		t.Fatalf("ladder points missing: %+v", b.Points)
	}
	if speedup := float64(one.HPCGCycles) / float64(four.HPCGCycles); speedup < 2.5 {
		t.Errorf("HPCG 4-core speedup %.3fx < 2.5x (1 core: %d, 4 cores: %d)",
			speedup, one.HPCGCycles, four.HPCGCycles)
	}
	for i := 1; i < len(b.Points); i++ {
		prev, cur := b.Points[i-1], b.Points[i]
		if cur.HPCGCycles >= prev.HPCGCycles {
			t.Errorf("HPCG scaling not monotone: %d cores %d cycles >= %d cores %d cycles",
				cur.HRTCores, cur.HPCGCycles, prev.HRTCores, prev.HPCGCycles)
		}
		if cur.PlacesCycles >= prev.PlacesCycles {
			t.Errorf("places scaling not monotone: %d cores %d cycles >= %d cores %d cycles",
				cur.HRTCores, cur.PlacesCycles, prev.HRTCores, prev.PlacesCycles)
		}
	}
	for _, p := range b.Points {
		if p.Placements == 0 {
			t.Errorf("%d cores: no sched.place placements recorded", p.HRTCores)
		}
		if p.PlacesSpawned != uint64(b.Places) {
			t.Errorf("%d cores: %d places spawned, want %d", p.HRTCores, p.PlacesSpawned, b.Places)
		}
	}
	if b.ImbalancedSteals == 0 {
		t.Error("imbalanced ramp workload recorded no steals")
	}
}

// TestSchedulerDeterminism is the scheduler's determinism property: the
// same seeded legion and places workloads, run twice, must report identical
// end-to-end virtual cycles and identical sched.* counter values (satellite
// of ISSUE 4; run under -race by the tier-1 sweep).
func TestSchedulerDeterminism(t *testing.T) {
	a, err := runSchedulerHPCG(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSchedulerHPCG(4)
	if err != nil {
		t.Fatal(err)
	}
	if a.End != b.End {
		t.Errorf("HPCG end-to-end cycles differ across runs: %d vs %d", a.End, b.End)
	}
	if a.Result.Cycles != b.Result.Cycles {
		t.Errorf("HPCG solve cycles differ across runs: %d vs %d", a.Result.Cycles, b.Result.Cycles)
	}
	if a.Result.Residual != b.Result.Residual {
		t.Errorf("HPCG residual differs across runs: %v vs %v", a.Result.Residual, b.Result.Residual)
	}
	if a.Steals != b.Steals || a.QueueDelay != b.QueueDelay {
		t.Errorf("scheduler activity differs across runs: steals %d/%d queue delay %d/%d",
			a.Steals, b.Steals, a.QueueDelay, b.QueueDelay)
	}
	if !reflect.DeepEqual(a.Sched, b.Sched) {
		t.Errorf("sched.* counters differ across runs:\n%v\n%v", a.Sched, b.Sched)
	}

	pc1, sp1, err := runSchedulerPlaces(4, schedPlaceCount)
	if err != nil {
		t.Fatal(err)
	}
	pc2, sp2, err := runSchedulerPlaces(4, schedPlaceCount)
	if err != nil {
		t.Fatal(err)
	}
	if pc1 != pc2 || sp1 != sp2 {
		t.Errorf("places run not deterministic: cycles %d/%d spawned %d/%d", pc1, pc2, sp1, sp2)
	}
}

// schedulerBaselinePath locates BENCH_pr4.json at the repository root.
func schedulerBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr4.json")
}

// TestSchedulerBaseline pins the scheduler scaling suite against
// BENCH_pr4.json exactly. Regenerate with MV_UPDATE_BASELINE=1 after an
// intentional cost-model or scheduler change.
func TestSchedulerBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler scaling suite is long")
	}
	got, err := CollectSchedulerBaseline()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(schedulerBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", schedulerBaselinePath())
		return
	}
	want, err := os.ReadFile(schedulerBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(blob)) {
		t.Errorf("scheduler baseline drifted from BENCH_pr4.json; regenerate with MV_UPDATE_BASELINE=1 if intentional")
	}
}
