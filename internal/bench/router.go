package bench

import (
	"encoding/json"
	"fmt"

	"multiverse/internal/core"
	"multiverse/internal/linuxabi"
)

// RouterComparison is one benchmark's WorldHRT run with the boundary
// router off vs on: end-to-end cycles, actual boundary crossings, the
// virtual time spent crossing, and the router's tier counters.
type RouterComparison struct {
	Program string `json:"program"`

	OffCycles    uint64 `json:"off_cycles"`
	OnCycles     uint64 `json:"on_cycles"`
	OffCrossings uint64 `json:"off_crossings"`
	OnCrossings  uint64 `json:"on_crossings"`
	// Forward cycles: the sum of boundary round-trip latencies the HRT
	// thread paid for system calls (async event channel + promoted sync
	// channel).
	OffForwardCycles uint64 `json:"off_forward_cycles"`
	OnForwardCycles  uint64 `json:"on_forward_cycles"`

	LocalHits     uint64 `json:"local_hits"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Invalidations uint64 `json:"invalidations"`
	Promotions    uint64 `json:"promotions"`
	Demotions     uint64 `json:"demotions"`
}

// CrossingsEliminated is how many would-be boundary crossings the router
// serviced inside the HRT.
func (c *RouterComparison) CrossingsEliminated() uint64 {
	if c.OffCrossings < c.OnCrossings {
		return 0
	}
	return c.OffCrossings - c.OnCrossings
}

// CompareRouter runs one benchmark in WorldHRT twice — router off, then
// router on — and pairs the results. Both runs are deterministic, so the
// comparison is too.
func CompareRouter(prog Program) (*RouterComparison, error) {
	off, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{})
	if err != nil {
		return nil, err
	}
	on, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{Router: true})
	if err != nil {
		return nil, err
	}
	return &RouterComparison{
		Program:          prog.Name,
		OffCycles:        uint64(off.Cycles),
		OnCycles:         uint64(on.Cycles),
		OffCrossings:     off.ForwardedSyscalls,
		OnCrossings:      on.ForwardedSyscalls,
		OffForwardCycles: uint64(off.ForwardedSyscallCycles),
		OnForwardCycles:  uint64(on.ForwardedSyscallCycles),
		LocalHits:        on.RouterLocalHits,
		CacheHits:        on.RouterCacheHits,
		CacheMisses:      on.RouterCacheMisses,
		Invalidations:    on.RouterInvalidations,
		Promotions:       on.RouterPromotions,
		Demotions:        on.RouterDemotions,
	}, nil
}

// RouterBaseline is the BENCH_pr2.json document: the deterministic
// per-benchmark crossing and cycle totals the regression tests pin.
type RouterBaseline struct {
	// Note documents how to regenerate the file.
	Note       string             `json:"note"`
	Benchmarks []RouterComparison `json:"benchmarks"`
}

// CollectRouterBaseline runs the seven-benchmark suite in WorldHRT with
// the router off and on and returns the comparison set.
func CollectRouterBaseline() (*RouterBaseline, error) {
	b := &RouterBaseline{
		Note: "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestBenchBaseline (or mvtool bench -json)",
	}
	for _, p := range Programs() {
		cmp, err := CompareRouter(p)
		if err != nil {
			return nil, err
		}
		b.Benchmarks = append(b.Benchmarks, *cmp)
	}
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr2.json.
func (b *RouterBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// routerMicro measures the three router tiers directly from an HRT
// thread: tier-0 (getpid, uname), tier-1 hit (repeated stat), and tier-2
// (ioctl, which no tier can answer). Returns name -> mean cycles.
func routerMicro(sys *core.System, runs int) (map[string]uint64, error) {
	out := make(map[string]uint64)
	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		clk := env.Clock()
		measure := func(name string, fn func()) {
			out[name] = uint64(avgCycles(clk, runs, fn))
		}
		measure("tier0 getpid", func() {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
		})
		measure("tier0 uname", func() {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysUname})
		})
		// Prime the stat cache, then measure hits.
		env.Syscall(linuxabi.Call{Num: linuxabi.SysStat, Path: "/racket/collects"})
		measure("tier1 stat (cached)", func() {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysStat, Path: "/racket/collects"})
		})
		measure("tier2 ioctl (forwarded)", func() {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysIoctl})
		})
		return 0
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// FigureRouter regenerates the adaptive-router comparison: the seven
// benchmarks in WorldHRT with the router off vs on (crossings eliminated,
// cycle totals), plus per-tier latencies measured directly.
func FigureRouter() (*Table, error) {
	t := &Table{
		Title: "Router figure: adaptive boundary-crossing fast path, WorldHRT router off vs on",
		Header: []string{
			"Benchmark", "Cycles (off)", "Cycles (on)", "Speedup",
			"Crossings (off)", "Crossings (on)", "Eliminated",
			"Local", "Cache h/m", "Promo",
		},
	}
	for _, p := range Programs() {
		c, err := CompareRouter(p)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			c.Program,
			fmt.Sprintf("%d", c.OffCycles),
			fmt.Sprintf("%d", c.OnCycles),
			fmt.Sprintf("%.3fx", float64(c.OffCycles)/float64(c.OnCycles)),
			fmt.Sprintf("%d", c.OffCrossings),
			fmt.Sprintf("%d", c.OnCrossings),
			fmt.Sprintf("%d", c.CrossingsEliminated()),
			fmt.Sprintf("%d", c.LocalHits),
			fmt.Sprintf("%d/%d", c.CacheHits, c.CacheMisses),
			fmt.Sprintf("%d/%d", c.Promotions, c.Demotions),
		)
	}

	// Per-tier latency microbenchmarks on a routed hybrid system.
	fs, err := provisionFS(nil)
	if err != nil {
		return nil, err
	}
	sysR, err := NewSystemForWorldCfg(core.WorldHRT, fs, "router-micro", RunConfig{Router: true})
	if err != nil {
		return nil, err
	}
	micro, err := routerMicro(sysR, 64)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"tier0 getpid", "tier0 uname", "tier1 stat (cached)", "tier2 ioctl (forwarded)"} {
		t.AddNote("%s: ~%d cycles", name, micro[name])
	}
	t.AddNote("tier prices: local %d, cache probe+hit %d; async round trip ~25K, sync ~790/1060 (Figure 2)",
		uint64(sysR.Machine.Cost.HRTLocalSyscall),
		uint64(sysR.Machine.Cost.SyscallCacheProbe+sysR.Machine.Cost.SyscallCacheHit))
	latencyHistogramNotes(t, sysR.Metrics(),
		"router.local.latency", "router.cache_hit.latency",
		"forward.syscall.latency", "sync.syscall.latency")
	return t, nil
}
