package bench

import (
	"encoding/json"
	"fmt"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
)

// ExitlessComparison is one benchmark's WorldHRT run with the router on
// in both cases: tier-3 exitless rings off ("dark" — the PR-6 routed
// configuration, byte for byte) vs on. The interesting deltas are the
// forward-path cycles and the exit ledger: the rings keep exits.ring at
// zero while absorbing the forwards the sync channel used to carry.
type ExitlessComparison struct {
	Program string `json:"program"`

	DarkCycles    uint64 `json:"dark_cycles"`
	OnCycles      uint64 `json:"on_cycles"`
	DarkCrossings uint64 `json:"dark_crossings"`
	OnCrossings   uint64 `json:"on_crossings"`
	// Forward cycles: the boundary round-trip virtual time the HRT
	// thread paid (async + sync + ring tiers).
	DarkForwardCycles uint64 `json:"dark_forward_cycles"`
	OnForwardCycles   uint64 `json:"on_forward_cycles"`

	// Tier-3 counters from the exitless run.
	RingCalls      uint64 `json:"ring_calls"`
	RingPromotions uint64 `json:"ring_promotions"`
	RingDemotions  uint64 `json:"ring_demotions"`
	// RingExits is the overflow-doorbell exit count on the ring path;
	// the baseline pins it at zero (the exitless claim).
	RingExits uint64 `json:"ring_exits"`

	// OutputMatch records that the exitless run produced byte-identical
	// program output to the dark run.
	OutputMatch bool `json:"output_match"`
}

// CompareExitless runs one benchmark in WorldHRT twice — router on with
// the tier-3 rings off, then on — and pairs the results. Both runs are
// deterministic, so the comparison is too.
func CompareExitless(prog Program) (*ExitlessComparison, error) {
	dark, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{Router: true})
	if err != nil {
		return nil, err
	}
	on, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{Router: true, Exitless: true})
	if err != nil {
		return nil, err
	}
	return &ExitlessComparison{
		Program:           prog.Name,
		DarkCycles:        uint64(dark.Cycles),
		OnCycles:          uint64(on.Cycles),
		DarkCrossings:     dark.ForwardedSyscalls,
		OnCrossings:       on.ForwardedSyscalls,
		DarkForwardCycles: uint64(dark.ForwardedSyscallCycles),
		OnForwardCycles:   uint64(on.ForwardedSyscallCycles),
		RingCalls:         on.RingCalls,
		RingPromotions:    on.RingPromotions,
		RingDemotions:     on.RingDemotions,
		RingExits:         on.RingExits,
		OutputMatch:       string(dark.Output) == string(on.Output),
	}, nil
}

// ExitlessBaseline is the BENCH_pr7.json document: the deterministic
// per-benchmark comparison set plus the composed round-trip prices the
// cost model charges for one forwarded call on each transport.
type ExitlessBaseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`

	// Composed round trips from the cost model (cycles): the tier-3
	// ring must stay within 2x of the synchronous channel on both
	// socket placements — that is the pinned perf claim.
	SyncRoundTripSameSocket  uint64 `json:"sync_round_trip_same_socket"`
	SyncRoundTripCrossSocket uint64 `json:"sync_round_trip_cross_socket"`
	RingRoundTripSameSocket  uint64 `json:"ring_round_trip_same_socket"`
	RingRoundTripCrossSocket uint64 `json:"ring_round_trip_cross_socket"`

	Benchmarks []ExitlessComparison `json:"benchmarks"`
}

// CollectExitlessBaseline runs the seven-benchmark suite in WorldHRT with
// the tier-3 rings off and on and returns the comparison set. It enforces
// the suite's invariants before returning: every program's output matches
// its dark run, at least one program actually promoted onto the rings,
// exits.ring is zero everywhere, and the composed ring round trip is
// within 2x of the sync round trip on both socket placements.
func CollectExitlessBaseline() (*ExitlessBaseline, error) {
	cost := cycles.DefaultCostModel()
	b := &ExitlessBaseline{
		Note:                     "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestExitlessBaseline (or mvtool bench -suite exitless -json)",
		SyncRoundTripSameSocket:  uint64(cost.SyncRoundTrip(true)),
		SyncRoundTripCrossSocket: uint64(cost.SyncRoundTrip(false)),
		RingRoundTripSameSocket:  uint64(cost.RingRoundTrip(true)),
		RingRoundTripCrossSocket: uint64(cost.RingRoundTrip(false)),
	}
	if b.RingRoundTripSameSocket > 2*b.SyncRoundTripSameSocket {
		return nil, fmt.Errorf("bench: ring round trip %d exceeds 2x sync %d (same socket)",
			b.RingRoundTripSameSocket, b.SyncRoundTripSameSocket)
	}
	if b.RingRoundTripCrossSocket > 2*b.SyncRoundTripCrossSocket {
		return nil, fmt.Errorf("bench: ring round trip %d exceeds 2x sync %d (cross socket)",
			b.RingRoundTripCrossSocket, b.SyncRoundTripCrossSocket)
	}
	var ringCalls uint64
	for _, p := range Programs() {
		cmp, err := CompareExitless(p)
		if err != nil {
			return nil, err
		}
		if !cmp.OutputMatch {
			return nil, fmt.Errorf("bench: %s output diverged with exitless rings on", p.Name)
		}
		if cmp.RingExits != 0 {
			return nil, fmt.Errorf("bench: %s took %d VM exits on the ring path (want 0)",
				p.Name, cmp.RingExits)
		}
		ringCalls += cmp.RingCalls
		b.Benchmarks = append(b.Benchmarks, *cmp)
	}
	if ringCalls == 0 {
		return nil, fmt.Errorf("bench: no benchmark promoted onto the tier-3 rings")
	}
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr7.json.
func (b *ExitlessBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// FigureExitless regenerates the exitless comparison: the seven
// benchmarks in WorldHRT with the tier-3 rings off vs on, plus the
// composed transport round trips.
func FigureExitless() (*Table, error) {
	b, err := CollectExitlessBaseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Exitless figure: tier-3 polled SPSC rings, WorldHRT router on, rings off vs on",
		Header: []string{
			"Benchmark", "Cycles (dark)", "Cycles (rings)", "Speedup",
			"Fwd cycles (dark)", "Fwd cycles (rings)",
			"Ring calls", "Promo", "Ring exits",
		},
	}
	for _, c := range b.Benchmarks {
		t.AddRow(
			c.Program,
			fmt.Sprintf("%d", c.DarkCycles),
			fmt.Sprintf("%d", c.OnCycles),
			fmt.Sprintf("%.3fx", float64(c.DarkCycles)/float64(c.OnCycles)),
			fmt.Sprintf("%d", c.DarkForwardCycles),
			fmt.Sprintf("%d", c.OnForwardCycles),
			fmt.Sprintf("%d", c.RingCalls),
			fmt.Sprintf("%d/%d", c.RingPromotions, c.RingDemotions),
			fmt.Sprintf("%d", c.RingExits),
		)
	}
	t.AddNote("composed round trips: sync %d/%d cycles (same/cross socket), ring %d/%d — within 2x, zero VM exits",
		b.SyncRoundTripSameSocket, b.SyncRoundTripCrossSocket,
		b.RingRoundTripSameSocket, b.RingRoundTripCrossSocket)
	t.AddNote("steady-state ring path takes no exits: exits.ring stays 0; hypercalls appear only at ring setup/teardown")
	return t, nil
}
