package bench

import (
	"fmt"

	"multiverse/internal/aerokernel"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
)

// PrimitivesTable compares the Nautilus kernel primitives against their
// Linux equivalents — the section 2 claim that AeroKernel thread creation
// and events "outperform Linux by orders of magnitude" because there are
// no kernel/user boundaries to cross.
func PrimitivesTable(runs int) (*Table, error) {
	sys, err := newHybrid("primitives", 1)
	if err != nil {
		return nil, err
	}

	// ROS side: thread create+join and a futex-style wakeup.
	rosClk := sys.Main.Clock
	rosCreate := avgCycles(rosClk, runs, func() {
		t := sys.Proc.NewThread(sys.Kernel.BootCore())
		t.Start(rosClk, func(*ros.Thread) {})
		t.Join(sys.Main)
	})
	rosEvent := avgCycles(rosClk, runs, func() {
		sys.Proc.Syscall(sys.Main, linuxabi.Call{Num: linuxabi.SysFutex})
	})

	// AK side: measured from an HRT thread.
	var akCreate, akEvent cycles.Cycles
	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		clk := env.Clock()
		ak := sys.AK
		hrtCore := sys.Opts.HRTCores[0]
		akCreate = avgCycles(clk, runs, func() {
			t := ak.CreateThread(clk, hrtCore, aerokernel.Superposition{}, nil, nil)
			t.Start(func(*aerokernel.Thread) uint64 { return 0 })
			t.Join(clk)
		})
		ev := ak.NewEvent()
		self := hrtThreadOf(env)
		akEvent = avgCycles(clk, runs, func() {
			// Signal with no waiters models the uncontended wakeup the
			// Linux futex row also measures.
			ev.Signal(self)
		})
		return 0
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Nautilus primitives vs Linux equivalents (cycles, avg)",
		Header: []string{"Primitive", "Linux (ROS)", "AeroKernel (HRT)", "Speedup"},
	}
	t.AddRow("thread create+join",
		fmt.Sprintf("%d", uint64(rosCreate)),
		fmt.Sprintf("%d", uint64(akCreate)),
		fmt.Sprintf("%.0fx", float64(rosCreate)/float64(akCreate)))
	t.AddRow("event wakeup",
		fmt.Sprintf("%d", uint64(rosEvent)),
		fmt.Sprintf("%d", uint64(akEvent)),
		fmt.Sprintf("%.0fx", float64(rosEvent)/float64(akEvent)))
	t.AddNote("section 2: Nautilus primitives outperform Linux by orders of magnitude")
	return t, nil
}

// AblationSymbolCache measures the override wrapper with and without the
// symbol cache the paper suggests ("a symbol cache, much like that used in
// the ELF standard, could easily be added to improve lookup times").
func AblationSymbolCache(runs int) (*Table, error) {
	measure := func(useCache bool) (cycles.Cycles, error) {
		sys, err := newHybrid("ablate-symcache", 1)
		if err != nil {
			return 0, err
		}
		specs := []core.OverrideSpec{{Legacy: "sched_yield", AKSymbol: "nk_sched_yield"}}
		ovr := core.NewOverrideSet(specs, useCache)
		w, _ := ovr.Lookup("sched_yield")

		var per cycles.Cycles
		if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
			clk := env.Clock()
			t := hrtThreadOf(env)
			// Warm once so the cached variant is steady-state.
			if _, ierr := w.Invoke(t); ierr != nil {
				panic(ierr)
			}
			per = avgCycles(clk, runs, func() {
				if _, ierr := w.Invoke(t); ierr != nil {
					panic(ierr)
				}
			})
			return 0
		}); err != nil {
			return 0, err
		}
		return per, nil
	}
	uncached, err := measure(false)
	if err != nil {
		return nil, err
	}
	cached, err := measure(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: override symbol lookup, per-invocation vs cached",
		Header: []string{"Variant", "Cycles/invocation"},
	}
	t.AddRow("lookup every invocation (paper's implementation)", fmt.Sprintf("%d", uint64(uncached)))
	t.AddRow("symbol cache", fmt.Sprintf("%d", uint64(cached)))
	t.AddNote("lookup cost scales with the AeroKernel symbol table; the cache removes it after the first call")
	return t, nil
}

// hrtThreadOf digs the AK thread out of an HRT env (bench-only helper).
func hrtThreadOf(env core.Env) *aerokernel.Thread {
	type hrtCarrier interface{ HRTThreadForBench() *aerokernel.Thread }
	if c, ok := env.(hrtCarrier); ok {
		return c.HRTThreadForBench()
	}
	panic("bench: env is not an HRT env")
}

// AblationRemerge compares the paper's duplicate-fault re-merge heuristic
// against eagerly re-merging on every forwarded fault, over a synthetic
// fault-heavy workload.
func AblationRemerge() (*Table, error) {
	run := func(eager bool) (cycles.Cycles, int, uint64, error) {
		sys, err := newHybrid("ablate-remerge", 1)
		if err != nil {
			return 0, 0, 0, err
		}
		sys.AK.SetEagerRemerge(eager)
		start := sys.Main.Clock.Now()
		if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
			res := env.Syscall(linuxabi.Call{
				Num:  linuxabi.SysMmap,
				Args: [6]uint64{0, 256 * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
			})
			for off := uint64(0); off < 256*4096; off += 4096 {
				if terr := env.Touch(res.Ret+off, true); terr != nil {
					panic(terr)
				}
			}
			return 0
		}); err != nil {
			return 0, 0, 0, err
		}
		return sys.Main.Clock.Now() - start, sys.AK.RemergeCount(), sys.AK.ForwardedFaults(), nil
	}
	lazyC, lazyR, lazyF, err := run(false)
	if err != nil {
		return nil, err
	}
	eagerC, eagerR, eagerF, err := run(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: PML4 re-merge policy over a 256-page fault storm",
		Header: []string{"Policy", "Cycles", "Re-merges", "Forwarded faults"},
	}
	t.AddRow("duplicate-fault detection (paper)", fmt.Sprintf("%d", uint64(lazyC)), fmt.Sprintf("%d", lazyR), fmt.Sprintf("%d", lazyF))
	t.AddRow("eager re-merge per fault", fmt.Sprintf("%d", uint64(eagerC)), fmt.Sprintf("%d", eagerR), fmt.Sprintf("%d", eagerF))
	t.AddNote("re-merge copies %d PML4 entries; off the critical path under the paper's heuristic", 256)
	return t, nil
}

// AblationPinning compares touching a fresh region from the HRT (every
// page faults and forwards) against the paper's suggested alternative of
// pinning: the ROS side pre-faults the pages before the HRT uses them
// ("the runtime can pin memory before merging the address spaces").
func AblationPinning() (*Table, error) {
	const pages = 256
	run := func(pin bool) (cycles.Cycles, uint64, error) {
		sys, err := newHybrid("ablate-pinning", 1)
		if err != nil {
			return 0, 0, err
		}
		// The ROS side maps the region (and optionally pre-faults it).
		res := sys.Proc.Syscall(sys.Main, linuxabi.Call{
			Num:  linuxabi.SysMmap,
			Args: [6]uint64{0, pages * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
		})
		if !res.Ok() {
			return 0, 0, fmt.Errorf("mmap: %v", res.Err)
		}
		if pin {
			for off := uint64(0); off < pages*4096; off += 4096 {
				if errno := sys.Proc.Touch(sys.Main, res.Ret+off, true); errno != linuxabi.OK {
					return 0, 0, fmt.Errorf("pin touch: %v", errno)
				}
			}
		}
		var hrtCycles cycles.Cycles
		if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
			clk := env.Clock()
			start := clk.Now()
			for off := uint64(0); off < pages*4096; off += 4096 {
				if terr := env.Touch(res.Ret+off, true); terr != nil {
					panic(terr)
				}
			}
			hrtCycles = clk.Now() - start
			return 0
		}); err != nil {
			return 0, 0, err
		}
		return hrtCycles, sys.AK.ForwardedFaults(), nil
	}
	unpinnedC, unpinnedF, err := run(false)
	if err != nil {
		return nil, err
	}
	pinnedC, pinnedF, err := run(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: lower-half memory pinning vs fault forwarding (256-page region)",
		Header: []string{"Policy", "HRT cycles", "Forwarded faults"},
	}
	t.AddRow("demand faulting (forwarded)", fmt.Sprintf("%d", uint64(unpinnedC)), fmt.Sprintf("%d", unpinnedF))
	t.AddRow("ROS pre-pins pages", fmt.Sprintf("%d", uint64(pinnedC)), fmt.Sprintf("%d", pinnedF))
	t.AddNote("pinning removes the forwarded-fault round trips entirely (section 4.4)")
	return t, nil
}

// AblationSyncSyscalls compares syscall forwarding over the asynchronous
// event channel (the paper's implementation) against the post-merger
// synchronous memory-polling path with a dedicated ROS polling thread —
// section 4.3's "simple memory-based protocol ... without VMM
// intervention" applied to the syscall hot path.
func AblationSyncSyscalls(runs int) (*Table, error) {
	measure := func(sync bool) (cycles.Cycles, error) {
		fs, err := provisionFS(nil)
		if err != nil {
			return 0, err
		}
		fat, err := core.Build(core.BuildInput{
			App:        core.NewAppImage("ablate-syncsys"),
			AeroKernel: core.NewAeroKernelImage(),
		})
		if err != nil {
			return 0, err
		}
		sys, err := core.NewSystem(fat, core.Options{
			Hybrid:       true,
			FS:           fs,
			AppName:      "ablate-syncsys",
			SyncSyscalls: sync,
		})
		if err != nil {
			return 0, err
		}
		if err := sys.InitRuntime(); err != nil {
			return 0, err
		}
		var per cycles.Cycles
		if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
			clk := env.Clock()
			env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}) // warm
			per = avgCycles(clk, runs, func() {
				env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
			})
			return 0
		}); err != nil {
			return 0, err
		}
		return per, nil
	}
	async, err := measure(false)
	if err != nil {
		return nil, err
	}
	syncd, err := measure(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: syscall forwarding path (getpid round trip from the HRT)",
		Header: []string{"Path", "Cycles/call"},
	}
	t.AddRow("asynchronous event channel (paper)", fmt.Sprintf("%d", uint64(async)))
	t.AddRow("synchronous polling partner", fmt.Sprintf("%d", uint64(syncd)))
	t.AddNote("the sync path burns a dedicated ROS polling thread per group (section 4.3)")
	return t, nil
}

// AblationChannelKind compares invoking an HRT function via the
// asynchronous (hypercall + injection) path against the post-merger
// synchronous memory-polling channel.
func AblationChannelKind(runs int) (*Table, error) {
	sys, err := newHybrid("ablate-channel", 1)
	if err != nil {
		return nil, err
	}
	clk := sys.Main.Clock
	noopAddr := sys.AK.RegisterFunc("ablate_noop",
		func(t *aerokernel.Thread, args []uint64) uint64 { return args[0] })

	async := avgCycles(clk, runs, func() {
		if _, aerr := sys.HVM.AsyncCall(clk, noopAddr, 7); aerr != nil {
			panic(aerr)
		}
	})

	s, err := sys.HVM.SetupSync(clk, 0x7f44_0000_0000, sys.Kernel.BootCore(), sys.Opts.HRTCores[0])
	if err != nil {
		return nil, err
	}
	defer s.Close()
	pollClk := cycles.NewClock(clk.Now())
	go func() {
		for s.Poll(pollClk, func(fn uint64, args []uint64) uint64 { return args[0] }) {
		}
	}()
	sync := avgCycles(clk, runs, func() {
		if _, serr := s.Invoke(clk, noopAddr, 7); serr != nil {
			panic(serr)
		}
	})

	t := &Table{
		Title:  "Ablation: function invocation channel kind (same socket)",
		Header: []string{"Channel", "Cycles/call"},
	}
	t.AddRow("asynchronous (hypercall + injection)", fmt.Sprintf("%d", uint64(async)))
	t.AddRow("synchronous (memory polling)", fmt.Sprintf("%d", uint64(sync)))
	t.AddNote("the sync channel needs a dedicated polling HRT core but no VMM involvement per call")
	return t, nil
}
