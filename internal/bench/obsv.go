package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"multiverse/internal/core"
	"multiverse/internal/faults"
	"multiverse/internal/telemetry"
)

// obsvProgram is the workload the observability suite measures: fasta is
// the heaviest write mix in the suite, so it crosses the boundary often
// enough for the recorder, tracer, and SLO histograms to all be on hot
// paths.
const obsvProgram = "fasta"

// ObsvWallOverheadBound is the acceptance bar on armed wall-clock cost:
// the fully armed run (flight recorder + tracer + SLO histograms) may
// cost at most 10% more host time than the dark run.
const ObsvWallOverheadBound = 1.10

// ObsvRun is one configuration of the observability suite. Every field
// is deterministic — wall-clock timings are validated against the bound
// at collection time but deliberately kept out of the pinned document.
type ObsvRun struct {
	Config string `json:"config"`
	Cycles uint64 `json:"cycles"`

	// CyclesMatchDark / OutputMatchesDark are the zero-perturbation
	// property: arming every observability plane must leave virtual time
	// and program output byte-identical.
	CyclesMatchDark   bool `json:"cycles_match_dark"`
	OutputMatchesDark bool `json:"output_matches_dark"`

	// RecorderEvents is the flight recorder's lifetime event count (the
	// ring may have wrapped; this counts everything ever recorded).
	RecorderEvents uint64 `json:"recorder_events"`

	// SLOMetric is the busiest per-group, per-syscall SLO histogram of
	// the run, with its population and latency quantiles.
	SLOMetric string `json:"slo_metric"`
	SLOCount  uint64 `json:"slo_count"`
	SLOP50    uint64 `json:"slo_p50"`
	SLOP99    uint64 `json:"slo_p99"`
	SLOP999   uint64 `json:"slo_p999"`
}

// obsvConfigs are the suite's three configurations, in run order.
func obsvConfigs() []struct {
	Name   string
	Armed  bool // tracer + flight recorder
	Faults *faults.Plan
} {
	return []struct {
		Name   string
		Armed  bool
		Faults *faults.Plan
	}{
		// Dark: no recorder, no tracer — the reference for both virtual
		// cycles and wall time. SLO histograms stay on (they are part of
		// the always-on metrics registry).
		{"dark", false, nil},
		// Armed: flight recorder and tracer both live. The acceptance
		// bar: identical cycles and output, bounded wall overhead.
		{"armed", true, nil},
		// Faulted: scripted transport faults plus a partner death under
		// the armed plane, so the pinned recorder totals cover the whole
		// causal chain (doorbell, fault roll, retransmit, requeue,
		// respawn).
		{"faulted", true, &faults.Plan{Seed: 7, Rate: 0.02, KillRate: 0.001, RecoveryBudget: 64}},
	}
}

// busiestSLO returns the name and snapshot of the most-populated SLO
// histogram (ties break to the lexicographically first name, so the
// choice is deterministic).
func busiestSLO(s *telemetry.MetricsSnapshot) (string, *telemetry.HistogramSnapshot) {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		if strings.HasPrefix(name, telemetry.SLOPrefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var bestName string
	var best *telemetry.HistogramSnapshot
	for _, name := range names {
		h := s.Histograms[name]
		if best == nil || h.Count > best.Count {
			bestName, best = name, h
		}
	}
	return bestName, best
}

// runObsvConfig executes one configuration and reports the run plus its
// host wall time.
func runObsvConfig(prog Program, armed bool, plan *faults.Plan) (*RunResult, time.Duration, error) {
	cfg := RunConfig{Faults: plan}
	if armed {
		cfg.Tracer = telemetry.New()
	} else {
		cfg.NoRecorder = true
	}
	start := time.Now()
	res, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg)
	return res, time.Since(start), err
}

// RunObsvSuite executes the observability suite on the fasta benchmark:
// each configuration runs `reps` times (wall time takes the minimum to
// damp scheduler noise; every rep must agree on cycles) and the dark run
// anchors the zero-perturbation comparison. It returns the runs plus the
// armed-over-dark wall-clock ratio.
func RunObsvSuite(reps int) ([]ObsvRun, float64, error) {
	if reps < 1 {
		reps = 1
	}
	prog, ok := ProgramByName(obsvProgram)
	if !ok {
		return nil, 0, fmt.Errorf("bench: %s program missing from the suite", obsvProgram)
	}

	var runs []ObsvRun
	var darkCycles uint64
	var darkOut []byte
	wall := make(map[string]time.Duration)
	for _, cfg := range obsvConfigs() {
		var res *RunResult
		best := time.Duration(0)
		for rep := 0; rep < reps; rep++ {
			r, d, err := runObsvConfig(prog, cfg.Armed, cfg.Faults)
			if err != nil {
				return nil, 0, fmt.Errorf("bench: obsv config %s: %w", cfg.Name, err)
			}
			if res != nil && r.Cycles != res.Cycles {
				return nil, 0, fmt.Errorf("bench: obsv config %s: cycles diverged across reps (%d vs %d)",
					cfg.Name, r.Cycles, res.Cycles)
			}
			if best == 0 || d < best {
				best = d
			}
			res = r
		}
		wall[cfg.Name] = best
		if cfg.Name == "dark" {
			darkCycles = uint64(res.Cycles)
			darkOut = res.Output
		}
		sloName, slo := busiestSLO(res.Metrics.Snapshot())
		run := ObsvRun{
			Config:            cfg.Name,
			Cycles:            uint64(res.Cycles),
			CyclesMatchDark:   cfg.Faults == nil && uint64(res.Cycles) == darkCycles,
			OutputMatchesDark: bytes.Equal(res.Output, darkOut),
			RecorderEvents:    res.Recorder.Total(),
			SLOMetric:         sloName,
		}
		if slo != nil {
			run.SLOCount = slo.Count
			run.SLOP50 = slo.Quantile(0.50)
			run.SLOP99 = slo.Quantile(0.99)
			run.SLOP999 = slo.Quantile(0.999)
		}
		runs = append(runs, run)
	}
	ratio := float64(wall["armed"]) / float64(wall["dark"])
	return runs, ratio, nil
}

// ObsvBaseline is the BENCH_pr6.json document: the deterministic
// observability activity the regression tests pin. Wall-clock numbers are
// validated at collection time (WallOverheadOK) but the measured ratio
// itself stays out of the byte-pinned file.
type ObsvBaseline struct {
	// Note documents how to regenerate the file.
	Note    string `json:"note"`
	Program string `json:"program"`
	// WallOverheadOK asserts the armed run cost at most
	// ObsvWallOverheadBound times the dark run's host wall time
	// (minimum over the suite's reps). Collection fails when violated,
	// so the pinned value is always true.
	WallOverheadOK bool      `json:"wall_overhead_ok"`
	Runs           []ObsvRun `json:"runs"`
}

// CollectObsvBaseline runs the observability suite and validates its
// structural invariants before returning: the armed run is cycle- and
// output-identical to dark, the recorder actually saw traffic, and the
// armed wall-clock overhead stays under the bound.
func CollectObsvBaseline() (*ObsvBaseline, error) {
	const reps = 3
	runs, ratio, err := RunObsvSuite(reps)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]ObsvRun, len(runs))
	for _, r := range runs {
		byName[r.Config] = r
	}
	if a := byName["armed"]; !a.CyclesMatchDark || !a.OutputMatchesDark {
		return nil, fmt.Errorf("bench: armed observability perturbed the run (cycles match=%v output match=%v)",
			a.CyclesMatchDark, a.OutputMatchesDark)
	}
	if a := byName["armed"]; a.RecorderEvents == 0 || a.SLOCount == 0 {
		return nil, fmt.Errorf("bench: armed run recorded no events (recorder=%d slo=%d) — the planes never engaged",
			a.RecorderEvents, a.SLOCount)
	}
	if f := byName["faulted"]; !f.OutputMatchesDark || f.RecorderEvents <= byName["armed"].RecorderEvents {
		return nil, fmt.Errorf("bench: faulted run: output match=%v recorder=%d (armed=%d) — recovery activity missing from the ring",
			f.OutputMatchesDark, f.RecorderEvents, byName["armed"].RecorderEvents)
	}
	if ratio > ObsvWallOverheadBound {
		return nil, fmt.Errorf("bench: armed wall overhead %.1f%% exceeds the %.0f%% bound",
			100*(ratio-1), 100*(ObsvWallOverheadBound-1))
	}
	return &ObsvBaseline{
		Note:           "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestObsvBaseline (or mvtool bench -suite obsv -json)",
		Program:        obsvProgram,
		WallOverheadOK: true,
		Runs:           runs,
	}, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr6.json.
func (b *ObsvBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// FigureObsv regenerates the observability-overhead table: the three
// fasta configurations with their recorder/SLO activity and the
// zero-perturbation verdicts.
func FigureObsv() (*Table, error) {
	runs, ratio, err := RunObsvSuite(3)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Observability figure: armed tracing/recording on fasta, WorldHRT",
		Header: []string{
			"Config", "Cycles", "CyclesMatch", "Output", "RecEvents",
			"SLOMetric", "p50", "p99", "p99.9",
		},
	}
	for _, r := range runs {
		verdict := "identical"
		if !r.OutputMatchesDark {
			verdict = "DIVERGED"
		}
		cm := "yes"
		if !r.CyclesMatchDark {
			cm = "no"
			if r.Config == "faulted" {
				cm = "n/a (faulted)"
			}
		}
		t.AddRow(
			r.Config,
			fmt.Sprintf("%d", r.Cycles),
			cm,
			verdict,
			fmt.Sprintf("%d", r.RecorderEvents),
			r.SLOMetric,
			fmt.Sprintf("%d", r.SLOP50),
			fmt.Sprintf("%d", r.SLOP99),
			fmt.Sprintf("%d", r.SLOP999),
		)
	}
	t.AddNote("armed wall-clock overhead: %.1f%% (bound %.0f%%, min of 3 reps)", 100*(ratio-1), 100*(ObsvWallOverheadBound-1))
	t.AddNote("SLO metric shown is the busiest slo.g<group>.<syscall> histogram of each run")
	return t, nil
}
