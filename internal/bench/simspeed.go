package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
)

// The simspeed suite measures the simulator itself: how many simulated
// cycles the host executes per wall-clock second (the figure that ceilings
// the density and grid ambitions — ROADMAP open item 3). Virtual-cycle
// fields are deterministic and pinned exactly; wall-clock fields are
// host-dependent and carry a tolerance band in CI.
//
// The composite is fasta+HPCG: three hybrid fasta runs exercising the
// router tiers (plain, exitless rings, merger+scheduler) plus one
// scheduler-on HPCG solve. The four units share nothing — each builds its
// own machine, system, and runtime — so they are the canonical
// "independent execution groups" of the host-parallel mode: each unit runs
// on its own host goroutine, determinism preserved per unit and
// cross-checked byte-identical against the serial pass.

// simspeedReps is how many wall-clock repetitions the collection takes;
// the pinned figure is the best (min-wall) rep, which is the standard
// discipline for wall benchmarks on a noisy host.
const simspeedReps = 3

// prePRSimspeed is the simspeed of the composite measured at the commit
// before the raw-speed pass (serial, min of 3 reps, same collection
// procedure) on the reference CI host class. The pinned Speedup field is
// measured against it.
const prePRSimspeed = 4.80e8

// SimspeedUnit is one composite member: its deterministic virtual-cycle
// figure (exact) and its identity.
type SimspeedUnit struct {
	Name string `json:"name"`
	// Cycles is the end-to-end virtual time of the unit's main thread —
	// deterministic, pinned exactly.
	Cycles uint64 `json:"cycles"`
	// ForwardedSyscalls is the unit's boundary-crossing count — also
	// deterministic and pinned exactly.
	ForwardedSyscalls uint64 `json:"forwarded_syscalls"`
}

// SimspeedBaseline is the BENCH_pr8.json document.
type SimspeedBaseline struct {
	Note    string `json:"note"`
	ClockHz uint64 `json:"clock_hz"`
	Reps    int    `json:"reps"`

	// Units and TotalCycles are deterministic: exact in CI.
	Units       []SimspeedUnit `json:"units"`
	TotalCycles uint64         `json:"total_cycles"`

	// HostParallelMatch records that every unit's cycles and output were
	// byte-identical between the serial pass and the host-parallel passes.
	HostParallelMatch bool `json:"host_parallel_match"`

	// Wall-clock figures (CI tolerance ±20%): the serial pass and the
	// best host-parallel rep, and the headline simspeed figures.
	SerialHostSeconds   float64 `json:"serial_host_seconds"`
	ParallelHostSeconds float64 `json:"parallel_host_seconds"`
	// SerialSimspeed and Simspeed are simulated cycles per host-second,
	// serial and host-parallel respectively.
	SerialSimspeed float64 `json:"serial_simspeed"`
	Simspeed       float64 `json:"simspeed"`

	// PrePRSimspeed is the recorded pre-optimization baseline;
	// Speedup = Simspeed / PrePRSimspeed.
	PrePRSimspeed float64 `json:"pre_pr_simspeed"`
	Speedup       float64 `json:"speedup_vs_pre_pr"`
}

// simspeedResult is one executed unit: the pinned figures plus the output
// fingerprint used for the serial/parallel byte-identity cross-check.
type simspeedResult struct {
	unit   SimspeedUnit
	output []byte
}

// simspeedUnits is the composite definition. Each entry is fully
// self-contained and safe to run on its own host goroutine.
func simspeedUnits() []struct {
	name string
	run  func() (*simspeedResult, error)
} {
	progRun := func(name string, cfg RunConfig) func() (*simspeedResult, error) {
		return func() (*simspeedResult, error) {
			prog, ok := ProgramByName(name)
			if !ok {
				return nil, fmt.Errorf("bench: no program %q", name)
			}
			res, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg)
			if err != nil {
				return nil, err
			}
			return &simspeedResult{
				unit: SimspeedUnit{
					Cycles:            uint64(res.Cycles),
					ForwardedSyscalls: res.ForwardedSyscalls,
				},
				output: res.Output,
			}, nil
		}
	}
	return []struct {
		name string
		run  func() (*simspeedResult, error)
	}{
		{"fasta/router", progRun("fasta", RunConfig{Router: true})},
		{"fasta/exitless", progRun("fasta", RunConfig{Router: true, Exitless: true})},
		{"fasta-3/merger+sched", progRun("fasta-3", RunConfig{Router: true, Merger: true, Scheduler: true})},
		{"hpcg/sched-4c8w", func() (*simspeedResult, error) {
			run, err := runHPCGWorkload(true, 4, 8)
			if err != nil {
				return nil, err
			}
			// The solve has no stdout; the result vector digest plays the
			// role of the output fingerprint.
			var buf bytes.Buffer
			for _, x := range run.Result.X {
				fmt.Fprintf(&buf, "%.17g\n", x)
			}
			return &simspeedResult{
				unit: SimspeedUnit{
					Cycles:            uint64(run.End),
					ForwardedSyscalls: uint64(run.Result.SyncOps),
				},
				output: buf.Bytes(),
			}, nil
		}},
	}
}

// runSimspeedSerial runs the composite one unit after another on the
// calling goroutine, returning the per-unit results and the wall time.
func runSimspeedSerial() ([]*simspeedResult, time.Duration, error) {
	units := simspeedUnits()
	out := make([]*simspeedResult, len(units))
	start := time.Now()
	for i, u := range units {
		r, err := u.run()
		if err != nil {
			return nil, 0, fmt.Errorf("bench: simspeed unit %s: %w", u.name, err)
		}
		r.unit.Name = u.name
		out[i] = r
	}
	return out, time.Since(start), nil
}

// runSimspeedParallel runs every unit on its own host goroutine — the
// units share no channels or address spaces, so this is the host-parallel
// independent-group mode — and returns the per-unit results and the wall
// time of the whole composite.
func runSimspeedParallel() ([]*simspeedResult, time.Duration, error) {
	units := simspeedUnits()
	out := make([]*simspeedResult, len(units))
	errs := make([]error, len(units))
	start := time.Now()
	done := make(chan int, len(units))
	for i := range units {
		go func(i int) {
			r, err := units[i].run()
			if err == nil {
				r.unit.Name = units[i].name
			}
			out[i], errs[i] = r, err
			done <- i
		}(i)
	}
	for range units {
		<-done
	}
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("bench: simspeed unit %s (parallel): %w", units[i].name, err)
		}
	}
	return out, wall, nil
}

// CollectSimspeedBaseline measures the composite: one serial pass pins the
// virtual-cycle figures, then simspeedReps host-parallel passes measure
// wall clock, each cross-checked byte-identical against the serial pass.
func CollectSimspeedBaseline() (*SimspeedBaseline, error) {
	// Pin the host collector to a batch-throughput configuration for the
	// measured region. The composite churns short-lived simulation state
	// (heap-segment arenas, machine images), and at the default GOGC the
	// host collector's pacing — and therefore the measured wall time —
	// tracks whatever ambient heap the test process happens to carry.
	// Fixing the target makes simspeed comparable across runs and
	// environments; a forced collection first gives every run the same
	// starting heap.
	runtime.GC()
	prevGC := debug.SetGCPercent(300)
	defer debug.SetGCPercent(prevGC)

	serial, serialWall, err := runSimspeedSerial()
	if err != nil {
		return nil, err
	}

	b := &SimspeedBaseline{
		Note:    "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestSimspeedBaseline (or mvtool bench -suite simspeed -json); cycle fields exact, wall fields ±20%",
		ClockHz: uint64(cycles.ClockHz),
		Reps:    simspeedReps,
	}
	for _, r := range serial {
		b.Units = append(b.Units, r.unit)
		b.TotalCycles += r.unit.Cycles
	}

	bestParallel := time.Duration(0)
	b.HostParallelMatch = true
	for rep := 0; rep < simspeedReps; rep++ {
		par, wall, err := runSimspeedParallel()
		if err != nil {
			return nil, err
		}
		for i, r := range par {
			if r.unit != serial[i].unit {
				return nil, fmt.Errorf("bench: simspeed unit %s diverged under host parallelism: serial %+v, parallel %+v",
					r.unit.Name, serial[i].unit, r.unit)
			}
			if !bytes.Equal(r.output, serial[i].output) {
				return nil, fmt.Errorf("bench: simspeed unit %s output diverged under host parallelism", r.unit.Name)
			}
		}
		if bestParallel == 0 || wall < bestParallel {
			bestParallel = wall
		}
	}

	b.SerialHostSeconds = serialWall.Seconds()
	b.ParallelHostSeconds = bestParallel.Seconds()
	b.SerialSimspeed = float64(b.TotalCycles) / b.SerialHostSeconds
	b.Simspeed = float64(b.TotalCycles) / b.ParallelHostSeconds
	b.PrePRSimspeed = prePRSimspeed
	if prePRSimspeed > 0 {
		b.Speedup = b.Simspeed / prePRSimspeed
	}
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr8.json.
func (b *SimspeedBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareSimspeed checks a freshly collected baseline against the pinned
// document: deterministic fields (units, total cycles, parallel match)
// must be exact; wall-clock fields must agree within tol (0.2 = ±20%,
// applied as a ratio band in both directions).
func CompareSimspeed(pinned, fresh *SimspeedBaseline, tol float64) error {
	if fresh.TotalCycles != pinned.TotalCycles {
		return fmt.Errorf("simspeed: total cycles %d, pinned %d", fresh.TotalCycles, pinned.TotalCycles)
	}
	if len(fresh.Units) != len(pinned.Units) {
		return fmt.Errorf("simspeed: %d units, pinned %d", len(fresh.Units), len(pinned.Units))
	}
	for i, u := range fresh.Units {
		if u != pinned.Units[i] {
			return fmt.Errorf("simspeed: unit %s = %+v, pinned %+v", u.Name, u, pinned.Units[i])
		}
	}
	if !fresh.HostParallelMatch {
		return fmt.Errorf("simspeed: host-parallel pass diverged from serial")
	}
	wallOK := func(name string, got, want float64) error {
		if want <= 0 {
			return nil
		}
		if got < want*(1-tol) || got > want*(1+tol) {
			return fmt.Errorf("simspeed: %s = %.3g outside ±%.0f%% of pinned %.3g", name, got, tol*100, want)
		}
		return nil
	}
	if err := wallOK("simspeed", fresh.Simspeed, pinned.Simspeed); err != nil {
		return err
	}
	return wallOK("serial_simspeed", fresh.SerialSimspeed, pinned.SerialSimspeed)
}

// FigureSimspeed renders the simspeed composite as a table.
func FigureSimspeed() (*Table, error) {
	b, err := CollectSimspeedBaseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Simspeed figure: simulated cycles per host-second, fasta+HPCG composite",
		Header: []string{"Unit", "Cycles", "Fwd syscalls"},
	}
	for _, u := range b.Units {
		t.AddRow(u.Name, fmt.Sprintf("%d", u.Cycles), fmt.Sprintf("%d", u.ForwardedSyscalls))
	}
	t.AddNote("total %d simulated cycles; serial %.3f s (%.3g cyc/s), host-parallel %.3f s (%.3g cyc/s)",
		b.TotalCycles, b.SerialHostSeconds, b.SerialSimspeed, b.ParallelHostSeconds, b.Simspeed)
	if b.PrePRSimspeed > 0 {
		t.AddNote("pre-PR baseline %.3g cyc/s: %.2fx", b.PrePRSimspeed, b.Speedup)
	}
	return t, nil
}
