package bench

import (
	"encoding/json"
	"fmt"

	"multiverse/internal/core"
	"multiverse/internal/telemetry"
)

// MergerComparison is one benchmark's WorldHRT run with the incremental
// merger off vs on: end-to-end cycles, merger activity (merges and
// duplicate-fault re-merges), the PML4 entries actually copied, and how
// the TLB shootdowns and write-barrier faults were serviced.
type MergerComparison struct {
	Program string `json:"program"`

	OffCycles uint64 `json:"off_cycles"`
	OnCycles  uint64 `json:"on_cycles"`

	OffMerges   uint64 `json:"off_merges"`
	OnMerges    uint64 `json:"on_merges"`
	OffRemerges uint64 `json:"off_remerges"`
	OnRemerges  uint64 `json:"on_remerges"`

	// Entry copies: the PML4 entries charged across all merges. Off, every
	// merge copies the whole lower half; on, re-merges copy only slots
	// whose ROS generation stamp moved.
	OffEntriesCopied uint64 `json:"off_entries_copied"`
	OnEntriesCopied  uint64 `json:"on_entries_copied"`
	DeltaEntries     uint64 `json:"delta_entries"`

	// Shootdowns: full broadcasts vs per-slot targeted invalidations.
	OffBroadcasts uint64 `json:"off_broadcasts"`
	OnBroadcasts  uint64 `json:"on_broadcasts"`
	Targeted      uint64 `json:"targeted_shootdowns"`

	// LocalFaults is how many protection faults the fast lane resolved
	// HRT-locally instead of forwarding to the ROS.
	LocalFaults uint64 `json:"local_faults"`
}

// EntriesSaved is how many PML4-entry copies the delta merger avoided.
func (c *MergerComparison) EntriesSaved() uint64 {
	if c.OffEntriesCopied < c.OnEntriesCopied {
		return 0
	}
	return c.OffEntriesCopied - c.OnEntriesCopied
}

// CompareMerger runs one benchmark in WorldHRT twice — merger off, then
// merger on — and pairs the results. Both runs are deterministic, so the
// comparison is too.
func CompareMerger(prog Program) (*MergerComparison, error) {
	off, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{})
	if err != nil {
		return nil, err
	}
	on, err := RunBenchmarkCfg(prog, core.WorldHRT, RunConfig{Merger: true})
	if err != nil {
		return nil, err
	}
	return &MergerComparison{
		Program:          prog.Name,
		OffCycles:        uint64(off.Cycles),
		OnCycles:         uint64(on.Cycles),
		OffMerges:        uint64(off.Merges),
		OnMerges:         uint64(on.Merges),
		OffRemerges:      uint64(off.Remerges),
		OnRemerges:       uint64(on.Remerges),
		OffEntriesCopied: off.PML4EntriesCopied,
		OnEntriesCopied:  on.PML4EntriesCopied,
		DeltaEntries:     on.MergerDeltaEntries,
		OffBroadcasts:    off.MergerBroadcast,
		OnBroadcasts:     on.MergerBroadcast,
		Targeted:         on.MergerTargeted,
		LocalFaults:      on.LocalFaults,
	}, nil
}

// MergerBaseline is the BENCH_pr3.json document: the deterministic
// per-benchmark merger activity and cycle totals the regression tests pin.
type MergerBaseline struct {
	// Note documents how to regenerate the file.
	Note       string             `json:"note"`
	Benchmarks []MergerComparison `json:"benchmarks"`
}

// CollectMergerBaseline runs the seven-benchmark suite in WorldHRT with
// the incremental merger off and on and returns the comparison set.
func CollectMergerBaseline() (*MergerBaseline, error) {
	b := &MergerBaseline{
		Note: "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestMergerBaseline (or mvtool bench -json)",
	}
	for _, p := range Programs() {
		cmp, err := CompareMerger(p)
		if err != nil {
			return nil, err
		}
		b.Benchmarks = append(b.Benchmarks, *cmp)
	}
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr3.json.
func (b *MergerBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// FigureMerger regenerates the incremental-merger comparison: the seven
// benchmarks in WorldHRT with the merger off vs on (entry copies saved,
// shootdown mix, locally resolved faults, cycle totals).
func FigureMerger() (*Table, error) {
	t := &Table{
		Title: "Merger figure: incremental state superposition, WorldHRT merger off vs on",
		Header: []string{
			"Benchmark", "Cycles (off)", "Cycles (on)", "Speedup",
			"Merges", "Entries off/on", "Saved",
			"Bcast off/on", "Targeted", "Local faults",
		},
	}
	var last *MergerComparison
	for _, p := range Programs() {
		c, err := CompareMerger(p)
		if err != nil {
			return nil, err
		}
		last = c
		t.AddRow(
			c.Program,
			fmt.Sprintf("%d", c.OffCycles),
			fmt.Sprintf("%d", c.OnCycles),
			fmt.Sprintf("%.3fx", float64(c.OffCycles)/float64(c.OnCycles)),
			fmt.Sprintf("%d+%d", c.OnMerges, c.OnRemerges),
			fmt.Sprintf("%d/%d", c.OffEntriesCopied, c.OnEntriesCopied),
			fmt.Sprintf("%d", c.EntriesSaved()),
			fmt.Sprintf("%d/%d", c.OffBroadcasts, c.OnBroadcasts),
			fmt.Sprintf("%d", c.Targeted),
			fmt.Sprintf("%d", c.LocalFaults),
		)
	}
	if last != nil {
		t.AddNote("off re-merges copy all %d lower-half entries and broadcast a full flush; on, only generation-stamped deltas move and small deltas invalidate per slot", 256)
	}

	// Latency detail from an instrumented merger-on run of the fasta
	// benchmark (the heaviest write/GC mix in the suite).
	reg, err := mergerMetricsRun()
	if err != nil {
		return nil, err
	}
	latencyHistogramNotes(t, reg, "ak.merge.latency", "fault.local.latency")
	return t, nil
}

// mergerMetricsRun executes one merger-on run and returns its registry for
// the latency notes.
func mergerMetricsRun() (*telemetry.Registry, error) {
	for _, p := range Programs() {
		if p.Name != "fasta" {
			continue
		}
		res, err := RunBenchmarkCfg(p, core.WorldHRT, RunConfig{Merger: true})
		if err != nil {
			return nil, err
		}
		return res.Metrics, nil
	}
	return nil, fmt.Errorf("bench: fasta program missing from the suite")
}
