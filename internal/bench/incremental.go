package bench

import (
	"fmt"

	"multiverse/internal/core"
)

// FigureIncremental demonstrates the paper's whole point end to end: the
// automatic hybridization is "a starting point for HRT development" whose
// overhead the developer removes by porting the hotspot functionality into
// the AeroKernel. It runs the GC benchmark four ways:
//
//	Native                 — the original user-level baseline
//	Multiverse (initial)   — automatic hybridization, everything forwarded
//	Multiverse + AK memory — after porting the GC's mmap/mprotect/munmap
//	                         and fault handling into the AeroKernel
//
// The paper: "The next steps would be to port bottleneck functionality,
// for example the mmap(), mprotect(), and signal mechanisms the garbage
// collector depends on, to kernel mode via AeroKernel ... all of which
// can occur hundreds of times faster within the kernel."
func FigureIncremental(progName string) (*Table, error) {
	prog, ok := ProgramByName(progName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown program %q", progName)
	}

	type cfg struct {
		label    string
		world    core.World
		akMemory bool
	}
	cfgs := []cfg{
		{"Native", core.WorldNative, false},
		{"Multiverse (initial hybridization)", core.WorldHRT, false},
		{"Multiverse + AK memory port", core.WorldHRT, true},
	}

	t := &Table{
		Title:  fmt.Sprintf("Incremental porting payoff: %s", prog.Name),
		Header: []string{"Configuration", "Runtime (s)", "vs Native", "Fwd Syscalls", "Fwd Faults"},
	}
	var native float64
	for _, c := range cfgs {
		res, err := RunBenchmarkEx(prog, c.world, c.akMemory)
		if err != nil {
			return nil, err
		}
		if c.world == core.WorldNative {
			native = res.Seconds
		}
		t.AddRow(
			c.label,
			fmt.Sprintf("%.4f", res.Seconds),
			fmt.Sprintf("%.2fx", res.Seconds/native),
			fmt.Sprintf("%d", res.ForwardedSyscalls),
			fmt.Sprintf("%d", res.ForwardedFaults),
		)
	}
	t.AddNote("porting the GC's memory management into the AeroKernel removes most forwarding")
	return t, nil
}
