package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated table or figure, rendered as aligned text the
// way the paper's tables read.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}
