package bench

import (
	"fmt"
	"sort"

	"multiverse/internal/aerokernel"
	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// latencyHistogramNotes appends one note per recorded boundary-latency
// histogram so the figure carries a distribution, not just a mean —
// future performance work has a trajectory to compare against.
func latencyHistogramNotes(t *Table, reg *telemetry.Registry, names ...string) {
	for _, name := range names {
		h := reg.LatencyHistogram(name)
		if h.Count() == 0 {
			continue
		}
		t.AddNote("latency %s: n=%d mean=%d p50=%d p90=%d p99=%d cycles",
			name, h.Count(), uint64(h.Mean()),
			uint64(h.Quantile(0.50)), uint64(h.Quantile(0.90)), uint64(h.Quantile(0.99)))
	}
}

// avgCycles averages a measured callback over runs, using the clock delta
// around each call.
func avgCycles(clk *cycles.Clock, runs int, fn func()) cycles.Cycles {
	if runs <= 0 {
		runs = 1
	}
	var total cycles.Cycles
	for i := 0; i < runs; i++ {
		start := clk.Now()
		fn()
		total += clk.Now() - start
	}
	return total / cycles.Cycles(runs)
}

// newHybrid builds an initialized hybrid system with the HRT on hrtCore.
func newHybrid(name string, hrtCore machine.CoreID) (*core.System, error) {
	fs, err := provisionFS(nil)
	if err != nil {
		return nil, err
	}
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage(name),
		AeroKernel: core.NewAeroKernelImage(),
	})
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(fat, core.Options{
		Hybrid:   true,
		FS:       fs,
		AppName:  name,
		HRTCores: []machine.CoreID{hrtCore},
	})
	if err != nil {
		return nil, err
	}
	if err := sys.InitRuntime(); err != nil {
		return nil, err
	}
	return sys, nil
}

// Figure2 regenerates the round-trip latency table of ROS<->HRT
// interactions: address-space merger, asynchronous call, and synchronous
// calls on the same and on different sockets. The paper measured ~33 K,
// ~25 K, ~790, and ~1060 cycles respectively.
func Figure2(runs int) (*Table, error) {
	// ROS runs on core 0 (socket 0). Core 1 shares its socket; core 4 is
	// on the other socket.
	const sameSocketCore, crossSocketCore = machine.CoreID(1), machine.CoreID(4)

	sys, err := newHybrid("fig2", sameSocketCore)
	if err != nil {
		return nil, err
	}
	clk := sys.Main.Clock

	merger := avgCycles(clk, runs, func() {
		if merr := sys.HVM.MergeAddressSpace(clk, sys.Proc.CR3()); merr != nil {
			panic(merr)
		}
	})

	noopAddr := sys.AK.RegisterFunc("fig2_noop",
		func(t *aerokernel.Thread, args []uint64) uint64 { return 0 })
	async := avgCycles(clk, runs, func() {
		if _, aerr := sys.HVM.AsyncCall(clk, noopAddr); aerr != nil {
			panic(aerr)
		}
	})

	syncOn := func(hrtCore machine.CoreID) (cycles.Cycles, error) {
		s, serr := sys.HVM.SetupSync(clk, 0x7f33_0000_0000, sys.Kernel.BootCore(), hrtCore)
		if serr != nil {
			return 0, serr
		}
		defer s.Close()
		pollClk := cycles.NewClock(clk.Now())
		go func() {
			for s.Poll(pollClk, func(fn uint64, args []uint64) uint64 { return 0 }) {
			}
		}()
		return avgCycles(clk, runs, func() {
			if _, ierr := s.Invoke(clk, noopAddr); ierr != nil {
				panic(ierr)
			}
		}), nil
	}
	syncSame, err := syncOn(sameSocketCore)
	if err != nil {
		return nil, err
	}
	syncCross, err := syncOn(crossSocketCore)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 2: Round-trip latencies of ROS<->HRT interactions",
		Header: []string{"Item", "Cycles", "Time"},
	}
	row := func(name string, c cycles.Cycles) {
		t.AddRow(name, fmt.Sprintf("~%d", uint64(c)), fmt.Sprintf("%.1f ns", c.Nanoseconds()))
	}
	row("Address Space Merger", merger)
	row("Asynchronous Call", async)
	row("Synchronous Call (different socket)", syncCross)
	row("Synchronous Call (same socket)", syncSame)
	t.AddNote("paper: ~33K / ~25K / ~1060 / ~790 cycles")
	latencyHistogramNotes(t, sys.Metrics(),
		"hvm.merge_request.latency", "hvm.async_call.latency", "sync.invoke.latency")
	return t, nil
}

// fig9Calls lists the nine system calls of Figure 9 in the paper's order.
var fig9Calls = []string{
	"getpid", "gettimeofday", "fwrite", "stat", "read", "getcwd", "open", "close", "mmap",
}

// payloadMB is the buffer size for fwrite/read/mmap in Figure 9.
const payloadMB = 1 << 20

// measureFig9 measures each call's latency in one environment.
func measureFig9(env core.Env, runs int) (map[string]cycles.Cycles, error) {
	clk := env.Clock()
	out := make(map[string]cycles.Cycles, len(fig9Calls))

	// Provision: a 1 MiB source file and an output file, plus a touched
	// 1 MiB user buffer so steady-state measurements don't fold initial
	// demand paging in.
	mres := env.Syscall(linuxabi.Call{
		Num:  linuxabi.SysMmap,
		Args: [6]uint64{0, payloadMB, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
	})
	if !mres.Ok() {
		return nil, fmt.Errorf("fig9: buffer mmap: %v", mres.Err)
	}
	buf := mres.Ret
	for off := uint64(0); off < payloadMB; off += 4096 {
		if err := env.Touch(buf+off, true); err != nil {
			return nil, err
		}
	}
	payload := make([]byte, payloadMB)
	ofd := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/fig9/out.dat", Args: [6]uint64{0, linuxabi.OCreat | linuxabi.OWronly}})
	if !ofd.Ok() {
		return nil, fmt.Errorf("fig9: open out: %v", ofd.Err)
	}
	ifd := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/fig9/in.dat", Args: [6]uint64{0, linuxabi.ORdonly}})
	if !ifd.Ok() {
		return nil, fmt.Errorf("fig9: open in: %v", ifd.Err)
	}

	out["getpid"] = avgCycles(clk, runs, func() { _, _ = env.VDSO(linuxabi.SysGetpid) })
	out["gettimeofday"] = avgCycles(clk, runs, func() { _, _ = env.VDSO(linuxabi.SysGettimeofday) })
	out["fwrite"] = avgCycles(clk, runs, func() {
		env.Syscall(linuxabi.Call{Num: linuxabi.SysWrite, Args: [6]uint64{ofd.Ret, buf, payloadMB}, Data: payload})
	})
	out["stat"] = avgCycles(clk, runs, func() {
		env.Syscall(linuxabi.Call{Num: linuxabi.SysStat, Path: "/fig9/in.dat"})
	})
	out["read"] = avgCycles(clk, runs, func() {
		env.Syscall(linuxabi.Call{Num: linuxabi.SysLseek, Args: [6]uint64{ifd.Ret, 0, 0}})
		env.Syscall(linuxabi.Call{Num: linuxabi.SysRead, Args: [6]uint64{ifd.Ret, buf, payloadMB}})
	})
	out["getcwd"] = avgCycles(clk, runs, func() {
		env.Syscall(linuxabi.Call{Num: linuxabi.SysGetcwd})
	})
	out["open"] = avgCycles(clk, runs, func() {
		r := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/fig9/in.dat", Args: [6]uint64{0, linuxabi.ORdonly}})
		if r.Ok() {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{r.Ret}})
		}
	})
	// close is timed alone: the paired open happens outside the window.
	var closeTotal cycles.Cycles
	for i := 0; i < runs; i++ {
		r := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/fig9/in.dat", Args: [6]uint64{0, linuxabi.ORdonly}})
		start := clk.Now()
		env.Syscall(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{r.Ret}})
		closeTotal += clk.Now() - start
	}
	out["close"] = closeTotal / cycles.Cycles(runs)
	out["mmap"] = avgCycles(clk, runs, func() {
		r := env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysMmap,
			Args: [6]uint64{0, payloadMB, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
		})
		if r.Ok() {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysMunmap, Args: [6]uint64{r.Ret, payloadMB}})
		}
	})
	return out, nil
}

// Figure9 regenerates the system-call latency comparison, Virtual vs.
// Multiverse, for the nine calls (1 MiB payloads where applicable).
func Figure9(runs int) (*Table, error) {
	provision := func(sys *core.System) error {
		fs := sys.Kernel.FS()
		if err := fs.MkdirAll("/fig9"); err != nil {
			return err
		}
		return fs.WriteFile("/fig9/in.dat", make([]byte, payloadMB))
	}

	// Virtual baseline.
	fsV, err := provisionFS(nil)
	if err != nil {
		return nil, err
	}
	sysV, err := core.NewSystem(nil, core.Options{Virtual: true, FS: fsV, AppName: "fig9v"})
	if err != nil {
		return nil, err
	}
	if err := provision(sysV); err != nil {
		return nil, err
	}
	virt, err := measureFig9(sysV.NativeEnv(), runs)
	if err != nil {
		return nil, err
	}

	// Multiverse: measure from inside an HRT thread.
	sysM, err := newHybrid("fig9m", 1)
	if err != nil {
		return nil, err
	}
	if err := provision(sysM); err != nil {
		return nil, err
	}
	var mv map[string]cycles.Cycles
	var mvErr error
	if _, err := sysM.HRTInvokeFunc(func(env core.Env) uint64 {
		mv, mvErr = measureFig9(env, runs)
		return 0
	}); err != nil {
		return nil, err
	}
	if mvErr != nil {
		return nil, mvErr
	}

	t := &Table{
		Title:  "Figure 9: System call latency (cycles), Virtual vs. Multiverse (1 MiB payloads)",
		Header: []string{"Call", "Virtual", "Multiverse", "Ratio"},
	}
	for _, name := range fig9Calls {
		v, m := virt[name], mv[name]
		ratio := float64(m) / float64(v)
		t.AddRow(name, fmt.Sprintf("%d", uint64(v)), fmt.Sprintf("%d", uint64(m)), fmt.Sprintf("%.2fx", ratio))
	}
	t.AddNote("vdso calls (getpid, gettimeofday) run slightly faster under Multiverse (sparse HRT TLB)")
	t.AddNote("forwarded calls pay the ~25K-cycle event-channel round trip; copy-dominated 1 MiB calls amortize it")
	latencyHistogramNotes(t, sysM.Metrics(),
		"forward.syscall.latency", "forward.page-fault.latency", "sync.syscall.latency")
	return t, nil
}

// Figure10 regenerates the per-benchmark system-utilization table.
func Figure10() (*Table, error) {
	t := &Table{
		Title: "Figure 10: System utilization for Racket-stand-in benchmarks (Native)",
		Header: []string{
			"Benchmark", "System Calls", "Time (User/Sys) (s)",
			"Max Resident Set (Kb)", "Page Faults", "Context Switches",
		},
	}
	for _, p := range Programs() {
		res, err := RunBenchmark(p, core.WorldNative)
		if err != nil {
			return nil, err
		}
		st := res.Stats
		t.AddRow(
			p.Name,
			fmt.Sprintf("%d", st.TotalSyscalls()),
			fmt.Sprintf("%.3f/%.3f", st.UserCycles.Seconds(), st.SysCycles.Seconds()),
			fmt.Sprintf("%d", st.MaxRSSKb()),
			fmt.Sprintf("%d", st.MinorFaults+st.MajorFaults),
			fmt.Sprintf("%d", st.VoluntaryCS+st.InvoluntaryCS),
		)
	}
	t.AddNote("problem sizes scaled down from the paper's; relative profiles are the target")
	return t, nil
}

// Figure11 regenerates the syscall breakdown of runtime startup with no
// benchmark (heap creation dominates).
func Figure11() (*Table, error) {
	res, err := RunStartup(core.WorldNative)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 11: System calls in the runtime without any benchmark (startup)",
		Header: []string{"Call", "Count"},
	}
	sortedSyscallRows(t, res.Stats.Syscalls)
	return t, nil
}

// Figure12 regenerates the syscall breakdown for binary-tree-2 (GC-driven
// mmap/munmap/mprotect and signal traffic).
func Figure12() (*Table, error) {
	p, _ := ProgramByName("binary-tree-2")
	res, err := RunBenchmark(p, core.WorldNative)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12: System calls for a run of binary-tree-2",
		Header: []string{"Call", "Count"},
	}
	sortedSyscallRows(t, res.Stats.Syscalls)
	t.AddNote("rt_sigreturn counts SIGSEGV-driven GC write-barrier returns; %d barrier faults", res.BarrierFaults)
	return t, nil
}

// Figure13 regenerates the end-to-end benchmark comparison across the
// three worlds.
func Figure13() (*Table, error) {
	t := &Table{
		Title:  "Figure 13: Benchmark runtime (virtual seconds), Native vs Virtual vs Multiverse",
		Header: []string{"Benchmark", "Native", "Virtual", "Multiverse", "MV/Native", "Fwd Syscalls", "Fwd Faults"},
	}
	for _, p := range Programs() {
		var secs [3]float64
		var fwdS, fwdF uint64
		for i, w := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
			res, err := RunBenchmark(p, w)
			if err != nil {
				return nil, err
			}
			secs[i] = res.Seconds
			if w == core.WorldHRT {
				fwdS, fwdF = res.ForwardedSyscalls, res.ForwardedFaults
			}
		}
		t.AddRow(
			p.Name,
			fmt.Sprintf("%.4f", secs[0]),
			fmt.Sprintf("%.4f", secs[1]),
			fmt.Sprintf("%.4f", secs[2]),
			fmt.Sprintf("%.2fx", secs[2]/secs[0]),
			fmt.Sprintf("%d", fwdS),
			fmt.Sprintf("%d", fwdF),
		)
	}
	t.AddNote("expected shape: Native <= Virtual <= Multiverse; overhead tracks forwarded interactions")
	return t, nil
}

// sortedSyscallRows renders a syscall histogram sorted by count desc.
func sortedSyscallRows(t *Table, counts map[linuxabi.Sysno]uint64) {
	type kv struct {
		num linuxabi.Sysno
		n   uint64
	}
	var rows []kv
	for num, n := range counts {
		rows = append(rows, kv{num, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].num < rows[j].num
	})
	for _, r := range rows {
		t.AddRow(r.num.String(), fmt.Sprintf("%d", r.n))
	}
}
