package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
)

// The density suite measures the serverless-density multi-tenancy plane:
// how cheaply the system spawns execution groups (cold boot vs warm-pool
// reuse), what forwarded-syscall latency looks like with 1000 tenants
// live at once, and that admission control rejects deterministically at
// the cap and at the budget. Unlike the simspeed suite, every pinned
// figure here is virtual (cycles, counts, quantile edges) — nothing
// host-dependent goes into the JSON — so BENCH_pr9.json is byte-exact in
// CI. Host parallelism still gets exercised: the dense unit spawns its
// 1000 groups from denseSpawners concurrent host goroutines and the
// whole phase is repeated to prove the figures do not depend on the
// interleaving.

const (
	// densitySingleCalls is the forwarded-syscall sample of the
	// single-group reference unit.
	densitySingleCalls = 32
	// denseGroups is the concurrently-live group count of the dense unit
	// (the ISSUE's 1k-tenant floor).
	denseGroups = 1000
	// denseSpawners is how many host goroutines spawn the dense wave,
	// each with its own creator clock (denseGroups must divide evenly).
	denseSpawners = 8
	// denseCallsPerGroup is each dense group's forwarded-getpid count.
	denseCallsPerGroup = 8
	// denseWarmPool is the warm-pool bound of the dense unit: the second
	// wave draws entirely from it while the 744 excess exits drop.
	denseWarmPool = 256
	// denseWarmWave is the second spawn wave, sized to the pool so every
	// spawn is a warm hit.
	denseWarmWave = 256
)

// DensityBaseline is the BENCH_pr9.json document. Every field is
// deterministic: exact in CI under a byte-compare gate.
type DensityBaseline struct {
	Note    string `json:"note"`
	ClockHz uint64 `json:"clock_hz"`

	// Single-group reference: the latency yardstick the dense unit is
	// held against.
	SingleColdSpawnCycles uint64 `json:"single_cold_spawn_cycles"`
	SingleForwarded       uint64 `json:"single_forwarded_syscalls"`
	SingleP50Cycles       uint64 `json:"single_p50_cycles"`
	SingleP99Cycles       uint64 `json:"single_p99_cycles"`
	SingleP999Cycles      uint64 `json:"single_p999_cycles"`

	// Warm-vs-cold spawn cost, creator-observed, same system.
	ColdSpawnCycles uint64  `json:"cold_spawn_cycles"`
	WarmSpawnCycles uint64  `json:"warm_spawn_cycles"`
	WarmSpeedup     float64 `json:"warm_speedup"`

	// Dense unit: 1000 concurrently live groups spawned from
	// denseSpawners host goroutines, then a 256-group warm second wave.
	DenseGroups              int    `json:"dense_groups"`
	DensePeakLive            uint64 `json:"dense_peak_live"`
	DenseSpawnCyclesPerGroup uint64 `json:"dense_spawn_cycles_per_group"`
	DenseForwarded           uint64 `json:"dense_forwarded_syscalls"`
	DenseP50Cycles           uint64 `json:"dense_p50_cycles"`
	DenseP99Cycles           uint64 `json:"dense_p99_cycles"`
	DenseP999Cycles          uint64 `json:"dense_p999_cycles"`
	// DenseP999Ratio is dense p999 over single-group p999 — the ISSUE's
	// within-2x isolation criterion.
	DenseP999Ratio               float64 `json:"dense_p999_ratio_vs_single"`
	DenseWarmWave                int     `json:"dense_warm_wave"`
	DenseWarmSpawnCyclesPerGroup uint64  `json:"dense_warm_spawn_cycles_per_group"`
	DenseWarmHits                uint64  `json:"dense_warm_hits"`
	DenseWarmMisses              uint64  `json:"dense_warm_misses"`
	DenseWarmReturns             uint64  `json:"dense_warm_returns"`
	DenseWarmDrops               uint64  `json:"dense_warm_drops"`
	// DenseGroupsLeaked is the registry residue after every group is
	// joined — the map-leak regression pinned at zero.
	DenseGroupsLeaked int `json:"dense_groups_leaked"`
	// DenseRepeatMatch records that a second full dense run (fresh
	// system, same host-parallel spawners) produced identical figures.
	DenseRepeatMatch bool `json:"dense_repeat_match"`

	// Admission unit: MaxGroups cap.
	AdmissionCap      int    `json:"admission_cap"`
	AdmissionAttempts int    `json:"admission_attempts"`
	AdmissionRejected uint64 `json:"admission_rejected"`

	// Budget unit: per-tenant cycle and memory budgets at the boundary.
	BudgetCycles          uint64 `json:"budget_cycles"`
	BudgetMemBytes        uint64 `json:"budget_mem_bytes"`
	BudgetCallsIssued     int    `json:"budget_calls_issued"`
	BudgetCallsRejected   int    `json:"budget_calls_rejected"`
	BudgetMmapsIssued     int    `json:"budget_mmaps_issued"`
	BudgetMmapsRejected   int    `json:"budget_mmaps_rejected"`
	BudgetRejectedCounter uint64 `json:"budget_rejected_counter"`
}

// densitySystem assembles a fresh hybrid system for one density unit.
func densitySystem(cfg RunConfig) (*core.System, error) {
	fs, err := provisionFS(nil)
	if err != nil {
		return nil, err
	}
	return NewSystemForWorldCfg(core.WorldHRT, fs, "density", cfg)
}

// getpidFn returns a group body that issues n forwarded getpid calls.
func getpidFn(n int) func(core.Env) uint64 {
	return func(env core.Env) uint64 {
		for i := 0; i < n; i++ {
			if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
				return 1
			}
		}
		return 0
	}
}

// densitySingle pins the single-group reference: cold-spawn cost and the
// forwarded-syscall latency quantiles with the system to itself.
func densitySingle(b *DensityBaseline) error {
	sys, err := densitySystem(RunConfig{})
	if err != nil {
		return err
	}
	// Spawn on a private creator clock: Main's clock is the registered
	// ROS-signal clock, which the group's own exit ratchets — measuring
	// on it would race the group's completion against the read below.
	creator := cycles.NewClock(0)
	start := creator.Now()
	g, err := sys.SpawnGroup(creator, getpidFn(densitySingleCalls))
	if err != nil {
		return err
	}
	b.SingleColdSpawnCycles = uint64(creator.Now() - start)
	if code, jerr := g.Join(sys.Main); jerr != nil || code != 0 {
		return fmt.Errorf("density: single join: code %d err %v", code, jerr)
	}
	h := sys.Metrics().LatencyHistogram("forward.syscall.latency")
	b.SingleForwarded = h.Count()
	b.SingleP50Cycles = uint64(h.Quantile(0.50))
	b.SingleP99Cycles = uint64(h.Quantile(0.99))
	b.SingleP999Cycles = uint64(h.Quantile(0.999))
	return nil
}

// densityWarmCold pins the creator-observed spawn cost of a cold boot
// against a warm-pool reuse on the same system.
func densityWarmCold(b *DensityBaseline) error {
	sys, err := densitySystem(RunConfig{WarmPool: 4})
	if err != nil {
		return err
	}
	// A private creator clock, for the same reason as densitySingle:
	// only the spawn path itself may move it, so the deltas are exact.
	clk := cycles.NewClock(0)

	t0 := clk.Now()
	g1, err := sys.SpawnGroup(clk, getpidFn(0))
	if err != nil {
		return err
	}
	b.ColdSpawnCycles = uint64(clk.Now() - t0)
	if _, jerr := g1.Join(sys.Main); jerr != nil {
		return jerr
	}

	t1 := clk.Now()
	g2, err := sys.SpawnGroup(clk, getpidFn(0))
	if err != nil {
		return err
	}
	b.WarmSpawnCycles = uint64(clk.Now() - t1)
	if _, jerr := g2.Join(sys.Main); jerr != nil {
		return jerr
	}
	if hits := sys.Metrics().Counter("density.warm.hits").Value(); hits != 1 {
		return fmt.Errorf("density: warm-cold unit took %d warm hits, want 1", hits)
	}
	if b.WarmSpawnCycles == 0 {
		return fmt.Errorf("density: warm spawn measured zero cycles")
	}
	b.WarmSpeedup = float64(b.ColdSpawnCycles) / float64(b.WarmSpawnCycles)
	return nil
}

// denseFigures is one dense run's pinned numbers, comparable across the
// repeat run.
type denseFigures struct {
	PeakLive            uint64
	SpawnCyclesPerGroup uint64
	Forwarded           uint64
	P50, P99, P999      uint64
	WarmSpawnPerGroup   uint64
	WarmHits            uint64
	WarmMisses          uint64
	WarmReturns         uint64
	WarmDrops           uint64
	Leaked              int
}

// runDense executes one full dense phase: spawn denseGroups groups from
// denseSpawners concurrent host goroutines, hold them all live at once
// behind a gate, release and join everything, then spawn a warm second
// wave out of the pool.
func runDense() (*denseFigures, error) {
	sys, err := densitySystem(RunConfig{WarmPool: denseWarmPool})
	if err != nil {
		return nil, err
	}
	perSpawner := denseGroups / denseSpawners
	gate := make(chan struct{})
	arrived := make(chan struct{}, denseGroups)
	fn := func(env core.Env) uint64 {
		for i := 0; i < denseCallsPerGroup; i++ {
			if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
				return 1
			}
		}
		arrived <- struct{}{}
		<-gate
		return 0
	}

	groups := make([][]*core.ExecutionGroup, denseSpawners)
	clocks := make([]*cycles.Clock, denseSpawners)
	spawnCyc := make([]uint64, denseSpawners)
	errs := make([]error, denseSpawners)
	var wg sync.WaitGroup
	for si := 0; si < denseSpawners; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			clk := cycles.NewClock(0)
			clocks[si] = clk
			for k := 0; k < perSpawner; k++ {
				g, serr := sys.SpawnGroup(clk, fn)
				if serr != nil {
					errs[si] = serr
					return
				}
				groups[si] = append(groups[si], g)
			}
			spawnCyc[si] = uint64(clk.Now())
		}(si)
	}
	wg.Wait()
	for si, serr := range errs {
		if serr != nil {
			close(gate)
			return nil, fmt.Errorf("density: dense spawner %d: %w", si, serr)
		}
	}
	// Every group checks in after its syscalls and before the gate, so
	// after denseGroups arrivals all of them are live simultaneously.
	for i := 0; i < denseGroups; i++ {
		<-arrived
	}
	fig := &denseFigures{
		PeakLive: sys.Metrics().Gauge("density.groups.peak").Value(),
	}
	close(gate)

	// Join the wave, each spawner on its own clock. The per-spawner
	// spawn cost must agree across spawners — the spawn path charges
	// program structure, not host interleaving.
	for si := 0; si < denseSpawners; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for _, g := range groups[si] {
				if _, jerr := g.WaitExit(clocks[si]); jerr != nil {
					errs[si] = jerr
					return
				}
			}
		}(si)
	}
	wg.Wait()
	for si, jerr := range errs {
		if jerr != nil {
			return nil, fmt.Errorf("density: dense join %d: %w", si, jerr)
		}
	}
	for si := 1; si < denseSpawners; si++ {
		if spawnCyc[si] != spawnCyc[0] {
			return nil, fmt.Errorf("density: spawner %d spent %d cycles spawning, spawner 0 spent %d",
				si, spawnCyc[si], spawnCyc[0])
		}
	}
	fig.SpawnCyclesPerGroup = spawnCyc[0] / uint64(perSpawner)

	// Warm second wave: the pool holds denseWarmPool parked contexts, so
	// all denseWarmWave spawns are warm hits on a fresh creator clock.
	wclk := cycles.NewClock(0)
	wave := make([]*core.ExecutionGroup, 0, denseWarmWave)
	for i := 0; i < denseWarmWave; i++ {
		g, serr := sys.SpawnGroup(wclk, getpidFn(denseCallsPerGroup))
		if serr != nil {
			return nil, fmt.Errorf("density: warm wave spawn %d: %w", i, serr)
		}
		wave = append(wave, g)
	}
	warmSpawn := uint64(wclk.Now())
	for i, g := range wave {
		if code, jerr := g.WaitExit(wclk); jerr != nil || code != 0 {
			return nil, fmt.Errorf("density: warm wave join %d: code %d err %v", i, code, jerr)
		}
	}
	fig.WarmSpawnPerGroup = warmSpawn / denseWarmWave

	m := sys.Metrics()
	h := m.LatencyHistogram("forward.syscall.latency")
	fig.Forwarded = h.Count()
	fig.P50 = uint64(h.Quantile(0.50))
	fig.P99 = uint64(h.Quantile(0.99))
	fig.P999 = uint64(h.Quantile(0.999))
	fig.WarmHits = m.Counter("density.warm.hits").Value()
	fig.WarmMisses = m.Counter("density.warm.misses").Value()
	fig.WarmReturns = m.Counter("density.warm.returns").Value()
	fig.WarmDrops = m.Counter("density.warm.drops").Value()
	fig.Leaked = sys.GroupTableSize()
	return fig, nil
}

// densityDense runs the dense phase twice — figures must agree exactly,
// or host interleaving leaked into the virtual plane.
func densityDense(b *DensityBaseline) error {
	first, err := runDense()
	if err != nil {
		return err
	}
	second, err := runDense()
	if err != nil {
		return fmt.Errorf("density: repeat run: %w", err)
	}
	if *first != *second {
		return fmt.Errorf("density: dense figures diverged across runs: %+v vs %+v", first, second)
	}
	b.DenseGroups = denseGroups
	b.DensePeakLive = first.PeakLive
	b.DenseSpawnCyclesPerGroup = first.SpawnCyclesPerGroup
	b.DenseForwarded = first.Forwarded
	b.DenseP50Cycles = first.P50
	b.DenseP99Cycles = first.P99
	b.DenseP999Cycles = first.P999
	if b.SingleP999Cycles > 0 {
		b.DenseP999Ratio = float64(first.P999) / float64(b.SingleP999Cycles)
	}
	b.DenseWarmWave = denseWarmWave
	b.DenseWarmSpawnCyclesPerGroup = first.WarmSpawnPerGroup
	b.DenseWarmHits = first.WarmHits
	b.DenseWarmMisses = first.WarmMisses
	b.DenseWarmReturns = first.WarmReturns
	b.DenseWarmDrops = first.WarmDrops
	b.DenseGroupsLeaked = first.Leaked
	b.DenseRepeatMatch = true
	return nil
}

// densityAdmission pins the MaxGroups cap: with cap live groups held at
// the gate, further spawns fail with ErrAdmissionRejected.
func densityAdmission(b *DensityBaseline) error {
	const cap = 8
	const attempts = 10
	sys, err := densitySystem(RunConfig{MaxGroups: cap})
	if err != nil {
		return err
	}
	gate := make(chan struct{})
	arrived := make(chan struct{}, cap)
	held := make([]*core.ExecutionGroup, 0, cap)
	clk := cycles.NewClock(0)
	for i := 0; i < cap; i++ {
		g, serr := sys.SpawnGroup(clk, func(core.Env) uint64 {
			arrived <- struct{}{}
			<-gate
			return 0
		})
		if serr != nil {
			close(gate)
			return fmt.Errorf("density: admission spawn %d: %w", i, serr)
		}
		held = append(held, g)
	}
	for i := 0; i < cap; i++ {
		<-arrived
	}
	for i := cap; i < attempts; i++ {
		if _, serr := sys.SpawnGroup(clk, getpidFn(0)); !errors.Is(serr, core.ErrAdmissionRejected) {
			close(gate)
			return fmt.Errorf("density: over-cap spawn %d: got %v, want ErrAdmissionRejected", i, serr)
		}
	}
	close(gate)
	for i, g := range held {
		if _, jerr := g.WaitExit(clk); jerr != nil {
			return fmt.Errorf("density: admission join %d: %w", i, jerr)
		}
	}
	b.AdmissionCap = cap
	b.AdmissionAttempts = attempts
	b.AdmissionRejected = sys.Metrics().Counter("density.admission.rejected").Value()
	return nil
}

// densityBudget pins the boundary budgets: a cycle-budgeted tenant gets
// EAGAIN once its forwarded latency is spent, a memory-budgeted tenant
// gets ENOMEM past its reservation cap.
func densityBudget(b *DensityBaseline) error {
	budget := &core.TenantBudget{Cycles: 60_000, MemBytes: 8192}
	sys, err := densitySystem(RunConfig{TenantBudget: budget})
	if err != nil {
		return err
	}
	clk := cycles.NewClock(0)

	var callsOK, callsEAGAIN int
	gA, err := sys.SpawnGroup(clk, func(env core.Env) uint64 {
		for i := 0; i < 10; i++ {
			switch res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); res.Err {
			case linuxabi.OK:
				callsOK++
			case linuxabi.EAGAIN:
				callsEAGAIN++
			default:
				return 1
			}
		}
		return 0
	})
	if err != nil {
		return err
	}
	if code, jerr := gA.WaitExit(clk); jerr != nil || code != 0 {
		return fmt.Errorf("density: budget cycle group: code %d err %v", code, jerr)
	}

	var mmapsOK, mmapsENOMEM int
	gB, err := sys.SpawnGroup(clk, func(env core.Env) uint64 {
		for i := 0; i < 3; i++ {
			res := env.Syscall(linuxabi.Call{
				Num:  linuxabi.SysMmap,
				Args: [6]uint64{0, 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
			})
			switch res.Err {
			case linuxabi.OK:
				mmapsOK++
			case linuxabi.ENOMEM:
				mmapsENOMEM++
			default:
				return 1
			}
		}
		return 0
	})
	if err != nil {
		return err
	}
	if code, jerr := gB.WaitExit(clk); jerr != nil || code != 0 {
		return fmt.Errorf("density: budget mem group: code %d err %v", code, jerr)
	}

	b.BudgetCycles = uint64(budget.Cycles)
	b.BudgetMemBytes = budget.MemBytes
	b.BudgetCallsIssued = callsOK
	b.BudgetCallsRejected = callsEAGAIN
	b.BudgetMmapsIssued = mmapsOK
	b.BudgetMmapsRejected = mmapsENOMEM
	b.BudgetRejectedCounter = sys.Metrics().Counter("density.budget.rejected").Value()
	return nil
}

// CollectDensityBaseline runs the full suite and assembles the document.
func CollectDensityBaseline() (*DensityBaseline, error) {
	b := &DensityBaseline{
		Note:    "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestDensityBaseline (or mvtool bench -suite density -json); all fields deterministic, byte-exact in CI",
		ClockHz: uint64(cycles.ClockHz),
	}
	for _, unit := range []struct {
		name string
		run  func(*DensityBaseline) error
	}{
		{"single", densitySingle},
		{"warm-cold", densityWarmCold},
		{"dense", densityDense},
		{"admission", densityAdmission},
		{"budget", densityBudget},
	} {
		if err := unit.run(b); err != nil {
			return nil, fmt.Errorf("bench: density unit %s: %w", unit.name, err)
		}
	}
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr9.json.
func (b *DensityBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CompareDensity checks a fresh collection against the pinned document.
// Everything is deterministic, so the comparison is byte equality of the
// canonical encodings.
func CompareDensity(pinned, fresh *DensityBaseline) error {
	pb, err := pinned.MarshalIndent()
	if err != nil {
		return err
	}
	fb, err := fresh.MarshalIndent()
	if err != nil {
		return err
	}
	if !bytes.Equal(pb, fb) {
		return fmt.Errorf("density: baseline diverged from pinned document:\npinned:\n%s\nfresh:\n%s", pb, fb)
	}
	return nil
}

// FigureDensity renders the density suite as a table.
func FigureDensity() (*Table, error) {
	b, err := CollectDensityBaseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Density figure: 1k-tenant spawn cost, warm pool, and boundary latency",
		Header: []string{"Figure", "Value"},
	}
	t.AddRow("cold spawn (cycles, creator)", fmt.Sprintf("%d", b.ColdSpawnCycles))
	t.AddRow("warm spawn (cycles, creator)", fmt.Sprintf("%d", b.WarmSpawnCycles))
	t.AddRow("warm speedup", fmt.Sprintf("%.2fx", b.WarmSpeedup))
	t.AddRow("dense groups live at peak", fmt.Sprintf("%d", b.DensePeakLive))
	t.AddRow("dense spawn cycles/group", fmt.Sprintf("%d", b.DenseSpawnCyclesPerGroup))
	t.AddRow("dense fwd-syscall p50/p99/p999", fmt.Sprintf("%d / %d / %d",
		b.DenseP50Cycles, b.DenseP99Cycles, b.DenseP999Cycles))
	t.AddRow("dense p999 vs single group", fmt.Sprintf("%.2fx", b.DenseP999Ratio))
	t.AddRow("warm pool hits/misses", fmt.Sprintf("%d / %d", b.DenseWarmHits, b.DenseWarmMisses))
	t.AddRow("warm pool returns/drops", fmt.Sprintf("%d / %d", b.DenseWarmReturns, b.DenseWarmDrops))
	t.AddRow("admission rejections", fmt.Sprintf("%d of %d attempts (cap %d)",
		b.AdmissionRejected, b.AdmissionAttempts, b.AdmissionCap))
	t.AddRow("budget getpid issued/EAGAIN", fmt.Sprintf("%d / %d", b.BudgetCallsIssued, b.BudgetCallsRejected))
	t.AddRow("budget mmap issued/ENOMEM", fmt.Sprintf("%d / %d", b.BudgetMmapsIssued, b.BudgetMmapsRejected))
	t.AddNote("groups leaked after joins: %d; dense repeat match: %v",
		b.DenseGroupsLeaked, b.DenseRepeatMatch)
	return t, nil
}

// DensityWorkload drives a multi-tenant density load against an already
// built system on behalf of mvrun -groups: it spawns n execution groups
// from concurrent host spawners, holds them all live at once (so the
// density.groups.peak gauge reflects true density), each issuing a short
// forwarded-syscall burst, then releases and joins every group.
func DensityWorkload(sys *core.System, n int) error {
	if n <= 0 {
		return nil
	}
	spawners := denseSpawners
	if n < spawners {
		spawners = n
	}
	gate := make(chan struct{})
	arrived := make(chan struct{}, n)
	fn := func(env core.Env) uint64 {
		for i := 0; i < 4; i++ {
			if res := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid}); !res.Ok() {
				return 1
			}
		}
		arrived <- struct{}{}
		<-gate
		return 0
	}

	errs := make([]error, spawners)
	groups := make([][]*core.ExecutionGroup, spawners)
	clocks := make([]*cycles.Clock, spawners)
	var wg sync.WaitGroup
	for si := 0; si < spawners; si++ {
		share := n / spawners
		if si < n%spawners {
			share++
		}
		clocks[si] = cycles.NewClock(0)
		wg.Add(1)
		go func(si, share int) {
			defer wg.Done()
			for k := 0; k < share; k++ {
				g, err := sys.SpawnGroup(clocks[si], fn)
				if err != nil {
					errs[si] = err
					return
				}
				groups[si] = append(groups[si], g)
			}
		}(si, share)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		close(gate)
		// Joining the groups that did spawn keeps the system clean even
		// on a partial failure (e.g. an admission rejection mid-load).
		for si := range groups {
			for _, g := range groups[si] {
				g.WaitExit(clocks[si])
			}
		}
		return err
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	close(gate)
	for si := range groups {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for _, g := range groups[si] {
				if _, jerr := g.WaitExit(clocks[si]); jerr != nil {
					errs[si] = jerr
					return
				}
			}
		}(si)
	}
	wg.Wait()
	return errors.Join(errs...)
}
