package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// densityBaselinePath locates BENCH_pr9.json at the repository root.
func densityBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr9.json")
}

// TestDensityBaseline pins the density suite against BENCH_pr9.json.
// Every field of the document is deterministic (virtual cycles, counts,
// quantile bucket edges — no wall clock anywhere), so the comparison is
// exact; CI additionally byte-compares the regenerated file with cmp.
// Regenerate with MV_UPDATE_BASELINE=1 after an intentional cost-model
// or protocol change.
func TestDensityBaseline(t *testing.T) {
	got, err := CollectDensityBaseline()
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		blob, err := got.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(densityBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s (warm speedup %.2fx, dense p999 ratio %.2fx)",
			densityBaselinePath(), got.WarmSpeedup, got.DenseP999Ratio)
		return
	}

	want, err := os.ReadFile(densityBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	var pinned DensityBaseline
	if err := json.Unmarshal(want, &pinned); err != nil {
		t.Fatal(err)
	}
	if err := CompareDensity(&pinned, got); err != nil {
		t.Error(err)
	}

	// The ISSUE's acceptance criteria, asserted on the fresh collection
	// so a bad regeneration cannot pin a regression.
	if got.DensePeakLive < 1000 {
		t.Errorf("dense peak live = %d, want >= 1000", got.DensePeakLive)
	}
	if got.WarmSpeedup < 10 {
		t.Errorf("warm speedup = %.2fx, want >= 10x", got.WarmSpeedup)
	}
	if got.DenseP999Ratio > 2 {
		t.Errorf("dense p999 ratio vs single group = %.2fx, want <= 2x", got.DenseP999Ratio)
	}
	if got.DenseGroupsLeaked != 0 {
		t.Errorf("groups leaked after joins = %d, want 0", got.DenseGroupsLeaked)
	}
	if !got.DenseRepeatMatch {
		t.Error("dense repeat run diverged")
	}
}
