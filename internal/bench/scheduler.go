package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"multiverse/internal/core"
	"multiverse/internal/cycles"
	"multiverse/internal/legion"
	"multiverse/internal/places"
	"multiverse/internal/scheme"
)

// Scheduler-suite workload shape. The HPCG problem is sized so per-launch
// compute dwarfs the scheduler's own enqueue/steal/kick costs, and the core
// ladder sweeps the HRT partition from the single boot core up to eight.
const (
	schedHPCGN      = 8192
	schedHPCGIters  = 30
	schedWorkers    = 8
	schedPlaceCount = 8
	schedRampN      = 4096
	schedRampRounds = 4
	schedRampCores  = 4
)

// schedCoreLadder is the HRT-partition sizes of the scaling curve.
var schedCoreLadder = []int{1, 2, 4, 8}

// SchedulerPoint is one HRT-core-count sample of the scaling curve: the
// legion HPCG solve and the places fan-out, both with the scheduler on,
// plus the scheduler's own activity counters.
type SchedulerPoint struct {
	HRTCores int `json:"hrt_cores"`

	// HPCG: end-to-end virtual cycles of the whole run (boot + solve),
	// solve-only cycles, and the runtime's sync-op count.
	HPCGCycles      uint64 `json:"hpcg_cycles"`
	HPCGSolveCycles uint64 `json:"hpcg_solve_cycles"`
	HPCGSyncOps     uint64 `json:"hpcg_sync_ops"`

	// Scheduler activity during the HPCG run.
	Steals     uint64 `json:"steals"`
	Placements uint64 `json:"placements"`
	IdleHalts  uint64 `json:"idle_halts"`
	QueueDelay uint64 `json:"queue_delay_cycles"`

	// Places: end-to-end virtual cycles of a run spawning schedPlaceCount
	// places, and how many actually spawned.
	PlacesCycles  uint64 `json:"places_cycles"`
	PlacesSpawned uint64 `json:"places_spawned"`
}

// SchedulerBaseline is the BENCH_pr4.json document: the deterministic
// scheduler scaling curve plus the imbalanced-workload steal sample the
// regression tests pin.
type SchedulerBaseline struct {
	// Note documents how to regenerate the file.
	Note    string `json:"note"`
	Workers int    `json:"workers"`
	N       int    `json:"hpcg_n"`
	Iters   int    `json:"hpcg_iters"`
	Places  int    `json:"places"`

	Points []SchedulerPoint `json:"points"`

	// Imbalanced ramp workload on schedRampCores cores: per-index cost
	// grows linearly, so the statically dealt chunk runs finish at very
	// different times and idle workers must steal.
	ImbalancedCycles uint64 `json:"imbalanced_cycles"`
	ImbalancedSteals uint64 `json:"imbalanced_steals"`
}

// schedHPCGRun is one scheduler-on HPCG solve on a given HRT core count.
type schedHPCGRun struct {
	End    cycles.Cycles // end-to-end (main-thread) virtual time
	Result *legion.HPCGResult
	Steals int

	Placements uint64
	IdleHalts  uint64
	QueueDelay cycles.Cycles

	// Sched snapshots every "sched.*" counter, for determinism checks.
	Sched map[string]uint64
}

// runSchedulerHPCG boots a hybrid system with the scheduler enabled and
// cores HRT cores, runs the CG solve with schedWorkers scheduler-placed
// workers, and verifies the solution.
func runSchedulerHPCG(cores int) (*schedHPCGRun, error) {
	return runHPCGWorkload(true, cores, schedWorkers)
}

// runHPCGWorkload is the parameterized HPCG run behind both the scaling
// suite and mvrun's manual-experiment surface: scheduler knob, HRT
// partition size, and legion worker count are all free.
func runHPCGWorkload(scheduler bool, cores, workers int) (*schedHPCGRun, error) {
	fs, err := provisionFS(nil)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystemForWorldCfg(core.WorldHRT, fs, "hpcg-sched", RunConfig{
		Scheduler: scheduler, HRTCoreCount: cores,
	})
	if err != nil {
		return nil, err
	}
	out := &schedHPCGRun{}
	var runErr error
	_, err = sys.RunMain(func(env core.Env) uint64 {
		rt, rerr := legion.New(env, workers)
		if rerr != nil {
			runErr = rerr
			return 1
		}
		defer rt.Shutdown()
		res, rerr := legion.RunHPCG(rt, env, schedHPCGN, schedHPCGIters)
		if rerr != nil {
			runErr = rerr
			return 1
		}
		out.Result = res
		out.Steals = rt.Steals
		return 0
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, fmt.Errorf("bench: scheduler HPCG on %d cores: %w", cores, runErr)
	}
	if err := legion.VerifySolution(out.Result.X, 1e-6); err != nil {
		return nil, fmt.Errorf("bench: scheduler HPCG on %d cores: %w", cores, err)
	}
	m := sys.Metrics()
	out.End = sys.Main.Clock.Now()
	out.Placements = m.Counter("sched.place").Value()
	out.IdleHalts = m.Counter("sched.idle.halt").Value()
	out.QueueDelay = m.LatencyHistogram("sched.queue.delay").Sum()
	out.Sched = make(map[string]uint64)
	m.EachCounter(func(name string, v uint64) {
		if strings.HasPrefix(name, "sched.") {
			out.Sched[name] = v
		}
	})
	return out, nil
}

// HPCGWorkloadTable runs one HPCG solve in the HRT world with the given
// scheduler knob, HRT partition size, and legion worker count, and renders
// the result — the manual experiment `mvrun -bench hpcg -scheduler
// -hrtcores N -workers M` drives.
func HPCGWorkloadTable(scheduler bool, cores, workers int) (*Table, error) {
	run, err := runHPCGWorkload(scheduler, cores, workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("HPCG n=%d iters=%d workers=%d hrtcores=%d scheduler=%v",
			schedHPCGN, schedHPCGIters, workers, cores, scheduler),
		Header: []string{"End cycles", "Solve cycles", "Sync ops", "Steals", "Placements", "Halts", "Queue delay"},
	}
	t.AddRow(
		fmt.Sprintf("%d", uint64(run.End)),
		fmt.Sprintf("%d", uint64(run.Result.Cycles)),
		fmt.Sprintf("%d", run.Result.SyncOps),
		fmt.Sprintf("%d", run.Steals),
		fmt.Sprintf("%d", run.Placements),
		fmt.Sprintf("%d", run.IdleHalts),
		fmt.Sprintf("%d", uint64(run.QueueDelay)),
	)
	return t, nil
}

// placesSource builds the places scaling workload: spawn nplaces identical
// compute-bound places, then wait for and sum all of them.
func placesSource(nplaces int) string {
	child := `(define (burn n a) (if (= n 0) a (burn (- n 1) (+ a 1)))) (burn 40000 0)`
	var b strings.Builder
	b.WriteString("(begin\n")
	for i := 0; i < nplaces; i++ {
		fmt.Fprintf(&b, "  (define p%d (place-spawn %q))\n", i, child)
	}
	b.WriteString("  (+")
	for i := 0; i < nplaces; i++ {
		fmt.Fprintf(&b, " (place-wait p%d)", i)
	}
	b.WriteString("))\n")
	return b.String()
}

// runSchedulerPlaces boots a hybrid system with the scheduler enabled and
// runs the places fan-out, returning end-to-end virtual cycles and the
// places-spawned count.
func runSchedulerPlaces(cores, nplaces int) (cycles.Cycles, uint64, error) {
	fs, err := provisionFS(nil)
	if err != nil {
		return 0, 0, err
	}
	sys, err := NewSystemForWorldCfg(core.WorldHRT, fs, "places-sched", RunConfig{
		Scheduler: true, HRTCoreCount: cores,
	})
	if err != nil {
		return 0, 0, err
	}
	var runErr error
	_, err = sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := places.NewEngine(env)
		if eerr != nil {
			runErr = eerr
			return 1
		}
		want := fmt.Sprintf("%d", nplaces*40000)
		v, eerr := eng.RunString(placesSource(nplaces))
		if eerr != nil {
			runErr = eerr
			return 1
		}
		eng.Shutdown()
		if got := scheme.WriteString(v); got != want {
			runErr = fmt.Errorf("places result %s, want %s", got, want)
			return 1
		}
		return 0
	})
	if err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, fmt.Errorf("bench: scheduler places on %d cores: %w", cores, runErr)
	}
	return sys.Main.Clock.Now(), sys.Metrics().Counter("places.spawned").Value(), nil
}

// runImbalancedSteal runs the ramp workload — per-index cost grows with the
// index, so the contiguous chunk deal is lopsided and finishing workers
// must steal from the heavy end. Returns end-to-end cycles and steals.
func runImbalancedSteal() (cycles.Cycles, int, error) {
	fs, err := provisionFS(nil)
	if err != nil {
		return 0, 0, err
	}
	sys, err := NewSystemForWorldCfg(core.WorldHRT, fs, "ramp-sched", RunConfig{
		Scheduler: true, HRTCoreCount: schedRampCores,
	})
	if err != nil {
		return 0, 0, err
	}
	var steals int
	var runErr error
	_, err = sys.RunMain(func(env core.Env) uint64 {
		rt, rerr := legion.New(env, schedWorkers)
		if rerr != nil {
			runErr = rerr
			return 1
		}
		defer rt.Shutdown()
		for round := 0; round < schedRampRounds; round++ {
			rt.IndexLaunch(schedRampN, func(e core.Env, i int) {
				e.Compute(cycles.Cycles(20 + i/4))
			})
		}
		steals = rt.Steals
		return 0
	})
	if err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, fmt.Errorf("bench: imbalanced steal run: %w", runErr)
	}
	return sys.Main.Clock.Now(), steals, nil
}

// CollectSchedulerBaseline runs the scheduler scaling suite (HPCG + places
// over the HRT core ladder, plus the imbalanced steal sample) and returns
// the baseline document.
func CollectSchedulerBaseline() (*SchedulerBaseline, error) {
	b := &SchedulerBaseline{
		Note:    "regenerate: MV_UPDATE_BASELINE=1 go test ./internal/bench -run TestSchedulerBaseline (or mvtool bench -suite scheduler -json)",
		Workers: schedWorkers,
		N:       schedHPCGN,
		Iters:   schedHPCGIters,
		Places:  schedPlaceCount,
	}
	for _, cores := range schedCoreLadder {
		run, err := runSchedulerHPCG(cores)
		if err != nil {
			return nil, err
		}
		pc, spawned, err := runSchedulerPlaces(cores, schedPlaceCount)
		if err != nil {
			return nil, err
		}
		b.Points = append(b.Points, SchedulerPoint{
			HRTCores:        cores,
			HPCGCycles:      uint64(run.End),
			HPCGSolveCycles: uint64(run.Result.Cycles),
			HPCGSyncOps:     uint64(run.Result.SyncOps),
			Steals:          uint64(run.Steals),
			Placements:      run.Placements,
			IdleHalts:       run.IdleHalts,
			QueueDelay:      uint64(run.QueueDelay),
			PlacesCycles:    uint64(pc),
			PlacesSpawned:   spawned,
		})
	}
	ic, is, err := runImbalancedSteal()
	if err != nil {
		return nil, err
	}
	b.ImbalancedCycles = uint64(ic)
	b.ImbalancedSteals = uint64(is)
	return b, nil
}

// MarshalIndent renders the baseline as the canonical JSON byte stream
// written to BENCH_pr4.json.
func (b *SchedulerBaseline) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// FigureScheduler regenerates the scheduler scaling figure: HPCG and the
// places fan-out over 1/2/4/8 HRT cores with the work-stealing scheduler
// on, plus the imbalanced-workload steal sample.
func FigureScheduler() (*Table, error) {
	b, err := CollectSchedulerBaseline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf(
			"Scheduler figure: HPCG n=%d iters=%d workers=%d and %d places, per-core run queues + work stealing",
			b.N, b.Iters, b.Workers, b.Places),
		Header: []string{
			"HRT cores", "HPCG cycles", "Speedup", "Steals", "Halts",
			"Queue delay", "Places cycles", "Speedup",
		},
	}
	base := b.Points[0]
	for _, p := range b.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.HRTCores),
			fmt.Sprintf("%d", p.HPCGCycles),
			fmt.Sprintf("%.3fx", float64(base.HPCGCycles)/float64(p.HPCGCycles)),
			fmt.Sprintf("%d", p.Steals),
			fmt.Sprintf("%d", p.IdleHalts),
			fmt.Sprintf("%d", p.QueueDelay),
			fmt.Sprintf("%d", p.PlacesCycles),
			fmt.Sprintf("%.3fx", float64(base.PlacesCycles)/float64(p.PlacesCycles)),
		)
	}
	t.AddNote("imbalanced ramp (%d indices, cost ~ index, %d cores): %d cycles, %d steals",
		schedRampN, schedRampCores, b.ImbalancedCycles, b.ImbalancedSteals)
	t.AddNote("threads placed: %d; idle cores halt after spinning %d cycles and wake by IPI kick",
		b.Points[len(b.Points)-1].Placements, 20000)
	return t, nil
}
