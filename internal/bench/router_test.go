package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/hvm"
	"multiverse/internal/linuxabi"
	"multiverse/internal/telemetry"
)

// routedSystem builds a WorldHRT system with the router on.
func routedSystem(t *testing.T, name string, policy hvm.RouterPolicy) *core.System {
	t.Helper()
	fs, err := provisionFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemForWorldCfg(core.WorldHRT, fs, name, RunConfig{Router: true, RouterPolicy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRouterCacheInvalidation is the correctness core of the result cache:
// a cached stat must not survive a write to the file it describes. The
// sequence stat -> stat (hit) -> write -> stat must re-forward and report
// the fresh size.
func TestRouterCacheInvalidation(t *testing.T) {
	sys := routedSystem(t, "router-inval", hvm.RouterPolicy{})
	if err := sys.Kernel.FS().WriteFile("/data.txt", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()

	statSize := func(env core.Env) uint64 {
		res := env.Syscall(linuxabi.Call{Num: linuxabi.SysStat, Path: "/data.txt"})
		if !res.Ok() {
			t.Fatalf("stat failed: %v", res.Err)
		}
		st, ok := linuxabi.DecodeStat(res.Data)
		if !ok {
			t.Fatal("stat: undecodable result")
		}
		return st.Size
	}

	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		if n := statSize(env); n != 5 {
			t.Errorf("initial stat size = %d, want 5", n)
		}
		if hits := m.Counter("router.cache_hits").Value(); hits != 0 {
			t.Errorf("cache hits after first stat = %d, want 0", hits)
		}
		if n := statSize(env); n != 5 {
			t.Errorf("repeat stat size = %d, want 5", n)
		}
		if hits := m.Counter("router.cache_hits").Value(); hits != 1 {
			t.Errorf("cache hits after repeat stat = %d, want 1", hits)
		}

		// Mutate the file through the boundary: open, append, close.
		ores := env.Syscall(linuxabi.Call{Num: linuxabi.SysOpen, Path: "/data.txt",
			Args: [6]uint64{0, linuxabi.OWronly | linuxabi.OAppend}})
		if !ores.Ok() {
			t.Fatalf("open failed: %v", ores.Err)
		}
		wres := env.Syscall(linuxabi.Call{Num: linuxabi.SysWrite,
			Args: [6]uint64{ores.Ret, 0, 3}, Data: []byte("678")})
		if !wres.Ok() {
			t.Fatalf("write failed: %v", wres.Err)
		}
		env.Syscall(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{ores.Ret}})

		// The write's mutation hook must have dropped the cached stat:
		// this stat re-forwards and sees the new size.
		misses := m.Counter("router.cache_misses").Value()
		if n := statSize(env); n != 8 {
			t.Errorf("post-write stat size = %d, want 8 (stale cache?)", n)
		}
		if after := m.Counter("router.cache_misses").Value(); after != misses+1 {
			t.Errorf("post-write stat was not re-forwarded (misses %d -> %d)", misses, after)
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if inv := m.Counter("router.cache_invalidations").Value(); inv == 0 {
		t.Error("no cache invalidations recorded")
	}
}

// TestRouterLocalTier pins tier-0 semantics: getpid and uname answer from
// mirrored state with zero crossings and matching payloads.
func TestRouterLocalTier(t *testing.T) {
	sys := routedSystem(t, "router-local", hvm.RouterPolicy{})
	m := sys.Metrics()
	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		before := m.Counter("ak.forwarded_syscalls").Value()
		pres := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
		if !pres.Ok() || pres.Ret != uint64(sys.Proc.Pid()) {
			t.Errorf("local getpid = %d (%v), want %d", pres.Ret, pres.Err, sys.Proc.Pid())
		}
		ures := env.Syscall(linuxabi.Call{Num: linuxabi.SysUname})
		if !ures.Ok() || string(ures.Data) != "Linux multiverse-ros 2.6.38" {
			t.Errorf("local uname = %q (%v)", ures.Data, ures.Err)
		}
		if after := m.Counter("ak.forwarded_syscalls").Value(); after != before {
			t.Errorf("local tier crossed the boundary (%d -> %d forwards)", before, after)
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if hits := m.Counter("router.local_hits").Value(); hits != 2 {
		t.Errorf("local hits = %d, want 2", hits)
	}
}

// TestRouterPromotionDemotion drives the dynamic channel policy: a hot
// burst of forwards promotes the group to the synchronous channel; an
// idle gap demotes it on the next call.
func TestRouterPromotionDemotion(t *testing.T) {
	policy := hvm.RouterPolicy{PromoteCalls: 4, PromoteWindow: 10_000_000, DemoteIdle: 1_000_000}
	sys := routedSystem(t, "router-promo", policy)
	m := sys.Metrics()
	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		for i := 0; i < 6; i++ {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysIoctl})
		}
		if p := m.Counter("router.promotions").Value(); p != 1 {
			t.Errorf("promotions after burst = %d, want 1", p)
		}
		if s := m.Counter("sync.syscalls").Value(); s == 0 {
			t.Error("no calls crossed the promoted synchronous channel")
		}

		// Go idle past DemoteIdle, then call again: the router demotes
		// first and forwards the call over the async channel.
		async := m.Counter("router.forward.async").Value()
		env.Compute(policy.DemoteIdle + 1)
		env.Syscall(linuxabi.Call{Num: linuxabi.SysIoctl})
		if d := m.Counter("router.demotions").Value(); d != 1 {
			t.Errorf("demotions after idle gap = %d, want 1", d)
		}
		if after := m.Counter("router.forward.async").Value(); after != async+1 {
			t.Errorf("post-demotion call did not use the async channel (%d -> %d)", async, after)
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterRegression is the deterministic crossing-count and cycle
// assertion of the router acceptance criteria: on a write-heavy benchmark
// the router must eliminate crossings and cut forwarded-syscall cycles,
// and both configurations must reproduce exactly across runs.
func TestRouterRegression(t *testing.T) {
	p, _ := ProgramByName("fasta")
	a, err := CompareRouter(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareRouter(p)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("router comparison not deterministic:\n%+v\n%+v", a, b)
	}
	if a.OnCrossings >= a.OffCrossings {
		t.Errorf("router did not reduce crossings: off=%d on=%d", a.OffCrossings, a.OnCrossings)
	}
	if a.OnForwardCycles >= a.OffForwardCycles {
		t.Errorf("router did not reduce forwarded cycles: off=%d on=%d",
			a.OffForwardCycles, a.OnForwardCycles)
	}
	if a.OnCycles >= a.OffCycles {
		t.Errorf("router did not reduce end-to-end cycles: off=%d on=%d", a.OffCycles, a.OnCycles)
	}
	if a.LocalHits == 0 {
		t.Error("no tier-0 local hits on the benchmark run")
	}
	if a.Promotions == 0 {
		t.Error("write-heavy benchmark did not promote to the sync channel")
	}
}

// baselinePath locates BENCH_pr2.json at the repository root.
func baselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr2.json")
}

// TestBenchBaseline is the bench-baseline smoke check: the seven-benchmark
// WorldHRT suite (router off and on) must reproduce the virtual-cycle and
// crossing totals committed in BENCH_pr2.json exactly. Regenerate with
// MV_UPDATE_BASELINE=1 after an intentional cost-model or router change.
func TestBenchBaseline(t *testing.T) {
	got, err := CollectRouterBaseline()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	// The suite-wide acceptance invariants hold regardless of the pinned
	// numbers.
	var offX, onX, offFwd, onFwd uint64
	for _, c := range got.Benchmarks {
		offX += c.OffCrossings
		onX += c.OnCrossings
		offFwd += c.OffForwardCycles
		onFwd += c.OnForwardCycles
	}
	if onX >= offX {
		t.Errorf("suite: router did not reduce total crossings: off=%d on=%d", offX, onX)
	}
	if onFwd >= offFwd {
		t.Errorf("suite: router did not reduce total forwarded cycles: off=%d on=%d", offFwd, onFwd)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(baselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", baselinePath())
		return
	}
	want, err := os.ReadFile(baselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(blob)) {
		t.Errorf("benchmark baseline drifted from BENCH_pr2.json; regenerate with MV_UPDATE_BASELINE=1 if intentional")
	}
}

// TestRouterTraceEvents asserts promotion/demotion instant events land on
// the trace track and survive the Chrome export.
func TestRouterTraceEvents(t *testing.T) {
	tracer := telemetry.New()
	fs, err := provisionFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemForWorldCfg(core.WorldHRT, fs, "router-trace", RunConfig{
		Router:       true,
		RouterPolicy: hvm.RouterPolicy{PromoteCalls: 4, PromoteWindow: 10_000_000, DemoteIdle: 1_000_000},
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.HRTInvokeFunc(func(env core.Env) uint64 {
		for i := 0; i < 6; i++ {
			env.Syscall(linuxabi.Call{Num: linuxabi.SysIoctl})
		}
		env.Compute(2_000_000)
		env.Syscall(linuxabi.Call{Num: linuxabi.SysIoctl})
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"channel-promote"`, `"channel-demote"`, `"ph":"i"`} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}
