package bench

import (
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/ros"
	"multiverse/internal/scheme"
)

// faultTraceFor runs a program in the given world with fault tracing
// enabled and returns the kernel's fault trace.
func faultTraceFor(t *testing.T, world core.World, src string) []ros.FaultRecord {
	t.Helper()
	fs, err := provisionFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemForWorld(world, fs, "trace")
	if err != nil {
		t.Fatal(err)
	}
	sys.Proc.EnableFaultTrace(100_000)
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := scheme.NewEngine(env)
		if eerr != nil {
			t.Error(eerr)
			return 1
		}
		if _, eerr := eng.RunString(src); eerr != nil {
			t.Error(eerr)
			return 1
		}
		eng.Shutdown()
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return sys.Proc.FaultTrace()
}

// TestFaultTraceIdenticalNativeVsMultiverse is the paper's correctness
// criterion for Multiverse (section 4.4): the kernel-visible page-fault
// trace of an application must be identical whether it runs natively or
// hybridized — every HRT fault forwards, replicates, and lands in the
// same ROS fault path.
func TestFaultTraceIdenticalNativeVsMultiverse(t *testing.T) {
	const src = `
	(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
	(fib 14)
	; churn the heap with boxed flonums and conses so demand paging,
	; collection, and write barriers all appear in the trace
	(define (churn n acc)
	  (if (= n 0) acc (churn (- n 1) (cons (* 1.5 n) acc))))
	(define keep (list->vector (churn 20000 '())))
	(collect-garbage)
	(let loop ((i 0))
	  (when (< i 20000) (vector-set! keep i i) (loop (+ i 1))))
	(display (vector-ref keep 19999)) (newline)
	`
	native := faultTraceFor(t, core.WorldNative, src)
	multiverse := faultTraceFor(t, core.WorldHRT, src)

	if len(native) == 0 {
		t.Fatal("native run recorded no faults — trace not exercised")
	}
	if len(native) != len(multiverse) {
		t.Fatalf("trace lengths differ: native %d vs multiverse %d", len(native), len(multiverse))
	}
	for i := range native {
		if native[i] != multiverse[i] {
			t.Fatalf("trace diverges at %d: native %+v vs multiverse %+v", i, native[i], multiverse[i])
		}
	}
	t.Logf("fault traces identical: %d entries", len(native))
}
