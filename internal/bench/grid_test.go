package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"multiverse/internal/faults"
)

// gridBaselinePath locates BENCH_pr10.json at the repository root.
func gridBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr10.json")
}

// TestGridBaseline pins the grid suite against BENCH_pr10.json. Every
// field is deterministic (virtual cycles, counts — no wall clock), so
// the comparison is exact; CI additionally byte-compares the
// regenerated file with cmp. Regenerate with MV_UPDATE_BASELINE=1
// after an intentional cost-model or protocol change.
func TestGridBaseline(t *testing.T) {
	got, err := CollectGridBaseline()
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		blob, err := got.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(gridBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s (migrate latency %d cycles, restore p99 %d cycles)",
			gridBaselinePath(), got.MigrateLatencyCycles, got.KillRestoreP99Cycles)
		return
	}

	want, err := os.ReadFile(gridBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	var pinned GridBaseline
	if err := json.Unmarshal(want, &pinned); err != nil {
		t.Fatal(err)
	}
	if err := CompareGrid(&pinned, got); err != nil {
		t.Error(err)
	}

	// The ISSUE's acceptance criteria, asserted on the fresh collection
	// so a bad regeneration cannot pin a regression.
	if !got.MigrateOutputMatch || !got.MigrateCycleMatch {
		t.Errorf("migrated run not transparent: output match %v, cycle match %v",
			got.MigrateOutputMatch, got.MigrateCycleMatch)
	}
	if got.KillGroups != 1000 || got.KillVictimGroups != 8 {
		t.Errorf("kill scenario = %d groups / %d victims, want 1000 / 8",
			got.KillGroups, got.KillVictimGroups)
	}
	if got.KillRestored != got.KillVictimGroups {
		t.Errorf("restored %d victims, want %d", got.KillRestored, got.KillVictimGroups)
	}
	if !got.KillRepeatMatch {
		t.Error("node-kill repeat run diverged")
	}
	if !got.ChaosByteIdentical || got.ChaosSeeds < 3 {
		t.Errorf("chaos transparency: identical=%v across %d seeds, want true across >= 3",
			got.ChaosByteIdentical, got.ChaosSeeds)
	}
}

// TestGridChaosSeedsIdentical is the chaos determinism gate on its own
// (the CI race shard matches it by name): for each seed, a chaotic run
// — node kill plus the transport fault menu — must produce the exact
// summary bytes of a clean run, and a repeat chaotic run must reproduce
// itself.
func TestGridChaosSeedsIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		clean, err := RunGridChaos(gridChaosNodes, gridChaosGroups, faults.Plan{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d clean: %v", seed, err)
		}
		plan := faults.Plan{Seed: seed, Rate: gridChaosRate, KillRate: gridChaosRate / 10, NodeKills: 1}
		chaotic, err := RunGridChaos(gridChaosNodes, gridChaosGroups, plan)
		if err != nil {
			t.Fatalf("seed %d chaos: %v", seed, err)
		}
		if !bytes.Equal(clean, chaotic) {
			t.Errorf("seed %d: chaos summary diverged from clean:\nclean:\n%schaos:\n%s",
				seed, clean, chaotic)
		}
		again, err := RunGridChaos(gridChaosNodes, gridChaosGroups, plan)
		if err != nil {
			t.Fatalf("seed %d chaos repeat: %v", seed, err)
		}
		if !bytes.Equal(chaotic, again) {
			t.Errorf("seed %d: chaos run not self-reproducible", seed)
		}
	}
}
