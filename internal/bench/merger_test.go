package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMergerRegression is the deterministic acceptance check of the
// incremental merger: on a GC-heavy benchmark the delta path must charge
// fewer PML4-entry copies and fewer broadcast shootdowns than the fixed
// path, resolve write-barrier faults locally, and reproduce exactly
// across runs.
func TestMergerRegression(t *testing.T) {
	p, _ := ProgramByName("fasta")
	a, err := CompareMerger(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompareMerger(p)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("merger comparison not deterministic:\n%+v\n%+v", a, b)
	}
	if a.OnRemerges == 0 {
		t.Error("benchmark exercised no re-merges; the delta path was never taken")
	}
	if a.OnEntriesCopied >= a.OffEntriesCopied {
		t.Errorf("delta merger did not reduce PML4-entry copies: off=%d on=%d",
			a.OffEntriesCopied, a.OnEntriesCopied)
	}
	if a.OnBroadcasts >= a.OffBroadcasts {
		t.Errorf("merger did not reduce broadcast shootdowns: off=%d on=%d",
			a.OffBroadcasts, a.OnBroadcasts)
	}
	if a.Targeted == 0 {
		t.Error("no targeted shootdowns on the benchmark run")
	}
	if a.LocalFaults == 0 {
		t.Error("fault fast lane resolved nothing on a GC-heavy benchmark")
	}
	if a.OnCycles >= a.OffCycles {
		t.Errorf("merger did not reduce end-to-end cycles: off=%d on=%d", a.OffCycles, a.OnCycles)
	}
}

// mergerBaselinePath locates BENCH_pr3.json at the repository root.
func mergerBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr3.json")
}

// TestMergerBaseline pins the seven-benchmark WorldHRT suite (merger off
// and on) against BENCH_pr3.json exactly, and holds the suite-wide
// acceptance invariants regardless of the pinned numbers. Regenerate with
// MV_UPDATE_BASELINE=1 after an intentional cost-model or merger change.
func TestMergerBaseline(t *testing.T) {
	got, err := CollectMergerBaseline()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	var offEntries, onEntries, offBcast, onBcast uint64
	for _, c := range got.Benchmarks {
		offEntries += c.OffEntriesCopied
		onEntries += c.OnEntriesCopied
		offBcast += c.OffBroadcasts
		onBcast += c.OnBroadcasts
	}
	if onEntries >= offEntries {
		t.Errorf("suite: merger did not reduce charged PML4-entry copies: off=%d on=%d",
			offEntries, onEntries)
	}
	if onBcast >= offBcast {
		t.Errorf("suite: merger did not reduce broadcast shootdowns: off=%d on=%d",
			offBcast, onBcast)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(mergerBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", mergerBaselinePath())
		return
	}

	// Merger off is the same fixed-path configuration the router suite
	// runs with both knobs off, so the off cycles must agree byte for byte
	// with what BENCH_pr2.json pins.
	if pr2blob, err := os.ReadFile(baselinePath()); err == nil {
		var pr2 RouterBaseline
		if err := json.Unmarshal(pr2blob, &pr2); err != nil {
			t.Fatalf("parsing %s: %v", baselinePath(), err)
		}
		pr2off := make(map[string]uint64, len(pr2.Benchmarks))
		for _, c := range pr2.Benchmarks {
			pr2off[c.Program] = c.OffCycles
		}
		for _, c := range got.Benchmarks {
			if want, ok := pr2off[c.Program]; ok && c.OffCycles != want {
				t.Errorf("%s: merger-off cycles %d differ from BENCH_pr2.json off cycles %d (fixed path not byte-identical)",
					c.Program, c.OffCycles, want)
			}
		}
	}

	want, err := os.ReadFile(mergerBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(blob)) {
		t.Errorf("benchmark baseline drifted from BENCH_pr3.json; regenerate with MV_UPDATE_BASELINE=1 if intentional")
	}
}
