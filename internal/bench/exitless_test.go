package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/telemetry"
)

// exitlessBaselinePath locates BENCH_pr7.json at the repository root.
func exitlessBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr7.json")
}

// TestExitlessBaseline pins the exitless suite against BENCH_pr7.json
// exactly. The interesting invariants are enforced inside
// CollectExitlessBaseline itself: every program's output byte-identical
// to its dark (rings-off) run, at least one program promoted onto the
// rings, exits.ring zero everywhere, and the composed ring round trip
// within 2x of the sync round trip on both socket placements.
// Regenerate with MV_UPDATE_BASELINE=1 after an intentional cost-model
// or policy change.
func TestExitlessBaseline(t *testing.T) {
	got, err := CollectExitlessBaseline()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := got.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(exitlessBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s", exitlessBaselinePath())
		return
	}

	want, err := os.ReadFile(exitlessBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(blob)) {
		t.Errorf("benchmark baseline drifted from BENCH_pr7.json; regenerate with MV_UPDATE_BASELINE=1 if intentional")
	}
}

// TestExitlessPartnerKillRecovery is the PR's fault acceptance scenario:
// with the tier-3 rings armed and the partner-kill injector rolling, a
// kill must tear the rings down mid-run, the router must fall back to
// the hypercall-mode transports (the teardown hypercall is the recovery
// step), and — after the configured clean streak — re-promote onto
// fresh rings. The faulted run's output stays byte-identical to clean.
func TestExitlessPartnerKillRecovery(t *testing.T) {
	prog, ok := ProgramByName("fasta")
	if !ok {
		t.Fatal("fasta program missing")
	}
	// A tighter recovery policy than the default keeps the scenario
	// inside fasta's ~200 forwards: the hold clears after 16 clean
	// tier-2 calls and re-promotion needs a 32-call burst.
	pol := hvm.RouterPolicy{RingCalls: 32, RingWindow: 13_200_000, CleanStreak: 16}
	cfg := RunConfig{Router: true, Exitless: true, RouterPolicy: pol}
	clean, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.RingCalls == 0 {
		t.Fatal("clean run never promoted onto the rings — the kill scenario would be vacuous")
	}

	cfg.Faults = &faults.Plan{Seed: 7, KillRate: 0.05, RecoveryBudget: 64}
	faulted, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if kills := faulted.Metrics.Counter("ring.kills").Value(); kills == 0 {
		t.Fatal("no partner kill landed on the rings — raise KillRate")
	}
	if faulted.RingFaultDrops == 0 {
		t.Error("rings died but the router never recorded a fault demotion")
	}
	if faulted.RingRepromotions == 0 {
		t.Error("router never re-promoted onto fresh rings after hypercall-mode recovery")
	}
	// The fallback recovery is hypercall-mode by construction: teardown
	// is a hypercall, and the interim traffic crosses on tiers the VMM
	// mediates.
	if faulted.Metrics.Counter("exits.hypercall:ring-teardown").Value() == 0 {
		t.Error("ring teardown never charged its hypercall — recovery did not go through the VMM")
	}
	if !bytes.Equal(faulted.Output, clean.Output) {
		t.Error("partner-killed run diverged from clean output")
	}
}

// exitlessTierTransitions filters a run's flight-recorder events down to
// the router tier-transition codes, in order.
func exitlessTierTransitions(res *RunResult) []telemetry.Event {
	var out []telemetry.Event
	for _, e := range res.Recorder.Events() {
		switch e.Code {
		case telemetry.RecPromote, telemetry.RecDemote, telemetry.RecDemoteLossy,
			telemetry.RecRingPromote, telemetry.RecRingDemote,
			telemetry.RecRingDemoteLossy, telemetry.RecRingRepromote,
			telemetry.RecRingKill:
			out = append(out, e)
		}
	}
	return out
}

// TestExitlessTierTransitionsReplayable pins determinism at the policy
// layer: two runs of the same seeded faulty configuration must produce
// the identical sequence of tier transitions (promotions, demotions,
// ring kills, re-promotions) at identical virtual times.
func TestExitlessTierTransitionsReplayable(t *testing.T) {
	prog, ok := ProgramByName("fasta")
	if !ok {
		t.Fatal("fasta program missing")
	}
	for _, seed := range []uint64{1, 7, 42} {
		cfg := RunConfig{
			Router: true, Exitless: true,
			RouterPolicy: hvm.RouterPolicy{RingCalls: 32, RingWindow: 13_200_000, CleanStreak: 16},
			Faults:       &faults.Plan{Seed: seed, KillRate: 0.05, RecoveryBudget: 64},
		}
		a, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunBenchmarkCfg(prog, core.WorldHRT, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ta, tb := exitlessTierTransitions(a), exitlessTierTransitions(b)
		if len(ta) == 0 {
			t.Errorf("seed %d: no tier transitions recorded", seed)
		}
		if !reflect.DeepEqual(ta, tb) {
			t.Errorf("seed %d: tier-transition sequence not replayable:\nrun A: %v\nrun B: %v",
				seed, ta, tb)
		}
	}
}
