package bench

import (
	"strings"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/scheme"
)

// TestREPLInKernelMode is the paper's headline user experience: "the user
// sees precisely the same interface (an interactive REPL environment, for
// example) as out-of-the-box Racket" — while the engine runs as a kernel.
func TestREPLInKernelMode(t *testing.T) {
	input := "(+ 1 2)\n(define (sq x) (* x x))\n(sq 12)\n(car 5)\n(sq 3)\n"

	transcript := func(world core.World) string {
		fs, err := provisionFS(nil)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystemForWorld(world, fs, "repl")
		if err != nil {
			t.Fatal(err)
		}
		sys.Proc.SetStdin([]byte(input))
		if _, err := sys.RunMain(func(env core.Env) uint64 {
			eng, eerr := scheme.NewEngine(env)
			if eerr != nil {
				t.Error(eerr)
				return 1
			}
			if eerr := eng.REPL(); eerr != nil {
				t.Error(eerr)
				return 1
			}
			eng.Shutdown()
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		return string(sys.Proc.Stdout())
	}

	native := transcript(core.WorldNative)
	hybrid := transcript(core.WorldHRT)
	if native != hybrid {
		t.Fatalf("REPL transcripts differ:\nnative: %q\nhybrid: %q", native, hybrid)
	}
	for _, want := range []string{"> 3", "> 144", "> 9", "car: not a pair"} {
		if !strings.Contains(native, want) {
			t.Errorf("transcript missing %q:\n%s", want, native)
		}
	}
	// The error for (car 5) must not have killed the session: (sq 3)
	// still evaluated afterwards.
	if strings.Index(native, "car: not a pair") > strings.Index(native, "> 9") {
		t.Error("REPL did not continue past the error")
	}
}

// TestGoldenOutputs pins the deterministic full outputs of the two
// checksum-style benchmarks (identical across worlds by the other tests;
// identical across time by this one).
func TestGoldenOutputs(t *testing.T) {
	golden := map[string]string{
		"fannkuch-redux": "-18\nPfannkuchen(7) = 16\n", // checksum is enumeration-order dependent; ours uses Heap order
		"binary-tree-2": "stretch tree of depth 11\t check: 4095\n" +
			"1024\t trees of depth 4\t check: 31744\n" +
			"256\t trees of depth 6\t check: 32512\n" +
			"64\t trees of depth 8\t check: 32704\n" +
			"16\t trees of depth 10\t check: 32752\n" +
			"long lived tree of depth 10\t check: 2047\n",
	}
	for name, want := range golden {
		p, _ := ProgramByName(name)
		res, err := RunBenchmark(p, core.WorldNative)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Output) != want {
			t.Errorf("%s output:\n%q\nwant:\n%q", name, res.Output, want)
		}
	}
}
