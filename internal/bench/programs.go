// Package bench is the experiment harness: it regenerates every table and
// figure in the paper's evaluation section from the simulated systems.
//
// The workloads are the seven Computer Language Benchmarks Game programs
// the paper runs on hybridized Racket (Figure 10/13), written in the
// portable Scheme subset the stand-in runtime implements. Problem sizes
// are scaled down from the paper's (the simulated machine evaluates
// Scheme much more slowly than Racket's JIT), which DESIGN.md documents;
// the comparisons across Native/Virtual/Multiverse use identical sizes, so
// the figures' shapes are preserved.
package bench

// Program is one benchmark workload.
type Program struct {
	Name   string // the paper's benchmark name
	Source string // Scheme source
	// Check is a substring the program's output must contain (a
	// correctness gate for all three worlds).
	Check string
}

// Programs returns the seven benchmarks in the paper's Figure 10 order.
func Programs() []Program {
	return []Program{
		{Name: "fannkuch-redux", Source: fannkuchSrc, Check: "Pfannkuchen(7) = 16"},
		{Name: "binary-tree-2", Source: binaryTreesSrc, Check: "long lived tree of depth 10\t check: 2047"},
		{Name: "fasta", Source: fastaSrc, Check: ">THREE Homo sapiens frequency"},
		{Name: "fasta-3", Source: fasta3Src, Check: ">THREE Homo sapiens frequency"},
		{Name: "n-body", Source: nbodySrc, Check: "-0.169"},
		{Name: "spectral-norm", Source: spectralSrc, Check: "1.274"},
		{Name: "mandelbrot-2", Source: mandelbrotSrc, Check: "P4"},
	}
}

// ProgramByName finds a benchmark.
func ProgramByName(name string) (Program, bool) {
	for _, p := range Programs() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// binary-tree-2: the GC benchmark — builds and checks perfect binary
// trees, exactly the allocation/collection churn the paper highlights.
const binaryTreesSrc = `
(define (make-tree d)
  (if (= d 0)
      (cons #f #f)
      (cons (make-tree (- d 1)) (make-tree (- d 1)))))

(define (check-tree t)
  (if (car t)
      (+ 1 (check-tree (car t)) (check-tree (cdr t)))
      1))

(define min-depth 4)
(define max-depth 10)

(define (iterations d) (expt 2 (+ (- max-depth d) min-depth)))

(define stretch-depth (+ max-depth 1))
(display "stretch tree of depth ")
(display stretch-depth)
(display "\t check: ")
(display (check-tree (make-tree stretch-depth)))
(newline)

(define long-lived (make-tree max-depth))

(let loop ((d min-depth))
  (when (<= d max-depth)
    (let ((n (iterations d)))
      (let inner ((i 0) (sum 0))
        (if (= i n)
            (begin
              (display n) (display "\t trees of depth ") (display d)
              (display "\t check: ") (display sum) (newline))
            (inner (+ i 1) (+ sum (check-tree (make-tree d)))))))
    (loop (+ d 2))))

(display "long lived tree of depth ")
(display max-depth)
(display "\t check: ")
(display (check-tree long-lived))
(newline)
`

// fannkuch-redux: the permutation benchmark — in-place vector shuffling,
// almost no allocation, almost no OS interaction (the near-parity case in
// Figure 13).
const fannkuchSrc = `
(define n 7)
(define q (make-vector n 0))
(define maxflips 0)
(define checksum 0)
(define idx 0)

(define (count-flips a)
  (do ((i 0 (+ i 1))) ((= i n)) (vector-set! q i (vector-ref a i)))
  (let loop ((f 0))
    (let ((q0 (vector-ref q 0)))
      (if (= q0 0)
          f
          (begin
            (let rev ((lo 0) (hi q0))
              (when (< lo hi)
                (let ((t (vector-ref q lo)))
                  (vector-set! q lo (vector-ref q hi))
                  (vector-set! q hi t))
                (rev (+ lo 1) (- hi 1))))
            (loop (+ f 1)))))))

(define (visit a)
  (let ((flips (count-flips a)))
    (set! maxflips (max maxflips flips))
    (set! checksum (if (even? idx) (+ checksum flips) (- checksum flips)))
    (set! idx (+ idx 1))))

;; Heap's algorithm: in-place permutation enumeration, no allocation --
;; the benchmark stays compute-bound as in the paper.
(define (swap a i j)
  (let ((t (vector-ref a i)))
    (vector-set! a i (vector-ref a j))
    (vector-set! a j t)))

(define (heap-permute)
  (let ((a (make-vector n 0)) (c (make-vector n 0)))
    (do ((i 0 (+ i 1))) ((= i n)) (vector-set! a i i))
    (visit a)
    (let loop ((i 0))
      (when (< i n)
        (if (< (vector-ref c i) i)
            (begin
              (if (even? i) (swap a 0 i) (swap a (vector-ref c i) i))
              (visit a)
              (vector-set! c i (+ (vector-ref c i) 1))
              (loop 0))
            (begin
              (vector-set! c i 0)
              (loop (+ i 1))))))))

(heap-permute)
(display checksum) (newline)
(display "Pfannkuchen(") (display n) (display ") = ")
(display maxflips) (newline)
`

// fasta: the DNA generator — builds sequence lines and writes them out,
// dominated by write(2) traffic (the highest syscall count in Figure 10).
const fastaSrc = `
(define IM 139968)
(define IA 3877)
(define IC 29573)
(define seed 42)
(define (random-next max)
  (set! seed (modulo (+ (* seed IA) IC) IM))
  (/ (* max seed) IM))

(define alu (string-append
  "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA"
  "TCACCTGAGGTCAGGAGTTCGAGACCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACT"
  "AAAAATACAAAAATTAGCCGGGCGTGGTGGCGCGCGCCTGTAATCCCAGCTACTCGGGAG"
  "GCTGAGGCAGGAGAATCGCTTGAACCCGGGAGGCGGAGGTTGCAGTGAGCCGAGATCGCG"
  "CCACTGCACTCCAGCCTGGGCGACAGAGCGAGACTCCGTCTCAAAAA"))

(define iub-chars "acgtBDHKMNRSVWY")
(define iub-probs (vector 0.27 0.12 0.12 0.27 0.02 0.02 0.02 0.02
                          0.02 0.02 0.02 0.02 0.02 0.02 0.02))
(define homo-chars "acgt")
(define homo-probs (vector 0.3029549426680 0.1979883004921
                           0.1975473066391 0.3015094502008))

(define line-width 60)

(define (write-repeat header src n)
  (display header) (newline)
  (let ((len (string-length src)))
    (let loop ((n n) (pos 0))
      (when (> n 0)
        (let* ((chunk (min n line-width))
               (line (make-string chunk #\a)))
          (do ((i 0 (+ i 1))) ((= i chunk))
            (string-set! line i (string-ref src (modulo (+ pos i) len))))
          (display line) (newline)
          (loop (- n chunk) (modulo (+ pos chunk) len)))))))

(define (select-char chars probs r)
  (let loop ((i 0) (acc 0.0))
    (let ((acc (+ acc (vector-ref probs i))))
      (if (or (< r acc) (= i (- (vector-length probs) 1)))
          (string-ref chars i)
          (loop (+ i 1) acc)))))

(define (write-random header chars probs n)
  (display header) (newline)
  (let loop ((n n))
    (when (> n 0)
      (let* ((chunk (min n line-width))
             (line (make-string chunk #\a)))
        (do ((i 0 (+ i 1))) ((= i chunk))
          (string-set! line i
            (select-char chars probs (exact->inexact (random-next 1.0)))))
        (display line) (newline)
        (loop (- n chunk))))))

(define n 600)
(define src-bytes (file-size "/bench/fasta.scm"))
(when (not (= src-bytes (file-size "/bench/fasta.scm")))
  (error "fasta: unstable source size"))
(display "source bytes ") (display src-bytes) (newline)
(write-repeat ">ONE Homo sapiens alu" alu (* n 2))
(write-random ">TWO IUB ambiguity codes" iub-chars iub-probs (* n 3))
(write-random ">THREE Homo sapiens frequency" homo-chars homo-probs (* n 5))
`

// fasta-3: the optimized variant — precomputes a cumulative-probability
// lookup table so selection is a table scan over floats instead of
// recomputing the running sum (the paper runs both variants).
const fasta3Src = `
(define IM 139968)
(define IA 3877)
(define IC 29573)
(define seed 42)
(define (random-next)
  (set! seed (modulo (+ (* seed IA) IC) IM))
  seed)

(define alu (string-append
  "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA"
  "TCACCTGAGGTCAGGAGTTCGAGACCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACT"
  "AAAAATACAAAAATTAGCCGGGCGTGGTGGCGCGCGCCTGTAATCCCAGCTACTCGGGAG"
  "GCTGAGGCAGGAGAATCGCTTGAACCCGGGAGGCGGAGGTTGCAGTGAGCCGAGATCGCG"
  "CCACTGCACTCCAGCCTGGGCGACAGAGCGAGACTCCGTCTCAAAAA"))

;; cumulative lookup tables scaled to IM
(define (make-cumulative chars probs)
  (let* ((k (vector-length probs))
         (cum (make-vector k 0)))
    (let loop ((i 0) (acc 0.0))
      (if (= i k)
          cum
          (let ((acc (+ acc (vector-ref probs i))))
            (vector-set! cum i (inexact->exact (floor (* acc 139968.0))))
            (loop (+ i 1) acc))))))

(define iub-chars "acgtBDHKMNRSVWY")
(define iub-cum (make-cumulative iub-chars
  (vector 0.27 0.12 0.12 0.27 0.02 0.02 0.02 0.02
          0.02 0.02 0.02 0.02 0.02 0.02 0.02)))
(define homo-chars "acgt")
(define homo-cum (make-cumulative homo-chars
  (vector 0.3029549426680 0.1979883004921 0.1975473066391 0.3015094502008)))

(define line-width 60)

(define (lookup-char chars cum r)
  (let ((k (vector-length cum)))
    (let loop ((i 0))
      (if (or (= i (- k 1)) (< r (vector-ref cum i)))
          (string-ref chars i)
          (loop (+ i 1))))))

(define (write-repeat header src n)
  (display header) (newline)
  (let ((len (string-length src)))
    (let loop ((n n) (pos 0))
      (when (> n 0)
        (let* ((chunk (min n line-width))
               (line (make-string chunk #\a)))
          (do ((i 0 (+ i 1))) ((= i chunk))
            (string-set! line i (string-ref src (modulo (+ pos i) len))))
          (display line) (newline)
          (loop (- n chunk) (modulo (+ pos chunk) len)))))))

(define (write-random header chars cum n)
  (display header) (newline)
  (let loop ((n n))
    (when (> n 0)
      (let* ((chunk (min n line-width))
             (line (make-string chunk #\a)))
        (do ((i 0 (+ i 1))) ((= i chunk))
          (string-set! line i (lookup-char chars cum (random-next))))
        (display line) (newline)
        (loop (- n chunk))))))

(define n 900)
(write-repeat ">ONE Homo sapiens alu" alu (* n 2))
(write-random ">TWO IUB ambiguity codes" iub-chars iub-cum (* n 3))
(write-random ">THREE Homo sapiens frequency" homo-chars homo-cum (* n 5))
`

// n-body: the 5-body solar system simulation — float-heavy compute with
// steady allocation of boxed flonums (high fault counts in Figure 10).
const nbodySrc = `
(define pi 3.141592653589793)
(define solar-mass (* 4 pi pi))
(define days-per-year 365.24)

;; each body: #(x y z vx vy vz mass)
(define (body x y z vx vy vz m) (vector x y z vx vy vz m))

(define bodies
  (vector
   (body 0.0 0.0 0.0 0.0 0.0 0.0 solar-mass)
   (body 4.84143144246472090 -1.16032004402742839 -0.103622044471123109
         (* 0.00166007664274403694 days-per-year)
         (* 0.00769901118419740425 days-per-year)
         (* -0.0000690460016972063023 days-per-year)
         (* 0.000954791938424326609 solar-mass))
   (body 8.34336671824457987 4.12479856412430479 -0.403523417114321381
         (* -0.00276742510726862411 days-per-year)
         (* 0.00499852801234917238 days-per-year)
         (* 0.0000230417297573763929 days-per-year)
         (* 0.000285885980666130812 solar-mass))
   (body 12.8943695621391310 -15.1111514016986312 -0.223307578892655734
         (* 0.00296460137564761618 days-per-year)
         (* 0.00237847173959480950 days-per-year)
         (* -0.0000296589568540237556 days-per-year)
         (* 0.0000436624404335156298 solar-mass))
   (body 15.3796971148509165 -25.9193146099879641 0.179258772950371181
         (* 0.00268067772490389322 days-per-year)
         (* 0.00162824170038242295 days-per-year)
         (* -0.0000951592254519715870 days-per-year)
         (* 0.0000515138902046611451 solar-mass))))

(define nbodies (vector-length bodies))

(define (offset-momentum)
  (let loop ((i 0) (px 0.0) (py 0.0) (pz 0.0))
    (if (= i nbodies)
        (let ((sun (vector-ref bodies 0)))
          (vector-set! sun 3 (/ (- 0.0 px) solar-mass))
          (vector-set! sun 4 (/ (- 0.0 py) solar-mass))
          (vector-set! sun 5 (/ (- 0.0 pz) solar-mass)))
        (let ((b (vector-ref bodies i)))
          (loop (+ i 1)
                (+ px (* (vector-ref b 3) (vector-ref b 6)))
                (+ py (* (vector-ref b 4) (vector-ref b 6)))
                (+ pz (* (vector-ref b 5) (vector-ref b 6))))))))

(define (energy)
  (let loop ((i 0) (e 0.0))
    (if (= i nbodies)
        e
        (let* ((bi (vector-ref bodies i))
               (e (+ e (* 0.5 (vector-ref bi 6)
                          (+ (* (vector-ref bi 3) (vector-ref bi 3))
                             (* (vector-ref bi 4) (vector-ref bi 4))
                             (* (vector-ref bi 5) (vector-ref bi 5)))))))
          (let inner ((j (+ i 1)) (e e))
            (if (= j nbodies)
                (loop (+ i 1) e)
                (let* ((bj (vector-ref bodies j))
                       (dx (- (vector-ref bi 0) (vector-ref bj 0)))
                       (dy (- (vector-ref bi 1) (vector-ref bj 1)))
                       (dz (- (vector-ref bi 2) (vector-ref bj 2)))
                       (dist (sqrt (+ (* dx dx) (* dy dy) (* dz dz)))))
                  (inner (+ j 1)
                         (- e (/ (* (vector-ref bi 6) (vector-ref bj 6))
                                 dist))))))))))

(define (advance dt)
  (do ((i 0 (+ i 1))) ((= i nbodies))
    (let ((bi (vector-ref bodies i)))
      (do ((j (+ i 1) (+ j 1))) ((= j nbodies))
        (let* ((bj (vector-ref bodies j))
               (dx (- (vector-ref bi 0) (vector-ref bj 0)))
               (dy (- (vector-ref bi 1) (vector-ref bj 1)))
               (dz (- (vector-ref bi 2) (vector-ref bj 2)))
               (d2 (+ (* dx dx) (* dy dy) (* dz dz)))
               (mag (/ dt (* d2 (sqrt d2)))))
          (vector-set! bi 3 (- (vector-ref bi 3) (* dx (vector-ref bj 6) mag)))
          (vector-set! bi 4 (- (vector-ref bi 4) (* dy (vector-ref bj 6) mag)))
          (vector-set! bi 5 (- (vector-ref bi 5) (* dz (vector-ref bj 6) mag)))
          (vector-set! bj 3 (+ (vector-ref bj 3) (* dx (vector-ref bi 6) mag)))
          (vector-set! bj 4 (+ (vector-ref bj 4) (* dy (vector-ref bi 6) mag)))
          (vector-set! bj 5 (+ (vector-ref bj 5) (* dz (vector-ref bi 6) mag)))))))
  (do ((i 0 (+ i 1))) ((= i nbodies))
    (let ((b (vector-ref bodies i)))
      (vector-set! b 0 (+ (vector-ref b 0) (* dt (vector-ref b 3))))
      (vector-set! b 1 (+ (vector-ref b 1) (* dt (vector-ref b 4))))
      (vector-set! b 2 (+ (vector-ref b 2) (* dt (vector-ref b 5)))))))

(offset-momentum)
(display (energy)) (newline)
(do ((i 0 (+ i 1))) ((= i 600)) (advance 0.01))
(display (energy)) (newline)
`

// spectral-norm: power iteration over the implicit infinite matrix (the
// heaviest fault count in Figure 10).
const spectralSrc = `
(define (A i j)
  (/ 1.0 (+ (* (+ i j) (+ i j 1) 0.5) i 1)))

(define (mul-Av n v out transpose)
  (do ((i 0 (+ i 1))) ((= i n))
    (let loop ((j 0) (sum 0.0))
      (if (= j n)
          (vector-set! out i sum)
          (loop (+ j 1)
                (+ sum (* (if transpose (A j i) (A i j))
                          (vector-ref v j))))))))

(define (mul-AtAv n v out tmp)
  (mul-Av n v tmp #f)
  (mul-Av n tmp out #t))

(define n 40)
(define u (make-vector n 1.0))
(define v (make-vector n 0.0))
(define tmp (make-vector n 0.0))

(do ((i 0 (+ i 1))) ((= i 10))
  (mul-AtAv n u v tmp)
  (mul-AtAv n v u tmp))

(let loop ((i 0) (vBv 0.0) (vv 0.0))
  (if (= i n)
      (begin (display (sqrt (/ vBv vv))) (newline))
      (loop (+ i 1)
            (+ vBv (* (vector-ref u i) (vector-ref v i)))
            (+ vv (* (vector-ref v i) (vector-ref v i))))))
`

// mandelbrot-2: the Mandelbrot set as a PBM bitmap on stdout.
const mandelbrotSrc = `
(define size 48)
(define limit-sq 4.0)
(define max-iter 50)

(display "P4") (newline)
(display size) (display " ") (display size) (newline)

(do ((y 0 (+ y 1))) ((= y size))
  (let ((bits 0) (count 0) (line '()))
    (do ((x 0 (+ x 1))) ((= x size))
      (let* ((cr (- (/ (* 2.0 x) size) 1.5))
             (ci (- (/ (* 2.0 y) size) 1.0))
             (inside
              (let loop ((zr 0.0) (zi 0.0) (i 0))
                (cond ((> (+ (* zr zr) (* zi zi)) limit-sq) 0)
                      ((= i max-iter) 1)
                      (else (loop (+ (- (* zr zr) (* zi zi)) cr)
                                  (+ (* 2.0 zr zi) ci)
                                  (+ i 1)))))))
        (set! bits (+ (* bits 2) inside))
        (set! count (+ count 1))
        (when (= count 8)
          (set! line (cons bits line))
          (set! bits 0)
          (set! count 0))))
    (when (> count 0)
      (set! line (cons (* bits (expt 2 (- 8 count))) line)))
    (for-each (lambda (b) (write-char (integer->char b)))
              (reverse line))))
(newline)
`
