package bench

import (
	"testing"

	"multiverse/internal/core"
)

// TestDeterministicRuns backs the repository's reproducibility claim:
// nothing reads wall-clock time, so two independent runs of the same
// configuration must agree cycle-for-cycle and byte-for-byte.
func TestDeterministicRuns(t *testing.T) {
	p, _ := ProgramByName("fasta")
	for _, w := range []core.World{core.WorldNative, core.WorldHRT} {
		a, err := RunBenchmark(p, w)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunBenchmark(p, w)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%v: cycles differ across runs: %d vs %d", w, a.Cycles, b.Cycles)
		}
		if string(a.Output) != string(b.Output) {
			t.Errorf("%v: output differs across runs", w)
		}
		if a.Stats.TotalSyscalls() != b.Stats.TotalSyscalls() ||
			a.Stats.MinorFaults != b.Stats.MinorFaults {
			t.Errorf("%v: accounting differs across runs", w)
		}
	}
}

// TestHRTReboot exercises the paper's boot story: "the HRT can be booted
// or rebooted in just milliseconds"; after a reboot and a fresh merger,
// execution groups work again.
func TestHRTReboot(t *testing.T) {
	fs, err := provisionFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemForWorld(core.WorldHRT, fs, "reboot")
	if err != nil {
		t.Fatal(err)
	}

	ret, err := sys.HRTInvokeFunc(func(env core.Env) uint64 { return 11 })
	if err != nil || ret != 11 {
		t.Fatalf("pre-reboot invoke = %d, %v", ret, err)
	}

	// Reboot: halt the old kernel, boot a fresh one, re-link, re-merge.
	sys.AK.Halt()
	if err := sys.HVM.BootHRT(sys.Main.Clock); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	sys.RelinkAfterReboot()
	if err := sys.HVM.MergeAddressSpace(sys.Main.Clock, sys.Proc.CR3()); err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	if sys.HVM.BootCount() != 2 {
		t.Errorf("boot count = %d", sys.HVM.BootCount())
	}

	ret, err = sys.HRTInvokeFunc(func(env core.Env) uint64 { return 22 })
	if err != nil || ret != 22 {
		t.Fatalf("post-reboot invoke = %d, %v", ret, err)
	}
	if !sys.AK.Merged() {
		t.Error("rebooted kernel not merged")
	}
}
