package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/linuxabi"
	"multiverse/internal/scheme"
)

// TestAllProgramsRunNative gates correctness of every workload: each must
// run to completion and produce its expected output.
func TestAllProgramsRunNative(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := RunBenchmark(p, core.WorldNative)
			if err != nil {
				t.Fatalf("%v", err)
			}
			t.Logf("%s: %.4fs virtual, %d reductions, %d syscalls, %d faults, %d gcs",
				p.Name, res.Seconds, res.Reductions, res.Stats.TotalSyscalls(),
				res.Stats.MinorFaults, res.GCCollections)
		})
	}
}

// TestOutputIdenticalAcrossWorlds is the paper's behavioural contract:
// "our port behaves identically" — the bytes a program writes must not
// depend on the hosting world.
func TestOutputIdenticalAcrossWorlds(t *testing.T) {
	for _, name := range []string{"fannkuch-redux", "binary-tree-2", "fasta"} {
		p, _ := ProgramByName(name)
		var outputs [3][]byte
		for i, w := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
			res, err := RunBenchmark(p, w)
			if err != nil {
				t.Fatalf("%s on %v: %v", name, w, err)
			}
			outputs[i] = res.Output
		}
		if !bytes.Equal(outputs[0], outputs[1]) || !bytes.Equal(outputs[0], outputs[2]) {
			t.Errorf("%s: output differs across worlds (native %d bytes, virtual %d, multiverse %d)",
				name, len(outputs[0]), len(outputs[1]), len(outputs[2]))
		}
	}
}

// TestFigure13Shape asserts the paper's headline ordering on a GC-heavy
// benchmark: Native <= Virtual <= Multiverse, with Multiverse overhead
// driven by forwarded interactions.
func TestFigure13Shape(t *testing.T) {
	p, _ := ProgramByName("binary-tree-2")
	var secs [3]float64
	var fwd uint64
	for i, w := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
		res, err := RunBenchmark(p, w)
		if err != nil {
			t.Fatal(err)
		}
		secs[i] = res.Seconds
		if w == core.WorldHRT {
			fwd = res.ForwardedSyscalls + res.ForwardedFaults
		}
	}
	if !(secs[0] <= secs[1] && secs[1] <= secs[2]) {
		t.Errorf("ordering violated: native=%.4f virtual=%.4f multiverse=%.4f", secs[0], secs[1], secs[2])
	}
	if secs[2] <= secs[0]*1.01 {
		t.Errorf("Multiverse shows no overhead on a GC-heavy benchmark (%.4f vs %.4f)", secs[2], secs[0])
	}
	if fwd == 0 {
		t.Error("no interactions forwarded")
	}
}

// TestFigure13OverheadTracksInteractions: the compute-bound benchmark must
// see far less Multiverse overhead than the GC-bound one (the paper:
// "performance varies with the usage of legacy functionality").
func TestFigure13OverheadTracksInteractions(t *testing.T) {
	overhead := func(name string) float64 {
		p, _ := ProgramByName(name)
		rn, err := RunBenchmark(p, core.WorldNative)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := RunBenchmark(p, core.WorldHRT)
		if err != nil {
			t.Fatal(err)
		}
		return rm.Seconds / rn.Seconds
	}
	gcBound := overhead("binary-tree-2")
	computeBound := overhead("fannkuch-redux")
	if computeBound >= gcBound {
		t.Errorf("fannkuch overhead (%.3fx) not below binary-tree overhead (%.3fx)", computeBound, gcBound)
	}
}

func TestFigure2Shape(t *testing.T) {
	tab, err := Figure2(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	vals := tableCycles(t, tab)
	merger, async, syncCross, syncSame := vals[0], vals[1], vals[2], vals[3]
	if !(syncSame < syncCross && syncCross < async && async < merger) {
		t.Errorf("latency ordering violated: %v", vals)
	}
	within := func(name string, got, want, tol uint64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %d, want %d±%d (paper)", name, got, want, tol)
		}
	}
	within("merger", merger, 33000, 4000)
	within("async", async, 25000, 5000)
	within("sync cross", syncCross, 1060, 100)
	within("sync same", syncSame, 790, 80)
}

func tableCycles(t *testing.T, tab *Table) []uint64 {
	t.Helper()
	var out []uint64
	for _, r := range tab.Rows {
		s := strings.TrimPrefix(r[1], "~")
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad cycles cell %q", r[1])
		}
		out = append(out, v)
	}
	return out
}

func TestFigure8CountsSomething(t *testing.T) {
	tab, err := Figure8()
	if err != nil {
		t.Skipf("source tree unavailable: %v", err)
	}
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		n, err := strconv.Atoi(r[1])
		if err != nil || n <= 0 {
			t.Errorf("component %s has SLOC %q", r[0], r[1])
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	tab, err := Figure9(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	get := func(name string) (virt, mv float64) {
		for _, r := range tab.Rows {
			if r[0] == name {
				v, _ := strconv.ParseFloat(r[1], 64)
				m, _ := strconv.ParseFloat(r[2], 64)
				return v, m
			}
		}
		t.Fatalf("row %s missing", name)
		return 0, 0
	}
	// vdso calls: slightly better under Multiverse.
	for _, vdso := range []string{"getpid", "gettimeofday"} {
		v, m := get(vdso)
		if m >= v {
			t.Errorf("%s: multiverse (%v) not faster than virtual (%v)", vdso, m, v)
		}
		if m < v/3 {
			t.Errorf("%s: improvement implausibly large (%v vs %v)", vdso, m, v)
		}
	}
	// Forwarded cheap calls: an order of magnitude or more slower.
	for _, cheap := range []string{"stat", "getcwd", "open", "close"} {
		v, m := get(cheap)
		if m < v*5 {
			t.Errorf("%s: forwarding overhead too small (%v vs %v)", cheap, m, v)
		}
	}
	// Copy-dominated 1 MiB calls: overhead amortized below 2x.
	for _, big := range []string{"fwrite", "read"} {
		v, m := get(big)
		if m > v*2 {
			t.Errorf("%s: 1MiB call overhead not amortized (%v vs %v)", big, m, v)
		}
		if m <= v {
			t.Errorf("%s: forwarded call cannot be faster (%v vs %v)", big, m, v)
		}
	}
}

func TestFigure10Table(t *testing.T) {
	tab, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 benchmarks", len(tab.Rows))
	}
	counts := map[string]uint64{}
	for _, r := range tab.Rows {
		n, _ := strconv.ParseUint(r[4], 10, 64) // page faults column
		counts[r[0]] = n
	}
	// The compute-bound benchmark must fault least among the heavy ones;
	// the GC benchmark must be heavy.
	if counts["binary-tree-2"] < counts["fannkuch-redux"] {
		t.Errorf("binary-tree-2 faults (%d) below fannkuch (%d)", counts["binary-tree-2"], counts["fannkuch-redux"])
	}
}

func TestFigure11And12Profiles(t *testing.T) {
	t11, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", t11)
	// Startup: mmap leads (heap creation).
	if t11.Rows[0][0] != "mmap" {
		t.Errorf("startup profile led by %s, want mmap", t11.Rows[0][0])
	}

	t12, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", t12)
	idx := map[string]int{}
	count := map[string]uint64{}
	for i, r := range t12.Rows {
		idx[r[0]] = i
		n, _ := strconv.ParseUint(r[1], 10, 64)
		count[r[0]] = n
	}
	// GC-driven calls dominate binary-tree-2 (Figure 12's shape).
	for _, name := range []string{"mmap", "munmap", "mprotect", "getrusage", "rt_sigreturn"} {
		if _, ok := idx[name]; !ok {
			t.Errorf("%s missing from binary-tree-2 profile", name)
		}
	}
	if count["mmap"] < count["open"] || count["munmap"] < count["open"] {
		t.Error("memory-management calls do not dominate the profile")
	}
}

func TestStartupProfileMultiverseForwards(t *testing.T) {
	res, err := RunStartup(core.WorldHRT)
	if err != nil {
		t.Fatal(err)
	}
	// All startup syscalls (heap mmaps, sigaction, setitimer...) were
	// issued from kernel mode and forwarded.
	if res.Stats.Syscalls[linuxabi.SysMmap] == 0 {
		t.Error("no heap creation at startup")
	}
	if res.Stats.Syscalls[linuxabi.SysRtSigaction] == 0 {
		t.Error("no signal handler registration at startup")
	}
}

func TestPrimitivesOrdersOfMagnitude(t *testing.T) {
	tab, err := PrimitivesTable(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	row := tab.Rows[0] // thread create+join
	ros, _ := strconv.ParseUint(row[1], 10, 64)
	ak, _ := strconv.ParseUint(row[2], 10, 64)
	if ros < ak*20 {
		t.Errorf("thread create: ROS %d vs AK %d — want >= 20x", ros, ak)
	}
}

func TestAblationShapes(t *testing.T) {
	sym, err := AblationSymbolCache(50)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", sym)
	uncached, _ := strconv.ParseUint(sym.Rows[0][1], 10, 64)
	cached, _ := strconv.ParseUint(sym.Rows[1][1], 10, 64)
	if cached >= uncached {
		t.Errorf("symbol cache not faster: %d vs %d", cached, uncached)
	}

	rem, err := AblationRemerge()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rem)
	lazy, _ := strconv.ParseUint(rem.Rows[0][1], 10, 64)
	eager, _ := strconv.ParseUint(rem.Rows[1][1], 10, 64)
	if eager <= lazy {
		t.Errorf("eager re-merge not costlier: %d vs %d", eager, lazy)
	}

	pin, err := AblationPinning()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", pin)
	demand, _ := strconv.ParseUint(pin.Rows[0][1], 10, 64)
	pinned, _ := strconv.ParseUint(pin.Rows[1][1], 10, 64)
	if pinned*10 > demand {
		t.Errorf("pinning should remove most cost: %d vs %d", pinned, demand)
	}

	ch, err := AblationChannelKind(20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", ch)
	async, _ := strconv.ParseUint(ch.Rows[0][1], 10, 64)
	sync, _ := strconv.ParseUint(ch.Rows[1][1], 10, 64)
	if sync*10 > async {
		t.Errorf("sync channel should be >=10x cheaper: %d vs %d", sync, async)
	}

	ss, err := AblationSyncSyscalls(20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", ss)
	asyncSys, _ := strconv.ParseUint(ss.Rows[0][1], 10, 64)
	syncSys, _ := strconv.ParseUint(ss.Rows[1][1], 10, 64)
	if syncSys*5 > asyncSys {
		t.Errorf("sync syscall path should be >=5x cheaper: %d vs %d", syncSys, asyncSys)
	}
}

// TestSyncSyscallsEndToEnd: a whole benchmark runs correctly with the
// synchronous forwarding path, producing identical output.
func TestSyncSyscallsEndToEnd(t *testing.T) {
	p, _ := ProgramByName("fasta")
	base, err := RunBenchmark(p, core.WorldHRT)
	if err != nil {
		t.Fatal(err)
	}

	fs, err := provisionFS(&p)
	if err != nil {
		t.Fatal(err)
	}
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage(p.Name),
		AeroKernel: core.NewAeroKernelImage(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(fat, core.Options{
		Hybrid:       true,
		FS:           fs,
		AppName:      p.Name,
		SyncSyscalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InitRuntime(); err != nil {
		t.Fatal(err)
	}
	var runErr error
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := scheme.NewEngine(env)
		if eerr != nil {
			runErr = eerr
			return 1
		}
		if _, eerr := eng.RunFile(BenchDir + "/" + p.Name + ".scm"); eerr != nil {
			runErr = eerr
			return 1
		}
		eng.Shutdown()
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !bytes.Equal(sys.Proc.Stdout(), base.Output) {
		t.Error("sync-syscall run changed program output")
	}
	syncSecs := sys.Main.Clock.Now().Seconds()
	if syncSecs >= base.Seconds {
		t.Errorf("sync forwarding (%.4fs) not faster than async (%.4fs) on a syscall-heavy benchmark", syncSecs, base.Seconds)
	}
	t.Logf("fasta: async %.4fs, sync-forwarding %.4fs", base.Seconds, syncSecs)
}

// TestIncrementalPortingPayoff is the end-to-end thesis of the paper: the
// automatic hybridization is a *starting point*; porting the hotspot
// functionality (the GC's memory management) into the AeroKernel brings
// the HRT back to near-native, with forwarding largely gone.
func TestIncrementalPortingPayoff(t *testing.T) {
	p, _ := ProgramByName("binary-tree-2")
	native, err := RunBenchmark(p, core.WorldNative)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := RunBenchmarkEx(p, core.WorldHRT, false)
	if err != nil {
		t.Fatal(err)
	}
	ported, err := RunBenchmarkEx(p, core.WorldHRT, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(native.Output, ported.Output) {
		t.Error("AK-memory run changed program output")
	}
	if ported.Seconds >= initial.Seconds {
		t.Errorf("porting did not help: %.4fs vs %.4fs", ported.Seconds, initial.Seconds)
	}
	if ported.ForwardedFaults*10 > initial.ForwardedFaults {
		t.Errorf("faults still forwarded after port: %d vs %d", ported.ForwardedFaults, initial.ForwardedFaults)
	}
	if ratio := ported.Seconds / native.Seconds; ratio > 1.15 {
		t.Errorf("ported HRT %.2fx native; want near parity", ratio)
	}
	t.Logf("native %.4fs, initial HRT %.4fs (%.2fx), ported HRT %.4fs (%.2fx)",
		native.Seconds, initial.Seconds, initial.Seconds/native.Seconds,
		ported.Seconds, ported.Seconds/native.Seconds)
	if err != nil {
		t.Fatal(err)
	}
}

// TestHotspotReportNamesTheGCCalls: the hotspot profile must point at the
// paper's predicted porting targets for a GC-heavy run.
func TestHotspotReportNamesTheGCCalls(t *testing.T) {
	p, _ := ProgramByName("binary-tree-2")
	fs, err := provisionFS(&p)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemForWorld(core.WorldHRT, fs, p.Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, _ := scheme.NewEngine(env)
		if _, eerr := eng.RunFile(BenchDir + "/" + p.Name + ".scm"); eerr != nil {
			t.Error(eerr)
		}
		eng.Shutdown()
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	entries := sys.Hotspots().Entries()
	if len(entries) < 5 {
		t.Fatalf("hotspot entries = %d", len(entries))
	}
	top := map[string]bool{}
	for _, e := range entries[:4] {
		top[e.Name] = true
	}
	// Section 5: page faults + the GC's mmap/munmap/mprotect are the
	// dominant legacy dependencies.
	if !top["page-fault"] {
		t.Errorf("page-fault not in top 4: %+v", entries[:4])
	}
	if !top["mmap"] && !top["munmap"] {
		t.Errorf("GC memory calls not in top 4: %+v", entries[:4])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbbb"}}
	tab.AddRow("xx", "y")
	tab.AddNote("n=%d", 1)
	s := tab.String()
	for _, want := range []string{"T\n", "a", "bbbb", "xx", "note: n=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestProgramByName(t *testing.T) {
	if _, ok := ProgramByName("n-body"); !ok {
		t.Error("n-body missing")
	}
	if _, ok := ProgramByName("quake"); ok {
		t.Error("found nonexistent program")
	}
}
