package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// simspeedBaselinePath locates BENCH_pr8.json at the repository root.
func simspeedBaselinePath() string {
	return filepath.Join("..", "..", "BENCH_pr8.json")
}

// TestSimspeedBaseline pins the simspeed composite's deterministic fields
// against BENCH_pr8.json: per-unit virtual cycles and forwarded-syscall
// counts exact, total cycles exact, and the host-parallel passes
// byte-identical to serial (CollectSimspeedBaseline enforces the
// cross-check internally). Wall-clock fields are NOT checked here — the
// tier-1 suite runs under -race and on arbitrary hosts, where wall time
// is meaningless; the CI simspeed job checks them with
// `mvtool bench -suite simspeed -compare BENCH_pr8.json`.
// Regenerate with MV_UPDATE_BASELINE=1 after an intentional cost-model
// change.
func TestSimspeedBaseline(t *testing.T) {
	got, err := CollectSimspeedBaseline()
	if err != nil {
		t.Fatal(err)
	}

	if os.Getenv("MV_UPDATE_BASELINE") != "" {
		blob, err := got.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(simspeedBaselinePath(), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %s (simspeed %.3g, %.2fx vs pre-PR)",
			simspeedBaselinePath(), got.Simspeed, got.Speedup)
		return
	}

	want, err := os.ReadFile(simspeedBaselinePath())
	if err != nil {
		t.Fatalf("reading baseline (regenerate with MV_UPDATE_BASELINE=1): %v", err)
	}
	var pinned SimspeedBaseline
	if err := json.Unmarshal(want, &pinned); err != nil {
		t.Fatal(err)
	}
	if got.TotalCycles != pinned.TotalCycles {
		t.Errorf("total cycles = %d, pinned %d", got.TotalCycles, pinned.TotalCycles)
	}
	if len(got.Units) != len(pinned.Units) {
		t.Fatalf("%d units, pinned %d", len(got.Units), len(pinned.Units))
	}
	for i, u := range got.Units {
		if u != pinned.Units[i] {
			t.Errorf("unit %s = %+v, pinned %+v", u.Name, u, pinned.Units[i])
		}
	}
	if !got.HostParallelMatch {
		t.Error("host-parallel pass diverged from serial")
	}
}

// BenchmarkSimspeedSerial runs the composite one unit after another; the
// CI bench artifact tracks its wall time across commits with benchstat.
func BenchmarkSimspeedSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := runSimspeedSerial(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimspeedParallel runs each composite unit on its own host
// goroutine — the independent-execution-group mode the pinned simspeed
// figure is measured in.
func BenchmarkSimspeedParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := runSimspeedParallel(); err != nil {
			b.Fatal(err)
		}
	}
}
