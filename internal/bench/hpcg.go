package bench

import (
	"fmt"

	"multiverse/internal/core"
	"multiverse/internal/legion"
	"multiverse/internal/vfs"
)

// HPCG parameters for the figure (scaled from the paper's testbed run).
const (
	hpcgN     = 32768
	hpcgIters = 60
)

// FigureHPCG reproduces the paper's section 2 Legion/HPCG experiment
// shape: the mini task-parallel runtime solving a conjugate-gradient
// system in each world, with synchronization bound to futexes on the ROS
// and to AeroKernel events in the HRT. The paper reports HRT speedups of
// up to 20% (Xeon Phi) and up to 40% (x64).
func FigureHPCG(workers int) (*Table, error) {
	if workers <= 0 {
		workers = 4
	}
	type row struct {
		world core.World
		res   *legion.HPCGResult
	}
	var rows []row
	for _, world := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
		sys, err := NewSystemForWorld(world, vfs.New(), "hpcg")
		if err != nil {
			return nil, err
		}
		var res *legion.HPCGResult
		var rerr error
		if _, err := sys.RunMain(func(env core.Env) uint64 {
			rt, e := legion.New(env, workers)
			if e != nil {
				rerr = e
				return 1
			}
			defer rt.Shutdown()
			res, rerr = legion.RunHPCG(rt, env, hpcgN, hpcgIters)
			return 0
		}); err != nil {
			return nil, err
		}
		if rerr != nil {
			return nil, rerr
		}
		if verr := legion.VerifySolution(res.X, 1e-6); verr != nil {
			return nil, fmt.Errorf("bench: HPCG on %s: %w", world, verr)
		}
		rows = append(rows, row{world: world, res: res})
	}

	t := &Table{
		Title:  fmt.Sprintf("HPCG (mini-Legion): CG n=%d, %d iterations, %d workers", hpcgN, hpcgIters, workers),
		Header: []string{"World", "Runtime (ms)", "Sync binding", "Sync ops", "Speedup vs Native"},
	}
	base := rows[0].res.Cycles
	for _, r := range rows {
		t.AddRow(
			r.world.String(),
			fmt.Sprintf("%.3f", r.res.Cycles.Nanoseconds()/1e6),
			r.res.SyncBinding,
			fmt.Sprintf("%d", r.res.SyncOps),
			fmt.Sprintf("%.2fx", float64(base)/float64(r.res.Cycles)),
		)
	}
	t.AddNote("paper (section 2): HPCG-on-Legion HRT speedups up to 20%% (Phi) / 40%% (x64)")
	return t, nil
}
