package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Figure8 regenerates the source-lines-of-code table for the Multiverse
// components, mapped onto this repository's packages:
//
//	Multiverse runtime   -> internal/core (minus the toolchain)
//	Multiverse toolchain -> internal/core/toolchain.go + cmd/mvtool
//	Nautilus additions   -> internal/aerokernel
//	HVM additions        -> internal/hvm
//
// Counting runs against the source tree, so it must execute from within
// the repository (as go test / mvbench do).
func Figure8() (*Table, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}

	components := []struct {
		name  string
		paths []string
		skip  []string
	}{
		{
			name:  "Multiverse runtime",
			paths: []string{"internal/core"},
			skip:  []string{"toolchain.go"},
		},
		{
			name:  "Multiverse toolchain",
			paths: []string{"internal/core/toolchain.go", "cmd/mvtool"},
		},
		{
			name:  "Nautilus additions",
			paths: []string{"internal/aerokernel"},
		},
		{
			name:  "HVM additions",
			paths: []string{"internal/hvm"},
		},
	}

	t := &Table{
		Title:  "Figure 8: Source Lines of Code for Multiverse (this reproduction, Go)",
		Header: []string{"Component", "SLOC"},
	}
	total := 0
	for _, c := range components {
		n := 0
		for _, p := range c.paths {
			count, err := slocAt(filepath.Join(root, p), c.skip)
			if err != nil {
				return nil, err
			}
			n += count
		}
		total += n
		t.AddRow(c.name, fmt.Sprintf("%d", n))
	}
	t.AddRow("Total", fmt.Sprintf("%d", total))
	t.AddNote("paper (C/ASM/Perl): runtime 2297, toolchain 130, Nautilus 1670, HVM 638, total 4735")
	return t, nil
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("bench: go.mod not found above working directory (run from the repository)")
		}
		dir = parent
	}
}

// slocAt counts non-blank, non-comment Go lines in a file or directory
// (non-recursive for directories; tests excluded).
func slocAt(path string, skip []string) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	var files []string
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return 0, err
		}
	entryLoop:
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, s := range skip {
				if name == s {
					continue entryLoop
				}
			}
			files = append(files, filepath.Join(path, name))
		}
	} else {
		files = []string{path}
	}
	total := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return 0, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || strings.HasPrefix(trimmed, "//") {
				continue
			}
			total++
		}
	}
	return total, nil
}
