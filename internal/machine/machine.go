// Package machine models the hardware platform: cores grouped into
// sockets, per-core MMU/TLB and cycle clocks, descriptor-table state, the
// interrupt-vector table with IST support, and inter-processor interrupts.
//
// The default topology mirrors the paper's evaluation machine — a Dell
// PowerEdge R415 with one 8-core AMD Opteron 4122 package exposing two
// 4-core sockets (dies) and 8 GiB of RAM split into one NUMA zone per
// socket.
package machine

import (
	"fmt"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/mem"
	"multiverse/internal/paging"
)

// CoreID identifies one core.
type CoreID int

// Vector is an interrupt/exception vector number.
type Vector uint8

// Well-known vectors.
const (
	VecDivide    Vector = 0
	VecPageFault Vector = 14
	// VecHVMEvent is the vector the HVM uses to inject ROS->HRT requests
	// (address-space mergers, function-call requests) as "special
	// exceptions or interrupts" (section 4.3).
	VecHVMEvent Vector = 0xE0
	// VecHRTSignal is the vector used for ROS-application-to-HRT signals,
	// which take highest precedence in the HRT (section 2).
	VecHRTSignal Vector = 0xE1
	// VecTLBShootdown carries remote TLB-invalidation requests.
	VecTLBShootdown Vector = 0xE2
	// VecSchedKick is the scheduler's wakeup IPI: it knocks a halted core
	// out of hlt so a newly enqueued thread or stolen task can run.
	VecSchedKick Vector = 0xE3
)

// InterruptFrame is the state pushed on interrupt entry.
type InterruptFrame struct {
	Vector    Vector
	ErrorCode uint64
	RIP       uint64
	RSP       uint64
	CR2       uint64 // faulting address, for page faults
}

// Handler services one interrupt vector on a core. It runs with the
// target core's clock already synchronized to the interrupt arrival time.
type Handler func(c *Core, f *InterruptFrame)

// SegmentDescriptor is one GDT entry (the fields the superposition
// machinery mirrors).
type SegmentDescriptor struct {
	Base  uint64
	Limit uint32
	DPL   uint8
	Code  bool
}

// GDT is a global descriptor table. The ROS GDT is mirrored into HRT cores
// during thread-creation superpositions so that segment-relative accesses
// (notably TLS through %fs) resolve identically in both worlds.
type GDT struct {
	Entries []SegmentDescriptor
}

// Clone returns a deep copy, used when superimposing the ROS GDT onto an
// HRT core.
func (g GDT) Clone() GDT {
	out := GDT{Entries: make([]SegmentDescriptor, len(g.Entries))}
	copy(out.Entries, g.Entries)
	return out
}

// idtEntry pairs a handler with its IST selection.
type idtEntry struct {
	handler Handler
	ist     int // 0 = no stack switch; 1..7 = IST stack index
}

// Core is one simulated CPU core.
type Core struct {
	ID     CoreID
	Socket int

	MMU *paging.MMU

	mu     sync.Mutex
	clock  *cycles.Clock // the clock of the context currently on this core
	gdt    GDT
	fsBase uint64 // FS.base MSR: thread-local storage pointer
	idt    map[Vector]idtEntry
	ist    [8]*Stack // IST stacks (index 0 unused, as on hardware)
	stack  *Stack    // current stack if no IST switch applies

	// Scheduler-maintained occupancy: the thread id currently charged to
	// this core (0 = idle), and whether the core has fallen past its spin
	// window into hlt.
	occupant int
	halted   bool

	machine *Machine
}

// Machine is the full platform.
type Machine struct {
	Cost  *cycles.CostModel
	Phys  *mem.PhysMem
	cores []*Core
}

// Spec configures a machine.
type Spec struct {
	Sockets        int
	CoresPerSocket int
	FramesPerZone  uint64 // physical frames per NUMA zone
	TLBCapacity    int
	Cost           *cycles.CostModel
}

// DefaultSpec mirrors the paper's testbed: 2 sockets x 4 cores. The frame
// count is scaled down from 8 GiB to keep fixture setup fast; nothing in
// the protocols depends on the absolute size.
func DefaultSpec() Spec {
	return Spec{
		Sockets:        2,
		CoresPerSocket: 4,
		FramesPerZone:  16384, // 64 MiB per zone
		TLBCapacity:    512,
		Cost:           cycles.DefaultCostModel(),
	}
}

// New builds a machine from the spec.
func New(spec Spec) (*Machine, error) {
	if spec.Sockets <= 0 || spec.CoresPerSocket <= 0 {
		return nil, fmt.Errorf("machine: need at least one core, got %dx%d", spec.Sockets, spec.CoresPerSocket)
	}
	if spec.Cost == nil {
		spec.Cost = cycles.DefaultCostModel()
	}
	if spec.TLBCapacity <= 0 {
		spec.TLBCapacity = 512
	}
	zones := make([]mem.Zone, spec.Sockets)
	for s := 0; s < spec.Sockets; s++ {
		zones[s] = mem.Zone{
			ID:    mem.NUMAZone(s),
			Start: mem.Frame(uint64(s) * spec.FramesPerZone),
			Count: spec.FramesPerZone,
		}
	}
	m := &Machine{
		Cost: spec.Cost,
		Phys: mem.New(zones...),
	}
	for s := 0; s < spec.Sockets; s++ {
		for c := 0; c < spec.CoresPerSocket; c++ {
			core := &Core{
				ID:      CoreID(s*spec.CoresPerSocket + c),
				Socket:  s,
				clock:   cycles.NewClock(0),
				MMU:     paging.NewMMU(spec.TLBCapacity),
				idt:     make(map[Vector]idtEntry),
				machine: m,
			}
			m.cores = append(m.cores, core)
		}
	}
	return m, nil
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core id; it panics on out-of-range ids (construction bug).
func (m *Machine) Core(id CoreID) *Core {
	if int(id) < 0 || int(id) >= len(m.cores) {
		panic(fmt.Sprintf("machine: no core %d", id))
	}
	return m.cores[id]
}

// Cores returns all cores in id order.
func (m *Machine) Cores() []*Core {
	out := make([]*Core, len(m.cores))
	copy(out, m.cores)
	return out
}

// SameSocket reports whether two cores share a socket — the property that
// determines synchronous-channel cacheline latency (Figure 2).
func (m *Machine) SameSocket(a, b CoreID) bool {
	return m.Core(a).Socket == m.Core(b).Socket
}

// ZoneOfCore returns the NUMA zone local to a core's socket.
func (m *Machine) ZoneOfCore(id CoreID) mem.NUMAZone {
	return mem.NUMAZone(m.Core(id).Socket)
}

// SetGDT installs a descriptor table on the core.
func (c *Core) SetGDT(g GDT) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gdt = g.Clone()
}

// GDT returns a copy of the core's descriptor table.
func (c *Core) GDT() GDT {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gdt.Clone()
}

// SetFSBase writes the FS.base MSR (thread-local storage pointer).
func (c *Core) SetFSBase(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fsBase = v
}

// FSBase reads the FS.base MSR.
func (c *Core) FSBase() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fsBase
}

// SetHandler installs an interrupt handler. ist selects an IST stack
// (1..7) for the hardware stack switch, or 0 for none — the mechanism
// Nautilus uses to keep interrupt frames off red-zone-bearing user stacks
// (section 4.4).
func (c *Core) SetHandler(v Vector, ist int, h Handler) error {
	if ist < 0 || ist > 7 {
		return fmt.Errorf("machine: IST index %d out of range", ist)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idt[v] = idtEntry{handler: h, ist: ist}
	return nil
}

// SetISTStack assigns a stack to IST slot i (1..7).
func (c *Core) SetISTStack(i int, s *Stack) error {
	if i < 1 || i > 7 {
		return fmt.Errorf("machine: IST slot %d out of range", i)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ist[i] = s
	return nil
}

// SetCurrentStack sets the stack interrupts land on when no IST switch is
// configured (i.e. the running thread's stack).
func (c *Core) SetCurrentStack(s *Stack) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stack = s
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.machine }

// Clock returns the clock of the context currently scheduled on this core.
// Each core starts with an idle clock of its own; schedulers install the
// running thread's clock so that interrupts delivered to the core charge
// the interrupted context.
func (c *Core) Clock() *cycles.Clock {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// SetClock installs the clock of the context now running on the core.
func (c *Core) SetClock(clk *cycles.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if clk != nil {
		c.clock = clk
	}
}

// Raise delivers an interrupt or exception on this core at time `at`
// (already including delivery latency). The hardware pushes the frame onto
// the IST stack if one is configured for the vector, otherwise onto the
// current stack at its current RSP — destroying any red zone there, exactly
// the hazard the paper describes.
func (c *Core) Raise(v Vector, frame *InterruptFrame, at cycles.Cycles) error {
	c.mu.Lock()
	entry, ok := c.idt[v]
	var target *Stack
	istSwitch := false
	if ok && entry.ist != 0 && c.ist[entry.ist] != nil {
		target = c.ist[entry.ist]
		istSwitch = true
	} else {
		target = c.stack
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("machine: core %d has no handler for vector %#x", c.ID, v)
	}
	clk := c.Clock()
	clk.SyncTo(at)
	if istSwitch {
		clk.Advance(c.machine.Cost.AKIstSwitch)
	}
	if target != nil {
		frame.Vector = v
		target.PushFrame(frame)
	}
	entry.handler(c, frame)
	if target != nil {
		target.PopFrame()
	}
	return nil
}

// SetOccupant records the thread id the scheduler considers to be running
// on this core (0 = idle). Purely bookkeeping: it carries no cost.
func (c *Core) SetOccupant(tid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.occupant = tid
}

// Occupant returns the thread id the scheduler last charged to this core,
// or 0 if the core is idle.
func (c *Core) Occupant() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.occupant
}

// SetHalted records whether the core has executed hlt after exhausting its
// spin window.
func (c *Core) SetHalted(h bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.halted = h
}

// Halted reports whether the core is modeled as sitting in hlt.
func (c *Core) Halted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.halted
}

// KickCore models the scheduler's VecSchedKick wakeup IPI to core `to`.
// Like ShootdownTLB it charges only the clock passed in — here the *woken*
// context, which in virtual time is the one that observes the delivery
// latency before it can start — so host goroutine interleaving can never
// leak into another context's clock. The target core merely has its halted
// flag cleared; no handler runs.
func (m *Machine) KickCore(clk *cycles.Clock, to CoreID) {
	clk.Advance(m.Cost.IPIKick)
	m.Core(to).SetHalted(false)
}

// SendIPI delivers an inter-processor interrupt from one core to another,
// charging IPI latency and synchronizing the destination clock to the
// arrival time.
func (m *Machine) SendIPI(from, to CoreID, v Vector, frame *InterruptFrame) error {
	src := m.Core(from)
	arrival := src.Clock().Now() + m.Cost.TLBShootdownIPI
	return m.Core(to).Raise(v, frame, arrival)
}

// ShootdownTLB broadcasts a TLB invalidation from core `from` to every core
// in targets (flushing `from`'s own TLB locally if listed). The sender pays
// one IPI per remote target plus its local flush — the cost structure of
// the merger's "broadcast a TLB shootdown to all HRT cores".
func (m *Machine) ShootdownTLB(from CoreID, targets []CoreID) {
	src := m.Core(from)
	clk := src.Clock()
	for _, t := range targets {
		if t == from {
			src.MMU.TLB().FlushAll()
			clk.Advance(m.Cost.TLBFlushLocal)
			continue
		}
		m.Core(t).MMU.TLB().FlushAll()
		clk.Advance(m.Cost.TLBShootdownIPI + m.Cost.TLBFlushLocal)
	}
}

// ShootdownTLBSlots is the targeted variant of ShootdownTLB: instead of a
// full flush, each target invalidates only the translations falling in the
// given PML4 slots (one invlpg per resident entry). The sender still pays
// one IPI per remote target, but the invalidation cost scales with what the
// delta actually touched rather than with TLB capacity.
func (m *Machine) ShootdownTLBSlots(from CoreID, targets []CoreID, slots []int) {
	src := m.Core(from)
	clk := src.Clock()
	for _, t := range targets {
		n := m.Core(t).MMU.TLB().FlushSlots(slots)
		if t != from {
			clk.Advance(m.Cost.TLBShootdownIPI)
		}
		clk.Advance(cycles.Cycles(n) * m.Cost.TLBInvlpg)
	}
}
