package machine

import (
	"fmt"
	"sync"
)

// RedZoneSize is the System V x86-64 red zone: 128 bytes below RSP that
// leaf functions may use without adjusting the stack pointer. Code compiled
// for user space (like the legacy libraries a hybridized runtime drags
// along) assumes nothing asynchronously writes there — an assumption
// kernel-mode interrupt delivery breaks unless the kernel switches stacks
// (IST) or pulls RSP down first (section 4.4).
const RedZoneSize = 128

// frameBytes is the size of the state an interrupt pushes (SS, RSP,
// RFLAGS, CS, RIP, error code — 6 words).
const frameBytes = 48

// Stack models one execution stack as real bytes, so red-zone clobbering
// by interrupt frames is observable rather than hypothetical.
type Stack struct {
	mu   sync.Mutex
	data []byte
	sp   int // offset of the stack pointer within data; grows downward
}

// NewStack allocates a stack of the given size with RSP at the top.
func NewStack(size int) *Stack {
	if size < frameBytes+RedZoneSize {
		size = frameBytes + RedZoneSize
	}
	return &Stack{data: make([]byte, size), sp: size}
}

// Reset rebases RSP to the top and clears the bytes — the deterministic
// stack recycle a warm-pool reuse performs, so a recycled context is
// indistinguishable from a fresh NewStack of the same size.
func (s *Stack) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.data {
		s.data[i] = 0
	}
	s.sp = len(s.data)
}

// SP returns the current stack-pointer offset.
func (s *Stack) SP() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sp
}

// Size returns the stack's total size in bytes (what a checkpoint image
// has to carry for it).
func (s *Stack) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// PullDown moves RSP down by n bytes and returns the new offset — the
// Nautilus syscall-stub entry move that protects the red zone when a
// hardware stack switch is unavailable (SYSCALL cannot use the IST).
func (s *Stack) PullDown(n int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sp-n < 0 {
		return 0, fmt.Errorf("machine: stack overflow pulling down %d bytes", n)
	}
	s.sp -= n
	return s.sp, nil
}

// Release moves RSP back up by n bytes (stub exit).
func (s *Stack) Release(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sp+n > len(s.data) {
		return fmt.Errorf("machine: stack underflow releasing %d bytes", n)
	}
	s.sp += n
	return nil
}

// WriteRedZone stores b into the red zone at the given offset below RSP
// (0 <= off < RedZoneSize), the way a compiled leaf function would.
func (s *Stack) WriteRedZone(off int, b byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off >= RedZoneSize {
		return fmt.Errorf("machine: red zone offset %d out of range", off)
	}
	idx := s.sp - 1 - off
	if idx < 0 {
		return fmt.Errorf("machine: red zone write below stack")
	}
	s.data[idx] = b
	return nil
}

// ReadRedZone loads the byte at the given offset below RSP.
func (s *Stack) ReadRedZone(off int) (byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off >= RedZoneSize {
		return 0, fmt.Errorf("machine: red zone offset %d out of range", off)
	}
	idx := s.sp - 1 - off
	if idx < 0 {
		return 0, fmt.Errorf("machine: red zone read below stack")
	}
	return s.data[idx], nil
}

// PushFrame pushes an interrupt frame at the current RSP, overwriting
// whatever lies just below it — including a red zone, if this stack is the
// interrupted thread's own stack. The frame bytes are a recognizable
// pattern so tests can observe the clobbering.
func (s *Stack) PushFrame(f *InterruptFrame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo := s.sp - frameBytes
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < s.sp; i++ {
		s.data[i] = 0xCC ^ byte(f.Vector)
	}
	s.sp = lo
}

// PopFrame unwinds the most recent interrupt frame (iretq).
func (s *Stack) PopFrame() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sp += frameBytes
	if s.sp > len(s.data) {
		s.sp = len(s.data)
	}
}
