package machine

import (
	"testing"

	"multiverse/internal/cycles"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTopology(t *testing.T) {
	m := newMachine(t)
	if m.NumCores() != 8 {
		t.Fatalf("cores = %d", m.NumCores())
	}
	// Paper testbed: 4 cores per socket.
	if !m.SameSocket(0, 3) {
		t.Error("cores 0 and 3 should share socket 0")
	}
	if m.SameSocket(0, 4) {
		t.Error("cores 0 and 4 are on different sockets")
	}
	if m.ZoneOfCore(0) == m.ZoneOfCore(7) {
		t.Error("per-socket NUMA zones expected")
	}
}

func TestBadSpec(t *testing.T) {
	if _, err := New(Spec{Sockets: 0, CoresPerSocket: 4}); err == nil {
		t.Error("zero sockets should fail")
	}
}

func TestCoreOutOfRangePanics(t *testing.T) {
	m := newMachine(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Core(99)
}

func TestGDTIsolation(t *testing.T) {
	m := newMachine(t)
	c := m.Core(0)
	g := GDT{Entries: []SegmentDescriptor{{Base: 0x1000, DPL: 3}}}
	c.SetGDT(g)
	g.Entries[0].Base = 0xDEAD // mutate the caller's copy
	got := c.GDT()
	if got.Entries[0].Base != 0x1000 {
		t.Error("SetGDT did not deep-copy")
	}
	got.Entries[0].Base = 0xBEEF
	if c.GDT().Entries[0].Base != 0x1000 {
		t.Error("GDT() did not deep-copy")
	}
}

func TestFSBase(t *testing.T) {
	c := newMachine(t).Core(2)
	c.SetFSBase(0x7ffe_1234)
	if c.FSBase() != 0x7ffe_1234 {
		t.Errorf("FSBase = %#x", c.FSBase())
	}
}

func TestRaiseWithoutHandlerFails(t *testing.T) {
	c := newMachine(t).Core(0)
	if err := c.Raise(VecPageFault, &InterruptFrame{}, 0); err == nil {
		t.Error("raise without handler should fail")
	}
}

func TestRaiseSyncsClock(t *testing.T) {
	m := newMachine(t)
	c := m.Core(0)
	clk := cycles.NewClock(100)
	c.SetClock(clk)
	var seen *InterruptFrame
	if err := c.SetHandler(VecPageFault, 0, func(_ *Core, f *InterruptFrame) { seen = f }); err != nil {
		t.Fatal(err)
	}
	if err := c.Raise(VecPageFault, &InterruptFrame{CR2: 0x42}, 500); err != nil {
		t.Fatal(err)
	}
	if seen == nil || seen.CR2 != 0x42 {
		t.Fatal("handler not invoked with frame")
	}
	if clk.Now() < 500 {
		t.Errorf("clock not synced to arrival: %d", clk.Now())
	}
}

func TestISTValidation(t *testing.T) {
	c := newMachine(t).Core(0)
	if err := c.SetHandler(VecPageFault, 9, nil); err == nil {
		t.Error("IST index 9 should be rejected")
	}
	if err := c.SetISTStack(0, NewStack(4096)); err == nil {
		t.Error("IST slot 0 should be rejected")
	}
}

// TestRedZoneClobberedWithoutIST reproduces the hazard of section 4.4: an
// interrupt landing on the current stack destroys the red zone a leaf
// function is using; with an IST stack configured, it survives.
func TestRedZoneClobberedWithoutIST(t *testing.T) {
	m := newMachine(t)

	runCase := func(useIST bool) (intact bool) {
		c := m.Core(0)
		c.SetClock(cycles.NewClock(0))
		user := NewStack(4096)
		c.SetCurrentStack(user)
		ist := 0
		if useIST {
			if err := c.SetISTStack(1, NewStack(4096)); err != nil {
				t.Fatal(err)
			}
			ist = 1
		}
		if err := c.SetHandler(VecHVMEvent, ist, func(*Core, *InterruptFrame) {}); err != nil {
			t.Fatal(err)
		}
		// A leaf function stores into the red zone...
		for off := 0; off < 16; off++ {
			if err := user.WriteRedZone(off, byte(0xA0+off)); err != nil {
				t.Fatal(err)
			}
		}
		// ...an interrupt arrives...
		if err := c.Raise(VecHVMEvent, &InterruptFrame{}, 0); err != nil {
			t.Fatal(err)
		}
		// ...and the leaf function reads its data back.
		for off := 0; off < 16; off++ {
			b, err := user.ReadRedZone(off)
			if err != nil {
				t.Fatal(err)
			}
			if b != byte(0xA0+off) {
				return false
			}
		}
		return true
	}

	if runCase(false) {
		t.Error("red zone survived an interrupt on the current stack — hazard not modelled")
	}
	if !runCase(true) {
		t.Error("red zone destroyed despite IST stack switch")
	}
}

// TestSyscallPullDownProtectsRedZone models the Nautilus stub workaround:
// SYSCALL cannot IST-switch, so the stub pulls RSP past the red zone
// before anything pushes.
func TestSyscallPullDownProtectsRedZone(t *testing.T) {
	s := NewStack(4096)
	for off := 0; off < RedZoneSize; off++ {
		if err := s.WriteRedZone(off, byte(off)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.PullDown(RedZoneSize); err != nil {
		t.Fatal(err)
	}
	// The stub's own frame push now lands below the red zone.
	s.PushFrame(&InterruptFrame{Vector: VecHVMEvent})
	s.PopFrame()
	if err := s.Release(RedZoneSize); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < RedZoneSize; off++ {
		b, err := s.ReadRedZone(off)
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(off) {
			t.Fatalf("red zone byte %d clobbered despite pull-down", off)
		}
	}
}

func TestStackOverflowChecks(t *testing.T) {
	s := NewStack(256)
	if _, err := s.PullDown(10_000); err == nil {
		t.Error("pull-down past stack bottom should fail")
	}
	if err := s.Release(10_000); err == nil {
		t.Error("release past stack top should fail")
	}
}

func TestSendIPI(t *testing.T) {
	m := newMachine(t)
	src, dst := m.Core(0), m.Core(1)
	src.SetClock(cycles.NewClock(1000))
	dstClk := cycles.NewClock(0)
	dst.SetClock(dstClk)
	fired := false
	if err := dst.SetHandler(VecTLBShootdown, 0, func(*Core, *InterruptFrame) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := m.SendIPI(0, 1, VecTLBShootdown, &InterruptFrame{}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("IPI handler did not run")
	}
	if dstClk.Now() < 1000+m.Cost.TLBShootdownIPI {
		t.Errorf("destination clock %d not past IPI arrival", dstClk.Now())
	}
}

func TestShootdownTLB(t *testing.T) {
	m := newMachine(t)
	clk := cycles.NewClock(0)
	m.Core(0).SetClock(clk)
	before := clk.Now()
	m.ShootdownTLB(0, []CoreID{0, 1, 2})
	// 1 local flush + 2 remote IPIs+flushes.
	want := m.Cost.TLBFlushLocal + 2*(m.Cost.TLBShootdownIPI+m.Cost.TLBFlushLocal)
	if clk.Now()-before != want {
		t.Errorf("shootdown cost = %d, want %d", clk.Now()-before, want)
	}
}
