package aerokernel

import (
	"fmt"

	"multiverse/internal/cycles"
	"multiverse/internal/machine"
	"multiverse/internal/mem"
	"multiverse/internal/paging"
)

// Kernel-mode memory management — the paper's predicted first porting
// target: "The next steps would be to port bottleneck functionality, for
// example the mmap(), mprotect(), and signal mechanisms the garbage
// collector depends on, to kernel mode via AeroKernel ... In effect,
// these comprise page table edits combined with page faults, all of which
// can occur hundreds of times faster within the kernel instead of behind
// a system call interface" (section 5).
//
// The AeroKernel owns a dedicated lower-half region (its own PML4 slots,
// disjoint from everything the ROS uses) and edits the page tables
// directly: eager frame allocation at map time (no demand-paging round
// trips), direct PTE rewrites for protection changes, and a kernel-level
// fault handler for the protection faults the runtime *wants* (GC write
// barriers). Nothing crosses the event channel.

// AK-managed region: PML4 slot 252 (0x7e00_0000_0000 .. +512 GiB), below
// the ROS's mmap area (slot 254) and TLS region (slot 255).
const (
	AKMemBase = uint64(0x0000_7e00_0000_0000)
	AKMemSize = uint64(1) << 39 // one PML4 slot
)

const akMemSlot = 252

// akRegion is one kernel-managed mapping.
type akRegion struct {
	start  uint64
	length uint64
	pages  map[uint64]mem.Frame
}

// MemFaultHandler resolves a fault in the AK-managed region (the
// runtime's write-barrier hook). It returns true if the access should be
// retried.
type MemFaultHandler func(addr uint64, write bool) bool

// inAKRegion reports whether addr lies in the kernel-managed region.
func inAKRegion(addr uint64) bool {
	return addr >= AKMemBase && addr < AKMemBase+AKMemSize
}

// SetMemFaultHandler installs the runtime's handler for protection faults
// in the AK-managed region.
func (k *Kernel) SetMemFaultHandler(h MemFaultHandler) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.memFault = h
}

// MemMap allocates length bytes of kernel-managed memory for thread t:
// frames come eagerly from HRT-local memory and are mapped immediately,
// so the region never demand-faults. Returns the virtual address.
func (k *Kernel) MemMap(t *Thread, length uint64) (uint64, error) {
	if length == 0 {
		return 0, fmt.Errorf("aerokernel: zero-length MemMap")
	}
	length = (length + mem.PageSize - 1) &^ uint64(mem.PageSize-1)

	k.mu.Lock()
	space := k.space
	if k.memNext == 0 {
		k.memNext = AKMemBase
		// Claim the PML4 slot: it must not collide with a ROS mapping
		// copied in by the merger.
		if e := space.TopEntry(akMemSlot); e&paging.PtePresent != 0 {
			k.mu.Unlock()
			return 0, fmt.Errorf("aerokernel: PML4 slot %d already in use by the ROS", akMemSlot)
		}
	}
	addr := k.memNext
	if addr+length > AKMemBase+AKMemSize {
		k.mu.Unlock()
		return 0, fmt.Errorf("aerokernel: AK memory region exhausted")
	}
	k.memNext += length + mem.PageSize // guard gap
	k.mu.Unlock()

	region := &akRegion{start: addr, length: length, pages: make(map[uint64]mem.Frame)}
	zone := k.m.ZoneOfCore(t.Core)
	for off := uint64(0); off < length; off += mem.PageSize {
		f, err := k.m.Phys.Alloc(zone, "akmem")
		if err != nil {
			k.releaseRegion(region)
			return 0, fmt.Errorf("aerokernel: MemMap: %w", err)
		}
		if err := space.Map(addr+off, f, paging.PteWrite); err != nil {
			_ = k.m.Phys.Free(f)
			k.releaseRegion(region)
			return 0, fmt.Errorf("aerokernel: MemMap: %w", err)
		}
		region.pages[addr+off] = f
		t.Clock.Advance(k.cost.PTEWrite + k.cost.PageZero)
	}

	k.mu.Lock()
	if k.memRegions == nil {
		k.memRegions = make(map[uint64]*akRegion)
	}
	k.memRegions[region.start] = region
	// Remember the slot's top-level entry so re-merges can preserve it.
	k.memSlotEntry = space.TopEntry(akMemSlot)
	k.mu.Unlock()
	return addr, nil
}

// releaseRegion frees a partially built region.
func (k *Kernel) releaseRegion(r *akRegion) {
	for base, f := range r.pages {
		_ = k.space.Unmap(base)
		_ = k.m.Phys.Free(f)
	}
}

// MemProtect rewrites the protection of a kernel-managed range: direct
// PTE edits plus local invalidation, no crossings.
func (k *Kernel) MemProtect(t *Thread, addr, length uint64, writable bool) error {
	r := k.regionFor(addr)
	if r == nil {
		return fmt.Errorf("aerokernel: MemProtect outside AK region: %#x", addr)
	}
	flags := uint64(0)
	if writable {
		flags = paging.PteWrite
	}
	tlb := k.m.Core(t.Core).MMU.TLB()
	for base := paging.PageBase(addr); base < addr+length; base += mem.PageSize {
		if _, ok := r.pages[base]; !ok {
			return fmt.Errorf("aerokernel: MemProtect of unmapped page %#x", base)
		}
		if err := k.space.Protect(base, flags); err != nil {
			return err
		}
		tlb.FlushVA(base)
		t.Clock.Advance(k.cost.PTEWrite)
	}
	return nil
}

// ProtectUser rewrites the protection of merged lower-half user pages by
// direct PTE edit — the fault fast lane's resolution path. Because the
// merged lower half shares the ROS's page tables below the PML4, the edit
// is immediately visible to both sides; only the editing core's TLB needs
// invalidating. Errors if any page in the range is unmapped (the caller
// falls back to the forwarded path).
func (k *Kernel) ProtectUser(clk *cycles.Clock, core machine.CoreID, addr, length uint64, writable bool) error {
	if !k.Merged() {
		return fmt.Errorf("aerokernel: ProtectUser before merger")
	}
	if !paging.IsLowerHalf(addr) || inAKRegion(addr) {
		return fmt.Errorf("aerokernel: ProtectUser outside the merged user half: %#x", addr)
	}
	k.mu.Lock()
	space := k.space
	k.mu.Unlock()
	flags := uint64(paging.PteUser)
	if writable {
		flags |= paging.PteWrite
	}
	tlb := k.m.Core(core).MMU.TLB()
	for base := paging.PageBase(addr); base < addr+length; base += mem.PageSize {
		if err := space.Protect(base, flags); err != nil {
			return err
		}
		tlb.FlushVA(base)
		clk.Advance(k.cost.PTEWrite)
	}
	return nil
}

// MemUnmap releases a kernel-managed mapping.
func (k *Kernel) MemUnmap(t *Thread, addr, length uint64) error {
	k.mu.Lock()
	r := k.memRegions[addr]
	if r != nil {
		delete(k.memRegions, addr)
	}
	k.mu.Unlock()
	if r == nil {
		return fmt.Errorf("aerokernel: MemUnmap of unknown region %#x", addr)
	}
	for base, f := range r.pages {
		if err := k.space.Unmap(base); err != nil {
			return err
		}
		_ = k.m.Phys.Free(f)
		t.Clock.Advance(k.cost.PTEWrite)
	}
	k.m.Core(t.Core).MMU.TLB().FlushAll()
	t.Clock.Advance(k.cost.TLBFlushLocal)
	return nil
}

// regionFor locates the region containing addr.
func (k *Kernel) regionFor(addr uint64) *akRegion {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, r := range k.memRegions {
		if addr >= r.start && addr < r.start+r.length {
			return r
		}
	}
	return nil
}

// AKMemStats reports kernel-managed memory usage.
func (k *Kernel) AKMemStats() (regions int, pages int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, r := range k.memRegions {
		regions++
		pages += len(r.pages)
	}
	return regions, pages
}
