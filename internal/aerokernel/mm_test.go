package aerokernel

import (
	"testing"

	"multiverse/internal/paging"
)

func TestMemMapEagerAndAccessible(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)

	before := r.m.Phys.InUse()
	addr, err := r.k.MemMap(th, 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	if addr < AKMemBase || addr >= AKMemBase+AKMemSize {
		t.Errorf("addr %#x outside AK region", addr)
	}
	// Frames allocated eagerly.
	if got := r.m.Phys.InUse() - before; got < 8 {
		t.Errorf("only %d frames allocated eagerly", got)
	}
	// Every page is writable immediately — no faults, no forwarding.
	for off := uint64(0); off < 8*4096; off += 4096 {
		if err := th.Touch(addr+off, true); err != nil {
			t.Fatalf("touch %#x: %v", addr+off, err)
		}
	}
	if r.k.ForwardedFaults() != 0 {
		t.Errorf("AK memory forwarded %d faults", r.k.ForwardedFaults())
	}
	regions, pages := r.k.AKMemStats()
	if regions != 1 || pages != 8 {
		t.Errorf("stats = %d regions, %d pages", regions, pages)
	}
}

func TestMemProtectFaultsAndHandlerResolves(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	addr, err := r.k.MemMap(th, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Touch(addr, true); err != nil {
		t.Fatal(err)
	}

	if err := r.k.MemProtect(th, addr, 4096, false); err != nil {
		t.Fatal(err)
	}
	// Without a handler, the write is fatal (kernel-mode wild write
	// caught by CR0.WP).
	if err := th.Touch(addr, true); err == nil {
		t.Fatal("write to protected AK page succeeded without handler")
	}
	// Reads still fine.
	if err := th.Touch(addr, false); err != nil {
		t.Fatalf("read after protect: %v", err)
	}

	// With a write-barrier handler, the fault resolves in the kernel.
	fired := 0
	r.k.SetMemFaultHandler(func(fa uint64, write bool) bool {
		fired++
		if !write || paging.PageBase(fa) != addr {
			t.Errorf("handler got %#x write=%v", fa, write)
		}
		return r.k.MemProtect(th, addr, 4096, true) == nil
	})
	if err := th.Touch(addr, true); err != nil {
		t.Fatalf("barrier write: %v", err)
	}
	if fired != 1 {
		t.Errorf("handler fired %d times", fired)
	}
	if r.k.ForwardedFaults() != 0 {
		t.Error("AK barrier fault was forwarded to the ROS")
	}
}

func TestMemUnmapFreesFrames(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	addr, err := r.k.MemMap(th, 16*4096)
	if err != nil {
		t.Fatal(err)
	}
	mapped := r.m.Phys.InUse()
	if err := r.k.MemUnmap(th, addr, 16*4096); err != nil {
		t.Fatal(err)
	}
	// All 16 data frames return; page-table frames are retained, as
	// kernels do.
	if got := r.m.Phys.InUse(); got != mapped-16 {
		t.Errorf("frames after unmap: %d, want %d", got, mapped-16)
	}
	if err := r.k.MemUnmap(th, addr, 16*4096); err == nil {
		t.Error("double unmap accepted")
	}
	if err := th.Touch(addr, false); err == nil {
		t.Error("unmapped AK page still accessible")
	}
}

// TestAKMemorySurvivesRemerge: the merger overwrites every lower-half
// PML4 entry with the ROS's; the kernel must restore its own slot or its
// heap vanishes.
func TestAKMemorySurvivesRemerge(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	addr, err := r.k.MemMap(th, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Touch(addr, true); err != nil {
		t.Fatal(err)
	}
	// Re-merge (as a duplicate fault or explicit request would).
	if err := r.k.Merge(r.clk, 1, r.ros.CR3()); err != nil {
		t.Fatal(err)
	}
	r.m.Core(1).MMU.TLB().FlushAll()
	if err := th.Touch(addr, true); err != nil {
		t.Fatalf("AK memory lost across re-merge: %v", err)
	}
}

func TestMemMapValidation(t *testing.T) {
	r := newRig(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	if _, err := r.k.MemMap(th, 0); err == nil {
		t.Error("zero-length map accepted")
	}
	if err := r.k.MemProtect(th, 0x1000, 4096, false); err == nil {
		t.Error("protect outside AK region accepted")
	}
}
