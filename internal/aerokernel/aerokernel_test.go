package aerokernel

import (
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/hvm"
	"multiverse/internal/image"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/paging"
)

// testRig boots an AeroKernel on a machine with an HVM partition and a
// fake ROS address space it can merge.
type testRig struct {
	m   *machine.Machine
	hv  *hvm.HVM
	k   *Kernel
	ros *paging.AddressSpace
	clk *cycles.Clock
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	m, err := machine.New(machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	hv, err := hvm.New(m, hvm.Config{
		ROSCores: []machine.CoreID{0},
		HRTCores: []machine.CoreID{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	img := &image.Image{Name: "nautilus.bin", Symbols: []image.Symbol{
		{Name: "nk_existing", Addr: 0xffff_8000_0020_0000, Size: 64},
	}}
	clk := cycles.NewClock(0)
	var k *Kernel
	hv.RegisterBootHandler(func(info hvm.BootInfo) (hvm.HRTSink, error) {
		kk, err := Boot(m, info)
		if err != nil {
			return nil, err
		}
		k = kk
		return kk, nil
	})
	if err := hv.InstallImage(clk, img); err != nil {
		t.Fatal(err)
	}
	if err := hv.BootHRT(clk); err != nil {
		t.Fatal(err)
	}
	ros, err := paging.NewAddressSpace(m.Phys, 0, "fake-ros")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Halt)
	return &testRig{m: m, hv: hv, k: k, ros: ros, clk: clk}
}

func (r *testRig) merge(t *testing.T) {
	t.Helper()
	if err := r.hv.MergeAddressSpace(r.clk, r.ros.CR3()); err != nil {
		t.Fatal(err)
	}
}

func TestBootState(t *testing.T) {
	r := newRig(t)
	if r.k.Merged() {
		t.Error("merged before any merger")
	}
	// CR0.WP must be set on every HRT core (section 4.4).
	for _, c := range r.k.Cores() {
		if !r.m.Core(c).MMU.WP() {
			t.Errorf("core %d: CR0.WP clear", c)
		}
	}
	// The higher half identity-maps physical memory.
	space := r.k.Space()
	pte, _ := space.Lookup(paging.HigherHalfVA(0x3000))
	if pte&paging.PtePresent == 0 {
		t.Error("higher-half identity map missing")
	}
}

func TestMergeThroughHVM(t *testing.T) {
	r := newRig(t)
	f, _ := r.m.Phys.Alloc(0, "rospage")
	if err := r.ros.Map(0x7f00_0000_1000, f, paging.PteUser|paging.PteWrite); err != nil {
		t.Fatal(err)
	}
	r.merge(t)
	if !r.k.Merged() {
		t.Fatal("not merged")
	}
	if r.k.MergeCount() != 1 {
		t.Errorf("merge count = %d", r.k.MergeCount())
	}
	pte, _ := r.k.Space().Lookup(0x7f00_0000_1000)
	if pte&paging.PtePresent == 0 {
		t.Error("ROS mapping invisible after merger")
	}
}

func TestThreadSuperposition(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	gdt := machine.GDT{Entries: []machine.SegmentDescriptor{{Base: 0xAB}}}
	ch := r.hv.NewEventChannel(1, 0)
	th := r.k.CreateThread(r.clk, 1, Superposition{GDT: gdt, FSBase: 0x7ffe_0042}, ch, nil)
	core := r.m.Core(1)
	if core.FSBase() != 0x7ffe_0042 {
		t.Errorf("FS.base = %#x", core.FSBase())
	}
	if got := core.GDT(); len(got.Entries) != 1 || got.Entries[0].Base != 0xAB {
		t.Errorf("GDT not mirrored: %+v", got)
	}
	if th.FSBase != 0x7ffe_0042 {
		t.Error("thread TLS not recorded")
	}
	if th.Nested {
		t.Error("top-level thread marked nested")
	}
}

func TestNestedThreadSharesChannel(t *testing.T) {
	r := newRig(t)
	ch := r.hv.NewEventChannel(1, 0)
	top := r.k.CreateThread(r.clk, 1, Superposition{}, ch, nil)
	nested := top.CreateNested()
	if !nested.Nested || nested.Parent != top {
		t.Error("nested thread lineage wrong")
	}
	if nested.channel() != ch {
		t.Error("nested thread does not use the top-level partner endpoint")
	}
}

func TestThreadRunJoin(t *testing.T) {
	r := newRig(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	th.Start(func(t *Thread) uint64 {
		t.Clock.Advance(1234)
		return 77
	})
	joiner := cycles.NewClock(0)
	if code := th.Join(joiner); code != 77 {
		t.Errorf("join = %d", code)
	}
	if joiner.Now() < 1234 {
		t.Error("joiner clock not synced")
	}
}

func TestDisallowedFunctionality(t *testing.T) {
	r := newRig(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	for _, num := range []linuxabi.Sysno{linuxabi.SysExecve, linuxabi.SysClone, linuxabi.SysFork, linuxabi.SysFutex} {
		res := th.Syscall(linuxabi.Call{Num: num})
		if res.Err != linuxabi.ENOSYS {
			t.Errorf("%v: err = %v, want ENOSYS", num, res.Err)
		}
	}
	if r.k.ForwardedSyscalls() != 0 {
		t.Error("disallowed calls were forwarded")
	}
}

func TestSyscallForwarding(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	ch := r.hv.NewEventChannel(1, 0)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, ch, nil)

	// A fake partner services one getpid.
	partnerClk := cycles.NewClock(0)
	go func() {
		env := ch.Recv(partnerClk)
		if env.Kind != hvm.EvSyscall || env.Call.Num != linuxabi.SysGetpid {
			t.Errorf("partner got %v", env.Kind)
		}
		ch.Complete(partnerClk, env, hvm.Reply{Res: linuxabi.Result{Ret: 4242, Err: linuxabi.OK}})
	}()

	res := th.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
	if !res.Ok() || res.Ret != 4242 {
		t.Fatalf("forwarded getpid = %+v", res)
	}
	if r.k.ForwardedSyscalls() != 1 {
		t.Errorf("forwarded count = %d", r.k.ForwardedSyscalls())
	}
	// The thread's clock must reflect a full event-channel round trip
	// (tens of thousands of cycles, not a local call).
	if th.Clock.Now() < 20000 {
		t.Errorf("forwarded syscall too cheap: %d cycles", th.Clock.Now())
	}
}

func TestFaultForwardingAndRetry(t *testing.T) {
	r := newRig(t)
	// Map a page in the fake ROS space *after* the merge request, via the
	// shared tables: first create a lower-half mapping, then merge.
	f, _ := r.m.Phys.Alloc(0, "lazy")
	r.merge(t)
	ch := r.hv.NewEventChannel(1, 0)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, ch, nil)

	served := 0
	go func() {
		partnerClk := cycles.NewClock(0)
		for {
			env := ch.Recv(partnerClk)
			if env == nil {
				return
			}
			if env.Kind != hvm.EvPageFault {
				t.Errorf("partner got %v", env.Kind)
			}
			served++
			// "Replicate the access": the ROS maps the page, then the
			// shared lower tables make it visible to the HRT.
			if err := r.ros.Map(paging.PageBase(env.FaultAddr), f, paging.PteUser|paging.PteWrite); err != nil {
				t.Errorf("ros map: %v", err)
			}
			ch.Complete(partnerClk, env, hvm.Reply{FaultOK: true})
		}
	}()

	addr := uint64(0x7f55_0000_2000)
	if err := th.Touch(addr, true); err != nil {
		t.Fatalf("touch: %v", err)
	}
	if served != 1 {
		t.Errorf("partner served %d faults", served)
	}
	if r.k.ForwardedFaults() != 1 {
		t.Errorf("forwarded faults = %d", r.k.ForwardedFaults())
	}
	// Second touch: TLB/table hit, no forwarding.
	if err := th.Touch(addr, true); err != nil {
		t.Fatal(err)
	}
	if served != 1 {
		t.Error("resolved page forwarded again")
	}
	ch.Close()
}

// TestDuplicateFaultTriggersRemerge verifies the Nautilus addition: when
// the ROS installs a mapping in a *new* top-level (PML4) slot, the HRT's
// copied PML4 cannot see it; the same address faults twice and the kernel
// re-merges.
func TestDuplicateFaultTriggersRemerge(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	ch := r.hv.NewEventChannel(1, 0)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, ch, nil)

	// The ROS maps a page at a virtual address whose PML4 slot was empty
	// at merge time.
	addr := uint64(0x0000_2000_0000_3000) // PML4 index 4
	f, _ := r.m.Phys.Alloc(0, "newslot")
	if err := r.ros.Map(addr, f, paging.PteUser|paging.PteWrite); err != nil {
		t.Fatal(err)
	}

	go func() {
		partnerClk := cycles.NewClock(0)
		for {
			env := ch.Recv(partnerClk)
			if env == nil {
				return
			}
			// The ROS resolves the fault trivially: the page is already
			// mapped on its side.
			ch.Complete(partnerClk, env, hvm.Reply{FaultOK: true})
		}
	}()

	if err := th.Touch(addr, false); err != nil {
		t.Fatalf("touch: %v", err)
	}
	if r.k.RemergeCount() != 1 {
		t.Errorf("re-merges = %d, want 1", r.k.RemergeCount())
	}
	ch.Close()
}

func TestHigherHalfFaultIsFatal(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	// Unmapped higher-half address beyond the identity map.
	err := th.Touch(paging.HigherHalfMin+0x7000_0000_0000, false)
	if err == nil {
		t.Fatal("higher-half wild access did not fail")
	}
}

func TestLowerHalfBeforeMergeFails(t *testing.T) {
	r := newRig(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	if err := th.Touch(0x7f00_0000_0000, false); err == nil {
		t.Fatal("lower-half access before merger should fail")
	}
}

func TestSymbolLookupCostScales(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 50; i++ {
		r.k.RegisterFunc(string(rune('a'+i%26))+"filler"+string(rune('0'+i%10)), func(*Thread, []uint64) uint64 { return 0 })
	}
	target := r.k.RegisterFunc("zzz_target", func(*Thread, []uint64) uint64 { return 1 })

	clk := cycles.NewClock(0)
	addr, ok := r.k.LookupSymbol(clk, "zzz_target")
	if !ok || addr != target {
		t.Fatalf("lookup failed: %v %#x", ok, addr)
	}
	cost := clk.Now()
	if cost == 0 {
		t.Error("lookup charged nothing")
	}
	// A symbol early in the (name-sorted) table costs less.
	clk2 := cycles.NewClock(0)
	if _, ok := r.k.LookupSymbol(clk2, "afiller0"); !ok {
		t.Fatal("early symbol missing")
	}
	if clk2.Now() >= cost {
		t.Errorf("early lookup (%d) not cheaper than late (%d)", clk2.Now(), cost)
	}
	if _, ok := r.k.LookupSymbol(nil, "missing_symbol"); ok {
		t.Error("found missing symbol")
	}
}

func TestRegisterFuncBindsExistingImageSymbol(t *testing.T) {
	r := newRig(t)
	addr := r.k.RegisterFunc("nk_existing", func(*Thread, []uint64) uint64 { return 5 })
	if addr != 0xffff_8000_0020_0000 {
		t.Errorf("bound at %#x, want the image symbol's address", addr)
	}
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	v, err := r.k.CallByAddr(th, addr)
	if err != nil || v != 5 {
		t.Errorf("call = %d, %v", v, err)
	}
}

func TestCallByAddrUnknown(t *testing.T) {
	r := newRig(t)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	if _, err := r.k.CallByAddr(th, 0xdead); err == nil {
		t.Error("call to unregistered address should fail")
	}
}

func TestEventsSignalWakesWaiters(t *testing.T) {
	r := newRig(t)
	ev := r.k.NewEvent()
	waiter := r.k.CreateThread(r.clk, 1, Superposition{}, nil, nil)
	signaler := r.k.CreateThread(r.clk, 2, Superposition{}, nil, nil)

	done := make(chan cycles.Cycles, 1)
	go func() {
		ev.Wait(waiter)
		done <- waiter.Clock.Now()
	}()
	// Give the waiter a moment to enqueue, then signal.
	for {
		ev.mu.Lock()
		n := len(ev.waiters)
		ev.mu.Unlock()
		if n == 1 {
			break
		}
	}
	signaler.Clock.Advance(10_000)
	ev.Signal(signaler)
	wake := <-done
	if wake < 10_000 {
		t.Errorf("waiter woke at %d, before signal time", wake)
	}
}

func TestEagerRemergePolicy(t *testing.T) {
	r := newRig(t)
	r.merge(t)
	r.k.SetEagerRemerge(true)
	ch := r.hv.NewEventChannel(1, 0)
	th := r.k.CreateThread(r.clk, 1, Superposition{}, ch, nil)

	f, _ := r.m.Phys.Alloc(0, "p")
	go func() {
		partnerClk := cycles.NewClock(0)
		for {
			env := ch.Recv(partnerClk)
			if env == nil {
				return
			}
			_ = r.ros.Map(paging.PageBase(env.FaultAddr), f, paging.PteUser|paging.PteWrite)
			ch.Complete(partnerClk, env, hvm.Reply{FaultOK: true})
		}
	}()
	if err := th.Touch(0x7f66_0000_0000, true); err != nil {
		t.Fatal(err)
	}
	if r.k.RemergeCount() == 0 {
		t.Error("eager policy did not re-merge")
	}
	ch.Close()
}
