package aerokernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/paging"
	"multiverse/internal/telemetry"
)

// Superposition is the ROS state mirrored onto an HRT core when a
// top-level thread is created: the ROS GDT and the architectural
// thread-local-storage state (primarily %fs) of the originating ROS
// thread (section 4.2).
type Superposition struct {
	GDT    machine.GDT
	FSBase uint64
}

// Thread is one AeroKernel thread. Top-level threads are created on
// behalf of the ROS and carry an event channel to their partner; nested
// threads are created by HRT threads and share the top-level ancestor's
// channel ("with the top-level HRT thread's corresponding partner acting
// as the communication end-point").
type Thread struct {
	ID     int
	Core   machine.CoreID
	Clock  *cycles.Clock
	Stack  *machine.Stack
	FSBase uint64
	Nested bool
	Parent *Thread

	// kernv is the owning kernel. It is atomic because grid migration
	// re-homes a live thread onto the target node's kernel (Rehome) while
	// joiners on other goroutines read it for the join cost.
	kernv atomic.Pointer[Kernel]

	mu          sync.Mutex
	ch          *hvm.EventChannel
	syncSvc     *hvm.SyncSyscallChannel
	router      *hvm.SyscallRouter
	fallback    *Fallback
	schedEntry  *QueueEntry // run-queue slot, when scheduler-placed
	done        chan struct{}
	exitCode    uint64
	faultStatus error

	// sysCount numbers this thread's system calls for deterministic
	// fault-injection keys; only the owning goroutine touches it.
	sysCount uint64

	// reqCount numbers this thread's tracked requests (syscalls and
	// forwarded faults) for causal request ids. It is deliberately
	// separate from sysCount: sysCount keys the HRTPanic injection hash,
	// whose sequence must not shift when fault forwards also start
	// allocating ids. Only the owning goroutine touches it.
	reqCount uint64
}

// nextReqID allocates the causal request id for one boundary request:
// the thread id in the high word, a per-thread ordinal in the low. The
// id depends only on program order, so it is identical across runs and
// across observability configurations.
func (t *Thread) nextReqID() uint64 {
	t.reqCount++
	return uint64(t.ID)<<32 | t.reqCount
}

// Fallback is the degraded ROS-only service an execution group installs
// when its recovery budget is spent: system calls and forwarded faults
// are answered by a direct call into the ROS kernel instead of a channel
// that keeps failing. Fault returns whether the access was resolved.
type Fallback struct {
	Syscall func(t *Thread, call linuxabi.Call) linuxabi.Result
	Fault   func(t *Thread, addr uint64, write bool) bool
}

// AttachQueueEntry binds the scheduler run-queue slot this thread was
// placed into. Must happen before Start.
func (t *Thread) AttachQueueEntry(e *QueueEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.schedEntry = e
}

func (t *Thread) queueEntry() *QueueEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.schedEntry
}

// SetSyncSyscalls binds the thread's system calls to a post-merger
// memory-polling channel instead of the asynchronous event channel —
// the low-latency path a dedicated ROS polling thread enables.
func (t *Thread) SetSyncSyscalls(s *hvm.SyncSyscallChannel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.syncSvc = s
}

// SetRouter binds the thread's system calls to the execution group's
// adaptive boundary router. The router subsumes SetSyncSyscalls: it
// decides per call whether to answer locally, from cache, or to forward
// (and over which channel).
func (t *Thread) SetRouter(r *hvm.SyscallRouter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.router = r
}

// SetFallback installs the degraded ROS-only service on a top-level
// thread; nested threads inherit it through the parent chain.
func (t *Thread) SetFallback(f *Fallback) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fallback = f
}

// fallbackSvc returns the degraded service, walking up to the top-level
// ancestor for nested threads, like channel().
func (t *Thread) fallbackSvc() *Fallback {
	cur := t
	for cur != nil {
		cur.mu.Lock()
		f := cur.fallback
		cur.mu.Unlock()
		if f != nil {
			return f
		}
		cur = cur.Parent
	}
	return nil
}

// syscallRouter returns the group's router, walking up to the top-level
// ancestor for nested threads, like channel().
func (t *Thread) syscallRouter() *hvm.SyscallRouter {
	cur := t
	for cur != nil {
		cur.mu.Lock()
		r := cur.router
		cur.mu.Unlock()
		if r != nil {
			return r
		}
		cur = cur.Parent
	}
	return nil
}

func (k *Kernel) newThread(core machine.CoreID, parent *Thread) *Thread {
	// Off the kernel mutex: at density scale every spawn creates a
	// thread, and ID allocation plus registry insert need none of the
	// state k.mu guards.
	t := &Thread{
		ID:     int(k.nextTid.Add(1)),
		Core:   core,
		Clock:  cycles.NewClock(0),
		Stack:  machine.NewStack(64 * 1024),
		Nested: parent != nil,
		Parent: parent,
		done:   make(chan struct{}),
	}
	t.kernv.Store(k)
	k.threads.Store(t.ID, t)
	return t
}

// kern returns the thread's current kernel binding.
func (t *Thread) kern() *Kernel { return t.kernv.Load() }

// Rehome moves a live top-level thread onto dst: the thread-table entry
// moves between kernels with its ID unchanged (request ids, fault-roll
// sites, and trace flow ids must match an unmigrated run), and the
// thread's core occupancy is installed on dst's machine so fault
// vectoring works there. Grid nodes have identical topologies, so
// t.Core names the same partition slot on both machines. Must be called
// from the thread's own goroutine at a syscall boundary (the
// quiesce-point invariant): no fault or syscall of this thread can be
// in flight on either kernel.
func (t *Thread) Rehome(dst *Kernel) {
	src := t.kern()
	if dst == nil || src == dst {
		return
	}
	src.threads.Delete(t.ID)
	lock := src.faultLock(t.Core)
	lock.Lock()
	src.mu.Lock()
	if src.current[t.Core] == t {
		delete(src.current, t.Core)
	}
	src.mu.Unlock()
	lock.Unlock()

	t.kernv.Store(dst)
	dst.threads.Store(t.ID, t)
	lock = dst.faultLock(t.Core)
	lock.Lock()
	dst.mu.Lock()
	dst.current[t.Core] = t
	dst.mu.Unlock()
	dst.m.Core(t.Core).SetClock(t.Clock)
	dst.m.Core(t.Core).SetCurrentStack(t.Stack)
	lock.Unlock()
}

func (k *Kernel) retire(t *Thread) {
	k.threads.Delete(t.ID)
	k.mu.Lock()
	if k.current[t.Core] == t {
		delete(k.current, t.Core)
	}
	k.mu.Unlock()
}

// CreateThread makes a top-level HRT thread on core, applying the state
// superposition and attaching the execution group's event channel. stack,
// if non-nil, is the ROS-side stack the partner thread allocated for this
// HRT thread (section 4.2). The creator's clock pays the (fast) AeroKernel
// creation cost; the new thread's clock starts at the creation time.
func (k *Kernel) CreateThread(creator *cycles.Clock, core machine.CoreID, super Superposition, ch *hvm.EventChannel, stack *machine.Stack) *Thread {
	t := k.newThread(core, nil)
	t.ch = ch
	t.FSBase = super.FSBase
	if stack != nil {
		t.Stack = stack
	}

	// Apply the superposition to the core: mirrored GDT and %fs.
	c := k.m.Core(core)
	c.SetGDT(super.GDT)
	c.SetFSBase(super.FSBase)

	creator.Advance(k.cost.AKThreadCreate)
	t.Clock.SyncTo(creator.Now())
	return t
}

// CreateNested makes a nested HRT thread: a pure AeroKernel thread whose
// execution can nonetheless proceed in the ROS user address space. It
// inherits the parent's event-channel endpoint.
func (t *Thread) CreateNested() *Thread {
	core := t.Core
	if s := t.kern().Scheduler(); s != nil {
		core = s.PlaceNested(t.Clock)
	}
	nt := t.kern().newThread(core, t)
	nt.FSBase = t.FSBase
	t.Clock.Advance(t.kern().cost.AKThreadCreate)
	nt.Clock.SyncTo(t.Clock.Now())
	return nt
}

// Release retires a thread that was created but never Run — legion's
// persistent scheduler-mode workers borrow nested threads purely as
// placement and accounting contexts — dropping any scheduler load its
// placement charged.
func (t *Thread) Release() {
	if s := t.kern().Scheduler(); s != nil && t.Nested {
		s.ReleaseNested(t.Core)
	}
	t.kern().retire(t)
}

// channel returns the event-channel endpoint for this thread, walking up
// to the top-level ancestor for nested threads.
func (t *Thread) channel() *hvm.EventChannel {
	cur := t
	for cur != nil {
		cur.mu.Lock()
		ch := cur.ch
		cur.mu.Unlock()
		if ch != nil {
			return ch
		}
		cur = cur.Parent
	}
	return nil
}

// Run executes fn as this thread on the caller's goroutine, installing the
// thread on its core for fault vectoring and marking completion on
// return. A scheduler-placed thread first waits for its run-queue turn:
// same-core threads serialize in virtual time. Occupancy installation is
// guarded by the core's fault lock so a concurrent fault on the same core
// cannot vector into the wrong thread.
func (t *Thread) Run(fn func(*Thread) uint64) {
	k := t.kern()
	if s := k.Scheduler(); s != nil {
		s.waitTurn(t)
	}
	lock := k.faultLock(t.Core)
	lock.Lock()
	k.mu.Lock()
	k.current[t.Core] = t
	k.mu.Unlock()
	k.m.Core(t.Core).SetClock(t.Clock)
	k.m.Core(t.Core).SetCurrentStack(t.Stack)
	lock.Unlock()

	// A panic in HRT code (real, not injected) must still retire the
	// thread and close done — otherwise every joiner blocks forever and
	// the whole simulation wedges silently. The group's WaitExit/Join
	// deadline turns the missing exit notification into ErrGroupWedged.
	code := ^uint64(0)
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.mu.Lock()
				t.faultStatus = fmt.Errorf("aerokernel: thread %d panicked: %v", t.ID, r)
				t.mu.Unlock()
				k.metrics.Counter("ak.thread.panics").Inc()
				k.recorder.Record(t.Clock.Now(), telemetry.RecThreadPanic, uint64(t.ID), 0, 0, 0)
				k.recorder.AutoDump(fmt.Sprintf("unrecovered panic in HRT thread %d", t.ID))
			}
		}()
		code = fn(t)
	}()

	t.mu.Lock()
	t.exitCode = code
	t.mu.Unlock()
	// Re-read the kernel: a grid migration may have re-homed this thread
	// onto another node's kernel while fn ran, and the retire bookkeeping
	// must land on the kernel that currently owns the thread.
	k = t.kern()
	if s := k.Scheduler(); s != nil {
		s.threadRetired(t)
	}
	k.retire(t)
	close(t.done)
}

// Start runs fn on a new goroutine.
func (t *Thread) Start(fn func(*Thread) uint64) {
	go t.Run(fn)
}

// Join waits for t to finish, charging the AeroKernel join cost to the
// joiner and synchronizing its clock.
func (t *Thread) Join(joiner *cycles.Clock) uint64 {
	joiner.Advance(t.kern().cost.AKThreadJoin)
	<-t.done
	joiner.SyncTo(t.Clock.Now())
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exitCode
}

// Done exposes completion.
func (t *Thread) Done() <-chan struct{} { return t.done }

// ExitCode returns the recorded exit code after completion.
func (t *Thread) ExitCode() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exitCode
}

// Kernel returns the owning AeroKernel.
func (t *Thread) Kernel() *Kernel { return t.kern() }

// maxFaultRetries bounds the fault-retry loop (first fault forwards, a
// duplicate re-merges; anything needing more rounds is broken).
const maxFaultRetries = 8

// Touch performs one ring-0 memory access at addr from this HRT thread.
// Faults vector through the IDT (on the IST stack) into the Nautilus
// handler, which forwards or re-merges; the access then retries, as the
// hardware would re-execute the instruction.
func (t *Thread) Touch(addr uint64, write bool) error {
	k := t.kern()
	core := k.m.Core(t.Core)
	for try := 0; try < maxFaultRetries; try++ {
		_, fault := core.MMU.Translate(addr, paging.Access{Write: write, User: false}, t.Clock, k.cost)
		if fault == nil {
			return nil
		}
		var errCode uint64
		if fault.Present {
			errCode |= 0x1
		}
		if fault.Write {
			errCode |= 0x2
		}
		frame := &machine.InterruptFrame{CR2: fault.Addr, ErrorCode: errCode}
		// Deliver the fault with this thread installed as the core's
		// occupant, holding the core's fault lock across the whole
		// raise: two threads faulting on one core used to interleave
		// their k.current writes and read each other's fault status.
		lock := k.faultLock(t.Core)
		lock.Lock()
		k.mu.Lock()
		k.current[t.Core] = t
		k.mu.Unlock()
		core.SetClock(t.Clock)
		t.faultStatus = nil
		raiseErr := core.Raise(machine.VecPageFault, frame, t.Clock.Now())
		status := t.faultStatus
		lock.Unlock()
		if raiseErr != nil {
			return raiseErr
		}
		if status != nil {
			return status
		}
	}
	return fmt.Errorf("aerokernel: access at %#x did not resolve after %d faults", addr, maxFaultRetries)
}

// disallowed is the functionality the current AeroKernel prohibits ROS
// code in HRT context from using: "calls that create new execution
// contexts or rely on the Linux execution model such as execve, clone,
// and futex" (section 4.2).
var disallowed = map[linuxabi.Sysno]bool{
	linuxabi.SysExecve: true,
	linuxabi.SysClone:  true,
	linuxabi.SysFork:   true,
	linuxabi.SysFutex:  true,
}

// Syscall is the Nautilus system call stub: code running in the HRT
// issues SYSCALL (a ring0->ring0 trap), the stub pulls the stack pointer
// down past the red zone (no IST is possible on the SYSCALL path),
// forwards the call over the event channel, and returns via an emulated
// SYSRET — the real instruction unconditionally returns to ring 3, so
// Nautilus jumps directly to the saved RIP instead (section 4.4).
func (t *Thread) Syscall(call linuxabi.Call) linuxabi.Result {
	k := t.kern()
	if disallowed[call.Num] {
		return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.ENOSYS}
	}
	t.Clock.Advance(k.cost.AKSyscallStub)
	if _, err := t.Stack.PullDown(machine.RedZoneSize); err != nil {
		return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.EFAULT}
	}
	defer func() { _ = t.Stack.Release(machine.RedZoneSize) }()

	// Causal request id: allocated here, at the AeroKernel syscall entry,
	// and carried through every tier, hop, retry, and replay below.
	reqID := t.nextReqID()

	if fi := k.faults; fi != nil {
		t.sysCount++
		if fi.Roll(faults.HRTPanic, uint64(t.ID), t.sysCount, 0, t.Clock.Now()) {
			t.containInjectedPanic(reqID)
		}
	}

	// Degraded ROS-only mode: the group's recovery budget is spent, so
	// the call is served by a direct ROS entry instead of a channel.
	if fb := t.fallbackSvc(); fb != nil && fb.Syscall != nil {
		res := fb.Syscall(t, call)
		switch call.Num {
		case linuxabi.SysMprotect, linuxabi.SysMunmap, linuxabi.SysMmap, linuxabi.SysBrk:
			k.m.Core(t.Core).MMU.TLB().FlushAll()
			t.Clock.Advance(k.cost.TLBFlushLocal)
		}
		t.Clock.Advance(k.cost.AKSysretEmul)
		return res
	}

	var reply hvm.Reply
	if router := t.syscallRouter(); router != nil {
		// Routed path: only calls that actually cross the boundary count
		// as forwards; tier-0/tier-1 hits never leave the HRT.
		res, crossed, err := router.Dispatch(t.Clock, t.channel(), call, reqID)
		if err != nil {
			return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.EINTR}
		}
		if crossed {
			k.countForwardedSyscall()
		}
		reply = hvm.Reply{Res: res}
		switch call.Num {
		case linuxabi.SysMprotect, linuxabi.SysMunmap, linuxabi.SysMmap, linuxabi.SysBrk:
			k.m.Core(t.Core).MMU.TLB().FlushAll()
			t.Clock.Advance(k.cost.TLBFlushLocal)
		}
		t.Clock.Advance(k.cost.AKSysretEmul)
		return reply.Res
	}

	k.countForwardedSyscall()

	t.mu.Lock()
	svc := t.syncSvc
	t.mu.Unlock()

	if svc != nil {
		res, err := svc.Invoke(t.Clock, call, reqID)
		if err != nil {
			return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.EINTR}
		}
		reply = hvm.Reply{Res: res}
	} else {
		ch := t.channel()
		if ch == nil {
			return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.ENOSYS}
		}
		env := ch.NewEnvelope()
		env.Kind = hvm.EvSyscall
		env.Call = call
		env.ReqID = reqID
		r, err := ch.Forward(t.Clock, env)
		if err != nil {
			return linuxabi.Result{Ret: ^uint64(0), Err: linuxabi.EINTR}
		}
		reply = r
	}
	// A forwarded memory-management call may have tightened mappings the
	// ROS kernel's own TLB shootdown cannot reach: Linux does not know
	// the HRT core exists. Nautilus invalidates locally so protection
	// changes (the GC's mprotect write barriers, munmap) take effect in
	// the HRT too.
	switch call.Num {
	case linuxabi.SysMprotect, linuxabi.SysMunmap, linuxabi.SysMmap, linuxabi.SysBrk:
		k.m.Core(t.Core).MMU.TLB().FlushAll()
		t.Clock.Advance(k.cost.TLBFlushLocal)
	}
	t.Clock.Advance(k.cost.AKSysretEmul)
	return reply.Res
}

// containInjectedPanic exercises panic containment on the syscall path:
// the injected panic unwinds onto the IST stack, the kernel's handler
// recovers, and the syscall restarts from the stub. Output-preserving by
// construction — only latency is added.
func (t *Thread) containInjectedPanic(reqID uint64) {
	k := t.kern()
	defer func() {
		_ = recover()
		t.Clock.Advance(k.cost.AKIstSwitch + k.cost.PageFaultHW)
		k.metrics.Counter("ak.panic.contained").Inc()
		k.recorder.Record(t.Clock.Now(), telemetry.RecPanic, uint64(t.ID), reqID, t.sysCount, 0)
		// A contained panic is a post-mortem trigger: dump the flight
		// recorder once so the lead-up is preserved even if the run
		// subsequently completes.
		k.recorder.AutoDump(fmt.Sprintf("contained HRT panic on thread %d", t.ID))
	}()
	panic("injected: hrt-panic mid-syscall")
}

// NotifyExit raises the thread-exit event to the ROS side so the partner
// can run its cleanup and unblock join (section 4.2, Threads).
func (t *Thread) NotifyExit(code uint64) error {
	ch := t.channel()
	if ch == nil {
		return nil
	}
	_, err := ch.Forward(t.Clock, &hvm.Envelope{Kind: hvm.EvThreadExit, ExitCode: code, ReqID: t.nextReqID()})
	return err
}

// Event is the Nautilus event primitive: a kernel-mode wakeup designed to
// outperform the Linux futex/condvar path by orders of magnitude
// (section 2).
type Event struct {
	mu      sync.Mutex
	kern    *Kernel
	waiters []chan cycles.Cycles
}

// NewEvent creates an event on the kernel.
func (k *Kernel) NewEvent() *Event { return &Event{kern: k} }

// Wait blocks t until the event is signaled.
func (e *Event) Wait(t *Thread) {
	t.Clock.Advance(e.kern.cost.AKEventWait)
	ch := make(chan cycles.Cycles, 1)
	e.mu.Lock()
	e.waiters = append(e.waiters, ch)
	e.mu.Unlock()
	t.Clock.SyncTo(<-ch)
}

// Signal wakes all current waiters.
func (e *Event) Signal(t *Thread) {
	at := t.Clock.Advance(e.kern.cost.AKEventSignal)
	e.mu.Lock()
	ws := e.waiters
	e.waiters = nil
	e.mu.Unlock()
	for _, ch := range ws {
		ch <- at
	}
}
