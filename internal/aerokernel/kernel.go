// Package aerokernel models Nautilus: the lightweight kernel framework an
// HRT runs inside. Everything here executes (in the model) in ring 0 on
// the HRT partition of the HVM.
//
// The package implements the Nautilus pieces the paper built or extended
// for Multiverse (section 4.4): fast kernel threads and events, the system
// call stub that forwards to the ROS (with SYSRET emulated because a
// ring0->ring0 return is architecturally disallowed), the page-fault
// handler that forwards lower-half faults over an event channel and
// re-merges the PML4 on duplicate faults, CR0.WP enforcement so kernel-
// mode writes honor read-only pages, IST-based interrupt stacks that keep
// red zones intact, and the symbol table behind AeroKernel function
// overrides.
package aerokernel

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/faults"
	"multiverse/internal/hvm"
	"multiverse/internal/image"
	"multiverse/internal/machine"
	"multiverse/internal/paging"
	"multiverse/internal/telemetry"
)

// AKFunc is an AeroKernel function callable by address or by name (the
// target of overrides and async call requests). It runs on an AK thread.
type AKFunc func(t *Thread, args []uint64) uint64

// funcBase is where synthetic AK function symbols live: in the higher
// half, like all AeroKernel text.
const funcBase = paging.HigherHalfMin + 0x40_0000

// Kernel is one booted AeroKernel instance.
type Kernel struct {
	m     *machine.Machine
	cost  *cycles.CostModel
	cores []machine.CoreID
	img   *image.Image

	// threads and nextTid are off the kernel mutex: thread creation and
	// retirement are per-spawn hot-path operations at density scale, and
	// neither needs to see the rest of the kernel state. k.mu still
	// guards current (bounded by core count) and the cold boot/merge
	// state below.
	nextTid atomic.Int64
	threads sync.Map // int tid -> *Thread

	mu       sync.Mutex
	space    *paging.AddressSpace
	current  map[machine.CoreID]*Thread
	symbols  []image.Symbol
	funcs    map[uint64]AKFunc // by symbol address
	nextFunc uint64
	merged   bool
	rosCR3   uint64
	merges   int

	// Incremental-merger state: the ROS-published generation source, the
	// snapshot the last merge consumed, and the cached ros-merge-view
	// (rebuilt only when the ROS CR3 changes).
	genSource    func() []uint64
	lastGen      []uint64
	mergeView    *paging.AddressSpace
	mergeViewCR3 uint64

	// userFault is the fast-lane resolver for protection faults on merged
	// user pages the runtime arranged on purpose (GC write barriers on
	// mprotect-backed segments). Nil unless the merger option installed one.
	userFault MemFaultHandler

	// lastFault implements the duplicate-page-fault heuristic: Nautilus
	// keeps a per-core record of the most recent forwarded fault address;
	// a repeat means the ROS changed a top-level mapping and the PML4
	// must be re-merged (section 4.4).
	lastFault map[machine.CoreID]uint64
	remerges  int
	// eagerRemerge re-merges on *every* forwarded fault — the naive
	// alternative policy the re-merge ablation compares against.
	eagerRemerge bool

	sigHandler func(sig int)

	// Kernel-managed memory (mm.go): regions, bump pointer, the
	// preserved PML4 entry for the AK slot, and the runtime's fault
	// handler for protection faults it arranged on purpose.
	memRegions   map[uint64]*akRegion
	memNext      uint64
	memSlotEntry uint64
	memFault     MemFaultHandler

	// sched is the per-core run-queue scheduler (core.Options.Scheduler);
	// nil when the option is off. faultMu serializes fault delivery and
	// occupancy installation per core so a fault can never vector into the
	// wrong thread when two threads share a core.
	sched   *Scheduler
	faultMu map[machine.CoreID]*sync.Mutex

	events chan *hvm.HRTRequest
	halted atomic.Bool

	// Telemetry handed over by the HVM at boot (hvm.BootInfo). tracer may
	// be nil (tracing off); metrics is never nil after Boot; recorder is
	// the always-on flight recorder (nil-safe when absent).
	tracer   *telemetry.Tracer
	metrics  *telemetry.Registry
	recorder *telemetry.Recorder

	// Counters for the evaluation. forwardedSyscalls is on the syscall
	// hot path, so it is an atomic with its metric handle resolved once
	// (fwdSysCtr) rather than a k.mu critical section plus a registry
	// lookup per call.
	forwardedFaults   uint64
	forwardedSyscalls atomic.Uint64
	fwdSysCtr         *telemetry.Counter

	// faults is the armed fault-injection plane (nil = off), delivered
	// through the boot protocol for HRT-panic injection.
	faults *faults.Injector
}

// Boot brings up the AeroKernel on the HRT partition described by info:
// it builds the HRT address space (higher-half identity map over all of
// physical memory), enables CR0.WP on every HRT core, installs IST-backed
// fault vectors, loads the image's symbol table, and starts the event loop
// that waits for injected requests. It is the hvm.BootHandler the
// Multiverse runtime registers.
func Boot(m *machine.Machine, info hvm.BootInfo) (*Kernel, error) {
	k := &Kernel{
		m:         m,
		cost:      m.Cost,
		cores:     append([]machine.CoreID(nil), info.HRTCores...),
		img:       info.Image,
		current:   make(map[machine.CoreID]*Thread),
		funcs:     make(map[uint64]AKFunc),
		nextFunc:  funcBase,
		lastFault: make(map[machine.CoreID]uint64),
		faultMu:   make(map[machine.CoreID]*sync.Mutex),
		events:    make(chan *hvm.HRTRequest, 4),
		tracer:    info.Tracer,
		metrics:   info.Metrics,
		recorder:  info.Recorder,
		faults:    info.Faults,
	}
	if k.metrics == nil {
		k.metrics = telemetry.NewRegistry()
	}
	k.fwdSysCtr = k.metrics.Counter("ak.forwarded_syscalls")
	zone := m.ZoneOfCore(info.Core)
	space, err := paging.NewAddressSpace(m.Phys, zone, "hrt")
	if err != nil {
		return nil, fmt.Errorf("aerokernel: boot: %w", err)
	}
	// The HVM arranges the identity map of the whole physical address
	// space into the higher half; the HRT has "full access to all the
	// memory ... of the entire VM" (section 2).
	var total uint64
	for _, z := range m.Phys.Zones() {
		if end := uint64(z.End()); end > total {
			total = end
		}
	}
	if err := space.IdentityMapHigherHalf(total); err != nil {
		return nil, fmt.Errorf("aerokernel: higher-half identity map: %w", err)
	}
	k.space = space
	space.SetTelemetry(k.metrics)

	for _, c := range k.cores {
		core := m.Core(c)
		core.MMU.LoadCR3(space)
		// Enforce write faults in ring 0 (CR0.WP), restoring user-mode
		// copy-on-write/GC-barrier semantics in kernel mode.
		core.MMU.SetWP(true)
		ist := machine.NewStack(16 * 1024)
		if err := core.SetISTStack(1, ist); err != nil {
			return nil, err
		}
		if err := core.SetHandler(machine.VecPageFault, 1, k.pageFaultVector); err != nil {
			return nil, err
		}
		if err := core.SetHandler(machine.VecHVMEvent, 1, func(*machine.Core, *machine.InterruptFrame) {}); err != nil {
			return nil, err
		}
	}

	if info.Image != nil {
		k.symbols = append([]image.Symbol(nil), info.Image.Symbols...)
		sort.Slice(k.symbols, func(i, j int) bool { return k.symbols[i].Name < k.symbols[j].Name })
	}

	go k.eventLoop(info.Core)
	return k, nil
}

// Inject implements hvm.HRTSink: requests enter the AeroKernel event
// loop. A request injected into a halted kernel completes with an error
// code instead of wedging the requester (the VMM's view of a dead guest).
func (k *Kernel) Inject(req *hvm.HRTRequest) {
	defer func() {
		if recover() != nil { // event loop gone: channel closed
			req.Complete(cycles.NewClock(req.Arrival), ^uint64(0))
		}
	}()
	k.events <- req
}

// Halt stops the event loop (HRT shutdown/reboot path).
func (k *Kernel) Halt() {
	if k.halted.CompareAndSwap(false, true) {
		close(k.events)
	}
}

// Halted reports whether the kernel has been halted. The warm-pool claim
// path checks it so a recycled context is never attached to a dead kernel.
func (k *Kernel) Halted() bool { return k.halted.Load() }

// SeedThreadIDs advances the thread-id counter to at least base. A grid
// seeds each node's kernel into a disjoint range so a thread re-homed by
// migration keeps a unique id on the target kernel. Advance-only; a
// no-op if the counter is already past base.
func (k *Kernel) SeedThreadIDs(base int64) {
	for {
		cur := k.nextTid.Load()
		if cur >= base || k.nextTid.CompareAndSwap(cur, base) {
			return
		}
	}
}

// eventLoop is the boot-core idle loop: "the boot process brings the
// AeroKernel up into an event loop that waits for HRT thread creation
// requests" (section 3.5).
func (k *Kernel) eventLoop(bootCore machine.CoreID) {
	clk := cycles.NewClock(0)
	k.m.Core(bootCore).SetClock(clk)
	for req := range k.events {
		clk.SyncTo(req.Arrival)
		switch req.Op {
		case hvm.OpMerge:
			err := k.Merge(clk, bootCore, req.CR3)
			ret := uint64(0)
			if err != nil {
				ret = ^uint64(0)
			}
			req.Complete(clk, ret)
		case hvm.OpCall:
			fn := k.funcByAddr(req.Fn)
			if fn == nil {
				req.Complete(clk, ^uint64(0))
				continue
			}
			t := k.newThread(bootCore, nil)
			t.Clock.SyncTo(clk.Now())
			ret := fn(t, req.Args)
			clk.SyncTo(t.Clock.Now())
			k.retire(t)
			req.Complete(clk, ret)
		case hvm.OpSignal:
			k.mu.Lock()
			h := k.sigHandler
			k.mu.Unlock()
			if h != nil {
				h(req.Signal)
			}
			req.Complete(clk, 0)
		default:
			req.Complete(clk, ^uint64(0))
		}
	}
}

// SetSignalHandler installs the handler for injected ROS->HRT signals.
func (k *Kernel) SetSignalHandler(h func(sig int)) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.sigHandler = h
}

// Space returns the HRT address space.
func (k *Kernel) Space() *paging.AddressSpace {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.space
}

// Cores returns the HRT partition.
func (k *Kernel) Cores() []machine.CoreID {
	return append([]machine.CoreID(nil), k.cores...)
}

// Merged reports whether a lower-half merger is in effect.
func (k *Kernel) Merged() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.merged
}

// MergeCount returns how many mergers (initial + re-merges) have run.
func (k *Kernel) MergeCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.merges
}

// EnableIncrementalMerger installs the ROS generation source: subsequent
// re-merges against the same CR3 copy only the PML4 slots whose generation
// moved since the previous merge, and shoot down only those slots when the
// delta is small. The first merge (and any merge against a new CR3) stays
// a full copy.
func (k *Kernel) EnableIncrementalMerger(gens func() []uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.genSource = gens
}

// EnableScheduler turns on the per-core run-queue scheduler over the HRT
// partition (core.Options.Scheduler). Idempotent: a second call returns
// the same scheduler.
func (k *Kernel) EnableScheduler() *Scheduler {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sched == nil {
		k.sched = newScheduler(k)
	}
	return k.sched
}

// Scheduler returns the run-queue scheduler, or nil when the option is off.
func (k *Kernel) Scheduler() *Scheduler {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.sched
}

// faultLock returns the per-core mutex serializing occupancy installation
// and fault delivery on a core.
func (k *Kernel) faultLock(c machine.CoreID) *sync.Mutex {
	k.mu.Lock()
	defer k.mu.Unlock()
	m := k.faultMu[c]
	if m == nil {
		m = &sync.Mutex{}
		k.faultMu[c] = m
	}
	return m
}

// SetUserFaultHandler installs the fault fast lane: protection faults on
// merged lower-half pages are offered to h before any forwarding or
// re-merge. h returning true means the fault is resolved HRT-locally.
func (k *Kernel) SetUserFaultHandler(h MemFaultHandler) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.userFault = h
}

// SetEagerRemerge switches the re-merge policy (ablation): when set, the
// fault handler re-merges the PML4 before forwarding every fault, instead
// of only on duplicate faults.
func (k *Kernel) SetEagerRemerge(on bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.eagerRemerge = on
}

// RemergeCount returns how many duplicate-fault re-merges have run.
func (k *Kernel) RemergeCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.remerges
}

// ForwardedFaults returns the number of page faults forwarded to the ROS.
func (k *Kernel) ForwardedFaults() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.forwardedFaults
}

// ForwardedSyscalls returns the number of system calls forwarded.
func (k *Kernel) ForwardedSyscalls() uint64 {
	return k.forwardedSyscalls.Load()
}

// countForwardedSyscall bumps both views of the forwarded-syscall count:
// the evaluation counter and the exposition-plane metric (whose handle
// Boot resolved once).
func (k *Kernel) countForwardedSyscall() {
	k.forwardedSyscalls.Add(1)
	k.fwdSysCtr.Inc()
}

// targetedShootdownMaxSlots is the delta size up to which a re-merge
// invalidates per-slot (invlpg on resident entries) instead of broadcasting
// a full flush. Typical deltas touch one or two slots; anything larger is
// cheaper to flush wholesale.
const targetedShootdownMaxSlots = 8

// Merge copies the lower half of the ROS process's PML4 (found through
// cr3) into the HRT's PML4 and shoots down the HRT cores' TLBs — the
// address-space merger superposition. With the incremental merger enabled,
// a re-merge against the same CR3 copies only the slots whose ROS
// generation stamp moved and, for small deltas, invalidates only those
// slots instead of flushing.
func (k *Kernel) Merge(clk *cycles.Clock, onCore machine.CoreID, cr3 uint64) error {
	track := telemetry.Track{Core: int(onCore), Name: "ak"}
	sp := k.tracer.Begin(track, "merger", "merger", clk.Now(),
		telemetry.Attr{Key: "cr3", Val: cr3})
	defer func() { sp.EndAt(clk.Now()) }()
	start := clk.Now()

	k.mu.Lock()
	space := k.space
	rosSpace := k.mergeView
	if rosSpace == nil || k.mergeViewCR3 != cr3 {
		rosSpace = paging.FromCR3(k.m.Phys, k.m.ZoneOfCore(onCore), cr3, "ros-merge-view")
		k.mergeView = rosSpace
		k.mergeViewCR3 = cr3
	}
	genSource := k.genSource
	lastGen := k.lastGen
	delta := genSource != nil && k.merged && k.rosCR3 == cr3
	k.mu.Unlock()

	// Snapshot the generations before touching the tables: a ROS mutation
	// racing the copy re-bumps its slot relative to this snapshot and gets
	// re-copied by the next merge.
	var gens []uint64
	if genSource != nil {
		gens = genSource()
	}
	var changed []int
	if delta {
		for i, g := range gens {
			if i >= len(lastGen) || g != lastGen[i] {
				changed = append(changed, i)
			}
		}
	}

	cp := k.tracer.Begin(track, "merger", "pml4-copy", clk.Now())
	var n int
	var err error
	if delta {
		n, err = space.CopyTopEntriesFrom(rosSpace, changed)
		k.metrics.Counter("merger.delta.entries").Add(uint64(n))
		cp.SetAttr("delta", 1)
	} else {
		n, err = space.CopyLowerHalfFrom(rosSpace)
	}
	clk.Advance(cycles.Cycles(n) * k.cost.PML4EntryCopy)
	cp.SetAttr("entries", uint64(n))
	cp.EndAt(clk.Now())
	if err != nil {
		return fmt.Errorf("aerokernel: merger: %w", err)
	}
	// A full copy takes every lower-half entry from the ROS, which would
	// wipe the AeroKernel's own memory-management slot; restore it. A delta
	// copy can only touch the slot if the ROS claimed it, which MemMap
	// forbids.
	k.mu.Lock()
	slotEntry := k.memSlotEntry
	k.mu.Unlock()
	if slotEntry != 0 && (!delta || containsSlot(changed, akMemSlot)) {
		if err := space.SetTopEntry(akMemSlot, slotEntry); err != nil {
			return fmt.Errorf("aerokernel: restoring AK memory slot: %w", err)
		}
	}
	sd := k.tracer.Begin(track, "merger", "tlb-shootdown", clk.Now())
	if delta && len(changed) <= targetedShootdownMaxSlots {
		k.m.ShootdownTLBSlots(onCore, k.cores, changed)
		k.metrics.Counter("merger.shootdown.targeted").Inc()
		k.tracer.Instant(track, "merger", "targeted-shootdown", clk.Now())
	} else {
		k.m.ShootdownTLB(onCore, k.cores)
		k.metrics.Counter("merger.shootdown.broadcast").Inc()
	}
	sd.EndAt(clk.Now())
	k.mu.Lock()
	k.merged = true
	k.rosCR3 = cr3
	k.merges++
	if gens != nil {
		k.lastGen = gens
	}
	k.mu.Unlock()
	k.metrics.Counter("ak.merges").Inc()
	k.metrics.LatencyHistogram("ak.merge.latency").Observe(clk.Now() - start)
	k.recorder.Record(clk.Now(), telemetry.RecMergeDelta, uint64(onCore), 0, uint64(n), boolU64(delta))
	return nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// containsSlot reports whether slot is in slots.
func containsSlot(slots []int, slot int) bool {
	for _, s := range slots {
		if s == slot {
			return true
		}
	}
	return false
}

// funcByAddr resolves a registered AK function address.
func (k *Kernel) funcByAddr(addr uint64) AKFunc {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.funcs[addr]
}

// RegisterFunc publishes an AeroKernel function under a symbol name,
// returning its address. If the booted image's symbol table already
// exports the name, the implementation binds to that address (the code
// lives where the linker put it); otherwise a synthetic symbol is added.
// Override wrappers and async-call requesters resolve it by symbol lookup.
func (k *Kernel) RegisterFunc(name string, fn AKFunc) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, s := range k.symbols {
		if s.Name == name {
			k.funcs[s.Addr] = fn
			return s.Addr
		}
	}
	addr := k.nextFunc
	k.nextFunc += 64
	k.funcs[addr] = fn
	k.symbols = append(k.symbols, image.Symbol{Name: name, Addr: addr, Size: 64})
	sort.Slice(k.symbols, func(i, j int) bool { return k.symbols[i].Name < k.symbols[j].Name })
	return addr
}

// LookupSymbol performs the uncached symbol lookup the override wrappers
// do on *every* invocation in the current design — a linear scan whose
// per-entry compare cost is charged to the caller, "so incurs a
// non-trivial overhead" (section 4.2). The symbol-cache ablation measures
// the alternative.
func (k *Kernel) LookupSymbol(clk *cycles.Clock, name string) (uint64, bool) {
	k.mu.Lock()
	syms := k.symbols
	k.mu.Unlock()
	const perEntry = 18 // strcmp + table walk per entry
	for i, s := range syms {
		if clk != nil {
			clk.Advance(perEntry)
		}
		if s.Name == name {
			_ = i
			return s.Addr, true
		}
	}
	return 0, false
}

// SymbolCount returns the symbol-table size (lookup cost scales with it).
func (k *Kernel) SymbolCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.symbols)
}

// CallByAddr invokes a registered AK function directly on thread t (the
// tail of an override wrapper: "the wrapper then invokes the function
// directly since it is already executing in the HRT context").
func (k *Kernel) CallByAddr(t *Thread, addr uint64, args ...uint64) (uint64, error) {
	fn := k.funcByAddr(addr)
	if fn == nil {
		return 0, fmt.Errorf("aerokernel: no function at %#x", addr)
	}
	return fn(t, args), nil
}

// pageFaultVector is the IDT entry for #PF on HRT cores. It runs on the
// IST stack (so red zones survive) and delegates to the handler with the
// interrupted thread's context.
func (k *Kernel) pageFaultVector(c *machine.Core, f *machine.InterruptFrame) {
	k.mu.Lock()
	t := k.current[c.ID]
	k.mu.Unlock()
	if t == nil {
		panic(fmt.Sprintf("aerokernel: page fault on core %d with no thread (addr %#x)", c.ID, f.CR2))
	}
	t.faultStatus = k.handleFault(t, f)
}

// handleFault implements the Nautilus addition: "a check in the page fault
// handler to look for ROS virtual addresses and forward them appropriately
// over an event channel", plus the duplicate-fault re-merge.
func (k *Kernel) handleFault(t *Thread, f *machine.InterruptFrame) error {
	addr := f.CR2
	if !paging.IsLowerHalf(addr) {
		// A higher-half fault is an AeroKernel bug (the identity map
		// covers all physical memory).
		return fmt.Errorf("aerokernel: unexpected higher-half fault at %#x", addr)
	}
	if inAKRegion(addr) {
		// Kernel-managed memory: this fault is the runtime's own doing
		// (a write barrier it arranged with MemProtect). Resolve it at
		// kernel speed — no forwarding.
		k.mu.Lock()
		h := k.memFault
		k.mu.Unlock()
		if h != nil && h(addr, f.ErrorCode&0x2 != 0) {
			k.m.Core(t.Core).MMU.TLB().FlushVA(addr)
			return nil
		}
		return fmt.Errorf("aerokernel: unhandled fault in AK memory at %#x", addr)
	}
	if !k.Merged() {
		return fmt.Errorf("aerokernel: lower-half access at %#x before merger", addr)
	}

	// Fault fast lane: a protection fault on a present merged page may be
	// one the runtime arranged on purpose (a GC write barrier on an
	// mprotect-backed segment). Offer it to the registered resolver before
	// any crossing or re-merge — it un-protects by direct PTE edit on the
	// shared tables at kernel speed.
	if f.ErrorCode&0x1 != 0 {
		k.mu.Lock()
		uh := k.userFault
		k.mu.Unlock()
		if uh != nil {
			lstart := t.Clock.Now()
			if uh(addr, f.ErrorCode&0x2 != 0) {
				k.m.Core(t.Core).MMU.TLB().FlushVA(addr)
				k.metrics.Counter("fault.local").Inc()
				k.metrics.LatencyHistogram("fault.local.latency").Observe(t.Clock.Now() - lstart)
				return nil
			}
		}
	}

	// Faults that may cross the boundary (re-merge or forward) are tracked
	// requests like syscalls: allocate the causal id here so the merger
	// delta work and the forwarded envelope carry the same one.
	reqID := t.nextReqID()

	k.mu.Lock()
	dup := k.lastFault[t.Core] == addr
	k.lastFault[t.Core] = addr
	cr3 := k.rosCR3
	eager := k.eagerRemerge
	k.mu.Unlock()

	if eager {
		if err := k.Merge(t.Clock, t.Core, cr3); err != nil {
			return err
		}
		k.mu.Lock()
		k.remerges++
		k.mu.Unlock()
		k.metrics.Counter("ak.remerges").Inc()
		k.recorder.Record(t.Clock.Now(), telemetry.RecRemerge, uint64(t.ID), reqID, addr, 0)
	} else if dup {
		// Same address faulted twice in a row: the ROS must have
		// changed a top-level mapping after our merger. Re-merge.
		if err := k.Merge(t.Clock, t.Core, cr3); err != nil {
			return err
		}
		k.mu.Lock()
		k.remerges++
		delete(k.lastFault, t.Core)
		k.mu.Unlock()
		k.metrics.Counter("ak.remerges").Inc()
		k.recorder.Record(t.Clock.Now(), telemetry.RecRemerge, uint64(t.ID), reqID, addr, 0)
		return nil
	}

	// Degraded ROS-only mode: the group's channel is beyond its recovery
	// budget, so the access is replicated by a direct ROS entry instead.
	if fb := t.fallbackSvc(); fb != nil && fb.Fault != nil {
		if fb.Fault(t, addr, f.ErrorCode&0x2 != 0) {
			k.m.Core(t.Core).MMU.TLB().FlushVA(addr)
			return nil
		}
		return fmt.Errorf("aerokernel: degraded ROS service could not resolve fault at %#x", addr)
	}

	// Forward the fault to the ROS over the execution group's event
	// channel; the partner replicates the access and the ROS handles it
	// as it would natively.
	ch := t.channel()
	if ch == nil {
		return fmt.Errorf("aerokernel: fault at %#x with no event channel", addr)
	}
	k.mu.Lock()
	k.forwardedFaults++
	k.mu.Unlock()
	k.metrics.Counter("ak.forwarded_faults").Inc()
	reply, err := ch.Forward(t.Clock, &hvm.Envelope{
		Kind:       hvm.EvPageFault,
		FaultAddr:  addr,
		FaultWrite: f.ErrorCode&0x2 != 0,
		ReqID:      reqID,
	})
	if err != nil {
		return err
	}
	if !reply.FaultOK {
		return fmt.Errorf("aerokernel: ROS could not resolve fault at %#x", addr)
	}
	// The ROS fixed the shared lower-level tables; drop our stale TLB
	// entry and let the instruction retry.
	k.m.Core(t.Core).MMU.TLB().FlushVA(addr)
	return nil
}
