package aerokernel

import (
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/machine"
	"multiverse/internal/telemetry"
)

// defaultSpinWindow is how long (in virtual cycles) an idle core spins
// polling its run queue before executing hlt. A placement or steal that
// arrives inside the window costs nothing extra; one that arrives later
// must kick the core (VecSchedKick IPI) and pay the hlt wakeup.
const defaultSpinWindow cycles.Cycles = 20_000

// QueueEntry is one slot in a per-core run queue. Entries form a chain in
// placement order; a thread starting on a core waits for its nearest
// non-ancestor predecessor to release the core and syncs its clock past
// that release — same-core threads serialize in virtual time, so
// parallelism is modeled, never assumed from host goroutine interleaving.
type QueueEntry struct {
	core    machine.CoreID
	creator *QueueEntry // entry of the creating thread, if it has one
	prev    *QueueEntry // previous placement on the same core

	once    sync.Once
	done    chan struct{}
	release cycles.Cycles // core-release stamp; valid once done is closed
}

// finish publishes the entry's release stamp (idempotent).
func (e *QueueEntry) finish(at cycles.Cycles) {
	e.once.Do(func() {
		e.release = at
		close(e.done)
	})
}

// Core returns the core this entry was placed on.
func (e *QueueEntry) Core() machine.CoreID { return e.core }

// schedCore is the scheduler's per-core state.
type schedCore struct {
	id     machine.CoreID
	load   int           // live placed threads (queue + nested workers)
	placed int           // cumulative placements; never decremented
	freeAt cycles.Cycles // release stamp of the last burst/thread that ran here
	tail   *QueueEntry   // most recent queue placement (retired entries stay linked)
}

// Scheduler implements per-core run queues with deterministic virtual-time
// accounting, least-loaded placement, burst serialization for legion's
// work-stealing tasks, and the spin-then-halt idle policy. It only exists
// when core.Options.Scheduler is on; every cost it charges goes to the
// clock of the context that *observes* the latency, so host scheduling
// cannot leak into virtual time.
type Scheduler struct {
	k          *Kernel
	spinWindow cycles.Cycles

	mu    sync.Mutex
	cores []machine.CoreID
	state map[machine.CoreID]*schedCore

	placeCtr  *telemetry.Counter
	stealCtr  *telemetry.Counter
	haltCtr   *telemetry.Counter
	delayHist *telemetry.Histogram
}

func newScheduler(k *Kernel) *Scheduler {
	s := &Scheduler{
		k:          k,
		spinWindow: defaultSpinWindow,
		cores:      append([]machine.CoreID(nil), k.cores...),
		state:      make(map[machine.CoreID]*schedCore),
		placeCtr:   k.metrics.Counter("sched.place"),
		stealCtr:   k.metrics.Counter("sched.steal"),
		haltCtr:    k.metrics.Counter("sched.idle.halt"),
		delayHist:  k.metrics.LatencyHistogram("sched.queue.delay"),
	}
	for _, c := range s.cores {
		s.state[c] = &schedCore{id: c}
	}
	return s
}

// Cores returns the HRT partition the scheduler places onto, in id order.
func (s *Scheduler) Cores() []machine.CoreID {
	return append([]machine.CoreID(nil), s.cores...)
}

// SpinWindow returns the idle-spin window before a core halts.
func (s *Scheduler) SpinWindow() cycles.Cycles { return s.spinWindow }

// Load returns the live placed-thread count on a core.
func (s *Scheduler) Load(c machine.CoreID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.state[c]; cs != nil {
		return cs.load
	}
	return 0
}

// leastLoadedLocked picks the core with the fewest cumulative placements,
// breaking ties by lowest core id (s.cores is in id order). The count is
// never decremented: live load decays when a thread retires, which happens
// at host real time, so balancing on it would make placement depend on how
// far concurrently running threads happen to have progressed. Cumulative
// counts are a pure function of program creation order — placement is the
// static half of load balancing; the work-stealing deques rebalance any
// imbalance that develops at run time.
func (s *Scheduler) leastLoadedLocked() *schedCore {
	var best *schedCore
	for _, c := range s.cores {
		cs := s.state[c]
		if best == nil || cs.placed < best.placed {
			best = cs
		}
	}
	return best
}

// PlaceTopLevel picks a core for a new top-level thread, chains a run-queue
// entry behind the core's current tail, and charges the enqueue cost to the
// creator. creator (the thread executing the spawn) may be nil; if it has a
// queue entry of its own, that entry is recorded so descendants can skip
// ancestors when they wait for the core — a creator may legitimately block
// on its child (places join) and must not deadlock the queue.
func (s *Scheduler) PlaceTopLevel(clk *cycles.Clock, creator *Thread) (machine.CoreID, *QueueEntry) {
	s.mu.Lock()
	cs := s.leastLoadedLocked()
	cs.load++
	cs.placed++
	e := &QueueEntry{core: cs.id, prev: cs.tail, done: make(chan struct{})}
	if creator != nil {
		e.creator = creator.queueEntry()
	}
	cs.tail = e
	s.mu.Unlock()
	clk.Advance(s.k.cost.SchedEnqueue)
	s.placeCtr.Inc()
	return cs.id, e
}

// CancelEntry unwinds a placement whose thread never started (spawn
// failure): the load is released and the entry resolves with a zero
// release stamp so successors do not wait on it.
func (s *Scheduler) CancelEntry(e *QueueEntry) {
	if e == nil {
		return
	}
	s.mu.Lock()
	if cs := s.state[e.core]; cs != nil {
		cs.load--
	}
	s.mu.Unlock()
	e.finish(0)
}

// PlaceNested picks a core for a nested thread (least-loaded, tie lowest
// id) and charges the enqueue cost to the creating thread's clock.
func (s *Scheduler) PlaceNested(clk *cycles.Clock) machine.CoreID {
	s.mu.Lock()
	cs := s.leastLoadedLocked()
	cs.load++
	cs.placed++
	s.mu.Unlock()
	clk.Advance(s.k.cost.SchedEnqueue)
	s.placeCtr.Inc()
	return cs.id
}

// ReleaseNested drops the load a PlaceNested placement charged to a core.
func (s *Scheduler) ReleaseNested(c machine.CoreID) {
	s.mu.Lock()
	if cs := s.state[c]; cs != nil {
		cs.load--
	}
	s.mu.Unlock()
}

// waitTurn serializes a queued thread behind its core's previous occupant:
// it blocks (host time) until the nearest non-ancestor predecessor
// releases the core, then syncs the thread's clock past that release. If
// instead the core had been free for longer than the spin window, the core
// halted and this thread's placement pays the kick + wakeup.
func (s *Scheduler) waitTurn(t *Thread) {
	e := t.queueEntry()
	if e == nil {
		return
	}
	anc := make(map[*QueueEntry]bool)
	for a := e.creator; a != nil; a = a.creator {
		anc[a] = true
	}
	p := e.prev
	for p != nil && anc[p] {
		p = p.prev
	}
	ready := t.Clock.Now()
	var idleSince cycles.Cycles // when the core last went free (boot = 0)
	if p != nil {
		<-p.done
		idleSince = p.release
	}
	if idleSince > ready {
		// Core still busy at our ready time: serialize behind the occupant.
		t.Clock.SyncTo(idleSince)
	} else if ready > idleSince+s.spinWindow {
		// The core exhausted its spin window waiting and executed hlt;
		// the woken side observes the kick IPI plus the hlt exit latency.
		s.k.m.Core(e.core).SetHalted(true)
		s.k.m.KickCore(t.Clock, e.core)
		t.Clock.Advance(s.k.cost.IdleHaltWake)
		s.haltCtr.Inc()
	}
	s.delayHist.Observe(t.Clock.Now() - ready)
	s.k.m.Core(e.core).SetOccupant(t.ID)
}

// threadRetired releases a queued thread's core: records the release
// stamp, folds it into the core's free time, and resolves the entry so
// successors can start.
func (s *Scheduler) threadRetired(t *Thread) {
	e := t.queueEntry()
	if e == nil {
		return
	}
	at := t.Clock.Now()
	s.mu.Lock()
	if cs := s.state[e.core]; cs != nil {
		cs.load--
		if cs.freeAt < at {
			cs.freeAt = at
		}
	}
	s.mu.Unlock()
	core := s.k.m.Core(e.core)
	if core.Occupant() == t.ID {
		core.SetOccupant(0)
	}
	e.finish(at)
}

// CoreFreeAt returns the stamp at which the core's last recorded burst or
// queued thread released it — the earliest a new burst could start there.
func (s *Scheduler) CoreFreeAt(c machine.CoreID) cycles.Cycles {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.state[c]; cs != nil {
		return cs.freeAt
	}
	return 0
}

// BurstStart begins one work-stealing task burst on a core: the bursting
// context's clock serializes behind whatever last ran there, and if the
// core instead sat idle past the spin window it is kicked out of hlt, the
// woken side paying the IPI and wakeup. tid is recorded as the core's
// occupant for fault-routing visibility.
func (s *Scheduler) BurstStart(c machine.CoreID, clk *cycles.Clock, tid int) {
	s.mu.Lock()
	free := s.state[c].freeAt
	s.mu.Unlock()
	ready := clk.Now()
	if free > ready {
		clk.SyncTo(free)
	} else if ready > free+s.spinWindow {
		s.k.m.Core(c).SetHalted(true)
		s.k.m.KickCore(clk, c)
		clk.Advance(s.k.cost.IdleHaltWake)
		s.haltCtr.Inc()
	}
	s.k.m.Core(c).SetOccupant(tid)
}

// BurstEnd releases the core at the bursting clock's current time.
func (s *Scheduler) BurstEnd(c machine.CoreID, clk *cycles.Clock) {
	at := clk.Now()
	s.mu.Lock()
	if cs := s.state[c]; cs != nil && cs.freeAt < at {
		cs.freeAt = at
	}
	s.mu.Unlock()
	s.k.m.Core(c).SetOccupant(0)
}

// FreeSnapshot reads each core's current freeAt stamp in one lock round
// trip, filling out (which must be len(cores)). Together with
// BurstStartAt/BurstEndAt/PublishFreeAt it lets a launch executor that
// owns a batch of bursts simulate the whole schedule against local state
// instead of paying one lock round trip per event.
func (s *Scheduler) FreeSnapshot(cores []machine.CoreID, out []cycles.Cycles) {
	s.mu.Lock()
	for i, c := range cores {
		if cs := s.state[c]; cs != nil {
			out[i] = cs.freeAt
		} else {
			out[i] = 0
		}
	}
	s.mu.Unlock()
}

// PublishFreeAt folds locally simulated release stamps back into the
// per-core state (monotone max) in one lock round trip.
func (s *Scheduler) PublishFreeAt(cores []machine.CoreID, frees []cycles.Cycles) {
	s.mu.Lock()
	for i, c := range cores {
		if cs := s.state[c]; cs != nil && cs.freeAt < frees[i] {
			cs.freeAt = frees[i]
		}
	}
	s.mu.Unlock()
}

// BurstStartAt is BurstStart against a caller-tracked free stamp: the
// same serialize-or-halt-wake arithmetic, no scheduler lock. Valid only
// while the caller owns the core's burst schedule (nothing else starts
// or ends bursts on it) and publishes the final stamps via PublishFreeAt.
func (s *Scheduler) BurstStartAt(c machine.CoreID, clk *cycles.Clock, tid int, free cycles.Cycles) {
	ready := clk.Now()
	if free > ready {
		clk.SyncTo(free)
	} else if ready > free+s.spinWindow {
		s.k.m.Core(c).SetHalted(true)
		s.k.m.KickCore(clk, c)
		clk.Advance(s.k.cost.IdleHaltWake)
		s.haltCtr.Inc()
	}
	s.k.m.Core(c).SetOccupant(tid)
}

// BurstEndAt releases the core at the bursting clock's current time,
// returning the release stamp for the caller's local free tracking.
func (s *Scheduler) BurstEndAt(c machine.CoreID, clk *cycles.Clock) cycles.Cycles {
	s.k.m.Core(c).SetOccupant(0)
	return clk.Now()
}

// ChargeEnqueue charges n deque pushes to clk (the launching context pays
// for populating the per-worker deques).
func (s *Scheduler) ChargeEnqueue(clk *cycles.Clock, n int) {
	clk.Advance(cycles.Cycles(n) * s.k.cost.SchedEnqueue)
}

// ChargeSteal charges one Chase–Lev steal to the thief's clock: the CAS on
// the victim's top pointer, plus an IPI-class kick when the victim deque
// lives on another core's cache domain.
func (s *Scheduler) ChargeSteal(clk *cycles.Clock, crossCore bool) {
	clk.Advance(s.k.cost.SchedSteal)
	if crossCore {
		clk.Advance(s.k.cost.IPIKick)
	}
	s.stealCtr.Inc()
}

// ObserveQueueDelay records one task's enqueue-to-start latency.
func (s *Scheduler) ObserveQueueDelay(d cycles.Cycles) {
	if d < 0 {
		d = 0
	}
	s.delayHist.Observe(d)
}
