package aerokernel

import (
	"fmt"
	"sync"
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/hvm"
	"multiverse/internal/paging"
)

func TestSchedulerPlacementDeterministic(t *testing.T) {
	r := newRig(t)
	s := r.k.EnableScheduler()
	if s != r.k.EnableScheduler() {
		t.Fatal("EnableScheduler not idempotent")
	}
	// The rig's HRT partition is cores 1 and 2: placements must cycle
	// 1,2,1,2,... because balancing uses cumulative placement counts
	// (never decremented), not live load.
	clk := cycles.NewClock(0)
	var entries []*QueueEntry
	want := []int{1, 2, 1, 2, 1}
	for i, w := range want {
		c, e := s.PlaceTopLevel(clk, nil)
		entries = append(entries, e)
		if int(c) != w {
			t.Fatalf("placement %d: core %d, want %d", i, c, w)
		}
	}
	if got := s.Load(1); got != 3 {
		t.Errorf("core 1 load = %d, want 3", got)
	}
	// Retiring (here: cancelling) placements drops live load but must not
	// change where the next placement lands.
	for _, e := range entries {
		s.CancelEntry(e)
	}
	if got := s.Load(1); got != 0 {
		t.Errorf("core 1 load after cancel = %d, want 0", got)
	}
	if c, e := s.PlaceTopLevel(clk, nil); int(c) != 2 {
		t.Errorf("post-cancel placement on core %d, want 2 (cumulative counts persist)", c)
	} else {
		s.CancelEntry(e)
	}
	// Enqueues are charged to the placing clock.
	if clk.Now() == 0 {
		t.Error("placement charged nothing")
	}
}

func TestSchedulerSameCoreSerializes(t *testing.T) {
	r := newRig(t)
	s := r.k.EnableScheduler()
	clk := cycles.NewClock(0)

	c1, e1 := s.PlaceTopLevel(clk, nil)
	t1 := r.k.CreateThread(clk, c1, Superposition{}, nil, nil)
	t1.AttachQueueEntry(e1)

	c2, e2 := s.PlaceTopLevel(clk, nil)
	if c2 == c1 {
		t.Fatalf("second placement on core %d, want the other core", c2)
	}

	// Third placement wraps around onto c1, queued behind t1.
	c3, e3 := s.PlaceTopLevel(clk, nil)
	if c3 != c1 {
		t.Fatalf("third placement on core %d, want %d", c3, c1)
	}
	t3 := r.k.CreateThread(cycles.NewClock(0), c3, Superposition{}, nil, nil)
	t3.AttachQueueEntry(e3)

	const burn = 500_000
	t1.Start(func(th *Thread) uint64 {
		th.Clock.Advance(burn)
		return 0
	})
	t3.Start(func(th *Thread) uint64 { return 0 })
	t1.Join(cycles.NewClock(0))
	t3.Join(cycles.NewClock(0))

	// t3 became runnable at ~0 but must not start before t1 released the
	// core: same-core threads serialize in virtual time.
	if t3.Clock.Now() < burn {
		t.Errorf("t3 finished at %d, before its core predecessor released at %d", t3.Clock.Now(), cycles.Cycles(burn))
	}
	s.CancelEntry(e2)
}

func TestSchedulerSpinThenHalt(t *testing.T) {
	r := newRig(t)
	s := r.k.EnableScheduler()
	clk := cycles.NewClock(0)

	// First occupant releases core 1 almost immediately.
	c1, e1 := s.PlaceTopLevel(clk, nil)
	t1 := r.k.CreateThread(clk, c1, Superposition{}, nil, nil)
	t1.AttachQueueEntry(e1)
	t1.Start(func(th *Thread) uint64 { return 0 })
	t1.Join(cycles.NewClock(0))
	release := e1.release

	_, e2 := s.PlaceTopLevel(clk, nil) // occupies core 2; never run
	defer s.CancelEntry(e2)

	// The next core-1 thread arrives long after the spin window expired:
	// the core halted, so the placement pays the kick IPI and hlt wakeup.
	c3, e3 := s.PlaceTopLevel(clk, nil)
	if c3 != c1 {
		t.Fatalf("placement on core %d, want %d", c3, c1)
	}
	late := cycles.NewClock(release + s.SpinWindow() + 10_000)
	t3 := r.k.CreateThread(late, c3, Superposition{}, nil, nil)
	t3.AttachQueueEntry(e3)
	arrive := t3.Clock.Now()
	t3.Start(func(th *Thread) uint64 { return 0 })
	t3.Join(cycles.NewClock(0))

	wake := r.k.m.Cost.IPIKick + r.k.cost.IdleHaltWake
	if got := t3.Clock.Now() - arrive; got < wake {
		t.Errorf("late arrival charged %d, want at least kick+wake = %d", got, wake)
	}
	if halts := r.k.metrics.Counter("sched.idle.halt").Value(); halts == 0 {
		t.Error("sched.idle.halt counter not incremented")
	}
	if r.k.metrics.Counter("sched.place").Value() != 3 {
		t.Errorf("sched.place = %d, want 3", r.k.metrics.Counter("sched.place").Value())
	}
}

func TestSchedulerNestedPlacementAndRelease(t *testing.T) {
	r := newRig(t)
	s := r.k.EnableScheduler()
	clk := cycles.NewClock(0)
	_, e1 := s.PlaceTopLevel(clk, nil)
	defer s.CancelEntry(e1)
	top := r.k.CreateThread(clk, 1, Superposition{}, nil, nil)
	top.AttachQueueEntry(e1)

	// Nested threads spread over the partition instead of inheriting the
	// parent's core.
	n1 := top.CreateNested()
	n2 := top.CreateNested()
	if n1.Core == n2.Core {
		t.Errorf("nested threads both on core %d; want them spread", n1.Core)
	}
	l1, l2 := s.Load(1), s.Load(2)
	n1.Release()
	n2.Release()
	if s.Load(1) >= l1 && s.Load(2) >= l2 {
		t.Error("Release did not drop nested load")
	}
}

// TestConcurrentFaultsSameCoreRouteCorrectly is the regression test for the
// fault-misroute bug: two threads sharing a core and faulting concurrently
// used to interleave their k.current installs, so a fault could vector into
// the wrong thread and one thread read the other's fault status. The fix
// holds the core's fault lock across install+raise+status read.
func TestConcurrentFaultsSameCoreRouteCorrectly(t *testing.T) {
	r := newRig(t)
	r.merge(t)

	mkServer := func(ch *hvm.EventChannel) {
		go func() {
			partnerClk := cycles.NewClock(0)
			for {
				env := ch.Recv(partnerClk)
				if env == nil {
					return
				}
				if env.Kind != hvm.EvPageFault {
					ch.Complete(partnerClk, env, hvm.Reply{})
					continue
				}
				f, err := r.m.Phys.Alloc(0, "page")
				ok := err == nil
				if ok {
					ok = r.ros.Map(paging.PageBase(env.FaultAddr), f, paging.PteUser|paging.PteWrite) == nil
				}
				ch.Complete(partnerClk, env, hvm.Reply{FaultOK: ok})
			}
		}()
	}

	ch1 := r.hv.NewEventChannel(1, 0)
	ch2 := r.hv.NewEventChannel(1, 0)
	mkServer(ch1)
	mkServer(ch2)
	defer ch1.Close()
	defer ch2.Close()

	// Both threads live on core 1 and fault on disjoint fresh pages at the
	// same host time.
	t1 := r.k.CreateThread(cycles.NewClock(0), 1, Superposition{}, ch1, nil)
	t2 := r.k.CreateThread(cycles.NewClock(0), 1, Superposition{}, ch2, nil)

	const pages = 40
	var wg sync.WaitGroup
	errs := make(chan error, 2*pages)
	touchLoop := func(th *Thread, base uint64) {
		defer wg.Done()
		for i := 0; i < pages; i++ {
			addr := base + uint64(i)*0x1000
			if err := th.Touch(addr, true); err != nil {
				errs <- fmt.Errorf("thread %d at %#x: %w", th.ID, addr, err)
				return
			}
		}
	}
	wg.Add(2)
	go touchLoop(t1, 0x7f10_0000_0000)
	go touchLoop(t2, 0x7f20_0000_0000)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
