// Package vcode is a second guest runtime for Multiverse: a stack-based
// vector virtual machine in the mould of the NESL VCODE interpreter — one
// of the three runtimes the paper's group hand-ported to Nautilus
// (section 2) and a natural target for automatic hybridization.
//
// The VM executes a small data-parallel instruction set over
// double-precision vectors. Its memory discipline is what matters for
// Multiverse: every vector lives in its own mmap'd region (released with
// munmap when popped), and results leave through write(2) — so a VCODE
// program produces the same class of legacy-ABI traffic as any real
// vector interpreter, and hybridization forwards all of it.
package vcode

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
)

// OS is the consumer-side view of the execution environment (a subset of
// core.Env, as with the Scheme runtime).
type OS interface {
	Clock() *cycles.Clock
	Compute(c cycles.Cycles)
	Syscall(call linuxabi.Call) linuxabi.Result
	Touch(addr uint64, write bool) error
	CheckTimer() bool
	RegisterSignalCode(addr uint64, fn func(*ros.SignalContext))
}

// elemCost is the virtual cost of one elementwise operation.
const elemCost = 6

// vector is one stack slot: data plus its mmap'd backing region.
type vector struct {
	data []float64
	addr uint64
	size uint64
}

// Op is one decoded instruction.
type Op struct {
	Name string
	Args []float64
	Line int
}

// Program is a parsed VCODE program.
type Program struct {
	Ops []Op
}

// Parse reads the one-instruction-per-line assembly format. Lines starting
// with ';' are comments.
func Parse(src string) (*Program, error) {
	var p Program
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		op := Op{Name: strings.ToUpper(fields[0]), Line: lineNo + 1}
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("vcode: line %d: bad operand %q", lineNo+1, f)
			}
			op.Args = append(op.Args, v)
		}
		p.Ops = append(p.Ops, op)
	}
	return &p, nil
}

// VM is one interpreter instance.
type VM struct {
	os    OS
	stack []*vector

	// Stats.
	Executed uint64
	Allocs   uint64
}

// NewVM prepares a VM on the environment. Like any runtime it announces
// itself to the OS (a small startup syscall footprint).
func NewVM(osenv OS) *VM {
	vm := &VM{os: osenv}
	_ = osenv.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
	return vm
}

// alloc maps a backing region for n elements and touches its pages in
// (the interpreter writes the vector immediately).
func (vm *VM) alloc(n int) (*vector, error) {
	size := uint64(n*8+4095) &^ 4095
	if size == 0 {
		size = 4096
	}
	res := vm.os.Syscall(linuxabi.Call{
		Num: linuxabi.SysMmap,
		Args: [6]uint64{
			0, size,
			linuxabi.ProtRead | linuxabi.ProtWrite,
			linuxabi.MapPrivate | linuxabi.MapAnonymous,
		},
	})
	if !res.Ok() {
		return nil, fmt.Errorf("vcode: vector mmap: %v", res.Err)
	}
	for off := uint64(0); off < size; off += 4096 {
		if err := vm.os.Touch(res.Ret+off, true); err != nil {
			return nil, fmt.Errorf("vcode: vector touch: %w", err)
		}
	}
	vm.Allocs++
	return &vector{data: make([]float64, n), addr: res.Ret, size: size}, nil
}

func (vm *VM) free(v *vector) {
	_ = vm.os.Syscall(linuxabi.Call{Num: linuxabi.SysMunmap, Args: [6]uint64{v.addr, v.size}})
}

func (vm *VM) push(v *vector) { vm.stack = append(vm.stack, v) }

func (vm *VM) pop() (*vector, error) {
	if len(vm.stack) == 0 {
		return nil, fmt.Errorf("vcode: stack underflow")
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v, nil
}

// Depth returns the current stack depth.
func (vm *VM) Depth() int { return len(vm.stack) }

// Run executes the program, writing WRITE output through the environment.
func (vm *VM) Run(p *Program) error {
	for _, op := range p.Ops {
		vm.Executed++
		vm.os.CheckTimer()
		if err := vm.step(op); err != nil {
			return fmt.Errorf("vcode: line %d (%s): %w", op.Line, op.Name, err)
		}
	}
	return nil
}

func (vm *VM) step(op Op) error {
	charge := func(n int) { vm.os.Compute(cycles.Cycles(n) * elemCost) }

	binary := func(f func(a, b float64) float64) error {
		b, err := vm.pop()
		if err != nil {
			return err
		}
		a, err := vm.pop()
		if err != nil {
			return err
		}
		if len(a.data) != len(b.data) {
			return fmt.Errorf("length mismatch %d vs %d", len(a.data), len(b.data))
		}
		out, err := vm.alloc(len(a.data))
		if err != nil {
			return err
		}
		for i := range a.data {
			out.data[i] = f(a.data[i], b.data[i])
		}
		charge(len(a.data))
		vm.free(a)
		vm.free(b)
		vm.push(out)
		return nil
	}

	reduce := func(init float64, f func(acc, x float64) float64) error {
		a, err := vm.pop()
		if err != nil {
			return err
		}
		acc := init
		for _, x := range a.data {
			acc = f(acc, x)
		}
		charge(len(a.data))
		vm.free(a)
		out, err := vm.alloc(1)
		if err != nil {
			return err
		}
		out.data[0] = acc
		vm.push(out)
		return nil
	}

	switch op.Name {
	case "CONST": // CONST n v
		if len(op.Args) != 2 {
			return fmt.Errorf("want n and v")
		}
		n := int(op.Args[0])
		out, err := vm.alloc(n)
		if err != nil {
			return err
		}
		for i := range out.data {
			out.data[i] = op.Args[1]
		}
		charge(n)
		vm.push(out)
		return nil
	case "IOTA": // IOTA n
		if len(op.Args) != 1 {
			return fmt.Errorf("want n")
		}
		n := int(op.Args[0])
		out, err := vm.alloc(n)
		if err != nil {
			return err
		}
		for i := range out.data {
			out.data[i] = float64(i)
		}
		charge(n)
		vm.push(out)
		return nil
	case "ADD":
		return binary(func(a, b float64) float64 { return a + b })
	case "SUB":
		return binary(func(a, b float64) float64 { return a - b })
	case "MUL":
		return binary(func(a, b float64) float64 { return a * b })
	case "DIV":
		return binary(func(a, b float64) float64 { return a / b })
	case "MAXV":
		return binary(math.Max)
	case "SCALE": // SCALE v — multiply top by constant
		if len(op.Args) != 1 {
			return fmt.Errorf("want v")
		}
		a, err := vm.pop()
		if err != nil {
			return err
		}
		for i := range a.data {
			a.data[i] *= op.Args[0]
		}
		charge(len(a.data))
		vm.push(a)
		return nil
	case "SCAN": // inclusive prefix sum
		a, err := vm.pop()
		if err != nil {
			return err
		}
		acc := 0.0
		for i, x := range a.data {
			acc += x
			a.data[i] = acc
		}
		charge(len(a.data))
		vm.push(a)
		return nil
	case "SUM":
		return reduce(0, func(acc, x float64) float64 { return acc + x })
	case "MAX":
		return reduce(math.Inf(-1), math.Max)
	case "MIN":
		return reduce(math.Inf(1), math.Min)
	case "DUP":
		if len(vm.stack) == 0 {
			return fmt.Errorf("stack underflow")
		}
		top := vm.stack[len(vm.stack)-1]
		out, err := vm.alloc(len(top.data))
		if err != nil {
			return err
		}
		copy(out.data, top.data)
		charge(len(top.data))
		vm.push(out)
		return nil
	case "POP":
		v, err := vm.pop()
		if err != nil {
			return err
		}
		vm.free(v)
		return nil
	case "WRITE": // pop and print
		v, err := vm.pop()
		if err != nil {
			return err
		}
		var b strings.Builder
		b.WriteByte('[')
		for i, x := range v.data {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		}
		b.WriteString("]\n")
		out := []byte(b.String())
		res := vm.os.Syscall(linuxabi.Call{
			Num:  linuxabi.SysWrite,
			Args: [6]uint64{1, v.addr, uint64(len(out))},
			Data: out,
		})
		vm.free(v)
		if !res.Ok() {
			return fmt.Errorf("write: %v", res.Err)
		}
		return nil
	case "HALT":
		return nil
	default:
		return fmt.Errorf("unknown instruction")
	}
}
