package vcode_test

import (
	"bytes"
	"strings"
	"testing"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/linuxabi"
	"multiverse/internal/vcode"
	"multiverse/internal/vfs"
)

// runVCode executes a program in the given world and returns the system
// plus any run error.
func runVCode(t *testing.T, world core.World, src string) (*core.System, error) {
	t.Helper()
	sys, err := bench.NewSystemForWorld(world, vfs.New(), "vcode")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vcode.Parse(src)
	if err != nil {
		return sys, err
	}
	var runErr error
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		vm := vcode.NewVM(env)
		runErr = vm.Run(prog)
		if vm.Depth() != 0 && runErr == nil {
			runErr = errLeftover
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return sys, runErr
}

var errLeftover = &leftoverErr{}

type leftoverErr struct{}

func (*leftoverErr) Error() string { return "stack not empty at exit" }

const dotProduct = `
; dot product of [0..7] with itself, scaled by 2
IOTA 8
DUP
MUL
SUM
SCALE 2
WRITE
HALT
`

func TestDotProduct(t *testing.T) {
	sys, err := runVCode(t, core.WorldNative, dotProduct)
	if err != nil {
		t.Fatal(err)
	}
	// sum(i^2, i<8) = 140; x2 = 280
	if got := string(sys.Proc.Stdout()); got != "[280]\n" {
		t.Errorf("output = %q", got)
	}
}

func TestPrefixSumAndReductions(t *testing.T) {
	sys, err := runVCode(t, core.WorldNative, `
IOTA 5
SCAN
WRITE
CONST 3 7
SUM
WRITE
IOTA 4
MAX
WRITE
HALT`)
	if err != nil {
		t.Fatal(err)
	}
	want := "[0 1 3 6 10]\n[21]\n[3]\n"
	if got := string(sys.Proc.Stdout()); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestVMErrors(t *testing.T) {
	cases := []string{
		"ADD",                    // underflow
		"BOGUS",                  // unknown op
		"CONST 4 1\nIOTA 3\nADD", // length mismatch
		"CONST 1",                // missing operand
	}
	for _, src := range cases {
		if _, err := runVCode(t, core.WorldNative, src); err == nil {
			t.Errorf("program %q ran without error", src)
		}
	}
	if _, err := vcode.Parse("CONST x y"); err == nil {
		t.Error("non-numeric operand parsed")
	}
}

// TestVCodeHybridized: the second runtime hybridizes exactly like the
// first — identical output, with its vector mmap/munmap traffic forwarded.
func TestVCodeHybridized(t *testing.T) {
	var outputs [][]byte
	for _, w := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
		sys, err := runVCode(t, w, dotProduct)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		outputs = append(outputs, sys.Proc.Stdout())
		if w == core.WorldHRT {
			if sys.AK.ForwardedSyscalls() == 0 || sys.AK.ForwardedFaults() == 0 {
				t.Error("VCODE run forwarded nothing — not hybridized?")
			}
			st := sys.Proc.Stats()
			if st.Syscalls[linuxabi.SysMmap] == 0 || st.Syscalls[linuxabi.SysMunmap] == 0 {
				t.Error("vector memory traffic missing")
			}
		}
	}
	if !bytes.Equal(outputs[0], outputs[1]) || !bytes.Equal(outputs[0], outputs[2]) {
		t.Error("VCODE output differs across worlds")
	}
}

func TestParseComments(t *testing.T) {
	p, err := vcode.Parse("; header\n\nIOTA 3\n  ; indented comment\nPOP\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 2 {
		t.Errorf("ops = %d", len(p.Ops))
	}
	if !strings.EqualFold(p.Ops[0].Name, "IOTA") {
		t.Errorf("first op = %s", p.Ops[0].Name)
	}
}
