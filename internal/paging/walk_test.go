package paging

import (
	"testing"

	"multiverse/internal/cycles"
	"multiverse/internal/mem"
)

func newMMUSpace(t *testing.T) (*mem.PhysMem, *AddressSpace, *MMU) {
	t.Helper()
	pm := mem.NewFlat(256)
	as, err := NewAddressSpace(pm, 0, "walk")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMMU(8)
	m.LoadCR3(as)
	return pm, as, m
}

func TestTranslateHitAndMiss(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	target, _ := pm.Alloc(0, "p")
	va := uint64(0x7000)
	if err := as.Map(va, target, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}

	clk := cycles.NewClock(0)
	cost := cycles.DefaultCostModel()
	f, fault := m.Translate(va, Access{User: true}, clk, cost)
	if fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if f != target {
		t.Errorf("frame = %d", f)
	}
	missCost := clk.Now()
	if missCost != 4*cost.TLBMissPerLevel {
		t.Errorf("miss cost = %d", missCost)
	}

	// Second access: TLB hit, cheaper.
	before := clk.Now()
	if _, fault := m.Translate(va, Access{User: true}, clk, cost); fault != nil {
		t.Fatalf("fault on hit: %v", fault)
	}
	if clk.Now()-before != cost.TLBHit {
		t.Errorf("hit cost = %d", clk.Now()-before)
	}
	hits, misses, _ := m.TLB().Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestTranslateNotPresent(t *testing.T) {
	_, _, m := newMMUSpace(t)
	_, fault := m.Translate(0x9000, Access{User: true}, nil, nil)
	if fault == nil {
		t.Fatal("expected fault")
	}
	if fault.Present {
		t.Error("not-present fault marked as protection")
	}
	if fault.Addr != 0x9000 {
		t.Errorf("CR2 = %#x", fault.Addr)
	}
}

func TestUserCannotTouchSupervisorPage(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	target, _ := pm.Alloc(0, "k")
	if err := as.Map(0xA000, target, PteWrite); err != nil { // no PteUser
		t.Fatal(err)
	}
	_, fault := m.Translate(0xA000, Access{User: true}, nil, nil)
	if fault == nil || !fault.Present || !fault.User {
		t.Fatalf("want user protection fault, got %v", fault)
	}
	// Supervisor access succeeds.
	if _, fault := m.Translate(0xA000, Access{}, nil, nil); fault != nil {
		t.Errorf("supervisor access faulted: %v", fault)
	}
}

// TestCR0WPSemantics verifies the exact behaviour the paper fixes in
// section 4.4: ring-0 writes to read-only pages silently succeed with
// CR0.WP clear ("mysterious memory corruption") and fault with it set.
func TestCR0WPSemantics(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	target, _ := pm.Alloc(0, "ro")
	if err := as.Map(0xB000, target, PteUser); err != nil { // read-only
		t.Fatal(err)
	}

	// WP clear: the supervisor write is (wrongly, for Multiverse's
	// purposes) allowed.
	m.SetWP(false)
	if _, fault := m.Translate(0xB000, Access{Write: true}, nil, nil); fault != nil {
		t.Errorf("WP=0 supervisor write faulted: %v", fault)
	}

	// WP set: the write faults like a user write would.
	m.SetWP(true)
	m.TLB().FlushAll()
	_, fault := m.Translate(0xB000, Access{Write: true}, nil, nil)
	if fault == nil || !fault.Present || !fault.Write {
		t.Fatalf("WP=1 supervisor write did not fault properly: %v", fault)
	}
	// User writes fault regardless.
	_, fault = m.Translate(0xB000, Access{Write: true, User: true}, nil, nil)
	if fault == nil {
		t.Fatal("user write to RO page must fault")
	}
}

func TestTLBEvictionFIFO(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	// Capacity is 8; map 10 pages and touch them in order.
	for i := uint64(0); i < 10; i++ {
		f, _ := pm.Alloc(0, "p")
		if err := as.Map(0x10000+i*4096, f, PteUser); err != nil {
			t.Fatal(err)
		}
		if _, fault := m.Translate(0x10000+i*4096, Access{User: true}, nil, nil); fault != nil {
			t.Fatal(fault)
		}
	}
	if m.TLB().Len() != 8 {
		t.Errorf("TLB len = %d, want 8", m.TLB().Len())
	}
	// The first two pages were evicted: touching them misses again.
	_, misses0, _ := m.TLB().Stats()
	if _, fault := m.Translate(0x10000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	_, misses1, _ := m.TLB().Stats()
	if misses1 != misses0+1 {
		t.Error("evicted entry did not miss")
	}
}

func TestTLBFlushVA(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	f, _ := pm.Alloc(0, "p")
	if err := as.Map(0xC000, f, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}
	if _, fault := m.Translate(0xC000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	// Tighten the PTE behind the TLB's back, then invlpg.
	if err := as.Protect(0xC000, PteUser); err != nil {
		t.Fatal(err)
	}
	m.TLB().FlushVA(0xC000)
	_, fault := m.Translate(0xC000, Access{User: true, Write: true}, nil, nil)
	if fault == nil {
		t.Error("stale translation survived FlushVA")
	}
}

// TestStaleTLBHidesProtectionChange documents the hazard the AeroKernel
// handles by flushing after forwarded memory-management calls: without an
// invalidation, a cached writable translation lets writes through a
// now-read-only page.
func TestStaleTLBHidesProtectionChange(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	f, _ := pm.Alloc(0, "p")
	if err := as.Map(0xD000, f, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}
	if _, fault := m.Translate(0xD000, Access{User: true, Write: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	if err := as.Protect(0xD000, PteUser); err != nil {
		t.Fatal(err)
	}
	// No flush: the stale writable entry still serves the write.
	if _, fault := m.Translate(0xD000, Access{User: true, Write: true}, nil, nil); fault != nil {
		t.Errorf("expected stale TLB to (incorrectly) allow the write; got %v", fault)
	}
}

func TestLoadCR3FlushesTLB(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	f, _ := pm.Alloc(0, "p")
	if err := as.Map(0xE000, f, PteUser); err != nil {
		t.Fatal(err)
	}
	if _, fault := m.Translate(0xE000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	if m.TLB().Len() == 0 {
		t.Fatal("expected cached translation")
	}
	m.LoadCR3(as)
	if m.TLB().Len() != 0 {
		t.Error("CR3 reload did not flush the TLB")
	}
}

// TestTLBFlushVAAbsent pins invlpg semantics for a page that was never
// cached: nothing is removed and resident entries keep hitting.
func TestTLBFlushVAAbsent(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	f, _ := pm.Alloc(0, "p")
	if err := as.Map(0xF000, f, PteUser); err != nil {
		t.Fatal(err)
	}
	if _, fault := m.Translate(0xF000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	before := m.TLB().Len()
	m.TLB().FlushVA(0x55000) // never translated
	if got := m.TLB().Len(); got != before {
		t.Errorf("FlushVA of absent page changed residency: %d -> %d", before, got)
	}
	hits0, _, _ := m.TLB().Stats()
	if _, fault := m.Translate(0xF000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	if hits1, _, _ := m.TLB().Stats(); hits1 != hits0+1 {
		t.Error("resident entry stopped hitting after absent-page FlushVA")
	}
}

// TestTLBStatsFlushAccounting pins what counts as a full flush: FlushAll
// does, per-page and per-slot invalidations do not.
func TestTLBStatsFlushAccounting(t *testing.T) {
	_, _, m := newMMUSpace(t)
	_, _, flushes0 := m.TLB().Stats() // the LoadCR3 in setup already flushed once
	m.TLB().FlushAll()
	m.TLB().FlushAll()
	if _, _, f := m.TLB().Stats(); f != flushes0+2 {
		t.Errorf("flushes = %d, want %d", f, flushes0+2)
	}
	m.TLB().FlushVA(0x1000)
	m.TLB().FlushSlots([]int{0, 1})
	if _, _, f := m.TLB().Stats(); f != flushes0+2 {
		t.Errorf("targeted invalidations counted as full flushes (%d)", f)
	}
}

// TestTLBFlushSlots drives the targeted-shootdown primitive: only entries
// in the named PML4 slots are invalidated, and the invlpg count reflects
// what was actually resident.
func TestTLBFlushSlots(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	slot1 := uint64(1) << 39
	for _, va := range []uint64{0x10000, 0x11000, slot1 + 0x10000} {
		f, _ := pm.Alloc(0, "p")
		if err := as.Map(va, f, PteUser); err != nil {
			t.Fatal(err)
		}
		if _, fault := m.Translate(va, Access{User: true}, nil, nil); fault != nil {
			t.Fatal(fault)
		}
	}
	if n := m.TLB().FlushSlots(nil); n != 0 {
		t.Errorf("empty slot list invalidated %d entries", n)
	}
	if n := m.TLB().FlushSlots([]int{7}); n != 0 {
		t.Errorf("untouched slot invalidated %d entries", n)
	}
	if n := m.TLB().FlushSlots([]int{0}); n != 2 {
		t.Errorf("slot-0 shootdown invalidated %d entries, want 2", n)
	}
	if got := m.TLB().Len(); got != 1 {
		t.Errorf("TLB len after slot-0 shootdown = %d, want 1", got)
	}
	// The slot-1 translation survived and still hits.
	hits0, _, _ := m.TLB().Stats()
	if _, fault := m.Translate(slot1+0x10000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	if hits1, _, _ := m.TLB().Stats(); hits1 != hits0+1 {
		t.Error("surviving slot-1 entry did not hit")
	}
}

// TestPCIDLoadCR3KeepsTranslations pins the tagged-TLB behaviour: with
// PCID on, a CR3 reload switches tags without flushing, translations do
// not leak across tags, and returning to the original space hits again.
func TestPCIDLoadCR3KeepsTranslations(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	as2, err := NewAddressSpace(pm, 0, "walk2")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := pm.Alloc(0, "p")
	if err := as.Map(0xE000, f, PteUser); err != nil {
		t.Fatal(err)
	}
	m.EnablePCID(true)
	m.LoadCR3(as)
	if _, fault := m.Translate(0xE000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	if m.TLB().Len() == 0 {
		t.Fatal("expected cached translation")
	}
	m.LoadCR3(as2)
	if m.TLB().Len() == 0 {
		t.Error("PCID CR3 reload flushed the TLB")
	}
	// The cached entry belongs to as's tag: the same VA under as2 walks
	// afresh and faults (nothing is mapped there).
	_, misses0, _ := m.TLB().Stats()
	if _, fault := m.Translate(0xE000, Access{User: true}, nil, nil); fault == nil {
		t.Error("translation leaked across PCID tags")
	}
	if _, misses1, _ := m.TLB().Stats(); misses1 != misses0+1 {
		t.Error("cross-tag access did not miss")
	}
	// Back to the original space: the old translation still hits.
	m.LoadCR3(as)
	hits0, _, _ := m.TLB().Stats()
	if _, fault := m.Translate(0xE000, Access{User: true}, nil, nil); fault != nil {
		t.Fatal(fault)
	}
	if hits1, _, _ := m.TLB().Stats(); hits1 != hits0+1 {
		t.Error("returning to the tagged space did not hit")
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Addr: 0x123000, Write: true, User: false, Present: true}
	s := f.Error()
	for _, want := range []string{"0x123000", "write", "supervisor", "protection"} {
		if !contains(s, want) {
			t.Errorf("fault string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	}()
}
