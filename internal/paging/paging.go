// Package paging implements the x86-64 4-level paging model the Multiverse
// protocols manipulate.
//
// Page tables are real data structures: each table is one simulated
// physical frame (512 8-byte entries) and every mapping operation edits
// entries in those frames. This matters because the paper's address-space
// merger is literally "copy the first 256 entries of the PML4 pointed to by
// the ROS's CR3 to the HRT's PML4 and broadcast a TLB shootdown" — the same
// operation, on the same structures, happens here.
package paging

import (
	"fmt"

	"multiverse/internal/mem"
	"multiverse/internal/telemetry"
)

// EntriesPerTable is the number of entries in one paging structure.
const EntriesPerTable = 512

// LowerHalfEntries is the number of PML4 entries covering the canonical
// lower half (user space). The merger copies exactly these.
const LowerHalfEntries = 256

// Page-table entry bits (x86-64 layout).
const (
	PtePresent uint64 = 1 << 0
	PteWrite   uint64 = 1 << 1
	PteUser    uint64 = 1 << 2
	PteNX      uint64 = 1 << 63

	pteAddrMask uint64 = 0x000ffffffffff000
)

// Canonical address-space boundaries.
const (
	LowerHalfMax  uint64 = 0x0000_7fff_ffff_ffff
	HigherHalfMin uint64 = 0xffff_8000_0000_0000
)

// IsCanonical reports whether va is a canonical 48-bit address.
func IsCanonical(va uint64) bool {
	return va <= LowerHalfMax || va >= HigherHalfMin
}

// IsLowerHalf reports whether va lies in the canonical lower (user) half.
func IsLowerHalf(va uint64) bool { return va <= LowerHalfMax }

// IsHigherHalf reports whether va lies in the canonical higher (kernel)
// half.
func IsHigherHalf(va uint64) bool { return va >= HigherHalfMin }

// Table indices of a virtual address.
func pml4Index(va uint64) int { return int(va>>39) & 0x1ff }
func pdptIndex(va uint64) int { return int(va>>30) & 0x1ff }
func pdIndex(va uint64) int   { return int(va>>21) & 0x1ff }
func ptIndex(va uint64) int   { return int(va>>12) & 0x1ff }

// PML4Index exposes the top-level index of va (used by re-merge logic and
// tests).
func PML4Index(va uint64) int { return pml4Index(va) }

// PageBase returns the 4 KiB-aligned base of va.
func PageBase(va uint64) uint64 { return va &^ uint64(mem.PageSize-1) }

// AddressSpace is one paging hierarchy rooted at a PML4 frame.
type AddressSpace struct {
	pm      *mem.PhysMem
	zone    mem.NUMAZone
	root    mem.Frame
	name    string
	metrics *telemetry.Registry
}

// SetTelemetry attaches a metrics registry so structural operations (the
// merger's entry copies) are counted at the paging layer. Nil detaches.
func (as *AddressSpace) SetTelemetry(m *telemetry.Registry) { as.metrics = m }

// FromCR3 adopts an existing paging hierarchy by its CR3 value, without
// allocating anything. The AeroKernel uses this to walk the ROS process's
// tables during a merger: all it receives from the VMM is the CR3 in the
// shared data page. New mappings must not be created through the adopted
// space (zone is recorded for table allocation if a caller nevertheless
// maps; it extends the foreign hierarchy in the given zone).
func FromCR3(pm *mem.PhysMem, zone mem.NUMAZone, cr3 uint64, name string) *AddressSpace {
	return &AddressSpace{pm: pm, zone: zone, root: mem.FrameOf(cr3), name: name}
}

// NewAddressSpace allocates an empty PML4 in the given zone.
func NewAddressSpace(pm *mem.PhysMem, zone mem.NUMAZone, name string) (*AddressSpace, error) {
	root, err := pm.Alloc(zone, "pml4:"+name)
	if err != nil {
		return nil, fmt.Errorf("paging: allocating PML4 for %s: %w", name, err)
	}
	return &AddressSpace{pm: pm, zone: zone, root: root, name: name}, nil
}

// Root returns the PML4 frame; Root().Addr() is the CR3 value for this
// address space.
func (as *AddressSpace) Root() mem.Frame { return as.root }

// Name returns the diagnostic name given at construction.
func (as *AddressSpace) Name() string { return as.name }

// CR3 returns the physical address loaded into CR3 to activate this space.
func (as *AddressSpace) CR3() uint64 { return as.root.Addr() }

func (as *AddressSpace) readEntry(table mem.Frame, idx int) (uint64, error) {
	return as.pm.ReadU64(table.Addr() + uint64(idx)*8)
}

func (as *AddressSpace) writeEntry(table mem.Frame, idx int, v uint64) error {
	return as.pm.WriteU64(table.Addr()+uint64(idx)*8, v)
}

// next returns the frame of the next-level table reached through entry idx
// of table, allocating it if absent and create is set. Intermediate entries
// are created writable+user so leaf PTEs fully determine access rights, as
// kernels conventionally arrange for user mappings.
func (as *AddressSpace) next(table mem.Frame, idx int, create bool) (mem.Frame, error) {
	e, err := as.readEntry(table, idx)
	if err != nil {
		return 0, err
	}
	if e&PtePresent != 0 {
		return mem.FrameOf(e & pteAddrMask), nil
	}
	if !create {
		return 0, errNotMapped
	}
	f, err := as.pm.Alloc(as.zone, "pagetable:"+as.name)
	if err != nil {
		return 0, err
	}
	if err := as.writeEntry(table, idx, f.Addr()|PtePresent|PteWrite|PteUser); err != nil {
		return 0, err
	}
	return f, nil
}

var errNotMapped = fmt.Errorf("paging: not mapped")

// Map installs a leaf PTE for the 4 KiB page containing va, pointing at
// frame f with the given flag bits (PtePresent is implied).
func (as *AddressSpace) Map(va uint64, f mem.Frame, flags uint64) error {
	if !IsCanonical(va) {
		return fmt.Errorf("paging: map of non-canonical address %#x", va)
	}
	pdpt, err := as.next(as.root, pml4Index(va), true)
	if err != nil {
		return err
	}
	pd, err := as.next(pdpt, pdptIndex(va), true)
	if err != nil {
		return err
	}
	pt, err := as.next(pd, pdIndex(va), true)
	if err != nil {
		return err
	}
	return as.writeEntry(pt, ptIndex(va), f.Addr()|flags|PtePresent)
}

// Unmap clears the leaf PTE for va. Unmapping a non-mapped page is an
// error, surfacing bookkeeping bugs in callers.
func (as *AddressSpace) Unmap(va uint64) error {
	pt, idx, err := as.leafTable(va)
	if err != nil {
		return fmt.Errorf("paging: unmap %#x: %w", va, err)
	}
	e, err := as.readEntry(pt, idx)
	if err != nil {
		return err
	}
	if e&PtePresent == 0 {
		return fmt.Errorf("paging: unmap of unmapped page %#x", va)
	}
	return as.writeEntry(pt, idx, 0)
}

// Protect rewrites the flag bits of the leaf PTE for va, keeping its frame.
func (as *AddressSpace) Protect(va uint64, flags uint64) error {
	pt, idx, err := as.leafTable(va)
	if err != nil {
		return fmt.Errorf("paging: protect %#x: %w", va, err)
	}
	e, err := as.readEntry(pt, idx)
	if err != nil {
		return err
	}
	if e&PtePresent == 0 {
		return fmt.Errorf("paging: protect of unmapped page %#x", va)
	}
	return as.writeEntry(pt, idx, (e&pteAddrMask)|flags|PtePresent)
}

func (as *AddressSpace) leafTable(va uint64) (mem.Frame, int, error) {
	pdpt, err := as.next(as.root, pml4Index(va), false)
	if err != nil {
		return 0, 0, err
	}
	pd, err := as.next(pdpt, pdptIndex(va), false)
	if err != nil {
		return 0, 0, err
	}
	pt, err := as.next(pd, pdIndex(va), false)
	if err != nil {
		return 0, 0, err
	}
	return pt, ptIndex(va), nil
}

// Lookup returns the raw leaf PTE for va and the number of table levels
// fetched to reach it (for cycle accounting). A zero PTE with levels < 4
// means the walk ended early at a non-present intermediate entry.
func (as *AddressSpace) Lookup(va uint64) (pte uint64, levels int) {
	table := as.root
	idxs := [4]int{pml4Index(va), pdptIndex(va), pdIndex(va), ptIndex(va)}
	for l, idx := range idxs {
		e, err := as.readEntry(table, idx)
		if err != nil || e&PtePresent == 0 {
			return 0, l + 1
		}
		if l == 3 {
			return e, 4
		}
		table = mem.FrameOf(e & pteAddrMask)
	}
	return 0, 4
}

// TopEntry returns PML4 entry i.
func (as *AddressSpace) TopEntry(i int) uint64 {
	e, err := as.readEntry(as.root, i)
	if err != nil {
		return 0
	}
	return e
}

// SetTopEntry writes PML4 entry i directly. The merger and tests use it.
func (as *AddressSpace) SetTopEntry(i int, v uint64) error {
	return as.writeEntry(as.root, i, v)
}

// CopyLowerHalfFrom copies the first LowerHalfEntries PML4 entries of src
// into as — the paper's address-space merger. It returns the number of
// entries copied (always LowerHalfEntries on success).
//
// After this, lower-half translations in as resolve through src's
// lower-level tables, so the HRT sees exactly the ROS process's user
// mappings, including later changes at PDPT depth and below. Only top-level
// (PML4) changes on the ROS side require a re-merge; the AeroKernel detects
// those via duplicate page faults (section 4.4).
func (as *AddressSpace) CopyLowerHalfFrom(src *AddressSpace) (int, error) {
	for i := 0; i < LowerHalfEntries; i++ {
		e, err := src.readEntry(src.root, i)
		if err != nil {
			return i, err
		}
		if err := as.writeEntry(as.root, i, e); err != nil {
			return i, err
		}
	}
	as.metrics.Counter("paging.lower_half_copies").Inc()
	as.metrics.Counter("paging.pml4_entries_copied").Add(LowerHalfEntries)
	return LowerHalfEntries, nil
}

// CopyTopEntriesFrom copies only the given PML4 slots of src into as — the
// delta path of the incremental merger. Slots must lie in the lower half.
// It returns the number of entries copied.
func (as *AddressSpace) CopyTopEntriesFrom(src *AddressSpace, slots []int) (int, error) {
	for _, i := range slots {
		if i < 0 || i >= LowerHalfEntries {
			return 0, fmt.Errorf("paging: delta copy of non-user PML4 slot %d", i)
		}
	}
	for n, i := range slots {
		e, err := src.readEntry(src.root, i)
		if err != nil {
			return n, err
		}
		if err := as.writeEntry(as.root, i, e); err != nil {
			return n, err
		}
	}
	as.metrics.Counter("paging.delta_copies").Inc()
	as.metrics.Counter("paging.pml4_entries_copied").Add(uint64(len(slots)))
	return len(slots), nil
}

// ClearLowerHalf zeroes the lower-half PML4 entries (un-merge, used on HRT
// reboot).
func (as *AddressSpace) ClearLowerHalf() error {
	for i := 0; i < LowerHalfEntries; i++ {
		if err := as.writeEntry(as.root, i, 0); err != nil {
			return err
		}
	}
	return nil
}

// IdentityMapHigherHalf maps the physical frames [0, frames) into the
// higher half at HigherHalfMin+pa, supervisor read/write — the HVM's
// arrangement for an HRT that supports it (section 4.4: "the physical
// address space is identity-mapped into the higher half").
func (as *AddressSpace) IdentityMapHigherHalf(frames uint64) error {
	// The mapping covers every physical frame, so this loop runs tens of
	// thousands of times per HRT boot. Consecutive pages share one leaf
	// table for 512 entries: walk the upper levels once per 2 MiB region
	// and stream the leaf PTEs, building exactly the tables a per-page
	// Map loop would.
	var (
		pt      mem.Frame
		ptValid bool
		ptFor   uint64 // va >> 21 of the cached leaf table's region
	)
	for f := mem.Frame(0); f < mem.Frame(frames); f++ {
		va := HigherHalfMin + f.Addr()
		if region := va >> 21; !ptValid || region != ptFor {
			pdpt, err := as.next(as.root, pml4Index(va), true)
			if err != nil {
				return fmt.Errorf("paging: identity map frame %#x: %w", uint64(f), err)
			}
			pd, err := as.next(pdpt, pdptIndex(va), true)
			if err != nil {
				return fmt.Errorf("paging: identity map frame %#x: %w", uint64(f), err)
			}
			pt, err = as.next(pd, pdIndex(va), true)
			if err != nil {
				return fmt.Errorf("paging: identity map frame %#x: %w", uint64(f), err)
			}
			ptFor, ptValid = region, true
		}
		if err := as.writeEntry(pt, ptIndex(va), f.Addr()|PteWrite|PtePresent); err != nil {
			return fmt.Errorf("paging: identity map frame %#x: %w", uint64(f), err)
		}
	}
	return nil
}

// HigherHalfVA returns the higher-half virtual address aliasing physical
// address pa under the identity mapping.
func HigherHalfVA(pa uint64) uint64 { return HigherHalfMin + pa }
