package paging

import (
	"testing"
	"testing/quick"

	"multiverse/internal/mem"
)

// Property: after a merger, every lower-half mapping present in the ROS
// space resolves identically through the HRT space, and higher-half HRT
// mappings are untouched.
func TestMergerVisibilityProperty(t *testing.T) {
	pm := mem.NewFlat(4096)
	rosAS, err := NewAddressSpace(pm, 0, "ros")
	if err != nil {
		t.Fatal(err)
	}
	hrtAS, err := NewAddressSpace(pm, 0, "hrt")
	if err != nil {
		t.Fatal(err)
	}
	// A higher-half HRT mapping that must survive mergers.
	kframe, _ := pm.Alloc(0, "kernel")
	kva := HigherHalfMin + 0x1000
	if err := hrtAS.Map(kva, kframe, PteWrite); err != nil {
		t.Fatal(err)
	}

	prop := func(rawVAs []uint32) bool {
		// Map a batch of arbitrary lower-half pages in the ROS.
		var vas []uint64
		for _, raw := range rawVAs {
			if len(vas) >= 8 {
				break
			}
			va := (uint64(raw) << 12) % (LowerHalfMax &^ 0xfff)
			f, err := pm.Alloc(0, "page")
			if err != nil {
				return false
			}
			if err := rosAS.Map(va, f, PteUser|PteWrite); err != nil {
				// Already mapped from a previous iteration: fine.
				_ = pm.Free(f)
				continue
			}
			vas = append(vas, va)
		}
		if _, err := hrtAS.CopyLowerHalfFrom(rosAS); err != nil {
			return false
		}
		for _, va := range vas {
			rosPTE, _ := rosAS.Lookup(va)
			hrtPTE, _ := hrtAS.Lookup(va)
			if rosPTE != hrtPTE || hrtPTE&PtePresent == 0 {
				return false
			}
		}
		// Higher half untouched.
		kPTE, _ := hrtAS.Lookup(kva)
		return kPTE&PtePresent != 0 && mem.FrameOf(kPTE&0x000ffffffffff000) == kframe
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
