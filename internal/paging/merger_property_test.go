package paging

import (
	"testing"
	"testing/quick"

	"multiverse/internal/mem"
)

// Property: after a merger, every lower-half mapping present in the ROS
// space resolves identically through the HRT space, and higher-half HRT
// mappings are untouched.
func TestMergerVisibilityProperty(t *testing.T) {
	pm := mem.NewFlat(4096)
	rosAS, err := NewAddressSpace(pm, 0, "ros")
	if err != nil {
		t.Fatal(err)
	}
	hrtAS, err := NewAddressSpace(pm, 0, "hrt")
	if err != nil {
		t.Fatal(err)
	}
	// A higher-half HRT mapping that must survive mergers.
	kframe, _ := pm.Alloc(0, "kernel")
	kva := HigherHalfMin + 0x1000
	if err := hrtAS.Map(kva, kframe, PteWrite); err != nil {
		t.Fatal(err)
	}

	prop := func(rawVAs []uint32) bool {
		// Map a batch of arbitrary lower-half pages in the ROS.
		var vas []uint64
		for _, raw := range rawVAs {
			if len(vas) >= 8 {
				break
			}
			va := (uint64(raw) << 12) % (LowerHalfMax &^ 0xfff)
			f, err := pm.Alloc(0, "page")
			if err != nil {
				return false
			}
			if err := rosAS.Map(va, f, PteUser|PteWrite); err != nil {
				// Already mapped from a previous iteration: fine.
				_ = pm.Free(f)
				continue
			}
			vas = append(vas, va)
		}
		if _, err := hrtAS.CopyLowerHalfFrom(rosAS); err != nil {
			return false
		}
		for _, va := range vas {
			rosPTE, _ := rosAS.Lookup(va)
			hrtPTE, _ := hrtAS.Lookup(va)
			if rosPTE != hrtPTE || hrtPTE&PtePresent == 0 {
				return false
			}
		}
		// Higher half untouched.
		kPTE, _ := hrtAS.Lookup(kva)
		return kPTE&PtePresent != 0 && mem.FrameOf(kPTE&0x000ffffffffff000) == kframe
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a delta re-merge (CopyTopEntriesFrom over exactly the slots
// whose top-level entry changed) leaves the HRT lower half identical to a
// fresh full copy, for arbitrary mutation batches.
func TestMergerDeltaEquivalenceProperty(t *testing.T) {
	prop := func(rawA, rawB []uint32) bool {
		pm := mem.NewFlat(2048)
		rosAS, err := NewAddressSpace(pm, 0, "ros")
		if err != nil {
			return false
		}
		fullAS, err := NewAddressSpace(pm, 0, "hrt-full")
		if err != nil {
			return false
		}
		deltaAS, err := NewAddressSpace(pm, 0, "hrt-delta")
		if err != nil {
			return false
		}
		mapBatch := func(raws []uint32) bool {
			n := 0
			for _, raw := range raws {
				if n >= 8 {
					break
				}
				va := (uint64(raw) << 12) % (LowerHalfMax &^ 0xfff)
				f, err := pm.Alloc(0, "page")
				if err != nil {
					return false
				}
				if err := rosAS.Map(va, f, PteUser|PteWrite); err != nil {
					_ = pm.Free(f)
					continue
				}
				n++
			}
			return true
		}

		// Initial merge: both HRT views take the full lower half.
		if !mapBatch(rawA) {
			return false
		}
		if _, err := fullAS.CopyLowerHalfFrom(rosAS); err != nil {
			return false
		}
		if _, err := deltaAS.CopyLowerHalfFrom(rosAS); err != nil {
			return false
		}

		// Mutate the ROS and diff the top level — the generation protocol's
		// ground truth.
		var before [LowerHalfEntries]uint64
		for i := range before {
			before[i] = rosAS.TopEntry(i)
		}
		if !mapBatch(rawB) {
			return false
		}
		var changed []int
		for i := range before {
			if rosAS.TopEntry(i) != before[i] {
				changed = append(changed, i)
			}
		}

		// Re-merge: full copy vs delta copy must converge.
		if _, err := fullAS.CopyLowerHalfFrom(rosAS); err != nil {
			return false
		}
		if _, err := deltaAS.CopyTopEntriesFrom(rosAS, changed); err != nil {
			return false
		}
		for i := 0; i < LowerHalfEntries; i++ {
			if fullAS.TopEntry(i) != deltaAS.TopEntry(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
