package paging

import (
	"testing"
	"testing/quick"

	"multiverse/internal/mem"
)

func newSpace(t *testing.T, frames uint64) (*mem.PhysMem, *AddressSpace) {
	t.Helper()
	pm := mem.NewFlat(frames)
	as, err := NewAddressSpace(pm, 0, "test")
	if err != nil {
		t.Fatal(err)
	}
	return pm, as
}

func TestCanonical(t *testing.T) {
	cases := []struct {
		va   uint64
		ok   bool
		low  bool
		high bool
	}{
		{0, true, true, false},
		{LowerHalfMax, true, true, false},
		{LowerHalfMax + 1, false, false, false},
		{HigherHalfMin - 1, false, false, false},
		{HigherHalfMin, true, false, true},
		{^uint64(0), true, false, true},
	}
	for _, c := range cases {
		if IsCanonical(c.va) != c.ok {
			t.Errorf("IsCanonical(%#x) = %v", c.va, !c.ok)
		}
		if c.ok && (IsLowerHalf(c.va) != c.low || IsHigherHalf(c.va) != c.high) {
			t.Errorf("halves of %#x wrong", c.va)
		}
	}
}

func TestMapLookupUnmap(t *testing.T) {
	pm, as := newSpace(t, 64)
	target, _ := pm.Alloc(0, "page")
	va := uint64(0x7f12_3456_7000)

	if err := as.Map(va, target, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}
	pte, levels := as.Lookup(va)
	if levels != 4 {
		t.Errorf("levels = %d", levels)
	}
	if pte&PtePresent == 0 || pte&PteUser == 0 || pte&PteWrite == 0 {
		t.Errorf("pte = %#x", pte)
	}
	if mem.FrameOf(pte&0x000ffffffffff000) != target {
		t.Errorf("pte frame wrong")
	}

	if err := as.Unmap(va); err != nil {
		t.Fatal(err)
	}
	pte, _ = as.Lookup(va)
	if pte&PtePresent != 0 {
		t.Errorf("pte still present after unmap")
	}
	if err := as.Unmap(va); err == nil {
		t.Error("double unmap should fail")
	}
}

func TestProtect(t *testing.T) {
	pm, as := newSpace(t, 64)
	target, _ := pm.Alloc(0, "page")
	va := uint64(0x1000)
	if err := as.Map(va, target, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(va, PteUser); err != nil { // drop write
		t.Fatal(err)
	}
	pte, _ := as.Lookup(va)
	if pte&PteWrite != 0 {
		t.Error("write bit survived Protect")
	}
	if mem.FrameOf(pte&0x000ffffffffff000) != target {
		t.Error("Protect changed the frame")
	}
	if err := as.Protect(0xdead000, PteUser); err == nil {
		t.Error("Protect of unmapped page should fail")
	}
}

func TestNonCanonicalMapFails(t *testing.T) {
	_, as := newSpace(t, 64)
	if err := as.Map(LowerHalfMax+1, 1, PteUser); err == nil {
		t.Error("mapping non-canonical address should fail")
	}
}

func TestMergerSharesLowerTables(t *testing.T) {
	pm := mem.NewFlat(256)
	rosAS, err := NewAddressSpace(pm, 0, "ros")
	if err != nil {
		t.Fatal(err)
	}
	hrtAS, err := NewAddressSpace(pm, 0, "hrt")
	if err != nil {
		t.Fatal(err)
	}
	target, _ := pm.Alloc(0, "page")
	va := uint64(0x7f00_0000_0000)
	if err := rosAS.Map(va, target, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}

	n, err := hrtAS.CopyLowerHalfFrom(rosAS)
	if err != nil {
		t.Fatal(err)
	}
	if n != LowerHalfEntries {
		t.Errorf("copied %d entries, want %d", n, LowerHalfEntries)
	}
	// HRT resolves the ROS mapping.
	pte, _ := hrtAS.Lookup(va)
	if pte&PtePresent == 0 {
		t.Fatal("merged mapping not visible in HRT")
	}

	// Sub-PML4 changes propagate without re-merge: map a second page in
	// the same 512 GiB region on the ROS side.
	target2, _ := pm.Alloc(0, "page2")
	va2 := va + 0x200000*5 + 0x3000
	if err := rosAS.Map(va2, target2, PteUser); err != nil {
		t.Fatal(err)
	}
	pte2, _ := hrtAS.Lookup(va2)
	if pte2&PtePresent == 0 {
		t.Error("sub-PML4 ROS change invisible in HRT despite shared tables")
	}

	// A change in a *new* PML4 slot does NOT propagate (needs re-merge).
	va3 := uint64(0x0000_1000_0000_0000) // PML4 index 2
	target3, _ := pm.Alloc(0, "page3")
	if err := rosAS.Map(va3, target3, PteUser); err != nil {
		t.Fatal(err)
	}
	pte3, _ := hrtAS.Lookup(va3)
	if pte3&PtePresent != 0 {
		t.Error("new top-level entry visible without re-merge?")
	}
	if _, err := hrtAS.CopyLowerHalfFrom(rosAS); err != nil {
		t.Fatal(err)
	}
	pte3, _ = hrtAS.Lookup(va3)
	if pte3&PtePresent == 0 {
		t.Error("re-merge did not pick up new top-level entry")
	}
}

func TestClearLowerHalf(t *testing.T) {
	pm := mem.NewFlat(128)
	rosAS, _ := NewAddressSpace(pm, 0, "ros")
	hrtAS, _ := NewAddressSpace(pm, 0, "hrt")
	target, _ := pm.Alloc(0, "p")
	if err := rosAS.Map(0x4000, target, PteUser); err != nil {
		t.Fatal(err)
	}
	if _, err := hrtAS.CopyLowerHalfFrom(rosAS); err != nil {
		t.Fatal(err)
	}
	if err := hrtAS.ClearLowerHalf(); err != nil {
		t.Fatal(err)
	}
	if pte, _ := hrtAS.Lookup(0x4000); pte&PtePresent != 0 {
		t.Error("lower half still mapped after clear")
	}
}

func TestIdentityMapHigherHalf(t *testing.T) {
	pm := mem.NewFlat(64)
	as, _ := NewAddressSpace(pm, 0, "hrt")
	if err := as.IdentityMapHigherHalf(16); err != nil {
		t.Fatal(err)
	}
	for f := uint64(0); f < 16; f++ {
		pte, _ := as.Lookup(HigherHalfVA(f * mem.PageSize))
		if pte&PtePresent == 0 {
			t.Fatalf("frame %d not identity mapped", f)
		}
		if got := mem.FrameOf(pte & 0x000ffffffffff000); got != mem.Frame(f) {
			t.Fatalf("frame %d maps to %d", f, got)
		}
		if pte&PteUser != 0 {
			t.Error("identity map should be supervisor-only")
		}
	}
}

func TestFromCR3AdoptsHierarchy(t *testing.T) {
	pm := mem.NewFlat(64)
	orig, _ := NewAddressSpace(pm, 0, "orig")
	target, _ := pm.Alloc(0, "p")
	if err := orig.Map(0x5000, target, PteUser); err != nil {
		t.Fatal(err)
	}
	adopted := FromCR3(pm, 0, orig.CR3(), "adopted")
	pte, _ := adopted.Lookup(0x5000)
	if pte&PtePresent == 0 {
		t.Error("adopted space does not see original mappings")
	}
	if adopted.Root() != orig.Root() {
		t.Error("adopted root differs")
	}
}

// Property: for arbitrary page-aligned lower-half addresses, Map then
// Lookup resolves to the mapped frame and Unmap clears it.
func TestMapLookupProperty(t *testing.T) {
	pm := mem.NewFlat(2048)
	as, err := NewAddressSpace(pm, 0, "prop")
	if err != nil {
		t.Fatal(err)
	}
	target, _ := pm.Alloc(0, "t")
	prop := func(raw uint64) bool {
		va := (raw % LowerHalfMax) &^ uint64(mem.PageSize-1)
		if err := as.Map(va, target, PteUser|PteWrite); err != nil {
			return false
		}
		pte, levels := as.Lookup(va)
		ok := levels == 4 && pte&PtePresent != 0 &&
			mem.FrameOf(pte&0x000ffffffffff000) == target
		if err := as.Unmap(va); err != nil {
			return false
		}
		gone, _ := as.Lookup(va)
		return ok && gone&PtePresent == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
