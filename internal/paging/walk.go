package paging

import (
	"fmt"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/mem"
)

// Access describes one memory access for translation purposes.
type Access struct {
	Write bool // write access (vs read)
	User  bool // CPL 3 access (vs supervisor / ring 0)
}

// Fault is a page fault, carrying the x86 error-code information the
// handlers need.
type Fault struct {
	Addr    uint64 // faulting virtual address (CR2)
	Write   bool   // access was a write
	User    bool   // access originated at CPL 3
	Present bool   // fault was a protection violation on a present page
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "not-present"
	if f.Present {
		kind = "protection"
	}
	mode := "supervisor"
	if f.User {
		mode = "user"
	}
	rw := "read"
	if f.Write {
		rw = "write"
	}
	return fmt.Sprintf("page fault at %#x (%s %s, %s)", f.Addr, mode, rw, kind)
}

// tlbKey identifies one cached translation: the page base qualified by the
// address-space tag (PCID) it was filled under.
type tlbKey struct {
	tag  uint64
	base uint64
}

// tlbWays is the associativity of the fixed-array TLB.
const tlbWays = 8

// tlbEntry is one way of one set. An entry is live iff gen equals the
// TLB's current generation — FlushAll is a generation bump, never a
// reallocation or a sweep.
type tlbEntry struct {
	key tlbKey
	pte uint64
	gen uint64
}

// TLB is a per-core translation lookaside buffer: a fixed set-associative
// array (tlbWays ways, capacity/tlbWays sets rounded down to a power of
// two), indexed by the page number's low bits as hardware TLBs are.
// Eviction is FIFO per set via a round-robin cursor, which keeps the
// simulation deterministic. Entries are tagged with an address-space
// identifier (a PCID stand-in): lookups and fills use the current tag, so
// translations from different address spaces coexist and a CR3 reload
// need not flush. The whole structure is allocated once at construction;
// lookups, fills, and flushes never allocate.
type TLB struct {
	mu      sync.Mutex
	cap     int
	sets    int
	mask    uint64     // sets - 1
	tag     uint64     // current address-space tag (0 until SetTag)
	gen     uint64     // current generation; entries from older gens are dead
	entries []tlbEntry // sets × tlbWays, set-major
	next    []uint8    // per-set round-robin eviction cursor
	live    int
	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB returns a TLB holding up to capacity translations.
func NewTLB(capacity int) *TLB {
	if capacity < 1 {
		capacity = 1
	}
	ways := tlbWays
	if capacity < ways {
		ways = capacity
	}
	sets := 1
	for sets*2*ways <= capacity {
		sets *= 2
	}
	t := &TLB{
		cap:     sets * ways,
		sets:    sets,
		mask:    uint64(sets - 1),
		gen:     1,
		entries: make([]tlbEntry, sets*ways),
		next:    make([]uint8, sets),
	}
	return t
}

// ways is the associativity actually in use (cap/sets; differs from
// tlbWays only for tiny capacities).
func (t *TLB) ways() int { return t.cap / t.sets }

// setFor indexes a set by the page number's low bits, mixed with the tag
// so distinct address spaces spread differently.
func (t *TLB) setFor(k tlbKey) int {
	return int(((k.base >> 12) ^ (k.tag >> 12)) & t.mask)
}

// SetTag switches the TLB to a new address-space tag without invalidating
// anything — the PCID behaviour a tagged CR3 reload gets.
func (t *TLB) SetTag(tag uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tag = tag
}

func (t *TLB) lookup(base uint64) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := tlbKey{t.tag, base}
	w := t.ways()
	set := t.setFor(k) * w
	for i := set; i < set+w; i++ {
		if e := &t.entries[i]; e.gen == t.gen && e.key == k {
			t.hits++
			return e.pte, true
		}
	}
	t.misses++
	return 0, false
}

func (t *TLB) insert(base, pte uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := tlbKey{t.tag, base}
	w := t.ways()
	si := t.setFor(k)
	set := si * w
	freeSlot := -1
	for i := set; i < set+w; i++ {
		e := &t.entries[i]
		if e.gen != t.gen {
			if freeSlot < 0 {
				freeSlot = i
			}
			continue
		}
		if e.key == k {
			e.pte = pte
			return
		}
	}
	if freeSlot < 0 {
		// Set full: FIFO eviction at the set's round-robin cursor.
		freeSlot = set + int(t.next[si])
		t.next[si] = uint8((int(t.next[si]) + 1) % w)
		t.live--
	}
	t.entries[freeSlot] = tlbEntry{key: k, pte: pte, gen: t.gen}
	t.live++
}

// FlushAll empties the TLB across all tags (full invalidation, e.g. an
// untagged CR3 reload or a broadcast shootdown). It is a generation bump:
// O(1), no sweep, no reallocation.
func (t *TLB) FlushAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	t.live = 0
	t.flushes++
}

// FlushVA invalidates the current tag's translation for one page (invlpg).
func (t *TLB) FlushVA(va uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := tlbKey{t.tag, PageBase(va)}
	w := t.ways()
	set := t.setFor(k) * w
	for i := set; i < set+w; i++ {
		if e := &t.entries[i]; e.gen == t.gen && e.key == k {
			e.gen = 0
			t.live--
			return
		}
	}
}

// FlushSlots invalidates, across all tags, every resident translation whose
// virtual address falls in one of the given PML4 slots — the targeted
// shootdown a delta merge issues instead of a full flush. It returns the
// number of entries invalidated (each costs one invlpg). The wanted slots
// form a 512-bit stack mask, so the scan allocates nothing.
func (t *TLB) FlushSlots(slots []int) int {
	if len(slots) == 0 {
		return 0
	}
	var want [8]uint64 // one bit per PML4 slot
	for _, s := range slots {
		if s >= 0 && s < EntriesPerTable {
			want[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.gen != t.gen {
			continue
		}
		s := PML4Index(e.key.base)
		if want[s>>6]&(1<<(uint(s)&63)) != 0 {
			e.gen = 0
			t.live--
			n++
		}
	}
	return n
}

// Stats returns hit/miss/flush counters.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses, t.flushes
}

// Len returns the number of resident translations.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.live
}

// MMU bundles the translation state of one core: the active address space,
// its TLB, and the CR0.WP setting that governs supervisor writes to
// read-only pages.
type MMU struct {
	mu    sync.Mutex
	space *AddressSpace
	tlb   *TLB
	wp    bool // CR0.WP: supervisor writes honor the R/W bit
	pcid  bool // tagged TLB: CR3 reloads switch tags instead of flushing
}

// NewMMU creates an MMU with the given TLB capacity.
func NewMMU(tlbCapacity int) *MMU {
	return &MMU{tlb: NewTLB(tlbCapacity)}
}

// EnablePCID turns on TLB tagging: subsequent LoadCR3 calls retag the TLB
// to the new space's root instead of flushing it.
func (m *MMU) EnablePCID(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pcid = on
}

// LoadCR3 activates an address space. Without PCID the TLB flushes, as
// hardware does on an untagged reload; with PCID the TLB switches to the
// space's tag and existing translations survive.
func (m *MMU) LoadCR3(as *AddressSpace) {
	m.mu.Lock()
	m.space = as
	pcid := m.pcid
	m.mu.Unlock()
	if pcid {
		m.tlb.SetTag(as.CR3())
		return
	}
	m.tlb.FlushAll()
}

// Space returns the active address space (nil before LoadCR3).
func (m *MMU) Space() *AddressSpace {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.space
}

// SetWP sets CR0.WP. The paper (section 4.4) enables it in the HRT so that
// ring-0 writes to read-only pages fault like user-mode writes would,
// keeping copy-on-write and GC-barrier semantics intact in kernel mode.
func (m *MMU) SetWP(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wp = on
}

// WP reports the CR0.WP setting.
func (m *MMU) WP() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wp
}

// TLB exposes the core's TLB (for shootdowns and stats).
func (m *MMU) TLB() *TLB { return m.tlb }

// Translate resolves one access at va, charging translation costs to clock
// (if non-nil). On success it returns the backing frame. On failure it
// returns a *Fault carrying the x86 error-code information.
func (m *MMU) Translate(va uint64, acc Access, clock *cycles.Clock, cost *cycles.CostModel) (mem.Frame, *Fault) {
	m.mu.Lock()
	space := m.space
	wp := m.wp
	m.mu.Unlock()
	if space == nil {
		panic("paging: Translate before LoadCR3")
	}
	if cost == nil {
		cost = &zeroCost // uncharged translation (tests, probes)
	}
	if !IsCanonical(va) {
		// Non-canonical accesses raise #GP on real hardware; the
		// simulation folds them into a not-present fault, which no
		// correct workload triggers.
		return 0, &Fault{Addr: va, Write: acc.Write, User: acc.User}
	}

	base := PageBase(va)
	pte, cached := m.tlb.lookup(base)
	if cached {
		charge(clock, cost, cost.TLBHit)
	} else {
		var levels int
		pte, levels = space.Lookup(va)
		charge(clock, cost, cycles.Cycles(levels)*cost.TLBMissPerLevel)
		if pte&PtePresent == 0 {
			charge(clock, cost, cost.PageFaultHW)
			return 0, &Fault{Addr: va, Write: acc.Write, User: acc.User}
		}
		m.tlb.insert(base, pte)
	}

	if fault := checkRights(pte, va, acc, wp); fault != nil {
		charge(clock, cost, cost.PageFaultHW)
		// Hardware would not have cached a translation it faulted on;
		// drop any stale entry so a later retry re-walks the tables.
		m.tlb.FlushVA(va)
		return 0, fault
	}
	return mem.FrameOf(pte & pteAddrMask), nil
}

// checkRights applies the x86 access rules: user accesses need PteUser;
// writes need PteWrite unless the access is supervisor and CR0.WP is clear
// (the exact loophole the paper closes by setting WP in the HRT).
func checkRights(pte uint64, va uint64, acc Access, wp bool) *Fault {
	if acc.User && pte&PteUser == 0 {
		return &Fault{Addr: va, Write: acc.Write, User: true, Present: true}
	}
	if acc.Write && pte&PteWrite == 0 {
		if acc.User || wp {
			return &Fault{Addr: va, Write: true, User: acc.User, Present: true}
		}
	}
	return nil
}

// zeroCost charges nothing; used when the caller passes a nil model.
var zeroCost cycles.CostModel

func charge(clock *cycles.Clock, cost *cycles.CostModel, c cycles.Cycles) {
	if clock != nil && c > 0 {
		clock.Advance(c)
	}
	_ = cost
}
