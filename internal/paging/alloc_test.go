package paging

import (
	"testing"

	"multiverse/internal/cycles"
)

// The TLB and the page walker sit on the hottest path the simulator has:
// every simulated memory touch goes through MMU.Translate. These tests pin
// the allocation-free property the raw-speed pass established — any Go
// allocation creeping back into lookup/insert/flush or the warm translate
// path is a regression, caught here rather than in a profile weeks later.

func TestTLBOpsAllocationFree(t *testing.T) {
	tl := NewTLB(64)
	// Warm: populate well past one set so the eviction path runs too.
	for i := uint64(0); i < 256; i++ {
		tl.insert(i<<12, i|0x1)
	}
	slots := []int{1, 3}

	if n := testing.AllocsPerRun(200, func() {
		tl.insert(0x1234<<12, 0x9)
		tl.lookup(0x1234 << 12)
		tl.lookup(0xdead << 12) // miss path
		tl.FlushVA(0x1234 << 12)
	}); n != 0 {
		t.Errorf("TLB insert/lookup/flushVA allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tl.FlushSlots(slots)
		tl.FlushAll()
	}); n != 0 {
		t.Errorf("TLB FlushSlots/FlushAll allocates %.1f per run, want 0", n)
	}
}

func TestTranslateWarmPathAllocationFree(t *testing.T) {
	pm, as, m := newMMUSpace(t)
	target, _ := pm.Alloc(0, "p")
	va := uint64(0x7000)
	if err := as.Map(va, target, PteUser|PteWrite); err != nil {
		t.Fatal(err)
	}
	clk := cycles.NewClock(0)
	cost := cycles.DefaultCostModel()

	// Warm once so page-table pages exist and the TLB holds the entry.
	if _, f := m.Translate(va, Access{User: true}, clk, cost); f != nil {
		t.Fatalf("warm translate faulted: %v", f)
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, f := m.Translate(va, Access{User: true}, clk, cost); f != nil {
			t.Fatalf("translate faulted: %v", f)
		}
	}); n != 0 {
		t.Errorf("TLB-hit translate allocates %.1f per run, want 0", n)
	}

	// The full walk (TLB miss on a mapped page) must also be free: it
	// re-reads the live page tables and refills the TLB in place.
	if n := testing.AllocsPerRun(200, func() {
		m.TLB().FlushVA(va)
		if _, f := m.Translate(va, Access{User: true}, clk, cost); f != nil {
			t.Fatalf("translate faulted: %v", f)
		}
	}); n != 0 {
		t.Errorf("walk-and-refill translate allocates %.1f per run, want 0", n)
	}
}
