package cycles

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestConversions(t *testing.T) {
	// 2.2 GHz: 2.2e9 cycles = 1 s.
	c := Cycles(2_200_000_000)
	if got := c.Seconds(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds() = %v, want 1.0", got)
	}
	if got := Cycles(2200).Nanoseconds(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("2200 cycles = %v ns, want 1000", got)
	}
	if got := Cycles(22).Microseconds(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("Microseconds() = %v, want 0.01", got)
	}
}

func TestCyclesString(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{100, "ns"},
		{22_000, "us"},
		{22_000_000, "ms"},
		{22_000_000_000, "s"},
	}
	for _, tc := range cases {
		if s := tc.c.String(); !strings.Contains(s, tc.want) {
			t.Errorf("%d cycles -> %q, want suffix %q", uint64(tc.c), s, tc.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(10)
	if c.Now() != 10 {
		t.Fatalf("Now() = %d", c.Now())
	}
	if got := c.Advance(5); got != 15 {
		t.Errorf("Advance = %d, want 15", got)
	}
	if c.Now() != 15 {
		t.Errorf("Now() = %d, want 15", c.Now())
	}
}

func TestClockSyncToNeverRewinds(t *testing.T) {
	c := NewClock(100)
	if got := c.SyncTo(50); got != 100 {
		t.Errorf("SyncTo(50) = %d, want 100 (no rewind)", got)
	}
	if got := c.SyncTo(200); got != 200 {
		t.Errorf("SyncTo(200) = %d, want 200", got)
	}
	if c.Now() != 200 {
		t.Errorf("Now() = %d", c.Now())
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Errorf("concurrent advances lost: %d, want 8000", c.Now())
	}
}

// Property: SyncTo is monotone and idempotent.
func TestClockSyncToProperty(t *testing.T) {
	f := func(start uint64, target uint64) bool {
		start %= 1 << 48
		target %= 1 << 48
		c := NewClock(Cycles(start))
		got := c.SyncTo(Cycles(target))
		if uint64(got) < start || uint64(got) < target {
			return false
		}
		// Idempotent.
		return c.SyncTo(Cycles(target)) == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultCostModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	if got := m.HypercallRoundTrip(); got != 4000 {
		t.Errorf("hypercall round trip = %d, want 4000", got)
	}
	if got := m.SyncRoundTrip(true); got != 790 {
		t.Errorf("sync same-socket = %d, want 790 (paper Figure 2)", got)
	}
	if got := m.SyncRoundTrip(false); got != 1060 {
		t.Errorf("sync cross-socket = %d, want 1060 (paper Figure 2)", got)
	}
	// The AeroKernel primitives must be orders of magnitude cheaper than
	// the ROS equivalents (paper section 2).
	if m.AKThreadCreate*10 > m.ROSThreadCreate {
		t.Errorf("AKThreadCreate=%d not << ROSThreadCreate=%d", m.AKThreadCreate, m.ROSThreadCreate)
	}
	if m.AKEventSignal*10 > m.ContextSwitch {
		t.Errorf("AKEventSignal=%d not << ContextSwitch=%d", m.AKEventSignal, m.ContextSwitch)
	}
	// HRT boot is milliseconds, on par with fork+exec.
	if ms := m.HRTBoot.Nanoseconds() / 1e6; ms < 0.5 || ms > 10 {
		t.Errorf("HRT boot = %v ms, want millisecond scale", ms)
	}
}
