// Package cycles provides the virtual time base for the Multiverse
// simulation.
//
// Nothing in the repository reads wall-clock time. Every simulated hardware
// and software operation charges a cost, in CPU cycles, to a Clock owned by
// the executing context (a simulated thread or core). Cross-context
// interactions carry cycle timestamps and synchronize the receiving clock to
// the message arrival time, which makes all reported latencies deterministic
// and reproducible bit-for-bit.
//
// The cost model constants are calibrated so that the composed protocol
// latencies land where the paper measured them on its 2.2 GHz AMD Opteron
// 4122 testbed (Figure 2: address-space merger ~33 K cycles, asynchronous
// call ~25 K cycles, synchronous call ~790/~1060 cycles same/cross socket).
package cycles

import (
	"fmt"
	"sync/atomic"
)

// Cycles counts CPU clock cycles of virtual time.
type Cycles uint64

// ClockHz is the simulated core frequency: 2.2 GHz, matching the AMD
// Opteron 4122 used in the paper's evaluation.
const ClockHz = 2_200_000_000

// Nanoseconds converts a cycle count to nanoseconds at ClockHz.
func (c Cycles) Nanoseconds() float64 {
	return float64(c) * 1e9 / ClockHz
}

// Microseconds converts a cycle count to microseconds at ClockHz.
func (c Cycles) Microseconds() float64 {
	return float64(c) * 1e6 / ClockHz
}

// Seconds converts a cycle count to seconds at ClockHz.
func (c Cycles) Seconds() float64 {
	return float64(c) / ClockHz
}

// String renders the count with an auto-scaled time suffix.
func (c Cycles) String() string {
	switch ns := c.Nanoseconds(); {
	case ns < 1e3:
		return fmt.Sprintf("%d cycles (%.0f ns)", uint64(c), ns)
	case ns < 1e6:
		return fmt.Sprintf("%d cycles (%.2f us)", uint64(c), ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%d cycles (%.2f ms)", uint64(c), ns/1e6)
	default:
		return fmt.Sprintf("%d cycles (%.2f s)", uint64(c), ns/1e9)
	}
}

// Clock is a monotonically advancing virtual cycle counter owned by one
// simulated execution context. Methods are safe for concurrent use so that
// observers (e.g. the benchmark harness) can sample a clock while its owner
// runs.
type Clock struct {
	now atomic.Uint64
}

// NewClock returns a clock starting at the given cycle count.
func NewClock(start Cycles) *Clock {
	c := &Clock{}
	c.now.Store(uint64(start))
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() Cycles {
	return Cycles(c.now.Load())
}

// Advance moves the clock forward by d cycles and returns the new time.
func (c *Clock) Advance(d Cycles) Cycles {
	return Cycles(c.now.Add(uint64(d)))
}

// SyncTo moves the clock forward to at least t (never backward), modelling
// the receipt of a message stamped with arrival time t. It returns the
// clock's resulting time.
func (c *Clock) SyncTo(t Cycles) Cycles {
	for {
		cur := c.now.Load()
		if cur >= uint64(t) {
			return Cycles(cur)
		}
		if c.now.CompareAndSwap(cur, uint64(t)) {
			return t
		}
	}
}

// Reset rewinds the clock to zero. Only the benchmark harness uses this,
// between independent runs.
func (c *Clock) Reset() {
	c.now.Store(0)
}
