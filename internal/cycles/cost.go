package cycles

// CostModel holds every latency constant the simulation charges, in cycles
// at ClockHz. The default values are calibrated against the paper's
// measurements; the benchmark harness and tests may build variant models to
// explore sensitivity.
type CostModel struct {
	// Virtualization (Palacios/HVM) costs.
	VMExit            Cycles // guest -> VMM world switch
	VMEntry           Cycles // VMM -> guest world switch
	HypercallDispatch Cycles // VMM-side decode + handler dispatch
	InterruptInject   Cycles // VMM builds an interrupt/exception frame and re-enters the guest
	SignalInjectROS   Cycles // HVM "interrupt to user": frame build on the registered stack + guest re-entry
	EventChannelPost  Cycles // write request/response to the shared data page + store fence
	VMMRecord         Cycles // VMM-side bookkeeping of a pending signal/event raise
	InjectWindowROS   Cycles // mean wait until the guest offers a safe user-mode injection point
	HRTBoot           Cycles // full AeroKernel (re)boot — "milliseconds, on par with fork()+exec()"

	// Synchronous (memory-polling) channel costs, per one-way transfer of
	// the protocol cacheline between two cores.
	CachelineSameSocket  Cycles
	CachelineCrossSocket Cycles
	SyncProtocolOverhead Cycles // fixed request encode + poll-detect + decode cost per round trip

	// Exitless (tier-3) polled SPSC ring costs. The partner is statically
	// dedicated to spinning on the request ring, so a steady-state round
	// trip is plain stores and loads on shared cachelines — no VM exits,
	// no injection window ("Look Mum, no VM Exits!").
	RingPost      Cycles // writing one frame into a ring slot + publishing the tail
	RingPoll      Cycles // one poll iteration that finds a frame (head check + slot read)
	RingReapBatch Cycles // reaping the reply slot + retiring the head on the caller side

	// Boundary-router costs: the adaptive fast path that services system
	// calls in the HRT instead of forwarding them (zero crossings).
	HRTLocalSyscall   Cycles // tier-0: pure call answered from mirrored HRT-local state, vDSO-style
	SyscallCacheProbe Cycles // tier-1: result-cache tag check on a cacheable call (hit or miss)
	SyscallCacheHit   Cycles // tier-1: copying a cached result back to the caller on a hit

	// Paging and memory system.
	TLBHit          Cycles // address translation hitting the TLB
	TLBMissPerLevel Cycles // one page-table level fetch during a walk
	TLBShootdownIPI Cycles // IPI delivery to one remote core
	TLBFlushLocal   Cycles // local TLB invalidation
	TLBInvlpg       Cycles // single-VA invalidation (invlpg) during a targeted shootdown
	PageFaultHW     Cycles // hardware fault raise: save state + vector through IDT
	PTEWrite        Cycles // writing one page-table entry
	PML4EntryCopy   Cycles // copying one top-level entry during an address-space merger
	PageZero        Cycles // zeroing a fresh 4 KiB frame
	MemCopyPerPage  Cycles // copying 4 KiB between buffers

	// Legacy OS (ROS / Linux model) costs.
	SyscallEntry     Cycles // SYSCALL instruction + kernel entry bookkeeping
	SyscallExit      Cycles // SYSRET path back to user
	VDSOCall         Cycles // user-mode fast path (no kernel entry)
	ContextSwitch    Cycles // ROS scheduler switch between threads
	ROSThreadCreate  Cycles // clone() + runqueue insertion
	ROSThreadJoin    Cycles // futex-based join
	WarmPoolReuse    Cycles // claiming a parked warm context: runqueue relink + stack rebase, no clone()
	ROSSignalDeliver Cycles // kernel builds a user signal frame
	ROSSignalReturn  Cycles // rt_sigreturn path

	// AeroKernel (Nautilus model) costs. Designed to be orders of magnitude
	// cheaper than the ROS equivalents (paper section 2).
	AKThreadCreate Cycles // kernel-mode thread creation, no protection crossing
	AKThreadJoin   Cycles
	AKEventSignal  Cycles // event wakeup between AK threads
	AKEventWait    Cycles
	AKSyscallStub  Cycles // Nautilus syscall stub entry: stack pull-down (red zone) + dispatch
	AKSysretEmul   Cycles // emulated SYSRET: restore + direct jmp to saved rip
	AKIstSwitch    Cycles // hardware IST stack switch on interrupt entry

	// Grid checkpoint/restore costs (live migration of one execution
	// group between machines). A checkpoint is a delta, not a full
	// address-space copy: the PR-3 per-PML4-slot generation stamps bound
	// the serialized state to the slots the group actually touched.
	CheckpointBase      Cycles // quiesce bookkeeping + HRT/router/window context serialization
	CheckpointPerSlot   Cycles // serializing one touched PML4 slot descriptor (PML4EntryCopy-class)
	GridTransferBase    Cycles // per-migration fixed cost of moving the image between nodes
	GridTransferPerPage Cycles // per-4KiB transfer cost of the checkpoint image (MemCopyPerPage-class)
	RestoreBase         Cycles // target-side rebuild: thread tables, channel window, router rebind

	// AeroKernel scheduler costs (per-core run queues, Chase–Lev-style
	// work stealing, spin-then-halt idle policy).
	SchedEnqueue Cycles // pushing one task/thread onto a per-core queue or deque
	SchedSteal   Cycles // one steal from the top of a victim's deque (CAS + fence)
	IPIKick      Cycles // kicking a remote core out of its idle loop (IPI-class)
	IdleHaltWake Cycles // waking a core that had fallen past spinning into hlt

	// Virtualization overheads the ROS pays when it runs as a guest (the
	// paper's "Virtual" configuration): amortized extra exit cost per
	// system call and extra nested-paging cost per page fault.
	VirtSyscallExtra Cycles
	VirtFaultExtra   Cycles

	// TLB residency penalty added to vdso-style user fast calls, per core
	// class. The ROS core runs a full Linux stack and suffers pollution;
	// the HRT core's TLB is sparsely populated (paper section 5,
	// microbenchmarks), so vdso calls run slightly faster there.
	VDSOPollutionROS Cycles
	VDSOPollutionHRT Cycles
}

// DefaultCostModel returns the calibrated model. Composed protocol costs:
//
//	hypercall round trip  = VMExit + HypercallDispatch + VMEntry                       = 4000
//	async call round trip = post + hypercall + inject(ROS) + partner work + hypercall
//	                        + inject(HRT) + resume                                     ≈ 25000
//	sync call round trip  = 2×cacheline + SyncProtocolOverhead                          = 790 / 1060
//	address-space merger  = hypercall + exception inject + 256×PML4EntryCopy
//	                        + shootdown + completion hypercall                          ≈ 33000
func DefaultCostModel() *CostModel {
	return &CostModel{
		VMExit:            1600,
		VMEntry:           1200,
		HypercallDispatch: 1200,
		InterruptInject:   3200,
		SignalInjectROS:   3200,
		EventChannelPost:  400,
		VMMRecord:         800,
		InjectWindowROS:   5500,
		HRTBoot:           2_200_000, // 1 ms at 2.2 GHz

		CachelineSameSocket:  200,
		CachelineCrossSocket: 335,
		SyncProtocolOverhead: 390,

		RingPost:      120,
		RingPoll:      80,
		RingReapBatch: 150,

		HRTLocalSyscall:   70, // comparable to a vdso call on the sparse HRT TLB
		SyscallCacheProbe: 40,
		SyscallCacheHit:   110,

		TLBHit:          4,
		TLBMissPerLevel: 60,
		TLBShootdownIPI: 1500,
		TLBFlushLocal:   400,
		TLBInvlpg:       120,
		PageFaultHW:     800,
		PTEWrite:        25,
		PML4EntryCopy:   80,
		PageZero:        600,
		MemCopyPerPage:  700,

		SyscallEntry:     150,
		SyscallExit:      120,
		VDSOCall:         60,
		ContextSwitch:    2600,
		ROSThreadCreate:  35000,
		ROSThreadJoin:    9000,
		WarmPoolReuse:    2600, // ContextSwitch-class: no clone(), just relink + rebase
		ROSSignalDeliver: 3000,
		ROSSignalReturn:  2200,

		AKThreadCreate: 450,
		AKThreadJoin:   180,
		AKEventSignal:  90,
		AKEventWait:    120,
		AKSyscallStub:  160,
		AKSysretEmul:   90,
		AKIstSwitch:    70,

		CheckpointBase:      12_000,
		CheckpointPerSlot:   80, // PML4EntryCopy-class
		GridTransferBase:    20_000,
		GridTransferPerPage: 700, // MemCopyPerPage-class
		RestoreBase:         9_000,

		SchedEnqueue: 45,
		SchedSteal:   350,
		IPIKick:      1500, // TLBShootdownIPI-class delivery
		IdleHaltWake: 2400,

		VirtSyscallExtra: 250,
		VirtFaultExtra:   1200,

		VDSOPollutionROS: 35,
		VDSOPollutionHRT: 10,
	}
}

// HypercallRoundTrip is the guest->VMM->guest cost for one hypercall.
func (m *CostModel) HypercallRoundTrip() Cycles {
	return m.VMExit + m.HypercallDispatch + m.VMEntry
}

// SyncRoundTrip is the memory-polling channel round trip between two cores;
// sameSocket selects the cacheline transfer cost.
func (m *CostModel) SyncRoundTrip(sameSocket bool) Cycles {
	line := m.CachelineCrossSocket
	if sameSocket {
		line = m.CachelineSameSocket
	}
	return 2*line + m.SyncProtocolOverhead
}

// RingRoundTrip is the tier-3 exitless round trip: the caller posts a
// frame (RingPost), the frame crosses to the polling partner (one
// cacheline transfer), the partner's poll iteration picks it up
// (RingPoll), the reply is posted back (RingPost + one cacheline), and
// the caller reaps it (RingReapBatch). No VM exits anywhere.
func (m *CostModel) RingRoundTrip(sameSocket bool) Cycles {
	line := m.CachelineCrossSocket
	if sameSocket {
		line = m.CachelineSameSocket
	}
	return 2*line + 2*m.RingPost + m.RingPoll + m.RingReapBatch
}
